// Command bgpwork is a worker for distributed runs: it pulls trial jobs
// (sweep trials or churn trials) from a bgpfig -serve coordinator,
// executes them with the local simulator, pushes back results, and
// exits when the coordinator shuts down or goes away.
//
// Usage:
//
//	bgpwork -connect coordinator:9090
//	bgpwork -connect coordinator:9090 -id rack3 -workers 8
//
// The first SIGTERM/SIGINT drains the worker gracefully: the in-flight
// trial finishes and its result is submitted before the process exits,
// so no lease has to expire. A second signal aborts immediately (the
// lease expires and the trial is reassigned).
//
// Results are deterministic by construction (trial seeds derive from
// grid indices or the churn scenario seed), so any mix of bgpwork
// processes produces artifacts byte-identical to a local run.
// Coordinator and workers must be built from the same source.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bgpsim/internal/dist"
	"bgpsim/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bgpwork:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bgpwork", flag.ContinueOnError)
	var (
		connect = fs.String("connect", "", "coordinator address (host:port or URL); required")
		id      = fs.String("id", "", "worker name in coordinator logs (default hostname-pid)")
		workers = fs.Int("workers", 0, "per-job trial worker pool size (0 = GOMAXPROCS)")
		poll    = fs.Duration("poll", 200*time.Millisecond, "idle delay between polls while the coordinator has no work")
		quiet   = fs.Bool("q", false, "suppress per-job progress output")
	)
	var prof profiling.Config
	prof.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("-connect is required (the bgpfig -serve address)")
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	w := &dist.Worker{
		Base:         dist.BaseURL(*connect),
		ID:           *id,
		SimWorkers:   *workers,
		PollInterval: *poll,
	}
	if !*quiet {
		w.Log = log.New(os.Stderr, "", log.LstdFlags)
	}

	// First signal: graceful drain (finish and submit the in-flight
	// trial, then exit). Second signal: hard cancel.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "bgpwork: draining — finishing in-flight trial (signal again to abort)")
		w.Drain()
		<-sigc
		cancel()
	}()

	return w.Work(ctx)
}
