// Command bgpwork is a sweep worker for distributed figure runs: it
// pulls cell jobs from a bgpfig -serve coordinator, executes them with
// the local simulator, pushes back results, and exits when the
// coordinator shuts down or goes away.
//
// Usage:
//
//	bgpwork -connect coordinator:9090
//	bgpwork -connect coordinator:9090 -id rack3 -workers 8
//
// Results are deterministic by construction (cell seeds derive from grid
// indices), so any mix of bgpwork processes produces figures
// byte-identical to a local bgpfig run. Coordinator and workers must be
// built from the same source.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bgpsim/internal/dist"
	"bgpsim/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bgpwork:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bgpwork", flag.ContinueOnError)
	var (
		connect = fs.String("connect", "", "coordinator address (host:port or URL); required")
		id      = fs.String("id", "", "worker name in coordinator logs (default hostname-pid)")
		workers = fs.Int("workers", 0, "per-job trial worker pool size (0 = GOMAXPROCS)")
		poll    = fs.Duration("poll", 200*time.Millisecond, "idle delay between polls while the coordinator has no work")
		quiet   = fs.Bool("q", false, "suppress per-job progress output")
	)
	var prof profiling.Config
	prof.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return fmt.Errorf("-connect is required (the bgpfig -serve address)")
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := &dist.Worker{
		Base:         dist.BaseURL(*connect),
		ID:           *id,
		SimWorkers:   *workers,
		PollInterval: *poll,
	}
	if !*quiet {
		w.Log = log.New(os.Stderr, "", log.LstdFlags)
	}
	return w.Work(ctx)
}
