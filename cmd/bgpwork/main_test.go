package main

import (
	"net/http/httptest"
	"testing"

	"bgpsim/internal/dist"
)

func TestConnectRequired(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -connect accepted")
	}
}

func TestBadFlagErrors(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestWorkerExitsOnCoordinatorShutdown(t *testing.T) {
	coord, err := dist.NewCoordinator(dist.CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	coord.Shutdown()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	if err := run([]string{"-connect", srv.URL, "-id", "test", "-q"}); err != nil {
		t.Fatalf("worker did not exit cleanly on shutdown: %v", err)
	}
}
