package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgpsim/internal/des"
	"bgpsim/internal/topology"
)

func TestSnapshotReport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "internet-like", "-n", "200", "-seed", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"nodes        200",
		"ases         200",
		"policy       shortest path (policy-free)",
		"reachable, 100.00%",
		"path length histogram:",
		"relax time",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestSnapshotPolicyModes(t *testing.T) {
	var flat, hier bytes.Buffer
	if err := run([]string{"-kind", "internet-like", "-n", "150", "-seed", "2"}, &flat); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "internet-like", "-n", "150", "-seed", "2", "-rel", "hierarchical"}, &hier); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hier.String(), "Gao-Rexford valley-free") {
		t.Errorf("policy mode not reported:\n%s", hier.String())
	}
	// The hierarchy guarantees full valley-free reachability, so the
	// policy run must still reach every pair.
	if !strings.Contains(hier.String(), "reachable, 100.00%") {
		t.Errorf("hierarchical policy lost reachability:\n%s", hier.String())
	}
	if flat.String() == hier.String() {
		t.Error("policy routing changed nothing (suspicious)")
	}
}

func TestSnapshotReadsAnnotatedFile(t *testing.T) {
	// An annotated topology file (topogen -rel writes this shape) must
	// route under its saved relationships without any -rel flag.
	nw, err := topology.InternetLikeNetwork(100, 3.4, 40, des.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := topology.HierarchicalRelationships(nw)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "topo.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.WriteJSONWith(f, rs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Gao-Rexford valley-free") {
		t.Errorf("saved annotations not used:\n%s", out.String())
	}
}

func TestBadFlagsError(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "nonsense", "-n", "10"}, &out); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run([]string{"-kind", "internet-like", "-n", "50", "-rel", "friend"}, &out); err == nil {
		t.Error("unknown relationship mode accepted")
	}
}
