// Command bgpsnap computes converged BGP routing state with the
// event-free snapshot backend (internal/snapshot) and reports on it —
// the scale mode of the snapshot work: the relaxation runs one
// destination at a time in O(nodes) memory, so topologies of 10,000+
// ASes, far beyond what the event-driven simulator can converge in
// reasonable time, are summarized in seconds.
//
// Usage:
//
//	bgpsnap -kind internet-like -n 10000
//	bgpsnap -kind internet-like -n 10000 -rel infer -rel-ratio 1.5
//	bgpsnap -in topo.json              # saved topology; uses any
//	                                   # relationship annotations it carries
//
// The report covers relaxation effort (rounds to the fixpoint),
// reachability (pairs with a converged route — under policy routing the
// degree heuristic can leave pairs without a valley-free path), and the
// path-length distribution, plus wall-clock time and process memory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/profiling"
	"bgpsim/internal/snapshot"
	"bgpsim/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bgpsnap:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bgpsnap", flag.ContinueOnError)
	var (
		kind   = fs.String("kind", "internet-like", "topology family (see topogen -kinds)")
		n      = fs.Int("n", 10000, "node count (AS count for realistic)")
		seed   = fs.Int64("seed", 1, "generator seed")
		inPath = fs.String("in", "", "read a saved topology (topogen JSON) instead of generating")
		rel    = fs.String("rel", "", "route under Gao-Rexford policies: infer (degree heuristic) or hierarchical (BFS hierarchy); default is policy-free shortest path")
		relRat = fs.Float64("rel-ratio", 0, "with -rel infer: provider degree ratio (0 = 1.5)")
		rounds = fs.Int("max-rounds", 0, "relaxation round cap per destination (0 = 4n+16)")
	)
	var prof profiling.Config
	prof.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	var (
		net  *topology.Network
		rels *topology.Relationships
		err  error
	)
	buildStart := time.Now()
	if *inPath != "" {
		f, err2 := os.Open(*inPath)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		net, rels, err = topology.ReadJSONWith(f)
	} else {
		spec := topology.Spec{Kind: topology.Kind(*kind), N: *n}
		net, err = spec.Build(des.NewRNG(*seed))
	}
	if err != nil {
		return err
	}
	if *rel != "" {
		spec := topology.Spec{Relationships: *rel, RelationshipRatio: *relRat}
		if rels, err = spec.BuildRelationships(net); err != nil {
			return err
		}
	}
	buildTime := time.Since(buildStart)

	relaxStart := time.Now()
	sum, err := snapshot.Stats(net, snapshot.Config{Policy: rels, MaxRounds: *rounds})
	if err != nil {
		return err
	}
	relaxTime := time.Since(relaxStart)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	policy := "shortest path (policy-free)"
	if rels != nil {
		policy = "Gao-Rexford valley-free"
	}
	fmt.Fprintf(out, "nodes        %d\n", sum.Nodes)
	fmt.Fprintf(out, "links        %d\n", sum.Links)
	fmt.Fprintf(out, "ases         %d\n", sum.ASes)
	fmt.Fprintf(out, "policy       %s\n", policy)
	fmt.Fprintf(out, "pairs        %d (%d reachable, %.2f%%)\n",
		sum.Pairs, sum.Reachable, 100*float64(sum.Reachable)/float64(sum.Pairs))
	fmt.Fprintf(out, "rounds       %.2f mean, %d max (per destination)\n", sum.MeanRounds, sum.MaxRounds)
	fmt.Fprintf(out, "path length  %.2f mean, %d max (external hops)\n", sum.MeanPathLen, sum.MaxPathLen)
	fmt.Fprintln(out, "path length histogram:")
	for l, c := range sum.PathLenHist {
		if c == 0 {
			continue
		}
		label := fmt.Sprintf("%3d", l)
		if l == len(sum.PathLenHist)-1 {
			label = fmt.Sprintf("%2d+", l)
		}
		fmt.Fprintf(out, "  %s: %d\n", label, c)
	}
	fmt.Fprintf(out, "build time   %v\n", buildTime.Round(time.Millisecond))
	fmt.Fprintf(out, "relax time   %v\n", relaxTime.Round(time.Millisecond))
	fmt.Fprintf(out, "memory       %d MB sys high-water\n", ms.Sys>>20)
	return nil
}
