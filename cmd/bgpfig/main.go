// Command bgpfig regenerates the paper's evaluation figures.
//
// Usage:
//
//	bgpfig -list
//	bgpfig -fig 7                  # one figure at paper scale
//	bgpfig -fig all -quick         # everything at reduced scale
//	bgpfig -fig 3 -workers 8       # parallel sweep (same bytes as serial)
//	bgpfig -fig 1 -nodes 60 -trials 2 -seed 7 -o out/
//
// Distributed runs split the same work across machines (same bytes as
// local): a coordinator serves sweep cells over HTTP and any number of
// workers (bgpfig -connect or the bgpwork command) execute them:
//
//	bgpfig -fig 3 -serve :9090 -checkpoint fig3.ckpt -o out/
//	bgpfig -connect coordinator:9090      # on each worker machine
//
// Service mode keeps the coordinator alive as a long-running server
// instead of running one figure and exiting: clients submit figure and
// churn runs over HTTP (POST /v1/submit, e.g. via bgpsim -churn ...
// -submit), query live per-window metrics (GET /v1/query), and a
// minimal status page is served at /:
//
//	bgpfig -serve :9090 -service -checkpoint runs.ckpt
//
// Each figure is printed as an aligned text table (the same series the
// paper plots); -o additionally writes one .txt per figure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"bgpsim"
	"bgpsim/internal/bgp"
	"bgpsim/internal/dist"
	"bgpsim/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bgpfig:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bgpfig", flag.ContinueOnError)
	var (
		figID     = fs.String("fig", "all", "figure to regenerate: all, 1..13, or an ablation id")
		list      = fs.Bool("list", false, "list available experiments and exit")
		quick     = fs.Bool("quick", false, "reduced scale (60 nodes, 1 trial, coarse axes)")
		nodes     = fs.Int("nodes", 0, "override node/AS count")
		trials    = fs.Int("trials", 0, "override trials per data point")
		seed      = fs.Int64("seed", 0, "override base seed")
		maxAS     = fs.Int("max-as-size", 0, "override fig13's routers-per-AS cap (paper: 100)")
		prefixes  = fs.Int("prefixes", 0, "prefixes originated per AS (0 or 1 = the paper's single prefix; 1 must reproduce recorded figures byte-identically)")
		workers   = fs.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS, 1 = serial; same bytes either way)")
		shards    = fs.Int("shards", 0, "event-loop shards per simulation (0 or 1 = single engine; >= 2 must reproduce recorded figures byte-identically)")
		shardCC   = fs.Bool("shard-concurrent", false, "with -shards: run shards on concurrent goroutines (deterministic per seed+shards, but NOT byte-identical to recorded figures)")
		warm      = fs.Bool("warmstart", false, "seed each trial from the snapshot backend's converged fixpoint instead of simulating initial convergence (must reproduce recorded figures byte-identically)")
		outDir    = fs.String("o", "", "also write each figure to <dir>/<id>.txt")
		asJSON    = fs.Bool("json", false, "with -o: additionally write <id>.json for plotting tools")
		quiet     = fs.Bool("q", false, "suppress progress output")
		fullScan  = fs.Bool("fullscan", false, "disable the incremental decision process (pre-PR-5 baseline; output must be byte-identical)")
		stormBase = fs.Bool("storm-baseline", false, "disable the storm fast lane (pre-PR-10 baseline; output must be byte-identical)")

		serve    = fs.String("serve", "", "coordinate a distributed run: listen on host:port and hand trial jobs to workers")
		service  = fs.Bool("service", false, "with -serve: stay up as a long-running service accepting figure and churn submissions over HTTP instead of running -fig")
		connect  = fs.String("connect", "", "run as a worker: pull trial jobs from the coordinator at host:port, then exit")
		ckptPath = fs.String("checkpoint", "", "with -serve: record completed trials here and resume from it after a restart")
		leaseTTL = fs.Duration("lease-ttl", 30*time.Second, "with -serve: reassign a trial if its worker is silent this long")
	)
	var prof profiling.Config
	prof.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	bgp.ForceFullScanDefault = *fullScan
	bgp.StormBaselineDefault = *stormBase
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	if *list {
		for _, e := range bgpsim.Experiments() {
			fmt.Printf("%-26s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *serve != "" && *connect != "" {
		return fmt.Errorf("-serve and -connect are mutually exclusive")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *connect != "" {
		w := &dist.Worker{Base: dist.BaseURL(*connect), SimWorkers: *workers}
		if !*quiet {
			w.Log = log.New(os.Stderr, "", log.LstdFlags)
		}
		return w.Work(ctx)
	}

	if *service {
		if *serve == "" {
			return fmt.Errorf("-service requires -serve")
		}
		return runService(ctx, *serve, *ckptPath, *leaseTTL, *quiet)
	}

	opts := bgpsim.PaperOptions()
	if *quick {
		opts = bgpsim.QuickOptions()
	}
	if *nodes > 0 {
		opts.Nodes = *nodes
	}
	if *trials > 0 {
		opts.Trials = *trials
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *maxAS > 0 {
		opts.RealisticMaxASSize = *maxAS
	}
	if *prefixes > 0 {
		opts.PrefixesPerOrigin = *prefixes
	}
	if *shards > 0 {
		opts.Shards = *shards
		opts.ShardConcurrent = *shardCC
	}
	opts.WarmStart = *warm
	opts.Workers = *workers

	var exps []bgpsim.Experiment
	if *figID == "all" {
		exps = bgpsim.Experiments()
	} else {
		e, err := bgpsim.LookupExperiment(*figID)
		if err != nil {
			return err
		}
		exps = []bgpsim.Experiment{e}
	}

	var coord *dist.Coordinator
	if *serve != "" {
		cc := dist.CoordinatorConfig{LeaseTTL: *leaseTTL, CheckpointPath: *ckptPath}
		if !*quiet {
			cc.Log = log.New(os.Stderr, "", log.LstdFlags)
		}
		var err error
		if coord, err = dist.NewCoordinator(cc); err != nil {
			return err
		}
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: coord.Handler()}
		go func() {
			if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "bgpfig: coordinator server:", err)
			}
		}()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "bgpfig: coordinating on %s\n", ln.Addr())
		}
		defer func() {
			// Tell polling workers to exit, then drain in-flight requests.
			coord.Shutdown()
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(sctx)
		}()
	} else if *ckptPath != "" {
		return fmt.Errorf("-checkpoint requires -serve")
	}

	for _, e := range exps {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "== %s: %s\n", e.ID, e.Title)
			opts.Progress = newProgressLine(os.Stderr).update
		}
		opts.Context = ctx
		if coord != nil {
			opts.Sweeper = coord.SweeperFor(ctx, e.ID, opts)
		}
		fig, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		out := fig.Render()
		fmt.Println(out)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			name := strings.ReplaceAll(e.ID, " ", "-")
			if err := os.WriteFile(filepath.Join(*outDir, name+".txt"), []byte(out), 0o644); err != nil {
				return err
			}
			if *asJSON {
				f, err := os.Create(filepath.Join(*outDir, name+".json"))
				if err != nil {
					return err
				}
				err = fig.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// runService keeps a coordinator alive as a long-running service:
// clients submit figure and churn runs over HTTP and the single drain
// loop executes them in queue order until the process is signaled.
func runService(ctx context.Context, addr, ckptPath string, leaseTTL time.Duration, quiet bool) error {
	cc := dist.CoordinatorConfig{LeaseTTL: leaseTTL, CheckpointPath: ckptPath}
	var logger *log.Logger
	if !quiet {
		logger = log.New(os.Stderr, "", log.LstdFlags)
		cc.Log = logger
	}
	coord, err := dist.NewCoordinator(cc)
	if err != nil {
		return err
	}
	svc := dist.NewService(coord, logger)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "bgpfig: service server:", err)
		}
	}()
	if !quiet {
		fmt.Fprintf(os.Stderr, "bgpfig: service on %s (submit: POST /v1/submit, status: GET /)\n", ln.Addr())
	}
	err = svc.Run(ctx)
	coord.Shutdown()
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(sctx)
	if errors.Is(err, context.Canceled) {
		return nil // signaled: clean service exit
	}
	return err
}

// progressLine renders the "\r N/M cells" status line. The experiment
// layer serializes Progress callbacks with monotonic done counts, but
// cells complete out of order under parallel sweeps, so the printer
// guards independently: a lock against concurrent callers and a
// high-water mark so the rewritten line can never move backwards.
type progressLine struct {
	mu   sync.Mutex
	w    io.Writer
	last int
}

func newProgressLine(w io.Writer) *progressLine {
	return &progressLine{w: w}
}

func (p *progressLine) update(done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if done <= p.last {
		return
	}
	p.last = done
	fmt.Fprintf(p.w, "\r   %d/%d cells", done, total)
	if done == total {
		fmt.Fprintln(p.w)
	}
}
