package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFigureErrors(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunOneFigureQuickWithOutput(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-fig", "1", "-quick", "-nodes", "24", "-trials", "1", "-q", "-o", dir, "-json"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Fig 1") {
		t.Errorf("figure file content wrong:\n%s", data)
	}
	jsonData, err := os.ReadFile(filepath.Join(dir, "fig1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jsonData), `"series"`) {
		t.Errorf("json figure missing series:\n%s", jsonData)
	}
}

func TestBadFlagErrors(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
