package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFigureErrors(t *testing.T) {
	if err := run([]string{"-fig", "99"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunOneFigureQuickWithOutput(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-fig", "1", "-quick", "-nodes", "24", "-trials", "1", "-q", "-o", dir, "-json"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Fig 1") {
		t.Errorf("figure file content wrong:\n%s", data)
	}
	jsonData, err := os.ReadFile(filepath.Join(dir, "fig1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(jsonData), `"series"`) {
		t.Errorf("json figure missing series:\n%s", jsonData)
	}
}

func TestBadFlagErrors(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestWorkersFlagProducesSameFigure(t *testing.T) {
	serial, parallel := t.TempDir(), t.TempDir()
	base := []string{"-fig", "1", "-quick", "-nodes", "24", "-trials", "1", "-q"}
	if err := run(append(base, "-workers", "1", "-o", serial)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-workers", "8", "-o", parallel)); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(serial, "fig1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(parallel, "fig1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("-workers changed figure bytes:\n--- 1 ---\n%s--- 8 ---\n%s", a, b)
	}
}

func TestProgressLineMonotonicSerialized(t *testing.T) {
	var buf strings.Builder
	p := newProgressLine(&buf)
	p.update(1, 3)
	p.update(1, 3) // duplicate: ignored
	p.update(2, 3)
	p.update(1, 3) // stale out-of-order update: ignored
	p.update(3, 3)
	got := buf.String()
	want := "\r   1/3 cells\r   2/3 cells\r   3/3 cells\n"
	if got != want {
		t.Errorf("progress output = %q, want %q", got, want)
	}
}
