// Command bgpbench runs the simulator's canonical benchmark suite
// (internal/bench, the same bodies `go test -bench` runs) outside the
// test harness and emits machine-readable results — the repo's perf
// trajectory (BENCH_*.json) is produced by this tool.
//
// Usage:
//
//	bgpbench                                # run everything, table to stdout
//	bgpbench -out BENCH_2.json              # also write JSON
//	bgpbench -run 'ConvergeAndFail' -benchtime 5x
//	bgpbench -check BENCH_2.json            # regression gate: fail if
//	                                        # allocs/op regressed >10%
//	bgpbench -list
//
// The -check mode compares allocs/op only: allocation counts are stable
// across machines, while ns/op is not, so CI can block on allocation
// regressions without flaking on shared-runner timing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"testing"

	"bgpsim/internal/bench"
	"bgpsim/internal/bgp"
	"bgpsim/internal/profiling"
)

// File is the BENCH_*.json document bgpbench writes.
type File struct {
	// Schema identifies the document format.
	Schema string `json:"schema"`
	// Go is the toolchain that produced the numbers.
	Go string `json:"go"`
	// GOOS and GOARCH identify the platform.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// Benchtime is the -benchtime value the run used.
	Benchtime string `json:"benchtime"`
	// Results holds one entry per benchmark, in suite order.
	Results []Result `json:"results"`
}

// Result is one benchmark's measurement.
type Result struct {
	// Name is the registry name (Benchmark<Name> under `go test`).
	Name string `json:"name"`
	// Iterations is the TOTAL iteration count behind NsPerOp — the sum
	// of b.N over all -runs repetitions, so NsPerOp is always
	// total-time / Iterations and never an average whose sample size is
	// misstated.
	Iterations int `json:"iterations"`
	// NsPerOp is wall-clock time per iteration across all runs
	// (machine-dependent).
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is heap bytes allocated per iteration (iteration-
	// weighted across runs).
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is heap allocations per iteration — the number the
	// -check regression gate compares.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Runs is how many independent testing.Benchmark repetitions were
	// aggregated (the -runs flag).
	Runs int `json:"runs,omitempty"`
	// NsPerOpMin and NsPerOpMean summarize the per-run ns/op values:
	// the best single run (least scheduler noise) and the unweighted
	// mean across runs. With -runs 1 both equal NsPerOp.
	NsPerOpMin  float64 `json:"ns_per_op_min,omitempty"`
	NsPerOpMean float64 `json:"ns_per_op_mean,omitempty"`
	// Extra carries the benchmark's custom metrics (b.ReportMetric),
	// iteration-weighted across runs — notably the phase split
	// "setup-ns/op"/"storm-ns/op" of the large-scale entries and
	// "windows/op" of ChurnStep.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bgpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	testing.Init() // register test.* flags so -benchtime reaches testing.Benchmark
	fs := flag.NewFlagSet("bgpbench", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list benchmarks and exit")
		runExpr   = fs.String("run", "", "only run benchmarks matching this regexp")
		benchtime = fs.String("benchtime", "3x", "per-benchmark budget, Go benchtime syntax (3x, 1s, ...)")
		outPath   = fs.String("out", "", "write results as JSON to this file")
		checkPath = fs.String("check", "", "compare allocs/op against this baseline JSON and fail on regression")
		tolerance = fs.Float64("tolerance", 1.10, "with -check: allowed allocs/op ratio over baseline")
		fullScan  = fs.Bool("fullscan", false, "disable the incremental decision process (pre-PR-5 baseline mode)")
		prefixes  = fs.Int("prefixes", 0, "override ConvergeMultiPrefix's prefixes-per-AS dimension (0 = suite default)")
		shards    = fs.Int("shards", 0, "override ConvergeLargeScaleSharded's shard count (0 = suite default)")
		warm      = fs.Bool("warmstart", false, "run scenario-layer entries warm-started from the snapshot backend's fixpoint (same results, less wall clock)")
		runs      = fs.Int("runs", 1, "repeat each benchmark this many times; ns_per_op aggregates over all runs and the JSON records per-run min/mean")
		stormBase = fs.Bool("storm-baseline", false, "disable the storm fast lane (pre-PR-10 baseline: DefaultParams leaves every Storm* toggle off; results are byte-identical, only wall clock moves)")
	)
	var prof profiling.Config
	prof.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be at least 1")
	}
	bgp.ForceFullScanDefault = *fullScan
	bgp.StormBaselineDefault = *stormBase
	if *prefixes > 0 {
		bench.MultiPrefixCount = *prefixes
	}
	if *shards > 0 {
		bench.ShardCount = *shards
	}
	bench.WarmStart = *warm

	if *list {
		for _, e := range bench.Suite() {
			fmt.Fprintln(out, e.Name)
		}
		return nil
	}

	var filter *regexp.Regexp
	if *runExpr != "" {
		var err error
		if filter, err = regexp.Compile(*runExpr); err != nil {
			return fmt.Errorf("bad -run regexp: %w", err)
		}
	}
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		return fmt.Errorf("bad -benchtime: %w", err)
	}

	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	doc := File{
		Schema:    "bgpsim/bench/v1",
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: *benchtime,
	}
	for _, e := range bench.Suite() {
		if filter != nil && !filter.MatchString(e.Name) {
			continue
		}
		r := measure(e, *runs)
		doc.Results = append(doc.Results, r)
		fmt.Fprintf(out, "%-28s %10d ns/op %12d B/op %10d allocs/op (n=%d)\n",
			r.Name, int64(r.NsPerOp), r.BytesPerOp, r.AllocsPerOp, r.Iterations)
		for _, k := range sortedKeys(r.Extra) {
			fmt.Fprintf(out, "%-28s %10d %s\n", "", int64(r.Extra[k]), k)
		}
	}
	if len(doc.Results) == 0 {
		return fmt.Errorf("no benchmarks matched -run %q", *runExpr)
	}

	if *outPath != "" {
		if err := writeJSON(*outPath, doc); err != nil {
			return err
		}
	}
	if *checkPath != "" {
		return check(out, doc, *checkPath, *tolerance)
	}
	return nil
}

// measure runs one suite entry `runs` times through testing.Benchmark
// and aggregates honestly: the headline ns/op is total time over total
// iterations (so Iterations is the true sample size), per-run min/mean
// expose the spread, and allocation counts and ReportMetric extras are
// iteration-weighted.
func measure(e bench.Entry, runs int) Result {
	var (
		totalN    int
		totalNs   int64
		sumBytes  int64
		sumAllocs int64
		perRunNs  []float64
		extraSums = map[string]float64{}
	)
	for k := 0; k < runs; k++ {
		res := testing.Benchmark(e.Fn)
		n := res.N
		totalN += n
		totalNs += res.T.Nanoseconds()
		sumBytes += res.AllocedBytesPerOp() * int64(n)
		sumAllocs += res.AllocsPerOp() * int64(n)
		perRunNs = append(perRunNs, float64(res.T.Nanoseconds())/float64(n))
		for name, v := range res.Extra {
			extraSums[name] += v * float64(n)
		}
	}
	r := Result{
		Name:        e.Name,
		Iterations:  totalN,
		NsPerOp:     float64(totalNs) / float64(totalN),
		BytesPerOp:  sumBytes / int64(totalN),
		AllocsPerOp: sumAllocs / int64(totalN),
		Runs:        runs,
	}
	min, sum := perRunNs[0], 0.0
	for _, v := range perRunNs {
		if v < min {
			min = v
		}
		sum += v
	}
	r.NsPerOpMin, r.NsPerOpMean = min, sum/float64(len(perRunNs))
	if len(extraSums) > 0 {
		r.Extra = make(map[string]float64, len(extraSums))
		for name, s := range extraSums {
			r.Extra[name] = s / float64(totalN)
		}
	}
	return r
}

// sortedKeys returns m's keys in fixed order for stable table output.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeJSON writes the document with trailing newline, atomically enough
// for CI artifact use.
func writeJSON(path string, doc File) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// check compares allocs/op and bytes/op in doc against the baseline
// file and returns an error when any shared benchmark regressed beyond
// the tolerance. Both metrics count heap allocation, which is stable
// across machines (unlike ns/op); bytes/op is what catches a footprint
// regression that keeps the allocation count flat — e.g. widening a
// per-destination array — which matters once the prefix dimension
// multiplies every table. Benchmarks present on only one side are
// reported but not fatal, so adding or retiring a benchmark does not
// break the gate.
func check(out *os.File, doc File, baselinePath string, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	baseline := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	// Entries allocating under this many bytes per op are exempt from
	// the bytes gate: at that size a single map-growth event crosses any
	// ratio threshold, and the allocs gate already covers them.
	const bytesFloor = 4096
	var regressions []string
	for _, r := range doc.Results {
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Fprintf(out, "check: %s has no baseline (new benchmark?), skipping\n", r.Name)
			continue
		}
		ok = true
		if float64(r.AllocsPerOp) > float64(b.AllocsPerOp)*tolerance {
			ok = false
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %d > baseline %d x %.2f", r.Name, r.AllocsPerOp, b.AllocsPerOp, tolerance))
		}
		if b.BytesPerOp >= bytesFloor && float64(r.BytesPerOp) > float64(b.BytesPerOp)*tolerance {
			ok = false
			regressions = append(regressions, fmt.Sprintf(
				"%s: bytes/op %d > baseline %d x %.2f", r.Name, r.BytesPerOp, b.BytesPerOp, tolerance))
		}
		if ok {
			fmt.Fprintf(out, "check: %s ok (%d allocs/op, %d B/op; baseline %d, %d)\n",
				r.Name, r.AllocsPerOp, r.BytesPerOp, b.AllocsPerOp, b.BytesPerOp)
		}
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(out, "REGRESSION:", r)
		}
		return fmt.Errorf("%d allocation regression(s) vs %s", len(regressions), baselinePath)
	}
	return nil
}
