package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the tool with stdout redirected to a pipe-backed temp file
// and returns the printed output.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestListPrintsSuite(t *testing.T) {
	out, err := capture(t, []string{"-list"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ConvergeAndFailFIFO", "ConvergeAndFailBatched", "ScenarioDynamicMRAI"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in -list output:\n%s", want, out)
		}
	}
}

func TestRunFilterAndJSONOutput(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "bench.json")
	out, err := capture(t, []string{"-run", "^ScenarioSmallFailureFIFO$", "-benchtime", "1x", "-out", outPath})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ScenarioSmallFailureFIFO") {
		t.Fatalf("no table row printed:\n%s", out)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc File
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "bgpsim/bench/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if len(doc.Results) != 1 || doc.Results[0].Name != "ScenarioSmallFailureFIFO" {
		t.Fatalf("results = %+v", doc.Results)
	}
	r := doc.Results[0]
	if r.AllocsPerOp <= 0 || r.BytesPerOp <= 0 || r.NsPerOp <= 0 {
		t.Errorf("implausible measurement: %+v", r)
	}
}

func TestUnmatchedRunFilterFails(t *testing.T) {
	if _, err := capture(t, []string{"-run", "NoSuchBenchmark"}); err == nil {
		t.Fatal("expected error for unmatched -run filter")
	}
}

// TestCheckMode exercises the regression gate both ways against
// fabricated baselines: a generous baseline passes, a tiny one fails.
func TestCheckMode(t *testing.T) {
	writeBaseline := func(allocs int64) string {
		t.Helper()
		doc := File{
			Schema:  "bgpsim/bench/v1",
			Results: []Result{{Name: "ScenarioSmallFailureFIFO", AllocsPerOp: allocs}},
		}
		data, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "base.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	args := []string{"-run", "^ScenarioSmallFailureFIFO$", "-benchtime", "1x", "-check"}
	if _, err := capture(t, append(args, writeBaseline(1<<40))); err != nil {
		t.Errorf("generous baseline should pass, got %v", err)
	}
	out, err := capture(t, append(args, writeBaseline(1)))
	if err == nil {
		t.Error("tiny baseline should fail the allocs/op gate")
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("regression not reported:\n%s", out)
	}
}
