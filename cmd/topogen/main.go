// Command topogen generates and inspects experiment topologies — the
// repo's replacement for the modified BRITE generator the paper used.
//
// Usage:
//
//	topogen -kinds                          # list families
//	topogen -kind skewed-70-30 -n 120 -seed 1 -o topo.json
//	topogen -in topo.json -stats            # inspect a saved topology
//	topogen -kind internet-like -n 500 -rel infer -o topo.json
//	                                        # annotate Gao-Rexford
//	                                        # relationships into the file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"bgpsim"
	"bgpsim/internal/des"
	"bgpsim/internal/profiling"
	"bgpsim/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		kinds   = fs.Bool("kinds", false, "list topology families and exit")
		kind    = fs.String("kind", "skewed-70-30", "topology family")
		n       = fs.Int("n", 120, "node count (AS count for realistic)")
		seed    = fs.Int64("seed", 1, "generator seed")
		outPath = fs.String("o", "", "write JSON to this file (default stdout if no -stats)")
		inPath  = fs.String("in", "", "read a saved topology instead of generating")
		stats   = fs.Bool("stats", false, "print summary statistics")
		rel     = fs.String("rel", "", "annotate Gao-Rexford relationships: infer (degree heuristic) or hierarchical (BFS hierarchy); written into the JSON")
		relRat  = fs.Float64("rel-ratio", 0, "with -rel infer: degree ratio above which the bigger endpoint is the provider (0 = 1.5)")
	)
	var prof profiling.Config
	prof.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	if *kinds {
		for _, k := range topology.Kinds() {
			fmt.Fprintln(out, k)
		}
		return nil
	}

	var net *bgpsim.Network
	var rels *topology.Relationships
	var err error
	if *inPath != "" {
		f, err2 := os.Open(*inPath)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		// A saved file may already carry annotations; -rel re-derives and
		// replaces them below.
		net, rels, err = topology.ReadJSONWith(f)
	} else {
		spec := topology.Spec{Kind: topology.Kind(*kind), N: *n}
		net, err = spec.Build(des.NewRNG(*seed))
	}
	if err != nil {
		return err
	}
	if *rel != "" {
		spec := topology.Spec{Relationships: *rel, RelationshipRatio: *relRat}
		if rels, err = spec.BuildRelationships(net); err != nil {
			return err
		}
	}

	if *stats {
		printStats(out, net)
		printRelStats(out, rels)
	}
	switch {
	case *outPath != "":
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := net.WriteJSONWith(f, rels); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d nodes, %d links)\n", *outPath, net.NumNodes(), net.NumLinks())
	case !*stats:
		return net.WriteJSONWith(out, rels)
	}
	return nil
}

// printRelStats summarizes a relationship annotation: how many inter-AS
// links are transit (customer-provider) versus peering.
func printRelStats(out io.Writer, rels *topology.Relationships) {
	if rels == nil {
		return
	}
	var transit, peering int
	for _, l := range rels.LinkAnnotations() {
		if l.Rel == topology.RelPeer {
			peering++
		} else {
			transit++
		}
	}
	fmt.Fprintf(out, "relationships  %d transit, %d peering\n", transit, peering)
}

func printStats(out io.Writer, net *bgpsim.Network) {
	m := topology.Metrics(net)
	fmt.Fprintf(out, "nodes          %d\n", m.Nodes)
	fmt.Fprintf(out, "ases           %d\n", m.ASes)
	fmt.Fprintf(out, "links          %d (%d inter-AS, %d IBGP)\n", m.Links, m.ExternalLinks, m.InternalLinks)
	fmt.Fprintf(out, "avg degree     %.2f\n", m.AvgDegree)
	fmt.Fprintf(out, "max degree     %d\n", m.MaxDegree)
	fmt.Fprintf(out, "connected      %v\n", m.Connected)
	fmt.Fprintf(out, "clustering     %.3f\n", m.Clustering)
	fmt.Fprintf(out, "avg path len   %.2f hops\n", m.AvgPathLength)
	fmt.Fprintf(out, "diameter       %d hops\n", m.Diameter)
	fmt.Fprintf(out, "assortativity  %+.3f\n", m.Assortativity)
	fmt.Fprintf(out, "degree entropy %.2f bits\n", m.DegreeEntropy)
	hist := net.DegreeHistogram()
	degrees := make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	fmt.Fprintln(out, "degree histogram:")
	for _, d := range degrees {
		fmt.Fprintf(out, "  %3d: %d\n", d, hist[d])
	}
}
