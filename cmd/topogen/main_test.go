package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestKindsListing(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kinds"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"skewed-70-30", "realistic", "waxman", "glp"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("kinds output missing %q", want)
		}
	}
}

func TestGenerateWithStats(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "skewed-70-30", "-n", "60", "-seed", "3", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"nodes          60", "connected      true", "assortativity", "degree histogram:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGenerateJSONToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "skewed-70-30", "-n", "30"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"nodes"`) || !strings.Contains(out.String(), `"links"`) {
		t.Error("stdout JSON missing sections")
	}
}

func TestWriteAndReadBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	var out bytes.Buffer
	if err := run([]string{"-kind", "internet-like", "-n", "40", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-in", path, "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "nodes          40") {
		t.Errorf("read-back stats wrong:\n%s", out.String())
	}
}

func TestRelationshipAnnotationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	var out bytes.Buffer
	if err := run([]string{"-kind", "internet-like", "-n", "40", "-rel", "infer", "-stats", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "relationships  ") {
		t.Errorf("stats missing relationship summary:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"relationships"`) {
		t.Error("written JSON carries no relationship annotations")
	}
	// Reading the annotated file back must surface the saved annotations
	// without re-deriving them.
	firstStats := out.String()[strings.Index(out.String(), "relationships  "):]
	out.Reset()
	if err := run([]string{"-in", path, "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), strings.TrimSpace(strings.SplitN(firstStats, "\n", 2)[0])) {
		t.Errorf("read-back relationship summary differs:\n%s", out.String())
	}
}

func TestBadRelModeErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "skewed-70-30", "-n", "30", "-rel", "friend"}, &out); err == nil {
		t.Error("unknown relationship mode accepted")
	}
}

func TestBadKindErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "nonsense", "-n", "10"}, &out); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestMissingInputFileErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-in", "/does/not/exist.json"}, &out); err == nil {
		t.Error("missing input accepted")
	}
}
