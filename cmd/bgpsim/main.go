// Command bgpsim runs one BGP large-scale-failure scenario and reports
// the post-failure convergence delay and message counts.
//
// Usage:
//
//	bgpsim -topo skewed-70-30 -nodes 120 -fail 5 -scheme mrai=0.5
//	bgpsim -topo realistic -nodes 120 -fail 10 -scheme batch+dynamic -trials 5
//	bgpsim -fail 10 -trials 8 -workers 4   # trials in parallel, same results
//
// Schemes: mrai=<seconds>, degree=<low>,<high>, dynamic, batch[=<seconds>],
// batch+dynamic.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bgpsim"
	"bgpsim/internal/profiling"
	"bgpsim/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bgpsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("bgpsim", flag.ContinueOnError)
	var (
		topoKind = fs.String("topo", "skewed-70-30", "topology kind (see topogen -kinds)")
		nodes    = fs.Int("nodes", 120, "node count (AS count for realistic)")
		failPct  = fs.Float64("fail", 5, "failure size, percent of routers")
		scheme   = fs.String("scheme", "mrai=30", "scheme: mrai=S | degree=L,H | dynamic | batch[=S] | batch+dynamic")
		trials   = fs.Int("trials", 1, "replicated trials")
		workers  = fs.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS, 1 = serial; same results either way)")
		seed     = fs.Int64("seed", 1, "base seed")
		prefixes = fs.Int("prefixes", 1, "prefixes originated per AS")
		policy   = fs.Bool("policy", false, "enable Gao-Rexford policies (hierarchical relationships)")
		shards   = fs.Int("shards", 0, "event-loop shards per simulation (0 or 1 = single engine; >= 2 is byte-identical in the default sequenced mode)")
		shardCC  = fs.Bool("shard-concurrent", false, "with -shards: run shards on concurrent goroutines (own determinism class)")
		warm     = fs.Bool("warmstart", false, "seed each trial from the snapshot backend's converged fixpoint instead of simulating initial convergence (same results, less wall clock)")
	)
	var prof profiling.Config
	prof.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()
	sch, err := parseScheme(*scheme)
	if err != nil {
		return err
	}
	sc := bgpsim.Scenario{
		Topology:           bgpsim.MultiPrefix(bgpsim.TopologySpec{Kind: topology.Kind(*topoKind), N: *nodes}, *prefixes),
		Failure:            bgpsim.GeographicFailure(*failPct / 100),
		Scheme:             sch,
		PolicyHierarchical: *policy,
		Shards:             *shards,
		ShardConcurrent:    *shardCC,
		WarmStart:          *warm,
		Seed:               *seed,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	st, err := bgpsim.RunTrialsContext(ctx, sc, *trials, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "topology      %s n=%d\n", *topoKind, *nodes)
	fmt.Fprintf(out, "failure       %.3g%% of routers (geographic, grid center)\n", *failPct)
	fmt.Fprintf(out, "scheme        %s\n", sch.Name)
	fmt.Fprintf(out, "trials        %d\n", st.N)
	fmt.Fprintf(out, "delay         %.3fs mean (std %.3fs)\n", st.MeanDelay.Seconds(), st.StdDelay.Seconds())
	fmt.Fprintf(out, "messages      %.0f mean (std %.0f)\n", st.MeanMessages, st.StdMessages)
	if st.MeanDiscard > 0 {
		fmt.Fprintf(out, "stale dropped %.0f mean\n", st.MeanDiscard)
	}
	for i, r := range st.Results {
		fmt.Fprintf(out, "  trial %d: delay=%.3fs msgs=%d (ann=%d wd=%d) failed=%d/%d\n",
			i, r.Delay.Seconds(), r.Messages, r.Announcements, r.Withdrawals, r.FailedNodes, r.Nodes)
	}
	return nil
}

// parseScheme translates the CLI scheme syntax.
func parseScheme(s string) (bgpsim.Scheme, error) {
	switch {
	case s == "dynamic":
		return bgpsim.DynamicMRAI(), nil
	case s == "batch+dynamic":
		return bgpsim.BatchedDynamic(), nil
	case s == "batch":
		return bgpsim.BatchedProcessing(500 * time.Millisecond), nil
	case strings.HasPrefix(s, "batch="):
		d, err := parseSeconds(strings.TrimPrefix(s, "batch="))
		if err != nil {
			return bgpsim.Scheme{}, err
		}
		return bgpsim.BatchedProcessing(d), nil
	case strings.HasPrefix(s, "mrai="):
		d, err := parseSeconds(strings.TrimPrefix(s, "mrai="))
		if err != nil {
			return bgpsim.Scheme{}, err
		}
		return bgpsim.ConstantMRAI(d), nil
	case strings.HasPrefix(s, "degree="):
		parts := strings.Split(strings.TrimPrefix(s, "degree="), ",")
		if len(parts) != 2 {
			return bgpsim.Scheme{}, fmt.Errorf("degree scheme needs low,high seconds: %q", s)
		}
		low, err := parseSeconds(parts[0])
		if err != nil {
			return bgpsim.Scheme{}, err
		}
		high, err := parseSeconds(parts[1])
		if err != nil {
			return bgpsim.Scheme{}, err
		}
		return bgpsim.DegreeDependentMRAI(5, low, high), nil
	default:
		return bgpsim.Scheme{}, fmt.Errorf("unknown scheme %q", s)
	}
}

func parseSeconds(s string) (time.Duration, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad seconds value %q", s)
	}
	return time.Duration(v * float64(time.Second)), nil
}
