// Command bgpsim runs one BGP large-scale-failure scenario and reports
// the post-failure convergence delay and message counts.
//
// Usage:
//
//	bgpsim -topo skewed-70-30 -nodes 120 -fail 5 -scheme mrai=0.5
//	bgpsim -topo realistic -nodes 120 -fail 10 -scheme batch+dynamic -trials 5
//	bgpsim -fail 10 -trials 8 -workers 4   # trials in parallel, same results
//
// Churn programs replace the single batch failure with a streaming
// perturbation program; every event opens its own measurement window and
// the per-window metric stream is printed (deterministic per seed):
//
//	bgpsim -churn poisson-link-flap -churn-rate 0.1 -churn-duration 60s
//	bgpsim -churn rolling-outage -churn-regions 4 -churn-period 30s -churn-fraction 0.05
//	bgpsim -churn flap-cycle -churn-cycles 5 -churn-period 20s -submit coordinator:9090
//
// With -submit the program is sent to a bgpfig -serve -service
// coordinator instead of running locally: windows stream back live as
// remote workers close them, and the final assembled stream is printed
// (byte-identical to the local run).
//
// Schemes: mrai=<seconds>, degree=<low>,<high>, dynamic, batch[=<seconds>],
// batch+dynamic.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bgpsim"
	"bgpsim/internal/churn"
	"bgpsim/internal/dist"
	"bgpsim/internal/profiling"
	"bgpsim/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bgpsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("bgpsim", flag.ContinueOnError)
	var (
		topoKind = fs.String("topo", "skewed-70-30", "topology kind (see topogen -kinds)")
		nodes    = fs.Int("nodes", 120, "node count (AS count for realistic)")
		failPct  = fs.Float64("fail", 5, "failure size, percent of routers")
		scheme   = fs.String("scheme", "mrai=30", "scheme: mrai=S | degree=L,H | dynamic | batch[=S] | batch+dynamic")
		trials   = fs.Int("trials", 1, "replicated trials")
		workers  = fs.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS, 1 = serial; same results either way)")
		seed     = fs.Int64("seed", 1, "base seed")
		prefixes = fs.Int("prefixes", 1, "prefixes originated per AS")
		policy   = fs.Bool("policy", false, "enable Gao-Rexford policies (hierarchical relationships)")
		shards   = fs.Int("shards", 0, "event-loop shards per simulation (0 or 1 = single engine; >= 2 is byte-identical in the default sequenced mode)")
		shardCC  = fs.Bool("shard-concurrent", false, "with -shards: run shards on concurrent goroutines (own determinism class)")
		warm     = fs.Bool("warmstart", false, "seed each trial from the snapshot backend's converged fixpoint instead of simulating initial convergence (same results, less wall clock)")

		churnKind  = fs.String("churn", "", "run a churn program instead of a batch failure: poisson-link-flap | poisson-node-fail | rolling-outage | flap-cycle")
		churnRate  = fs.Float64("churn-rate", 0.1, "poisson kinds: mean arrivals per simulated second")
		churnDur   = fs.Duration("churn-duration", time.Minute, "poisson kinds: arrival horizon in simulated time")
		churnHold  = fs.Duration("churn-hold-min", 4*time.Second, "minimum hold (down) time per perturbation")
		churnHoldX = fs.Duration("churn-hold-max", 12*time.Second, "maximum hold (down) time per perturbation")
		churnCyc   = fs.Int("churn-cycles", 4, "flap-cycle: repetition count")
		churnPer   = fs.Duration("churn-period", 30*time.Second, "flap-cycle and rolling-outage: spacing between perturbations")
		churnReg   = fs.Int("churn-regions", 3, "rolling-outage: region count sweeping the grid")
		churnFrac  = fs.Float64("churn-fraction", 0.05, "rolling-outage: fraction of routers failing per region")
		submitTo   = fs.String("submit", "", "with -churn: submit the program to a bgpfig -serve -service coordinator at host:port and stream results back")
	)
	var prof profiling.Config
	prof.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()
	sch, err := parseScheme(*scheme)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *churnKind != "" {
		if *policy {
			return fmt.Errorf("-policy is not supported with -churn (churn programs run the default full-mesh policy)")
		}
		csc := churn.Scenario{
			Topology: bgpsim.MultiPrefix(bgpsim.TopologySpec{Kind: topology.Kind(*topoKind), N: *nodes}, *prefixes),
			Scheme:   *scheme,
			Program: churn.Spec{
				Kind:     churn.Kind(*churnKind),
				Duration: *churnDur,
				Rate:     *churnRate,
				HoldMin:  *churnHold,
				HoldMax:  *churnHoldX,
				Cycles:   *churnCyc,
				Period:   *churnPer,
				Regions:  *churnReg,
				Fraction: *churnFrac,
			},
			Seed:            *seed,
			Shards:          *shards,
			ShardConcurrent: *shardCC,
			WarmStart:       *warm,
		}
		if err := csc.Program.Validate(); err != nil {
			return err
		}
		if *submitTo != "" {
			return submitChurn(ctx, *submitTo, dist.ChurnDesc{Scenario: csc, Trials: *trials}, out)
		}
		rr, err := churn.Run(ctx, csc, *trials, *workers, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(out, rr.Render())
		return nil
	}
	if *submitTo != "" {
		return fmt.Errorf("-submit requires -churn (figure submissions go through bgpfig)")
	}

	sc := bgpsim.Scenario{
		Topology:           bgpsim.MultiPrefix(bgpsim.TopologySpec{Kind: topology.Kind(*topoKind), N: *nodes}, *prefixes),
		Failure:            bgpsim.GeographicFailure(*failPct / 100),
		Scheme:             sch,
		PolicyHierarchical: *policy,
		Shards:             *shards,
		ShardConcurrent:    *shardCC,
		WarmStart:          *warm,
		Seed:               *seed,
	}
	st, err := bgpsim.RunTrialsContext(ctx, sc, *trials, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "topology      %s n=%d\n", *topoKind, *nodes)
	fmt.Fprintf(out, "failure       %.3g%% of routers (geographic, grid center)\n", *failPct)
	fmt.Fprintf(out, "scheme        %s\n", sch.Name)
	fmt.Fprintf(out, "trials        %d\n", st.N)
	fmt.Fprintf(out, "delay         %.3fs mean (std %.3fs)\n", st.MeanDelay.Seconds(), st.StdDelay.Seconds())
	fmt.Fprintf(out, "messages      %.0f mean (std %.0f)\n", st.MeanMessages, st.StdMessages)
	if st.MeanDiscard > 0 {
		fmt.Fprintf(out, "stale dropped %.0f mean\n", st.MeanDiscard)
	}
	for i, r := range st.Results {
		fmt.Fprintf(out, "  trial %d: delay=%.3fs msgs=%d (ann=%d wd=%d) failed=%d/%d\n",
			i, r.Delay.Seconds(), r.Messages, r.Announcements, r.Withdrawals, r.FailedNodes, r.Nodes)
	}
	return nil
}

// submitChurn sends the churn program to a service-mode coordinator,
// streams windows back as workers close them, and finally prints the
// authoritative assembled metric stream (byte-identical to a local run
// of the same scenario).
func submitChurn(ctx context.Context, addr string, desc dist.ChurnDesc, out *os.File) error {
	base := dist.BaseURL(addr)
	client := &http.Client{Timeout: 30 * time.Second}
	body, err := json.Marshal(dist.SubmitRequest{Churn: &desc})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/submit", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	var ack dist.SubmitResponse
	if err := decodeReply(resp, &ack); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	fmt.Fprintf(out, "submitted %s program as run %d to %s\n", desc.Scenario.Program.Kind, ack.ID, base)

	seen := 0
	query := base + "/v1/query?id=" + strconv.Itoa(ack.ID)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(300 * time.Millisecond):
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, query, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		var info dist.SubmissionInfo
		if err := decodeReply(resp, &info); err != nil {
			return fmt.Errorf("query: %w", err)
		}
		for _, lw := range info.Windows[seen:] {
			w := lw.Window
			fmt.Fprintf(out, "  live trial=%d win=%d %-12s t=+%-8s delay=%.3fs msgs=%d\n",
				lw.Trial, w.Index, w.Event, w.At, w.Delay.Seconds(), w.Announcements+w.Withdrawals)
		}
		seen = len(info.Windows)
		switch info.State {
		case dist.SubmissionDone:
			fmt.Fprint(out, info.Result)
			return nil
		case dist.SubmissionFailed:
			return fmt.Errorf("run %d failed: %s", ack.ID, info.Error)
		}
	}
}

// decodeReply decodes a JSON API response, folding non-200 statuses into
// an error carrying the server's message.
func decodeReply(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// parseScheme translates the CLI scheme syntax. The implementation lives
// in the experiment package (ParseScheme) so churn descriptors can name
// schemes over the wire with the identical syntax.
func parseScheme(s string) (bgpsim.Scheme, error) {
	return bgpsim.ParseScheme(s)
}

func parseSeconds(s string) (time.Duration, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad seconds value %q", s)
	}
	return time.Duration(v * float64(time.Second)), nil
}
