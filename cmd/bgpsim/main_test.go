package main

import (
	"testing"
	"time"
)

func TestParseSchemeVariants(t *testing.T) {
	cases := []struct {
		in       string
		wantName string
	}{
		{"mrai=0.5", "MRAI=0.5s"},
		{"mrai=30", "MRAI=30s"},
		{"dynamic", "dynamic"},
		{"batch", "batch,MRAI=0.5s"},
		{"batch=2.25", "batch,MRAI=2.25s"},
		{"batch+dynamic", "batch+dynamic"},
	}
	for _, c := range cases {
		got, err := parseScheme(c.in)
		if err != nil {
			t.Errorf("parseScheme(%q): %v", c.in, err)
			continue
		}
		if got.Name != c.wantName {
			t.Errorf("parseScheme(%q).Name = %q, want %q", c.in, got.Name, c.wantName)
		}
		if got.Apply == nil {
			t.Errorf("parseScheme(%q) has nil Apply", c.in)
		}
	}
}

func TestParseSchemeDegree(t *testing.T) {
	got, err := parseScheme("degree=0.5,2.25")
	if err != nil {
		t.Fatal(err)
	}
	if got.Apply == nil {
		t.Fatal("nil Apply")
	}
}

func TestParseSchemeErrors(t *testing.T) {
	for _, in := range []string{"", "nope", "mrai=", "mrai=abc", "mrai=-1",
		"degree=1", "degree=a,b", "batch=x"} {
		if _, err := parseScheme(in); err == nil {
			t.Errorf("parseScheme(%q) accepted", in)
		}
	}
}

func TestParseSeconds(t *testing.T) {
	if d, err := parseSeconds("1.5"); err != nil || d != 1500*time.Millisecond {
		t.Errorf("parseSeconds(1.5) = %v, %v", d, err)
	}
	if _, err := parseSeconds("-2"); err == nil {
		t.Error("negative accepted")
	}
}
