package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseSchemeVariants(t *testing.T) {
	cases := []struct {
		in       string
		wantName string
	}{
		{"mrai=0.5", "MRAI=0.5s"},
		{"mrai=30", "MRAI=30s"},
		{"dynamic", "dynamic"},
		{"batch", "batch,MRAI=0.5s"},
		{"batch=2.25", "batch,MRAI=2.25s"},
		{"batch+dynamic", "batch+dynamic"},
	}
	for _, c := range cases {
		got, err := parseScheme(c.in)
		if err != nil {
			t.Errorf("parseScheme(%q): %v", c.in, err)
			continue
		}
		if got.Name != c.wantName {
			t.Errorf("parseScheme(%q).Name = %q, want %q", c.in, got.Name, c.wantName)
		}
		if got.Apply == nil {
			t.Errorf("parseScheme(%q) has nil Apply", c.in)
		}
	}
}

func TestParseSchemeDegree(t *testing.T) {
	got, err := parseScheme("degree=0.5,2.25")
	if err != nil {
		t.Fatal(err)
	}
	if got.Apply == nil {
		t.Fatal("nil Apply")
	}
}

func TestParseSchemeErrors(t *testing.T) {
	for _, in := range []string{"", "nope", "mrai=", "mrai=abc", "mrai=-1",
		"degree=1", "degree=a,b", "batch=x"} {
		if _, err := parseScheme(in); err == nil {
			t.Errorf("parseScheme(%q) accepted", in)
		}
	}
}

// runToString drives run() with its output captured in a temp file.
func runToString(t *testing.T, args []string) string {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(args, f); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	b, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestChurnCLIDeterministic(t *testing.T) {
	args := []string{"-nodes", "30", "-scheme", "mrai=0.5", "-trials", "2",
		"-churn", "flap-cycle", "-churn-cycles", "2", "-churn-period", "20s",
		"-churn-hold-min", "2s", "-churn-hold-max", "5s"}
	first := runToString(t, args)
	if first == "" {
		t.Fatal("churn run printed nothing")
	}
	if second := runToString(t, append(args, "-workers", "4")); second != first {
		t.Errorf("churn output depends on worker count:\n--- workers=default ---\n%s--- workers=4 ---\n%s", first, second)
	}
}

func TestChurnCLIRejectsBadFlags(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	bad := [][]string{
		{"-churn", "no-such-kind"},
		{"-churn", "poisson-link-flap", "-churn-rate", "-1"},
		{"-churn", "flap-cycle", "-policy"},
		{"-submit", "localhost:1"}, // -submit without -churn
	}
	for _, args := range bad {
		if err := run(args, null); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestParseSeconds(t *testing.T) {
	if d, err := parseSeconds("1.5"); err != nil || d != 1500*time.Millisecond {
		t.Errorf("parseSeconds(1.5) = %v, %v", d, err)
	}
	if _, err := parseSeconds("-2"); err == nil {
		t.Error("negative accepted")
	}
}
