package main

import "testing"

func TestParseSchemeVariants(t *testing.T) {
	for _, in := range []string{"dynamic", "batch", "batch+dynamic", "oracle", "mrai=0.5", "mrai=30"} {
		s, err := parseScheme(in)
		if err != nil {
			t.Errorf("parseScheme(%q): %v", in, err)
			continue
		}
		if s.Apply == nil {
			t.Errorf("parseScheme(%q): nil Apply", in)
		}
	}
}

func TestParseSchemeRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "wat", "mrai=", "mrai=-1"} {
		if _, err := parseScheme(in); err == nil {
			t.Errorf("parseScheme(%q) accepted", in)
		}
	}
}

func TestTraceRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end trace run skipped in -short")
	}
	if err := run([]string{"-nodes", "24", "-fail", "10", "-scheme", "mrai=0.5"}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRunUnknownEventKind(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end trace run skipped in -short")
	}
	if err := run([]string{"-nodes", "24", "-events", "-kind", "bogus"}); err == nil {
		t.Error("unknown kind accepted")
	}
}
