// Command bgptrace runs one failure scenario with full event tracing and
// prints a convergence analysis: update-activity time series, route
// stabilization quantiles, and the busiest routers. Optionally dumps the
// raw event log.
//
// Usage:
//
//	bgptrace -nodes 60 -fail 10 -scheme dynamic
//	bgptrace -nodes 60 -fail 10 -scheme batch -events -kind send | head -50
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"bgpsim"
	"bgpsim/internal/analysis"
	"bgpsim/internal/profiling"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bgptrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bgptrace", flag.ContinueOnError)
	var (
		topoKind = fs.String("topo", "skewed-70-30", "topology kind")
		nodes    = fs.Int("nodes", 60, "node count")
		failPct  = fs.Float64("fail", 10, "failure size, percent of routers")
		scheme   = fs.String("scheme", "mrai=0.5", "scheme (same syntax as cmd/bgpsim)")
		seed     = fs.Int64("seed", 1, "seed")
		prefixes = fs.Int("prefixes", 1, "prefixes originated per AS")
		shards   = fs.Int("shards", 0, "event-loop shards (0 or 1 = single engine; sequenced mode only — tracing needs a serial event order, so there is no concurrent flag here)")
		bucket   = fs.Duration("bucket", time.Second, "activity time-series bucket")
		events   = fs.Bool("events", false, "dump the raw event log")
		kindName = fs.String("kind", "", "with -events: only this kind (send, recv, proc, route, timer)")
	)
	var prof profiling.Config
	prof.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer prof.Stop()

	sch, err := parseScheme(*scheme)
	if err != nil {
		return err
	}
	rec := &trace.Recorder{}
	base := bgpsim.DefaultParams()
	base.Tracer = rec
	result, err := bgpsim.Run(bgpsim.Scenario{
		Topology: bgpsim.MultiPrefix(bgpsim.TopologySpec{Kind: topology.Kind(*topoKind), N: *nodes}, *prefixes),
		Failure:  bgpsim.GeographicFailure(*failPct / 100),
		Scheme:   sch,
		Base:     &base,
		Shards:   *shards,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("scheme            %s\n", sch.Name)
	fmt.Printf("failed            %d/%d routers\n", result.FailedNodes, result.Nodes)
	fmt.Printf("convergence delay %v\n", result.Delay.Round(time.Millisecond))
	report, err := analysis.Analyze(rec.Events(), result.WindowStart, *bucket)
	if err != nil {
		return err
	}
	fmt.Print(report.Render())

	if *events {
		fmt.Println("\nevent log (post-failure):")
		var filter trace.Kind
		switch *kindName {
		case "send":
			filter = trace.KindSend
		case "recv":
			filter = trace.KindReceive
		case "proc":
			filter = trace.KindProcess
		case "route":
			filter = trace.KindRouteChange
		case "timer":
			filter = trace.KindTimerRestart
		case "":
		default:
			return fmt.Errorf("unknown event kind %q", *kindName)
		}
		for _, e := range rec.Events() {
			if e.At < result.WindowStart {
				continue
			}
			if filter != 0 && e.Kind != filter {
				continue
			}
			fmt.Println(e.String())
		}
	}
	return nil
}

// parseScheme matches cmd/bgpsim's syntax for the common schemes.
func parseScheme(s string) (bgpsim.Scheme, error) {
	switch s {
	case "dynamic":
		return bgpsim.DynamicMRAI(), nil
	case "batch":
		return bgpsim.BatchedProcessing(500 * time.Millisecond), nil
	case "batch+dynamic":
		return bgpsim.BatchedDynamic(), nil
	case "oracle":
		return bgpsim.OracleMRAI(), nil
	}
	var secs float64
	if n, err := fmt.Sscanf(s, "mrai=%g", &secs); err == nil && n == 1 && secs >= 0 {
		return bgpsim.ConstantMRAI(time.Duration(secs * float64(time.Second))), nil
	}
	return bgpsim.Scheme{}, fmt.Errorf("unknown scheme %q", s)
}
