// Benchmarks regenerating every figure in the paper's evaluation section.
// Each BenchmarkFigNN runs the corresponding experiment end to end
// (topology generation, initial BGP convergence, failure injection,
// re-convergence, aggregation) at the reduced QuickOptions scale so the
// full suite completes in minutes; `cmd/bgpfig` runs the same experiments
// at paper scale. BenchmarkScenario* are single-run micro-benchmarks for
// profiling the simulator itself.
package bgpsim_test

import (
	"fmt"
	"testing"

	"bgpsim"
	"bgpsim/internal/bench"
)

// benchFigure runs one registered experiment per iteration and reports
// the mean convergence delay of its first series as a custom metric so
// regressions in simulation behaviour (not just speed) are visible.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	e, err := bgpsim.LookupExperiment(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := bgpsim.QuickOptions()
	var lastY float64
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(1 + i) // fresh worlds across iterations
		fig, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 || len(fig.Series[0].Points) == 0 {
			b.Fatal("empty figure")
		}
		lastY = fig.Series[0].Points[len(fig.Series[0].Points)-1].Y
	}
	b.ReportMetric(lastY, "series0_lastY")
}

func BenchmarkFig01ConvergenceVsFailureSize(b *testing.B) { benchFigure(b, "fig1") }
func BenchmarkFig02MessagesVsFailureSize(b *testing.B)    { benchFigure(b, "fig2") }
func BenchmarkFig03DelayVsMRAI(b *testing.B)              { benchFigure(b, "fig3") }
func BenchmarkFig04DegreeDistributions(b *testing.B)      { benchFigure(b, "fig4") }
func BenchmarkFig05AverageDegree(b *testing.B)            { benchFigure(b, "fig5") }
func BenchmarkFig06DegreeDependentMRAI(b *testing.B)      { benchFigure(b, "fig6") }
func BenchmarkFig07DynamicMRAI(b *testing.B)              { benchFigure(b, "fig7") }
func BenchmarkFig08UpThreshold(b *testing.B)              { benchFigure(b, "fig8") }
func BenchmarkFig09DownThreshold(b *testing.B)            { benchFigure(b, "fig9") }
func BenchmarkFig10Batching(b *testing.B)                 { benchFigure(b, "fig10") }
func BenchmarkFig11BatchingMessages(b *testing.B)         { benchFigure(b, "fig11") }
func BenchmarkFig12BatchingVsMRAI(b *testing.B)           { benchFigure(b, "fig12") }
func BenchmarkFig13RealisticTopologies(b *testing.B)      { benchFigure(b, "fig13") }
func BenchmarkAblationWithdrawalMRAI(b *testing.B)        { benchFigure(b, "ablation-withdrawal-mrai") }
func BenchmarkAblationBatchNoDiscard(b *testing.B)        { benchFigure(b, "ablation-batch-discard") }
func BenchmarkAblationDynamicSignal(b *testing.B)         { benchFigure(b, "ablation-dynamic-signal") }
func BenchmarkAblationPerDestMRAI(b *testing.B)           { benchFigure(b, "ablation-per-dest-mrai") }
func BenchmarkAblationRouterBatch(b *testing.B)           { benchFigure(b, "ablation-queue-discipline") }
func BenchmarkAblationDeshpandeSikdar(b *testing.B)       { benchFigure(b, "ablation-deshpande-sikdar") }
func BenchmarkAblationDetectionDelay(b *testing.B)        { benchFigure(b, "ablation-detection-delay") }
func BenchmarkAblationOracleMRAI(b *testing.B)            { benchFigure(b, "ablation-oracle-mrai") }
func BenchmarkAblationSuperfluous(b *testing.B)           { benchFigure(b, "ablation-superfluous") }
func BenchmarkAblationDamping(b *testing.B)               { benchFigure(b, "ablation-damping") }
func BenchmarkAblationPolicy(b *testing.B)                { benchFigure(b, "ablation-policy") }
func BenchmarkAblationPrefixScaling(b *testing.B)         { benchFigure(b, "ablation-prefix-scaling") }

// benchEntry delegates to the shared internal/bench registry (also used
// by cmd/bgpbench) so both harnesses measure the same bodies.
func benchEntry(b *testing.B, name string) {
	b.Helper()
	e, ok := bench.Lookup(name)
	if !ok {
		b.Fatalf("benchmark %q not in internal/bench registry", name)
	}
	e.Fn(b)
}

func BenchmarkScenarioSmallFailureFIFO(b *testing.B) { benchEntry(b, "ScenarioSmallFailureFIFO") }

func BenchmarkScenarioLargeFailureFIFO(b *testing.B) { benchEntry(b, "ScenarioLargeFailureFIFO") }

func BenchmarkScenarioLargeFailureBatched(b *testing.B) {
	benchEntry(b, "ScenarioLargeFailureBatched")
}

func BenchmarkScenarioDynamicMRAI(b *testing.B) { benchEntry(b, "ScenarioDynamicMRAI") }

// BenchmarkSweepWorkers measures sweep wall-clock scaling with the
// worker-pool size (fig3's grid at reduced scale). Figures are
// byte-identical across worker counts, so the only difference between
// sub-benchmarks is elapsed time; speedup tracks available cores.
func BenchmarkSweepWorkers(b *testing.B) {
	e, err := bgpsim.LookupExperiment("fig3")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := bgpsim.QuickOptions()
			opts.Workers = workers
			for i := 0; i < b.N; i++ {
				opts.Seed = int64(1 + i)
				if _, err := e.Run(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScenarioRealisticIBGP(b *testing.B) { benchEntry(b, "ScenarioRealisticIBGP") }

func BenchmarkTopologyGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bgpsim.BuildTopology(bgpsim.Skewed7030(120), int64(1+i)); err != nil {
			b.Fatal(err)
		}
	}
}
