package bgpsim_test

import (
	"testing"
	"time"

	"bgpsim"
)

func TestQuickStartFlow(t *testing.T) {
	r, err := bgpsim.Run(bgpsim.Scenario{
		Topology: bgpsim.Skewed7030(30),
		Failure:  bgpsim.GeographicFailure(0.10),
		Scheme:   bgpsim.DynamicMRAI(),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Delay <= 0 || r.Messages <= 0 {
		t.Errorf("empty result: %+v", r)
	}
}

func TestTopologyConstructors(t *testing.T) {
	for _, spec := range []bgpsim.TopologySpec{
		bgpsim.Skewed7030(30),
		bgpsim.Skewed5050(30),
		bgpsim.Skewed8515(40),
		bgpsim.InternetLike(30),
	} {
		net, err := bgpsim.BuildTopology(spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		if !net.Connected() {
			t.Errorf("%s: not connected", spec.Kind)
		}
	}
	topo := bgpsim.Realistic(10)
	topo.MaxASSize = 3
	net, err := bgpsim.BuildTopology(topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumASes() != 10 {
		t.Errorf("realistic ASes = %d", net.NumASes())
	}
}

func TestSchemeConstructorsProduceRunnableScenarios(t *testing.T) {
	schemes := []bgpsim.Scheme{
		bgpsim.ConstantMRAI(time.Second),
		bgpsim.DegreeDependentMRAI(5, 500*time.Millisecond, 2*time.Second),
		bgpsim.DynamicMRAI(),
		bgpsim.CustomDynamicMRAI([]time.Duration{time.Second, 2 * time.Second}, time.Second, 0),
		bgpsim.BatchedProcessing(500 * time.Millisecond),
		bgpsim.BatchedDynamic(),
		bgpsim.CustomScheme("no-jitter", func(p *bgpsim.Params) { p.JitterTimers = false }),
	}
	for _, sch := range schemes {
		sch := sch
		t.Run(sch.Name, func(t *testing.T) {
			r, err := bgpsim.Run(bgpsim.Scenario{
				Topology: bgpsim.Skewed7030(24),
				Failure:  bgpsim.RandomFailure(2),
				Scheme:   sch,
				Seed:     5,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.FailedNodes != 2 {
				t.Errorf("failed = %d", r.FailedNodes)
			}
		})
	}
}

func TestLowLevelSimulatorAccess(t *testing.T) {
	net, err := bgpsim.BuildTopology(bgpsim.Skewed7030(24), 2)
	if err != nil {
		t.Fatal(err)
	}
	p := bgpsim.DefaultParams()
	p.Seed = 2
	sim, err := bgpsim.NewSimulator(net, p)
	if err != nil {
		t.Fatal(err)
	}
	delay, err := sim.ConvergeAndFail([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if delay < 0 {
		t.Errorf("delay = %v", delay)
	}
	if sim.Alive(0) || !sim.Alive(2) {
		t.Error("alive bookkeeping wrong")
	}
	if _, ok := sim.LocPath(2, 2); !ok {
		t.Error("own prefix missing")
	}
}

func TestExperimentRegistryAccessible(t *testing.T) {
	if got := len(bgpsim.Experiments()); got < 18 {
		t.Errorf("registry has %d experiments", got)
	}
	if _, err := bgpsim.LookupExperiment("fig7"); err != nil {
		t.Error(err)
	}
	if bgpsim.PaperOptions().Nodes != 120 {
		t.Error("paper options not at 120 nodes")
	}
	if bgpsim.QuickOptions().Nodes >= bgpsim.PaperOptions().Nodes {
		t.Error("quick options not reduced")
	}
}
