// Package bgpsim reproduces "Improving BGP Convergence Delay for
// Large-Scale Failures" (Sahoo, Kant, Mohapatra — DSN 2006): a
// discrete-event BGP-4 simulator with the paper's convergence-improvement
// schemes (constant, degree-dependent, and dynamic MRAI selection, and
// destination-batched update processing), BRITE-style topology
// generation, geographic failure injection, and an experiment harness
// that regenerates every figure in the paper's evaluation.
//
// # Quick start
//
//	result, err := bgpsim.Run(bgpsim.Scenario{
//		Topology: bgpsim.Skewed7030(120),
//		Failure:  bgpsim.GeographicFailure(0.05),
//		Scheme:   bgpsim.DynamicMRAI(),
//		Seed:     1,
//	})
//	fmt.Println(result.Delay, result.Messages)
//
// # Layers
//
// The Scenario/Run layer covers the common case: one topology, one
// failure, one scheme, one measurement. RunTrials replicates over seeds.
// Experiments() exposes the paper's figure reproductions. For full
// control (custom schemes, protocol ablations, direct simulator access)
// use NewSimulator with a Params value.
package bgpsim

import (
	"context"
	"time"

	"bgpsim/internal/bgp"
	"bgpsim/internal/core"
	"bgpsim/internal/des"
	"bgpsim/internal/experiment"
	"bgpsim/internal/failure"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
)

// Re-exported types. Aliases (not definitions) so values flow freely
// between this package and code that composes the lower layers.
type (
	// Network is a generated or loaded router-level topology.
	Network = topology.Network
	// TopologySpec selects and parameterizes a topology family.
	TopologySpec = topology.Spec
	// FailureSpec selects which routers fail.
	FailureSpec = failure.Spec
	// Scenario is one complete experiment: topology + failure + scheme.
	Scenario = experiment.Scenario
	// Result is one trial's measurements.
	Result = experiment.Result
	// Stats aggregates replicated trials.
	Stats = experiment.Stats
	// Figure is a reproduced paper figure (labeled series).
	Figure = experiment.Figure
	// Series is one labeled curve of a Figure.
	Series = experiment.Series
	// Scheme is a named convergence-improvement scheme.
	Scheme = experiment.Scheme
	// Params is the full BGP protocol/simulation parameter set.
	Params = bgp.Params
	// Simulator is the low-level BGP simulation (advanced use).
	Simulator = bgp.Simulator
	// Options scales a paper-figure experiment.
	Options = core.Options
	// Experiment is a runnable paper-figure reproduction.
	Experiment = core.Experiment
	// RNG is a seeded random stream used by generator functions.
	RNG = des.RNG
)

// Topology constructors.

// Skewed7030 is the paper's default 120-node family: 70% of ASes with
// degree 1–3 and 30% with degree 8 (average 3.8).
func Skewed7030(n int) TopologySpec {
	return TopologySpec{Kind: topology.KindSkewed7030, N: n}
}

// Skewed5050 is 50% low-degree / 50% degree 5–6 (average 3.8).
func Skewed5050(n int) TopologySpec {
	return TopologySpec{Kind: topology.KindSkewed5050, N: n}
}

// Skewed8515 is 85% low-degree / 15% degree 14 (average 3.8).
func Skewed8515(n int) TopologySpec {
	return TopologySpec{Kind: topology.KindSkewed8515, N: n}
}

// InternetLike draws a heavy-tailed AS-level degree distribution shaped
// like measured Internet connectivity (mean ≈ 3.4, capped at 40).
func InternetLike(n int) TopologySpec {
	return TopologySpec{Kind: topology.KindInternetLike, N: n}
}

// Realistic is the paper's Fig 13 family: numAS ASes with heavy-tailed
// router counts, full-mesh IBGP inside each AS, and an Internet-like
// inter-AS degree distribution.
func Realistic(numAS int) TopologySpec {
	return TopologySpec{Kind: topology.KindRealistic, N: numAS}
}

// MultiPrefix returns spec with each AS originating k destination
// prefixes instead of one. The generated graph is unchanged; the
// routing-table dimension of every simulation run on the spec scales by
// k (dest = AS·k + i). k <= 1 returns the spec unmodified.
func MultiPrefix(spec TopologySpec, k int) TopologySpec {
	if k > 1 {
		spec.PrefixesPerOrigin = k
	}
	return spec
}

// BuildTopology materializes a spec with the given seed.
func BuildTopology(spec TopologySpec, seed int64) (*Network, error) {
	return spec.Build(des.NewRNG(seed))
}

// Failure constructors.

// GeographicFailure fails the given fraction of routers nearest the grid
// center — the paper's contiguous-area failure model.
func GeographicFailure(fraction float64) FailureSpec {
	return failure.Geographic(fraction)
}

// RandomFailure fails count routers chosen uniformly at random.
func RandomFailure(count int) FailureSpec {
	return FailureSpec{Kind: failure.KindRandom, Count: count}
}

// Scheme constructors.

// ConstantMRAI is plain BGP with a fixed per-peer MRAI (the Internet
// deploys 30s; the paper sweeps 0.25–4s).
func ConstantMRAI(d time.Duration) Scheme { return experiment.ConstantMRAI(d) }

// ParseScheme translates the compact scheme syntax shared by the CLI and
// wire-encoded churn descriptors: mrai=<seconds> | degree=<low>,<high> |
// dynamic | batch[=<seconds>] | batch+dynamic.
func ParseScheme(s string) (Scheme, error) { return experiment.ParseScheme(s) }

// DegreeDependentMRAI uses low at routers with degree below threshold
// and high at the rest (Section 4.2).
func DegreeDependentMRAI(threshold int, low, high time.Duration) Scheme {
	return experiment.DegreeMRAI(threshold, low, high)
}

// DynamicMRAI is the paper's load-adaptive ladder with its published
// parameters: levels {0.5, 1.25, 2.25}s, upTh 0.65s, downTh 0.05s
// (Section 4.3, Fig 7).
func DynamicMRAI() Scheme { return experiment.PaperDynamicMRAI() }

// CustomDynamicMRAI is the ladder with caller-chosen levels/thresholds.
func CustomDynamicMRAI(levels []time.Duration, upTh, downTh time.Duration) Scheme {
	return experiment.DynamicMRAI(levels, upTh, downTh)
}

// BatchedProcessing is the paper's destination-batched update queue with
// a constant MRAI (Section 4.4; the paper pairs it with 0.5s).
func BatchedProcessing(d time.Duration) Scheme { return experiment.Batching(d) }

// BatchedDynamic combines batching with the dynamic ladder — the paper's
// best configuration.
func BatchedDynamic() Scheme {
	return experiment.BatchingDynamic(mrai.PaperLevels, mrai.PaperUpTh, mrai.PaperDownTh)
}

// OracleMRAI models the paper's future-work ideal: at failure time every
// surviving router's MRAI is set from the true failure extent using the
// optimal constants the paper measured. An upper bound for adaptive
// schemes, impossible to deploy (nobody knows the extent that fast).
func OracleMRAI() Scheme {
	s := experiment.Custom("oracle", func(p *Params) {
		p.MRAI = mrai.Oracle(500 * time.Millisecond)
		p.OracleMRAI = mrai.PaperOracleTable()
	})
	return s
}

// CustomScheme wraps an arbitrary Params mutation as a Scheme.
func CustomScheme(name string, apply func(*Params)) Scheme {
	return experiment.Custom(name, apply)
}

// Scenario presets.

// LargeScale500 is the 500-AS stress scenario behind the
// ConvergeLargeScale benchmark and the scale table in EXPERIMENTS.md: an
// Internet-like heavy-tailed topology at 500 ASes, a 10% geographic
// failure, and the paper's dynamic MRAI ladder. At this size the
// highest-degree routers peer with dozens of neighbors, which is what
// the incremental decision process and the calendar event queue are
// sized for.
func LargeScale500() Scenario {
	return Scenario{
		Topology: InternetLike(500),
		Failure:  GeographicFailure(0.10),
		// The paper's best configuration (batching + dynamic ladder)
		// keeps the message volume — and the benchmark's wall clock —
		// bounded at this scale.
		Scheme: BatchedDynamic(),
	}
}

// LargeScaleMultiPrefix is the PR-6 stress scenario: the 500-AS
// Internet-like world of LargeScale500 with every AS originating 1000
// prefixes — a 500,000-destination routing table, the scale the paper's
// discussion section argues real deployments face. The compact route
// encoding (interned path refs, lazily materialized per-peer columns)
// is what keeps this within a few GB; see EXPERIMENTS.md for the
// memory accounting. Expect hours of wall clock at full scale — the
// ConvergeMultiPrefix benchmark measures a reduced cut of the same
// shape.
func LargeScaleMultiPrefix() Scenario {
	sc := LargeScale500()
	sc.Topology = MultiPrefix(sc.Topology, 1000)
	// Real half-million-entry tables are built incrementally as sessions
	// come up, not in one synchronized flash. Staggering the 500,000
	// originations over ten minutes of simulated time models that and
	// keeps the transient update backlog — the term that dwarfs the RIBs
	// when everything originates inside the default 100 ms window —
	// proportional to the churn rate instead of the table size. The
	// failure itself still hits all at once; that burst is the
	// experiment.
	base := bgp.DefaultParams()
	base.OriginationSpread = 10 * time.Minute
	sc.Base = &base
	return sc
}

// Routing policies (Gao–Rexford).

// Relationships records per-link business relationships for policy
// routing; install via Params.Policy or Scenario.PolicyHierarchical.
type Relationships = topology.Relationships

// InferRelationships assigns provider/customer/peer roles from node
// degrees (the bigger endpoint is the provider when degrees differ by
// more than ratio). Degree inference can leave some node pairs without
// any valley-free path.
func InferRelationships(net *Network, ratio float64) (*Relationships, error) {
	return topology.InferRelationships(net, ratio)
}

// HierarchicalRelationships assigns roles from a BFS hierarchy rooted at
// the highest-degree node, guaranteeing every pair a valley-free path.
func HierarchicalRelationships(net *Network) (*Relationships, error) {
	return topology.HierarchicalRelationships(net)
}

// Running experiments.

// Run executes one scenario: build the topology, converge, inject the
// failure, re-converge, measure.
func Run(sc Scenario) (Result, error) { return experiment.Run(sc) }

// RunTrials replicates a scenario n times over derived seeds.
func RunTrials(sc Scenario, n int) (Stats, error) { return experiment.RunTrials(sc, n) }

// RunTrialsParallel is RunTrials with the independent trials fanned out
// over a bounded worker pool; workers <= 0 selects GOMAXPROCS. Results
// are byte-identical to RunTrials for every worker count.
func RunTrialsParallel(sc Scenario, n, workers int) (Stats, error) {
	return experiment.RunTrialsParallel(sc, n, workers)
}

// RunTrialsContext is RunTrialsParallel with cancellation: when ctx is
// canceled, queued trials never start, in-flight simulations abort at
// the next event-loop check, and ctx's error is returned.
func RunTrialsContext(ctx context.Context, sc Scenario, n, workers int) (Stats, error) {
	return experiment.RunTrialsContext(ctx, sc, n, workers)
}

// NewSimulator builds the low-level simulator for a prebuilt network
// (advanced use: custom flows, direct route-table inspection).
func NewSimulator(net *Network, p Params) (*Simulator, error) { return bgp.New(net, p) }

// DefaultParams returns the paper's protocol parameters: per-peer
// jittered MRAI, U(1,30)ms processing, 25ms links, immediate failure
// detection, FIFO queue, 30s constant MRAI.
func DefaultParams() Params { return bgp.DefaultParams() }

// Paper figures.

// Experiments returns the full registry: fig1–fig13 plus ablations.
func Experiments() []Experiment { return core.Registry() }

// LookupExperiment finds an experiment by ID ("fig7" or "7").
func LookupExperiment(id string) (Experiment, error) { return core.Lookup(id) }

// PaperOptions is the paper-scale configuration (120 nodes, 3 trials).
func PaperOptions() Options { return core.DefaultOptions() }

// QuickOptions is a reduced scale for tests and exploration.
func QuickOptions() Options { return core.QuickOptions() }
