package bgpsim_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"bgpsim"
)

// TestLargeScaleMultiPrefix runs the full multi-prefix stress scenario —
// 500 ASes × 1000 prefixes, a 500,000-destination routing table —
// through initial convergence, the 10% failure, and re-convergence, and
// reports the process memory high-water mark. It is the digest pin for
// the scenario: the printed line is the observable to compare across
// versions.
//
// Memory expectations (measured; see the multi-prefix before/after
// section of EXPERIMENTS.md): the dense RIB state itself is compact —
// interned 4-byte route refs, lazily materialized peer columns, shared
// path storage — but the path intern table grows with every distinct
// path the exploration storm visits and historically was only rewound
// at Reset, with the peak footprint scaling at roughly 115 MB per
// prefix unit at this topology size (~100 GB-class at k=1000). The
// quiescence compaction sweep (bgp.CompactMinPaths /
// CompactDeadFraction) now rebuilds the table from live RIB refs
// between initial convergence and failure injection, so phase 2's
// exploration reuses the reclaimed dead-path memory instead of growing
// the high-water mark on top of phase 1's. The tightened budget below
// asserts that reduction — it is an OOM tripwire at the post-sweep
// extrapolation, not a target. Expect several hours of wall clock; the
// ConvergeMultiPrefix benchmark entry tracks bytes/op of the reduced
// cut of the same shape in CI.
func TestLargeScaleMultiPrefix(t *testing.T) {
	if os.Getenv("BGPSIM_LARGE") == "" {
		t.Skip("set BGPSIM_LARGE=1 to run the 500-AS x 1000-prefix scenario (hours of wall clock, ~100 GB-class memory)")
	}
	sc := bgpsim.LargeScaleMultiPrefix()
	if sc.Topology.PrefixesPerOrigin != 1000 || sc.Topology.N != 500 {
		t.Fatalf("preset shape changed: %+v", sc.Topology)
	}
	res, err := bgpsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay <= 0 || res.Messages == 0 || res.Nodes != 500 {
		t.Fatalf("implausible result: %+v", res)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// Sys is the high-water mark of memory obtained from the OS — the
	// honest "what did this run cost" number (HeapAlloc after Run would
	// mostly count garbage awaiting collection).
	const budget = 100 << 30
	if ms.Sys > budget {
		t.Errorf("process footprint %d bytes exceeds the %d tripwire; the per-prefix slope or the quiescence compaction sweep regressed (see EXPERIMENTS.md)",
			ms.Sys, uint64(budget))
	}
	fmt.Printf("large-scale digest: delay=%v msgs=%d ann=%d wd=%d proc=%d failed=%d/%d sys=%dMB\n",
		res.Delay, res.Messages, res.Announcements, res.Withdrawals, res.Processed,
		res.FailedNodes, res.Nodes, ms.Sys>>20)
}
