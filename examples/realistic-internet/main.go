// Realistic Internet: the paper's Section 4.4 validation workload.
// Multi-router ASes (heavy-tailed sizes, full-mesh IBGP inside each AS),
// an Internet-derived inter-AS degree distribution, and geographic
// failures that take out whole city-sized regions — partial ASes
// included. Compares constant MRAIs against dynamic MRAI and batching,
// and inspects the router-level topology along the way.
package main

import (
	"fmt"
	"os"
	"time"

	"bgpsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "realistic-internet:", err)
		os.Exit(1)
	}
}

func run() error {
	topo := bgpsim.Realistic(60)
	topo.MaxASSize = 12 // the paper used up to 100 routers/AS; 12 keeps this demo snappy

	// Inspect one instance of the topology first.
	net, err := bgpsim.BuildTopology(topo, 3)
	if err != nil {
		return err
	}
	internal, external := 0, 0
	for _, l := range net.Links() {
		if l.Internal {
			internal++
		} else {
			external++
		}
	}
	fmt.Printf("Topology: %d ASes, %d routers, %d IBGP sessions, %d inter-AS links\n",
		net.NumASes(), net.NumNodes(), internal, external)
	largest, size := 0, 0
	for as := 0; as < net.NumASes(); as++ {
		if n := len(net.NodesInAS(as)); n > size {
			largest, size = as, n
		}
	}
	fmt.Printf("Largest AS: #%d with %d routers\n\n", largest, size)

	// Fig 13-style comparison.
	dynamic := bgpsim.CustomDynamicMRAI(
		[]time.Duration{500 * time.Millisecond, 1500 * time.Millisecond, 3500 * time.Millisecond},
		650*time.Millisecond, 50*time.Millisecond)
	dynamic.Name = "dynamic{0.5,1.5,3.5}"
	schemes := []bgpsim.Scheme{
		bgpsim.ConstantMRAI(500 * time.Millisecond),
		bgpsim.ConstantMRAI(3500 * time.Millisecond),
		dynamic,
		bgpsim.BatchedProcessing(500 * time.Millisecond),
	}

	fmt.Println("Convergence delay (s) after geographic failures (% of routers):")
	fmt.Printf("%-22s", "scheme")
	sizes := []float64{0.025, 0.10}
	for _, s := range sizes {
		fmt.Printf("  %8.1f%%", s*100)
	}
	fmt.Println()
	for _, scheme := range schemes {
		fmt.Printf("%-22s", scheme.Name)
		for _, s := range sizes {
			r, err := bgpsim.Run(bgpsim.Scenario{
				Topology: topo,
				Failure:  bgpsim.GeographicFailure(s),
				Scheme:   scheme,
				Seed:     3,
			})
			if err != nil {
				return err
			}
			fmt.Printf("  %9.2f", r.Delay.Seconds())
		}
		fmt.Println()
	}
	fmt.Println("\nAt this demo scale (60 ASes) routers rarely overload, so the low")
	fmt.Println("constant MRAI still wins and the high constant only adds waiting —")
	fmt.Println("the left side of the paper's V-curve. The full Fig 13 behaviour")
	fmt.Println("(low MRAI collapsing at 10%+ failures, dynamic/batching near-optimal)")
	fmt.Println("appears at paper scale: go run ./cmd/bgpfig -fig 13")
	return nil
}
