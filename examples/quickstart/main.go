// Quickstart: simulate a geographically concentrated failure of 5% of
// the routers in a 120-AS network and compare plain BGP against the
// paper's dynamic-MRAI and batching schemes.
package main

import (
	"fmt"
	"os"
	"time"

	"bgpsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	schemes := []bgpsim.Scheme{
		bgpsim.ConstantMRAI(30 * time.Second), // the Internet default
		bgpsim.ConstantMRAI(500 * time.Millisecond),
		bgpsim.DynamicMRAI(),
		bgpsim.BatchedProcessing(500 * time.Millisecond),
	}
	fmt.Println("5% geographic failure in a 120-AS 70-30 network:")
	for _, scheme := range schemes {
		result, err := bgpsim.Run(bgpsim.Scenario{
			Topology: bgpsim.Skewed7030(120),
			Failure:  bgpsim.GeographicFailure(0.05),
			Scheme:   scheme,
			Seed:     1, // same world for every scheme
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-16s convergence %7.2fs   %6d update messages\n",
			scheme.Name, result.Delay.Seconds(), result.Messages)
	}
	return nil
}
