// Fail and recover: the full disaster lifecycle. A region fails, BGP
// re-converges around it, the region comes back, and BGP re-converges
// again. Shows two things the steady-state experiments can't:
//
//  1. recovery re-convergence is much faster than failure re-convergence
//     (session establishment floods full tables, but no path hunting);
//  2. RFC 2439 route-flap damping — designed for isolated flapping —
//     treats fail+recover as a flap and suppresses the recovered routes,
//     multiplying the recovery time (the classic Mao et al. result).
package main

import (
	"fmt"
	"os"
	"time"

	"bgpsim"
	"bgpsim/internal/bgp"
	"bgpsim/internal/failure"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fail-and-recover:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		nodes   = 80
		failPct = 0.10
		seed    = 21
	)
	fmt.Printf("Lifecycle of a 10%% regional failure in an %d-AS network\n\n", nodes)

	for _, damped := range []bool{false, true} {
		label := "damping off"
		if damped {
			label = "damping on (RFC 2439, 60s half-life)"
		}
		failDelay, recoverDelay, err := lifecycle(nodes, failPct, seed, damped)
		if err != nil {
			return err
		}
		fmt.Printf("%-38s failure re-convergence %8.2fs   recovery re-convergence %8.2fs\n",
			label, failDelay.Seconds(), recoverDelay.Seconds())
	}
	fmt.Println("\nDamping mistakes the withdraw/re-announce cycle for route flapping")
	fmt.Println("and suppresses the recovered routes until its reuse timers expire.")
	return nil
}

// lifecycle runs converge -> fail -> re-converge -> recover -> re-converge
// and returns both re-convergence times.
func lifecycle(nodes int, failPct float64, seed int64, damped bool) (failD, recoverD time.Duration, err error) {
	net, err := bgpsim.BuildTopology(bgpsim.Skewed7030(nodes), seed)
	if err != nil {
		return 0, 0, err
	}
	params := bgpsim.DefaultParams()
	bgpsim.DynamicMRAI().Apply(&params)
	params.Seed = seed
	if damped {
		cfg := bgp.DefaultDamping()
		cfg.HalfLife = 60 * time.Second
		cfg.SuppressThreshold = 1500
		params.Damping = cfg
	}
	sim, err := bgpsim.NewSimulator(net, params)
	if err != nil {
		return 0, 0, err
	}
	region, err := failure.Select(net, failure.Geographic(failPct), nil)
	if err != nil {
		return 0, 0, err
	}
	failD, err = sim.ConvergeAndFail(region)
	if err != nil {
		return 0, 0, err
	}
	recoverAt := sim.Now() + 5*time.Second
	sim.ScheduleRecovery(recoverAt, region)
	if err := sim.Run(); err != nil {
		return 0, 0, err
	}
	return failD, sim.Now() - recoverAt, nil
}
