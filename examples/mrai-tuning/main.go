// MRAI tuning: locate the "optimal" MRAI for a network and failure size
// the way the paper does — sweep the MRAI, observe the V-shaped delay
// curve, and read off the minimum. Demonstrates the core finding that
// the optimum moves with failure size, so no constant is right.
package main

import (
	"fmt"
	"os"
	"time"

	"bgpsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mrai-tuning:", err)
		os.Exit(1)
	}
}

func run() error {
	mrais := []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.25, 3.0}
	failures := []float64{0.01, 0.05, 0.10}

	fmt.Println("Convergence delay (s) vs MRAI, 120-AS 70-30 network")
	fmt.Printf("%-8s", "MRAI(s)")
	for _, f := range failures {
		fmt.Printf("  %8.0f%%", f*100)
	}
	fmt.Println()

	best := make(map[float64]struct {
		mrai  float64
		delay float64
	})
	for _, m := range mrais {
		fmt.Printf("%-8.2f", m)
		for _, f := range failures {
			r, err := bgpsim.Run(bgpsim.Scenario{
				Topology: bgpsim.Skewed7030(120),
				Failure:  bgpsim.GeographicFailure(f),
				Scheme:   bgpsim.ConstantMRAI(time.Duration(m * float64(time.Second))),
				Seed:     11,
			})
			if err != nil {
				return err
			}
			d := r.Delay.Seconds()
			fmt.Printf("  %9.2f", d)
			if cur, ok := best[f]; !ok || d < cur.delay {
				best[f] = struct {
					mrai  float64
					delay float64
				}{m, d}
			}
		}
		fmt.Println()
	}

	fmt.Println("\nOptimal MRAI by failure size (minimum of each V-curve):")
	for _, f := range failures {
		b := best[f]
		fmt.Printf("  %4.0f%% failure: MRAI ≈ %.2fs (%.2fs delay)\n", f*100, b.mrai, b.delay)
	}
	fmt.Println("\nThe optimum increases with failure size — the paper's core")
	fmt.Println("observation motivating degree-dependent and dynamic MRAI.")
	return nil
}
