// Regional disaster: the scenario the paper's introduction motivates.
// A contiguous geographic region fails — an earthquake, flood, or
// coordinated attack taking out 1% to 20% of the network's routers —
// and we ask how long the surviving Internet takes to re-converge under
// each scheme, and at what message cost.
//
// The output shows the paper's headline result: a single constant MRAI
// cannot win at both ends, while dynamic MRAI and batching stay near the
// per-size optimum.
package main

import (
	"fmt"
	"os"
	"time"

	"bgpsim"
)

const (
	networkSize = 120
	trials      = 2
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "regional-disaster:", err)
		os.Exit(1)
	}
}

func run() error {
	schemes := []bgpsim.Scheme{
		bgpsim.ConstantMRAI(500 * time.Millisecond),
		bgpsim.ConstantMRAI(2250 * time.Millisecond),
		bgpsim.DynamicMRAI(),
		bgpsim.BatchedDynamic(),
	}
	sizes := []float64{0.01, 0.05, 0.10, 0.20}

	fmt.Printf("Post-failure convergence delay (s), %d-AS network, mean of %d trials\n\n", networkSize, trials)
	fmt.Printf("%-10s", "failure")
	for _, s := range schemes {
		fmt.Printf("  %14s", s.Name)
	}
	fmt.Println()
	for _, size := range sizes {
		fmt.Printf("%-10s", fmt.Sprintf("%.0f%%", size*100))
		for _, scheme := range schemes {
			st, err := bgpsim.RunTrials(bgpsim.Scenario{
				Topology: bgpsim.Skewed7030(networkSize),
				Failure:  bgpsim.GeographicFailure(size),
				Scheme:   scheme,
				Seed:     7, // shared across schemes: paired comparison
			}, trials)
			if err != nil {
				return err
			}
			fmt.Printf("  %14.2f", st.MeanDelay.Seconds())
		}
		fmt.Println()
	}

	fmt.Println("\nMessage cost at 20% failure:")
	for _, scheme := range schemes {
		st, err := bgpsim.RunTrials(bgpsim.Scenario{
			Topology: bgpsim.Skewed7030(networkSize),
			Failure:  bgpsim.GeographicFailure(0.20),
			Scheme:   scheme,
			Seed:     7,
		}, trials)
		if err != nil {
			return err
		}
		fmt.Printf("  %-16s %8.0f updates", scheme.Name, st.MeanMessages)
		if st.MeanDiscard > 0 {
			fmt.Printf("  (+%.0f stale updates deleted unprocessed)", st.MeanDiscard)
		}
		fmt.Println()
	}
	return nil
}
