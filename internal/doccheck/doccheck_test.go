// Package doccheck enforces the repository's godoc policy with the
// toolchain alone (no external linter dependency): every exported symbol
// in the audited packages must carry a doc comment. CI runs this as a
// dedicated step, so a missing comment fails the build the same way a
// revive/golint exported-symbol rule would.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// auditedPackages lists the directories (relative to the repo root) whose
// exported API must be fully documented. Extend this list as packages
// reach documentation-complete status; never shrink it.
var auditedPackages = []string{
	"internal/des",
	"internal/bgp",
	"internal/metrics",
	"internal/bench",
	"internal/profiling",
}

// TestExportedSymbolsHaveDocComments parses each audited package and
// reports every exported declaration — functions, methods, types,
// consts, vars, and exported struct fields of exported types — that has
// no doc comment.
func TestExportedSymbolsHaveDocComments(t *testing.T) {
	root := repoRoot(t)
	for _, pkg := range auditedPackages {
		pkg := pkg
		t.Run(strings.ReplaceAll(pkg, "/", "_"), func(t *testing.T) {
			for _, problem := range auditPackage(t, filepath.Join(root, pkg)) {
				t.Error(problem)
			}
		})
	}
}

// repoRoot locates the module root from the test's working directory
// (the package directory, two levels below the root).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// auditPackage returns one message per undocumented exported symbol in
// the package at dir. Test files are skipped: their exported identifiers
// are harness entry points, not API.
func auditPackage(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc.Text() == "" {
						kind := "function"
						if d.Recv != nil {
							if !receiverExported(d) {
								continue // method on unexported type
							}
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					auditGenDecl(d, report)
				}
			}
		}
	}
	return problems
}

// receiverExported reports whether a method's receiver base type is
// exported (methods on unexported types are not public API).
func receiverExported(d *ast.FuncDecl) bool {
	if len(d.Recv.List) == 0 {
		return false
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if idx, ok := typ.(*ast.IndexExpr); ok { // generic receiver
		typ = idx.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && id.IsExported()
}

// auditGenDecl checks type/const/var declarations. A doc comment on the
// grouped declaration covers ungrouped specs; each exported spec without
// either a group comment or its own comment is reported. Exported fields
// of exported struct types are audited too.
func auditGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	groupDoc := d.Doc.Text()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && groupDoc == "" && s.Doc.Text() == "" && s.Comment.Text() == "" {
				report(s.Pos(), "type", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						if name.IsExported() && f.Doc.Text() == "" && f.Comment.Text() == "" {
							report(name.Pos(), "field", s.Name.Name+"."+name.Name)
						}
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && groupDoc == "" && s.Doc.Text() == "" && s.Comment.Text() == "" {
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}
