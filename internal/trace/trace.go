// Package trace is the simulator's structured event log. A Tracer
// receives every protocol-level event (sends, receives, decision
// changes, timer restarts, failures); the Recorder implementation stores
// them for inspection and the Writer implementation streams a readable
// log. Tracing is off by default — the simulator calls through a nil-safe
// façade so the hot path pays one branch when disabled.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	// KindSend is a route-level update leaving a router.
	KindSend Kind = iota + 1
	// KindReceive is an update entering a router's input queue.
	KindReceive
	// KindProcess is the completion of a processing work unit.
	KindProcess
	// KindRouteChange is a Loc-RIB change.
	KindRouteChange
	// KindTimerRestart is a per-peer MRAI timer restart.
	KindTimerRestart
	// KindNodeFailure is a router death.
	KindNodeFailure
	// KindSessionDown is a surviving router detecting a dead peer.
	KindSessionDown
	// KindNodeRecovery is a router coming back.
	KindNodeRecovery
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindReceive:
		return "recv"
	case KindProcess:
		return "proc"
	case KindRouteChange:
		return "route"
	case KindTimerRestart:
		return "timer"
	case KindNodeFailure:
		return "fail"
	case KindSessionDown:
		return "session-down"
	case KindNodeRecovery:
		return "recover"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one simulator occurrence.
type Event struct {
	At   time.Duration
	Kind Kind
	// Node is the router the event happened at.
	Node int
	// Peer is the other endpoint for send/receive/session events (-1
	// when not applicable).
	Peer int
	// Dest is the destination prefix (-1 when not applicable).
	Dest int
	// Withdrawal marks send/receive of a withdrawal.
	Withdrawal bool
	// Value carries kind-specific data: the new MRAI for timer restarts,
	// the batch size for process events, the new path length for route
	// changes (-1 = route lost).
	Value int
}

// String formats the event as one log line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %-12s node=%d", e.At, e.Kind, e.Node)
	if e.Peer >= 0 {
		fmt.Fprintf(&b, " peer=%d", e.Peer)
	}
	if e.Dest >= 0 {
		fmt.Fprintf(&b, " dest=%d", e.Dest)
	}
	if e.Withdrawal {
		b.WriteString(" withdrawal")
	}
	switch e.Kind {
	case KindTimerRestart:
		fmt.Fprintf(&b, " mrai=%s", time.Duration(e.Value))
	case KindProcess:
		fmt.Fprintf(&b, " batch=%d", e.Value)
	case KindRouteChange:
		fmt.Fprintf(&b, " pathlen=%d", e.Value)
	}
	return b.String()
}

// Tracer receives events. Implementations must be cheap; the simulator
// may deliver millions of events per run.
type Tracer interface {
	Trace(e Event)
}

// recorderChunkSize is the event capacity of one arena chunk. 4096
// events × ~64 bytes keeps each chunk around page-multiple size without
// wasting much on short runs.
const recorderChunkSize = 4096

// Recorder stores every event in memory. Safe for concurrent use.
//
// Storage is a chunked arena: events append into fixed-capacity chunks
// and Reset recycles full chunks onto a free list instead of dropping
// them, so steady-state tracing across repeated runs (record → Reset →
// record) allocates nothing once the arena has grown to the high-water
// mark. This is what makes tracing affordable at paper scale, where a
// run delivers millions of events.
type Recorder struct {
	mu     sync.Mutex
	chunks [][]Event // recorded events; all chunks but the last are full
	free   [][]Event // recycled zero-length chunks with retained capacity
	n      int       // total recorded events
	// Filter, when non-zero, restricts recording to one kind.
	Filter Kind
	// MaxEvents bounds memory; once reached, further events are dropped
	// and Truncated is set. Zero means unbounded.
	MaxEvents int
	truncated bool
}

var _ Tracer = (*Recorder)(nil)

// Trace stores the event, honoring Filter and MaxEvents.
func (r *Recorder) Trace(e Event) {
	if r.Filter != 0 && e.Kind != r.Filter {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.MaxEvents > 0 && r.n >= r.MaxEvents {
		r.truncated = true
		return
	}
	last := len(r.chunks) - 1
	if last < 0 || len(r.chunks[last]) == cap(r.chunks[last]) {
		var c []Event
		if k := len(r.free); k > 0 {
			c = r.free[k-1]
			r.free[k-1] = nil
			r.free = r.free[:k-1]
		} else {
			c = make([]Event, 0, recorderChunkSize)
		}
		r.chunks = append(r.chunks, c)
		last++
	}
	r.chunks[last] = append(r.chunks[last], e)
	r.n++
}

// Events returns a copy of the recorded events in order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.n)
	for _, c := range r.chunks {
		out = append(out, c...)
	}
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Truncated reports whether events were dropped due to MaxEvents.
func (r *Recorder) Truncated() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.truncated
}

// Reset clears the recorder, recycling the arena chunks so a subsequent
// recording run of similar size allocates nothing.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, c := range r.chunks {
		r.free = append(r.free, c[:0])
		r.chunks[i] = nil
	}
	r.chunks = r.chunks[:0]
	r.n = 0
	r.truncated = false
}

// CountByKind tallies recorded events per kind.
func (r *Recorder) CountByKind() map[Kind]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Kind]int)
	for _, c := range r.chunks {
		for _, e := range c {
			out[e.Kind]++
		}
	}
	return out
}

// Writer streams each event as a line to an io.Writer.
type Writer struct {
	W io.Writer
	// Filter, when non-zero, restricts output to one kind.
	Filter Kind
}

var _ Tracer = (*Writer)(nil)

// Trace writes the event; write errors are ignored (tracing is
// best-effort diagnostics).
func (w *Writer) Trace(e Event) {
	if w.Filter != 0 && e.Kind != w.Filter {
		return
	}
	fmt.Fprintln(w.W, e.String())
}

// Multi fans events out to several tracers.
func Multi(tracers ...Tracer) Tracer {
	list := make([]Tracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			list = append(list, t)
		}
	}
	return multiTracer(list)
}

type multiTracer []Tracer

func (m multiTracer) Trace(e Event) {
	for _, t := range m {
		t.Trace(e)
	}
}
