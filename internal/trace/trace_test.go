package trace

import (
	"strings"
	"testing"
	"time"
)

func ev(k Kind) Event {
	return Event{At: time.Second, Kind: k, Node: 1, Peer: 2, Dest: 3}
}

func TestRecorderStoresInOrder(t *testing.T) {
	r := &Recorder{}
	r.Trace(ev(KindSend))
	r.Trace(ev(KindReceive))
	r.Trace(ev(KindProcess))
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	events := r.Events()
	if events[0].Kind != KindSend || events[2].Kind != KindProcess {
		t.Error("order lost")
	}
	// Events() returns a copy.
	events[0].Kind = KindNodeFailure
	if r.Events()[0].Kind != KindSend {
		t.Error("Events exposed internal slice")
	}
}

func TestRecorderFilter(t *testing.T) {
	r := &Recorder{Filter: KindRouteChange}
	r.Trace(ev(KindSend))
	r.Trace(ev(KindRouteChange))
	r.Trace(ev(KindProcess))
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (filtered)", r.Len())
	}
	if r.Events()[0].Kind != KindRouteChange {
		t.Error("wrong event kept")
	}
}

func TestRecorderMaxEvents(t *testing.T) {
	r := &Recorder{MaxEvents: 2}
	for i := 0; i < 5; i++ {
		r.Trace(ev(KindSend))
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if !r.Truncated() {
		t.Error("Truncated not set")
	}
	r.Reset()
	if r.Len() != 0 || r.Truncated() {
		t.Error("Reset incomplete")
	}
}

func TestRecorderCountByKind(t *testing.T) {
	r := &Recorder{}
	r.Trace(ev(KindSend))
	r.Trace(ev(KindSend))
	r.Trace(ev(KindProcess))
	counts := r.CountByKind()
	if counts[KindSend] != 2 || counts[KindProcess] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestWriterFormatsLines(t *testing.T) {
	var sb strings.Builder
	w := &Writer{W: &sb}
	w.Trace(Event{At: 2 * time.Second, Kind: KindSend, Node: 4, Peer: 7, Dest: 9, Withdrawal: true})
	w.Trace(Event{At: 3 * time.Second, Kind: KindTimerRestart, Node: 4, Peer: -1, Dest: -1, Value: int(time.Second)})
	out := sb.String()
	for _, want := range []string{"send", "node=4", "peer=7", "dest=9", "withdrawal", "timer", "mrai=1s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Errorf("got %d lines", len(lines))
	}
}

func TestWriterFilter(t *testing.T) {
	var sb strings.Builder
	w := &Writer{W: &sb, Filter: KindNodeFailure}
	w.Trace(ev(KindSend))
	if sb.Len() != 0 {
		t.Error("filtered event written")
	}
	w.Trace(Event{Kind: KindNodeFailure, Node: 1, Peer: -1, Dest: -1})
	if sb.Len() == 0 {
		t.Error("matching event dropped")
	}
}

func TestMultiFansOutAndSkipsNil(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	m := Multi(a, nil, b)
	m.Trace(ev(KindSend))
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("fan-out failed: %d, %d", a.Len(), b.Len())
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindSend, KindReceive, KindProcess, KindRouteChange,
		KindTimerRestart, KindNodeFailure, KindSessionDown, KindNodeRecovery}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate name %q", int(k), s)
		}
		seen[s] = true
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestEventStringVariants(t *testing.T) {
	e := Event{At: time.Second, Kind: KindProcess, Node: 1, Peer: -1, Dest: -1, Value: 7}
	if !strings.Contains(e.String(), "batch=7") {
		t.Error(e.String())
	}
	e = Event{At: time.Second, Kind: KindRouteChange, Node: 1, Peer: -1, Dest: 5, Value: -1}
	if !strings.Contains(e.String(), "pathlen=-1") {
		t.Error(e.String())
	}
	// Negative peer/dest are omitted.
	if strings.Contains(e.String(), "peer=") {
		t.Error("negative peer printed")
	}
}

// TestRecorderSteadyStateAllocationFree pins the arena contract: once
// the recorder has grown to its high-water mark, a record → Reset →
// record cycle of the same size allocates nothing — recycled chunks are
// reused instead of reallocated. This keeps tracing affordable across
// pooled simulation trials.
func TestRecorderSteadyStateAllocationFree(t *testing.T) {
	const events = 3*recorderChunkSize + 17 // several chunks plus a partial
	r := &Recorder{}
	e := ev(KindSend)
	warm := func() {
		for i := 0; i < events; i++ {
			r.Trace(e)
		}
	}
	warm()
	r.Reset()
	avg := testing.AllocsPerRun(10, func() {
		warm()
		r.Reset()
	})
	if avg != 0 {
		t.Errorf("steady-state record/Reset cycle allocates %.2f objects/op, want 0", avg)
	}
}

// TestRecorderResetRecyclesAcrossRuns pins that events recorded after a
// Reset are correct (not interleaved with recycled garbage) and that
// Len/Events agree across the chunk boundary.
func TestRecorderResetRecyclesAcrossRuns(t *testing.T) {
	r := &Recorder{}
	for i := 0; i < recorderChunkSize+5; i++ {
		r.Trace(Event{Kind: KindSend, Node: i})
	}
	r.Reset()
	if r.Len() != 0 || len(r.Events()) != 0 {
		t.Fatalf("recorder not empty after Reset: %d events", r.Len())
	}
	for i := 0; i < 10; i++ {
		r.Trace(Event{Kind: KindReceive, Node: 100 + i})
	}
	got := r.Events()
	if len(got) != 10 {
		t.Fatalf("Len after reuse = %d, want 10", len(got))
	}
	for i, e := range got {
		if e.Kind != KindReceive || e.Node != 100+i {
			t.Errorf("event %d = %+v, want KindReceive node %d", i, e, 100+i)
		}
	}
}
