package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanAndStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice moments nonzero")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Mean(xs), 5) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almostEq(StdDev(xs), 2) {
		t.Errorf("StdDev = %v", StdDev(xs))
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("single-sample stddev nonzero")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max nonzero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {150, 5},
		{10, 1.4}, // interpolated
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile nonzero")
	}
	if Percentile([]float64{9}, 70) != 9 {
		t.Error("single-sample percentile wrong")
	}
	if Median(xs) != 3 {
		t.Error("median wrong")
	}
	// Input must not be mutated.
	shuffled := []float64{5, 1, 4, 2, 3}
	Percentile(shuffled, 50)
	if shuffled[0] != 5 {
		t.Error("Percentile mutated input")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !almostEq(got, cse.want) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if c.Len() != 4 {
		t.Error("Len wrong")
	}
	empty := NewCDF(nil)
	if empty.At(5) != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty CDF nonzero")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	cases := []struct{ q, want float64 }{
		{0, 10}, {0.25, 10}, {0.26, 20}, {0.5, 20}, {0.75, 30}, {1, 40}, {2, 40},
	}
	for _, cse := range cases {
		if got := c.Quantile(cse.q); !almostEq(got, cse.want) {
			t.Errorf("Quantile(%v) = %v, want %v", cse.q, got, cse.want)
		}
	}
}

func TestNewSeries(t *testing.T) {
	s, err := NewSeries(10, []float64{0, 5, 15, 15, 35, -3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 2, 0, 1}
	if len(s.Values) != len(want) {
		t.Fatalf("values = %v", s.Values)
	}
	for i, w := range want {
		if s.Values[i] != w {
			t.Errorf("bucket %d = %v, want %v", i, s.Values[i], w)
		}
	}
	if s.Total() != 5 {
		t.Errorf("Total = %v (negative x must be dropped)", s.Total())
	}
	if s.PeakIndex() != 0 {
		t.Errorf("PeakIndex = %d", s.PeakIndex())
	}
}

func TestNewSeriesWeighted(t *testing.T) {
	s, err := NewSeries(1, []float64{0.5, 1.5}, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Values[0] != 3 || s.Values[1] != 7 {
		t.Errorf("values = %v", s.Values)
	}
	if s.PeakIndex() != 1 {
		t.Errorf("PeakIndex = %d", s.PeakIndex())
	}
}

func TestNewSeriesValidation(t *testing.T) {
	if _, err := NewSeries(0, []float64{1}, nil); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewSeries(1, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched weights accepted")
	}
}

func TestEmptySeries(t *testing.T) {
	s, err := NewSeries(1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.PeakIndex() != -1 || s.Total() != 0 {
		t.Error("empty series stats wrong")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		p1, p2 := float64(a%101), float64(b%101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		return v1 <= v2 && v1 >= Min(xs) && v2 <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the CDF is a valid distribution function — monotone, 0 below
// the min, 1 at and above the max — and Quantile inverts At.
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		c := NewCDF(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if c.At(sorted[0]-1) != 0 {
			return false
		}
		if c.At(sorted[len(sorted)-1]) != 1 {
			return false
		}
		prev := 0.0
		for _, x := range sorted {
			cur := c.At(x)
			if cur < prev {
				return false
			}
			prev = cur
		}
		// Quantile(At(x)) <= x for every sample x.
		for _, x := range sorted {
			if c.Quantile(c.At(x)) > x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: series buckets conserve the total sample count.
func TestPropertySeriesConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		nonNeg := 0
		for i, r := range raw {
			xs[i] = float64(r) - 100 // some negatives
			if xs[i] >= 0 {
				nonNeg++
			}
		}
		s, err := NewSeries(7, xs, nil)
		if err != nil {
			return false
		}
		return almostEq(s.Total(), float64(nonNeg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
