// Package stats provides the small numerical toolkit the experiment
// analysis uses: moments, percentiles, empirical CDFs, and fixed-width
// time-bucket series. Everything operates on float64 slices and never
// mutates its inputs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation; zero for fewer than
// two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the smallest value; zero for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value; zero for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics; zero for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples.
func NewCDF(xs []float64) CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return CDF{sorted: sorted}
}

// At returns P(X <= x) in [0, 1]; zero for an empty CDF.
func (c CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with sorted[i] > x.
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample x with P(X <= x) >= q; zero for
// an empty CDF. q outside [0,1] is clamped.
func (c CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q > 1 {
		q = 1
	}
	// The epsilon guards against q*n landing one ULP above an integer
	// when q came from an (idx/n)-style computation.
	idx := int(math.Ceil(q*float64(len(c.sorted))-1e-9)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Len returns the sample count.
func (c CDF) Len() int { return len(c.sorted) }

// Series is a fixed-width-bucket time series: Values[i] aggregates the
// half-open interval [i*Width, (i+1)*Width) of the x axis.
type Series struct {
	Width  float64
	Values []float64
}

// NewSeries buckets (x, weight) samples into width-sized bins starting
// at zero. Negative x values are dropped. It returns an error for a
// non-positive width.
func NewSeries(width float64, xs, weights []float64) (Series, error) {
	if width <= 0 {
		return Series{}, fmt.Errorf("stats: bucket width %v", width)
	}
	if len(weights) != 0 && len(weights) != len(xs) {
		return Series{}, fmt.Errorf("stats: %d weights for %d samples", len(weights), len(xs))
	}
	s := Series{Width: width}
	for i, x := range xs {
		if x < 0 {
			continue
		}
		idx := int(x / width)
		for len(s.Values) <= idx {
			s.Values = append(s.Values, 0)
		}
		w := 1.0
		if len(weights) != 0 {
			w = weights[i]
		}
		s.Values[idx] += w
	}
	return s, nil
}

// PeakIndex returns the index of the largest bucket (-1 when empty).
func (s Series) PeakIndex() int {
	best, bestV := -1, math.Inf(-1)
	for i, v := range s.Values {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Total returns the sum over all buckets.
func (s Series) Total() float64 {
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum
}
