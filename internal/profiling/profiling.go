// Package profiling wires Go's pprof profilers into the command-line
// tools. Every cmd/ binary exposes -cpuprofile and -memprofile flags
// through AddFlags/Stop so a paper-scale run can be profiled without a
// test harness:
//
//	bgpfig -fig 3 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof -top cpu.out
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Config holds the profile destinations parsed from the command line.
type Config struct {
	// CPUPath receives a CPU profile covering Start..Stop ("" = disabled).
	CPUPath string
	// MemPath receives a heap profile written at Stop ("" = disabled).
	MemPath string
	// StormCPUPath receives a CPU profile scoped to the first measurement
	// window of the run — failure injection to quiescence, the storm
	// phase ("" = disabled). Mutually exclusive with CPUPath: the runtime
	// supports one CPU profile at a time.
	StormCPUPath string
	// StormMemPath receives a heap profile written when that window
	// closes ("" = disabled).
	StormMemPath string

	cpuFile *os.File
}

// AddFlags registers the profiling flags on fs.
func (c *Config) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.CPUPath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemPath, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&c.StormCPUPath, "storm-cpuprofile", "", "write a CPU profile of the first measurement window (failure to quiescence) to this file")
	fs.StringVar(&c.StormMemPath, "storm-memprofile", "", "write a heap profile at the close of the first measurement window to this file")
}

// Start begins CPU profiling if requested. It must be paired with Stop.
func (c *Config) Start() error {
	if c.StormCPUPath != "" || c.StormMemPath != "" {
		if c.CPUPath != "" && c.StormCPUPath != "" {
			return fmt.Errorf("profiling: -cpuprofile and -storm-cpuprofile are mutually exclusive (one CPU profile at a time)")
		}
		SetStormProfile(c.StormCPUPath, c.StormMemPath)
	}
	if c.CPUPath == "" {
		return nil
	}
	f, err := os.Create(c.CPUPath)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	c.cpuFile = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile, if either was
// requested. Safe to call when Start was never called or profiling is
// disabled. A storm window still open (the run ended before quiescence)
// is finalized first so its partial capture is not lost.
func (c *Config) Stop() error {
	var firstErr error
	if serr := StormWindowClose(); serr != nil {
		firstErr = serr
	}
	storm.mu.Lock()
	storm.cpuPath, storm.memPath, storm.done = "", "", false
	storm.mu.Unlock()
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := c.cpuFile.Close(); err != nil {
			firstErr = nonNil(firstErr, fmt.Errorf("profiling: %w", err))
		}
		c.cpuFile = nil
	}
	if c.MemPath != "" {
		f, err := os.Create(c.MemPath)
		if err != nil {
			return nonNil(firstErr, fmt.Errorf("profiling: %w", err))
		}
		runtime.GC() // capture the settled live set, not transient garbage
		err = pprof.Lookup("allocs").WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nonNil(firstErr, fmt.Errorf("profiling: %w", err))
		}
	}
	return firstErr
}

// nonNil returns the first non-nil error.
func nonNil(a, b error) error {
	if a != nil {
		return a
	}
	return b
}

// Storm-window capture: the simulator opens a measurement window when a
// failure is injected and the window closes at quiescence, so a profile
// scoped to exactly that span isolates the post-failure exploration
// storm from topology build and initial convergence. The hooks are
// package-level because the window open/close sites live deep inside
// the simulator, far from any Config.
//
// Only the FIRST window after SetStormProfile is captured — the Go
// runtime cannot pause and resume one CPU profile across the many
// windows a benchmark loop opens, and one representative window is what
// a profiling session needs.
var storm struct {
	mu      sync.Mutex
	cpuPath string
	memPath string
	done    bool     // first window already captured (or capture underway)
	cpuFile *os.File // non-nil while a storm CPU profile is running
}

// SetStormProfile arms storm-window capture. The next StormWindowOpen
// begins a CPU profile written to cpuPath, and the matching
// StormWindowClose writes a heap profile to memPath; either path may be
// empty to disable that half. Config.Start calls this for the
// -storm-cpuprofile/-storm-memprofile flags.
func SetStormProfile(cpuPath, memPath string) {
	storm.mu.Lock()
	defer storm.mu.Unlock()
	storm.cpuPath, storm.memPath = cpuPath, memPath
	storm.done = false
}

// StormWindowOpen begins the storm-phase capture if one is armed and
// not yet taken. Idempotent and cheap when capture is disabled or
// already done; errors are returned so CLI callers can surface them,
// but the simulator ignores the return (a failed profile must not fail
// the run).
func StormWindowOpen() error {
	storm.mu.Lock()
	defer storm.mu.Unlock()
	if storm.done || (storm.cpuPath == "" && storm.memPath == "") {
		return nil
	}
	storm.done = true
	if storm.cpuPath == "" {
		return nil
	}
	f, err := os.Create(storm.cpuPath)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	storm.cpuFile = f
	return nil
}

// StormWindowClose finalizes a storm capture begun by StormWindowOpen:
// stops the CPU profile and writes the heap profile. Idempotent; safe
// to call when no window is open.
func StormWindowClose() error {
	storm.mu.Lock()
	defer storm.mu.Unlock()
	if !storm.done || (storm.cpuFile == nil && storm.memPath == "") {
		return nil
	}
	var firstErr error
	if storm.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := storm.cpuFile.Close(); err != nil {
			firstErr = fmt.Errorf("profiling: %w", err)
		}
		storm.cpuFile = nil
	}
	if storm.memPath != "" {
		path := storm.memPath
		storm.memPath = "" // write once, at the first close
		f, err := os.Create(path)
		if err != nil {
			return nonNil(firstErr, fmt.Errorf("profiling: %w", err))
		}
		runtime.GC() // capture the settled live set, not transient garbage
		err = pprof.Lookup("allocs").WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nonNil(firstErr, fmt.Errorf("profiling: %w", err))
		}
	}
	return firstErr
}
