// Package profiling wires Go's pprof profilers into the command-line
// tools. Every cmd/ binary exposes -cpuprofile and -memprofile flags
// through AddFlags/Stop so a paper-scale run can be profiled without a
// test harness:
//
//	bgpfig -fig 3 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof -top cpu.out
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config holds the profile destinations parsed from the command line.
type Config struct {
	// CPUPath receives a CPU profile covering Start..Stop ("" = disabled).
	CPUPath string
	// MemPath receives a heap profile written at Stop ("" = disabled).
	MemPath string

	cpuFile *os.File
}

// AddFlags registers -cpuprofile and -memprofile on fs.
func (c *Config) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.CPUPath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemPath, "memprofile", "", "write a heap profile to this file on exit")
}

// Start begins CPU profiling if requested. It must be paired with Stop.
func (c *Config) Start() error {
	if c.CPUPath == "" {
		return nil
	}
	f, err := os.Create(c.CPUPath)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	c.cpuFile = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile, if either was
// requested. Safe to call when Start was never called or profiling is
// disabled.
func (c *Config) Stop() error {
	var firstErr error
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := c.cpuFile.Close(); err != nil {
			firstErr = fmt.Errorf("profiling: %w", err)
		}
		c.cpuFile = nil
	}
	if c.MemPath != "" {
		f, err := os.Create(c.MemPath)
		if err != nil {
			return nonNil(firstErr, fmt.Errorf("profiling: %w", err))
		}
		runtime.GC() // capture the settled live set, not transient garbage
		err = pprof.Lookup("allocs").WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nonNil(firstErr, fmt.Errorf("profiling: %w", err))
		}
	}
	return firstErr
}

// nonNil returns the first non-nil error.
func nonNil(a, b error) error {
	if a != nil {
		return a
	}
	return b
}
