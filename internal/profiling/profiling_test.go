package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// TestStormWindowCapture drives the storm-window lifecycle directly:
// arm, open, close — the CPU and heap profiles must land on disk and a
// second open/close pair must not disturb them (first window wins).
func TestStormWindowCapture(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "storm-cpu.out")
	mem := filepath.Join(dir, "storm-mem.out")
	SetStormProfile(cpu, mem)
	defer SetStormProfile("", "")

	if err := StormWindowOpen(); err != nil {
		t.Fatal(err)
	}
	// Busywork so the CPU profile has something to sample.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i * i
	}
	_ = sink
	if err := StormWindowClose(); err != nil {
		t.Fatal(err)
	}
	cpuInfo, err := os.Stat(cpu)
	if err != nil {
		t.Fatalf("CPU profile not written: %v", err)
	}
	memInfo, err := os.Stat(mem)
	if err != nil {
		t.Fatalf("heap profile not written: %v", err)
	}
	if cpuInfo.Size() == 0 || memInfo.Size() == 0 {
		t.Fatalf("empty profile: cpu=%d bytes mem=%d bytes", cpuInfo.Size(), memInfo.Size())
	}

	// Later windows are not captured: the files must stay as written.
	if err := StormWindowOpen(); err != nil {
		t.Fatal(err)
	}
	if err := StormWindowClose(); err != nil {
		t.Fatal(err)
	}
	if again, err := os.Stat(cpu); err != nil || again.ModTime() != cpuInfo.ModTime() {
		t.Errorf("second window rewrote the CPU profile (err=%v)", err)
	}
}

// TestStormWindowIdempotentWhenDisarmed: with no storm profile armed the
// hooks are no-ops — this is the hot path every simulation run takes.
func TestStormWindowIdempotentWhenDisarmed(t *testing.T) {
	SetStormProfile("", "")
	for i := 0; i < 3; i++ {
		if err := StormWindowOpen(); err != nil {
			t.Fatal(err)
		}
		if err := StormWindowClose(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConfigRejectsDualCPUProfiles: the runtime supports one CPU profile
// at a time, so -cpuprofile and -storm-cpuprofile must be refused
// together rather than failing halfway into the run.
func TestConfigRejectsDualCPUProfiles(t *testing.T) {
	dir := t.TempDir()
	c := Config{
		CPUPath:      filepath.Join(dir, "cpu.out"),
		StormCPUPath: filepath.Join(dir, "storm.out"),
	}
	if err := c.Start(); err == nil {
		c.Stop()
		t.Fatal("Start accepted both -cpuprofile and -storm-cpuprofile")
	}
}

// TestConfigStopFinalizesOpenWindow: a run that ends mid-window (e.g. an
// error path) must still flush the storm capture at Config.Stop.
func TestConfigStopFinalizesOpenWindow(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "storm-cpu.out")
	var c Config
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.AddFlags(fs)
	if err := fs.Parse([]string{"-storm-cpuprofile", cpu}); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := StormWindowOpen(); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(cpu)
	if err != nil {
		t.Fatalf("Stop did not flush the open storm window: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("flushed CPU profile is empty")
	}
}
