// Package snapshot computes the converged routing state of a topology
// directly — no events — by rounds of relaxation over flat per-(node,
// destination-AS) arrays, the matrix-style formulation of BGP route
// selection. It implements exactly the decision and export semantics of
// the discrete-event simulator (internal/bgp): shortest AS path with the
// deterministic tie-break in the policy-free configuration, and
// valley-free customer > peer > provider selection under a Gao–Rexford
// relationship annotation. The fixpoint it reaches is the state the DES
// quiesces in, which makes the package usable three ways:
//
//   - as a differential oracle for the simulator's decision process
//     (snapshot routes must equal DES converged routes);
//   - as a warm start: bgp.Params.WarmStart installs the snapshot as the
//     initial RIB state so trials begin at failure injection;
//   - as a scale mode (cmd/bgpsnap): converged-state statistics at
//     10k+-AS sizes the event simulator cannot reach.
//
// Exactness argument. A node's stored route is a function of the
// neighbor it learned from (the from-pointer); candidate generation
// replicates the simulator's export rules (split horizon, the IBGP
// no-relay rule, Gao–Rexford export filtering, AS-loop suppression) and
// selection replicates its strict total order. Any fixpoint of the
// synchronous relaxation has acyclic from-chains — split horizon kills
// two-cycles, the no-relay rule caps internal chains at one hop, and
// every external hop strictly grows the path — so a fixpoint satisfies
// the simulator's quiescence equations exactly. Shortest-path ranking
// and the acyclic provider hierarchies both in-tree annotators produce
// (strictly decreasing degree, or strictly decreasing BFS level, along
// provider→customer edges) guarantee the iteration converges to the
// unique such fixpoint; a generous round cap turns any violation of
// those preconditions into an error instead of a hang.
package snapshot

import (
	"fmt"
	"sort"

	"bgpsim/internal/topology"
)

// From-pointer sentinels; real values are node IDs (>= 0).
const (
	// FromNone marks a (node, AS) pair with no converged route.
	FromNone int32 = -1
	// FromSelf marks the origin node of the AS (locally originated).
	FromSelf int32 = -2
)

// Config parameterizes a snapshot computation.
type Config struct {
	// Policy enables Gao–Rexford valley-free selection and export under
	// the given relationship annotation; nil selects the paper's
	// policy-free shortest-path configuration. The same annotation must
	// be handed to the DES (bgp.Params.Policy) for the two backends to
	// agree — see topology.Spec.Relationships for carrying one
	// annotation to both.
	Policy *topology.Relationships

	// MaxRounds caps the relaxation sweeps per destination AS (0 means
	// an automatic cap of 4·nodes+16). Exceeding it returns an error —
	// it means the preference system has no unique fixpoint, which the
	// in-tree relationship annotators cannot produce.
	MaxRounds int
}

// nbr is one precomputed directed adjacency: everything candidate
// evaluation needs without a map lookup.
type nbr struct {
	node     int32
	as       int32
	internal bool
	// cls is the route class at the owning node for routes learned from
	// this neighbor: 0 customer/internal/none, 1 peer, 2 provider —
	// bgp's routeClass.
	cls uint8
	// expOK reports whether the neighbor may export its peer- and
	// provider-learned routes to the owner (the owner is the neighbor's
	// customer, or the link is unannotated) — the Gao–Rexford export
	// rule evaluated once per directed edge.
	expOK bool
}

// world is the immutable precomputed view of (network, policy) every
// per-AS relaxation shares.
type world struct {
	net *topology.Network
	pol *topology.Relationships
	n   int
	as  []int32 // node -> AS number
	// nbrs lists each node's neighbors sorted by node ID — the
	// simulator's peer slot order, which the tie-break depends on.
	nbrs   [][]nbr
	origin []int32 // dense per AS: originating node (lowest ID), -1 none
	maxAS  int
}

func buildWorld(net *topology.Network, pol *topology.Relationships) *world {
	n := net.NumNodes()
	w := &world{net: net, pol: pol, n: n}
	w.as = make([]int32, n)
	maxAS := 0
	for i := 0; i < n; i++ {
		as := net.ASOf(i)
		w.as[i] = int32(as)
		if as > maxAS {
			maxAS = as
		}
	}
	w.maxAS = maxAS
	w.origin = make([]int32, maxAS+1)
	for i := range w.origin {
		w.origin[i] = -1
	}
	for i := 0; i < n; i++ {
		as := w.as[i]
		if cur := w.origin[as]; cur < 0 || int32(i) < cur {
			w.origin[as] = int32(i)
		}
	}
	w.nbrs = make([][]nbr, n)
	for i := 0; i < n; i++ {
		adj := net.Neighbors(i)
		list := make([]nbr, 0, len(adj))
		for _, a := range adj {
			e := nbr{node: int32(a.ID), as: w.as[a.ID], internal: a.Internal, expOK: true}
			if pol != nil && !a.Internal {
				switch pol.Of(i, a.ID) {
				case topology.RelPeer:
					e.cls = 1
				case topology.RelProvider:
					e.cls = 2
				}
				rel := pol.Of(a.ID, i)
				e.expOK = rel == topology.RelCustomer || rel == topology.RelNone
			}
			list = append(list, e)
		}
		sort.Slice(list, func(a, b int) bool { return list[a].node < list[b].node })
		w.nbrs[i] = list
	}
	return w
}

// bfsOrder appends a breadth-first node order from src (all links, both
// directions) to buf, then any unreached nodes in ID order, so a sweep
// visits nodes roughly in the direction routes propagate.
func (w *world) bfsOrder(src int, buf []int32, seen []bool) []int32 {
	for i := range seen {
		seen[i] = false
	}
	buf = buf[:0]
	buf = append(buf, int32(src))
	seen[src] = true
	for head := 0; head < len(buf); head++ {
		v := buf[head]
		for _, e := range w.nbrs[v] {
			if !seen[e.node] {
				seen[e.node] = true
				buf = append(buf, e.node)
			}
		}
	}
	for i := 0; i < w.n; i++ {
		if !seen[i] {
			buf = append(buf, int32(i))
		}
	}
	return buf
}

// state holds one destination AS's relaxation arrays, reused across ASes.
type state struct {
	from    []int32
	plen    []int32
	cls     []uint8
	fromInt []bool
	mask    []uint64
	order   []int32
	seen    []bool
}

func newState(n int) *state {
	return &state{
		from:    make([]int32, n),
		plen:    make([]int32, n),
		cls:     make([]uint8, n),
		fromInt: make([]bool, n),
		mask:    make([]uint64, n),
		seen:    make([]bool, n),
	}
}

// chainContains reports whether AS x appears on the stored path of node
// q under the given (from, fromInt) chains: the path is the sequence of
// from-node ASes prepended along external hops. Transient cycles (the
// walk not terminating within n steps) count as containing — the
// conservative answer only delays adoption during relaxation and cannot
// occur at a fixpoint, where chains are acyclic.
func chainContains(w *world, from []int32, fromInt []bool, q int, x int32) bool {
	cur := q
	for steps := 0; steps <= w.n; steps++ {
		f := from[cur]
		if f < 0 {
			return false
		}
		if !fromInt[cur] && w.as[f] == x {
			return true
		}
		cur = int(f)
	}
	return true
}

// relax computes the converged state for the destination AS originated
// at node origin, sweeping st in place until a full sweep changes
// nothing. Returns the number of sweeps (including the final quiet one).
func (w *world) relax(st *state, origin int, maxRounds int) (int, error) {
	for i := 0; i < w.n; i++ {
		st.from[i] = FromNone
		st.plen[i] = 0
		st.cls[i] = 0
		st.fromInt[i] = false
		st.mask[i] = 0
	}
	st.from[origin] = FromSelf
	st.order = w.bfsOrder(origin, st.order, st.seen)
	rounds := 0
	for {
		rounds++
		if rounds > maxRounds {
			return rounds, fmt.Errorf("snapshot: no fixpoint for origin node %d within %d rounds", origin, maxRounds)
		}
		changed := false
		for _, rv := range st.order {
			r := int(rv)
			if r == origin {
				continue // locally originated: never displaced
			}
			// Select the best candidate over the neighbor slots in slot
			// order — bgp's decide, with candidates generated by its
			// desiredAdvert export rules.
			var bPlen int32
			var bMask uint64
			var bCls uint8
			var bInt bool
			var bFrom int32 = FromNone
			var bPeerAS, bPeerNode int32
			for _, e := range w.nbrs[r] {
				q := int(e.node)
				fq := st.from[q]
				if fq == FromNone {
					continue
				}
				if fq >= 0 {
					if int(fq) == r {
						continue // split horizon / sender-side loop detection
					}
					if st.fromInt[q] && e.internal {
						continue // IBGP-learned routes are not relayed to IBGP peers
					}
					if w.pol != nil && !e.internal && st.cls[q] != 0 && !e.expOK {
						continue // Gao–Rexford: peer/provider routes only to customers
					}
				}
				var cPlen int32
				var cMask uint64
				var cInt bool
				if e.internal {
					cPlen, cMask, cInt = st.plen[q], st.mask[q], true
				} else {
					if e.as == w.as[r] {
						continue // defensive: external link within one AS
					}
					if st.mask[q]&(1<<(uint(w.as[r])&63)) != 0 &&
						chainContains(w, st.from, st.fromInt, q, w.as[r]) {
						continue // the local AS is already on the path
					}
					cPlen, cMask, cInt = st.plen[q]+1, st.mask[q]|1<<(uint(e.as)&63), false
				}
				cCls := e.cls
				if bFrom == FromNone || betterCand(cCls, cPlen, cInt, e.as, e.node, bCls, bPlen, bInt, bPeerAS, bPeerNode) {
					bFrom, bPlen, bMask, bCls, bInt = e.node, cPlen, cMask, cCls, cInt
					bPeerAS, bPeerNode = e.as, e.node
				}
			}
			if st.from[r] != bFrom || st.plen[r] != bPlen || st.cls[r] != bCls ||
				st.fromInt[r] != bInt || st.mask[r] != bMask {
				st.from[r], st.plen[r], st.cls[r] = bFrom, bPlen, bCls
				st.fromInt[r], st.mask[r] = bInt, bMask
				changed = true
			}
		}
		if !changed {
			return rounds, nil
		}
	}
}

// betterCand is bgp's betterRoute over the relaxation encoding: class,
// then path length, then EBGP over IBGP, then lowest peer AS, then
// lowest peer node ID. Strict — the caller keeps the earliest slot on
// ties, as decide does.
func betterCand(ca uint8, la int32, ia bool, asA, nA int32,
	cb uint8, lb int32, ib bool, asB, nB int32) bool {
	if ca != cb {
		return ca < cb
	}
	if la != lb {
		return la < lb
	}
	if ia != ib {
		return !ia
	}
	if asA != asB {
		return asA < asB
	}
	return nA < nB
}

func (c Config) maxRounds(n int) int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return 4*n + 16
}

// Result is a full converged-state snapshot: per (destination AS, node),
// the from-pointer and the derived path facts, in flat arrays indexed
// [asSlot·n + node]. Paths are implicit in the from-chains and
// reconstructed on demand (Path), which is also how the warm-start
// installer re-derives interned path refs.
type Result struct {
	w      *world
	ases   []int   // origin AS numbers, ascending
	asSlot []int32 // dense per AS number: slot in ases, -1 none

	from    []int32
	plen    []int32
	cls     []uint8
	fromInt []bool
	mask    []uint64

	rounds int // max sweeps over all destination ASes
}

// Compute runs the relaxation for every destination AS the topology
// originates and returns the full converged state.
func Compute(net *topology.Network, cfg Config) (*Result, error) {
	if net.NumNodes() == 0 {
		return nil, fmt.Errorf("snapshot: empty network")
	}
	w := buildWorld(net, cfg.Policy)
	var ases []int
	for as, o := range w.origin {
		if o >= 0 {
			ases = append(ases, as)
		}
	}
	res := &Result{
		w:      w,
		ases:   ases,
		asSlot: make([]int32, w.maxAS+1),
		from:   make([]int32, len(ases)*w.n),
		plen:   make([]int32, len(ases)*w.n),
		cls:    make([]uint8, len(ases)*w.n),
		fromInt: make([]bool, len(ases)*w.n),
		mask:   make([]uint64, len(ases)*w.n),
	}
	for i := range res.asSlot {
		res.asSlot[i] = -1
	}
	st := newState(w.n)
	cap := cfg.maxRounds(w.n)
	for slot, as := range ases {
		res.asSlot[as] = int32(slot)
		rounds, err := w.relax(st, int(w.origin[as]), cap)
		if err != nil {
			return nil, err
		}
		if rounds > res.rounds {
			res.rounds = rounds
		}
		base := slot * w.n
		copy(res.from[base:base+w.n], st.from)
		copy(res.plen[base:base+w.n], st.plen)
		copy(res.cls[base:base+w.n], st.cls)
		copy(res.fromInt[base:base+w.n], st.fromInt)
		copy(res.mask[base:base+w.n], st.mask)
	}
	return res, nil
}

// Nodes returns the node count of the underlying network.
func (res *Result) Nodes() int { return res.w.n }

// ASes returns the destination AS numbers in ascending order.
func (res *Result) ASes() []int { return res.ases }

// Rounds returns the maximum relaxation sweep count over all
// destination ASes (including each destination's final quiet sweep).
func (res *Result) Rounds() int { return res.rounds }

// OriginOf returns the node originating AS as's prefixes.
func (res *Result) OriginOf(as int) (int, bool) {
	if as < 0 || as > res.w.maxAS || res.w.origin[as] < 0 {
		return 0, false
	}
	return int(res.w.origin[as]), true
}

func (res *Result) base(as int) (int, bool) {
	if as < 0 || as >= len(res.asSlot) || res.asSlot[as] < 0 {
		return 0, false
	}
	return int(res.asSlot[as]) * res.w.n, true
}

// From returns node's converged from-pointer for destination AS as:
// the neighbor node the best route was learned from, FromSelf at the
// origin, FromNone when no route exists.
func (res *Result) From(as, node int) int32 {
	base, ok := res.base(as)
	if !ok {
		return FromNone
	}
	return res.from[base+node]
}

// FromInternal reports whether node's converged route for as was
// learned over an internal (IBGP) session.
func (res *Result) FromInternal(as, node int) bool {
	base, ok := res.base(as)
	if !ok {
		return false
	}
	return res.fromInt[base+node]
}

// PathLen returns the AS-path length of node's converged route for as
// (-1 when no route; 0 at the origin and for intra-AS routes).
func (res *Result) PathLen(as, node int) int {
	base, ok := res.base(as)
	if !ok || res.from[base+node] == FromNone {
		return -1
	}
	return int(res.plen[base+node])
}

// Path reconstructs node's converged AS path for as, nearest AS first —
// the simulator's Loc-RIB representation. Returns (nil, false) when no
// route exists; the origin (and intra-AS learners) get a non-nil empty
// path.
func (res *Result) Path(as, node int) ([]int, bool) {
	base, ok := res.base(as)
	if !ok || res.from[base+node] == FromNone {
		return nil, false
	}
	out := make([]int, 0, res.plen[base+node])
	cur := node
	for {
		f := res.from[base+cur]
		if f == FromSelf {
			return out, true
		}
		if f < 0 || len(out) > res.w.n {
			return nil, false // unreachable at a fixpoint
		}
		if !res.fromInt[base+cur] {
			out = append(out, int(res.w.as[f]))
		}
		cur = int(f)
	}
}

// Advertises reports whether, at the fixpoint, node q advertises the
// as-destination to its neighbor r — i.e. whether the simulator's
// quiescent Adj-RIB-In at r holds a route from q (desiredAdvert's export
// rules; the receiver-side loop check is subsumed by the sender-side
// one). q and r must be adjacent.
func (res *Result) Advertises(as, q, r int) bool {
	base, ok := res.base(as)
	if !ok {
		return false
	}
	fq := res.from[base+q]
	if fq == FromNone {
		return false
	}
	w := res.w
	// Locate the directed edge q->r in q's sorted neighbor list.
	list := w.nbrs[q]
	i := sort.Search(len(list), func(i int) bool { return list[i].node >= int32(r) })
	if i >= len(list) || list[i].node != int32(r) {
		return false
	}
	internal := list[i].internal
	if fq >= 0 {
		if int(fq) == r {
			return false
		}
		if res.fromInt[base+q] && internal {
			return false
		}
		if w.pol != nil && !internal && res.cls[base+q] != 0 {
			rel := w.pol.Of(q, r)
			if rel != topology.RelCustomer && rel != topology.RelNone {
				return false
			}
		}
	}
	if !internal {
		if w.as[q] == w.as[r] {
			return false
		}
		if res.mask[base+q]&(1<<(uint(w.as[r])&63)) != 0 &&
			chainContains(w, res.from[base:base+w.n], res.fromInt[base:base+w.n], q, w.as[r]) {
			return false
		}
	}
	return true
}

// Summary aggregates converged-state statistics without retaining the
// per-AS arrays — the streaming form behind the 10k+-AS scale mode.
type Summary struct {
	Nodes int
	Links int
	ASes  int
	// Pairs is ASes × nodes (every potential routing-table entry);
	// Reachable counts the pairs holding a converged route.
	Pairs     int64
	Reachable int64
	// MaxRounds and MeanRounds describe the relaxation sweeps per
	// destination AS.
	MaxRounds  int
	MeanRounds float64
	// Path-length statistics over reachable pairs (external hops).
	MeanPathLen float64
	MaxPathLen  int
	// PathLenHist counts reachable pairs by path length; lengths at or
	// beyond the last bucket accumulate there.
	PathLenHist []int64
}

// histBuckets is the PathLenHist size (lengths 0..14, 15+ overflow).
const histBuckets = 16

// Stats computes converged-state statistics destination-by-destination,
// reusing one set of relaxation arrays — O(nodes) memory regardless of
// AS count, which is what lets cmd/bgpsnap report on topologies far past
// the event simulator's reach.
func Stats(net *topology.Network, cfg Config) (Summary, error) {
	if net.NumNodes() == 0 {
		return Summary{}, fmt.Errorf("snapshot: empty network")
	}
	w := buildWorld(net, cfg.Policy)
	st := newState(w.n)
	cap := cfg.maxRounds(w.n)
	sum := Summary{
		Nodes:       w.n,
		Links:       net.NumLinks(),
		PathLenHist: make([]int64, histBuckets),
	}
	var roundsTotal int64
	var plenTotal int64
	for as := 0; as <= w.maxAS; as++ {
		o := w.origin[as]
		if o < 0 {
			continue
		}
		sum.ASes++
		rounds, err := w.relax(st, int(o), cap)
		if err != nil {
			return Summary{}, err
		}
		roundsTotal += int64(rounds)
		if rounds > sum.MaxRounds {
			sum.MaxRounds = rounds
		}
		sum.Pairs += int64(w.n)
		for i := 0; i < w.n; i++ {
			if st.from[i] == FromNone {
				continue
			}
			sum.Reachable++
			l := int(st.plen[i])
			plenTotal += int64(l)
			if l > sum.MaxPathLen {
				sum.MaxPathLen = l
			}
			if l >= histBuckets {
				l = histBuckets - 1
			}
			sum.PathLenHist[l]++
		}
	}
	if sum.ASes > 0 {
		sum.MeanRounds = float64(roundsTotal) / float64(sum.ASes)
	}
	if sum.Reachable > 0 {
		sum.MeanPathLen = float64(plenTotal) / float64(sum.Reachable)
	}
	return sum, nil
}
