package snapshot

import (
	"reflect"
	"testing"

	"bgpsim/internal/des"
	"bgpsim/internal/topology"
)

// line012 is three single-node ASes in a line: 0–1–2, external links.
func line012(t *testing.T) *topology.Network {
	t.Helper()
	nw := topology.NewNetwork(3)
	for i := 0; i < 3; i++ {
		nw.SetAS(i, i)
	}
	mustLink(t, nw, 0, 1, false)
	mustLink(t, nw, 1, 2, false)
	return nw
}

func mustLink(t *testing.T, nw *topology.Network, a, b int, internal bool) {
	t.Helper()
	if err := nw.AddLink(a, b, internal); err != nil {
		t.Fatalf("AddLink(%d,%d): %v", a, b, err)
	}
}

func wantPath(t *testing.T, res *Result, as, node int, want []int) {
	t.Helper()
	got, ok := res.Path(as, node)
	if !ok {
		t.Fatalf("Path(%d,%d): no route, want %v", as, node, want)
	}
	if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
		t.Fatalf("Path(%d,%d) = %v, want %v", as, node, got, want)
	}
}

func TestLineShortestPath(t *testing.T) {
	res, err := Compute(line012(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ASes(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("ASes = %v", got)
	}
	if res.From(0, 0) != FromSelf {
		t.Fatalf("origin from = %d", res.From(0, 0))
	}
	wantPath(t, res, 0, 0, []int{})
	wantPath(t, res, 0, 1, []int{0})
	wantPath(t, res, 0, 2, []int{1, 0})
	wantPath(t, res, 2, 0, []int{1, 2})
	if res.PathLen(0, 2) != 2 || res.PathLen(0, 0) != 0 {
		t.Fatalf("PathLen = %d / %d", res.PathLen(0, 2), res.PathLen(0, 0))
	}
	// Split horizon: node1's best for dest 0 came from node 0.
	if res.Advertises(0, 1, 0) {
		t.Fatal("split horizon violated: 1 advertises dest 0 back to 0")
	}
	if !res.Advertises(0, 1, 2) {
		t.Fatal("1 should advertise dest 0 to 2")
	}
	if !res.Advertises(0, 0, 1) {
		t.Fatal("origin should advertise to 1")
	}
}

func TestIntraASAndIBGPNoRelay(t *testing.T) {
	// AS0 = {0,1} with an internal link; node1 also speaks EBGP to AS1
	// = {2}, and node0 to AS2 = {3}.
	nw := topology.NewNetwork(4)
	nw.SetAS(0, 0)
	nw.SetAS(1, 0)
	nw.SetAS(2, 1)
	nw.SetAS(3, 2)
	mustLink(t, nw, 0, 1, true)
	mustLink(t, nw, 1, 2, false)
	mustLink(t, nw, 0, 3, false)
	res, err := Compute(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Dest AS0 originates at node0 (lowest ID); node1 learns it over
	// IBGP with an empty path, node2 via node1 with path [0].
	if o, ok := res.OriginOf(0); !ok || o != 0 {
		t.Fatalf("OriginOf(0) = %d,%v", o, ok)
	}
	wantPath(t, res, 0, 1, []int{})
	if !res.FromInternal(0, 1) {
		t.Fatal("node1 should hold dest 0 via IBGP")
	}
	wantPath(t, res, 0, 2, []int{0})
	// Dest AS1: node1 learns externally from node2; the IBGP no-relay
	// rule does not stop node1 from relaying to IBGP peer node0 —
	// EBGP-learned routes do go to internal peers.
	wantPath(t, res, 1, 0, []int{1})
	if !res.Advertises(1, 1, 0) {
		t.Fatal("EBGP-learned route should be advertised over IBGP")
	}
	// Dest AS2 reaches node0 via EBGP, node1 via IBGP; node1 must not
	// relay the IBGP-learned route back over IBGP (no route reflection).
	wantPath(t, res, 2, 1, []int{2})
	if !res.FromInternal(2, 1) {
		t.Fatal("node1 should hold dest 2 via IBGP")
	}
	if res.Advertises(2, 1, 0) {
		t.Fatal("IBGP-learned route must not be relayed to an IBGP peer")
	}
	// But node1 does relay it over EBGP to node2.
	if !res.Advertises(2, 1, 2) {
		t.Fatal("IBGP-learned route should be advertised over EBGP")
	}
	wantPath(t, res, 2, 2, []int{0, 2})
}

func TestTieBreakLowestPeerAS(t *testing.T) {
	// Diamond: 0–1–3 and 0–2–3, all single-node ASes. Node3 has two
	// equal-length candidates for dest 0 and must pick the one via the
	// lower peer AS (node1 / AS1).
	nw := topology.NewNetwork(4)
	for i := 0; i < 4; i++ {
		nw.SetAS(i, i)
	}
	mustLink(t, nw, 0, 1, false)
	mustLink(t, nw, 0, 2, false)
	mustLink(t, nw, 1, 3, false)
	mustLink(t, nw, 2, 3, false)
	res, err := Compute(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantPath(t, res, 0, 3, []int{1, 0})
	if res.From(0, 3) != 1 {
		t.Fatalf("From(0,3) = %d, want 1", res.From(0, 3))
	}
}

func TestValleyFreeSuppression(t *testing.T) {
	// 0–1 and 1–2 are both peer links: node1 learns dest 0 from a peer
	// and must not export it to its other peer, so node2 has no route.
	nw := line012(t)
	pol := topology.NewRelationships()
	pol.Set(0, 1, topology.RelPeer)
	pol.Set(1, 2, topology.RelPeer)
	res, err := Compute(nw, Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	wantPath(t, res, 0, 1, []int{0})
	if res.From(0, 2) != FromNone {
		t.Fatalf("valley: node2 has route %v for dest 0", res.from)
	}
	if res.Advertises(0, 1, 2) {
		t.Fatal("peer-learned route exported to a peer")
	}
	if res.PathLen(0, 2) != -1 {
		t.Fatalf("PathLen on no route = %d", res.PathLen(0, 2))
	}
	if _, ok := res.Path(0, 2); ok {
		t.Fatal("Path on no route reported ok")
	}
}

func TestPolicyPrefersCustomerOverShorter(t *testing.T) {
	// Node3 can reach dest 0 directly via its provider (1 hop) or
	// through its customer chain (2 hops); customer routes win despite
	// the longer path.
	//
	//   0 —— 3        (3 is 0's customer? no: make 3 the provider-side)
	//   0 —— 2 —— 3   with 0,2 customers of the node above them.
	nw := topology.NewNetwork(4)
	for i := 0; i < 4; i++ {
		nw.SetAS(i, i)
	}
	mustLink(t, nw, 0, 3, false)
	mustLink(t, nw, 0, 2, false)
	mustLink(t, nw, 2, 3, false)
	pol := topology.NewRelationships()
	// 3 is 0's provider; 2 is 0's provider; 3 is 2's provider.
	pol.Set(0, 3, topology.RelProvider)
	pol.Set(0, 2, topology.RelProvider)
	pol.Set(2, 3, topology.RelProvider)
	res, err := Compute(nw, Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	// Dest AS2: node3 hears it from customer 2 (path [2]) and — no,
	// node0 is 2's customer and does not export its provider routes, so
	// via-0 never reaches 3. Check the interesting one instead: dest 0
	// at node3 arrives both directly (customer 0, path [0]) and via
	// customer 2 (path [2 0]); the direct customer route wins on length
	// among equal-class candidates.
	wantPath(t, res, 0, 3, []int{0})
	// Dest AS3 at node0: two provider routes, [3] (cls provider, len 1)
	// and via 2 ([2 3], provider, len 2) — shorter provider route wins.
	wantPath(t, res, 3, 0, []int{3})
	// Node2's route to 3 is provider-learned, so it must not be
	// exported to node0?  Node0 is 2's customer — provider routes DO go
	// to customers. Verify that export is allowed.
	if !res.Advertises(3, 2, 0) {
		t.Fatal("provider route must be exported to a customer")
	}
}

func TestStatsMatchesCompute(t *testing.T) {
	spec := topology.Spec{Kind: "internet-like", N: 60}
	nw, err := spec.Build(des.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Stats(nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Nodes != nw.NumNodes() || sum.ASes != len(res.ASes()) {
		t.Fatalf("Stats dims %d/%d vs %d/%d", sum.Nodes, sum.ASes, nw.NumNodes(), len(res.ASes()))
	}
	if sum.Pairs != int64(sum.ASes)*int64(sum.Nodes) {
		t.Fatalf("Pairs = %d", sum.Pairs)
	}
	var reach, plenTot int64
	maxLen := 0
	for _, as := range res.ASes() {
		for n := 0; n < res.Nodes(); n++ {
			if l := res.PathLen(as, n); l >= 0 {
				reach++
				plenTot += int64(l)
				if l > maxLen {
					maxLen = l
				}
			}
		}
	}
	if sum.Reachable != reach || sum.MaxPathLen != maxLen {
		t.Fatalf("Reachable/MaxPathLen = %d/%d, want %d/%d", sum.Reachable, sum.MaxPathLen, reach, maxLen)
	}
	if nw.Connected() && reach != sum.Pairs {
		t.Fatalf("connected network not fully reachable: %d/%d", reach, sum.Pairs)
	}
	var hist int64
	for _, c := range sum.PathLenHist {
		hist += c
	}
	if hist != reach {
		t.Fatalf("hist total %d != reachable %d", hist, reach)
	}
	if sum.MeanRounds <= 0 || sum.MaxRounds < int(sum.MeanRounds) {
		t.Fatalf("rounds stats %v/%v", sum.MeanRounds, sum.MaxRounds)
	}
}

func TestPolicyOracleVsInferred(t *testing.T) {
	// Under an inferred Gao–Rexford annotation, every stored path must
	// be valley-free and agreeing nodes inside one AS hold equal paths.
	spec := topology.Spec{Kind: "internet-like", N: 80}
	nw, err := spec.Build(des.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := topology.InferRelationships(nw, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compute(nw, Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	for _, as := range res.ASes() {
		for n := 0; n < res.Nodes(); n++ {
			f := res.From(as, n)
			if f == FromNone {
				continue
			}
			p, ok := res.Path(as, n)
			if !ok {
				t.Fatalf("route without path at (%d,%d)", as, n)
			}
			if len(p) > 0 && p[len(p)-1] != as {
				t.Fatalf("path %v for dest %d does not end at origin", p, as)
			}
			for _, hop := range p {
				if hop == nw.ASOf(n) {
					t.Fatalf("AS loop in path %v at node %d", p, n)
				}
			}
		}
	}
}
