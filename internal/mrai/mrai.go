// Package mrai implements the Minimum Route Advertisement Interval
// selection strategies studied in the paper: constant (the classic
// per-peer MRAI), degree-dependent (Section 4.2), and the dynamic
// load-adaptive ladder (Section 4.3) with its three overload signals
// (unfinished work, CPU utilization, message rate).
package mrai

import (
	"fmt"
	"time"
)

// Snapshot is the router-load view a Policy decides from. The BGP router
// builds one each time a per-peer timer is restarted; per the paper, MRAI
// changes take effect only at timer restart ("we do not modify the values
// of the running timers").
type Snapshot struct {
	// Now is the current simulated time.
	Now time.Duration
	// Degree is the router's total session count.
	Degree int
	// QueueLen is the number of update messages waiting to be processed.
	QueueLen int
	// UnfinishedWork is QueueLen multiplied by the mean per-update
	// processing delay — the paper's primary overload signal.
	UnfinishedWork time.Duration
	// Utilization is the fraction of time the router CPU was busy since
	// the previous snapshot, in [0,1].
	Utilization float64
	// MsgRate is the update arrival rate (messages/second) since the
	// previous snapshot.
	MsgRate float64
}

// Policy selects the MRAI each time a router restarts a per-peer timer.
// Implementations may carry per-router state (the dynamic ladder's current
// level); a fresh Policy is created for every router via a Factory.
type Policy interface {
	MRAI(s Snapshot) time.Duration
}

// Factory builds one Policy instance per router. degree is the router's
// session count, which the degree-dependent scheme keys on.
type Factory func(degree int) Policy

// Constant returns the fixed-MRAI policy used throughout the Internet
// today (default 30s; the paper sweeps 0.25–4s).
func Constant(d time.Duration) Factory {
	return func(int) Policy { return constantPolicy(d) }
}

type constantPolicy time.Duration

func (c constantPolicy) MRAI(Snapshot) time.Duration { return time.Duration(c) }

// DegreeDependent assigns low-degree routers one constant MRAI and
// high-degree routers another (Section 4.2: "low 0.5, high 2.25").
// Routers with degree >= threshold count as high degree.
func DegreeDependent(threshold int, low, high time.Duration) Factory {
	return func(degree int) Policy {
		if degree >= threshold {
			return constantPolicy(high)
		}
		return constantPolicy(low)
	}
}

// Ladder is the paper's dynamic MRAI scheme: a small set of increasing
// MRAI levels plus two thresholds on an overload signal. When the signal
// exceeds UpTh the router climbs one level; below DownTh it descends one.
type Ladder struct {
	// Levels are the selectable MRAI values in increasing order
	// (paper: 0.5s, 1.25s, 2.25s for 120-node 70-30 networks).
	Levels []time.Duration
	// UpTh and DownTh are the overload/underload thresholds
	// (paper defaults: 0.65s and 0.05s of unfinished work).
	UpTh, DownTh time.Duration
	// Signal selects which Snapshot field drives the ladder.
	Signal Signal
	// UpUtil/DownUtil and UpRate/DownRate are the thresholds for the
	// utilization and message-rate signals respectively.
	UpUtil, DownUtil float64
	UpRate, DownRate float64
}

// Signal selects the overload indicator for a Ladder.
type Signal int

// Overload signals (Section 4.3). SignalWork is the paper's main scheme;
// the other two are the alternates it reports trying.
const (
	SignalWork Signal = iota + 1
	SignalUtilization
	SignalMsgRate
)

// String returns the signal name.
func (s Signal) String() string {
	switch s {
	case SignalWork:
		return "work"
	case SignalUtilization:
		return "utilization"
	case SignalMsgRate:
		return "msgrate"
	default:
		return fmt.Sprintf("signal(%d)", int(s))
	}
}

// PaperLevels are the dynamic-MRAI levels the paper selects for 120-node
// 70-30 topologies.
var PaperLevels = []time.Duration{
	500 * time.Millisecond,
	1250 * time.Millisecond,
	2250 * time.Millisecond,
}

// PaperUpTh and PaperDownTh are the thresholds used for Fig 7.
const (
	PaperUpTh   = 650 * time.Millisecond
	PaperDownTh = 50 * time.Millisecond
)

// Dynamic returns the paper's unfinished-work ladder with the given
// levels and thresholds.
func Dynamic(levels []time.Duration, upTh, downTh time.Duration) Factory {
	l := Ladder{Levels: levels, UpTh: upTh, DownTh: downTh, Signal: SignalWork}
	return l.Factory()
}

// PaperDynamic returns the exact Fig 7 configuration.
func PaperDynamic() Factory {
	return Dynamic(PaperLevels, PaperUpTh, PaperDownTh)
}

// DynamicUtilization returns the CPU-utilization alternate: climb when
// utilization exceeds up, descend below down.
func DynamicUtilization(levels []time.Duration, up, down float64) Factory {
	l := Ladder{Levels: levels, Signal: SignalUtilization, UpUtil: up, DownUtil: down}
	return l.Factory()
}

// DynamicMsgRate returns the message-count alternate: climb when the
// arrival rate exceeds up msgs/s, descend below down.
func DynamicMsgRate(levels []time.Duration, up, down float64) Factory {
	l := Ladder{Levels: levels, Signal: SignalMsgRate, UpRate: up, DownRate: down}
	return l.Factory()
}

// Factory validates the ladder and returns a per-router factory.
// It panics on an invalid ladder; configurations are program constants.
func (l Ladder) Factory() Factory {
	if err := l.validate(); err != nil {
		panic(err)
	}
	return func(int) Policy {
		cfg := l
		cfg.Levels = append([]time.Duration(nil), l.Levels...)
		return &ladderPolicy{cfg: cfg}
	}
}

func (l Ladder) validate() error {
	if len(l.Levels) == 0 {
		return fmt.Errorf("mrai: ladder needs at least one level")
	}
	for i := 1; i < len(l.Levels); i++ {
		if l.Levels[i] <= l.Levels[i-1] {
			return fmt.Errorf("mrai: ladder levels must increase: %v", l.Levels)
		}
	}
	switch l.Signal {
	case SignalWork:
		if l.DownTh > l.UpTh {
			return fmt.Errorf("mrai: downTh %v > upTh %v", l.DownTh, l.UpTh)
		}
	case SignalUtilization:
		if l.DownUtil > l.UpUtil {
			return fmt.Errorf("mrai: downUtil %v > upUtil %v", l.DownUtil, l.UpUtil)
		}
	case SignalMsgRate:
		if l.DownRate > l.UpRate {
			return fmt.Errorf("mrai: downRate %v > upRate %v", l.DownRate, l.UpRate)
		}
	default:
		return fmt.Errorf("mrai: unknown signal %v", l.Signal)
	}
	return nil
}

// ladderPolicy carries the per-router level state.
type ladderPolicy struct {
	cfg   Ladder
	level int
}

var _ Policy = (*ladderPolicy)(nil)

// MRAI adjusts the level by at most one step and returns the new MRAI.
func (p *ladderPolicy) MRAI(s Snapshot) time.Duration {
	up, down := false, false
	switch p.cfg.Signal {
	case SignalUtilization:
		up = s.Utilization > p.cfg.UpUtil
		down = s.Utilization < p.cfg.DownUtil
	case SignalMsgRate:
		up = s.MsgRate > p.cfg.UpRate
		down = s.MsgRate < p.cfg.DownRate
	default: // SignalWork
		up = s.UnfinishedWork > p.cfg.UpTh
		down = s.UnfinishedWork < p.cfg.DownTh
	}
	switch {
	case up && p.level < len(p.cfg.Levels)-1:
		p.level++
	case down && p.level > 0:
		p.level--
	}
	return p.cfg.Levels[p.level]
}

// Level exposes the current ladder position for tests and metrics.
func (p *ladderPolicy) Level() int { return p.level }

// Leveler is implemented by policies with an observable discrete level.
type Leveler interface {
	Level() int
}
