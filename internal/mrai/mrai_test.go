package mrai

import (
	"testing"
	"testing/quick"
	"time"
)

func TestConstantAlwaysReturnsValue(t *testing.T) {
	p := Constant(30 * time.Second)(5)
	for i := 0; i < 10; i++ {
		s := Snapshot{QueueLen: i * 100, UnfinishedWork: time.Duration(i) * time.Second}
		if got := p.MRAI(s); got != 30*time.Second {
			t.Fatalf("MRAI = %v, want 30s regardless of load", got)
		}
	}
}

func TestDegreeDependentSplitsAtThreshold(t *testing.T) {
	f := DegreeDependent(8, 500*time.Millisecond, 2250*time.Millisecond)
	if got := f(3).MRAI(Snapshot{}); got != 500*time.Millisecond {
		t.Errorf("low-degree MRAI = %v", got)
	}
	if got := f(8).MRAI(Snapshot{}); got != 2250*time.Millisecond {
		t.Errorf("threshold-degree MRAI = %v", got)
	}
	if got := f(14).MRAI(Snapshot{}); got != 2250*time.Millisecond {
		t.Errorf("high-degree MRAI = %v", got)
	}
}

func TestDynamicClimbsOnOverload(t *testing.T) {
	p := PaperDynamic()(8)
	// Start at level 0.
	if got := p.MRAI(Snapshot{UnfinishedWork: 100 * time.Millisecond}); got != PaperLevels[0] {
		t.Fatalf("initial MRAI = %v, want %v", got, PaperLevels[0])
	}
	// Overloaded: climb one level per restart.
	if got := p.MRAI(Snapshot{UnfinishedWork: time.Second}); got != PaperLevels[1] {
		t.Fatalf("after 1 overload MRAI = %v, want %v", got, PaperLevels[1])
	}
	if got := p.MRAI(Snapshot{UnfinishedWork: time.Second}); got != PaperLevels[2] {
		t.Fatalf("after 2 overloads MRAI = %v, want %v", got, PaperLevels[2])
	}
	// Saturates at the top.
	if got := p.MRAI(Snapshot{UnfinishedWork: 10 * time.Second}); got != PaperLevels[2] {
		t.Fatalf("saturated MRAI = %v, want %v", got, PaperLevels[2])
	}
}

func TestDynamicDescendsWhenIdle(t *testing.T) {
	p := PaperDynamic()(8)
	p.MRAI(Snapshot{UnfinishedWork: time.Second})
	p.MRAI(Snapshot{UnfinishedWork: time.Second}) // now at top
	if got := p.MRAI(Snapshot{UnfinishedWork: 0}); got != PaperLevels[1] {
		t.Fatalf("after idle MRAI = %v, want %v", got, PaperLevels[1])
	}
	if got := p.MRAI(Snapshot{UnfinishedWork: 0}); got != PaperLevels[0] {
		t.Fatalf("after 2 idles MRAI = %v, want %v", got, PaperLevels[0])
	}
	// Saturates at the bottom.
	if got := p.MRAI(Snapshot{UnfinishedWork: 0}); got != PaperLevels[0] {
		t.Fatalf("bottom MRAI = %v", got)
	}
}

func TestDynamicHoldsBetweenThresholds(t *testing.T) {
	p := PaperDynamic()(8)
	p.MRAI(Snapshot{UnfinishedWork: time.Second}) // level 1
	mid := Snapshot{UnfinishedWork: 300 * time.Millisecond}
	for i := 0; i < 5; i++ {
		if got := p.MRAI(mid); got != PaperLevels[1] {
			t.Fatalf("mid-band MRAI = %v, want hold at %v", got, PaperLevels[1])
		}
	}
}

func TestLadderLevelObservable(t *testing.T) {
	p := PaperDynamic()(8)
	lv, ok := p.(Leveler)
	if !ok {
		t.Fatal("ladder policy does not expose Level()")
	}
	if lv.Level() != 0 {
		t.Fatalf("initial level = %d", lv.Level())
	}
	p.MRAI(Snapshot{UnfinishedWork: time.Second})
	if lv.Level() != 1 {
		t.Fatalf("level = %d after overload", lv.Level())
	}
}

func TestPerRouterStateIsIndependent(t *testing.T) {
	f := PaperDynamic()
	a, b := f(8), f(8)
	a.MRAI(Snapshot{UnfinishedWork: time.Second})
	if got := b.MRAI(Snapshot{UnfinishedWork: 100 * time.Millisecond}); got != PaperLevels[0] {
		t.Fatalf("router b MRAI = %v; a's state leaked", got)
	}
}

func TestUtilizationSignal(t *testing.T) {
	p := DynamicUtilization(PaperLevels, 0.9, 0.2)(8)
	if got := p.MRAI(Snapshot{Utilization: 0.95}); got != PaperLevels[1] {
		t.Fatalf("MRAI = %v after high utilization", got)
	}
	if got := p.MRAI(Snapshot{Utilization: 0.1}); got != PaperLevels[0] {
		t.Fatalf("MRAI = %v after low utilization", got)
	}
	// Work signal must be ignored by the utilization ladder.
	if got := p.MRAI(Snapshot{UnfinishedWork: time.Hour, Utilization: 0.5}); got != PaperLevels[0] {
		t.Fatalf("MRAI = %v; work signal leaked into utilization ladder", got)
	}
}

func TestMsgRateSignal(t *testing.T) {
	p := DynamicMsgRate(PaperLevels, 100, 10)(8)
	if got := p.MRAI(Snapshot{MsgRate: 500}); got != PaperLevels[1] {
		t.Fatalf("MRAI = %v after high rate", got)
	}
	if got := p.MRAI(Snapshot{MsgRate: 5}); got != PaperLevels[0] {
		t.Fatalf("MRAI = %v after low rate", got)
	}
}

func TestLadderValidation(t *testing.T) {
	cases := []Ladder{
		{Levels: nil, Signal: SignalWork},
		{Levels: []time.Duration{2, 1}, Signal: SignalWork},
		{Levels: []time.Duration{1, 1}, Signal: SignalWork},
		{Levels: PaperLevels, Signal: SignalWork, UpTh: 1, DownTh: 2},
		{Levels: PaperLevels, Signal: SignalUtilization, UpUtil: 0.1, DownUtil: 0.5},
		{Levels: PaperLevels, Signal: SignalMsgRate, UpRate: 1, DownRate: 5},
		{Levels: PaperLevels, Signal: Signal(99)},
	}
	for i, l := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid ladder accepted", i)
				}
			}()
			l.Factory()
		}()
	}
}

func TestSignalString(t *testing.T) {
	if SignalWork.String() != "work" || SignalUtilization.String() != "utilization" ||
		SignalMsgRate.String() != "msgrate" {
		t.Error("signal names wrong")
	}
	if Signal(42).String() == "" {
		t.Error("unknown signal has empty name")
	}
}

// Property: the ladder always returns one of its configured levels and
// moves at most one step per call.
func TestPropertyLadderStepBound(t *testing.T) {
	f := func(works []int64) bool {
		p := PaperDynamic()(8).(*ladderPolicy)
		prev := p.Level()
		for _, w := range works {
			if w < 0 {
				w = -w
			}
			d := p.MRAI(Snapshot{UnfinishedWork: time.Duration(w % int64(5*time.Second))})
			found := false
			for _, l := range PaperLevels {
				if d == l {
					found = true
				}
			}
			if !found {
				return false
			}
			if diff := p.Level() - prev; diff > 1 || diff < -1 {
				return false
			}
			prev = p.Level()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
