package mrai

import (
	"testing"
	"time"
)

func TestOraclePolicyUsesInitialThenSetValue(t *testing.T) {
	p := Oracle(500 * time.Millisecond)(8)
	if got := p.MRAI(Snapshot{UnfinishedWork: time.Hour}); got != 500*time.Millisecond {
		t.Errorf("initial MRAI = %v (load must be ignored)", got)
	}
	s, ok := p.(Settable)
	if !ok {
		t.Fatal("oracle policy not Settable")
	}
	s.Set(2250 * time.Millisecond)
	if got := p.MRAI(Snapshot{}); got != 2250*time.Millisecond {
		t.Errorf("MRAI after Set = %v", got)
	}
}

func TestOracleInstancesIndependent(t *testing.T) {
	f := Oracle(time.Second)
	a, b := f(3), f(8)
	a.(Settable).Set(5 * time.Second)
	if got := b.MRAI(Snapshot{}); got != time.Second {
		t.Errorf("b's MRAI = %v; a's Set leaked", got)
	}
}

func TestStepTableLookup(t *testing.T) {
	table := StepTable([]Step{
		{Frac: 0.025, MRAI: 500 * time.Millisecond},
		{Frac: 0.075, MRAI: 1250 * time.Millisecond},
		{Frac: 1.0, MRAI: 2250 * time.Millisecond},
	})
	cases := []struct {
		frac float64
		want time.Duration
	}{
		{0.0, 500 * time.Millisecond},
		{0.025, 500 * time.Millisecond},
		{0.03, 1250 * time.Millisecond},
		{0.075, 1250 * time.Millisecond},
		{0.20, 2250 * time.Millisecond},
		{1.5, 2250 * time.Millisecond}, // beyond the table
	}
	for _, c := range cases {
		if got := table(c.frac); got != c.want {
			t.Errorf("table(%v) = %v, want %v", c.frac, got, c.want)
		}
	}
}

func TestStepTableValidation(t *testing.T) {
	for _, steps := range [][]Step{
		nil,
		{{Frac: 0.5, MRAI: time.Second}, {Frac: 0.1, MRAI: time.Second}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid table %v accepted", steps)
				}
			}()
			StepTable(steps)
		}()
	}
}

func TestPaperOracleTable(t *testing.T) {
	table := PaperOracleTable()
	if got := table(0.01); got != 500*time.Millisecond {
		t.Errorf("1%% -> %v", got)
	}
	if got := table(0.05); got != 1250*time.Millisecond {
		t.Errorf("5%% -> %v", got)
	}
	if got := table(0.20); got != 2250*time.Millisecond {
		t.Errorf("20%% -> %v", got)
	}
}
