package mrai

import (
	"fmt"
	"sort"
	"time"
)

// Settable is implemented by policies whose MRAI can be set externally.
// The simulator uses it for the oracle scheme: when a failure is
// injected, every surviving router's policy is switched to the value an
// omniscient operator would choose for that failure extent.
type Settable interface {
	Set(d time.Duration)
}

// Oracle returns a policy that uses initial until Set is called. It
// models the paper's future-work ideal — "a scheme that can accurately
// and quickly set the MRAI consistent with the extent of failure without
// significant overhead" — and serves as the upper bound the dynamic
// scheme is judged against.
func Oracle(initial time.Duration) Factory {
	return func(int) Policy { return &oraclePolicy{cur: initial} }
}

type oraclePolicy struct {
	cur time.Duration
}

var (
	_ Policy   = (*oraclePolicy)(nil)
	_ Settable = (*oraclePolicy)(nil)
)

// MRAI returns the externally chosen value; the snapshot is ignored.
func (p *oraclePolicy) MRAI(Snapshot) time.Duration { return p.cur }

// Set installs a new MRAI; it takes effect at the next timer restart,
// the same latency the paper's dynamic scheme has.
func (p *oraclePolicy) Set(d time.Duration) { p.cur = d }

// Step maps failure extents up to Frac (inclusive) to an MRAI.
type Step struct {
	Frac float64
	MRAI time.Duration
}

// StepTable builds a lookup from failure fraction to MRAI from steps
// sorted by Frac; fractions beyond the last step use the last MRAI.
// It panics on an empty or unsorted table (configuration error).
func StepTable(steps []Step) func(float64) time.Duration {
	if len(steps) == 0 {
		panic("mrai: empty oracle table")
	}
	if !sort.SliceIsSorted(steps, func(i, j int) bool { return steps[i].Frac < steps[j].Frac }) {
		panic(fmt.Sprintf("mrai: oracle table not sorted: %v", steps))
	}
	table := append([]Step(nil), steps...)
	return func(frac float64) time.Duration {
		for _, s := range table {
			if frac <= s.Frac {
				return s.MRAI
			}
		}
		return table[len(table)-1].MRAI
	}
}

// PaperOracleTable maps failure sizes to the optimal constant MRAIs the
// paper measured for 120-node 70-30 networks: 0.5s up to 2.5%, 1.25s up
// to 7.5%, 2.25s beyond.
func PaperOracleTable() func(float64) time.Duration {
	return StepTable([]Step{
		{Frac: 0.025, MRAI: 500 * time.Millisecond},
		{Frac: 0.075, MRAI: 1250 * time.Millisecond},
		{Frac: 1.0, MRAI: 2250 * time.Millisecond},
	})
}
