package experiment

import (
	"context"
	"fmt"
	"sync/atomic"
)

// This file is the cell-granularity face of the sweep machinery, the
// contract distributed execution (internal/dist) is built on: a sweep
// grid decomposes into (series, x) cells, each cell's scenario and seeds
// derive from grid indices alone (CellScenario), a cell's trials can be
// executed anywhere (CellRunner.RunCell), and the per-trial results
// merge back into a figure in fixed order (AssembleFigure). Sweep itself
// is the degenerate case: every cell runs in-process.

// CellScenario materializes the scenario of sweep cell (si, xi) exactly
// as Sweep does: the Cell callback builds the base scenario and the
// cell's seed is derived from the grid indices (see cellSeed). cfg must
// be normalized (NormalizeSweep) and the indices in range. Like Sweep,
// it invokes cfg.Cell on the calling goroutine only.
func CellScenario(cfg SweepConfig, si, xi int) Scenario {
	sc := cfg.Cell(si, cfg.Xs[xi])
	sc.Seed = cellSeed(sc.Seed, si, xi, cfg.SameWorldAcrossSeries)
	if cfg.Shards > 0 && sc.Shards == 0 {
		sc.Shards = cfg.Shards
		sc.ShardConcurrent = cfg.ShardConcurrent
	}
	if cfg.WarmStart {
		sc.WarmStart = true
	}
	return sc
}

// CellRunner executes single sweep cells, retaining a simulator pool
// across calls so trials that share a memoized topology (paired series,
// repeated jobs on one worker) skip simulator construction. The zero
// value is not usable; construct with NewCellRunner. Safe for concurrent
// use as long as each RunCell call's cfg.Cell tolerates the calling
// goroutine (Sweep's materialize-on-caller rule applies per call).
type CellRunner struct {
	pool *simPool
}

// NewCellRunner returns a runner with an empty simulator pool.
func NewCellRunner() *CellRunner {
	return &CellRunner{pool: newSimPool()}
}

// RunCell runs every trial of cell (si, xi) of the grid and returns the
// per-trial results in trial order — the unit of work a distributed
// worker executes. Trials fan out over workers goroutines (<= 0 selects
// GOMAXPROCS, 1 is serial); the results are identical for every worker
// count. The trial seeds, simulation code path, and result layout are
// shared with Sweep, so a cell computed here is byte-for-byte the cell a
// local sweep would have computed.
func (r *CellRunner) RunCell(ctx context.Context, cfg SweepConfig, si, xi, workers int) ([]Result, error) {
	cfg, err := NormalizeSweep(cfg)
	if err != nil {
		return nil, err
	}
	if si < 0 || si >= len(cfg.SeriesNames) || xi < 0 || xi >= len(cfg.Xs) {
		return nil, fmt.Errorf("experiment: cell (%d, %d) outside %dx%d grid", si, xi, len(cfg.SeriesNames), len(cfg.Xs))
	}
	sc := CellScenario(cfg, si, xi)
	results := make([]Result, cfg.Trials)
	errs := make([]error, cfg.Trials)
	var failed atomic.Bool
	runTrialsInto(ctx, sc, results, errs, normalizeWorkers(workers), &failed, r.pool)
	if i, err := firstTrialError(errs); err != nil {
		return nil, fmt.Errorf("series %q x=%v: trial %d: %w", cfg.SeriesNames[si], cfg.Xs[xi], i, err)
	}
	return results, nil
}

// RunTrial runs exactly one trial of cell (si, xi) — the unit of work a
// trial-granularity distributed lease covers. The trial's seed, scenario
// materialization, and simulation code path are shared with RunCell (and
// therefore with Sweep), so the result is byte-for-byte the trial-th
// entry of the slice RunCell would return.
func (r *CellRunner) RunTrial(ctx context.Context, cfg SweepConfig, si, xi, trial int) (Result, error) {
	cfg, err := NormalizeSweep(cfg)
	if err != nil {
		return Result{}, err
	}
	if si < 0 || si >= len(cfg.SeriesNames) || xi < 0 || xi >= len(cfg.Xs) {
		return Result{}, fmt.Errorf("experiment: cell (%d, %d) outside %dx%d grid", si, xi, len(cfg.SeriesNames), len(cfg.Xs))
	}
	if trial < 0 || trial >= cfg.Trials {
		return Result{}, fmt.Errorf("experiment: trial %d outside %d trials", trial, cfg.Trials)
	}
	sc := CellScenario(cfg, si, xi)
	sc.Seed = trialSeed(sc.Seed, trial)
	res, err := runScenario(ctx, sc, r.pool)
	if err != nil {
		return Result{}, fmt.Errorf("series %q x=%v: trial %d: %w", cfg.SeriesNames[si], cfg.Xs[xi], trial, err)
	}
	return res, nil
}

// AssembleFigure merges a completed grid's per-cell trial results into
// the figure, consuming them in (series, x, trial) order. perCell is
// indexed cell-major (si·len(Xs)+xi) and each entry must hold exactly
// Trials results in trial order. This is the same merge Sweep performs
// on its own results, so a distributed sweep that feeds verbatim trial
// results through here renders a byte-identical figure.
func AssembleFigure(cfg SweepConfig, perCell [][]Result) (Figure, error) {
	cfg, err := NormalizeSweep(cfg)
	if err != nil {
		return Figure{}, err
	}
	total := len(cfg.SeriesNames) * len(cfg.Xs)
	if len(perCell) != total {
		return Figure{}, fmt.Errorf("experiment: %d cell results for a %d-cell grid", len(perCell), total)
	}
	flat := make([]Result, 0, total*cfg.Trials)
	for c, cell := range perCell {
		if len(cell) != cfg.Trials {
			return Figure{}, fmt.Errorf("experiment: cell %d has %d trial results, want %d", c, len(cell), cfg.Trials)
		}
		flat = append(flat, cell...)
	}
	return assembleFigure(cfg, flat), nil
}
