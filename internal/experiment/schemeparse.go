package experiment

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"bgpsim/internal/mrai"
)

// ParseScheme translates the compact scheme syntax shared by the CLI
// (`bgpsim -scheme`) and the wire-encoded churn descriptors
// (internal/dist): a scheme named as a string is reconstructible on any
// worker, which is what lets a churn submission carry its scheme across
// the coordinator protocol without serializing closures.
//
// Syntax: mrai=<seconds> | degree=<low>,<high> | dynamic | batch[=<seconds>]
// | batch+dynamic.
func ParseScheme(s string) (Scheme, error) {
	switch {
	case s == "dynamic":
		return PaperDynamicMRAI(), nil
	case s == "batch+dynamic":
		return BatchingDynamic(mrai.PaperLevels, mrai.PaperUpTh, mrai.PaperDownTh), nil
	case s == "batch":
		return Batching(500 * time.Millisecond), nil
	case strings.HasPrefix(s, "batch="):
		d, err := parseSchemeSeconds(strings.TrimPrefix(s, "batch="))
		if err != nil {
			return Scheme{}, err
		}
		return Batching(d), nil
	case strings.HasPrefix(s, "mrai="):
		d, err := parseSchemeSeconds(strings.TrimPrefix(s, "mrai="))
		if err != nil {
			return Scheme{}, err
		}
		return ConstantMRAI(d), nil
	case strings.HasPrefix(s, "degree="):
		parts := strings.Split(strings.TrimPrefix(s, "degree="), ",")
		if len(parts) != 2 {
			return Scheme{}, fmt.Errorf("degree scheme needs low,high seconds: %q", s)
		}
		low, err := parseSchemeSeconds(parts[0])
		if err != nil {
			return Scheme{}, err
		}
		high, err := parseSchemeSeconds(parts[1])
		if err != nil {
			return Scheme{}, err
		}
		return DegreeMRAI(5, low, high), nil
	default:
		return Scheme{}, fmt.Errorf("unknown scheme %q", s)
	}
}

func parseSchemeSeconds(s string) (time.Duration, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad seconds value %q", s)
	}
	return time.Duration(v * float64(time.Second)), nil
}
