package experiment

import (
	"testing"
	"time"

	"bgpsim/internal/failure"
	"bgpsim/internal/topology"
)

// TestProbePaperScale is a diagnostic: it prints timing and metric values
// at the paper's 120-node scale so the figure defaults can be calibrated.
// Run with: go test ./internal/experiment -run Probe -v
func TestProbePaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("probe skipped in -short")
	}
	topo := topology.Spec{Kind: topology.KindSkewed7030, N: 120}
	for _, frac := range []float64{0.01, 0.05, 0.20} {
		for _, m := range []float64{0.5, 2.25} {
			start := time.Now()
			r, err := Run(Scenario{
				Topology: topo,
				Failure:  failure.Geographic(frac),
				Scheme:   ConstantMRAI(SecondsToDuration(m)),
				Seed:     42,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("frac=%.2f mrai=%.2fs: delay=%v msgs=%d failed=%d wall=%v",
				frac, m, r.Delay, r.Messages, r.FailedNodes, time.Since(start))
		}
	}
}
