package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// errSkipped marks trials that were never started because an earlier
// trial had already failed. It never escapes this package: callers see
// only the first real error, reported in index order.
var errSkipped = errors.New("experiment: trial skipped after earlier failure")

// normalizeWorkers resolves a worker-count knob: <= 0 selects GOMAXPROCS.
func normalizeWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// forEachIndex runs fn(i) for every i in [0, n) over a bounded pool of
// worker goroutines and returns when all calls have finished. Indices are
// dispatched in increasing order; with workers == 1 the calls run inline
// on the calling goroutine, fully serially. fn is responsible for
// synchronizing any shared state beyond its own index.
func forEachIndex(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// runTrialsInto executes the trials of sc (seeds trialSeed(Seed, 0..n-1))
// over a pool of workers goroutines, storing each trial's result and
// error at its index. It is the single implementation behind RunTrials,
// RunTrialsParallel, Sweep's per-cell execution, and CellRunner.RunCell,
// so the serial, parallel, and distributed paths cannot drift. Once a
// trial fails (or ctx is canceled), trials that have not yet started are
// skipped (marked errSkipped); in-flight ones finish or abort on the
// engine's cancellation probe. pool, when non-nil, recycles simulators
// across trials that share a memoized topology.
func runTrialsInto(ctx context.Context, sc Scenario, results []Result, errs []error, workers int, failed *atomic.Bool, pool *simPool) {
	forEachIndex(len(results), workers, func(i int) {
		if failed.Load() {
			errs[i] = errSkipped
			return
		}
		if err := ctx.Err(); err != nil {
			errs[i] = err
			failed.Store(true)
			return
		}
		trial := sc
		trial.Seed = trialSeed(sc.Seed, i)
		results[i], errs[i] = runScenario(ctx, trial, pool)
		if errs[i] != nil {
			failed.Store(true)
		}
	})
}

// firstTrialError returns the first real (non-skip) error in index order.
func firstTrialError(errs []error) (int, error) {
	for i, err := range errs {
		if err != nil && !errors.Is(err, errSkipped) {
			return i, err
		}
	}
	return -1, nil
}

// runTrials is the shared body of RunTrials and RunTrialsParallel.
func runTrials(ctx context.Context, sc Scenario, n, workers int) (Stats, error) {
	if n < 1 {
		return Stats{}, fmt.Errorf("experiment: trials=%d", n)
	}
	results := make([]Result, n)
	errs := make([]error, n)
	var failed atomic.Bool
	runTrialsInto(ctx, sc, results, errs, workers, &failed, newSimPool())
	if i, err := firstTrialError(errs); err != nil {
		return Stats{}, fmt.Errorf("trial %d: %w", i, err)
	}
	return aggregate(results), nil
}

// RunTrialsParallel is RunTrials with the independent trials fanned out
// over a bounded worker pool. Results are byte-identical to the serial
// version for every worker count (each trial is a self-contained
// simulation keyed by its own seed, and aggregation consumes them in
// index order); only wall-clock time changes. workers <= 0 selects
// GOMAXPROCS.
func RunTrialsParallel(sc Scenario, n, workers int) (Stats, error) {
	return runTrials(context.Background(), sc, n, normalizeWorkers(workers))
}

// RunTrialsContext is RunTrialsParallel with cancellation: when ctx is
// canceled, unstarted trials are skipped and in-flight simulations abort
// at the engine's next cancellation probe, and the context error is
// returned. Results of a run that completes are unaffected by ctx.
func RunTrialsContext(ctx context.Context, sc Scenario, n, workers int) (Stats, error) {
	return runTrials(ctx, sc, n, normalizeWorkers(workers))
}
