package experiment

import (
	"fmt"
	"runtime"
	"sync"
)

// RunTrialsParallel is RunTrials with the independent trials fanned out
// over a bounded worker pool. Results are identical to the serial
// version (each trial is a self-contained simulation keyed by its own
// seed, and aggregation consumes them in index order); only wall-clock
// time changes. workers <= 0 selects GOMAXPROCS.
func RunTrialsParallel(sc Scenario, n, workers int) (Stats, error) {
	if n < 1 {
		return Stats{}, fmt.Errorf("experiment: trials=%d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return RunTrials(sc, n)
	}

	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				trial := sc
				trial.Seed = sc.Seed + int64(i)
				results[i], errs[i] = Run(trial)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return Stats{}, fmt.Errorf("trial %d: %w", i, err)
		}
	}
	return aggregate(results), nil
}
