package experiment

import (
	"encoding/json"
	"sync"

	"bgpsim/internal/des"
	"bgpsim/internal/topology"
)

// Topology construction is deterministic: a (Spec, scenario seed) pair
// fully determines the built network, because the topology RNG stream is
// derived from the seed alone. Building the same network once and
// sharing the immutable *Network across trials removes the
// generator-dominated setup cost from paired sweeps (every series in a
// SameWorldAcrossSeries sweep replays the same per-x worlds) and from
// benchmarks that cycle a small set of seeds. The simulator never
// mutates the Network, so one instance may back many concurrent trials.

// topoKey identifies one deterministically built topology: the spec's
// canonical JSON plus the scenario seed that derives its RNG stream.
type topoKey struct {
	spec string
	seed int64
}

// topoCacheCap bounds the number of memoized networks. Once full, new
// keys build uncached — a throughput loss, never a correctness one.
const topoCacheCap = 256

// topoEntry is one memoized build. The once gate makes concurrent
// requests for the same key build exactly once; losers wait and share.
type topoEntry struct {
	once sync.Once
	net  *topology.Network
	err  error
}

// topoCache memoizes Spec.Build results by (spec, seed). Safe for
// concurrent use; insert-only up to topoCacheCap.
type topoCache struct {
	mu      sync.Mutex
	entries map[topoKey]*topoEntry
}

// sharedTopoCache is the process-wide topology memo. All scenario runs
// and BuildTopologyCached go through it.
var sharedTopoCache = &topoCache{entries: make(map[topoKey]*topoEntry)}

// build returns the network for (spec, seed), constructing it at most
// once per key. rng must be the topology stream derived from seed (the
// caller keeps the Split call so sibling streams are unaffected by cache
// hits); it is consumed only when this call performs the build.
//
// Failed builds do not stay cached: the error entry is evicted under the
// lock as soon as once.Do completes, so a failing spec neither poisons
// later requests for the same key (a transient failure may succeed on
// retry) nor permanently consumes one of the topoCacheCap slots. The cap
// check below does count in-flight entries — but with eviction those are
// only ever builds that will either succeed (a legitimate occupant) or
// fail and release the slot.
func (c *topoCache) build(spec topology.Spec, seed int64, rng *des.RNG) (*topology.Network, error) {
	js, err := json.Marshal(spec)
	if err != nil {
		// Unkeyable spec: fall back to an uncached build.
		return spec.Build(rng)
	}
	key := topoKey{spec: string(js), seed: seed}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		if len(c.entries) >= topoCacheCap {
			c.mu.Unlock()
			return spec.Build(rng)
		}
		e = &topoEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.net, e.err = spec.Build(rng)
	})
	if e.err != nil {
		c.mu.Lock()
		// Only evict our own entry: a concurrent evict-then-rebuild may
		// already have installed a fresh entry under the same key.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.net, e.err
}

// len reports the number of memoized entries (for tests and benchmarks).
func (c *topoCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// topoStream derives the topology RNG stream for a scenario seed,
// exactly as runScenario derives it off the root.
func topoStream(seed int64) *des.RNG {
	return des.NewRNG(seed).Split("topology")
}

// BuildTopologyCached returns the network a scenario with this topology
// spec and seed simulates on, memoized in the process-wide cache. The
// topology RNG stream is derived exactly as Run derives it, so runs and
// benchmarks share cache entries. The returned network is shared and
// must be treated as immutable; Clone it before mutating.
func BuildTopologyCached(spec topology.Spec, seed int64) (*topology.Network, error) {
	return sharedTopoCache.build(spec, seed, topoStream(seed))
}
