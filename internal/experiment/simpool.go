package experiment

import (
	"sync"

	"bgpsim/internal/bgp"
	"bgpsim/internal/topology"
)

// simPoolCap bounds the total simulators a pool retains across all
// networks. Once full, returned simulators are dropped for the GC — a
// throughput loss, never a correctness one.
const simPoolCap = 32

// simPool recycles Simulators between trials that share a topology.
// bgp.Simulator.Reset rewinds every piece of dense per-router state in
// place, so a pooled simulator produces byte-identical results to a
// freshly constructed one; reuse only skips the allocation. Simulators
// are keyed by the *Network they were built on (identity, not value):
// Reset cannot change a simulator's topology, so a pooled simulator may
// only serve trials on the exact network instance it was built for —
// which the topology cache makes common, since paired sweeps hand every
// series the same memoized *Network. Safe for concurrent use; a nil
// *simPool is valid and never pools.
type simPool struct {
	mu    sync.Mutex
	n     int
	byNet map[*topology.Network][]*bgp.Simulator
}

// newSimPool returns an empty pool.
func newSimPool() *simPool {
	return &simPool{byNet: make(map[*topology.Network][]*bgp.Simulator)}
}

// take pops a pooled simulator built on net, or nil when none is
// available. The caller must Reset it before use.
func (p *simPool) take(net *topology.Network) *bgp.Simulator {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	list := p.byNet[net]
	if len(list) == 0 {
		return nil
	}
	sim := list[len(list)-1]
	list[len(list)-1] = nil
	if len(list) == 1 {
		// Last pooled simulator for this network: drop the key too.
		// Leaving a zero-length slice behind would pin the *Network (and
		// its map entry) for the pool's lifetime — one entry per distinct
		// network ever pooled, which seed-cycling sweeps turn into an
		// unbounded leak.
		delete(p.byNet, net)
	} else {
		p.byNet[net] = list[:len(list)-1]
	}
	p.n--
	return sim
}

// SimPool is the exported face of the per-sweep simulator pool, for
// sibling subsystems (internal/churn) that run trials outside the sweep
// machinery but want the same construction-skipping reuse. Same
// contract as the internal pool: byte-identical results, Reset before
// use, keyed by *Network identity. The zero value is not usable;
// construct with NewSimPool.
type SimPool struct {
	p *simPool
}

// NewSimPool returns an empty exported pool.
func NewSimPool() *SimPool {
	return &SimPool{p: newSimPool()}
}

// Take pops a pooled simulator built on net, or nil when none is
// available. The caller must Reset it before use.
func (p *SimPool) Take(net *topology.Network) *bgp.Simulator {
	return p.p.take(net)
}

// Put offers sim (built on net) for reuse; it is dropped when full.
func (p *SimPool) Put(net *topology.Network, sim *bgp.Simulator) {
	p.p.put(net, sim)
}

// put offers sim (built on net) for reuse; it is dropped when the pool
// is full.
func (p *simPool) put(net *topology.Network, sim *bgp.Simulator) {
	if p == nil || sim == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.n >= simPoolCap {
		return
	}
	p.byNet[net] = append(p.byNet[net], sim)
	p.n++
}
