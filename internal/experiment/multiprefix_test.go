package experiment

import (
	"fmt"
	"testing"
	"time"

	"bgpsim/internal/bgp"
	"bgpsim/internal/failure"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
)

// multiPrefixScenario is the shared fixture: a small world with three
// prefixes per origin, large enough that the per-prefix reindexing and
// the pooled Reset path both carry real load.
func multiPrefixScenario() Scenario {
	return Scenario{
		Topology: topology.Spec{Kind: topology.KindSkewed7030, N: 30, PrefixesPerOrigin: 3},
		Failure:  failure.Geographic(0.10),
		Scheme:   ConstantMRAI(500 * time.Millisecond),
		Seed:     11,
	}
}

// digestStats renders every per-trial observable into one comparable
// string.
func digestStats(st Stats) string {
	s := fmt.Sprintf("n=%d mean=%v std=%v msgs=%.3f/%.3f disc=%.3f\n",
		st.N, st.MeanDelay, st.StdDelay, st.MeanMessages, st.StdMessages, st.MeanDiscard)
	for i, r := range st.Results {
		s += fmt.Sprintf("t%d: %+v\n", i, r)
	}
	return s
}

// TestMultiPrefixTrialsWorkerInvariant pins the multi-prefix digest
// across worker counts: the parallel trial fan-out must produce
// byte-identical statistics to the serial run.
func TestMultiPrefixTrialsWorkerInvariant(t *testing.T) {
	sc := multiPrefixScenario()
	serial, err := RunTrials(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := digestStats(serial)
	for _, workers := range []int{2, 4} {
		par, err := RunTrialsParallel(sc, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := digestStats(par); got != want {
			t.Errorf("workers=%d: multi-prefix trials diverged from serial\nserial:\n%s\nparallel:\n%s",
				workers, want, got)
		}
	}
}

// TestMultiPrefixTrialsFullScanInvariant pins the multi-prefix digest
// across decision modes: disabling the incremental fast path must not
// change any observable.
func TestMultiPrefixTrialsFullScanInvariant(t *testing.T) {
	run := func(fullScan bool) string {
		sc := multiPrefixScenario()
		base := bgp.DefaultParams()
		base.MRAI = mrai.Constant(500 * time.Millisecond)
		base.ForceFullScan = fullScan
		sc.Base = &base
		st, err := RunTrials(sc, 3)
		if err != nil {
			t.Fatal(err)
		}
		return digestStats(st)
	}
	if inc, full := run(false), run(true); inc != full {
		t.Errorf("multi-prefix trials diverged across decision modes\nfull:\n%s\nincremental:\n%s", full, inc)
	}
}

// TestMultiPrefixPooledMatchesFresh pins the multi-prefix digest across
// the pooled and fresh execution paths: Run builds a fresh simulator per
// call, RunTrials serves trials from the simulator pool; seed-aligned
// trials must agree exactly.
func TestMultiPrefixPooledMatchesFresh(t *testing.T) {
	sc := multiPrefixScenario()
	pooled, err := RunTrials(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pooled.Results {
		trial := sc
		trial.Seed = trialSeed(sc.Seed, i)
		fresh, err := Run(trial)
		if err != nil {
			t.Fatal(err)
		}
		if fresh != want {
			t.Errorf("trial %d: pooled result diverged from fresh\nfresh:  %+v\npooled: %+v", i, fresh, want)
		}
	}
}
