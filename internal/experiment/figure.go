package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is one labeled curve.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Figure is a reproduced paper figure: labeled series over a shared
// x-axis.
type Figure struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	XLabel string   `json:"xLabel"`
	YLabel string   `json:"yLabel"`
	Series []Series `json:"series"`
}

// Render formats the figure as an aligned text table, one row per x
// value and one column per series — the form the experiment CLI prints
// and EXPERIMENTS.md records.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "# x: %s, y: %s\n", f.XLabel, f.YLabel)
	if len(f.Series) == 0 {
		b.WriteString("(no series)\n")
		return b.String()
	}

	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}

	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, trimFloat(x))
		for _, s := range f.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// SeriesByName returns the named series and whether it exists.
func (f Figure) SeriesByName(name string) (Series, bool) {
	for _, s := range f.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// YAt returns the series' y value at x.
func (s Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// ArgminX returns the x whose y is smallest (the "optimal MRAI" the
// paper reads off the V-curves).
func (s Series) ArgminX() (float64, bool) {
	if len(s.Points) == 0 {
		return 0, false
	}
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.Y < best.Y {
			best = p
		}
	}
	return best.X, true
}

// WriteJSON serializes the figure for external plotting tools.
func (f Figure) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// ReadFigureJSON deserializes a figure written by WriteJSON.
func ReadFigureJSON(r io.Reader) (Figure, error) {
	var f Figure
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return Figure{}, fmt.Errorf("experiment: decode figure: %w", err)
	}
	return f, nil
}
