package experiment

import (
	"sync"
	"testing"
	"time"

	"bgpsim/internal/bgp"
	"bgpsim/internal/des"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
)

// These tests pin the two reuse-layer leak fixes: the simulator pool
// must not retain map entries (and through them whole topologies) for
// networks whose simulators have all been taken, and the topology memo
// must not let failed builds consume cap slots or poison their key.

func leakTestSim(t *testing.T, nw *topology.Network) *bgp.Simulator {
	t.Helper()
	p := bgp.DefaultParams()
	p.MRAI = mrai.Constant(500 * time.Millisecond)
	sim, err := bgp.New(nw, p)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestSimPoolTakeReleasesEmptyKeys pins that draining a network's pooled
// simulators removes its byNet entry: a pool cycled through many
// distinct networks (seed-cycling benches, cache-overflow sweeps) must
// return to zero retained keys, not pin every network it ever saw.
func TestSimPoolTakeReleasesEmptyKeys(t *testing.T) {
	pool := newSimPool()
	const worlds = 5
	nets := make([]*topology.Network, worlds)
	for i := range nets {
		nw, err := topology.SkewedNetwork(topology.Skewed7030(20), des.NewRNG(int64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		nets[i] = nw
		pool.put(nw, leakTestSim(t, nw))
		pool.put(nw, leakTestSim(t, nw))
	}
	if got := len(pool.byNet); got != worlds {
		t.Fatalf("byNet has %d keys after puts, want %d", got, worlds)
	}
	for _, nw := range nets {
		for pool.take(nw) != nil {
		}
	}
	if got := len(pool.byNet); got != 0 {
		t.Errorf("byNet retains %d keys after all simulators were taken, want 0", got)
	}
	if pool.n != 0 {
		t.Errorf("pool count %d after draining, want 0", pool.n)
	}
	// The drained pool must still work: put/take round-trips again.
	sim := leakTestSim(t, nets[0])
	pool.put(nets[0], sim)
	if got := pool.take(nets[0]); got != sim {
		t.Errorf("drained pool did not serve a re-pooled simulator")
	}
	if got := len(pool.byNet); got != 0 {
		t.Errorf("byNet retains %d keys after final take, want 0", got)
	}
}

// TestTopoCacheFailedBuildEvicted pins that a failing Spec.Build does
// not stay cached: the error entry is evicted, so the key can succeed
// later and the failure never consumes one of the topoCacheCap slots.
func TestTopoCacheFailedBuildEvicted(t *testing.T) {
	c := &topoCache{entries: make(map[topoKey]*topoEntry)}
	bad := topology.Spec{Kind: "no-such-family", N: 10}
	// Far more failing keys than the cap: if error entries counted, the
	// cache would be irreversibly full before the good build below.
	for seed := int64(0); seed < topoCacheCap+8; seed++ {
		if _, err := c.build(bad, seed, topoStream(seed)); err == nil {
			t.Fatal("bad spec built successfully")
		}
	}
	if got := c.len(); got != 0 {
		t.Fatalf("cache holds %d entries after failed builds, want 0", got)
	}
	good := topology.Spec{Kind: topology.KindSkewed7030, N: 20}
	nw, err := c.build(good, 1, topoStream(1))
	if err != nil {
		t.Fatal(err)
	}
	if nw == nil || c.len() != 1 {
		t.Fatalf("good build after failures: net=%v entries=%d, want cached", nw, c.len())
	}
	// The same failing key must be retryable (not poisoned by a cached
	// error) — with this spec it deterministically fails again, but each
	// attempt re-runs the build rather than replaying a stale error.
	if _, err := c.build(bad, 1, topoStream(1)); err == nil {
		t.Fatal("bad spec built successfully on retry")
	}
	if got := c.len(); got != 1 {
		t.Errorf("cache holds %d entries, want only the good build", got)
	}
}

// TestTopoCacheFailedBuildConcurrent hammers one failing key and one
// good key from many goroutines under -race: concurrent losers of the
// once gate share the error, eviction races stay correct, and the cap
// accounting ends with exactly the successful build cached.
func TestTopoCacheFailedBuildConcurrent(t *testing.T) {
	c := &topoCache{entries: make(map[topoKey]*topoEntry)}
	bad := topology.Spec{Kind: "no-such-family", N: 10}
	good := topology.Spec{Kind: topology.KindSkewed7030, N: 20}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := c.build(bad, 7, topoStream(7)); err == nil {
					t.Error("bad spec built successfully")
					return
				}
				if _, err := c.build(good, 7, topoStream(7)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.len(); got != 1 {
		t.Errorf("cache holds %d entries after concurrent churn, want 1 (the good build)", got)
	}
}
