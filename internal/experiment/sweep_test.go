package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"bgpsim/internal/failure"
	"bgpsim/internal/topology"
)

func sweepCell(si int, x float64) Scenario {
	mrais := []time.Duration{500 * time.Millisecond, 2250 * time.Millisecond}
	return Scenario{
		Topology: topology.Spec{Kind: topology.KindSkewed7030, N: 30},
		Failure:  failure.Geographic(x / 100),
		Scheme:   ConstantMRAI(mrais[si]),
		Seed:     100,
	}
}

func TestSweepProducesFigure(t *testing.T) {
	var calls int
	fig, err := Sweep(SweepConfig{
		SeriesNames:           []string{"MRAI=0.5s", "MRAI=2.25s"},
		Xs:                    []float64{5, 10},
		Cell:                  sweepCell,
		Trials:                2,
		Metric:                MetricDelay,
		SameWorldAcrossSeries: true,
		Progress:              func(done, total int) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %q has %d points", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("series %q x=%v: y=%v", s.Name, p.X, p.Y)
			}
		}
	}
	if calls != 4 {
		t.Errorf("progress called %d times, want 4", calls)
	}
	if fig.YLabel != MetricDelay.String() {
		t.Errorf("y label = %q", fig.YLabel)
	}
}

func TestSweepMessagesMetric(t *testing.T) {
	fig, err := Sweep(SweepConfig{
		SeriesNames:           []string{"a"},
		Xs:                    []float64{10},
		Cell:                  func(si int, x float64) Scenario { return sweepCell(0, x) },
		Trials:                1,
		Metric:                MetricMessages,
		SameWorldAcrossSeries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Series[0].Points[0].Y < 10 {
		t.Errorf("message count = %v, implausibly low", fig.Series[0].Points[0].Y)
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(SweepConfig{}); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := Sweep(SweepConfig{SeriesNames: []string{"a"}}); err == nil {
		t.Error("sweep without xs accepted")
	}
}

func TestSweepErrorsPropagate(t *testing.T) {
	_, err := Sweep(SweepConfig{
		SeriesNames: []string{"a"},
		Xs:          []float64{1},
		Cell: func(si int, x float64) Scenario {
			sc := sweepCell(0, x)
			sc.Topology.Kind = "bogus"
			return sc
		},
		Trials: 1,
	})
	if err == nil {
		t.Error("cell error swallowed")
	}
}

func TestSweepSameWorldPairsSeries(t *testing.T) {
	// With SameWorldAcrossSeries and identical schemes, both series must
	// produce identical numbers.
	fig, err := Sweep(SweepConfig{
		SeriesNames:           []string{"a", "b"},
		Xs:                    []float64{10},
		Cell:                  func(si int, x float64) Scenario { return sweepCell(0, x) },
		Trials:                1,
		SameWorldAcrossSeries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fig.Series[0].Points[0].Y != fig.Series[1].Points[0].Y {
		t.Error("same-world series diverged for identical schemes")
	}
	// Without pairing they should (almost surely) differ.
	fig2, err := Sweep(SweepConfig{
		SeriesNames: []string{"a", "b"},
		Xs:          []float64{10},
		Cell:        func(si int, x float64) Scenario { return sweepCell(0, x) },
		Trials:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fig2.Series[0].Points[0].Y == fig2.Series[1].Points[0].Y {
		t.Log("warning: unpaired series coincided (possible but unlikely)")
	}
}

func TestFigureRender(t *testing.T) {
	fig := Figure{
		ID:     "Fig X",
		Title:  "test",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "s1", Points: []Point{{X: 1, Y: 2.5}, {X: 2, Y: 3}}},
			{Name: "s2", Points: []Point{{X: 1, Y: 4}}},
		},
	}
	out := fig.Render()
	for _, want := range []string{"Fig X", "s1", "s2", "2.5", "4", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // 2 comments + header + 2 rows
		t.Errorf("render has %d lines:\n%s", len(lines), out)
	}
}

func TestFigureRenderEmpty(t *testing.T) {
	out := Figure{ID: "f", Title: "t"}.Render()
	if !strings.Contains(out, "no series") {
		t.Errorf("empty render = %q", out)
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Name: "v", Points: []Point{{X: 0.5, Y: 9}, {X: 1.25, Y: 3}, {X: 2.25, Y: 7}}}
	if x, ok := s.ArgminX(); !ok || x != 1.25 {
		t.Errorf("ArgminX = %v,%v", x, ok)
	}
	if y, ok := s.YAt(2.25); !ok || y != 7 {
		t.Errorf("YAt = %v,%v", y, ok)
	}
	if _, ok := s.YAt(99); ok {
		t.Error("YAt missing x returned ok")
	}
	if _, ok := (Series{}).ArgminX(); ok {
		t.Error("ArgminX on empty returned ok")
	}
	fig := Figure{Series: []Series{s}}
	if _, ok := fig.SeriesByName("v"); !ok {
		t.Error("SeriesByName miss")
	}
	if _, ok := fig.SeriesByName("w"); ok {
		t.Error("SeriesByName false hit")
	}
}

func TestTrimFloat(t *testing.T) {
	for _, c := range []struct {
		in   float64
		want string
	}{{1, "1"}, {2.5, "2.5"}, {0.125, "0.125"}, {10.10, "10.1"}} {
		if got := trimFloat(c.in); got != c.want {
			t.Errorf("trimFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMetricString(t *testing.T) {
	if MetricDelay.String() != "convergence delay (s)" {
		t.Error(MetricDelay.String())
	}
	if MetricMessages.String() != "update messages" {
		t.Error(MetricMessages.String())
	}
	if Metric(9).String() == "" {
		t.Error("unknown metric empty")
	}
}

func TestFigureJSONRoundTrip(t *testing.T) {
	fig := Figure{
		ID: "Fig 7", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s", Points: []Point{{X: 1, Y: 2}, {X: 3, Y: 4}}}},
	}
	var buf bytes.Buffer
	if err := fig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFigureJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != fig.ID || len(back.Series) != 1 || back.Series[0].Points[1] != fig.Series[0].Points[1] {
		t.Errorf("round trip changed figure: %+v", back)
	}
	if _, err := ReadFigureJSON(bytes.NewBufferString("{bad")); err == nil {
		t.Error("garbage accepted")
	}
}
