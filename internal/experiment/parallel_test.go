package experiment

import (
	"testing"
	"time"
)

func TestRunTrialsParallelMatchesSerial(t *testing.T) {
	sc := tinyScenario(31)
	serial, err := RunTrials(sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunTrialsParallel(sc, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.MeanDelay != parallel.MeanDelay || serial.MeanMessages != parallel.MeanMessages {
		t.Errorf("parallel diverged: serial (%v, %v) vs parallel (%v, %v)",
			serial.MeanDelay, serial.MeanMessages, parallel.MeanDelay, parallel.MeanMessages)
	}
	for i := range serial.Results {
		if serial.Results[i] != parallel.Results[i] {
			t.Errorf("trial %d differs: %+v vs %+v", i, serial.Results[i], parallel.Results[i])
		}
	}
}

func TestRunTrialsParallelDefaults(t *testing.T) {
	// workers <= 0 selects GOMAXPROCS; workers > n clamps; both must work.
	sc := tinyScenario(33)
	if _, err := RunTrialsParallel(sc, 2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := RunTrialsParallel(sc, 2, 99); err != nil {
		t.Fatal(err)
	}
	if _, err := RunTrialsParallel(sc, 0, 2); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestRunTrialsParallelPropagatesErrors(t *testing.T) {
	sc := tinyScenario(35)
	sc.Topology.Kind = "bogus"
	if _, err := RunTrialsParallel(sc, 3, 2); err == nil {
		t.Error("bad topology swallowed")
	}
}

func TestRunTrialsParallelSingleWorkerDelegates(t *testing.T) {
	sc := tinyScenario(37)
	st, err := RunTrialsParallel(sc, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 2 {
		t.Errorf("N = %d", st.N)
	}
}

func TestPolicyRatioScenario(t *testing.T) {
	sc := tinyScenario(39)
	sc.PolicyRatio = 1.5
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delay <= 0 {
		t.Error("policy scenario produced no delay")
	}
	sc.PolicyRatio = 0.5 // invalid ratio must surface
	if _, err := Run(sc); err == nil {
		t.Error("invalid policy ratio accepted")
	}
	_ = time.Second
}
