package experiment

import (
	"strings"
	"testing"
	"time"

	"bgpsim/internal/bgp"
	"bgpsim/internal/failure"
	"bgpsim/internal/topology"
)

func tinyScenario(seed int64) Scenario {
	return Scenario{
		Topology: topology.Spec{Kind: topology.KindSkewed7030, N: 30},
		Failure:  failure.Geographic(0.10),
		Scheme:   ConstantMRAI(500 * time.Millisecond),
		Seed:     seed,
	}
}

func TestRunProducesMeasurements(t *testing.T) {
	r, err := Run(tinyScenario(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Delay <= 0 {
		t.Error("zero convergence delay")
	}
	if r.Messages <= 0 || r.Messages != r.Announcements+r.Withdrawals {
		t.Errorf("message accounting wrong: %d != %d + %d", r.Messages, r.Announcements, r.Withdrawals)
	}
	if r.FailedNodes != 3 {
		t.Errorf("failed %d nodes, want 3 (10%% of 30)", r.FailedNodes)
	}
	if r.Nodes != 30 {
		t.Errorf("nodes = %d", r.Nodes)
	}
	if r.Processed <= 0 {
		t.Error("no processing recorded")
	}
}

func TestRunIsDeterministicPerSeed(t *testing.T) {
	a, err := Run(tinyScenario(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyScenario(7))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different results:\n%+v\n%+v", a, b)
	}
	c, err := Run(tinyScenario(8))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	sc := tinyScenario(1)
	sc.Topology = topology.Spec{Kind: "bogus", N: 10}
	if _, err := Run(sc); err == nil {
		t.Error("bad topology accepted")
	}
	sc = tinyScenario(1)
	sc.Failure = failure.Spec{Kind: "bogus", Count: 1}
	if _, err := Run(sc); err == nil {
		t.Error("bad failure accepted")
	}
	sc = tinyScenario(1)
	base := bgp.DefaultParams()
	base.ProcMin = -1
	sc.Base = &base
	if _, err := Run(sc); err == nil {
		t.Error("bad base params accepted")
	}
}

func TestBaseParamsRespected(t *testing.T) {
	sc := tinyScenario(3)
	base := bgp.DefaultParams()
	base.DetectDelay = 3 * time.Second
	sc.Base = &base
	r, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if r.Delay < 3*time.Second {
		t.Errorf("delay %v < detect delay; Base ignored", r.Delay)
	}
}

func TestRunTrialsAggregates(t *testing.T) {
	st, err := RunTrials(tinyScenario(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 3 || len(st.Results) != 3 {
		t.Fatalf("N = %d, results = %d", st.N, len(st.Results))
	}
	if st.MeanDelay <= 0 || st.MeanMessages <= 0 {
		t.Error("empty aggregates")
	}
	// Mean must lie within [min, max] of the trials.
	minD, maxD := st.Results[0].Delay, st.Results[0].Delay
	for _, r := range st.Results {
		if r.Delay < minD {
			minD = r.Delay
		}
		if r.Delay > maxD {
			maxD = r.Delay
		}
	}
	if st.MeanDelay < minD || st.MeanDelay > maxD {
		t.Errorf("mean %v outside [%v,%v]", st.MeanDelay, minD, maxD)
	}
	if _, err := RunTrials(tinyScenario(5), 0); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestTrialsUseDistinctSeeds(t *testing.T) {
	st, err := RunTrials(tinyScenario(9), 3)
	if err != nil {
		t.Fatal(err)
	}
	allSame := true
	for _, r := range st.Results[1:] {
		if r != st.Results[0] {
			allSame = false
		}
	}
	if allSame {
		t.Error("all trials identical; seeds not varied")
	}
}

func TestSchemeConstructors(t *testing.T) {
	cases := []struct {
		scheme Scheme
		check  func(p bgp.Params) bool
	}{
		{ConstantMRAI(time.Second), func(p bgp.Params) bool { return p.Queue == bgp.QueueFIFO }},
		{Batching(time.Second), func(p bgp.Params) bool { return p.Queue == bgp.QueueBatched }},
		{PaperDynamicMRAI(), func(p bgp.Params) bool { return p.Queue == bgp.QueueFIFO }},
		{BatchingDynamic(nil, 0, 0), nil}, // Apply panics on nil levels; construct only
		{DegreeMRAI(8, time.Second, 2*time.Second), func(p bgp.Params) bool { return p.MRAI != nil }},
		{Custom("x", func(p *bgp.Params) { p.FlapGate = 2 }), func(p bgp.Params) bool { return p.FlapGate == 2 }},
	}
	for _, c := range cases {
		if c.scheme.Name == "" {
			t.Error("scheme with empty name")
		}
		if c.check == nil {
			continue
		}
		p := bgp.DefaultParams()
		c.scheme.Apply(&p)
		if !c.check(p) {
			t.Errorf("scheme %q did not apply", c.scheme.Name)
		}
	}
}

func TestSchemeNamesAreReadable(t *testing.T) {
	if got := ConstantMRAI(500 * time.Millisecond).Name; got != "MRAI=0.5s" {
		t.Errorf("name = %q", got)
	}
	if got := Batching(2250 * time.Millisecond).Name; !strings.Contains(got, "2.25") {
		t.Errorf("name = %q", got)
	}
}
