package experiment

import (
	"fmt"
	"sync"

	"bgpsim/internal/topology"
)

// Relationship annotation is deterministic: for a given network, the
// hierarchical builder has no free parameters and the degree heuristic
// depends only on the ratio. Re-inferring per trial therefore produced
// equal-but-distinct Relationships values every run — wasted work, and
// (worse for the snapshot backend) unstable pointers: bgp's snapshot
// cache keys on the (network, policy) pointer pair, so warm-started
// policy sweeps would recompute the fixpoint every trial. This memo
// gives every (network, mode, ratio) triple one immutable Relationships
// value for the life of the network, the same sharing contract the
// topology cache provides.

// relKey identifies one deterministic annotation of a memoized network.
type relKey struct {
	net          *topology.Network
	hierarchical bool
	ratio        float64 // 0 under hierarchical
}

// relCacheCap bounds the memo; on overflow the map is dropped — a
// recompute costs milliseconds, unbounded growth costs memory (keys pin
// their networks).
const relCacheCap = 256

var relCache = struct {
	sync.Mutex
	m map[relKey]*topology.Relationships
}{m: make(map[relKey]*topology.Relationships)}

// relationshipsFor returns the scenario's policy annotation for net,
// memoized per (net, mode, ratio). The result is shared across trials
// and must be treated as immutable.
func relationshipsFor(net *topology.Network, hierarchical bool, ratio float64) (*topology.Relationships, error) {
	key := relKey{net: net, hierarchical: hierarchical, ratio: ratio}
	if hierarchical {
		key.ratio = 0
	}
	relCache.Lock()
	rs := relCache.m[key]
	relCache.Unlock()
	if rs != nil {
		return rs, nil
	}
	var err error
	if hierarchical {
		rs, err = topology.HierarchicalRelationships(net)
	} else {
		rs, err = topology.InferRelationships(net, ratio)
	}
	if err != nil {
		return nil, err
	}
	relCache.Lock()
	if len(relCache.m) >= relCacheCap {
		relCache.m = make(map[relKey]*topology.Relationships, relCacheCap)
	}
	relCache.m[key] = rs
	relCache.Unlock()
	return rs, nil
}

// relationshipsForSpec resolves a topology spec's relationship
// annotation (topology.Spec.Relationships) through the same memo, so a
// spec-annotated scenario and an explicitly-flagged one that name the
// same derivation share one Relationships value — and therefore one
// snapshot fixpoint. The mode-to-parameter mapping mirrors
// Spec.BuildRelationships exactly, defaults included.
func relationshipsForSpec(net *topology.Network, spec topology.Spec) (*topology.Relationships, error) {
	switch spec.Relationships {
	case topology.RelModeHierarchical:
		return relationshipsFor(net, true, 0)
	case topology.RelModeInfer:
		ratio := spec.RelationshipRatio
		if ratio == 0 {
			ratio = topology.DefaultRelationshipRatio
		}
		return relationshipsFor(net, false, ratio)
	default:
		return nil, fmt.Errorf("experiment: unknown relationship mode %q", spec.Relationships)
	}
}
