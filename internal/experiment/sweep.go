package experiment

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Metric selects the quantity a sweep plots.
type Metric int

// Sweep metrics.
const (
	// MetricDelay plots mean convergence delay in seconds.
	MetricDelay Metric = iota + 1
	// MetricMessages plots the mean number of generated update messages.
	MetricMessages
)

// String names the metric for axis labels.
func (m Metric) String() string {
	switch m {
	case MetricDelay:
		return "convergence delay (s)"
	case MetricMessages:
		return "update messages"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// value extracts the metric from aggregated stats.
func (m Metric) value(st Stats) float64 {
	switch m {
	case MetricMessages:
		return st.MeanMessages
	default:
		return st.MeanDelay.Seconds()
	}
}

// Cell produces the scenario for series index si at sweep coordinate x.
// Sweeps fix the seed per (si, x) cell deterministically; Cell
// implementations should leave Scenario.Seed as the base seed.
type Cell func(si int, x float64) Scenario

// SweepConfig controls a sweep run.
type SweepConfig struct {
	// SeriesNames label the curves, one per series index.
	SeriesNames []string
	// Xs are the sweep coordinates (shared by all series).
	Xs []float64
	// Cell builds each scenario.
	Cell Cell
	// Trials is the replication count per cell (>= 1).
	Trials int
	// Metric selects the y value.
	Metric Metric
	// SameWorldAcrossSeries gives every series the same per-x seed so
	// all schemes face identical topologies and failures (paired
	// comparison, lower variance — the paper's methodology). Default on
	// via Sweep().
	SameWorldAcrossSeries bool
	// Workers bounds the pool that executes the (series × x × trial)
	// grid: <= 0 selects GOMAXPROCS, 1 runs fully serially on the
	// calling goroutine. The figure is byte-identical for every worker
	// count — seeds are derived from grid indices alone and results are
	// aggregated in index order — so only wall-clock time changes.
	Workers int
	// Shards, when >= 2, runs every cell's simulation sharded across
	// that many event loops (see Scenario.Shards). Unlike Workers it is
	// part of the grid definition — it crosses the distributed-execution
	// wire — because ShardConcurrent changes the determinism class;
	// sequenced sharding (ShardConcurrent false) keeps the figure
	// byte-identical to an unsharded sweep.
	Shards          int
	ShardConcurrent bool
	// WarmStart runs every cell's trials from the snapshot backend's
	// converged fixpoint instead of simulating initial convergence (see
	// Scenario.WarmStart). Part of the grid definition (it crosses the
	// distributed-execution wire) though the figures it produces are
	// byte-identical to a cold sweep's — window normalization guarantees
	// it — so it is purely a wall-clock lever.
	WarmStart bool
	// Progress, when set, is called after each completed cell. Calls are
	// serialized (never concurrent) and done increases strictly
	// monotonically even when cells complete out of order under a
	// parallel sweep.
	Progress func(done, total int)
}

// Sweeper executes one sweep grid and returns the assembled figure. The
// local executor is Sweep (via SweepContext); internal/dist provides a
// coordinator-backed executor that farms the grid out to remote workers
// while producing byte-identical figures.
type Sweeper func(SweepConfig) (Figure, error)

// NormalizeSweep validates cfg and fills defaulted fields (Trials,
// Metric). It rejects empty grids and grids that would overlap RNG
// streams across cells: trial seeds step +1 inside a cell, so a cell may
// hold at most seedStrideX trials, and the x axis must fit inside the
// series stride. Sweep and every distributed executor share this exact
// validation, so a grid is legal locally iff it is legal remotely.
func NormalizeSweep(cfg SweepConfig) (SweepConfig, error) {
	if len(cfg.SeriesNames) == 0 || len(cfg.Xs) == 0 {
		return cfg, fmt.Errorf("experiment: empty sweep")
	}
	if cfg.Trials < 1 {
		cfg.Trials = 1
	}
	if cfg.Trials > seedStrideX {
		return cfg, fmt.Errorf("experiment: %d trials per cell exceeds the cell seed stride %d; RNG streams would overlap across cells", cfg.Trials, seedStrideX)
	}
	if max := seedStrideSeries / seedStrideX; len(cfg.Xs) > max {
		return cfg, fmt.Errorf("experiment: %d sweep points exceed the series seed stride (max %d); RNG streams would overlap across series", len(cfg.Xs), max)
	}
	if cfg.Metric == 0 {
		cfg.Metric = MetricDelay
	}
	return cfg, nil
}

// Sweep runs a grid of scenarios and assembles a Figure. Each cell is
// replicated Trials times; the per-cell seed is derived from the base
// scenario seed, the x index, and (unless SameWorldAcrossSeries) the
// series index — see cellSeed. The whole (series × x × trial) grid is
// fanned out over cfg.Workers goroutines at trial granularity, so one
// slow cell cannot serialize the pool; results are aggregated in index
// order, making the figure independent of worker count and completion
// order.
func Sweep(cfg SweepConfig) (Figure, error) {
	return SweepContext(context.Background(), cfg)
}

// SweepContext is Sweep with cancellation: when ctx is canceled,
// unstarted trials are skipped, in-flight simulations abort at the
// engine's next cancellation probe, and the context error is returned.
// Cancellation can never alter the figure of a sweep that completes.
func SweepContext(ctx context.Context, cfg SweepConfig) (Figure, error) {
	cfg, err := NormalizeSweep(cfg)
	if err != nil {
		return Figure{}, err
	}
	workers := normalizeWorkers(cfg.Workers)

	// Materialize every cell's scenario up front on this goroutine, so
	// the Cell callback never needs to be concurrency-safe.
	nx := len(cfg.Xs)
	total := len(cfg.SeriesNames) * nx
	cells := make([]Scenario, total)
	for si := range cfg.SeriesNames {
		for xi := range cfg.Xs {
			cells[si*nx+xi] = CellScenario(cfg, si, xi)
		}
	}

	// One job per trial; job j is trial j%Trials of cell j/Trials.
	results := make([]Result, total*cfg.Trials)
	errs := make([]error, total*cfg.Trials)
	var (
		failed    atomic.Bool
		mu        sync.Mutex // guards remaining, doneCells, Progress calls
		doneCells int
		remaining = make([]int, total)
	)
	for c := range remaining {
		remaining[c] = cfg.Trials
	}
	pool := newSimPool()
	forEachIndex(len(results), workers, func(j int) {
		c := j / cfg.Trials
		if failed.Load() {
			errs[j] = errSkipped
			return
		}
		trial := cells[c]
		trial.Seed = trialSeed(trial.Seed, j%cfg.Trials)
		results[j], errs[j] = runScenario(ctx, trial, pool)
		if errs[j] != nil {
			failed.Store(true)
			return
		}
		mu.Lock()
		remaining[c]--
		if remaining[c] == 0 {
			doneCells++
			if cfg.Progress != nil {
				cfg.Progress(doneCells, total)
			}
		}
		mu.Unlock()
	})

	if err := firstSweepError(cfg, errs); err != nil {
		return Figure{}, err
	}
	return assembleFigure(cfg, results), nil
}

// firstSweepError scans per-trial errors in (series, x, trial) order and
// returns the first real one annotated with its grid coordinates.
func firstSweepError(cfg SweepConfig, errs []error) error {
	nx := len(cfg.Xs)
	for si, name := range cfg.SeriesNames {
		for xi, x := range cfg.Xs {
			c := si*nx + xi
			cellErrs := errs[c*cfg.Trials : (c+1)*cfg.Trials]
			if i, err := firstTrialError(cellErrs); err != nil {
				return fmt.Errorf("series %q x=%v: trial %d: %w", name, x, i, err)
			}
		}
	}
	return nil
}

// assembleFigure aggregates a completed grid's per-trial results (flat,
// cell-major with trials innermost — index (si·len(Xs)+xi)·Trials+t)
// into the figure. It is the single merge implementation behind the
// local Sweep and the distributed coordinator, and it consumes results
// in fixed (series, x, trial) order, so a figure's bytes depend only on
// the trial results, never on where or in what order they were computed.
func assembleFigure(cfg SweepConfig, results []Result) Figure {
	nx := len(cfg.Xs)
	fig := Figure{YLabel: cfg.Metric.String()}
	for si, name := range cfg.SeriesNames {
		series := Series{Name: name}
		for xi, x := range cfg.Xs {
			c := si*nx + xi
			st := aggregate(results[c*cfg.Trials : (c+1)*cfg.Trials])
			series.Points = append(series.Points, Point{X: x, Y: cfg.Metric.value(st)})
		}
		fig.Series = append(fig.Series, series)
	}
	return fig
}

// FailureSizesPct is the failure-size axis the paper sweeps (percent of
// routers, 1–20%).
var FailureSizesPct = []float64{1, 2.5, 5, 10, 15, 20}

// MRAISweepSeconds is the MRAI axis used for the V-curve figures.
var MRAISweepSeconds = []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.25, 3.0, 4.0}

// SecondsToDuration converts a sweep coordinate in seconds.
func SecondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
