package experiment

import (
	"fmt"
	"time"
)

// Metric selects the quantity a sweep plots.
type Metric int

// Sweep metrics.
const (
	// MetricDelay plots mean convergence delay in seconds.
	MetricDelay Metric = iota + 1
	// MetricMessages plots the mean number of generated update messages.
	MetricMessages
)

// String names the metric for axis labels.
func (m Metric) String() string {
	switch m {
	case MetricDelay:
		return "convergence delay (s)"
	case MetricMessages:
		return "update messages"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// value extracts the metric from aggregated stats.
func (m Metric) value(st Stats) float64 {
	switch m {
	case MetricMessages:
		return st.MeanMessages
	default:
		return st.MeanDelay.Seconds()
	}
}

// Cell produces the scenario for series index si at sweep coordinate x.
// Sweeps fix the seed per (si, x) cell deterministically; Cell
// implementations should leave Scenario.Seed as the base seed.
type Cell func(si int, x float64) Scenario

// SweepConfig controls a sweep run.
type SweepConfig struct {
	// SeriesNames label the curves, one per series index.
	SeriesNames []string
	// Xs are the sweep coordinates (shared by all series).
	Xs []float64
	// Cell builds each scenario.
	Cell Cell
	// Trials is the replication count per cell (>= 1).
	Trials int
	// Metric selects the y value.
	Metric Metric
	// SameWorldAcrossSeries gives every series the same per-x seed so
	// all schemes face identical topologies and failures (paired
	// comparison, lower variance — the paper's methodology). Default on
	// via Sweep().
	SameWorldAcrossSeries bool
	// Progress, when set, is called after each completed cell.
	Progress func(done, total int)
}

// Sweep runs a grid of scenarios and assembles a Figure. Each cell is
// replicated Trials times; the per-cell seed is derived from the base
// scenario seed, the x index, and (unless SameWorldAcrossSeries) the
// series index.
func Sweep(cfg SweepConfig) (Figure, error) {
	if len(cfg.SeriesNames) == 0 || len(cfg.Xs) == 0 {
		return Figure{}, fmt.Errorf("experiment: empty sweep")
	}
	if cfg.Trials < 1 {
		cfg.Trials = 1
	}
	if cfg.Metric == 0 {
		cfg.Metric = MetricDelay
	}
	total := len(cfg.SeriesNames) * len(cfg.Xs)
	done := 0
	fig := Figure{YLabel: cfg.Metric.String()}
	for si, name := range cfg.SeriesNames {
		series := Series{Name: name}
		for xi, x := range cfg.Xs {
			sc := cfg.Cell(si, x)
			// Derive a distinct seed per cell. Trials then step by +1, so
			// cells are spaced far apart to avoid overlap.
			offset := int64(xi) * 1000
			if !cfg.SameWorldAcrossSeries {
				offset += int64(si) * 1_000_000
			}
			sc.Seed += offset
			st, err := RunTrials(sc, cfg.Trials)
			if err != nil {
				return Figure{}, fmt.Errorf("series %q x=%v: %w", name, x, err)
			}
			series.Points = append(series.Points, Point{X: x, Y: cfg.Metric.value(st)})
			done++
			if cfg.Progress != nil {
				cfg.Progress(done, total)
			}
		}
		fig.Series = append(fig.Series, series)
	}
	return fig, nil
}

// FailureSizesPct is the failure-size axis the paper sweeps (percent of
// routers, 1–20%).
var FailureSizesPct = []float64{1, 2.5, 5, 10, 15, 20}

// MRAISweepSeconds is the MRAI axis used for the V-curve figures.
var MRAISweepSeconds = []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.25, 3.0, 4.0}

// SecondsToDuration converts a sweep coordinate in seconds.
func SecondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
