// Package experiment turns the substrates (topology, bgp, failure) into
// repeatable experiments: a Scenario bundles one topology + failure +
// scheme, trials replicate it over independent seeds, and sweeps produce
// the figure series the paper reports.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"bgpsim/internal/bgp"
	"bgpsim/internal/des"
	"bgpsim/internal/failure"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
)

// Scheme is a named convergence-improvement scheme: a mutation of the
// base BGP parameters (MRAI policy, queue discipline, ablation flags).
type Scheme struct {
	Name  string
	Apply func(*bgp.Params)
}

// ConstantMRAI is plain BGP with a fixed per-peer MRAI.
func ConstantMRAI(d time.Duration) Scheme {
	return Scheme{
		Name:  fmt.Sprintf("MRAI=%s", formatSeconds(d)),
		Apply: func(p *bgp.Params) { p.MRAI = mrai.Constant(d) },
	}
}

// DegreeMRAI is the Section 4.2 scheme: low-degree routers use low,
// high-degree routers (degree >= threshold) use high.
func DegreeMRAI(threshold int, low, high time.Duration) Scheme {
	return Scheme{
		Name: fmt.Sprintf("deg<%d:%s,>=:%s", threshold, formatSeconds(low), formatSeconds(high)),
		Apply: func(p *bgp.Params) {
			p.MRAI = mrai.DegreeDependent(threshold, low, high)
		},
	}
}

// DynamicMRAI is the Section 4.3 unfinished-work ladder.
func DynamicMRAI(levels []time.Duration, upTh, downTh time.Duration) Scheme {
	return Scheme{
		Name:  "dynamic",
		Apply: func(p *bgp.Params) { p.MRAI = mrai.Dynamic(levels, upTh, downTh) },
	}
}

// PaperDynamicMRAI is the exact Fig 7 dynamic configuration.
func PaperDynamicMRAI() Scheme {
	s := DynamicMRAI(mrai.PaperLevels, mrai.PaperUpTh, mrai.PaperDownTh)
	return s
}

// Batching is the Section 4.4 destination-batched queue with a constant
// MRAI (the paper pairs it with 0.5 s).
func Batching(d time.Duration) Scheme {
	return Scheme{
		Name: fmt.Sprintf("batch,MRAI=%s", formatSeconds(d)),
		Apply: func(p *bgp.Params) {
			p.MRAI = mrai.Constant(d)
			p.Queue = bgp.QueueBatched
		},
	}
}

// BatchingDynamic combines batching with the dynamic MRAI ladder — the
// paper's best configuration.
func BatchingDynamic(levels []time.Duration, upTh, downTh time.Duration) Scheme {
	return Scheme{
		Name: "batch+dynamic",
		Apply: func(p *bgp.Params) {
			p.MRAI = mrai.Dynamic(levels, upTh, downTh)
			p.Queue = bgp.QueueBatched
		},
	}
}

// Custom wraps an arbitrary parameter mutation.
func Custom(name string, apply func(*bgp.Params)) Scheme {
	return Scheme{Name: name, Apply: apply}
}

func formatSeconds(d time.Duration) string {
	return fmt.Sprintf("%.4gs", d.Seconds())
}

// Scenario is one fully specified simulation: build the topology, run to
// initial convergence, inject the failure, and measure re-convergence.
type Scenario struct {
	Topology topology.Spec
	Failure  failure.Spec
	Scheme   Scheme
	// Base supplies the non-scheme simulation parameters; zero value
	// means bgp.DefaultParams().
	Base *bgp.Params
	// PolicyRatio, when positive, enables Gao–Rexford routing policies
	// with relationships inferred from node degrees at this ratio
	// (typical: 1.5). Zero keeps the paper's policy-free configuration.
	// Degree inference can leave node pairs without any valley-free path.
	PolicyRatio float64
	// PolicyHierarchical enables Gao–Rexford policies with BFS-hierarchy
	// relationships (full valley-free reachability guaranteed). Takes
	// precedence over PolicyRatio.
	PolicyHierarchical bool
	// Shards, when >= 2, runs the simulation sharded across that many
	// event loops (bgp.Params.Shards). Sequenced sharding — the default —
	// leaves every result byte-identical to the single-engine run, so
	// Shards <= 1 and Shards == 0 are the same scenario. ShardConcurrent
	// selects the concurrent mode, which is its own determinism class
	// (see bgp.Params.ShardConcurrent).
	Shards          int
	ShardConcurrent bool
	// WarmStart skips the event-driven initial-convergence phase: the
	// snapshot backend's fixpoint is installed as the converged state and
	// the trial proceeds straight to failure injection
	// (bgp.Params.WarmStart). Window normalization makes the post-failure
	// figures byte-identical to the cold-started trial.
	WarmStart bool
	Seed      int64
}

// Result captures one trial's measurements.
type Result struct {
	Delay time.Duration
	// WindowStart is the absolute simulated time of the failure, the
	// anchor for trace analysis.
	WindowStart   time.Duration
	Messages      int
	Announcements int
	Withdrawals   int
	Processed     int
	Discarded     int
	RouteChanges  int
	FailedNodes   int
	Nodes         int
}

// Run executes the scenario once. Seed controls every random choice, so
// identical scenarios produce identical results. The topology is served
// from the process-wide memo (see topocache.go); repeated runs of the
// same (spec, seed) share one immutable network.
func Run(sc Scenario) (Result, error) {
	return runScenario(context.Background(), sc, nil)
}

// runScenario is the single trial implementation behind Run, RunTrials,
// and Sweep. When pool is non-nil, a simulator previously built on the
// same memoized network is Reset and reused instead of constructing a
// fresh one; results are byte-identical either way. ctx cancellation
// aborts the simulation between events via the engine's probe; it can
// never alter the results of a run that completes. The RNG stream
// derivation (topology, failure, sim — in that order off the root) is
// load-bearing: each Split advances the root, so the splits must happen
// unconditionally even when the topology comes from the cache.
func runScenario(ctx context.Context, sc Scenario, pool *simPool) (Result, error) {
	root := des.NewRNG(sc.Seed)
	topoRNG := root.Split("topology")
	failRNG := root.Split("failure")

	net, err := sharedTopoCache.build(sc.Topology, sc.Seed, topoRNG)
	if err != nil {
		return Result{}, fmt.Errorf("build topology: %w", err)
	}
	params := bgp.DefaultParams()
	if sc.Base != nil {
		params = *sc.Base
	}
	params.Seed = root.Split("sim").Int63()
	// The topology spec's prefix dimension maps onto the simulator's
	// table-size knob before the scheme runs, so a scheme (or ablation)
	// can still override it deliberately.
	if sc.Topology.PrefixesPerOrigin > 0 {
		params.PrefixesPerAS = sc.Topology.PrefixesPerOrigin
	}
	if sc.Scheme.Apply != nil {
		sc.Scheme.Apply(&params)
	}
	if sc.Shards > 0 {
		params.Shards = sc.Shards
		params.ShardConcurrent = sc.ShardConcurrent
	}
	if sc.WarmStart {
		params.WarmStart = true
	}
	switch {
	case sc.PolicyHierarchical, sc.PolicyRatio > 0:
		// Annotations come from the process-wide memo so every trial on a
		// memoized network shares one Relationships value — which also
		// lets warm-started trials share one snapshot fixpoint (bgp's
		// snapshot cache keys on the pointer pair).
		rs, err := relationshipsFor(net, sc.PolicyHierarchical, sc.PolicyRatio)
		if err != nil {
			return Result{}, fmt.Errorf("annotate policy: %w", err)
		}
		params.Policy = rs
	case sc.Topology.Relationships != "":
		// The spec itself names the annotation (topogen's -rel modes): the
		// DES policy path and the snapshot backend consume the identical
		// derivation, with the explicit Policy* scenario fields taking
		// precedence above.
		rs, err := relationshipsForSpec(net, sc.Topology)
		if err != nil {
			return Result{}, fmt.Errorf("annotate policy: %w", err)
		}
		params.Policy = rs
	}
	sim := pool.take(net)
	if sim != nil {
		err = sim.Reset(params)
	} else {
		sim, err = bgp.New(net, params)
	}
	if err != nil {
		return Result{}, fmt.Errorf("build simulator: %w", err)
	}
	nodes, err := failure.Select(net, sc.Failure, failRNG)
	if err != nil {
		return Result{}, fmt.Errorf("select failure: %w", err)
	}
	if done := ctx.Done(); done != nil {
		sim.SetCancel(func() bool { return ctx.Err() != nil })
	}
	delay, err := sim.ConvergeAndFail(nodes)
	if err != nil {
		// Surface cancellation as the context's own error; the aborted
		// simulator is left unpooled (its state is mid-run).
		if errors.Is(err, des.ErrCanceled) && ctx.Err() != nil {
			return Result{}, ctx.Err()
		}
		return Result{}, err
	}
	sim.SetCancel(nil)
	col := sim.Collector()
	res := Result{
		Delay:         delay,
		WindowStart:   col.WindowStart(),
		Messages:      col.Messages(),
		Announcements: col.Announcements,
		Withdrawals:   col.Withdrawals,
		Processed:     col.Processed,
		Discarded:     col.Discarded,
		RouteChanges:  col.RouteChanges(),
		FailedNodes:   len(nodes),
		Nodes:         net.NumNodes(),
	}
	pool.put(net, sim)
	return res, nil
}

// Stats aggregates replicated trials.
type Stats struct {
	N            int
	MeanDelay    time.Duration
	StdDelay     time.Duration
	MeanMessages float64
	StdMessages  float64
	MeanDiscard  float64
	Results      []Result
}

// Seed-derivation policy. Trial seeds step +1 from the cell's base seed,
// sweep x cells are spaced seedStrideX apart, and series (when worlds are
// not shared) are spaced seedStrideSeries apart. Sweep validates that the
// grid fits inside these strides, so RNG streams can never silently
// overlap across cells. The derivation is pinned by TestSeedDerivationPinned:
// changing it changes every recorded figure in results/.
const (
	seedStrideX      = 1000
	seedStrideSeries = 1_000_000
)

// trialSeed derives the seed of trial i from a cell's base seed.
func trialSeed(base int64, i int) int64 { return base + int64(i) }

// cellSeed derives the base seed of sweep cell (si, xi). With sameWorld
// set, every series shares the per-x seed (paired comparison).
func cellSeed(base int64, si, xi int, sameWorld bool) int64 {
	off := int64(xi) * seedStrideX
	if !sameWorld {
		off += int64(si) * seedStrideSeries
	}
	return base + off
}

// RunTrials executes the scenario n times with seeds Seed, Seed+1, ...
// (fresh topology, failure draw, and simulation randomness per trial) and
// aggregates. It is the fully serial form of RunTrialsParallel; both
// share one implementation, so their results are identical by
// construction.
func RunTrials(sc Scenario, n int) (Stats, error) {
	return runTrials(context.Background(), sc, n, 1)
}

func aggregate(results []Result) Stats {
	n := float64(len(results))
	var sumD, sumM, sumDisc float64
	for _, r := range results {
		sumD += r.Delay.Seconds()
		sumM += float64(r.Messages)
		sumDisc += float64(r.Discarded)
	}
	meanD, meanM := sumD/n, sumM/n
	var varD, varM float64
	for _, r := range results {
		dd := r.Delay.Seconds() - meanD
		dm := float64(r.Messages) - meanM
		varD += dd * dd
		varM += dm * dm
	}
	varD /= n
	varM /= n
	return Stats{
		N:            len(results),
		MeanDelay:    time.Duration(meanD * float64(time.Second)),
		StdDelay:     time.Duration(math.Sqrt(varD) * float64(time.Second)),
		MeanMessages: meanM,
		StdMessages:  math.Sqrt(varM),
		MeanDiscard:  sumDisc / n,
		Results:      results,
	}
}
