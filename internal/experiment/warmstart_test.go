package experiment

import (
	"testing"
	"time"

	"bgpsim/internal/failure"
	"bgpsim/internal/topology"
)

// warmScenarios are the shapes the warm-start pin covers: the plain
// paper configuration, a policy world (where warm start must route the
// snapshot through the same relationship derivation), and a sharded run.
func warmScenarios() map[string]Scenario {
	base := Scenario{
		Topology: topology.Spec{Kind: topology.KindInternetLike, N: 50},
		Failure:  failure.Geographic(0.10),
		Scheme:   ConstantMRAI(500 * time.Millisecond),
		Seed:     3,
	}
	policy := base
	policy.PolicyHierarchical = true
	sharded := base
	sharded.Shards = 4
	specRel := base
	specRel.Topology.Relationships = topology.RelModeInfer
	return map[string]Scenario{
		"flat":     base,
		"policy":   policy,
		"sharded":  sharded,
		"spec-rel": specRel,
	}
}

// TestWarmStartResultPin: a warm-started trial must reproduce every
// Result field of the cold trial except WindowStart — the failure fires
// at a different absolute simulated time (no initial-convergence phase
// precedes it), but the measured post-failure window is byte-identical.
func TestWarmStartResultPin(t *testing.T) {
	for name, sc := range warmScenarios() {
		t.Run(name, func(t *testing.T) {
			cold, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			warm := sc
			warm.WarmStart = true
			got, err := Run(warm)
			if err != nil {
				t.Fatal(err)
			}
			if got.WindowStart == cold.WindowStart {
				t.Errorf("warm WindowStart %v equals cold %v; warm start did not skip the convergence phase",
					got.WindowStart, cold.WindowStart)
			}
			got.WindowStart = cold.WindowStart
			if got != cold {
				t.Errorf("warm result diverged from cold:\ncold %+v\nwarm %+v", cold, got)
			}
		})
	}
}

// TestSpecRelationshipsMatchExplicitPolicy: a scenario whose topology
// spec names the annotation (topogen's -rel modes) must measure exactly
// what the equivalent explicit Policy* scenario fields measure — the
// two spellings resolve to one derivation.
func TestSpecRelationshipsMatchExplicitPolicy(t *testing.T) {
	base := warmScenarios()["flat"]

	viaSpec := base
	viaSpec.Topology.Relationships = topology.RelModeHierarchical
	viaFlag := base
	viaFlag.PolicyHierarchical = true

	a, err := Run(viaSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(viaFlag)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("spec annotation and explicit flag disagree:\nspec %+v\nflag %+v", a, b)
	}

	viaSpec.Topology.Relationships = topology.RelModeInfer
	viaSpec.Topology.RelationshipRatio = 1.5
	viaFlag.PolicyHierarchical = false
	viaFlag.PolicyRatio = 1.5
	a, err = Run(viaSpec)
	if err != nil {
		t.Fatal(err)
	}
	b, err = Run(viaFlag)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("inferred spec annotation and explicit ratio disagree:\nspec %+v\nflag %+v", a, b)
	}

	bad := base
	bad.Topology.Relationships = "friend"
	if _, err := Run(bad); err == nil {
		t.Error("unknown spec relationship mode accepted")
	}
}

// TestSweepWarmStartByteIdentical pins the tentpole claim at the sweep
// layer: an entire warm-started figure must render byte-identically to
// the cold figure.
func TestSweepWarmStartByteIdentical(t *testing.T) {
	cfg := SweepConfig{
		SeriesNames: []string{"MRAI=0.5", "batch"},
		Xs:          []float64{2.5, 10},
		Trials:      2,
		Cell: func(si int, x float64) Scenario {
			sc := Scenario{
				Topology: topology.Spec{Kind: topology.KindInternetLike, N: 40},
				Failure:  failure.Geographic(x / 100),
				Scheme:   ConstantMRAI(500 * time.Millisecond),
				Seed:     1,
			}
			if si == 1 {
				sc.Scheme = Batching(500 * time.Millisecond)
			}
			return sc
		},
		SameWorldAcrossSeries: true,
	}
	cold, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WarmStart = true
	warm, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Render() != warm.Render() {
		t.Errorf("warm sweep figure diverged:\ncold:\n%s\nwarm:\n%s", cold.Render(), warm.Render())
	}
}
