package experiment

import (
	"strings"
	"sync"
	"testing"
	"time"

	"bgpsim/internal/failure"
	"bgpsim/internal/topology"
)

// smallSweepConfig is a real (if tiny) sweep grid: 2 series × 2 x × 2
// trials of 30-node simulations, enough for worker pools to interleave.
func smallSweepConfig(workers int) SweepConfig {
	mrais := []time.Duration{500 * time.Millisecond, 2250 * time.Millisecond}
	return SweepConfig{
		SeriesNames:           []string{"MRAI=0.5s", "MRAI=2.25s"},
		Xs:                    []float64{5, 10},
		Trials:                2,
		Metric:                MetricDelay,
		SameWorldAcrossSeries: true,
		Workers:               workers,
		Cell: func(si int, x float64) Scenario {
			return Scenario{
				Topology: topology.Spec{Kind: topology.KindSkewed7030, N: 30},
				Failure:  failure.Geographic(x / 100),
				Scheme:   ConstantMRAI(mrais[si]),
				Seed:     100,
			}
		},
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the golden guarantee: the
// rendered figure must be byte-identical whatever the worker count, so a
// serial run and a 16-worker run produce the same results/ files.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, err := Sweep(smallSweepConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	golden := serial.Render()
	if !strings.Contains(golden, "MRAI=0.5s") {
		t.Fatalf("implausible render:\n%s", golden)
	}
	for _, workers := range []int{2, 16} {
		fig, err := Sweep(smallSweepConfig(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := fig.Render(); got != golden {
			t.Errorf("workers=%d render diverged from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
				workers, golden, workers, got)
		}
	}
}

// TestSweepProgressSerializedMonotonic checks the Progress contract under
// a parallel sweep: calls are serialized (the unguarded counter below is
// a -race tripwire) and done counts increase strictly by one.
func TestSweepProgressSerializedMonotonic(t *testing.T) {
	cfg := smallSweepConfig(8)
	last := 0 // written from Progress with no locking: races fail -race
	wantTotal := len(cfg.SeriesNames) * len(cfg.Xs)
	cfg.Progress = func(done, total int) {
		if total != wantTotal {
			t.Errorf("total = %d, want %d", total, wantTotal)
		}
		if done != last+1 {
			t.Errorf("done jumped %d -> %d; want strictly +1", last, done)
		}
		last = done
	}
	if _, err := Sweep(cfg); err != nil {
		t.Fatal(err)
	}
	if last != wantTotal {
		t.Errorf("final done = %d, want %d", last, wantTotal)
	}
}

// TestRunTrialsParallelConcurrentSweeps exercises independent parallel
// sweeps racing each other (the bgpfig -fig all case) under -race.
func TestRunTrialsParallelConcurrentSweeps(t *testing.T) {
	var wg sync.WaitGroup
	out := make([]string, 3)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fig, err := Sweep(smallSweepConfig(4))
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = fig.Render()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(out); i++ {
		if out[i] != out[0] {
			t.Errorf("concurrent sweep %d diverged", i)
		}
	}
}

// TestSeedDerivationPinned pins the seed derivation with golden values.
// These constants must never change: every recorded figure in results/
// (and EXPERIMENTS.md's tables) was produced by exactly this mapping.
func TestSeedDerivationPinned(t *testing.T) {
	cases := []struct {
		base      int64
		si, xi    int
		sameWorld bool
		want      int64
	}{
		{base: 1, si: 0, xi: 0, sameWorld: true, want: 1},
		{base: 1, si: 3, xi: 0, sameWorld: true, want: 1},          // same world: series ignored
		{base: 1, si: 0, xi: 4, sameWorld: true, want: 4001},       // x stride 1000
		{base: 1, si: 2, xi: 4, sameWorld: false, want: 2_004_001}, // series stride 1e6
		{base: 100, si: 1, xi: 1, sameWorld: false, want: 1_001_100},
	}
	for _, c := range cases {
		if got := cellSeed(c.base, c.si, c.xi, c.sameWorld); got != c.want {
			t.Errorf("cellSeed(%d, %d, %d, %v) = %d, want %d",
				c.base, c.si, c.xi, c.sameWorld, got, c.want)
		}
	}
	if got := trialSeed(4001, 7); got != 4008 {
		t.Errorf("trialSeed(4001, 7) = %d, want 4008 (trials step +1)", got)
	}
}

// TestSweepRejectsOverlappingSeedGrids: grids too large for the seed
// strides must be rejected instead of silently correlating trials across
// cells (the pre-fix behavior with Trials >= 1000).
func TestSweepRejectsOverlappingSeedGrids(t *testing.T) {
	cfg := smallSweepConfig(1)
	cfg.Trials = seedStrideX + 1
	if _, err := Sweep(cfg); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("Trials=%d accepted (err=%v); RNG streams would overlap", cfg.Trials, err)
	}

	cfg = smallSweepConfig(1)
	cfg.Xs = make([]float64, seedStrideSeries/seedStrideX+1)
	for i := range cfg.Xs {
		cfg.Xs[i] = float64(i)
	}
	if _, err := Sweep(cfg); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("%d sweep points accepted (err=%v); RNG streams would overlap", len(cfg.Xs), err)
	}

	// The boundary itself is legal: Trials == seedStrideX exactly fills
	// a cell's seed range. A fail-fast bogus topology keeps the test from
	// actually running 1000 trials; the error must not be the overlap one.
	cfg = smallSweepConfig(1)
	cfg.Trials = seedStrideX
	cfg.Xs = []float64{5}
	cfg.Cell = func(si int, x float64) Scenario {
		return Scenario{Topology: topology.Spec{Kind: "bogus", N: 10}}
	}
	if _, err := Sweep(cfg); err == nil || strings.Contains(err.Error(), "overlap") {
		t.Errorf("boundary Trials=%d rejected as overlap: %v", seedStrideX, err)
	}
}

// TestSweepParallelErrorPropagates: a failing cell must surface its error
// with series/x context even when other cells run concurrently.
func TestSweepParallelErrorPropagates(t *testing.T) {
	cfg := smallSweepConfig(4)
	good := cfg.Cell
	cfg.Cell = func(si int, x float64) Scenario {
		sc := good(si, x)
		if si == 1 && x == 10 {
			sc.Topology.Kind = "bogus"
		}
		return sc
	}
	_, err := Sweep(cfg)
	if err == nil {
		t.Fatal("bad cell swallowed")
	}
	if !strings.Contains(err.Error(), "MRAI=2.25s") || !strings.Contains(err.Error(), "x=10") {
		t.Errorf("error lacks series/x context: %v", err)
	}
}
