package experiment

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"bgpsim/internal/failure"
	"bgpsim/internal/topology"
)

// poolTestConfig is a small paired sweep: two schemes over the same
// worlds, so the simulator pool actually gets hits (both series receive
// the same memoized *Network per (x, trial) and the second series reuses
// the first's simulators via Reset).
func poolTestConfig(workers int) SweepConfig {
	return SweepConfig{
		SeriesNames:           []string{"MRAI=0.5s", "batch"},
		Xs:                    []float64{2.5, 10},
		Trials:                2,
		Metric:                MetricDelay,
		SameWorldAcrossSeries: true,
		Workers:               workers,
		Cell: func(si int, x float64) Scenario {
			scheme := ConstantMRAI(500 * time.Millisecond)
			if si == 1 {
				scheme = Batching(500 * time.Millisecond)
			}
			return Scenario{
				Topology: topology.Spec{Kind: topology.KindSkewed7030, N: 30},
				Failure:  failure.Geographic(x / 100),
				Scheme:   scheme,
				Seed:     31,
			}
		},
	}
}

// TestSweepPooledMatchesFreshRuns pins that the sweep's simulator pool
// and topology memo change nothing observable: every cell of a pooled
// sweep must equal the aggregate of plain Run calls (which never reuse a
// simulator) over the same derived seeds.
func TestSweepPooledMatchesFreshRuns(t *testing.T) {
	cfg := poolTestConfig(1)
	fig, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for si := range cfg.SeriesNames {
		for xi, x := range cfg.Xs {
			sc := cfg.Cell(si, x)
			base := cellSeed(sc.Seed, si, xi, cfg.SameWorldAcrossSeries)
			var fresh []Result
			for i := 0; i < cfg.Trials; i++ {
				sc.Seed = trialSeed(base, i)
				r, err := Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				fresh = append(fresh, r)
			}
			want := cfg.Metric.value(aggregate(fresh))
			got := fig.Series[si].Points[xi].Y
			if got != want {
				t.Errorf("series %d x=%v: pooled sweep %v != fresh runs %v", si, x, got, want)
			}
		}
	}
}

// TestSweepWorkerCountInvariant pins that the pooled sweep is still
// byte-identical across worker counts: pool hits occur in a different
// interleaving under the parallel schedule, and none of it may show.
func TestSweepWorkerCountInvariant(t *testing.T) {
	serial, err := Sweep(poolTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(poolTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("worker count changed the figure:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestConcurrentSweepsShareTopologyCache runs overlapping sweeps on the
// same scenarios from multiple goroutines. Under -race this exercises
// the once-guarded topology memo and the mutex-guarded simulator pools
// against concurrent first-builds of identical keys.
func TestConcurrentSweepsShareTopologyCache(t *testing.T) {
	var wg sync.WaitGroup
	figs := make([]Figure, 3)
	errs := make([]error, 3)
	for i := range figs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			figs[i], errs[i] = Sweep(poolTestConfig(2))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
		if !reflect.DeepEqual(figs[i], figs[0]) {
			t.Errorf("concurrent sweep %d diverged:\n%+v\nvs\n%+v", i, figs[i], figs[0])
		}
	}
}

// TestBuildTopologyCachedReturnsSharedInstance pins the memo contract:
// identical (spec, seed) yields the identical *Network, and different
// seeds yield different instances.
func TestBuildTopologyCachedReturnsSharedInstance(t *testing.T) {
	spec := topology.Spec{Kind: topology.KindSkewed7030, N: 20}
	a, err := BuildTopologyCached(spec, 12345)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildTopologyCached(spec, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (spec, seed) returned distinct networks")
	}
	c, err := BuildTopologyCached(spec, 12346)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds returned the same network")
	}
	// The memoized build must equal an uncached one.
	fresh, err := spec.Build(topoStream(12345))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != fresh.NumNodes() || a.NumLinks() != fresh.NumLinks() {
		t.Errorf("cached build differs from direct build: %d/%d nodes, %d/%d links",
			a.NumNodes(), fresh.NumNodes(), a.NumLinks(), fresh.NumLinks())
	}
}
