package des

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRNGDeterministicForSeed(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agreed %d/100 times", same)
	}
}

func TestSplitIsStableAndIndependent(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	sa, sb := a.Split("topology"), b.Split("topology")
	for i := 0; i < 100; i++ {
		if sa.Int63() != sb.Int63() {
			t.Fatal("Split with same label from same parent state diverged")
		}
	}
	c := NewRNG(7)
	other := c.Split("failure")
	d := NewRNG(7)
	topo := d.Split("topology")
	if other.Int63() == topo.Int63() {
		t.Log("warning: first draws collide; acceptable but unexpected")
	}
}

func TestUniformDurationBounds(t *testing.T) {
	g := NewRNG(3)
	lo, hi := time.Millisecond, 30*time.Millisecond
	for i := 0; i < 10000; i++ {
		d := g.UniformDuration(lo, hi)
		if d < lo || d > hi {
			t.Fatalf("UniformDuration = %v outside [%v,%v]", d, lo, hi)
		}
	}
}

func TestUniformDurationDegenerate(t *testing.T) {
	g := NewRNG(3)
	if d := g.UniformDuration(time.Second, time.Second); d != time.Second {
		t.Fatalf("UniformDuration(1s,1s) = %v", d)
	}
}

func TestUniformDurationPanicsOnInvertedRange(t *testing.T) {
	g := NewRNG(3)
	defer func() {
		if recover() == nil {
			t.Error("UniformDuration(hi<lo) did not panic")
		}
	}()
	g.UniformDuration(time.Second, 0)
}

func TestUniformDurationMean(t *testing.T) {
	g := NewRNG(11)
	lo, hi := time.Millisecond, 30*time.Millisecond
	var sum time.Duration
	const n = 200000
	for i := 0; i < n; i++ {
		sum += g.UniformDuration(lo, hi)
	}
	mean := sum / n
	want := (lo + hi) / 2
	if mean < want-time.Millisecond || mean > want+time.Millisecond {
		t.Errorf("mean = %v, want ≈ %v", mean, want)
	}
}

func TestJitterWithinRFC1771Band(t *testing.T) {
	g := NewRNG(5)
	base := 30 * time.Second
	for i := 0; i < 10000; i++ {
		j := g.Jitter(base)
		if j < time.Duration(float64(base)*0.75) || j > base {
			t.Fatalf("Jitter(%v) = %v outside [0.75*base, base]", base, j)
		}
	}
}

func TestJitterZeroAndNegative(t *testing.T) {
	g := NewRNG(5)
	if g.Jitter(0) != 0 {
		t.Error("Jitter(0) != 0")
	}
	if g.Jitter(-time.Second) != 0 {
		t.Error("Jitter(negative) != 0")
	}
}

func TestParetoBounds(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 10000; i++ {
		x := g.Pareto(1.2, 1, 100)
		if x < 1 || x > 100 {
			t.Fatalf("Pareto = %v outside [1,100]", x)
		}
	}
}

func TestParetoIsHeavyTailed(t *testing.T) {
	g := NewRNG(13)
	small, large := 0, 0
	for i := 0; i < 10000; i++ {
		x := g.Pareto(1.2, 1, 100)
		if x < 4 {
			small++
		}
		if x > 50 {
			large++
		}
	}
	if small < 6000 {
		t.Errorf("only %d/10000 draws < 4; expected mass at the low end", small)
	}
	if large == 0 {
		t.Error("no draws > 50; expected a heavy tail")
	}
}

func TestParetoPanicsOnInvalidParams(t *testing.T) {
	g := NewRNG(9)
	for _, c := range []struct{ alpha, lo, hi float64 }{
		{0, 1, 10}, {1, 0, 10}, {1, 10, 1}, {-1, 1, 10},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pareto(%v,%v,%v) did not panic", c.alpha, c.lo, c.hi)
				}
			}()
			g.Pareto(c.alpha, c.lo, c.hi)
		}()
	}
}

// Property: jitter never increases a timer and never cuts more than 25%.
func TestPropertyJitterBand(t *testing.T) {
	g := NewRNG(17)
	f := func(ms uint32) bool {
		base := time.Duration(ms) * time.Millisecond
		j := g.Jitter(base)
		return j <= base && float64(j) >= 0.75*float64(base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
