package des

import "math/bits"

// The engine's event queue is a calendar (bucket) queue specialized for
// the distributions the BGP model produces: MRAI timers, processing
// delays, and link latencies cluster within a few seconds of the clock,
// so almost every event lands inside a short ring of time buckets and
// push/pop touch only a tiny per-bucket heap. Events scheduled beyond
// the ring's horizon fall back to a single 4-ary overflow heap and are
// migrated into the ring as the clock approaches them, so a long-horizon
// workload degrades gracefully to exactly the previous pure-heap queue.
//
// Correctness does not depend on where an event is stored: buckets
// partition the time axis into disjoint, ordered ranges; each bucket is
// itself a 4-ary min-heap ordered by (at, seq); and the overflow heap
// only ever holds events later than everything in the ring. Popping the
// earliest bucket's heap top therefore yields the same (at, seq) total
// order — and hence byte-identical simulation output — as one global
// heap. The differential tests in calendar_test.go pin this equivalence
// against the heap-only engine.
const (
	// calShift sets the bucket width to 2^21 ns ≈ 2.10 ms: fine enough
	// that same-bucket collisions stay rare at simulation densities,
	// coarse enough that the ring spans the MRAI clustering window.
	calShift = 21
	// calBuckets is the ring length (a power of two so ring indexing is a
	// mask). 2048 buckets × 2.10 ms ≈ 4.3 s of horizon, comfortably past
	// the 2.25 s maximum of the paper's MRAI ladder.
	calBuckets = 2048
	calMask    = calBuckets - 1
	// calBucketCap pre-sizes every bucket's heap storage from one shared
	// backing array, so dispatch stays allocation-free even the first
	// time a bucket is touched (the des alloc tests pin exact zeros).
	calBucketCap = 4
)

// calendarQueue is the engine's event queue: a ring of per-bucket 4-ary
// heaps plus an overflow heap for events beyond the ring's horizon. With
// heapOnly set the ring is disabled and every event goes through the
// overflow heap — the previous queue implementation, kept selectable so
// tests and benchmarks can differentially compare the two.
type calendarQueue struct {
	heapOnly bool
	buckets  []eventHeap // ring of per-bucket heaps (nil when heapOnly)
	occ      []uint64    // occupancy bitmap over ring slots
	curB     int64       // lowest bucket number the ring may hold
	ringN    int         // events currently stored in the ring
	overflow eventHeap   // events at or beyond curB+calBuckets
}

// init prepares the queue. The ring storage is carved from one backing
// array: 2048 heaps × 4 slots is a single 64 KiB allocation reused for
// the engine's lifetime (and across Engine.Reset).
func (q *calendarQueue) init(heapOnly bool) {
	q.heapOnly = heapOnly
	if heapOnly {
		return
	}
	q.buckets = make([]eventHeap, calBuckets)
	backing := make([]*Event, calBuckets*calBucketCap)
	for i := range q.buckets {
		q.buckets[i].items = backing[i*calBucketCap : i*calBucketCap : (i+1)*calBucketCap]
	}
	q.occ = make([]uint64, calBuckets/64)
}

// Len returns the number of queued events.
func (q *calendarQueue) Len() int { return q.ringN + q.overflow.Len() }

// rewind re-anchors the ring at the epoch. Only valid on an empty queue
// (Engine.Reset drains first).
func (q *calendarQueue) rewind() { q.curB = 0 }

// Push inserts an event. Events within the ring's horizon go to their
// time bucket; later ones go to the overflow heap. A bucket number below
// curB — possible when the clock trails the queue minimum, e.g. after
// RunUntil stopped at a deadline — is clamped to curB: buckets before
// curB are provably empty, so the clamped bucket is still popped first
// and its internal (at, seq) heap order puts the event in its right
// global position.
func (q *calendarQueue) Push(ev *Event) {
	if q.heapOnly {
		q.overflow.Push(ev)
		return
	}
	b := int64(ev.at) >> calShift
	if b >= q.curB+calBuckets {
		q.overflow.Push(ev)
		return
	}
	if b < q.curB {
		b = q.curB
	}
	q.pushRing(b, ev)
}

func (q *calendarQueue) pushRing(b int64, ev *Event) {
	slot := int(b & calMask)
	q.buckets[slot].Push(ev)
	q.occ[slot>>6] |= 1 << uint(slot&63)
	q.ringN++
}

// Peek returns the earliest event without removing it. Like
// eventHeap.Peek it panics on an empty queue; callers check Len first.
func (q *calendarQueue) Peek() *Event {
	if q.heapOnly || q.ringN == 0 && q.overflow.Len() > 0 {
		if q.heapOnly || !q.settleFromOverflow() {
			return q.overflow.Peek()
		}
	}
	return q.buckets[q.firstSlot()].Peek()
}

// Pop removes and returns the earliest event.
func (q *calendarQueue) Pop() *Event {
	if q.heapOnly {
		return q.overflow.Pop()
	}
	if q.ringN == 0 {
		q.settleFromOverflow()
	}
	slot := q.firstSlot()
	// Advance the anchor to the bucket being popped and pull any
	// overflow events the extended horizon now covers. Migrated events
	// all land in buckets strictly after this one (their bucket numbers
	// are at least the previous horizon), so the pop is unaffected.
	s := int(q.curB & calMask)
	if delta := int64((slot - s) & calMask); delta > 0 {
		q.curB += delta
		q.migrate()
	}
	h := &q.buckets[slot]
	ev := h.Pop()
	q.ringN--
	if h.Len() == 0 {
		q.occ[slot>>6] &^= 1 << uint(slot&63)
	}
	return ev
}

// settleFromOverflow re-anchors an empty ring at the overflow minimum's
// bucket and migrates every overflow event the new horizon covers. It
// reports whether anything was migrated (false only on an empty queue,
// where the caller falls through to the overflow heap's panic-on-empty,
// matching the previous queue's behaviour).
func (q *calendarQueue) settleFromOverflow() bool {
	if q.overflow.Len() == 0 {
		return false
	}
	q.curB = int64(q.overflow.Peek().at) >> calShift
	q.migrate()
	return true
}

// migrate moves overflow events whose bucket now falls inside the ring's
// horizon into their buckets. Each event migrates at most once per
// lifetime in the queue: the horizon only advances.
func (q *calendarQueue) migrate() {
	horizon := q.curB + calBuckets
	for q.overflow.Len() > 0 {
		b := int64(q.overflow.Peek().at) >> calShift
		if b >= horizon {
			return
		}
		q.pushRing(b, q.overflow.Pop())
	}
}

// firstSlot returns the ring slot of the earliest occupied bucket,
// scanning the occupancy bitmap circularly from curB's slot. All
// occupied buckets lie within one ring span of curB, so circular slot
// order from curB equals bucket-number order.
func (q *calendarQueue) firstSlot() int {
	s := int(q.curB & calMask)
	wi := s >> 6
	if w := q.occ[wi] &^ (1<<uint(s&63) - 1); w != 0 {
		return wi<<6 + bits.TrailingZeros64(w)
	}
	nw := len(q.occ)
	for i := 1; i <= nw; i++ {
		j := wi + i
		if j >= nw {
			j -= nw
		}
		if w := q.occ[j]; w != 0 {
			return j<<6 + bits.TrailingZeros64(w)
		}
	}
	panic("des: calendar queue ring empty") // callers ensure ringN > 0
}
