// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel is intentionally minimal: a simulated clock, a priority queue
// of events ordered by (time, insertion sequence), and seeded random-number
// streams. Determinism is a hard requirement for the BGP experiments built
// on top — two runs with the same seed must produce byte-identical results —
// so ties between events scheduled for the same instant are broken by
// insertion order, never by map iteration or heap instability.
package des

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a simulated instant, measured as an offset from the start of the
// simulation. The zero Time is the simulation epoch.
type Time = time.Duration

// Handler is the callback invoked when an event fires. It runs with the
// engine clock set to the event's timestamp.
type Handler func()

// ErrHorizon is returned by Run variants when the configured event horizon
// is exceeded, which almost always indicates a scheduling loop in the model.
var ErrHorizon = errors.New("des: event horizon exceeded")

// Event is a scheduled callback. Events are created by Engine.Schedule and
// may be canceled before they fire.
type Event struct {
	at      Time
	seq     uint64
	index   int // heap index, -1 once popped
	fn      Handler
	stopped bool
}

// At reports the simulated time the event will fire (or would have fired,
// if canceled).
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.stopped }

// Engine is a single simulation instance. An Engine is not safe for
// concurrent use; run independent simulations on independent Engines
// (one per goroutine) instead.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventHeap
	processed uint64
	maxEvents uint64
}

// DefaultMaxEvents bounds a single Run to guard against runaway scheduling
// loops in model code. It is far above anything the BGP experiments need.
const DefaultMaxEvents = 200_000_000

// NewEngine returns an engine with the clock at the epoch.
func NewEngine() *Engine {
	return &Engine{maxEvents: DefaultMaxEvents}
}

// SetMaxEvents overrides the runaway-loop guard. A value of zero restores
// the default.
func (e *Engine) SetMaxEvents(n uint64) {
	if n == 0 {
		n = DefaultMaxEvents
	}
	e.maxEvents = n
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events scheduled but not yet fired,
// including canceled events that have not been drained.
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule arranges for fn to run after delay. A negative delay is treated
// as zero (fire as soon as possible, after already-queued events at the
// current instant). The returned event may be passed to Cancel.
func (e *Engine) Schedule(delay Time, fn Handler) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute time at. Scheduling in the
// past panics: it is a model bug, not a recoverable condition.
func (e *Engine) ScheduleAt(at Time, fn Handler) *Event {
	if at < e.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("des: schedule nil handler")
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.queue.Push(ev)
	return ev
}

// Cancel marks an event so it will not fire. Canceling an event that
// already fired or was already canceled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	ev.stopped = true
	ev.fn = nil
}

// Step fires the next event. It reports false if the queue is empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := e.queue.Pop()
		if ev.stopped {
			continue
		}
		e.now = ev.at
		e.processed++
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty. It returns ErrHorizon if the
// event budget is exhausted first.
func (e *Engine) Run() error {
	return e.RunUntil(Time(math.MaxInt64))
}

// RunUntil fires events with timestamps <= deadline, advancing the clock to
// at most deadline. Events beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) error {
	start := e.processed
	for e.queue.Len() > 0 {
		next := e.queue.Peek()
		if next.stopped {
			e.queue.Pop()
			continue
		}
		if next.at > deadline {
			break
		}
		if e.processed-start >= e.maxEvents {
			return ErrHorizon
		}
		e.Step()
	}
	if e.now < deadline && deadline != Time(math.MaxInt64) {
		e.now = deadline
	}
	return nil
}
