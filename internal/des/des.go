// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel is intentionally minimal: a simulated clock, a priority queue
// of events ordered by (time, insertion sequence), and seeded random-number
// streams. Determinism is a hard requirement for the BGP experiments built
// on top — two runs with the same seed must produce byte-identical results —
// so ties between events scheduled for the same instant are broken by
// insertion order, never by map iteration or heap instability.
//
// The event queue is a calendar (bucket) queue backed by 4-ary min-heaps
// (see calendar.go), but that is invisible to callers: (timestamp,
// insertion sequence) is a strict total order over queued events, so the
// pop sequence — and therefore all simulation output — is independent of
// the queue's internal layout. Any replacement queue must preserve
// exactly this tie-break: timestamp first, then insertion order.
package des

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a simulated instant, measured as an offset from the start of the
// simulation. The zero Time is the simulation epoch.
type Time = time.Duration

// Handler is the callback invoked when an event fires. It runs with the
// engine clock set to the event's timestamp.
type Handler func()

// Runner is the allocation-free counterpart to Handler. Scheduling a
// closure allocates it on the heap once per event; hot-path callers
// (message delivery, CPU-completion and flush timers in the BGP model)
// instead implement Runner on a long-lived object and schedule it with
// ScheduleRunner, so steady-state event dispatch allocates nothing.
type Runner interface {
	// Run is invoked when the event fires, with the engine clock set to
	// the event's timestamp.
	Run()
}

// ErrHorizon is returned by Run variants when the configured event horizon
// is exceeded, which almost always indicates a scheduling loop in the model.
var ErrHorizon = errors.New("des: event horizon exceeded")

// ErrCanceled is returned by Run variants when the cancellation probe
// installed with SetCancel reports true. The simulation stops between
// events: the clock and queue remain valid but the run is abandoned.
var ErrCanceled = errors.New("des: run canceled")

// Event is a scheduled callback. Events are created by Engine.Schedule and
// may be canceled before they fire.
//
// Events are pooled: once an event has fired (or its cancellation has been
// drained from the queue) the engine recycles the Event object for a future
// Schedule call. A caller must therefore drop its *Event reference no later
// than the event's own handler; calling Cancel, At, or Canceled on a
// reference retained past that point observes (or corrupts) an unrelated
// later event. The in-tree callers all clear their reference from the
// firing handler itself, or only cancel events they know are still queued.
type Event struct {
	at      Time
	seq     uint64
	index   int // heap index, -1 once popped
	fn      Handler
	runner  Runner
	stopped bool
}

// At reports the simulated time the event will fire (or would have fired,
// if canceled).
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.stopped }

// Engine is a single simulation instance. An Engine is not safe for
// concurrent use; run independent simulations on independent Engines
// (one per goroutine) instead.
type Engine struct {
	now       Time
	seq       uint64
	seqSrc    *uint64 // shared sequence counter (sharded sequenced mode); nil = own seq
	queue     calendarQueue
	free      []*Event // recycled Event objects (see Event)
	processed uint64
	maxEvents uint64
	cancel    func() bool // polled every cancelStride events; nil = never

	// Fused same-time dispatch (SetFusion). imm holds at most one event
	// scheduled for the current instant that provably sorts before every
	// queued event: it is the engine's next event, held outside the queue
	// so the schedule→pop round trip through the calendar/heap structure
	// is skipped. The event still receives its normal sequence stamp at
	// alloc time — fusion reserves the seq stream, it never reorders it —
	// so the (at, seq) total order over executed events is byte-identical
	// with fusion on or off. See alloc for the admission condition.
	imm  *Event
	fuse bool
}

// cancelStride is how many events fire between cancellation probes. The
// probe (typically ctx.Err) costs a lock, so it is amortized; a stride
// of 1024 bounds the post-cancel overrun to ~1k events, microseconds of
// wall clock.
const cancelStride = 1024

// DefaultMaxEvents bounds a single Run to guard against runaway scheduling
// loops in model code. It is far above anything the BGP experiments need.
const DefaultMaxEvents = 200_000_000

// NewEngine returns an engine with the clock at the epoch. The event
// queue is a calendar queue (see calendar.go); pop order is provably
// identical to NewHeapOnlyEngine's pure heap.
func NewEngine() *Engine {
	e := &Engine{maxEvents: DefaultMaxEvents}
	e.queue.init(false)
	return e
}

// NewHeapOnlyEngine returns an engine whose event queue is the plain
// 4-ary heap, with the calendar ring disabled. Simulation output is
// byte-identical to NewEngine — (at, seq) is a strict total order either
// way — so this exists purely as the comparison baseline for the
// calendar queue's differential tests and benchmarks.
func NewHeapOnlyEngine() *Engine {
	e := &Engine{maxEvents: DefaultMaxEvents}
	e.queue.init(true)
	return e
}

// SetFusion enables (or disables) fused same-time dispatch: an event
// scheduled for the current instant while no earlier-or-equal event is
// queued is held in a one-slot fast lane and executed next, bypassing
// the queue data structure entirely. The event's (at, seq) stamp — and
// therefore the execution order of every event — is identical either
// way; fusion only removes the push/pop cost of the delivery→process
// chains that zero-delay configurations produce. It is the storm fast
// lane's engine-level piece (Params.StormFusedDispatch) and must not be
// enabled on engines driven by a Group: the sharded drivers peek queue
// keys across engines between events, and the single-engine guarantee
// ("imm is the engine's next event") does not survive foreign
// insertions at the barrier.
func (e *Engine) SetFusion(on bool) {
	if !on && e.imm != nil {
		// Demote the held event into the queue so nothing is lost.
		ev := e.imm
		e.imm = nil
		e.queue.Push(ev)
	}
	e.fuse = on
}

// SetMaxEvents overrides the runaway-loop guard. A value of zero restores
// the default.
func (e *Engine) SetMaxEvents(n uint64) {
	if n == 0 {
		n = DefaultMaxEvents
	}
	e.maxEvents = n
}

// SetCancel installs (or with nil removes) a cancellation probe. Run
// variants call it once every cancelStride fired events and stop with
// ErrCanceled when it reports true — the hook that lets a
// context.Context (Ctrl-C, coordinator shutdown) abort an in-flight
// simulation between events instead of abandoning it. The probe must be
// cheap and is called from the simulation goroutine only. Reset clears
// the probe: cancellation belongs to one run, not to the engine.
func (e *Engine) SetCancel(cancel func() bool) {
	e.cancel = cancel
}

// Reset rewinds the engine to its post-NewEngine state: the clock returns
// to the epoch, the sequence and processed counters restart at zero, and
// any still-queued events are discarded (their handlers never fire).
// Discarded and previously fired Event objects are retained on the free
// list, which is the point: a reset engine re-runs a simulation without
// re-paying event allocation. The maxEvents override is preserved.
func (e *Engine) Reset() {
	if ev := e.imm; ev != nil {
		e.imm = nil
		ev.fn, ev.runner = nil, nil
		e.recycle(ev)
	}
	for e.queue.Len() > 0 {
		ev := e.queue.Pop()
		ev.fn, ev.runner = nil, nil
		e.recycle(ev)
	}
	e.queue.rewind()
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.cancel = nil
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events scheduled but not yet fired,
// including canceled events that have not been drained.
func (e *Engine) Pending() int {
	n := e.queue.Len()
	if e.imm != nil {
		n++
	}
	return n
}

// Schedule arranges for fn to run after delay. A negative delay is treated
// as zero (fire as soon as possible, after already-queued events at the
// current instant). The returned event may be passed to Cancel.
func (e *Engine) Schedule(delay Time, fn Handler) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt arranges for fn to run at absolute time at. Scheduling in the
// past panics: it is a model bug, not a recoverable condition.
func (e *Engine) ScheduleAt(at Time, fn Handler) *Event {
	if fn == nil {
		panic("des: schedule nil handler")
	}
	ev := e.alloc(at)
	ev.fn = fn
	return ev
}

// ScheduleRunner arranges for r.Run to fire after delay, like Schedule but
// without the per-event closure allocation. A negative delay is treated as
// zero.
func (e *Engine) ScheduleRunner(delay Time, r Runner) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleRunnerAt(e.now+delay, r)
}

// ScheduleRunnerAt arranges for r.Run to fire at absolute time at, like
// ScheduleAt but without the per-event closure allocation.
func (e *Engine) ScheduleRunnerAt(at Time, r Runner) *Event {
	if r == nil {
		panic("des: schedule nil runner")
	}
	ev := e.alloc(at)
	ev.runner = r
	return ev
}

// ReserveSeq draws the next sequence number without scheduling anything.
// It lets a model maintain virtual timers: a pending action records the
// (at, seq) key the event it replaces would have occupied — one draw per
// point where the eager path would have allocated a fresh event — and a
// single real event is kept at the minimum recorded key via
// ScheduleRunnerAtSeq. Because the sequence stream is consumed at
// exactly the same points either way, every event in the run (virtual
// or not) carries the same stamp as in the eager schedule.
func (e *Engine) ReserveSeq() uint64 {
	if e.seqSrc != nil {
		*e.seqSrc++
		return *e.seqSrc
	}
	e.seq++
	return e.seq
}

// ScheduleRunnerAtSeq queues r at absolute time at under a previously
// reserved sequence number (ReserveSeq) instead of drawing a fresh one.
// The event sorts into the queue exactly where an event allocated at
// reservation time would have: it is the single-engine analogue of the
// Group's PostForeign. Scheduling in the past panics, as ScheduleAt
// does. The fused fast lane is bypassed — a reserved stamp is generally
// not the current maximum, so the "this event pops next" proof behind
// fusion does not apply; if the fused slot holds a later key than the
// reserved one, it is demoted to the queue to keep the pop order exact.
func (e *Engine) ScheduleRunnerAtSeq(at Time, seq uint64, r Runner) *Event {
	if r == nil {
		panic("des: schedule nil runner")
	}
	if at < e.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, e.now))
	}
	if im := e.imm; im != nil && (at < im.at || (at == im.at && seq < im.seq)) {
		e.queue.Push(im)
		e.imm = nil
	}
	ev := e.insert(at, seq)
	ev.runner = r
	return ev
}

// alloc takes an Event from the free list (or heap-allocates one), stamps
// it with (at, next sequence number), and queues it. The handler fields are
// left for the caller to fill in. When a shared sequence source is
// installed (sharded sequenced mode, see Group) the stamp is drawn from it,
// so schedule calls across all engines of a group consume one global
// sequence stream in call order — the property that makes the sequenced
// sharded schedule reproduce the single-engine (at, seq) order exactly.
func (e *Engine) alloc(at Time) *Event {
	if at < e.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, e.now))
	}
	var seq uint64
	if e.seqSrc != nil {
		*e.seqSrc++
		seq = *e.seqSrc
	} else {
		e.seq++
		seq = e.seq
	}
	// Fused dispatch: an event at the current instant whose (at, seq) key
	// is provably the queue minimum skips the queue. Admission requires
	// the fast-lane slot to be empty and no queued event at <= at — a new
	// stamp always carries the highest seq so far, so "no queued event at
	// an earlier-or-equal time" is exactly "this event pops next". The
	// peek is conservative about canceled front events (they block
	// admission rather than being drained here).
	if e.fuse && at == e.now && e.imm == nil &&
		(e.queue.Len() == 0 || e.queue.Peek().at > at) {
		var ev *Event
		if n := len(e.free); n > 0 {
			ev = e.free[n-1]
			e.free[n-1] = nil
			e.free = e.free[:n-1]
			*ev = Event{at: at, seq: seq}
		} else {
			ev = &Event{at: at, seq: seq}
		}
		e.imm = ev
		return ev
	}
	return e.insert(at, seq)
}

// insert queues a recycled-or-new Event stamped (at, seq). It is the common
// tail of alloc and the Group's foreign-insertion path, which re-queues a
// cross-shard delivery under the sequence number reserved at send time.
func (e *Engine) insert(at Time, seq uint64) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = Event{at: at, seq: seq}
	} else {
		ev = &Event{at: at, seq: seq}
	}
	e.queue.Push(ev)
	return ev
}

// recycle returns a popped event to the free list. Callers must have
// cleared fn/runner (or be handing over a canceled event, whose fields
// Cancel already cleared).
func (e *Engine) recycle(ev *Event) {
	e.free = append(e.free, ev)
}

// Cancel marks an event so it will not fire. Canceling nil or an
// already-canceled event is a no-op. Canceling an event that has already
// fired is undefined (see Event): the object may describe a different,
// still-live event by then.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	ev.stopped = true
	ev.fn = nil
	ev.runner = nil
}

// Step fires the next event. It reports false if the queue is empty.
func (e *Engine) Step() bool {
	// The fused slot, when occupied, always holds the minimum (at, seq)
	// key (see alloc), so it fires before anything queued.
	if ev := e.imm; ev != nil {
		e.imm = nil
		if !ev.stopped {
			e.now = ev.at
			e.processed++
			fn, r := ev.fn, ev.runner
			ev.fn, ev.runner = nil, nil
			if r != nil {
				r.Run()
			} else {
				fn()
			}
			e.recycle(ev)
			return true
		}
		e.recycle(ev)
	}
	for e.queue.Len() > 0 {
		ev := e.queue.Pop()
		if ev.stopped {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.processed++
		fn, r := ev.fn, ev.runner
		ev.fn, ev.runner = nil, nil
		if r != nil {
			r.Run()
		} else {
			fn()
		}
		// Recycled only after the handler returns, so a handler can never
		// be handed its own event object for a fresh Schedule call.
		e.recycle(ev)
		return true
	}
	return false
}

// Run fires events until the queue is empty. It returns ErrHorizon if the
// event budget is exhausted first.
func (e *Engine) Run() error {
	return e.RunUntil(Time(math.MaxInt64))
}

// peekNext returns the engine's next live event — the fused slot first
// (it always holds the minimum key when occupied), then the queue front
// — draining canceled events along the way. nil when no live event is
// pending.
func (e *Engine) peekNext() *Event {
	if ev := e.imm; ev != nil {
		if !ev.stopped {
			return ev
		}
		e.imm = nil
		e.recycle(ev)
	}
	for e.queue.Len() > 0 {
		ev := e.queue.Peek()
		if ev.stopped {
			e.recycle(e.queue.Pop())
			continue
		}
		return ev
	}
	return nil
}

// RunUntil fires events with timestamps <= deadline, advancing the clock to
// at most deadline. Events beyond the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) error {
	start := e.processed
	for {
		next := e.peekNext()
		if next == nil || next.at > deadline {
			break
		}
		if e.processed-start >= e.maxEvents {
			return ErrHorizon
		}
		if e.cancel != nil && e.processed%cancelStride == 0 && e.cancel() {
			return ErrCanceled
		}
		e.Step()
	}
	if e.now < deadline && deadline != Time(math.MaxInt64) {
		e.now = deadline
	}
	return nil
}

// RunBefore fires events with timestamps strictly before deadline, then
// advances the clock to deadline. It is the per-shard epoch step of the
// sharded engine (see Group): a shard may safely execute everything before
// the epoch boundary because conservative lookahead guarantees no
// cross-shard arrival lands inside the epoch, and the final clock advance
// synchronizes the shard with the barrier so handlers run from the barrier
// (control events, cross-shard insertions) observe a current clock.
func (e *Engine) RunBefore(deadline Time) error {
	start := e.processed
	for {
		next := e.peekNext()
		if next == nil || next.at >= deadline {
			break
		}
		if e.processed-start >= e.maxEvents {
			return ErrHorizon
		}
		if e.cancel != nil && e.processed%cancelStride == 0 && e.cancel() {
			return ErrCanceled
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// NextKey reports the (time, sequence) key of the engine's next live event,
// draining any canceled events queued ahead of it. ok is false when the
// queue holds no live events. The sharded drivers use it to find the global
// minimum across engines without popping.
func (e *Engine) NextKey() (at Time, seq uint64, ok bool) {
	if ev := e.peekNext(); ev != nil {
		return ev.at, ev.seq, true
	}
	return 0, 0, false
}
