package des

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j%97)*time.Millisecond, func() {})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNestedScheduling(b *testing.B) {
	// The simulator's dominant pattern: handlers scheduling more work.
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		remaining := 10000
		var step Handler
		step = func() {
			if remaining > 0 {
				remaining--
				e.Schedule(time.Millisecond, step)
			}
		}
		e.Schedule(0, step)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCancelHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		events := make([]*Event, 1000)
		for j := range events {
			events[j] = e.Schedule(time.Duration(j)*time.Millisecond, func() {})
		}
		for j := 0; j < len(events); j += 2 {
			e.Cancel(events[j])
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJitter(b *testing.B) {
	g := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = g.Jitter(30 * time.Second)
	}
}

func BenchmarkUniformDuration(b *testing.B) {
	g := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = g.UniformDuration(time.Millisecond, 30*time.Millisecond)
	}
}
