package des

import (
	"fmt"
	"testing"
)

// These tests pin the fused same-time dispatch (SetFusion) to the plain
// queued engine: the execution schedule — which handlers run, at what
// clock, in what order — must be identical with fusion on or off, for
// workloads heavy in the zero-delay chains fusion accelerates, with
// cancellations and nested scheduling mixed in.

// fusionTrace runs a deterministic self-scheduling workload and records
// the (label, now) execution order.
func fusionTrace(t *testing.T, fuse bool) []string {
	t.Helper()
	e := NewEngine()
	e.SetFusion(fuse)
	rng := NewRNG(42)
	var out []string
	note := func(label string) { out = append(out, fmt.Sprintf("%s@%d", label, e.Now())) }

	var spawn func(depth, id int)
	spawn = func(depth, id int) {
		note(fmt.Sprintf("d%d-%d", depth, id))
		if depth >= 4 {
			return
		}
		// A zero-delay chain (the fusion target), a sibling at the same
		// instant (blocks fusion for the second), and a future event.
		e.Schedule(0, func() { spawn(depth+1, id*10) })
		e.Schedule(0, func() { spawn(depth+1, id*10+1) })
		e.Schedule(Time(1+rng.Intn(5)), func() { spawn(depth+1, id*10+2) })
		// A canceled zero-delay event must not fire in either mode.
		ev := e.Schedule(0, func() { note("CANCELED") })
		e.Cancel(ev)
	}
	e.Schedule(0, func() { spawn(0, 1) })
	e.Schedule(3, func() { note("late") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFusionPreservesExecutionOrder(t *testing.T) {
	plain := fusionTrace(t, false)
	fused := fusionTrace(t, true)
	if len(plain) != len(fused) {
		t.Fatalf("event counts differ: plain %d, fused %d", len(plain), len(fused))
	}
	for i := range plain {
		if plain[i] != fused[i] {
			t.Fatalf("schedules diverge at %d: plain %q, fused %q", i, plain[i], fused[i])
		}
	}
	for _, s := range fused {
		if s == "CANCELED" {
			t.Fatal("canceled fused event fired")
		}
	}
}

// TestFusionReservesSeqStream pins that fusion consumes the same
// sequence numbers the queued path would: after identical schedule
// calls, the next queued event's key is identical in both modes.
func TestFusionReservesSeqStream(t *testing.T) {
	key := func(fuse bool) string {
		e := NewEngine()
		e.SetFusion(fuse)
		e.Schedule(0, func() {}) // fused candidate
		e.Schedule(0, func() {}) // blocked (slot occupied)
		e.Schedule(1, func() {})
		at, seq, ok := e.NextKey()
		return fmt.Sprintf("%v/%d/%v/pending=%d", at, seq, ok, e.Pending())
	}
	if plain, fused := key(false), key(true); plain != fused {
		t.Fatalf("next key differs: plain %s, fused %s", plain, fused)
	}
}

// TestFusionAdmission pins the admission condition: an event at the
// current instant is fused only when the slot is free and nothing
// earlier-or-equal is queued.
func TestFusionAdmission(t *testing.T) {
	e := NewEngine()
	e.SetFusion(true)
	e.Schedule(0, func() {})
	if e.imm == nil {
		t.Fatal("first zero-delay event not fused")
	}
	e.Schedule(0, func() {})
	if got := e.queue.Len(); got != 1 {
		t.Fatalf("second same-time event should queue (slot occupied): queue len %d", got)
	}
	// With an event queued at the current instant, no further fusion.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Schedule(5, func() {})
	e.Schedule(0, func() {})
	if e.imm == nil {
		t.Fatal("zero-delay event with only a future event queued should fuse")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	// SetFusion(false) demotes a held event into the queue.
	e.SetFusion(true)
	e.Schedule(0, func() {})
	if e.imm == nil {
		t.Fatal("expected fused event")
	}
	e.SetFusion(false)
	if e.imm != nil || e.queue.Len() != 1 {
		t.Fatalf("SetFusion(false) should demote the held event: imm=%v queue=%d", e.imm, e.queue.Len())
	}
	fired := 0
	// The demoted event's handler was already installed; count executions
	// via Processed instead.
	before := e.Processed()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	fired = int(e.Processed() - before)
	if fired != 1 {
		t.Fatalf("demoted event fired %d times, want 1", fired)
	}
}
