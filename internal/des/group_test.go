package des

import (
	"math"
	"sort"
	"testing"
	"time"
)

// These tests pin the Group's obligations with a toy sharded model that
// follows the same protocol the BGP layer uses: same-shard work is
// scheduled directly on the shard engine, cross-shard work is buffered
// with a sequence number reserved at send time and handed over at
// barriers through the drain hook. The model respects the lookahead
// contract (every inter-node delay >= the group lookahead), so any
// partition of its nodes is a valid sharding.
//
//   - Sequenced mode must reproduce the single-engine dispatch order
//     byte-for-byte, for any shard count, on both queue flavours.
//   - Concurrent mode must be deterministic run-to-run and agree with
//     the serial run on every order-insensitive observable.
//   - Cancellation must be observed inside shard epochs, not only at
//     barriers.

const toyLook = 25 * time.Millisecond

// toyFire is one node "processing" step: it logs the firing, then (for
// the node's first toyFanFires firings) schedules messages to other
// nodes with delays drawn from the node's private RNG. Delays are
// independent of the partition, so serial and sharded runs build the
// same schedule.
const (
	toyNodes    = 30
	toyFanFires = 20
	toyFanOut   = 2
)

type toyMsg struct {
	dst    int
	at     Time
	sendAt Time
	src    int    // source shard
	seq    uint64 // sequenced: reserved global seq; concurrent: per-source counter
}

type toyNode struct {
	id    int
	shard int
	sim   *toySim
	rng   *RNG
	fires int
	sumAt Time // order-insensitive observable: sum of firing times
}

type toySim struct {
	eng    *Engine // serial mode
	g      *Group  // sharded mode
	nodes  []*toyNode
	out    [][]toyMsg // per-source-shard cross-shard buffers
	outSeq []uint64   // concurrent mode: per-source-shard send counters
	logs   [][]int32  // dispatch log; per shard in concurrent mode, logs[0] otherwise
}

func newToySim(k int, sequenced bool, heapOnly bool) *toySim {
	s := &toySim{}
	nlogs := 1
	if k == 0 {
		if heapOnly {
			s.eng = NewHeapOnlyEngine()
		} else {
			s.eng = NewEngine()
		}
	} else {
		s.g = NewGroup(k, toyLook, sequenced)
		s.out = make([][]toyMsg, k)
		s.outSeq = make([]uint64, k)
		s.g.SetDrain(s.drain)
		if !sequenced {
			nlogs = k
		}
	}
	s.logs = make([][]int32, nlogs)
	s.nodes = make([]*toyNode, toyNodes)
	for i := range s.nodes {
		shard := 0
		if k > 0 {
			shard = i % k
		}
		s.nodes[i] = &toyNode{id: i, shard: shard, sim: s, rng: NewRNG(int64(i)*7 + 1)}
	}
	return s
}

func (n *toyNode) Run() {
	s := n.sim
	var now Time
	switch {
	case s.g == nil:
		now = s.eng.Now()
	case s.g.Sequenced():
		now = s.g.Now()
	default:
		now = s.g.Shard(n.shard).Now()
	}
	li := 0
	if s.g != nil && !s.g.Sequenced() {
		li = n.shard
	}
	s.logs[li] = append(s.logs[li], int32(n.id))
	n.fires++
	n.sumAt += now
	if n.fires > toyFanFires {
		return
	}
	for j := 0; j < toyFanOut; j++ {
		dst := n.rng.Intn(len(s.nodes))
		// Quantized to whole milliseconds so distinct sends tie at one
		// instant and the seq tie-break carries the order. Always >= the
		// lookahead: the contract that makes every partition valid.
		delay := toyLook + Time(n.rng.Intn(40))*time.Millisecond
		s.send(n, dst, now+delay, now)
	}
}

func (s *toySim) send(from *toyNode, dst int, at, sendAt Time) {
	d := s.nodes[dst]
	if s.g == nil {
		s.eng.ScheduleRunnerAt(at, d)
		return
	}
	if d.shard == from.shard {
		s.g.Shard(d.shard).ScheduleRunnerAt(at, d)
		return
	}
	m := toyMsg{dst: dst, at: at, sendAt: sendAt, src: from.shard}
	if s.g.Sequenced() {
		m.seq = s.g.ReserveSeq()
	} else {
		s.outSeq[from.shard]++
		m.seq = s.outSeq[from.shard]
	}
	s.out[from.shard] = append(s.out[from.shard], m)
}

// drain moves buffered cross-shard messages into their destination
// engines at a barrier. Sequenced mode posts them under their reserved
// sequence numbers (order within the buffers is irrelevant: the key
// places them). Concurrent mode sorts by (arrival, send time, source
// shard, source counter) — a total order independent of goroutine
// timing — then schedules in that order so destination sequence numbers
// are assigned deterministically.
func (s *toySim) drain() {
	if s.g.Sequenced() {
		for si := range s.out {
			for _, m := range s.out[si] {
				s.g.PostForeign(s.nodes[m.dst].shard, m.at, m.seq, s.nodes[m.dst])
			}
			s.out[si] = s.out[si][:0]
		}
		return
	}
	var all []toyMsg
	for si := range s.out {
		all = append(all, s.out[si]...)
		s.out[si] = s.out[si][:0]
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.sendAt != b.sendAt {
			return a.sendAt < b.sendAt
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, m := range all {
		s.g.Shard(s.nodes[m.dst].shard).ScheduleRunnerAt(m.at, s.nodes[m.dst])
	}
}

func (s *toySim) start() {
	for _, n := range s.nodes {
		// Staggered seeds, scheduled in node order like the BGP
		// originations; same (time, seq) keys in every mode.
		at := Time(n.id) * time.Millisecond
		if s.g == nil {
			s.eng.ScheduleRunnerAt(at, n)
		} else {
			s.g.Shard(n.shard).ScheduleRunnerAt(at, n)
		}
	}
}

func (s *toySim) run(t *testing.T) {
	t.Helper()
	var err error
	if s.g == nil {
		err = s.eng.Run()
	} else {
		err = s.g.Run()
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestGroupSequencedMatchesSerial pins the tentpole guarantee: the
// sequenced sharded schedule dispatches in exactly the single-engine
// order for every shard count, on both the calendar and heap-only
// serial baselines.
func TestGroupSequencedMatchesSerial(t *testing.T) {
	ref := newToySim(0, false, false)
	ref.start()
	ref.run(t)
	want := ref.logs[0]
	if len(want) < toyNodes*toyFanFires/2 {
		t.Fatalf("reference run fired only %d events", len(want))
	}

	heap := newToySim(0, false, true)
	heap.start()
	heap.run(t)
	diffLogs(t, "heap-only", want, heap.logs[0])

	for _, k := range []int{1, 2, 3, 4, 7} {
		s := newToySim(k, true, false)
		s.start()
		s.run(t)
		diffLogs(t, "sequenced", want, s.logs[0])
		if s.g.Now() != ref.eng.Now() {
			t.Fatalf("k=%d: final clock %v, serial %v", k, s.g.Now(), ref.eng.Now())
		}
	}
}

func diffLogs(t *testing.T, name string, want, got []int32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: fired %d events, serial fired %d", name, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: dispatch order diverges at %d: got node %d, serial node %d",
				name, i, got[i], want[i])
		}
	}
}

// TestGroupSequencedRunUntil pins deadline semantics against the serial
// engine: same events fired, same final clock, and the remainder runs
// to the same completion.
func TestGroupSequencedRunUntil(t *testing.T) {
	ref := newToySim(0, false, false)
	ref.start()
	s := newToySim(3, true, false)
	s.start()

	cut := 200 * time.Millisecond
	if err := ref.eng.RunUntil(cut); err != nil {
		t.Fatal(err)
	}
	if err := s.g.RunUntil(cut); err != nil {
		t.Fatal(err)
	}
	diffLogs(t, "until", ref.logs[0], s.logs[0])
	if s.g.Now() != ref.eng.Now() {
		t.Fatalf("clock after RunUntil: %v, serial %v", s.g.Now(), ref.eng.Now())
	}
	ref.run(t)
	s.run(t)
	diffLogs(t, "resume", ref.logs[0], s.logs[0])
}

// TestGroupConcurrentDeterministic pins the concurrent mode's
// determinism class: two runs with the same (seed, K, partition) must
// produce identical per-shard dispatch logs, and every
// order-insensitive observable (per-node fire count, sum of firing
// times) must agree with the serial run — the model satisfies the
// sharding contract, so only the interleaving may differ.
func TestGroupConcurrentDeterministic(t *testing.T) {
	ref := newToySim(0, false, false)
	ref.start()
	ref.run(t)

	run := func() *toySim {
		s := newToySim(4, false, false)
		s.start()
		s.run(t)
		return s
	}
	a, b := run(), run()
	for i := range a.logs {
		diffLogs(t, "run-to-run", a.logs[i], b.logs[i])
	}
	total := 0
	for _, l := range a.logs {
		total += len(l)
	}
	if total != len(ref.logs[0]) {
		t.Fatalf("concurrent fired %d events, serial %d", total, len(ref.logs[0]))
	}
	for i, n := range a.nodes {
		r := ref.nodes[i]
		if n.fires != r.fires || n.sumAt != r.sumAt {
			t.Fatalf("node %d: fires=%d sumAt=%v, serial fires=%d sumAt=%v",
				i, n.fires, n.sumAt, r.fires, r.sumAt)
		}
	}
}

// TestGroupCancelPerShard is the SetCancel regression: the probe must
// fire inside a shard's epoch slice — per shard, between events on the
// simulated clock — so a long-running multi-shard simulation stops
// promptly, not only at the next barrier or at quiescence. The chain of
// self-rescheduling events lives on one shard and stays within a single
// lookahead window, so a barrier-only probe would never see the flag
// until the chain (far beyond the probe stride) completed.
func TestGroupCancelPerShard(t *testing.T) {
	for _, sequenced := range []bool{true, false} {
		g := NewGroup(3, toyLook, sequenced)
		var calls, fired int
		g.SetCancel(func() bool {
			calls++
			return calls > 2
		})
		const chain = 10 * cancelStride
		var step func()
		step = func() {
			fired++
			if fired < chain {
				// Nanosecond steps: the whole chain fits inside one epoch.
				g.Shard(1).Schedule(1, step)
			}
		}
		g.Shard(1).Schedule(0, step)
		err := g.Run()
		if err != ErrCanceled {
			t.Fatalf("sequenced=%v: Run returned %v, want ErrCanceled", sequenced, err)
		}
		if fired >= chain {
			t.Fatalf("sequenced=%v: all %d events ran before cancellation", sequenced, fired)
		}
		if fired > 4*cancelStride {
			t.Fatalf("sequenced=%v: %d events ran past a probe reporting cancel", sequenced, fired)
		}
	}
}

// TestGroupControlInterleaving pins that control events run exactly at
// their timestamps relative to shard work in both modes: a control
// event at time T observes every shard clock synchronized to T and all
// shard events before T completed.
func TestGroupControlInterleaving(t *testing.T) {
	for _, sequenced := range []bool{true, false} {
		g := NewGroup(2, toyLook, sequenced)
		// Per the sharding contract, shard handlers touch only
		// shard-local state; control handlers (all shards paused) may
		// read across shards.
		var fired [2]int
		for i := 0; i < 100; i++ {
			sh := i % 2
			g.Shard(sh).ScheduleAt(Time(i)*10*time.Millisecond, func() { fired[sh]++ })
		}
		checked := false
		g.Control().ScheduleAt(495*time.Millisecond, func() {
			checked = true
			if n := fired[0] + fired[1]; n != 50 {
				t.Errorf("sequenced=%v: control at 495ms saw %d shard events, want 50", sequenced, n)
			}
			if sequenced {
				// Sequenced handlers read the group clock, which the
				// driver keeps current; individual shard clocks lag.
				if now := g.Now(); now != 495*time.Millisecond {
					t.Errorf("group clock %v at control time 495ms", now)
				}
				return
			}
			// Concurrent handlers read their shard engine's clock, so
			// the driver synchronizes every shard to the control time.
			for i := 0; i < 2; i++ {
				if now := g.Shard(i).Now(); now != 495*time.Millisecond {
					t.Errorf("shard %d clock %v at control time 495ms", i, now)
				}
			}
		})
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		if n := fired[0] + fired[1]; !checked || n != 100 {
			t.Fatalf("sequenced=%v: checked=%v fired=%d", sequenced, checked, n)
		}
	}
}

// TestGroupReset pins that a reset group reproduces its first run
// byte-for-byte, including the shared sequence counter restart.
func TestGroupReset(t *testing.T) {
	s := newToySim(3, true, false)
	s.start()
	s.run(t)
	first := append([]int32(nil), s.logs[0]...)

	s.g.Reset()
	s.g.SetDrain(s.drain)
	s.logs[0] = s.logs[0][:0]
	for _, n := range s.nodes {
		n.fires, n.sumAt = 0, 0
		n.rng = NewRNG(int64(n.id)*7 + 1)
	}
	s.start()
	s.run(t)
	diffLogs(t, "reset", first, s.logs[0])
}

// TestEngineRunBefore pins the strict-exclusive deadline and the clock
// advance that RunBefore adds over RunUntil.
func TestEngineRunBefore(t *testing.T) {
	e := NewEngine()
	var log []int
	e.ScheduleAt(10*time.Millisecond, tag(&log, 1))
	e.ScheduleAt(20*time.Millisecond, tag(&log, 2))
	if err := e.RunBefore(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || log[0] != 1 {
		t.Fatalf("RunBefore fired %v, want [1]", log)
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("clock %v after RunBefore(20ms)", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 2 || log[1] != 2 {
		t.Fatalf("resumed run fired %v, want [1 2]", log)
	}
}

// TestEngineNextKey pins key reporting and canceled-head draining.
func TestEngineNextKey(t *testing.T) {
	e := NewEngine()
	if _, _, ok := e.NextKey(); ok {
		t.Fatal("NextKey on empty engine reported an event")
	}
	a := e.ScheduleAt(5*time.Millisecond, func() {})
	e.ScheduleAt(7*time.Millisecond, func() {})
	e.Cancel(a)
	at, seq, ok := e.NextKey()
	if !ok || at != 7*time.Millisecond || seq != 2 {
		t.Fatalf("NextKey = (%v, %d, %v), want (7ms, 2, true)", at, seq, ok)
	}
	if e.Pending() != 1 {
		t.Fatalf("canceled head not drained: %d pending", e.Pending())
	}
}

// TestGroupRunUntilMax pins that an unbounded Run leaves the clock at
// the last event rather than the sentinel deadline.
func TestGroupRunUntilMax(t *testing.T) {
	g := NewGroup(2, toyLook, true)
	g.Shard(0).ScheduleAt(time.Second, func() {})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Now() != time.Second {
		t.Fatalf("clock %v after Run, want 1s", g.Now())
	}
	if g.Now() >= Time(math.MaxInt64) {
		t.Fatal("clock advanced to the sentinel deadline")
	}
}
