package des

import (
	"math"
	"math/rand"
	"time"
)

// RNG is a seeded random stream for model code. It wraps math/rand with
// helpers for the distributions the BGP experiments draw from. Independent
// model components should use independent streams (see Split) so that
// adding draws in one component does not perturb another.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent stream from this one, keyed by label so the
// derivation is stable regardless of call order elsewhere.
func (g *RNG) Split(label string) *RNG {
	return NewRNG(g.SplitSeed(label))
}

// SplitSeed returns the seed Split(label) would give the derived stream,
// consuming one draw from this stream. It exists so an already-shared
// child stream can be rewound in place (see Reseed) to exactly the state
// a fresh Split would produce, without invalidating pointers to it.
func (g *RNG) SplitSeed(label string) int64 {
	h := int64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= int64(label[i])
		h *= 1099511628211
	}
	return h ^ g.r.Int63()
}

// Reseed rewinds the stream in place to the state NewRNG(seed) produces.
// Every existing pointer to the RNG stays valid and observes the fresh
// stream — the property the simulator's measurement-window normalization
// depends on (router contexts hold the stream pointer across the reseed).
func (g *RNG) Reseed(seed int64) {
	g.r = rand.New(rand.NewSource(seed))
}

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Intn returns an int in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a float in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// ExpFloat64 returns an exponentially distributed float with mean 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// UniformDuration returns a duration uniformly distributed in [lo, hi].
// It panics if hi < lo.
func (g *RNG) UniformDuration(lo, hi time.Duration) time.Duration {
	if hi < lo {
		panic("des: UniformDuration with hi < lo")
	}
	if hi == lo {
		return lo
	}
	span := int64(hi - lo + 1)
	return lo + time.Duration(g.r.Int63n(span))
}

// Jitter applies the RFC 1771 timer jitter: the configured value is
// multiplied by a uniform factor in [0.75, 1.0), i.e. reduced by up to 25%.
func (g *RNG) Jitter(base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	factor := 0.75 + 0.25*g.r.Float64()
	return time.Duration(float64(base) * factor)
}

// Pareto returns a bounded Pareto draw in [lo, hi] with shape alpha.
// It is used for heavy-tailed AS sizes.
func (g *RNG) Pareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi < lo || alpha <= 0 {
		panic("des: Pareto with invalid parameters")
	}
	u := g.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	x := math.Pow(ha*la/(ha-u*(ha-la)), 1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}
