package des

// heapArity is the fan-out of the event queue's d-ary min-heap. A 4-ary
// heap halves the tree depth relative to a binary heap, trading slightly
// more comparisons per sift-down for far fewer cache-missing levels —
// a win for the push/pop-dominated DES loop at large topology sizes.
//
// The arity is a pure performance knob: because (at, seq) is a strict
// total order over queued events (seq is unique per engine), the pop
// sequence is fully determined regardless of heap shape, so changing
// arity cannot change simulation output.
const heapArity = 4

// eventHeap is a d-ary min-heap of events ordered by (at, seq). It is
// hand-rolled rather than wrapping container/heap to avoid the interface
// boxing on every push/pop in the simulation hot loop.
type eventHeap struct {
	items []*Event
}

// Len returns the number of queued events (including canceled ones that
// have not been drained yet).
func (h *eventHeap) Len() int { return len(h.items) }

// Peek returns the earliest event without removing it. It panics on an
// empty heap; callers check Len first.
func (h *eventHeap) Peek() *Event { return h.items[0] }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

// Push inserts an event.
func (h *eventHeap) Push(ev *Event) {
	ev.index = len(h.items)
	h.items = append(h.items, ev)
	h.up(ev.index)
}

// Pop removes and returns the earliest event.
func (h *eventHeap) Pop() *Event {
	n := len(h.items)
	h.swap(0, n-1)
	ev := h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	ev.index = -1
	return ev
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		least := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, least) {
				least = c
			}
		}
		if !h.less(least, i) {
			break
		}
		h.swap(i, least)
		i = least
	}
}
