package des

import (
	"math"
	"sync"
)

// Group runs one simulation partitioned across K shard engines plus one
// control engine, synchronized by conservative lookahead barriers.
//
// The model layer assigns each stateful entity (a router, in the BGP
// model) to exactly one shard; all events that mutate an entity run on
// its shard's engine. Events that mutate entities on several shards at
// once (failures, recoveries — anything injected by the experiment
// script rather than the model) go on the control engine, which only
// ever runs at barriers, while every shard is paused. Work crossing
// from one shard to another (a message delivery) must not be scheduled
// directly on the destination engine; the model buffers it and hands it
// over at a barrier through the drain hook (see SetDrain), using
// PostForeign (sequenced mode) or plain scheduling on Shard(i)
// (concurrent mode).
//
// The contract that makes barriers safe is lookahead: every cross-shard
// interaction must take at least the group's lookahead L of simulated
// time to land. An epoch spans [T, T+L) where T is the earliest pending
// event across all engines; a message sent at s ∈ [T, T+L) arrives at
// s+delay ≥ T+L, i.e. never inside the epoch that sent it, so draining
// buffers only at epoch boundaries can never miss an arrival.
//
// A Group runs in one of two modes, chosen at construction:
//
//   - Sequenced (sequenced=true): all engines share one global sequence
//     counter and a single driver goroutine interleaves them by always
//     stepping the engine holding the globally smallest (time, seq) key.
//     Because every Schedule call draws from the shared counter in
//     execution order, and cross-shard deliveries reserve their sequence
//     number at send time (ReserveSeq) and re-enter the destination
//     queue under it (PostForeign), every event carries the identical
//     (time, seq) stamp it would have in a single-engine run — so the
//     execution order, and therefore all output, is byte-identical to
//     the single-threaded engine. This mode validates the sharding
//     protocol and measures its overhead; it adds no parallelism.
//
//   - Concurrent (sequenced=false): each epoch runs the K shard engines
//     on their own goroutines (Engine.RunBefore the epoch boundary) and
//     joins at the barrier. Output is deterministic for a fixed (seed,
//     K, partition) — the model must give each shard independent random
//     streams and mergeable observers — but is NOT byte-identical to
//     the single-engine schedule, because events on different shards
//     interleave by shard-local order rather than the global sequence.
//     This is the mode that scales wall clock with physical cores.
//
// See ARCHITECTURE.md ("Sharded engine") for the full protocol and the
// byte-identicality argument, and DESIGN.md for the model-facing
// sharding contract.
type Group struct {
	shards    []*Engine
	ctrl      *Engine
	look      Time
	sequenced bool
	gseq      uint64 // shared sequence counter (sequenced mode)
	now       Time   // driver clock: last executed event time / last barrier
	drain     func()
	cancel    func() bool // sequenced-driver probe; engines hold their own copy
	maxEvents uint64
	errs      []error        // per-shard results of a concurrent epoch
	wg        sync.WaitGroup // concurrent epoch join
}

// NewGroup returns a group of k shard engines plus a control engine with
// conservative lookahead look (> 0, typically the minimum cross-shard
// link delay). k must be at least 1. sequenced selects the
// byte-identical single-driver mode over the goroutine-per-shard mode;
// see the Group documentation for the trade.
func NewGroup(k int, look Time, sequenced bool) *Group {
	if k < 1 {
		panic("des: NewGroup needs at least one shard")
	}
	if look <= 0 {
		panic("des: NewGroup needs positive lookahead")
	}
	g := &Group{
		look:      look,
		sequenced: sequenced,
		maxEvents: DefaultMaxEvents,
		shards:    make([]*Engine, k),
		ctrl:      NewEngine(),
		errs:      make([]error, k),
	}
	for i := range g.shards {
		g.shards[i] = NewEngine()
	}
	if sequenced {
		g.ctrl.seqSrc = &g.gseq
		for _, e := range g.shards {
			e.seqSrc = &g.gseq
		}
	}
	return g
}

// NumShards returns the number of shard engines (excluding control).
func (g *Group) NumShards() int { return len(g.shards) }

// Shard returns shard engine i. The model schedules all single-entity
// events for shard-i entities here.
func (g *Group) Shard(i int) *Engine { return g.shards[i] }

// Control returns the control engine. Events that touch entities on
// more than one shard (failure/recovery injections) belong here; they
// run with every shard paused at the event's time, so their handlers may
// freely mutate any shard's entities and schedule on any shard's engine.
func (g *Group) Control() *Engine { return g.ctrl }

// Sequenced reports whether the group runs in sequenced
// (byte-identical) mode.
func (g *Group) Sequenced() bool { return g.sequenced }

// Lookahead returns the group's conservative lookahead window.
func (g *Group) Lookahead() Time { return g.look }

// Now returns the group clock: the timestamp of the most recently
// executed event (sequenced mode) or the most recent barrier
// (concurrent mode), or the RunUntil deadline after a bounded run —
// matching Engine.Now semantics for the single-engine case.
func (g *Group) Now() Time { return g.now }

// SetDrain installs the barrier hook. The group calls it at every epoch
// boundary, with all engines paused; the model uses it to move buffered
// cross-shard messages into their destination engines (PostForeign in
// sequenced mode, Shard(i) scheduling in concurrent mode). Quiescence is
// detected after draining, so messages still in buffers keep a run alive.
func (g *Group) SetDrain(fn func()) { g.drain = fn }

// SetCancel installs a cancellation probe on the group and fans it out
// to every shard engine and the control engine, so a multi-shard run
// observes cancellation per shard — inside each shard's epoch slice as
// well as at barriers — rather than only when the whole group next
// synchronizes.
func (g *Group) SetCancel(cancel func() bool) {
	g.cancel = cancel
	g.ctrl.SetCancel(cancel)
	for _, e := range g.shards {
		e.SetCancel(cancel)
	}
}

// SetMaxEvents overrides the runaway-loop guard on every engine in the
// group, and on the sequenced driver. Zero restores the default.
func (g *Group) SetMaxEvents(n uint64) {
	if n == 0 {
		n = DefaultMaxEvents
	}
	g.maxEvents = n
	g.ctrl.SetMaxEvents(n)
	for _, e := range g.shards {
		e.SetMaxEvents(n)
	}
}

// Reset rewinds every engine in the group to the epoch, restarts the
// shared sequence counter, and clears the drain hook and cancellation
// probe, mirroring Engine.Reset for the sharded case. Event free lists
// are retained.
func (g *Group) Reset() {
	g.ctrl.Reset()
	for _, e := range g.shards {
		e.Reset()
	}
	g.gseq = 0
	g.now = 0
	g.drain = nil
	g.cancel = nil
}

// Processed returns the total number of events executed across the
// control engine and all shards.
func (g *Group) Processed() uint64 {
	n := g.ctrl.Processed()
	for _, e := range g.shards {
		n += e.Processed()
	}
	return n
}

// ReserveSeq draws the next value from the shared sequence counter. In
// sequenced mode the model calls it at the moment it buffers a
// cross-shard message — exactly where the single-engine run would have
// scheduled the delivery — so the message re-enters the destination
// queue (PostForeign) under the same global sequence number the serial
// schedule would have stamped. Calling it in concurrent mode panics:
// there is no shared counter to reserve from.
func (g *Group) ReserveSeq() uint64 {
	if !g.sequenced {
		panic("des: ReserveSeq on a concurrent group")
	}
	g.gseq++
	return g.gseq
}

// PostForeign queues runner r on shard engine dst at absolute time at,
// under the previously reserved sequence number seq (see ReserveSeq).
// It is the sequenced-mode barrier insertion: the event sorts into the
// destination queue exactly where the single-engine schedule would have
// placed it. Posting before the destination clock panics, as Schedule
// would.
func (g *Group) PostForeign(dst int, at Time, seq uint64, r Runner) {
	if r == nil {
		panic("des: post nil runner")
	}
	e := g.shards[dst]
	if at < e.now {
		panic("des: foreign post before destination clock")
	}
	ev := e.insert(at, seq)
	ev.runner = r
}

// Run fires events across all engines until the whole group is
// quiescent: every queue empty and the drain hook delivering nothing
// further. It returns ErrHorizon or ErrCanceled as Engine.Run does.
func (g *Group) Run() error {
	return g.RunUntil(Time(math.MaxInt64))
}

// RunUntil fires events with timestamps <= deadline across all engines,
// advancing the group clock to at most deadline. Events beyond the
// deadline remain queued (or buffered, for undrained cross-shard
// messages whose arrival lies past the deadline).
func (g *Group) RunUntil(deadline Time) error {
	var err error
	if g.sequenced {
		err = g.runSequenced(deadline)
	} else {
		err = g.runConcurrent(deadline)
	}
	if err != nil {
		return err
	}
	if deadline != Time(math.MaxInt64) && g.now < deadline {
		g.now = deadline
	}
	if g.now > deadline {
		g.now = deadline
	}
	return nil
}

// minEngine returns the engine holding the globally smallest (at, seq)
// key, across control and all shards. ok is false when every queue is
// empty of live events. In sequenced mode sequence numbers are globally
// unique, so the comparison is a strict total order.
func (g *Group) minEngine() (best *Engine, bat Time, bseq uint64, ok bool) {
	if at, seq, live := g.ctrl.NextKey(); live {
		best, bat, bseq, ok = g.ctrl, at, seq, true
	}
	for _, e := range g.shards {
		at, seq, live := e.NextKey()
		if !live {
			continue
		}
		if !ok || at < bat || (at == bat && seq < bseq) {
			best, bat, bseq, ok = e, at, seq, true
		}
	}
	return best, bat, bseq, ok
}

// runSequenced is the single-driver loop: epoch by epoch, pop the
// globally smallest (at, seq) event and step its engine, draining
// cross-shard buffers at every epoch boundary. Execution order equals
// the single-engine order by induction on the shared sequence stream.
func (g *Group) runSequenced(deadline Time) error {
	var fired uint64
	for {
		if g.drain != nil {
			g.drain()
		}
		eng, at, _, ok := g.minEngine()
		if !ok || at > deadline {
			return nil
		}
		epochEnd := at + g.look
		if epochEnd < at { // overflow
			epochEnd = Time(math.MaxInt64)
		}
		for {
			eng, at, _, ok = g.minEngine()
			if !ok || at >= epochEnd || at > deadline {
				break
			}
			if fired >= g.maxEvents {
				return ErrHorizon
			}
			if g.cancel != nil && fired%cancelStride == 0 && g.cancel() {
				return ErrCanceled
			}
			g.now = at
			eng.Step()
			fired++
		}
	}
}

// runConcurrent is the goroutine-per-shard loop. Control events run on
// the driver goroutine with all shards synchronized to (and paused at)
// the control timestamp; shard epochs run K RunBefore calls in parallel
// and join at the barrier, which is also the only point where
// cross-shard buffers move (drain) — giving each epoch exclusive,
// race-free access to its shard's entities.
func (g *Group) runConcurrent(deadline Time) error {
	for {
		if g.drain != nil {
			g.drain()
		}
		ctrlAt, _, ctrlOK := g.ctrl.NextKey()
		var shardMin Time
		shardOK := false
		for _, e := range g.shards {
			if at, _, ok := e.NextKey(); ok && (!shardOK || at < shardMin) {
				shardMin, shardOK = at, true
			}
		}
		if !ctrlOK && !shardOK {
			return nil
		}
		if ctrlOK && (!shardOK || ctrlAt <= shardMin) {
			// Control turn: every pending shard event is >= ctrlAt, so
			// advancing the shard clocks to ctrlAt skips nothing and lets
			// control handlers observe a current clock on any shard they
			// touch or schedule on.
			if ctrlAt > deadline {
				return nil
			}
			for _, e := range g.shards {
				if err := e.RunBefore(ctrlAt); err != nil {
					return err
				}
			}
			if g.now < ctrlAt {
				g.now = ctrlAt
			}
			if err := g.ctrl.RunUntil(ctrlAt); err != nil {
				return err
			}
			continue
		}
		if shardMin > deadline {
			return nil
		}
		epochEnd := shardMin + g.look
		if epochEnd < shardMin { // overflow
			epochEnd = Time(math.MaxInt64)
		}
		if ctrlOK && ctrlAt < epochEnd {
			epochEnd = ctrlAt
		}
		if deadline != Time(math.MaxInt64) && epochEnd > deadline {
			// RunBefore is exclusive; deadline+1 admits events at the
			// deadline itself, matching RunUntil's inclusive semantics.
			epochEnd = deadline + 1
		}
		for i := range g.shards {
			g.wg.Add(1)
			go func(i int) {
				defer g.wg.Done()
				g.errs[i] = g.shards[i].RunBefore(epochEnd)
			}(i)
		}
		g.wg.Wait()
		for _, err := range g.errs {
			if err != nil {
				return err
			}
		}
		if g.now < epochEnd {
			g.now = epochEnd
		}
	}
}
