package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtEpoch(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestScheduleAndRunOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 5, 25} {
		d := d
		e.Schedule(d*time.Millisecond, func() {
			got = append(got, e.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []time.Duration{5, 10, 20, 25, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i] != w*time.Millisecond {
			t.Errorf("event %d fired at %v, want %v", i, got[i], w*time.Millisecond)
		}
	}
}

func TestEqualTimestampsFireInInsertionOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(time.Second, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d got event %d; equal-time events must be FIFO", i, v)
		}
	}
}

func TestScheduleNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		fired := false
		e.Schedule(-5*time.Second, func() { fired = true })
		_ = fired
	})
	var at Time
	e.Schedule(time.Second, func() {})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s (negative delay must not rewind)", e.Now())
	}
	_ = at
}

func TestScheduleInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt in the past did not panic")
			}
		}()
		e.ScheduleAt(0, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestScheduleNilHandlerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("Schedule(nil) did not panic")
		}
	}()
	e.Schedule(0, nil)
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	e.Cancel(ev)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("canceled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
}

func TestCancelNilAndDoubleCancelAreNoOps(t *testing.T) {
	e := NewEngine()
	e.Cancel(nil)
	ev := e.Schedule(time.Second, func() {})
	e.Cancel(ev)
	e.Cancel(ev)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestNestedSchedulingFromHandlers(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(time.Second, func() {
		order = append(order, "a")
		e.Schedule(time.Second, func() { order = append(order, "c") })
		e.Schedule(0, func() { order = append(order, "b") })
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 2*time.Second {
		t.Errorf("final clock = %v, want 2s", e.Now())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		e.Schedule(d*time.Second, func() { fired = append(fired, e.Now()) })
	}
	if err := e.RunUntil(3 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events before deadline, want 3", len(fired))
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock = %v, want deadline 3s", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 5 {
		t.Errorf("fired %d total, want 5", len(fired))
	}
}

func TestRunHorizonGuard(t *testing.T) {
	e := NewEngine()
	e.SetMaxEvents(100)
	var loop Handler
	loop = func() { e.Schedule(time.Millisecond, loop) }
	e.Schedule(0, loop)
	if err := e.Run(); err != ErrHorizon {
		t.Fatalf("Run = %v, want ErrHorizon", err)
	}
	e.SetMaxEvents(0) // restore default
}

func TestProcessedCountsOnlyFiredEvents(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	e.Cancel(ev)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Processed() != 1 {
		t.Errorf("Processed() = %d, want 1", e.Processed())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
}

// Property: for any batch of random delays, events fire in nondecreasing
// time order and the engine clock matches each event's timestamp.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		sorted := make([]time.Duration, len(raw))
		for i, r := range raw {
			sorted[i] = time.Duration(r) * time.Millisecond
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range sorted {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved schedule/cancel driven by a seed never fires a
// canceled event and fires every non-canceled one exactly once.
func TestPropertyCancelSafety(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		firedCount := make(map[int]int)
		canceled := make(map[int]bool)
		events := make(map[int]*Event)
		n := 50 + r.Intn(100)
		for i := 0; i < n; i++ {
			i := i
			d := time.Duration(r.Intn(1000)) * time.Millisecond
			events[i] = e.Schedule(d, func() { firedCount[i]++ })
		}
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				e.Cancel(events[i])
				canceled[i] = true
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			want := 1
			if canceled[i] {
				want = 0
			}
			if firedCount[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestHeapPopOrderAtScale stresses the event queue at the occupancy a
// large simulation sustains: thousands of events with heavy timestamp
// duplication. The d-ary heap must deliver a strict (timestamp,
// insertion-order) sequence — the total order every deterministic
// figure in results/ rests on.
func TestHeapPopOrderAtScale(t *testing.T) {
	const n = 5000
	e := NewEngine()
	rng := NewRNG(99)
	type stamp struct {
		at  Time
		idx int
	}
	var fired []stamp
	for i := 0; i < n; i++ {
		i := i
		// Only 64 distinct timestamps, so ties are the common case.
		d := time.Duration(rng.Intn(64)) * time.Millisecond
		e.Schedule(d, func() { fired = append(fired, stamp{e.Now(), i}) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != n {
		t.Fatalf("fired %d events, want %d", len(fired), n)
	}
	for i := 1; i < n; i++ {
		prev, cur := fired[i-1], fired[i]
		if cur.at < prev.at {
			t.Fatalf("event %d fired at %v after %v", i, cur.at, prev.at)
		}
		if cur.at == prev.at && cur.idx < prev.idx {
			t.Fatalf("tie at %v broke insertion order: %d before %d", cur.at, prev.idx, cur.idx)
		}
	}
}

// TestEngineResetRewinds pins the Reset contract the simulator pool
// relies on: pending events are dropped and recycled, the clock and
// counters rewind to the epoch, and the engine is immediately reusable.
func TestEngineResetRewinds(t *testing.T) {
	e := NewEngine()
	var fired int
	e.Schedule(time.Second, func() { fired++ })
	e.Schedule(2*time.Second, func() { fired++ })
	if err := e.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Processed() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d processed=%d, want zeros",
			e.Now(), e.Pending(), e.Processed())
	}
	if fired != 1 {
		t.Fatalf("fired %d before Reset, want 1", fired)
	}
	// The dropped event must never fire; new scheduling works from t=0.
	e.Schedule(time.Millisecond, func() { fired += 10 })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 11 {
		t.Errorf("fired = %d after reuse, want 11 (dropped event leaked?)", fired)
	}
	if e.Now() != time.Millisecond {
		t.Errorf("clock = %v after reuse, want 1ms", e.Now())
	}
}

// TestEngineResetRecyclesEvents pins that Reset feeds the queued events
// back to the free list rather than leaking them.
func TestEngineResetRecyclesEvents(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 8; i++ {
		e.Schedule(time.Duration(i+1)*time.Second, func() {})
	}
	e.Reset()
	if got := len(e.free); got != 8 {
		t.Errorf("free list holds %d events after Reset, want 8", got)
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			e.Schedule(time.Duration(i+1)*time.Second, func() {})
		}
		e.Reset()
	})
	// Each Schedule allocates its closure; the Event structs themselves
	// must come from the free list. Allow the closure allocations only.
	if avg > 8 {
		t.Errorf("schedule/Reset cycle allocates %.2f objects/op, want <= 8 (closures only)", avg)
	}
}
