package des

import (
	"testing"
	"time"
)

// These tests pin the calendar queue's one obligation: pop order — and
// therefore simulation output — is byte-identical to the pure 4-ary
// heap's for every scheduling pattern, including ties at one instant,
// events beyond the ring horizon (overflow + migration), cancellations,
// deadline-bounded runs, and engine reuse through Reset.

// fireOrder drives both engine flavours through the same schedule built
// by plan (which schedules events that append their tag to the shared
// log) and returns the two observed dispatch orders.
func fireOrder(t *testing.T, plan func(e *Engine, log *[]int)) (calendar, heap []int) {
	t.Helper()
	run := func(e *Engine) []int {
		var log []int
		plan(e, &log)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	return run(NewEngine()), run(NewHeapOnlyEngine())
}

func tag(log *[]int, id int) Handler {
	return func() { *log = append(*log, id) }
}

func diffOrders(t *testing.T, name string, cal, heap []int) {
	t.Helper()
	if len(cal) != len(heap) {
		t.Fatalf("%s: calendar fired %d events, heap %d", name, len(cal), len(heap))
	}
	for i := range cal {
		if cal[i] != heap[i] {
			t.Fatalf("%s: dispatch order diverges at %d: calendar %d, heap %d",
				name, i, cal[i], heap[i])
		}
	}
}

// TestCalendarMatchesHeapRandom fuzzes mixed short/long horizons: delays
// from sub-bucket to far past the ring span, with duplicate timestamps
// so the seq tie-break is exercised on both container types.
func TestCalendarMatchesHeapRandom(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := NewRNG(seed)
		delays := make([]Time, 3000)
		for i := range delays {
			switch rng.Intn(4) {
			case 0: // same-bucket ties
				delays[i] = Time(rng.Intn(3)) * time.Millisecond
			case 1: // MRAI-like clustering
				delays[i] = Time(500+rng.Intn(1750)) * time.Millisecond
			case 2: // inside the ring horizon
				delays[i] = Time(rng.Intn(4_000_000_000))
			default: // far beyond the horizon: overflow + migration
				delays[i] = Time(rng.Intn(60)) * time.Second
			}
		}
		cal, heap := fireOrder(t, func(e *Engine, log *[]int) {
			for i, d := range delays {
				e.Schedule(d, tag(log, i))
			}
		})
		diffOrders(t, "random", cal, heap)
		if len(cal) != len(delays) {
			t.Fatalf("seed %d: fired %d of %d events", seed, len(cal), len(delays))
		}
	}
}

// TestCalendarMatchesHeapNested pins the simulator's dominant pattern —
// handlers scheduling more events — where pushes interleave with pops
// and the clock (and ring anchor) advances between them.
func TestCalendarMatchesHeapNested(t *testing.T) {
	cal, heap := fireOrder(t, func(e *Engine, log *[]int) {
		rng := NewRNG(42)
		n := 0
		var step func() // reschedules itself with a varying horizon
		step = func() {
			*log = append(*log, n)
			n++
			if n < 2000 {
				e.Schedule(Time(rng.Intn(5_000_000_000)), step)
			}
		}
		e.Schedule(0, step)
	})
	diffOrders(t, "nested", cal, heap)
}

// TestCalendarMatchesHeapCancel pins that lazily drained cancellations
// do not perturb the order of surviving events.
func TestCalendarMatchesHeapCancel(t *testing.T) {
	cal, heap := fireOrder(t, func(e *Engine, log *[]int) {
		rng := NewRNG(9)
		evs := make([]*Event, 1000)
		for i := range evs {
			evs[i] = e.Schedule(Time(rng.Intn(10_000_000_000)), tag(log, i))
		}
		for i := 0; i < len(evs); i += 3 {
			e.Cancel(evs[i])
		}
	})
	diffOrders(t, "cancel", cal, heap)
}

// TestCalendarScheduleBehindAnchor exercises the bucket-clamping path:
// RunUntil stops the clock at a deadline while the queue minimum (and so
// the ring anchor, once peeked) sits far ahead; a subsequent schedule
// lands logically "before" the anchor bucket and must still fire first.
func TestCalendarScheduleBehindAnchor(t *testing.T) {
	e := NewEngine()
	var log []int
	e.ScheduleAt(10*time.Second, tag(&log, 1))
	if err := e.RunUntil(1 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(log) != 0 {
		t.Fatal("event fired before its time")
	}
	// 1.5s is an earlier bucket than the 10s event the ring is anchored
	// on; clamping must not reorder the two.
	e.ScheduleAt(1500*time.Millisecond, tag(&log, 2))
	e.ScheduleAt(1500*time.Millisecond, tag(&log, 3)) // seq tie-break within clamped bucket
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 1}
	if len(log) != len(want) {
		t.Fatalf("fired %d events, want %d", len(log), len(want))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("fire order %v, want %v", log, want)
		}
	}
}

// TestCalendarEngineReset pins that a Reset engine re-anchors the ring
// at the epoch: a reused engine must accept and correctly order
// schedules near time zero after a previous run pushed the anchor out.
func TestCalendarEngineReset(t *testing.T) {
	e := NewEngine()
	done := 0
	e.ScheduleAt(30*time.Second, func() { done++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	var log []int
	e.ScheduleAt(2*time.Millisecond, tag(&log, 1))
	e.ScheduleAt(1*time.Millisecond, tag(&log, 2))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 1 || len(log) != 2 || log[0] != 2 || log[1] != 1 {
		t.Fatalf("post-Reset order %v (done=%d), want [2 1]", log, done)
	}
}

// TestHeapOnlyEngineDispatchAllocationFree extends the allocation pin to
// the heap-only flavour, which the calendar benchmarks compare against.
func TestHeapOnlyEngineDispatchAllocationFree(t *testing.T) {
	e := NewHeapOnlyEngine()
	task := &countRunner{}
	e.ScheduleRunner(time.Millisecond, task)
	e.Step()
	avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleRunner(time.Millisecond, task)
		if !e.Step() {
			t.Fatal("no event fired")
		}
	})
	if avg != 0 {
		t.Errorf("heap-only schedule+dispatch allocates %.2f objects/op, want 0", avg)
	}
}
