package des

import (
	"testing"
	"time"
)

// countRunner is a trivial Runner for allocation tests.
type countRunner struct{ n int }

func (r *countRunner) Run() { r.n++ }

// TestScheduleRunnerDispatchAllocationFree pins the hot-path guarantee
// the BGP model depends on: once the engine's event free list is warm,
// scheduling a Runner and dispatching it allocates nothing. A regression
// here (dropping the free list, boxing the runner, a new per-event
// allocation) multiplies across the millions of events per experiment.
func TestScheduleRunnerDispatchAllocationFree(t *testing.T) {
	e := NewEngine()
	task := &countRunner{}
	// Warm the free list and the heap's backing array.
	e.ScheduleRunner(time.Millisecond, task)
	e.Step()
	avg := testing.AllocsPerRun(1000, func() {
		e.ScheduleRunner(time.Millisecond, task)
		if !e.Step() {
			t.Fatal("no event fired")
		}
	})
	if avg != 0 {
		t.Errorf("schedule+dispatch allocates %.2f objects/op, want 0", avg)
	}
	if task.n == 0 {
		t.Fatal("runner never ran")
	}
}

// TestScheduleClosureDispatchReusesEvents pins the weaker guarantee for
// the closure-based Schedule API: the Event objects themselves are
// recycled, so a non-capturing closure also dispatches allocation-free.
func TestScheduleClosureDispatchReusesEvents(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	e.Schedule(time.Millisecond, fn)
	e.Step()
	avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(time.Millisecond, fn)
		if !e.Step() {
			t.Fatal("no event fired")
		}
	})
	if avg != 0 {
		t.Errorf("schedule+dispatch allocates %.2f objects/op, want 0", avg)
	}
}

// TestCanceledEventsAreRecycled pins that draining canceled events also
// feeds the free list rather than leaking the objects to the GC.
func TestCanceledEventsAreRecycled(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	ev := e.Schedule(time.Millisecond, fn)
	e.Cancel(ev)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(1000, func() {
		ev := e.Schedule(time.Millisecond, fn)
		e.Cancel(ev)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("schedule+cancel+drain allocates %.2f objects/op, want 0", avg)
	}
}
