package topology

import (
	"math"
	"testing"
	"testing/quick"

	"bgpsim/internal/des"
)

func TestSkewedPresetsMatchPaper(t *testing.T) {
	cases := []struct {
		name    string
		spec    SkewedSpec
		wantAvg float64
	}{
		{"70-30", Skewed7030(120), 3.8},
		{"50-50", Skewed5050(120), 3.8},
		{"85-15", Skewed8515(120), 3.8},
		{"50-50-dense", Skewed5050Dense(120), 7.6},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rng := des.NewRNG(1)
			// Average over many draws: expected mean should match target.
			sum, count := 0, 0
			for trial := 0; trial < 50; trial++ {
				degs, err := c.spec.Degrees(rng)
				if err != nil {
					t.Fatal(err)
				}
				for _, d := range degs {
					sum += d
					count++
				}
			}
			avg := float64(sum) / float64(count)
			if math.Abs(avg-c.wantAvg) > 0.25 {
				t.Errorf("mean degree = %.2f, want ≈ %.1f", avg, c.wantAvg)
			}
		})
	}
}

func TestSkewedDegreesClassMembership(t *testing.T) {
	rng := des.NewRNG(7)
	spec := Skewed7030(120)
	degs, err := spec.Degrees(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(degs) != 120 {
		t.Fatalf("got %d degrees", len(degs))
	}
	low, high, other := 0, 0, 0
	for _, d := range degs {
		switch {
		case d >= 1 && d <= 4: // evenize may bump one low node by 1
			low++
		case d == 8 || d == 9:
			high++
		default:
			other++
		}
	}
	if other != 0 {
		t.Errorf("%d degrees outside both classes", other)
	}
	if low < 80 || low > 88 {
		t.Errorf("low-class count = %d, want ≈ 84", low)
	}
	if high < 32 || high > 40 {
		t.Errorf("high-class count = %d, want ≈ 36", high)
	}
}

func TestSkewedDegreeSumEven(t *testing.T) {
	rng := des.NewRNG(3)
	for trial := 0; trial < 100; trial++ {
		degs, err := Skewed7030(61).Degrees(rng) // odd N stresses evenize
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, d := range degs {
			sum += d
		}
		if sum%2 != 0 {
			t.Fatalf("odd degree sum %d", sum)
		}
	}
}

func TestSkewedValidate(t *testing.T) {
	bad := []SkewedSpec{
		{N: 1, FracLow: 0.7, LowMin: 1, LowMax: 3, HighMin: 8, HighMax: 8},
		{N: 120, FracLow: 1.5, LowMin: 1, LowMax: 3, HighMin: 8, HighMax: 8},
		{N: 120, FracLow: 0.7, LowMin: 0, LowMax: 3, HighMin: 8, HighMax: 8},
		{N: 120, FracLow: 0.7, LowMin: 3, LowMax: 1, HighMin: 8, HighMax: 8},
		{N: 120, FracLow: 0.7, LowMin: 1, LowMax: 3, HighMin: 8, HighMax: 7},
		{N: 10, FracLow: 0.7, LowMin: 1, LowMax: 3, HighMin: 8, HighMax: 10},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, s)
		}
	}
	if err := Skewed7030(120).Validate(); err != nil {
		t.Errorf("valid preset rejected: %v", err)
	}
}

func TestFromDegreeSequenceRealizesExactDegrees(t *testing.T) {
	rng := des.NewRNG(5)
	degrees := []int{3, 3, 2, 2, 2, 2, 1, 1} // sum 16, realizable
	nw, err := FromDegreeSequence(degrees, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Connected() {
		t.Fatal("result not connected")
	}
	for i, want := range degrees {
		if got := nw.Degree(i); got != want && got != want-1 && got != want+1 {
			t.Errorf("node %d degree = %d, want %d (±1 repair tolerance)", i, got, want)
		}
	}
}

func TestFromDegreeSequenceRejectsBadInput(t *testing.T) {
	rng := des.NewRNG(5)
	if _, err := FromDegreeSequence([]int{1}, rng); err == nil {
		t.Error("single node accepted")
	}
	if _, err := FromDegreeSequence([]int{1, 2}, rng); err == nil {
		t.Error("odd sum accepted")
	}
	if _, err := FromDegreeSequence([]int{5, 1, 1, 1}, rng); err == nil {
		t.Error("degree >= n accepted")
	}
	if _, err := FromDegreeSequence([]int{-1, 1, 1, 1}, rng); err == nil {
		t.Error("negative degree accepted")
	}
}

func TestFromDegreeSequencePaperScale(t *testing.T) {
	rng := des.NewRNG(11)
	spec := Skewed7030(120)
	degrees, err := spec.Degrees(rng)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := FromDegreeSequence(degrees, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Connected() {
		t.Fatal("not connected")
	}
	if math.Abs(nw.AvgDegree()-3.8) > 0.4 {
		t.Errorf("avg degree = %.2f, want ≈ 3.8", nw.AvgDegree())
	}
	// No self-loops or duplicates possible by construction; verify degree
	// conservation within repair tolerance.
	deficit := 0
	for i, want := range degrees {
		deficit += abs(nw.Degree(i) - want)
	}
	if deficit > len(degrees)/10 {
		t.Errorf("total degree deviation %d too large", deficit)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestPowerLawGammaForAvg(t *testing.T) {
	gamma, err := PowerLawGammaForAvg(3.4, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Verify by computing the implied mean.
	num, den := 0.0, 0.0
	for d := 1; d <= 40; d++ {
		w := math.Pow(float64(d), -gamma)
		num += float64(d) * w
		den += w
	}
	if math.Abs(num/den-3.4) > 0.01 {
		t.Errorf("gamma %.3f gives mean %.3f, want 3.4", gamma, num/den)
	}
}

func TestPowerLawGammaForAvgRejectsOutOfRange(t *testing.T) {
	if _, err := PowerLawGammaForAvg(0.5, 1, 40); err == nil {
		t.Error("avg below min accepted")
	}
	if _, err := PowerLawGammaForAvg(41, 1, 40); err == nil {
		t.Error("avg above max accepted")
	}
}

func TestInternetLikeDegreesMatchPaperShape(t *testing.T) {
	rng := des.NewRNG(13)
	var all []int
	for trial := 0; trial < 30; trial++ {
		degs, err := InternetLikeDegrees(120, 3.4, 40, rng)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, degs...)
	}
	sum, below4, over := 0, 0, 0
	for _, d := range all {
		sum += d
		if d < 4 {
			below4++
		}
		if d > 40 {
			over++
		}
	}
	if over > 0 {
		t.Errorf("%d degrees exceed the cap 40", over)
	}
	avg := float64(sum) / float64(len(all))
	if math.Abs(avg-3.4) > 0.3 {
		t.Errorf("avg = %.2f, want ≈ 3.4", avg)
	}
	// Paper: "about 70% of the ASes were connected to less than 4 other ASes".
	frac := float64(below4) / float64(len(all))
	if frac < 0.55 || frac > 0.9 {
		t.Errorf("fraction with degree < 4 = %.2f, want ≈ 0.7", frac)
	}
}

func TestPowerLawDegreesValidation(t *testing.T) {
	rng := des.NewRNG(1)
	for _, c := range []struct {
		n, min, max int
		gamma       float64
	}{
		{1, 1, 40, 2}, {120, 0, 40, 2}, {120, 41, 40, 2}, {120, 1, 40, 0},
	} {
		if _, err := PowerLawDegrees(c.n, c.gamma, c.min, c.max, rng); err == nil {
			t.Errorf("invalid power-law params accepted: %+v", c)
		}
	}
}

// Property: any random realizable-ish degree sequence either errors or
// produces a simple connected graph with near-matching degrees.
func TestPropertyFromDegreeSequence(t *testing.T) {
	rng := des.NewRNG(17)
	f := func(seed int64) bool {
		local := des.NewRNG(seed)
		n := 10 + local.Intn(60)
		degrees := make([]int, n)
		for i := range degrees {
			degrees[i] = 1 + local.Intn(5)
		}
		evenizeDegrees(degrees)
		nw, err := FromDegreeSequence(degrees, rng)
		if err != nil {
			return true // rejection is allowed; silent corruption is not
		}
		if !nw.Connected() {
			return false
		}
		// Simplicity is enforced by AddLink; check degree tolerance.
		for i, want := range degrees {
			if abs(nw.Degree(i)-want) > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
