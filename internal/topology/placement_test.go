package topology

import (
	"testing"

	"bgpsim/internal/des"
)

func TestPlaceUniformWithinGrid(t *testing.T) {
	nw := NewNetwork(200)
	PlaceUniform(nw, des.NewRNG(1))
	g := nw.Grid()
	for i := 0; i < nw.NumNodes(); i++ {
		p := nw.Node(i).Pos
		if p.X < 0 || p.X > g || p.Y < 0 || p.Y > g {
			t.Fatalf("node %d at %v outside grid", i, p)
		}
	}
}

func TestPlaceClusteredStaysOnGridAndClusters(t *testing.T) {
	nw := NewNetwork(300)
	PlaceClustered(nw, 3, 50, des.NewRNG(2))
	g := nw.Grid()
	for i := 0; i < nw.NumNodes(); i++ {
		p := nw.Node(i).Pos
		if p.X < 0 || p.X > g || p.Y < 0 || p.Y > g {
			t.Fatalf("node %d at %v outside grid", i, p)
		}
	}
	// Clustered placement concentrates mass: the mean pairwise distance
	// must be clearly below the uniform expectation (~0.52 * grid).
	uniform := NewNetwork(300)
	PlaceUniform(uniform, des.NewRNG(2))
	if c, u := meanPairDist(nw), meanPairDist(uniform); c >= u {
		t.Errorf("clustered mean pair distance %.1f >= uniform %.1f", c, u)
	}
	// k < 1 is clamped, not a crash.
	PlaceClustered(nw, 0, 50, des.NewRNG(3))
}

func meanPairDist(nw *Network) float64 {
	sum, n := 0.0, 0
	for i := 0; i < nw.NumNodes(); i += 7 {
		for j := i + 1; j < nw.NumNodes(); j += 7 {
			sum += nw.Node(i).Pos.Dist(nw.Node(j).Pos)
			n++
		}
	}
	return sum / float64(n)
}

func TestGridCenter(t *testing.T) {
	nw := NewNetwork(1)
	c := GridCenter(nw)
	if c.X != DefaultGrid/2 || c.Y != DefaultGrid/2 {
		t.Errorf("center = %v", c)
	}
	nw.SetGrid(400)
	if c := GridCenter(nw); c.X != 200 || c.Y != 200 {
		t.Errorf("center after SetGrid = %v", c)
	}
}

func TestNearestNodesOrderingAndFilter(t *testing.T) {
	nw := NewNetwork(4)
	nw.SetPos(0, Point{X: 0, Y: 0})
	nw.SetPos(1, Point{X: 10, Y: 0})
	nw.SetPos(2, Point{X: 20, Y: 0})
	nw.SetPos(3, Point{X: 30, Y: 0})
	got := NearestNodes(nw, Point{X: 0, Y: 0}, 2, nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("nearest = %v", got)
	}
	// Alive filter skips dead nodes.
	alive := []bool{false, true, true, true}
	got = NearestNodes(nw, Point{X: 0, Y: 0}, 2, alive)
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("filtered nearest = %v", got)
	}
	// k beyond the population clamps.
	if got := NearestNodes(nw, Point{}, 99, alive); len(got) != 3 {
		t.Errorf("clamped = %v", got)
	}
}

func TestNearestNodesTieBreaksByID(t *testing.T) {
	nw := NewNetwork(3)
	for i := 0; i < 3; i++ {
		nw.SetPos(i, Point{X: 5, Y: 5}) // identical positions
	}
	got := NearestNodes(nw, Point{X: 5, Y: 5}, 3, nil)
	for i, id := range got {
		if id != i {
			t.Fatalf("tie-break not by id: %v", got)
		}
	}
}

func TestPlaceInSquareClipsToGrid(t *testing.T) {
	nw := NewNetwork(50)
	ids := make([]int, 50)
	for i := range ids {
		ids[i] = i
	}
	// Square centered at the corner: placements must clip at 0.
	PlaceInSquare(nw, ids, Point{X: 0, Y: 0}, 400, des.NewRNG(4))
	for _, id := range ids {
		p := nw.Node(id).Pos
		if p.X < 0 || p.Y < 0 || p.X > 200 || p.Y > 200 {
			t.Fatalf("node %d at %v outside clipped corner square", id, p)
		}
	}
}
