package topology

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"bgpsim/internal/des"
)

// SkewedSpec describes a two-class ("skewed") degree distribution: a
// fraction of low-degree nodes with degrees drawn uniformly from
// [LowMin, LowMax], and the rest high-degree nodes with degrees from
// {HighMin, ..., HighMax} mixed to hit TargetAvg when TargetAvg > 0.
//
// This is the paper's primary topology family: "70% of the nodes had low
// degree and the remaining 30% had higher degree."
type SkewedSpec struct {
	N         int
	FracLow   float64
	LowMin    int
	LowMax    int
	HighMin   int
	HighMax   int
	TargetAvg float64
}

// Validate checks the spec for internal consistency.
func (s SkewedSpec) Validate() error {
	switch {
	case s.N < 2:
		return fmt.Errorf("topology: skewed N=%d, need >= 2", s.N)
	case s.FracLow < 0 || s.FracLow > 1:
		return fmt.Errorf("topology: skewed FracLow=%v outside [0,1]", s.FracLow)
	case s.LowMin < 1 || s.LowMax < s.LowMin:
		return fmt.Errorf("topology: skewed low range [%d,%d] invalid", s.LowMin, s.LowMax)
	case s.HighMin < 1 || s.HighMax < s.HighMin:
		return fmt.Errorf("topology: skewed high range [%d,%d] invalid", s.HighMin, s.HighMax)
	case s.HighMax >= s.N:
		return fmt.Errorf("topology: skewed HighMax=%d >= N=%d", s.HighMax, s.N)
	}
	return nil
}

// The paper's four skewed presets, all on the 1000×1000 grid. Average
// degrees: 3.8 for the first three, 7.6 for the dense variant.

// Skewed7030 is the paper's default: 70% of nodes with degree 1–3,
// 30% with degree 8 (average 3.8).
func Skewed7030(n int) SkewedSpec {
	return SkewedSpec{N: n, FracLow: 0.70, LowMin: 1, LowMax: 3, HighMin: 8, HighMax: 8, TargetAvg: 3.8}
}

// Skewed5050 is 50% degree 1–3, 50% degree 5 or 6 (average 3.8).
func Skewed5050(n int) SkewedSpec {
	return SkewedSpec{N: n, FracLow: 0.50, LowMin: 1, LowMax: 3, HighMin: 5, HighMax: 6, TargetAvg: 3.8}
}

// Skewed8515 is 85% degree 1–3, 15% degree 14 (average 3.8).
func Skewed8515(n int) SkewedSpec {
	return SkewedSpec{N: n, FracLow: 0.85, LowMin: 1, LowMax: 3, HighMin: 14, HighMax: 14, TargetAvg: 3.8}
}

// Skewed5050Dense is 50% degree 1–3, 50% degree 13 or 14 (average 7.6),
// the higher-average-degree topology of Fig 5.
func Skewed5050Dense(n int) SkewedSpec {
	return SkewedSpec{N: n, FracLow: 0.50, LowMin: 1, LowMax: 3, HighMin: 13, HighMax: 14, TargetAvg: 7.6}
}

// Degrees draws a degree sequence from the spec. The sum is forced even so
// a graph realization exists.
func (s SkewedSpec) Degrees(rng *des.RNG) ([]int, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	nLow := int(math.Round(float64(s.N) * s.FracLow))
	if nLow > s.N {
		nLow = s.N
	}
	nHigh := s.N - nLow
	degrees := make([]int, 0, s.N)
	lowSum := 0
	for i := 0; i < nLow; i++ {
		d := s.LowMin + rng.Intn(s.LowMax-s.LowMin+1)
		degrees = append(degrees, d)
		lowSum += d
	}
	// Pick the high-class mix. With TargetAvg set, choose the fraction of
	// HighMax draws so the expected overall average matches.
	pHigh := 0.5
	if s.TargetAvg > 0 && nHigh > 0 && s.HighMax > s.HighMin {
		lowMean := float64(s.LowMin+s.LowMax) / 2
		needHighMean := (s.TargetAvg*float64(s.N) - lowMean*float64(nLow)) / float64(nHigh)
		pHigh = (needHighMean - float64(s.HighMin)) / float64(s.HighMax-s.HighMin)
		pHigh = math.Max(0, math.Min(1, pHigh))
	}
	for i := 0; i < nHigh; i++ {
		d := s.HighMin
		if s.HighMax > s.HighMin && rng.Float64() < pHigh {
			d = s.HighMax
		}
		degrees = append(degrees, d)
		_ = lowSum
	}
	evenizeDegrees(degrees)
	return degrees, nil
}

// evenizeDegrees bumps one entry so the degree sum is even.
func evenizeDegrees(degrees []int) {
	sum := 0
	for _, d := range degrees {
		sum += d
	}
	if sum%2 == 1 {
		degrees[0]++
	}
}

// PowerLawDegrees draws n degrees from a bounded discrete power law
// P(d) ∝ d^-gamma for d in [min, max].
func PowerLawDegrees(n int, gamma float64, min, max int, rng *des.RNG) ([]int, error) {
	if n < 2 || min < 1 || max < min || gamma <= 0 {
		return nil, fmt.Errorf("topology: power law params n=%d gamma=%v range [%d,%d]", n, gamma, min, max)
	}
	// Build the CDF once.
	weights := make([]float64, max-min+1)
	total := 0.0
	for d := min; d <= max; d++ {
		w := math.Pow(float64(d), -gamma)
		weights[d-min] = w
		total += w
	}
	degrees := make([]int, n)
	for i := range degrees {
		u := rng.Float64() * total
		acc := 0.0
		degrees[i] = max
		for d := min; d <= max; d++ {
			acc += weights[d-min]
			if u < acc {
				degrees[i] = d
				break
			}
		}
	}
	evenizeDegrees(degrees)
	return degrees, nil
}

// PowerLawGammaForAvg solves (by bisection) for the exponent gamma such
// that a bounded power law on [min, max] has the requested mean degree.
func PowerLawGammaForAvg(avg float64, min, max int) (float64, error) {
	if avg <= float64(min) || avg >= float64(max) {
		return 0, fmt.Errorf("topology: target avg %v outside (%d,%d)", avg, min, max)
	}
	mean := func(gamma float64) float64 {
		num, den := 0.0, 0.0
		for d := min; d <= max; d++ {
			w := math.Pow(float64(d), -gamma)
			num += float64(d) * w
			den += w
		}
		return num / den
	}
	lo, hi := 0.01, 10.0 // mean(lo) ≈ uniform-high, mean(hi) ≈ min
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if mean(mid) > avg {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// InternetLikeDegrees draws a degree sequence shaped like the measured
// Internet AS connectivity the paper cites: heavy-tailed, capped at
// maxDegree (the paper uses 40 for 120-node networks), with the exponent
// chosen to hit avgDegree (the paper reports ≈3.4).
func InternetLikeDegrees(n int, avgDegree float64, maxDegree int, rng *des.RNG) ([]int, error) {
	gamma, err := PowerLawGammaForAvg(avgDegree, 1, maxDegree)
	if err != nil {
		return nil, err
	}
	return PowerLawDegrees(n, gamma, 1, maxDegree, rng)
}

// ErrDegreeSequence is returned when a degree sequence cannot be realized
// as a simple graph even after rewiring.
var ErrDegreeSequence = errors.New("topology: degree sequence not realizable")

// FromDegreeSequence realizes a degree sequence as a simple connected
// graph using the configuration model with edge-swap repair:
//
//  1. pair random stubs; retry pairings that would create self-loops or
//     duplicate links via degree-preserving edge swaps;
//  2. merge connected components with degree-preserving double swaps.
//
// If a handful of stubs cannot be placed the corresponding degrees fall
// short by one — the same tolerance BRITE exhibits — but the result is
// always simple and connected.
func FromDegreeSequence(degrees []int, rng *des.RNG) (*Network, error) {
	n := len(degrees)
	if n < 2 {
		return nil, fmt.Errorf("topology: need >= 2 nodes, got %d", n)
	}
	sum := 0
	for i, d := range degrees {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("topology: degree %d at node %d out of range", d, i)
		}
		sum += d
	}
	if sum%2 == 1 {
		return nil, fmt.Errorf("topology: odd degree sum %d", sum)
	}

	nw := NewNetwork(n)
	stubs := make([]int, 0, sum)
	for i, d := range degrees {
		for k := 0; k < d; k++ {
			stubs = append(stubs, i)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	var deferred [][2]int
	for i := 0; i+1 < len(stubs); i += 2 {
		a, b := stubs[i], stubs[i+1]
		if a == b || nw.HasLink(a, b) {
			deferred = append(deferred, [2]int{a, b})
			continue
		}
		if err := nw.AddLink(a, b, false); err != nil {
			return nil, err
		}
	}
	// Resolve deferred pairs by swapping with a random existing link:
	// (a,b) bad + existing (c,d) -> (a,c) and (b,d).
	for _, pair := range deferred {
		if !trySwapIn(nw, pair[0], pair[1], rng) {
			// Unplaceable stub pair: tolerate a degree deficit of one at
			// each endpoint rather than failing the whole build.
			continue
		}
	}
	if err := Connect(nw, rng); err != nil {
		return nil, err
	}
	return nw, nil
}

// trySwapIn inserts the stub pair (a,b) by swapping with random existing
// links, preserving all degrees. Returns false after bounded attempts.
func trySwapIn(nw *Network, a, b int, rng *des.RNG) bool {
	links := nw.Links()
	if len(links) == 0 {
		return false
	}
	for attempt := 0; attempt < 200; attempt++ {
		l := links[rng.Intn(len(links))]
		c, d := l.A, l.B
		if rng.Intn(2) == 0 {
			c, d = d, c
		}
		if a == c || a == d || b == c || b == d {
			continue
		}
		if nw.HasLink(a, c) || nw.HasLink(b, d) || !nw.HasLink(c, d) {
			continue
		}
		nw.RemoveLink(c, d)
		mustAdd(nw, a, c, false)
		mustAdd(nw, b, d, false)
		return true
	}
	return false
}

func mustAdd(nw *Network, a, b int, internal bool) {
	if err := nw.AddLink(a, b, internal); err != nil {
		panic(fmt.Sprintf("topology: internal error adding checked link: %v", err))
	}
}

// Connect merges the components of nw into one using degree-preserving
// double edge swaps where possible, falling back to adding a single link
// for edgeless components (degree deviation of one).
func Connect(nw *Network, rng *des.RNG) error {
	for guard := 0; guard < nw.NumNodes()+10; guard++ {
		comps := nw.Components()
		if len(comps) <= 1 {
			return nil
		}
		main, other := comps[0], comps[1]
		if !mergeComponents(nw, main, other, rng) {
			return ErrDegreeSequence
		}
	}
	if !nw.Connected() {
		return ErrDegreeSequence
	}
	return nil
}

// mergeComponents joins other into main. It prefers the degree-preserving
// swap (a,b)+(c,d) -> (a,c)+(b,d) with (a,b) in main and (c,d) in other;
// if other has no links (isolated node), it adds one link.
func mergeComponents(nw *Network, main, other []int, rng *des.RNG) bool {
	mainLinks := linksWithin(nw, main)
	otherLinks := linksWithin(nw, other)
	if len(otherLinks) == 0 || len(mainLinks) == 0 {
		// Isolated node or edgeless component: attach it directly.
		a := other[rng.Intn(len(other))]
		for attempt := 0; attempt < 50; attempt++ {
			b := main[rng.Intn(len(main))]
			if !nw.HasLink(a, b) {
				mustAdd(nw, a, b, false)
				return true
			}
		}
		return false
	}
	for attempt := 0; attempt < 200; attempt++ {
		l1 := mainLinks[rng.Intn(len(mainLinks))]
		l2 := otherLinks[rng.Intn(len(otherLinks))]
		a, b, c, d := l1.A, l1.B, l2.A, l2.B
		if nw.HasLink(a, c) || nw.HasLink(b, d) {
			continue
		}
		nw.RemoveLink(a, b)
		nw.RemoveLink(c, d)
		mustAdd(nw, a, c, false)
		mustAdd(nw, b, d, false)
		return true
	}
	return false
}

func linksWithin(nw *Network, comp []int) []Neighbor2 {
	in := make(map[int]struct{}, len(comp))
	for _, v := range comp {
		in[v] = struct{}{}
	}
	var out []Neighbor2
	for _, v := range comp {
		for _, nb := range nw.Neighbors(v) {
			if v < nb.ID {
				if _, ok := in[nb.ID]; ok {
					out = append(out, Neighbor2{A: v, B: nb.ID, Internal: nb.Internal})
				}
			}
		}
	}
	return out
}

// SortedDegrees returns the degree sequence of nw in descending order.
func SortedDegrees(nw *Network) []int {
	out := make([]int, nw.NumNodes())
	for i := range out {
		out[i] = nw.Degree(i)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
