package topology

// Partition assigns every node of nw to one of k shards and returns the
// assignment (assign[node] = shard). It is the graph partitioner behind
// the sharded simulation engine: shards are balanced to within one node
// and grown by breadth-first accretion so that neighboring routers land
// in the same shard where possible, minimizing the cut links whose
// messages must cross shard boundaries at lookahead barriers.
//
// The heuristic is deterministic — identical input always yields the
// identical assignment, a requirement for reproducible sharded runs:
//
//   - Shards are filled one at a time to a balanced capacity
//     (ceil(remaining nodes / remaining shards)).
//   - Each growth starts from the unassigned node with the smallest
//     (degree, ID) — a peripheral node, so regions grow inward rather
//     than splitting hubs early.
//   - The next node added is always the unassigned neighbor with the
//     most links into the growing shard (ties: smallest ID), the greedy
//     step that keeps the cut small.
//   - When the frontier dries up before the shard is full (disconnected
//     graph or exhausted region), growth restarts from a fresh seed in
//     the same shard.
//
// k <= 1 returns the all-zero assignment. k > NumNodes leaves the
// excess shards empty.
func Partition(nw *Network, k int) []int {
	n := nw.NumNodes()
	assign := make([]int, n)
	if k <= 1 || n == 0 {
		return assign
	}
	for i := range assign {
		assign[i] = -1
	}
	// gain[v] = number of v's neighbors already in the shard being grown.
	gain := make([]int, n)
	inFrontier := make([]bool, n)
	var frontier []int
	remaining := n
	for sh := 0; sh < k && remaining > 0; sh++ {
		quota := (remaining + (k - sh) - 1) / (k - sh)
		// Reset per-shard growth state.
		frontier = frontier[:0]
		for i := range gain {
			gain[i], inFrontier[i] = 0, false
		}
		size := 0
		for size < quota {
			v := -1
			if len(frontier) > 0 {
				// Greedy step: most internal links, then smallest ID. The
				// frontier is scanned in full — it only holds unassigned
				// nodes adjacent to the shard, a small set.
				best, bi := -1, -1
				for i, f := range frontier {
					if assign[f] != -1 {
						continue // claimed earlier this shard via another path
					}
					if best == -1 || gain[f] > gain[best] || (gain[f] == gain[best] && f < best) {
						best, bi = f, i
					}
				}
				if best != -1 {
					v = best
					frontier[bi] = frontier[len(frontier)-1]
					frontier = frontier[:len(frontier)-1]
					inFrontier[v] = false
				} else {
					frontier = frontier[:0]
				}
			}
			if v == -1 {
				// Fresh seed: smallest (degree, ID) among unassigned nodes.
				for i := 0; i < n; i++ {
					if assign[i] != -1 {
						continue
					}
					if v == -1 || nw.Degree(i) < nw.Degree(v) {
						v = i
					}
				}
				if v == -1 {
					break // nothing left anywhere
				}
			}
			assign[v] = sh
			size++
			remaining--
			for _, nb := range nw.Neighbors(v) {
				if assign[nb.ID] != -1 {
					continue
				}
				gain[nb.ID]++
				if !inFrontier[nb.ID] {
					inFrontier[nb.ID] = true
					frontier = append(frontier, nb.ID)
				}
			}
		}
	}
	return assign
}

// CutEdges counts the links of nw whose endpoints fall in different
// shards under assign — the links whose traffic must cross a shard
// boundary in a sharded run. assign must cover every node.
func CutEdges(nw *Network, assign []int) int {
	cut := 0
	for a := 0; a < nw.NumNodes(); a++ {
		for _, nb := range nw.Neighbors(a) {
			if a < nb.ID && assign[a] != assign[nb.ID] {
				cut++
			}
		}
	}
	return cut
}
