package topology

import (
	"math"
	"testing"

	"bgpsim/internal/des"
)

func triangle(t *testing.T) *Network {
	t.Helper()
	nw := NewNetwork(3)
	for _, l := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := nw.AddLink(l[0], l[1], false); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: fully clustered.
	if got := ClusteringCoefficient(triangle(t)); got != 1 {
		t.Errorf("triangle clustering = %v, want 1", got)
	}
	// Star: no neighbor of the hub is adjacent to another.
	star := NewNetwork(4)
	for i := 1; i < 4; i++ {
		_ = star.AddLink(0, i, false)
	}
	if got := ClusteringCoefficient(star); got != 0 {
		t.Errorf("star clustering = %v, want 0", got)
	}
	// Triangle plus a pendant: node 0 has neighbors {1,2,3}; only the
	// 1-2 pair of its three neighbor pairs is linked -> local c = 1/3.
	// Nodes 1,2 keep c=1, node 3 has degree 1 (skipped).
	tp := triangle(t)
	// grow
	tp2 := NewNetwork(4)
	for _, l := range tp.Links() {
		_ = tp2.AddLink(l.A, l.B, false)
	}
	_ = tp2.AddLink(0, 3, false)
	want := (1.0/3 + 1 + 1) / 3
	if got := ClusteringCoefficient(tp2); math.Abs(got-want) > 1e-12 {
		t.Errorf("clustering = %v, want %v", got, want)
	}
	if got := ClusteringCoefficient(NewNetwork(2)); got != 0 {
		t.Errorf("edgeless clustering = %v", got)
	}
}

func TestPathLengthStats(t *testing.T) {
	// Path 0-1-2: distances 1,1,2 (each direction) -> avg 4/3, diameter 2.
	nw := NewNetwork(3)
	_ = nw.AddLink(0, 1, false)
	_ = nw.AddLink(1, 2, false)
	avg, diam := PathLengthStats(nw)
	if math.Abs(avg-4.0/3) > 1e-12 {
		t.Errorf("avg = %v, want 4/3", avg)
	}
	if diam != 2 {
		t.Errorf("diameter = %d, want 2", diam)
	}
	// Disconnected pairs are excluded.
	nw2 := NewNetwork(4)
	_ = nw2.AddLink(0, 1, false)
	_ = nw2.AddLink(2, 3, false)
	avg, diam = PathLengthStats(nw2)
	if avg != 1 || diam != 1 {
		t.Errorf("disconnected stats = %v/%d, want 1/1", avg, diam)
	}
	if avg, diam := PathLengthStats(NewNetwork(3)); avg != 0 || diam != 0 {
		t.Error("empty-graph stats nonzero")
	}
}

func TestDegreeAssortativity(t *testing.T) {
	// A star is maximally disassortative (hub-leaf only).
	star := NewNetwork(5)
	for i := 1; i < 5; i++ {
		_ = star.AddLink(0, i, false)
	}
	if got := DegreeAssortativity(star); got >= 0 {
		t.Errorf("star assortativity = %v, want negative", got)
	}
	// A cycle is degree-regular: zero variance -> defined as 0.
	ring := NewNetwork(4)
	for i := 0; i < 4; i++ {
		_ = ring.AddLink(i, (i+1)%4, false)
	}
	if got := DegreeAssortativity(ring); got != 0 {
		t.Errorf("ring assortativity = %v, want 0", got)
	}
	if got := DegreeAssortativity(NewNetwork(3)); got != 0 {
		t.Errorf("empty assortativity = %v", got)
	}
}

func TestDegreeEntropy(t *testing.T) {
	// Regular graph: single degree value -> zero entropy.
	ring := NewNetwork(4)
	for i := 0; i < 4; i++ {
		_ = ring.AddLink(i, (i+1)%4, false)
	}
	if got := DegreeEntropy(ring); got != 0 {
		t.Errorf("ring entropy = %v", got)
	}
	// Half degree-1, half degree-3: entropy 1 bit.
	nw := NewNetwork(4)
	_ = nw.AddLink(0, 1, false)
	_ = nw.AddLink(0, 2, false)
	_ = nw.AddLink(0, 3, false)
	_ = nw.AddLink(1, 2, false)
	_ = nw.AddLink(1, 3, false)
	_ = nw.AddLink(2, 3, false)
	// K4 is regular; use a different construction: star of 3 + isolated-ish
	st := NewNetwork(4)
	_ = st.AddLink(0, 1, false)
	_ = st.AddLink(0, 2, false)
	_ = st.AddLink(0, 3, false)
	// degrees: 3,1,1,1 -> p(3)=1/4, p(1)=3/4
	want := -(0.25*math.Log2(0.25) + 0.75*math.Log2(0.75))
	if got := DegreeEntropy(st); math.Abs(got-want) > 1e-12 {
		t.Errorf("entropy = %v, want %v", got, want)
	}
	if got := DegreeEntropy(NewNetwork(0)); got != 0 {
		t.Error("empty entropy nonzero")
	}
}

func TestMetricsOnPaperTopology(t *testing.T) {
	rng := des.NewRNG(5)
	nw, err := SkewedNetwork(Skewed7030(120), rng)
	if err != nil {
		t.Fatal(err)
	}
	m := Metrics(nw)
	if m.Nodes != 120 || !m.Connected {
		t.Fatalf("basic metrics wrong: %+v", m)
	}
	if m.AvgDegree < 3.3 || m.AvgDegree > 4.3 {
		t.Errorf("avg degree = %v", m.AvgDegree)
	}
	// Skewed two-class topologies are disassortative: hubs soak up leaves.
	if m.Assortativity >= 0 {
		t.Errorf("assortativity = %v, want negative (hub-leaf structure)", m.Assortativity)
	}
	if m.AvgPathLength <= 1 || m.Diameter < 3 {
		t.Errorf("path stats implausible: avg=%v diam=%d", m.AvgPathLength, m.Diameter)
	}
	if m.DegreeEntropy <= 0 {
		t.Errorf("entropy = %v", m.DegreeEntropy)
	}
	if m.ExternalLinks != m.Links || m.InternalLinks != 0 {
		t.Errorf("link classification wrong: %+v", m)
	}
}

func TestMetricsCountsInternalLinks(t *testing.T) {
	rng := des.NewRNG(7)
	spec := DefaultRealistic(15)
	spec.MaxASSize = 4
	nw, err := Realistic(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := Metrics(nw)
	if m.InternalLinks == 0 {
		t.Error("realistic topology reported no IBGP links")
	}
	if m.InternalLinks+m.ExternalLinks != m.Links {
		t.Error("link partition does not sum")
	}
}
