package topology

import (
	"bytes"
	"math"
	"testing"

	"bgpsim/internal/des"
)

func TestWaxmanConnectedAndPlaced(t *testing.T) {
	rng := des.NewRNG(1)
	nw, err := Waxman(WaxmanSpec{N: 100, Alpha: 0.15, Beta: 0.2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Connected() {
		t.Fatal("not connected")
	}
	if nw.NumNodes() != 100 {
		t.Fatalf("nodes = %d", nw.NumNodes())
	}
	assertPlacedOnGrid(t, nw)
}

func TestWaxmanValidation(t *testing.T) {
	rng := des.NewRNG(1)
	for _, s := range []WaxmanSpec{
		{N: 1, Alpha: 0.15, Beta: 0.2},
		{N: 100, Alpha: 0, Beta: 0.2},
		{N: 100, Alpha: 1.5, Beta: 0.2},
		{N: 100, Alpha: 0.15, Beta: 0},
	} {
		if _, err := Waxman(s, rng); err == nil {
			t.Errorf("invalid spec accepted: %+v", s)
		}
	}
}

func TestBarabasiAlbertDegreesAndConnectivity(t *testing.T) {
	rng := des.NewRNG(2)
	nw, err := BarabasiAlbert(BarabasiAlbertSpec{N: 200, M: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Connected() {
		t.Fatal("not connected")
	}
	// Average degree ≈ 2M.
	if math.Abs(nw.AvgDegree()-4) > 0.5 {
		t.Errorf("avg degree = %.2f, want ≈ 4", nw.AvgDegree())
	}
	// Preferential attachment must produce hubs well above the average.
	if nw.MaxDegree() < 10 {
		t.Errorf("max degree = %d; expected hubs from preferential attachment", nw.MaxDegree())
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	rng := des.NewRNG(1)
	for _, s := range []BarabasiAlbertSpec{{N: 1, M: 1}, {N: 10, M: 0}, {N: 10, M: 10}} {
		if _, err := BarabasiAlbert(s, rng); err == nil {
			t.Errorf("invalid spec accepted: %+v", s)
		}
	}
}

func TestGLPProducesHeavyTail(t *testing.T) {
	rng := des.NewRNG(3)
	nw, err := GLP(GLPSpec{N: 200, M: 1, P: 0.45, Beta: 0.64}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Connected() {
		t.Fatal("not connected")
	}
	if nw.NumNodes() != 200 {
		t.Fatalf("nodes = %d", nw.NumNodes())
	}
	if nw.MaxDegree() < 8 {
		t.Errorf("max degree = %d; expected heavy tail", nw.MaxDegree())
	}
}

func TestGLPValidation(t *testing.T) {
	rng := des.NewRNG(1)
	for _, s := range []GLPSpec{
		{N: 2, M: 1, P: 0.4, Beta: 0.5},
		{N: 100, M: 0, P: 0.4, Beta: 0.5},
		{N: 100, M: 1, P: 1.0, Beta: 0.5},
		{N: 100, M: 1, P: -0.1, Beta: 0.5},
		{N: 100, M: 1, P: 0.4, Beta: 1.0},
	} {
		if _, err := GLP(s, rng); err == nil {
			t.Errorf("invalid spec accepted: %+v", s)
		}
	}
}

func TestSkewedNetworkEndToEnd(t *testing.T) {
	rng := des.NewRNG(4)
	nw, err := SkewedNetwork(Skewed7030(120), rng)
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Connected() {
		t.Fatal("not connected")
	}
	if math.Abs(nw.AvgDegree()-3.8) > 0.4 {
		t.Errorf("avg degree = %.2f", nw.AvgDegree())
	}
	assertPlacedOnGrid(t, nw)
}

func TestInternetLikeNetworkEndToEnd(t *testing.T) {
	rng := des.NewRNG(5)
	nw, err := InternetLikeNetwork(120, 3.4, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Connected() {
		t.Fatal("not connected")
	}
	if nw.MaxDegree() > 40 {
		t.Errorf("max degree %d exceeds cap", nw.MaxDegree())
	}
}

func TestSpecBuildAllKinds(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			rng := des.NewRNG(6)
			spec := Spec{Kind: kind, N: 60}
			if kind == KindRealistic {
				spec.MaxASSize = 5 // keep the test fast
			}
			nw, err := spec.Build(rng)
			if err != nil {
				t.Fatal(err)
			}
			if !nw.Connected() {
				t.Error("not connected")
			}
		})
	}
}

func TestSpecBuildUnknownKind(t *testing.T) {
	rng := des.NewRNG(1)
	if _, err := (Spec{Kind: "nope", N: 10}).Build(rng); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSpecBuildCustomSkewed(t *testing.T) {
	rng := des.NewRNG(9)
	spec := Spec{N: 60, Skewed: &SkewedSpec{FracLow: 0.5, LowMin: 1, LowMax: 2, HighMin: 4, HighMax: 4}}
	nw, err := spec.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumNodes() != 60 {
		t.Errorf("nodes = %d, want 60 (N inherited)", nw.NumNodes())
	}
}

func TestSpecBuildDeterministicForSeed(t *testing.T) {
	build := func() *Network {
		rng := des.NewRNG(42)
		nw, err := Spec{Kind: KindSkewed7030, N: 60}.Build(rng)
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}
	a, b := build(), build()
	var bufA, bufB bytes.Buffer
	if err := a.WriteJSON(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("same seed produced different topologies")
	}
}

func assertPlacedOnGrid(t *testing.T, nw *Network) {
	t.Helper()
	g := nw.Grid()
	distinct := make(map[Point]struct{})
	for i := 0; i < nw.NumNodes(); i++ {
		p := nw.Node(i).Pos
		if p.X < 0 || p.X > g || p.Y < 0 || p.Y > g {
			t.Fatalf("node %d at %v outside grid", i, p)
		}
		distinct[p] = struct{}{}
	}
	if len(distinct) < nw.NumNodes()/2 {
		t.Errorf("only %d distinct positions for %d nodes", len(distinct), nw.NumNodes())
	}
}
