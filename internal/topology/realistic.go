package topology

import (
	"fmt"
	"math"
	"sort"

	"bgpsim/internal/des"
)

// RealisticSpec parameterizes the paper's "realistic" topologies
// (Section 4.4, Fig 13): multiple routers per AS with heavy-tailed AS
// sizes, an Internet-derived inter-AS degree distribution capped at
// MaxDegree, the geographic extent of each AS proportional to its size,
// and the highest inter-AS degrees assigned to the largest ASes.
type RealisticSpec struct {
	NumAS     int
	AvgDegree float64 // inter-AS average degree (paper: ≈3.4)
	MaxDegree int     // inter-AS degree cap (paper: 40)
	MinASSize int     // routers per AS, lower bound (paper: 1)
	MaxASSize int     // routers per AS, upper bound (paper: 100)
	SizeAlpha float64 // bounded-Pareto shape for AS sizes
}

// DefaultRealistic mirrors the paper's Fig 13 configuration at a given AS
// count. MaxASSize 100 reproduces the paper exactly but makes IBGP meshes
// large; callers benchmarking repeatedly may scale it down.
func DefaultRealistic(numAS int) RealisticSpec {
	// The paper caps the maximum inter-AS degree at a third of the AS count
	// ("We restricted the maximum degree in the distribution to 40 because
	// we have only 120 ASes"). Scale the cap the same way for other sizes.
	maxDeg := numAS / 3
	if maxDeg > 40 {
		maxDeg = 40
	}
	if maxDeg < 5 {
		maxDeg = 5
	}
	return RealisticSpec{
		NumAS:     numAS,
		AvgDegree: 3.4,
		MaxDegree: maxDeg,
		MinASSize: 1,
		MaxASSize: 100,
		SizeAlpha: 1.2,
	}
}

// Validate checks the spec.
func (s RealisticSpec) Validate() error {
	switch {
	case s.NumAS < 2:
		return fmt.Errorf("topology: realistic NumAS=%d", s.NumAS)
	case s.MaxDegree < 2 || s.MaxDegree >= s.NumAS:
		return fmt.Errorf("topology: realistic MaxDegree=%d with NumAS=%d", s.MaxDegree, s.NumAS)
	case s.AvgDegree <= 1 || s.AvgDegree >= float64(s.MaxDegree):
		return fmt.Errorf("topology: realistic AvgDegree=%v", s.AvgDegree)
	case s.MinASSize < 1 || s.MaxASSize < s.MinASSize:
		return fmt.Errorf("topology: realistic AS size range [%d,%d]", s.MinASSize, s.MaxASSize)
	case s.SizeAlpha <= 0:
		return fmt.Errorf("topology: realistic SizeAlpha=%v", s.SizeAlpha)
	}
	return nil
}

// Realistic builds a router-level network per the spec:
//
//  1. generate the AS-level graph (Internet-like degrees);
//  2. draw heavy-tailed AS sizes and assign the largest sizes to the
//     highest-degree ASes (perfect size↔degree correlation, as the paper
//     assumes);
//  3. place each AS's routers in a square whose area is proportional to
//     the AS size;
//  4. connect routers within an AS as a full IBGP mesh (internal links);
//  5. realize each inter-AS link between randomly chosen border routers.
func Realistic(spec RealisticSpec, rng *des.RNG) (*Network, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	asGraph, err := InternetLikeNetwork(spec.NumAS, spec.AvgDegree, spec.MaxDegree, rng)
	if err != nil {
		return nil, fmt.Errorf("AS graph: %w", err)
	}

	// Heavy-tailed sizes, biggest size -> biggest degree.
	sizes := make([]int, spec.NumAS)
	for i := range sizes {
		sizes[i] = int(math.Round(rng.Pareto(spec.SizeAlpha, float64(spec.MinASSize), float64(spec.MaxASSize))))
		if sizes[i] < spec.MinASSize {
			sizes[i] = spec.MinASSize
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	byDegree := make([]int, spec.NumAS)
	for i := range byDegree {
		byDegree[i] = i
	}
	sort.Slice(byDegree, func(i, j int) bool {
		di, dj := asGraph.Degree(byDegree[i]), asGraph.Degree(byDegree[j])
		if di != dj {
			return di > dj
		}
		return byDegree[i] < byDegree[j]
	})
	asSize := make([]int, spec.NumAS)
	for rank, as := range byDegree {
		asSize[as] = sizes[rank]
	}

	total := 0
	for _, s := range asSize {
		total += s
	}
	nw := NewNetwork(total)
	nw.SetGrid(asGraph.Grid())

	// Router id ranges per AS, placed in a size-proportional square around
	// the AS-level position.
	routersOf := make([][]int, spec.NumAS)
	next := 0
	totalArea := nw.Grid() * nw.Grid()
	for as := 0; as < spec.NumAS; as++ {
		ids := make([]int, asSize[as])
		for k := range ids {
			ids[k] = next
			nw.SetAS(next, as)
			next++
		}
		routersOf[as] = ids
		// Area proportional to size: each router "occupies" an equal share
		// of a fraction of the grid. The 0.25 factor keeps ASes compact
		// relative to the full grid, matching BRITE-style layouts.
		area := 0.25 * totalArea * float64(asSize[as]) / float64(total)
		side := math.Sqrt(area)
		PlaceInSquare(nw, ids, asGraph.Node(as).Pos, side, rng)
		// IBGP full mesh.
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				mustAdd(nw, ids[x], ids[y], true)
			}
		}
	}

	// Inter-AS links between random border routers.
	for _, l := range asGraph.Links() {
		a := routersOf[l.A][rng.Intn(len(routersOf[l.A]))]
		b := routersOf[l.B][rng.Intn(len(routersOf[l.B]))]
		if nw.HasLink(a, b) {
			// Both ASes are singletons already linked via an earlier
			// parallel AS edge; the simple-graph model collapses it.
			continue
		}
		mustAdd(nw, a, b, false)
	}
	return nw, nil
}
