package topology

import (
	"testing"

	"bgpsim/internal/des"
)

func BenchmarkSkewed7030_120(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := des.NewRNG(int64(i + 1))
		if _, err := SkewedNetwork(Skewed7030(120), rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInternetLike_120(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := des.NewRNG(int64(i + 1))
		if _, err := InternetLikeNetwork(120, 3.4, 40, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealistic120AS(b *testing.B) {
	spec := DefaultRealistic(120)
	spec.MaxASSize = 20
	for i := 0; i < b.N; i++ {
		rng := des.NewRNG(int64(i + 1))
		if _, err := Realistic(spec, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaxman200(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := des.NewRNG(int64(i + 1))
		if _, err := Waxman(WaxmanSpec{N: 200, Alpha: 0.15, Beta: 0.2}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarabasiAlbert200(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := des.NewRNG(int64(i + 1))
		if _, err := BarabasiAlbert(BarabasiAlbertSpec{N: 200, M: 2}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBFSHops(b *testing.B) {
	rng := des.NewRNG(1)
	nw, err := SkewedNetwork(Skewed7030(120), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nw.BFSHops(i%nw.NumNodes(), nil)
	}
}

func BenchmarkNearestNodes(b *testing.B) {
	rng := des.NewRNG(1)
	nw, err := SkewedNetwork(Skewed7030(120), rng)
	if err != nil {
		b.Fatal(err)
	}
	center := GridCenter(nw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NearestNodes(nw, center, 24, nil)
	}
}
