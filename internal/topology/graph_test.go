package topology

import (
	"testing"

	"bgpsim/internal/des"
)

func TestNewNetworkBasics(t *testing.T) {
	nw := NewNetwork(5)
	if nw.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d", nw.NumNodes())
	}
	if nw.NumLinks() != 0 {
		t.Fatalf("NumLinks = %d", nw.NumLinks())
	}
	for i := 0; i < 5; i++ {
		if nw.ASOf(i) != i {
			t.Errorf("node %d AS = %d, want %d (AS-level default)", i, nw.ASOf(i), i)
		}
	}
	if nw.Grid() != DefaultGrid {
		t.Errorf("Grid = %v, want %v", nw.Grid(), DefaultGrid)
	}
}

func TestAddLinkRejectsSelfLoopDuplicateAndRange(t *testing.T) {
	nw := NewNetwork(3)
	if err := nw.AddLink(0, 0, false); err == nil {
		t.Error("self-loop accepted")
	}
	if err := nw.AddLink(0, 1, false); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if err := nw.AddLink(1, 0, false); err == nil {
		t.Error("duplicate link accepted (reversed order)")
	}
	if err := nw.AddLink(0, 3, false); err == nil {
		t.Error("out-of-range link accepted")
	}
	if err := nw.AddLink(-1, 0, false); err == nil {
		t.Error("negative id accepted")
	}
	if nw.NumLinks() != 1 {
		t.Errorf("NumLinks = %d, want 1", nw.NumLinks())
	}
}

func TestDegreeAndHasLink(t *testing.T) {
	nw := NewNetwork(4)
	for _, l := range [][2]int{{0, 1}, {0, 2}, {0, 3}} {
		if err := nw.AddLink(l[0], l[1], false); err != nil {
			t.Fatal(err)
		}
	}
	if nw.Degree(0) != 3 {
		t.Errorf("Degree(0) = %d", nw.Degree(0))
	}
	if nw.Degree(1) != 1 {
		t.Errorf("Degree(1) = %d", nw.Degree(1))
	}
	if !nw.HasLink(2, 0) || nw.HasLink(1, 2) {
		t.Error("HasLink wrong")
	}
	if nw.AvgDegree() != 1.5 {
		t.Errorf("AvgDegree = %v, want 1.5", nw.AvgDegree())
	}
}

func TestRemoveLink(t *testing.T) {
	nw := NewNetwork(3)
	_ = nw.AddLink(0, 1, false)
	_ = nw.AddLink(1, 2, false)
	if !nw.RemoveLink(0, 1) {
		t.Fatal("RemoveLink(0,1) = false")
	}
	if nw.HasLink(0, 1) {
		t.Error("link still present")
	}
	if nw.RemoveLink(0, 1) {
		t.Error("second RemoveLink returned true")
	}
	if nw.NumLinks() != 1 {
		t.Errorf("NumLinks = %d, want 1", nw.NumLinks())
	}
	if nw.Degree(1) != 1 {
		t.Errorf("Degree(1) = %d, want 1", nw.Degree(1))
	}
}

func TestExternalDegreeCountsOnlyInterAS(t *testing.T) {
	nw := NewNetwork(3)
	nw.SetAS(1, 0) // node 1 shares AS 0 with node 0
	_ = nw.AddLink(0, 1, true)
	_ = nw.AddLink(0, 2, false)
	if nw.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d", nw.Degree(0))
	}
	if nw.ExternalDegree(0) != 1 {
		t.Errorf("ExternalDegree(0) = %d, want 1", nw.ExternalDegree(0))
	}
}

func TestComponentsAndConnected(t *testing.T) {
	nw := NewNetwork(6)
	_ = nw.AddLink(0, 1, false)
	_ = nw.AddLink(1, 2, false)
	_ = nw.AddLink(3, 4, false)
	comps := nw.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Errorf("component sizes = %d,%d,%d; want 3,2,1 (largest first)",
			len(comps[0]), len(comps[1]), len(comps[2]))
	}
	if nw.Connected() {
		t.Error("Connected() = true for disconnected graph")
	}
	_ = nw.AddLink(2, 3, false)
	_ = nw.AddLink(4, 5, false)
	if !nw.Connected() {
		t.Error("Connected() = false after joining")
	}
}

func TestBFSHops(t *testing.T) {
	// Path 0-1-2-3 plus shortcut 0-3.
	nw := NewNetwork(4)
	_ = nw.AddLink(0, 1, false)
	_ = nw.AddLink(1, 2, false)
	_ = nw.AddLink(2, 3, false)
	_ = nw.AddLink(0, 3, false)
	d := nw.BFSHops(0, nil)
	want := []int{0, 1, 2, 1}
	for i, w := range want {
		if d[i] != w {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], w)
		}
	}
}

func TestBFSHopsWithDeadNodes(t *testing.T) {
	// 0-1-2 with 1 dead: 2 unreachable.
	nw := NewNetwork(3)
	_ = nw.AddLink(0, 1, false)
	_ = nw.AddLink(1, 2, false)
	alive := []bool{true, false, true}
	d := nw.BFSHops(0, alive)
	if d[0] != 0 || d[1] != -1 || d[2] != -1 {
		t.Errorf("dist = %v, want [0 -1 -1]", d)
	}
	// Dead source: everything unreachable.
	d = nw.BFSHops(1, alive)
	for i, v := range d {
		if v != -1 {
			t.Errorf("dead-source dist[%d] = %d", i, v)
		}
	}
}

func TestASGraphHops(t *testing.T) {
	// Two-router AS 0 (nodes 0,1), AS 1 (node 2), AS 2 (node 3).
	// External: 1-2, 2-3. AS hops: AS0->AS1 = 1, AS0->AS2 = 2.
	nw := NewNetwork(4)
	nw.SetAS(1, 0)
	nw.SetAS(2, 1)
	nw.SetAS(3, 2)
	_ = nw.AddLink(0, 1, true)
	_ = nw.AddLink(1, 2, false)
	_ = nw.AddLink(2, 3, false)
	d := nw.ASGraphHops(0, nil)
	if d[0] != 0 || d[1] != 1 || d[2] != 2 {
		t.Errorf("AS hops = %v", d)
	}
	// Kill node 2 (all of AS 1): AS 2 unreachable.
	alive := []bool{true, true, false, true}
	d = nw.ASGraphHops(0, alive)
	if _, ok := d[1]; ok {
		t.Error("dead AS 1 reported reachable")
	}
	if _, ok := d[2]; ok {
		t.Error("AS 2 reachable despite cut")
	}
}

func TestCloneIsDeep(t *testing.T) {
	nw := NewNetwork(3)
	_ = nw.AddLink(0, 1, false)
	cp := nw.Clone()
	_ = cp.AddLink(1, 2, false)
	if nw.NumLinks() != 1 {
		t.Error("mutating clone changed original link count")
	}
	if nw.HasLink(1, 2) {
		t.Error("mutating clone changed original adjacency")
	}
}

func TestLinksEnumeratesEachOnce(t *testing.T) {
	nw := NewNetwork(4)
	_ = nw.AddLink(0, 1, false)
	_ = nw.AddLink(2, 1, true)
	_ = nw.AddLink(3, 0, false)
	links := nw.Links()
	if len(links) != 3 {
		t.Fatalf("Links() returned %d entries, want 3", len(links))
	}
	seen := make(map[[2]int]bool)
	for _, l := range links {
		if l.A >= l.B {
			t.Errorf("link %v not normalized A<B", l)
		}
		seen[[2]int{l.A, l.B}] = l.Internal
	}
	if !seen[[2]int{1, 2}] {
		t.Error("internal flag lost for link 1-2")
	}
}

func TestNodesInASAndNumASes(t *testing.T) {
	nw := NewNetwork(5)
	nw.SetAS(1, 0)
	nw.SetAS(3, 2)
	if got := nw.NumASes(); got != 3 {
		t.Errorf("NumASes = %d, want 3", got)
	}
	nodes := nw.NodesInAS(0)
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Errorf("NodesInAS(0) = %v", nodes)
	}
}

func TestDegreeHistogramAndMaxDegree(t *testing.T) {
	nw := NewNetwork(4)
	_ = nw.AddLink(0, 1, false)
	_ = nw.AddLink(0, 2, false)
	h := nw.DegreeHistogram()
	if h[2] != 1 || h[1] != 2 || h[0] != 1 {
		t.Errorf("histogram = %v", h)
	}
	if nw.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", nw.MaxDegree())
	}
}

func TestConnectMergesComponentsPreservingDegrees(t *testing.T) {
	rng := des.NewRNG(1)
	// Two triangles.
	nw := NewNetwork(6)
	for _, l := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		_ = nw.AddLink(l[0], l[1], false)
	}
	before := SortedDegrees(nw)
	if err := Connect(nw, rng); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if !nw.Connected() {
		t.Fatal("still disconnected")
	}
	after := SortedDegrees(nw)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("degree sequence changed: %v -> %v", before, after)
		}
	}
}

func TestConnectAttachesIsolatedNode(t *testing.T) {
	rng := des.NewRNG(2)
	nw := NewNetwork(4)
	_ = nw.AddLink(0, 1, false)
	_ = nw.AddLink(1, 2, false)
	// node 3 isolated
	if err := Connect(nw, rng); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if !nw.Connected() {
		t.Fatal("isolated node not attached")
	}
	if nw.Degree(3) != 1 {
		t.Errorf("isolated node degree after attach = %d, want 1", nw.Degree(3))
	}
}
