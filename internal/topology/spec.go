package topology

import (
	"fmt"

	"bgpsim/internal/des"
)

// Kind names a topology family.
type Kind string

// Topology families.
const (
	KindSkewed7030      Kind = "skewed-70-30"
	KindSkewed5050      Kind = "skewed-50-50"
	KindSkewed8515      Kind = "skewed-85-15"
	KindSkewed5050Dense Kind = "skewed-50-50-dense"
	KindInternetLike    Kind = "internet-like"
	KindWaxman          Kind = "waxman"
	KindBarabasiAlbert  Kind = "barabasi-albert"
	KindGLP             Kind = "glp"
	KindRealistic       Kind = "realistic"
)

// Kinds lists every supported topology family.
func Kinds() []Kind {
	return []Kind{
		KindSkewed7030, KindSkewed5050, KindSkewed8515, KindSkewed5050Dense,
		KindInternetLike, KindWaxman, KindBarabasiAlbert, KindGLP, KindRealistic,
	}
}

// Spec selects and parameterizes a topology family. Zero-valued optional
// fields take family defaults.
type Spec struct {
	Kind Kind `json:"kind"`
	// N is the node count for AS-level families and the AS count for the
	// realistic family.
	N int `json:"n"`

	// Waxman parameters.
	WaxmanAlpha float64 `json:"waxmanAlpha,omitempty"`
	WaxmanBeta  float64 `json:"waxmanBeta,omitempty"`
	// Barabási–Albert / GLP parameters.
	M       int     `json:"m,omitempty"`
	GLPP    float64 `json:"glpP,omitempty"`
	GLPBeta float64 `json:"glpBeta,omitempty"`
	// Internet-like parameters.
	AvgDegree float64 `json:"avgDegree,omitempty"`
	MaxDegree int     `json:"maxDegree,omitempty"`
	// Realistic parameters.
	MaxASSize int     `json:"maxASSize,omitempty"`
	MinASSize int     `json:"minASSize,omitempty"`
	SizeAlpha float64 `json:"sizeAlpha,omitempty"`
	// PrefixesPerOrigin is the number of destination prefixes each AS
	// originates (0 = family default of 1). It does not change the
	// generated graph — Build ignores it — but rides on the spec so the
	// scenario layer can scale the routing-table dimension of a run the
	// same way the other knobs scale the topology, and so distributed
	// workers reconstruct identical multi-prefix scenarios from the spec
	// alone.
	PrefixesPerOrigin int `json:"prefixesPerOrigin,omitempty"`
	// Relationships selects a deterministic Gao–Rexford annotation of the
	// generated graph: "" (no policy), RelModeInfer (degree heuristic at
	// RelationshipRatio), or RelModeHierarchical (BFS hierarchy, full
	// valley-free reachability). Like PrefixesPerOrigin it does not change
	// the graph — Build ignores it — but rides on the spec so one artifact
	// names both the world and its policy: the scenario layer, distributed
	// workers, and the snapshot backend all derive the same annotation
	// from the spec alone (see BuildRelationships).
	Relationships string `json:"relationships,omitempty"`
	// RelationshipRatio is the degree ratio for RelModeInfer (0 selects
	// DefaultRelationshipRatio).
	RelationshipRatio float64 `json:"relationshipRatio,omitempty"`
	// Custom skewed spec; used when Kind is empty and Skewed is non-nil.
	Skewed *SkewedSpec `json:"skewed,omitempty"`
}

// Relationship annotation modes for Spec.Relationships.
const (
	RelModeInfer        = "infer"
	RelModeHierarchical = "hierarchical"
)

// DefaultRelationshipRatio is the degree ratio RelModeInfer uses when
// the spec leaves RelationshipRatio zero (the conventional 1.5).
const DefaultRelationshipRatio = 1.5

// BuildRelationships derives the spec's relationship annotation for a
// network built from the same spec. It returns (nil, nil) when the spec
// requests no annotation. The derivation is deterministic — no RNG — so
// every consumer of a (spec, network) pair reconstructs the identical
// relationship map.
func (s Spec) BuildRelationships(nw *Network) (*Relationships, error) {
	switch s.Relationships {
	case "":
		return nil, nil
	case RelModeInfer:
		ratio := s.RelationshipRatio
		if ratio == 0 {
			ratio = DefaultRelationshipRatio
		}
		return InferRelationships(nw, ratio)
	case RelModeHierarchical:
		return HierarchicalRelationships(nw)
	default:
		return nil, fmt.Errorf("topology: unknown relationship mode %q", s.Relationships)
	}
}

// Build constructs a network from the spec using the supplied stream.
func (s Spec) Build(rng *des.RNG) (*Network, error) {
	if s.Skewed != nil {
		sk := *s.Skewed
		if sk.N == 0 {
			sk.N = s.N
		}
		return SkewedNetwork(sk, rng)
	}
	switch s.Kind {
	case KindSkewed7030:
		return SkewedNetwork(Skewed7030(s.N), rng)
	case KindSkewed5050:
		return SkewedNetwork(Skewed5050(s.N), rng)
	case KindSkewed8515:
		return SkewedNetwork(Skewed8515(s.N), rng)
	case KindSkewed5050Dense:
		return SkewedNetwork(Skewed5050Dense(s.N), rng)
	case KindInternetLike:
		avg, maxD := s.AvgDegree, s.MaxDegree
		if avg == 0 {
			avg = 3.4
		}
		if maxD == 0 {
			maxD = 40
		}
		return InternetLikeNetwork(s.N, avg, maxD, rng)
	case KindWaxman:
		alpha, beta := s.WaxmanAlpha, s.WaxmanBeta
		if alpha == 0 {
			alpha = 0.15
		}
		if beta == 0 {
			beta = 0.2
		}
		return Waxman(WaxmanSpec{N: s.N, Alpha: alpha, Beta: beta}, rng)
	case KindBarabasiAlbert:
		m := s.M
		if m == 0 {
			m = 2
		}
		return BarabasiAlbert(BarabasiAlbertSpec{N: s.N, M: m}, rng)
	case KindGLP:
		m, p, beta := s.M, s.GLPP, s.GLPBeta
		if m == 0 {
			m = 1
		}
		if p == 0 {
			p = 0.45
		}
		if beta == 0 {
			beta = 0.64
		}
		return GLP(GLPSpec{N: s.N, M: m, P: p, Beta: beta}, rng)
	case KindRealistic:
		spec := DefaultRealistic(s.N)
		if s.AvgDegree != 0 {
			spec.AvgDegree = s.AvgDegree
		}
		if s.MaxDegree != 0 {
			spec.MaxDegree = s.MaxDegree
		}
		if s.MaxASSize != 0 {
			spec.MaxASSize = s.MaxASSize
		}
		if s.MinASSize != 0 {
			spec.MinASSize = s.MinASSize
		}
		if s.SizeAlpha != 0 {
			spec.SizeAlpha = s.SizeAlpha
		}
		return Realistic(spec, rng)
	default:
		return nil, fmt.Errorf("topology: unknown kind %q", s.Kind)
	}
}
