package topology

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Rel is the business relationship of a neighbor from a node's point of
// view, following the Gao–Rexford model.
type Rel uint8

// Relationship values. RelCustomer means "the neighbor is my customer".
const (
	RelNone Rel = iota
	RelCustomer
	RelPeer
	RelProvider
)

// String names the relationship.
func (r Rel) String() string {
	switch r {
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelProvider:
		return "provider"
	default:
		return "none"
	}
}

// MarshalJSON encodes the relationship as its name, so annotation files
// stay readable and stable if the enum ever gains values.
func (r Rel) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.String())
}

// UnmarshalJSON decodes a relationship name written by MarshalJSON.
func (r *Rel) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "customer":
		*r = RelCustomer
	case "peer":
		*r = RelPeer
	case "provider":
		*r = RelProvider
	case "none":
		*r = RelNone
	default:
		return fmt.Errorf("topology: unknown relationship %q", s)
	}
	return nil
}

// Relationships records the business relationship on every link, keyed
// by direction: Of(a, b) is b's role from a's point of view.
type Relationships struct {
	of map[[2]int]Rel
}

// NewRelationships returns an empty relationship map.
func NewRelationships() *Relationships {
	return &Relationships{of: make(map[[2]int]Rel)}
}

// Set records that, from a's point of view, b is rel; the inverse
// direction is set consistently (customer <-> provider, peer <-> peer).
func (rs *Relationships) Set(a, b int, rel Rel) {
	rs.of[[2]int{a, b}] = rel
	switch rel {
	case RelCustomer:
		rs.of[[2]int{b, a}] = RelProvider
	case RelProvider:
		rs.of[[2]int{b, a}] = RelCustomer
	case RelPeer:
		rs.of[[2]int{b, a}] = RelPeer
	}
}

// Of returns b's role from a's point of view (RelNone if unset).
func (rs *Relationships) Of(a, b int) Rel {
	return rs.of[[2]int{a, b}]
}

// Len returns the number of directed entries.
func (rs *Relationships) Len() int { return len(rs.of) }

// LinkRel is one undirected link's relationship annotation in canonical
// orientation: A < B, and Rel is B's role from A's point of view (the
// inverse direction is implied, exactly as Set records it).
type LinkRel struct {
	A   int `json:"a"`
	B   int `json:"b"`
	Rel Rel `json:"rel"`
}

// LinkAnnotations enumerates the relationship map as canonical link
// annotations, sorted by (A, B). The enumeration is the serialization
// contract: RelationshipsFromLinks(rs.LinkAnnotations()) reconstructs a
// map with identical Of answers, and two Relationships values agree on
// every pair iff their annotation lists are equal.
func (rs *Relationships) LinkAnnotations() []LinkRel {
	out := make([]LinkRel, 0, len(rs.of)/2)
	for k, rel := range rs.of {
		if k[0] < k[1] {
			out = append(out, LinkRel{A: k[0], B: k[1], Rel: rel})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// RelationshipsFromLinks rebuilds a relationship map from canonical link
// annotations (the inverse of LinkAnnotations).
func RelationshipsFromLinks(links []LinkRel) *Relationships {
	rs := NewRelationships()
	for _, l := range links {
		rs.Set(l.A, l.B, l.Rel)
	}
	return rs
}

// Validate checks pairwise consistency over the network's links.
func (rs *Relationships) Validate(nw *Network) error {
	for _, l := range nw.Links() {
		if l.Internal {
			continue
		}
		ab, ba := rs.Of(l.A, l.B), rs.Of(l.B, l.A)
		ok := (ab == RelCustomer && ba == RelProvider) ||
			(ab == RelProvider && ba == RelCustomer) ||
			(ab == RelPeer && ba == RelPeer)
		if !ok {
			return fmt.Errorf("topology: inconsistent relationship on link %d-%d: %v/%v",
				l.A, l.B, ab, ba)
		}
	}
	return nil
}

// InferRelationships assigns Gao–Rexford relationships from node degrees,
// the standard heuristic: on each link, if one endpoint's degree exceeds
// the other's by more than ratio, the bigger node is the provider;
// otherwise the endpoints peer. ratio must be >= 1 (e.g. 1.5).
func InferRelationships(nw *Network, ratio float64) (*Relationships, error) {
	if ratio < 1 {
		return nil, fmt.Errorf("topology: relationship ratio %v < 1", ratio)
	}
	rs := NewRelationships()
	for _, l := range nw.Links() {
		if l.Internal {
			continue
		}
		da, db := float64(nw.Degree(l.A)), float64(nw.Degree(l.B))
		switch {
		case da > db*ratio:
			rs.Set(l.A, l.B, RelCustomer) // B is A's customer
		case db > da*ratio:
			rs.Set(l.A, l.B, RelProvider) // B is A's provider
		default:
			rs.Set(l.A, l.B, RelPeer)
		}
	}
	return rs, nil
}

// HierarchicalRelationships assigns relationships from a BFS hierarchy
// rooted at the highest-degree node: on every link the endpoint closer
// to the root is the provider; links within a BFS level are peerings.
// Unlike the degree heuristic, this guarantees that every node pair has
// a valley-free path (up the tree to the common ancestor, then down), so
// policy routing retains full reachability — the realistic Internet
// property, where the tier-1 core is transit for everyone.
func HierarchicalRelationships(nw *Network) (*Relationships, error) {
	if nw.NumNodes() == 0 {
		return NewRelationships(), nil
	}
	if !nw.Connected() {
		return nil, fmt.Errorf("topology: hierarchical relationships need a connected graph")
	}
	root, best := 0, -1
	for v := 0; v < nw.NumNodes(); v++ {
		if d := nw.Degree(v); d > best {
			root, best = v, d
		}
	}
	level := nw.BFSHops(root, nil)
	rs := NewRelationships()
	for _, l := range nw.Links() {
		if l.Internal {
			continue
		}
		la, lb := level[l.A], level[l.B]
		switch {
		case la < lb:
			rs.Set(l.A, l.B, RelCustomer) // A is closer to the core
		case lb < la:
			rs.Set(l.A, l.B, RelProvider)
		default:
			rs.Set(l.A, l.B, RelPeer)
		}
	}
	return rs, nil
}

// ValleyFree reports whether the AS-level path as seen from a source
// node follows the Gao–Rexford export rules: zero or more customer-to-
// provider (uphill) hops, at most one peer hop, then zero or more
// provider-to-customer (downhill) hops. nodeOfAS maps each AS on the
// path to its (single) node; paths through multi-node ASes are not
// checked (returns true).
func ValleyFree(rs *Relationships, src int, path []int, nodeOfAS func(as int) (int, bool)) bool {
	if len(path) <= 1 {
		return true
	}
	// Walk the links src->path[0]->path[1]->... and classify each hop
	// from the upstream node's point of view. While climbing, any hop is
	// allowed; the first peer or customer hop is the peak, after which
	// only customer (downhill) hops may follow.
	climbing := true
	prev := src
	for _, as := range path {
		node, ok := nodeOfAS(as)
		if !ok {
			return true
		}
		switch rs.Of(prev, node) {
		case RelProvider: // uphill
			if !climbing {
				return false
			}
		case RelPeer: // the single allowed peak crossing
			if !climbing {
				return false
			}
			climbing = false
		case RelCustomer: // downhill
			climbing = false
		default:
			return true // unknown relationship: cannot judge
		}
		prev = node
	}
	return true
}
