package topology

import "math"

// GraphMetrics summarizes a network's structure — used by topogen -stats
// and by tests validating that generated topologies have the shapes the
// paper relies on.
type GraphMetrics struct {
	Nodes         int
	Links         int
	ASes          int
	AvgDegree     float64
	MaxDegree     int
	Connected     bool
	Clustering    float64 // mean local clustering coefficient
	AvgPathLength float64 // mean shortest-path hops over connected pairs
	Diameter      int     // max shortest-path hops (largest component)
	Assortativity float64 // Pearson correlation of degrees across links
	DegreeEntropy float64 // Shannon entropy of the degree distribution (bits)
	ExternalLinks int
	InternalLinks int
}

// Metrics computes the full summary. Cost is O(V·E) for the path terms;
// fine at experiment scale (hundreds to a few thousand nodes).
func Metrics(nw *Network) GraphMetrics {
	m := GraphMetrics{
		Nodes:     nw.NumNodes(),
		Links:     nw.NumLinks(),
		ASes:      nw.NumASes(),
		AvgDegree: nw.AvgDegree(),
		MaxDegree: nw.MaxDegree(),
		Connected: nw.Connected(),
	}
	for _, l := range nw.Links() {
		if l.Internal {
			m.InternalLinks++
		} else {
			m.ExternalLinks++
		}
	}
	m.Clustering = ClusteringCoefficient(nw)
	m.AvgPathLength, m.Diameter = PathLengthStats(nw)
	m.Assortativity = DegreeAssortativity(nw)
	m.DegreeEntropy = DegreeEntropy(nw)
	return m
}

// ClusteringCoefficient returns the mean local clustering coefficient:
// for each node with degree >= 2, the fraction of neighbor pairs that
// are themselves adjacent.
func ClusteringCoefficient(nw *Network) float64 {
	sum, counted := 0.0, 0
	for v := 0; v < nw.NumNodes(); v++ {
		nbs := nw.Neighbors(v)
		if len(nbs) < 2 {
			continue
		}
		links := 0
		for i := 0; i < len(nbs); i++ {
			for j := i + 1; j < len(nbs); j++ {
				if nw.HasLink(nbs[i].ID, nbs[j].ID) {
					links++
				}
			}
		}
		pairs := len(nbs) * (len(nbs) - 1) / 2
		sum += float64(links) / float64(pairs)
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// PathLengthStats returns the mean shortest-path hop count over all
// connected ordered pairs and the diameter (max hops).
func PathLengthStats(nw *Network) (avg float64, diameter int) {
	total, pairs := 0, 0
	for v := 0; v < nw.NumNodes(); v++ {
		dist := nw.BFSHops(v, nil)
		for w, d := range dist {
			if w == v || d < 0 {
				continue
			}
			total += d
			pairs++
			if d > diameter {
				diameter = d
			}
		}
	}
	if pairs == 0 {
		return 0, 0
	}
	return float64(total) / float64(pairs), diameter
}

// DegreeAssortativity returns the Pearson correlation coefficient of the
// degrees at the two endpoints of each link (Newman's r). Negative values
// mean hubs attach to low-degree nodes — the Internet's signature.
func DegreeAssortativity(nw *Network) float64 {
	links := nw.Links()
	if len(links) == 0 {
		return 0
	}
	// Each undirected link contributes both orientations.
	n := float64(2 * len(links))
	var sumXY, sumX, sumX2 float64
	for _, l := range links {
		da, db := float64(nw.Degree(l.A)), float64(nw.Degree(l.B))
		sumXY += 2 * da * db
		sumX += da + db
		sumX2 += da*da + db*db
	}
	meanX := sumX / n
	varX := sumX2/n - meanX*meanX
	if varX == 0 {
		return 0
	}
	cov := sumXY/n - meanX*meanX
	return cov / varX
}

// DegreeEntropy returns the Shannon entropy (bits) of the degree
// distribution; higher means more degree diversity.
func DegreeEntropy(nw *Network) float64 {
	if nw.NumNodes() == 0 {
		return 0
	}
	hist := nw.DegreeHistogram()
	total := float64(nw.NumNodes())
	h := 0.0
	for _, count := range hist {
		p := float64(count) / total
		h -= p * math.Log2(p)
	}
	return h
}
