package topology

import (
	"testing"

	"bgpsim/internal/des"
)

func TestRelationshipsSetAndInverse(t *testing.T) {
	rs := NewRelationships()
	rs.Set(1, 2, RelCustomer)
	if rs.Of(1, 2) != RelCustomer {
		t.Error("forward relationship wrong")
	}
	if rs.Of(2, 1) != RelProvider {
		t.Error("inverse of customer is not provider")
	}
	rs.Set(3, 4, RelPeer)
	if rs.Of(3, 4) != RelPeer || rs.Of(4, 3) != RelPeer {
		t.Error("peer not symmetric")
	}
	rs.Set(5, 6, RelProvider)
	if rs.Of(6, 5) != RelCustomer {
		t.Error("inverse of provider is not customer")
	}
	if rs.Of(9, 9) != RelNone {
		t.Error("unset relationship not RelNone")
	}
	if rs.Len() != 6 {
		t.Errorf("Len = %d", rs.Len())
	}
}

func TestRelStrings(t *testing.T) {
	if RelCustomer.String() != "customer" || RelPeer.String() != "peer" ||
		RelProvider.String() != "provider" || RelNone.String() != "none" {
		t.Error("relationship names wrong")
	}
}

func TestInferRelationshipsDegreeHeuristic(t *testing.T) {
	// Star: hub 0 with 5 leaves, plus leaf-leaf link 1-2.
	nw := NewNetwork(6)
	for i := 1; i <= 5; i++ {
		if err := nw.AddLink(0, i, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.AddLink(1, 2, false); err != nil {
		t.Fatal(err)
	}
	rs, err := InferRelationships(nw, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Hub (degree 5) is the provider of each leaf (degree 1-2).
	if rs.Of(0, 1) != RelCustomer {
		t.Errorf("hub sees leaf as %v, want customer", rs.Of(0, 1))
	}
	if rs.Of(1, 0) != RelProvider {
		t.Errorf("leaf sees hub as %v, want provider", rs.Of(1, 0))
	}
	// Equal-degree leaves peer.
	if rs.Of(1, 2) != RelPeer {
		t.Errorf("leaf-leaf relationship %v, want peer", rs.Of(1, 2))
	}
	if err := rs.Validate(nw); err != nil {
		t.Errorf("inferred relationships inconsistent: %v", err)
	}
}

func TestInferRelationshipsRejectsBadRatio(t *testing.T) {
	nw := NewNetwork(2)
	_ = nw.AddLink(0, 1, false)
	if _, err := InferRelationships(nw, 0.5); err == nil {
		t.Error("ratio < 1 accepted")
	}
}

func TestValidateDetectsInconsistency(t *testing.T) {
	nw := NewNetwork(2)
	_ = nw.AddLink(0, 1, false)
	rs := NewRelationships()
	rs.of[[2]int{0, 1}] = RelCustomer
	rs.of[[2]int{1, 0}] = RelPeer // inconsistent on purpose
	if err := rs.Validate(nw); err == nil {
		t.Error("inconsistent relationships accepted")
	}
}

func TestValleyFree(t *testing.T) {
	// Chain 0-1-2-3-4 with: 0 customer of 1, 1 customer of 2 (2 is the
	// top), 3 customer of 2, 4 customer of 3. Peers: 1-3.
	rs := NewRelationships()
	rs.Set(1, 0, RelCustomer)
	rs.Set(2, 1, RelCustomer)
	rs.Set(2, 3, RelCustomer)
	rs.Set(3, 4, RelCustomer)
	rs.Set(1, 3, RelPeer)
	identity := func(as int) (int, bool) { return as, true }

	cases := []struct {
		src  int
		path []int
		ok   bool
	}{
		{0, []int{1, 2, 3, 4}, true},  // up, up(peak), down, down
		{0, []int{1, 3, 4}, true},     // up, peer at peak, down
		{4, []int{3, 2, 1, 0}, true},  // mirror
		{2, []int{1, 3}, false},       // down to 1 then peer: invalid
		{2, []int{1, 0}, true},        // pure downhill
		{0, []int{1}, true},           // single hop
		{1, []int{3, 2}, false},       // peer then up: invalid
		{4, []int{3, 2, 1, 3}, false}, // down then peer again
	}
	for i, c := range cases {
		if got := ValleyFree(rs, c.src, c.path, identity); got != c.ok {
			t.Errorf("case %d: ValleyFree(src=%d, %v) = %v, want %v", i, c.src, c.path, got, c.ok)
		}
	}
}

func TestValleyFreeUnknownRelationshipsPass(t *testing.T) {
	rs := NewRelationships()
	identity := func(as int) (int, bool) { return as, true }
	if !ValleyFree(rs, 0, []int{1, 2}, identity) {
		t.Error("unknown relationships must not be judged invalid")
	}
	if !ValleyFree(rs, 0, []int{}, identity) {
		t.Error("empty path must be valley-free")
	}
	missing := func(as int) (int, bool) { return 0, false }
	if !ValleyFree(rs, 0, []int{1, 2}, missing) {
		t.Error("unresolvable AS must not be judged invalid")
	}
}

func TestInferOnPaperTopology(t *testing.T) {
	rng := des.NewRNG(5)
	nw, err := SkewedNetwork(Skewed7030(120), rng)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := InferRelationships(nw, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Validate(nw); err != nil {
		t.Fatal(err)
	}
	// Every external link must be classified.
	if rs.Len() != 2*nw.NumLinks() {
		t.Errorf("classified %d directed entries for %d links", rs.Len(), nw.NumLinks())
	}
	// The degree-8 hubs should be providers on most of their links.
	providers := 0
	for _, l := range nw.Links() {
		if rs.Of(l.A, l.B) == RelCustomer || rs.Of(l.B, l.A) == RelCustomer {
			providers++
		}
	}
	if providers == 0 {
		t.Error("no provider-customer links inferred in a 70-30 topology")
	}
}

func TestHierarchicalRelationshipsStructure(t *testing.T) {
	// Path 0-1-2 with hub 1 (degree 2): root=1, levels 1,0,1.
	nw := NewNetwork(3)
	_ = nw.AddLink(0, 1, false)
	_ = nw.AddLink(1, 2, false)
	rs, err := HierarchicalRelationships(nw)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Of(1, 0) != RelCustomer || rs.Of(1, 2) != RelCustomer {
		t.Errorf("root not the provider: %v %v", rs.Of(1, 0), rs.Of(1, 2))
	}
	if err := rs.Validate(nw); err != nil {
		t.Error(err)
	}
}

func TestHierarchicalRelationshipsSameLevelPeers(t *testing.T) {
	// Square 0-1, 0-2, 1-3, 2-3 plus hub boost on 0: 0-4.
	nw := NewNetwork(5)
	for _, l := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {0, 4}} {
		_ = nw.AddLink(l[0], l[1], false)
	}
	rs, err := HierarchicalRelationships(nw)
	if err != nil {
		t.Fatal(err)
	}
	// Root is 0 (degree 3); 1 and 2 at level 1; link 1-3/2-3 go down to
	// level 2. No same-level links here except none... verify validity.
	if err := rs.Validate(nw); err != nil {
		t.Error(err)
	}
	if rs.Of(0, 1) != RelCustomer {
		t.Errorf("root->1 = %v", rs.Of(0, 1))
	}
	if rs.Of(3, 1) != RelProvider {
		t.Errorf("3 sees 1 as %v, want provider", rs.Of(3, 1))
	}
}

func TestHierarchicalRequiresConnected(t *testing.T) {
	nw := NewNetwork(4)
	_ = nw.AddLink(0, 1, false)
	if _, err := HierarchicalRelationships(nw); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, err := HierarchicalRelationships(NewNetwork(0)); err != nil {
		t.Error("empty graph rejected")
	}
}
