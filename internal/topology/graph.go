// Package topology builds the network graphs the BGP experiments run on.
//
// It replaces the modified BRITE generator used in the paper: two-class
// "skewed" degree distributions (the paper's 70-30 / 50-50 / 85-15
// topologies), the classic BRITE schemes (Waxman, Albert–Barabási, GLP),
// an Internet-like heavy-tailed distribution, geographic placement on a
// 1000×1000 grid, and multi-router-per-AS expansion for the paper's
// "realistic" topologies.
package topology

import (
	"fmt"
	"math"
	"sort"
)

// Point is a position on the placement grid.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Node is a router (or, in AS-level topologies, a whole AS).
type Node struct {
	ID  int   `json:"id"`
	AS  int   `json:"as"`
	Pos Point `json:"pos"`
}

// Neighbor is one endpoint of an adjacency.
type Neighbor struct {
	ID       int  `json:"id"`
	Internal bool `json:"internal"` // same-AS (IBGP) adjacency
}

// DefaultGrid is the side length of the placement grid used in the paper.
const DefaultGrid = 1000.0

// Network is an undirected graph of routers grouped into ASes. In AS-level
// topologies every node is its own AS and all links are external.
type Network struct {
	nodes []Node
	adj   [][]Neighbor
	links int
	grid  float64
}

// NewNetwork returns a network with n isolated nodes, each its own AS,
// positioned at the origin.
func NewNetwork(n int) *Network {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: i, AS: i}
	}
	return &Network{nodes: nodes, adj: make([][]Neighbor, n), grid: DefaultGrid}
}

// NumNodes returns the node count.
func (nw *Network) NumNodes() int { return len(nw.nodes) }

// NumLinks returns the undirected link count.
func (nw *Network) NumLinks() int { return nw.links }

// Grid returns the placement grid side length.
func (nw *Network) Grid() float64 { return nw.grid }

// SetGrid sets the placement grid side length.
func (nw *Network) SetGrid(g float64) { nw.grid = g }

// Node returns node i by value.
func (nw *Network) Node(i int) Node { return nw.nodes[i] }

// SetPos places node i.
func (nw *Network) SetPos(i int, p Point) { nw.nodes[i].Pos = p }

// SetAS assigns node i to an AS.
func (nw *Network) SetAS(i, as int) { nw.nodes[i].AS = as }

// ASOf returns the AS number of node i.
func (nw *Network) ASOf(i int) int { return nw.nodes[i].AS }

// Neighbors returns the adjacency list of node i. The caller must not
// modify the returned slice.
func (nw *Network) Neighbors(i int) []Neighbor { return nw.adj[i] }

// Degree returns the total degree of node i.
func (nw *Network) Degree(i int) int { return len(nw.adj[i]) }

// ExternalDegree returns the number of inter-AS adjacencies of node i.
func (nw *Network) ExternalDegree(i int) int {
	d := 0
	for _, nb := range nw.adj[i] {
		if !nb.Internal {
			d++
		}
	}
	return d
}

// HasLink reports whether nodes a and b are adjacent.
func (nw *Network) HasLink(a, b int) bool {
	// Scan the shorter list.
	if len(nw.adj[a]) > len(nw.adj[b]) {
		a, b = b, a
	}
	for _, nb := range nw.adj[a] {
		if nb.ID == b {
			return true
		}
	}
	return false
}

// AddLink connects a and b. Self-loops and duplicate links are rejected.
func (nw *Network) AddLink(a, b int, internal bool) error {
	if a == b {
		return fmt.Errorf("topology: self-loop at node %d", a)
	}
	if a < 0 || b < 0 || a >= len(nw.nodes) || b >= len(nw.nodes) {
		return fmt.Errorf("topology: link %d-%d out of range", a, b)
	}
	if nw.HasLink(a, b) {
		return fmt.Errorf("topology: duplicate link %d-%d", a, b)
	}
	nw.adj[a] = append(nw.adj[a], Neighbor{ID: b, Internal: internal})
	nw.adj[b] = append(nw.adj[b], Neighbor{ID: a, Internal: internal})
	nw.links++
	return nil
}

// RemoveLink disconnects a and b if they are adjacent.
func (nw *Network) RemoveLink(a, b int) bool {
	removed := false
	nw.adj[a], removed = dropNeighbor(nw.adj[a], b)
	if !removed {
		return false
	}
	nw.adj[b], _ = dropNeighbor(nw.adj[b], a)
	nw.links--
	return true
}

func dropNeighbor(list []Neighbor, id int) ([]Neighbor, bool) {
	for i, nb := range list {
		if nb.ID == id {
			list[i] = list[len(list)-1]
			return list[:len(list)-1], true
		}
	}
	return list, false
}

// AvgDegree returns the mean node degree.
func (nw *Network) AvgDegree() float64 {
	if len(nw.nodes) == 0 {
		return 0
	}
	return 2 * float64(nw.links) / float64(len(nw.nodes))
}

// DegreeHistogram returns a map from degree to node count.
func (nw *Network) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for i := range nw.nodes {
		h[nw.Degree(i)]++
	}
	return h
}

// MaxDegree returns the largest node degree.
func (nw *Network) MaxDegree() int {
	m := 0
	for i := range nw.nodes {
		if d := nw.Degree(i); d > m {
			m = d
		}
	}
	return m
}

// Components returns the connected components as slices of node IDs,
// largest first.
func (nw *Network) Components() [][]int {
	seen := make([]bool, len(nw.nodes))
	var comps [][]int
	for i := range nw.nodes {
		if seen[i] {
			continue
		}
		var comp []int
		queue := []int{i}
		seen[i] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, nb := range nw.adj[v] {
				if !seen[nb.ID] {
					seen[nb.ID] = true
					queue = append(queue, nb.ID)
				}
			}
		}
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// Connected reports whether the network is a single component.
func (nw *Network) Connected() bool {
	if len(nw.nodes) == 0 {
		return true
	}
	return len(nw.Components()) == 1
}

// BFSHops returns the hop distance from src to every node, with -1 for
// unreachable nodes. alive, if non-nil, restricts the traversal to nodes
// for which alive[i] is true (src must be alive).
func (nw *Network) BFSHops(src int, alive []bool) []int {
	dist := make([]int, len(nw.nodes))
	for i := range dist {
		dist[i] = -1
	}
	if alive != nil && !alive[src] {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range nw.adj[v] {
			if alive != nil && !alive[nb.ID] {
				continue
			}
			if dist[nb.ID] == -1 {
				dist[nb.ID] = dist[v] + 1
				queue = append(queue, nb.ID)
			}
		}
	}
	return dist
}

// NumASes returns the number of distinct ASes.
func (nw *Network) NumASes() int {
	seen := make(map[int]struct{})
	for i := range nw.nodes {
		seen[nw.nodes[i].AS] = struct{}{}
	}
	return len(seen)
}

// NodesInAS returns the node IDs belonging to AS as, in ID order.
func (nw *Network) NodesInAS(as int) []int {
	var out []int
	for i := range nw.nodes {
		if nw.nodes[i].AS == as {
			out = append(out, i)
		}
	}
	return out
}

// ASGraphHops returns AS-level hop distances from AS src to every AS,
// treating each AS as a supernode connected by external links between
// alive routers. Unreachable ASes get -1. alive, if non-nil, restricts the
// traversal to alive routers.
func (nw *Network) ASGraphHops(src int, alive []bool) map[int]int {
	// Build AS adjacency over alive routers.
	adj := make(map[int]map[int]struct{})
	for i := range nw.nodes {
		if alive != nil && !alive[i] {
			continue
		}
		a := nw.nodes[i].AS
		if _, ok := adj[a]; !ok {
			adj[a] = make(map[int]struct{})
		}
		for _, nb := range nw.adj[i] {
			if nb.Internal {
				continue
			}
			if alive != nil && !alive[nb.ID] {
				continue
			}
			adj[a][nw.nodes[nb.ID].AS] = struct{}{}
		}
	}
	dist := make(map[int]int, len(adj))
	if _, ok := adj[src]; !ok {
		return dist
	}
	// Note: an AS whose routers are partitioned internally is treated as a
	// single supernode here; the BGP model's IBGP full mesh matches that.
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for w := range adj[v] {
			if _, ok := dist[w]; !ok {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Clone returns a deep copy of the network.
func (nw *Network) Clone() *Network {
	cp := &Network{
		nodes: append([]Node(nil), nw.nodes...),
		adj:   make([][]Neighbor, len(nw.adj)),
		links: nw.links,
		grid:  nw.grid,
	}
	for i, l := range nw.adj {
		cp.adj[i] = append([]Neighbor(nil), l...)
	}
	return cp
}

// Links returns every undirected link exactly once (a < b).
func (nw *Network) Links() []Neighbor2 {
	out := make([]Neighbor2, 0, nw.links)
	for a := range nw.adj {
		for _, nb := range nw.adj[a] {
			if a < nb.ID {
				out = append(out, Neighbor2{A: a, B: nb.ID, Internal: nb.Internal})
			}
		}
	}
	return out
}

// Neighbor2 is an undirected link with both endpoints.
type Neighbor2 struct {
	A        int  `json:"a"`
	B        int  `json:"b"`
	Internal bool `json:"internal"`
}
