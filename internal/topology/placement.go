package topology

import (
	"sort"

	"bgpsim/internal/des"
)

// PlaceUniform scatters every node uniformly at random on the grid, the
// placement scheme the paper uses ("We randomly placed all the routers on
// a 1000x1000 grid").
func PlaceUniform(nw *Network, rng *des.RNG) {
	g := nw.Grid()
	for i := 0; i < nw.NumNodes(); i++ {
		nw.SetPos(i, Point{X: rng.Float64() * g, Y: rng.Float64() * g})
	}
}

// PlaceClustered scatters nodes around k uniformly placed cluster centers
// with the given Gaussian-ish spread, for non-uniform location-density
// experiments (the paper's earlier work examined these).
func PlaceClustered(nw *Network, k int, spread float64, rng *des.RNG) {
	if k < 1 {
		k = 1
	}
	g := nw.Grid()
	centers := make([]Point, k)
	for i := range centers {
		centers[i] = Point{X: rng.Float64() * g, Y: rng.Float64() * g}
	}
	for i := 0; i < nw.NumNodes(); i++ {
		c := centers[rng.Intn(k)]
		p := Point{
			X: clamp(c.X+gauss(rng)*spread, 0, g),
			Y: clamp(c.Y+gauss(rng)*spread, 0, g),
		}
		nw.SetPos(i, p)
	}
}

// PlaceInSquare scatters the listed nodes uniformly in the axis-aligned
// square of side length centered at c, clipped to the grid. Used to give
// each AS a geographic extent proportional to its size.
func PlaceInSquare(nw *Network, nodes []int, c Point, side float64, rng *des.RNG) {
	g := nw.Grid()
	half := side / 2
	for _, id := range nodes {
		p := Point{
			X: clamp(c.X+(rng.Float64()-0.5)*2*half, 0, g),
			Y: clamp(c.Y+(rng.Float64()-0.5)*2*half, 0, g),
		}
		nw.SetPos(id, p)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// gauss returns an approximately standard-normal draw (Irwin–Hall sum of
// 12 uniforms); exactness is irrelevant for placement.
func gauss(rng *des.RNG) float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += rng.Float64()
	}
	return s - 6
}

// GridCenter returns the center point of the placement grid.
func GridCenter(nw *Network) Point {
	return Point{X: nw.Grid() / 2, Y: nw.Grid() / 2}
}

type nodeDist struct {
	id int
	d  float64
}

// NearestNodes returns the ids of the k nodes nearest to p (Euclidean),
// restricted to alive nodes when alive is non-nil. Ties break by node ID
// so results are deterministic.
func NearestNodes(nw *Network, p Point, k int, alive []bool) []int {
	cands := make([]nodeDist, 0, nw.NumNodes())
	for i := 0; i < nw.NumNodes(); i++ {
		if alive != nil && !alive[i] {
			continue
		}
		cands = append(cands, nodeDist{id: i, d: nw.Node(i).Pos.Dist(p)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out
}
