package topology

import (
	"fmt"
	"math"

	"bgpsim/internal/des"
)

// WaxmanSpec parameterizes the Waxman random-graph model: nodes u,v are
// connected with probability Alpha * exp(-d(u,v) / (Beta * L)) where L is
// the grid diagonal. One of the AS-level schemes BRITE offers.
type WaxmanSpec struct {
	N     int
	Alpha float64
	Beta  float64
}

// Waxman generates a connected Waxman graph with uniform placement.
func Waxman(spec WaxmanSpec, rng *des.RNG) (*Network, error) {
	if spec.N < 2 {
		return nil, fmt.Errorf("topology: waxman N=%d", spec.N)
	}
	if spec.Alpha <= 0 || spec.Alpha > 1 || spec.Beta <= 0 {
		return nil, fmt.Errorf("topology: waxman alpha=%v beta=%v", spec.Alpha, spec.Beta)
	}
	nw := NewNetwork(spec.N)
	PlaceUniform(nw, rng)
	l := nw.Grid() * math.Sqrt2
	for a := 0; a < spec.N; a++ {
		for b := a + 1; b < spec.N; b++ {
			d := nw.Node(a).Pos.Dist(nw.Node(b).Pos)
			p := spec.Alpha * math.Exp(-d/(spec.Beta*l))
			if rng.Float64() < p {
				mustAdd(nw, a, b, false)
			}
		}
	}
	if err := Connect(nw, rng); err != nil {
		return nil, err
	}
	return nw, nil
}

// BarabasiAlbertSpec parameterizes preferential attachment: each arriving
// node attaches M links to existing nodes chosen with probability
// proportional to their degree.
type BarabasiAlbertSpec struct {
	N int
	M int
}

// BarabasiAlbert generates an Albert–Barabási preferential-attachment
// graph with uniform placement.
func BarabasiAlbert(spec BarabasiAlbertSpec, rng *des.RNG) (*Network, error) {
	if spec.N < 2 || spec.M < 1 || spec.M >= spec.N {
		return nil, fmt.Errorf("topology: BA N=%d M=%d", spec.N, spec.M)
	}
	nw := NewNetwork(spec.N)
	PlaceUniform(nw, rng)
	// Seed clique of M+1 nodes.
	seed := spec.M + 1
	for a := 0; a < seed; a++ {
		for b := a + 1; b < seed; b++ {
			mustAdd(nw, a, b, false)
		}
	}
	// Repeated-endpoint list implements degree-proportional choice.
	var endpoints []int
	for a := 0; a < seed; a++ {
		for k := 0; k < nw.Degree(a); k++ {
			endpoints = append(endpoints, a)
		}
	}
	for v := seed; v < spec.N; v++ {
		added := 0
		for attempt := 0; added < spec.M && attempt < 100*spec.M; attempt++ {
			t := endpoints[rng.Intn(len(endpoints))]
			if t == v || nw.HasLink(v, t) {
				continue
			}
			mustAdd(nw, v, t, false)
			endpoints = append(endpoints, v, t)
			added++
		}
	}
	if err := Connect(nw, rng); err != nil {
		return nil, err
	}
	return nw, nil
}

// GLPSpec parameterizes the Generalized Linear Preference model of Bu and
// Towsley: with probability P, M new links are added between existing
// nodes; otherwise a new node joins with M links. Endpoints are chosen
// with probability proportional to (degree - Beta), Beta < 1.
type GLPSpec struct {
	N    int
	M    int
	P    float64
	Beta float64
}

// GLP generates a Bu–Towsley GLP graph with uniform placement.
func GLP(spec GLPSpec, rng *des.RNG) (*Network, error) {
	if spec.N < 3 || spec.M < 1 {
		return nil, fmt.Errorf("topology: GLP N=%d M=%d", spec.N, spec.M)
	}
	if spec.P < 0 || spec.P >= 1 || spec.Beta >= 1 {
		return nil, fmt.Errorf("topology: GLP P=%v Beta=%v", spec.P, spec.Beta)
	}
	nw := NewNetwork(spec.N)
	PlaceUniform(nw, rng)
	// Seed: a small connected core.
	core := spec.M + 1
	if core < 3 {
		core = 3
	}
	for a := 1; a < core; a++ {
		mustAdd(nw, a-1, a, false)
	}
	grown := core

	pick := func(exclude int) int {
		total := 0.0
		for i := 0; i < grown; i++ {
			if i == exclude {
				continue
			}
			total += float64(nw.Degree(i)) - spec.Beta
		}
		u := rng.Float64() * total
		acc := 0.0
		for i := 0; i < grown; i++ {
			if i == exclude {
				continue
			}
			acc += float64(nw.Degree(i)) - spec.Beta
			if u < acc {
				return i
			}
		}
		if exclude == grown-1 {
			return grown - 2
		}
		return grown - 1
	}

	for grown < spec.N {
		if rng.Float64() < spec.P {
			// Add M links between existing nodes.
			for k := 0; k < spec.M; k++ {
				for attempt := 0; attempt < 100; attempt++ {
					a := pick(-1)
					b := pick(a)
					if a != b && !nw.HasLink(a, b) {
						mustAdd(nw, a, b, false)
						break
					}
				}
			}
			continue
		}
		// Add a new node with M links.
		v := grown
		grown++
		added := 0
		for attempt := 0; added < spec.M && attempt < 100*spec.M; attempt++ {
			t := pick(v)
			if t != v && !nw.HasLink(v, t) {
				mustAdd(nw, v, t, false)
				added++
			}
		}
	}
	if err := Connect(nw, rng); err != nil {
		return nil, err
	}
	return nw, nil
}

// SkewedNetwork builds a connected AS-level network from a SkewedSpec with
// uniform grid placement. This is the workhorse for Figs 1–12.
func SkewedNetwork(spec SkewedSpec, rng *des.RNG) (*Network, error) {
	degrees, err := spec.Degrees(rng)
	if err != nil {
		return nil, err
	}
	nw, err := FromDegreeSequence(degrees, rng)
	if err != nil {
		return nil, err
	}
	PlaceUniform(nw, rng)
	return nw, nil
}

// InternetLikeNetwork builds a connected AS-level network whose degree
// distribution matches the paper's reduction of measured Internet AS
// connectivity (heavy tail capped at maxDegree, mean avgDegree).
func InternetLikeNetwork(n int, avgDegree float64, maxDegree int, rng *des.RNG) (*Network, error) {
	degrees, err := InternetLikeDegrees(n, avgDegree, maxDegree, rng)
	if err != nil {
		return nil, err
	}
	nw, err := FromDegreeSequence(degrees, rng)
	if err != nil {
		return nil, err
	}
	PlaceUniform(nw, rng)
	return nw, nil
}
