package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// fileFormat is the on-disk JSON representation of a Network.
type fileFormat struct {
	Grid  float64     `json:"grid"`
	Nodes []Node      `json:"nodes"`
	Links []Neighbor2 `json:"links"`
}

// WriteJSON serializes the network.
func (nw *Network) WriteJSON(w io.Writer) error {
	ff := fileFormat{Grid: nw.grid, Nodes: nw.nodes, Links: nw.Links()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ff)
}

// ReadJSON deserializes a network written by WriteJSON.
func ReadJSON(r io.Reader) (*Network, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("topology: decode: %w", err)
	}
	nw := NewNetwork(len(ff.Nodes))
	if ff.Grid > 0 {
		nw.SetGrid(ff.Grid)
	}
	for i, n := range ff.Nodes {
		if n.ID != i {
			return nil, fmt.Errorf("topology: node %d has id %d; ids must be dense and ordered", i, n.ID)
		}
		nw.SetAS(i, n.AS)
		nw.SetPos(i, n.Pos)
	}
	for _, l := range ff.Links {
		if err := nw.AddLink(l.A, l.B, l.Internal); err != nil {
			return nil, err
		}
	}
	return nw, nil
}
