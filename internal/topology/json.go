package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// fileFormat is the on-disk JSON representation of a Network, optionally
// carrying Gao–Rexford relationship annotations so a saved topology and
// its policy assignment travel as one artifact: the DES policy path and
// the snapshot backend then consume byte-identical inputs instead of
// each re-inferring relationships from the graph.
type fileFormat struct {
	Grid          float64     `json:"grid"`
	Nodes         []Node      `json:"nodes"`
	Links         []Neighbor2 `json:"links"`
	Relationships []LinkRel   `json:"relationships,omitempty"`
}

// WriteJSON serializes the network without relationship annotations.
func (nw *Network) WriteJSON(w io.Writer) error {
	return nw.WriteJSONWith(w, nil)
}

// WriteJSONWith serializes the network together with its relationship
// annotations (nil rs writes the plain form, byte-identical to files
// written before annotations existed). Annotations are emitted in
// canonical sorted order (LinkAnnotations), so equal relationship maps
// always serialize to equal bytes.
func (nw *Network) WriteJSONWith(w io.Writer, rs *Relationships) error {
	ff := fileFormat{Grid: nw.grid, Nodes: nw.nodes, Links: nw.Links()}
	if rs != nil {
		ff.Relationships = rs.LinkAnnotations()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ff)
}

// ReadJSON deserializes a network written by WriteJSON, ignoring any
// relationship annotations in the file.
func ReadJSON(r io.Reader) (*Network, error) {
	nw, _, err := ReadJSONWith(r)
	return nw, err
}

// ReadJSONWith deserializes a network and its relationship annotations.
// The returned Relationships is nil when the file carries none; when
// present it is validated for pairwise consistency against the links.
func ReadJSONWith(r io.Reader) (*Network, *Relationships, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, nil, fmt.Errorf("topology: decode: %w", err)
	}
	nw := NewNetwork(len(ff.Nodes))
	if ff.Grid > 0 {
		nw.SetGrid(ff.Grid)
	}
	for i, n := range ff.Nodes {
		if n.ID != i {
			return nil, nil, fmt.Errorf("topology: node %d has id %d; ids must be dense and ordered", i, n.ID)
		}
		nw.SetAS(i, n.AS)
		nw.SetPos(i, n.Pos)
	}
	for _, l := range ff.Links {
		if err := nw.AddLink(l.A, l.B, l.Internal); err != nil {
			return nil, nil, err
		}
	}
	if ff.Relationships == nil {
		return nw, nil, nil
	}
	for _, l := range ff.Relationships {
		if l.A < 0 || l.A >= nw.NumNodes() || l.B < 0 || l.B >= nw.NumNodes() {
			return nil, nil, fmt.Errorf("topology: relationship %d-%d outside the node range", l.A, l.B)
		}
	}
	rs := RelationshipsFromLinks(ff.Relationships)
	if err := rs.Validate(nw); err != nil {
		return nil, nil, err
	}
	return nw, rs, nil
}
