package topology

import (
	"bytes"
	"reflect"
	"testing"

	"bgpsim/internal/des"
)

// annotatedWorld builds an Internet-like network with degree-inferred
// relationships, the shape the annotation round trip must preserve.
func annotatedWorld(t *testing.T) (*Network, *Relationships) {
	t.Helper()
	nw, err := InternetLikeNetwork(80, 3.4, 40, des.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := InferRelationships(nw, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return nw, rs
}

func TestLinkAnnotationsCanonical(t *testing.T) {
	nw, rs := annotatedWorld(t)
	anns := rs.LinkAnnotations()
	if len(anns) == 0 {
		t.Fatal("no annotations")
	}
	if 2*len(anns) != rs.Len() {
		t.Fatalf("%d annotations for %d directed entries", len(anns), rs.Len())
	}
	for i, a := range anns {
		if a.A >= a.B {
			t.Fatalf("annotation %d not canonical: %d-%d", i, a.A, a.B)
		}
		if i > 0 {
			p := anns[i-1]
			if p.A > a.A || (p.A == a.A && p.B >= a.B) {
				t.Fatalf("annotations not sorted at %d: %v then %v", i, p, a)
			}
		}
		if got := rs.Of(a.A, a.B); got != a.Rel {
			t.Fatalf("annotation %d-%d says %v, map says %v", a.A, a.B, a.Rel, got)
		}
	}
	// The enumeration must invert exactly.
	back := RelationshipsFromLinks(anns)
	if back.Len() != rs.Len() {
		t.Fatalf("reconstructed %d entries, want %d", back.Len(), rs.Len())
	}
	for _, l := range nw.Links() {
		if l.Internal {
			continue
		}
		if back.Of(l.A, l.B) != rs.Of(l.A, l.B) {
			t.Fatalf("link %d-%d: reconstructed %v, want %v", l.A, l.B, back.Of(l.A, l.B), rs.Of(l.A, l.B))
		}
	}
}

func TestJSONRoundTripWithRelationships(t *testing.T) {
	nw, rs := annotatedWorld(t)
	var buf bytes.Buffer
	if err := nw.WriteJSONWith(&buf, rs); err != nil {
		t.Fatal(err)
	}
	back, brs, err := ReadJSONWith(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if brs == nil {
		t.Fatal("annotations lost in round trip")
	}
	if back.NumNodes() != nw.NumNodes() || back.NumLinks() != nw.NumLinks() {
		t.Fatalf("graph changed: %d/%d nodes, %d/%d links",
			back.NumNodes(), nw.NumNodes(), back.NumLinks(), nw.NumLinks())
	}
	if !reflect.DeepEqual(brs.LinkAnnotations(), rs.LinkAnnotations()) {
		t.Fatal("relationship annotations changed in round trip")
	}
	// Serialization is canonical: writing the reconstructed pair must
	// reproduce the file byte for byte.
	var buf2 bytes.Buffer
	if err := back.WriteJSONWith(&buf2, brs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialized annotated topology differs")
	}
}

func TestJSONWithoutRelationshipsStaysPlain(t *testing.T) {
	nw, _ := annotatedWorld(t)
	var plain, with bytes.Buffer
	if err := nw.WriteJSON(&plain); err != nil {
		t.Fatal(err)
	}
	if err := nw.WriteJSONWith(&with, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), with.Bytes()) {
		t.Fatal("WriteJSONWith(nil) differs from WriteJSON")
	}
	if bytes.Contains(plain.Bytes(), []byte("relationships")) {
		t.Fatal("plain file mentions relationships")
	}
	_, rs, err := ReadJSONWith(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rs != nil {
		t.Fatal("plain file produced annotations")
	}
}

func TestReadJSONWithRejectsBadAnnotations(t *testing.T) {
	nw, rs := annotatedWorld(t)
	var buf bytes.Buffer
	if err := nw.WriteJSONWith(&buf, rs); err != nil {
		t.Fatal(err)
	}
	out := bytes.Replace(buf.Bytes(), []byte(`"rel": "peer"`), []byte(`"rel": "friend"`), 1)
	if !bytes.Contains(buf.Bytes(), []byte(`"rel": "peer"`)) {
		t.Skip("no peer link in this world; adjust the seed")
	}
	if _, _, err := ReadJSONWith(bytes.NewReader(out)); err == nil {
		t.Fatal("unknown relationship name accepted")
	}
	out = bytes.Replace(buf.Bytes(), []byte(`"a": 0,`), []byte(`"a": 99999,`), 1)
	if _, _, err := ReadJSONWith(bytes.NewReader(out)); err == nil {
		t.Fatal("out-of-range annotation accepted")
	}
}

func TestSpecBuildRelationships(t *testing.T) {
	nw, _ := annotatedWorld(t)

	rs, err := Spec{}.BuildRelationships(nw)
	if err != nil || rs != nil {
		t.Fatalf("empty mode: got %v, %v; want nil, nil", rs, err)
	}

	inferred, err := Spec{Relationships: RelModeInfer}.BuildRelationships(nw)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := InferRelationships(nw, DefaultRelationshipRatio)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inferred.LinkAnnotations(), direct.LinkAnnotations()) {
		t.Fatal("RelModeInfer default ratio disagrees with InferRelationships(1.5)")
	}

	ratio2, err := Spec{Relationships: RelModeInfer, RelationshipRatio: 2}.BuildRelationships(nw)
	if err != nil {
		t.Fatal(err)
	}
	direct2, err := InferRelationships(nw, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ratio2.LinkAnnotations(), direct2.LinkAnnotations()) {
		t.Fatal("explicit ratio ignored")
	}

	hier, err := Spec{Relationships: RelModeHierarchical}.BuildRelationships(nw)
	if err != nil {
		t.Fatal(err)
	}
	directH, err := HierarchicalRelationships(nw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hier.LinkAnnotations(), directH.LinkAnnotations()) {
		t.Fatal("RelModeHierarchical disagrees with HierarchicalRelationships")
	}

	if _, err := (Spec{Relationships: "friend"}).BuildRelationships(nw); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
