package topology

import (
	"bytes"
	"sort"
	"testing"

	"bgpsim/internal/des"
)

func smallRealistic() RealisticSpec {
	spec := DefaultRealistic(40)
	spec.MaxASSize = 8
	return spec
}

func TestRealisticBuilds(t *testing.T) {
	rng := des.NewRNG(1)
	nw, err := Realistic(smallRealistic(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumASes() != 40 {
		t.Errorf("NumASes = %d, want 40", nw.NumASes())
	}
	if !nw.Connected() {
		t.Error("router-level graph not connected")
	}
}

func TestRealisticIBGPFullMesh(t *testing.T) {
	rng := des.NewRNG(2)
	nw, err := Realistic(smallRealistic(), rng)
	if err != nil {
		t.Fatal(err)
	}
	for as := 0; as < 40; as++ {
		nodes := nw.NodesInAS(as)
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				if !nw.HasLink(nodes[i], nodes[j]) {
					t.Fatalf("AS %d routers %d,%d not IBGP-meshed", as, nodes[i], nodes[j])
				}
			}
		}
	}
}

func TestRealisticInternalExternalFlags(t *testing.T) {
	rng := des.NewRNG(3)
	nw, err := Realistic(smallRealistic(), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range nw.Links() {
		sameAS := nw.ASOf(l.A) == nw.ASOf(l.B)
		if l.Internal != sameAS {
			t.Fatalf("link %d-%d internal=%v but sameAS=%v", l.A, l.B, l.Internal, sameAS)
		}
	}
}

func TestRealisticSizeDegreeCorrelation(t *testing.T) {
	rng := des.NewRNG(4)
	spec := smallRealistic()
	nw, err := Realistic(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Collect (size, external degree) per AS; the largest AS must have the
	// highest inter-AS degree (perfect correlation by construction).
	type asInfo struct{ size, extDeg int }
	infos := make([]asInfo, 0, spec.NumAS)
	for as := 0; as < spec.NumAS; as++ {
		nodes := nw.NodesInAS(as)
		ext := 0
		for _, id := range nodes {
			ext += nw.ExternalDegree(id)
		}
		infos = append(infos, asInfo{size: len(nodes), extDeg: ext})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].size > infos[j].size })
	// Spearman-ish check: the top-quartile ASes by size should have a higher
	// mean external degree than the bottom quartile.
	q := len(infos) / 4
	topSum, botSum := 0, 0
	for i := 0; i < q; i++ {
		topSum += infos[i].extDeg
		botSum += infos[len(infos)-1-i].extDeg
	}
	if topSum <= botSum {
		t.Errorf("largest ASes not better connected: top quartile ext degree %d <= bottom %d", topSum, botSum)
	}
}

func TestRealisticGeographicExtentGrowsWithSize(t *testing.T) {
	rng := des.NewRNG(5)
	spec := smallRealistic()
	nw, err := Realistic(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The largest AS should have a larger bounding box than a singleton.
	extent := func(as int) float64 {
		nodes := nw.NodesInAS(as)
		if len(nodes) < 2 {
			return 0
		}
		minX, maxX := nw.Grid(), 0.0
		for _, id := range nodes {
			p := nw.Node(id).Pos
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
		}
		return maxX - minX
	}
	largest, largestSize := 0, 0
	for as := 0; as < spec.NumAS; as++ {
		if n := len(nw.NodesInAS(as)); n > largestSize {
			largest, largestSize = as, n
		}
	}
	if largestSize > 2 && extent(largest) == 0 {
		t.Error("multi-router AS has zero geographic extent")
	}
}

func TestRealisticValidation(t *testing.T) {
	rng := des.NewRNG(1)
	bad := []RealisticSpec{
		{NumAS: 1, AvgDegree: 3.4, MaxDegree: 10, MinASSize: 1, MaxASSize: 5, SizeAlpha: 1},
		{NumAS: 40, AvgDegree: 3.4, MaxDegree: 50, MinASSize: 1, MaxASSize: 5, SizeAlpha: 1},
		{NumAS: 40, AvgDegree: 0.5, MaxDegree: 10, MinASSize: 1, MaxASSize: 5, SizeAlpha: 1},
		{NumAS: 40, AvgDegree: 3.4, MaxDegree: 10, MinASSize: 0, MaxASSize: 5, SizeAlpha: 1},
		{NumAS: 40, AvgDegree: 3.4, MaxDegree: 10, MinASSize: 6, MaxASSize: 5, SizeAlpha: 1},
		{NumAS: 40, AvgDegree: 3.4, MaxDegree: 10, MinASSize: 1, MaxASSize: 5, SizeAlpha: 0},
	}
	for i, s := range bad {
		if _, err := Realistic(s, rng); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := des.NewRNG(6)
	nw, err := Realistic(smallRealistic(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nw.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != nw.NumNodes() || back.NumLinks() != nw.NumLinks() {
		t.Fatalf("round trip changed counts: %d/%d -> %d/%d",
			nw.NumNodes(), nw.NumLinks(), back.NumNodes(), back.NumLinks())
	}
	for i := 0; i < nw.NumNodes(); i++ {
		if back.ASOf(i) != nw.ASOf(i) {
			t.Fatalf("node %d AS changed", i)
		}
		if back.Node(i).Pos != nw.Node(i).Pos {
			t.Fatalf("node %d position changed", i)
		}
	}
	for _, l := range nw.Links() {
		if !back.HasLink(l.A, l.B) {
			t.Fatalf("link %d-%d lost", l.A, l.B)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}
