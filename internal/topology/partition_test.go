package topology

import (
	"testing"

	"bgpsim/internal/des"
)

func partitionTestNet(t *testing.T, n int) *Network {
	t.Helper()
	nw, err := InternetLikeNetwork(n, 4.2, n/4, des.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestPartitionCoversAndBalances pins the two structural guarantees:
// every node lands in a valid shard, and shard sizes are balanced to
// within one node of each other.
func TestPartitionCoversAndBalances(t *testing.T) {
	nw := partitionTestNet(t, 200)
	for _, k := range []int{1, 2, 3, 4, 8, 16} {
		assign := Partition(nw, k)
		if len(assign) != nw.NumNodes() {
			t.Fatalf("k=%d: assignment covers %d of %d nodes", k, len(assign), nw.NumNodes())
		}
		sizes := make([]int, k)
		for v, sh := range assign {
			if sh < 0 || sh >= k {
				t.Fatalf("k=%d: node %d assigned to shard %d", k, v, sh)
			}
			sizes[sh]++
		}
		min, max := nw.NumNodes(), 0
		for _, s := range sizes {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		if max-min > 1 {
			t.Fatalf("k=%d: shard sizes %v spread more than one node", k, sizes)
		}
	}
}

// TestPartitionDeterministic pins that the heuristic has no hidden
// iteration-order dependence: two calls on clones of one network agree
// exactly.
func TestPartitionDeterministic(t *testing.T) {
	nw := partitionTestNet(t, 150)
	a := Partition(nw, 4)
	b := Partition(nw.Clone(), 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignment differs at node %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestPartitionCutBeatsRoundRobin pins that the BFS growth actually
// exploits locality: its cut must not exceed the placement-oblivious
// round-robin assignment's cut on a clustered graph.
func TestPartitionCutBeatsRoundRobin(t *testing.T) {
	nw := partitionTestNet(t, 300)
	for _, k := range []int{2, 4, 8} {
		assign := Partition(nw, k)
		rr := make([]int, nw.NumNodes())
		for i := range rr {
			rr[i] = i % k
		}
		greedy, naive := CutEdges(nw, assign), CutEdges(nw, rr)
		if greedy > naive {
			t.Errorf("k=%d: greedy cut %d exceeds round-robin cut %d", k, greedy, naive)
		}
		t.Logf("k=%d: cut %d of %d links (round-robin %d)", k, greedy, nw.NumLinks(), naive)
	}
}

// TestPartitionEdgeCases covers the degenerate inputs the simulator can
// hand the partitioner.
func TestPartitionEdgeCases(t *testing.T) {
	nw := partitionTestNet(t, 20)
	for _, sh := range Partition(nw, 1) {
		if sh != 0 {
			t.Fatal("k=1 must assign every node to shard 0")
		}
	}
	if got := Partition(NewNetwork(0), 4); len(got) != 0 {
		t.Fatalf("empty network produced %d assignments", len(got))
	}
	// More shards than nodes: all nodes placed, one per shard.
	tiny := NewNetwork(3)
	assign := Partition(tiny, 8)
	seen := map[int]bool{}
	for v, sh := range assign {
		if sh < 0 || sh >= 8 {
			t.Fatalf("node %d assigned to shard %d", v, sh)
		}
		if seen[sh] {
			t.Fatalf("shard %d got two nodes with shards to spare", sh)
		}
		seen[sh] = true
	}
	// Disconnected graph: isolated nodes must still all be assigned.
	iso := NewNetwork(10)
	if err := iso.AddLink(0, 1, false); err != nil {
		t.Fatal(err)
	}
	for v, sh := range Partition(iso, 3) {
		if sh < 0 || sh >= 3 {
			t.Fatalf("disconnected: node %d assigned to shard %d", v, sh)
		}
	}
}

// TestCutEdgesCounts pins CutEdges on a hand-checked square.
func TestCutEdgesCounts(t *testing.T) {
	nw := NewNetwork(4) // square: 0-1-2-3-0
	for _, l := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := nw.AddLink(l[0], l[1], false); err != nil {
			t.Fatal(err)
		}
	}
	if cut := CutEdges(nw, []int{0, 0, 1, 1}); cut != 2 {
		t.Fatalf("square split 01|23: cut %d, want 2", cut)
	}
	if cut := CutEdges(nw, []int{0, 0, 0, 0}); cut != 0 {
		t.Fatalf("single shard: cut %d, want 0", cut)
	}
}
