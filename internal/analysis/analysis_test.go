package analysis

import (
	"strings"
	"testing"
	"time"

	"bgpsim/internal/trace"
)

func sampleEvents() []trace.Event {
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	return []trace.Event{
		// Before the window: ignored.
		{At: sec(1), Kind: trace.KindSend, Node: 0, Peer: 1, Dest: 5},
		{At: sec(2), Kind: trace.KindRouteChange, Node: 0, Dest: 5, Value: 2},
		// In window (starts at 10s).
		{At: sec(10.5), Kind: trace.KindSend, Node: 1, Peer: 2, Dest: 5},
		{At: sec(10.7), Kind: trace.KindSend, Node: 1, Peer: 0, Dest: 5, Withdrawal: true},
		{At: sec(11.2), Kind: trace.KindRouteChange, Node: 1, Dest: 5, Value: 3},
		{At: sec(12.8), Kind: trace.KindRouteChange, Node: 1, Dest: 5, Value: 2}, // same route changes again
		{At: sec(11.0), Kind: trace.KindRouteChange, Node: 2, Dest: 5, Value: 4},
		{At: sec(14.1), Kind: trace.KindSend, Node: 2, Peer: 1, Dest: 6},
		{At: sec(14.2), Kind: trace.KindProcess, Node: 2, Value: 3}, // not counted in sends
	}
}

func TestAnalyzeCountsAndWindows(t *testing.T) {
	r, err := Analyze(sampleEvents(), 10*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSends != 3 {
		t.Errorf("TotalSends = %d, want 3 (pre-window excluded)", r.TotalSends)
	}
	if r.TotalWithdrawals != 1 {
		t.Errorf("TotalWithdrawals = %d", r.TotalWithdrawals)
	}
	if r.TotalRouteChanges != 3 {
		t.Errorf("TotalRouteChanges = %d", r.TotalRouteChanges)
	}
	if r.PerNodeSends[1] != 2 || r.PerNodeSends[2] != 1 {
		t.Errorf("PerNodeSends = %v", r.PerNodeSends)
	}
}

func TestAnalyzeSeriesBuckets(t *testing.T) {
	r, err := Analyze(sampleEvents(), 10*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Sends at rel 0.5, 0.7 (bucket 0) and 4.1 (bucket 4).
	if r.Sends.Values[0] != 2 {
		t.Errorf("send bucket 0 = %v", r.Sends.Values[0])
	}
	if len(r.Sends.Values) != 5 || r.Sends.Values[4] != 1 {
		t.Errorf("send buckets = %v", r.Sends.Values)
	}
	if r.Sends.PeakIndex() != 0 {
		t.Errorf("peak = %d", r.Sends.PeakIndex())
	}
}

func TestStabilization(t *testing.T) {
	r, err := Analyze(sampleEvents(), 10*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Two (node,dest) pairs change in-window: (1,5) last at rel 2.8s,
	// (2,5) at rel 1.0s.
	if got := r.StableAt(2 * time.Second); got != 0.5 {
		t.Errorf("StableAt(2s) = %v, want 0.5", got)
	}
	if got := r.StableAt(3 * time.Second); got != 1 {
		t.Errorf("StableAt(3s) = %v, want 1", got)
	}
	if got := r.StabilizationQuantile(1.0); got != 2800*time.Millisecond {
		t.Errorf("100%% stable at %v, want 2.8s", got)
	}
}

func TestTopSenders(t *testing.T) {
	r, err := Analyze(sampleEvents(), 10*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	top := r.TopSenders(10)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Node != 1 || top[0].Sends != 2 {
		t.Errorf("top[0] = %+v", top[0])
	}
	if got := r.TopSenders(1); len(got) != 1 {
		t.Errorf("TopSenders(1) = %v", got)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, 0, 0); err == nil {
		t.Error("zero bucket accepted")
	}
}

func TestAnalyzeEmptyWindow(t *testing.T) {
	r, err := Analyze(sampleEvents(), time.Hour, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSends != 0 || r.TotalRouteChanges != 0 {
		t.Error("events counted past the horizon")
	}
	if r.StableAt(time.Second) != 0 {
		t.Error("empty stabilization CDF nonzero")
	}
	out := r.Render()
	if !strings.Contains(out, "updates sent      0") {
		t.Errorf("render = %q", out)
	}
}

func TestRenderContainsDigest(t *testing.T) {
	r, err := Analyze(sampleEvents(), 10*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{"updates sent      3", "1 withdrawals", "route changes     3",
		"routes stable", "busiest senders", "node 1 (2)", "update activity", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSparklineNoActivity(t *testing.T) {
	if got := sparkline([]float64{0, 0}); got != "(no activity)" {
		t.Errorf("sparkline = %q", got)
	}
}
