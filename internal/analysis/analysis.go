// Package analysis turns a recorded simulation trace into the
// convergence diagnostics the paper reasons about informally: how update
// activity evolves over time after a failure, when each router's routes
// stop changing, and which routers carry the load. It consumes
// trace.Recorder output and produces renderable reports.
package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"bgpsim/internal/stats"
	"bgpsim/internal/trace"
)

// Report is the digest of one simulation window.
type Report struct {
	// WindowStart anchors relative times (typically the failure instant).
	WindowStart time.Duration
	// Bucket is the time-series resolution.
	Bucket time.Duration
	// Sends[i] counts route-level updates sent in bucket i.
	Sends stats.Series
	// RouteChanges[i] counts Loc-RIB changes in bucket i.
	RouteChanges stats.Series
	// StabilizationCDF is the distribution of per-(node, destination)
	// final-change times relative to WindowStart: StabilizationCDF.At(t)
	// is the fraction of eventually-stable routes already stable at t.
	StabilizationCDF stats.CDF
	// PerNodeSends maps node -> updates sent in the window.
	PerNodeSends map[int]int
	// Totals.
	TotalSends        int
	TotalWithdrawals  int
	TotalRouteChanges int
}

// Analyze digests the events that fall at or after windowStart.
// bucket must be positive.
func Analyze(events []trace.Event, windowStart, bucket time.Duration) (*Report, error) {
	if bucket <= 0 {
		return nil, fmt.Errorf("analysis: bucket %v", bucket)
	}
	r := &Report{
		WindowStart:  windowStart,
		Bucket:       bucket,
		PerNodeSends: make(map[int]int),
	}
	var sendTimes, changeTimes []float64
	lastChange := make(map[[2]int]time.Duration) // (node, dest) -> last change
	for _, e := range events {
		if e.At < windowStart {
			continue
		}
		rel := e.At - windowStart
		switch e.Kind {
		case trace.KindSend:
			r.TotalSends++
			if e.Withdrawal {
				r.TotalWithdrawals++
			}
			r.PerNodeSends[e.Node]++
			sendTimes = append(sendTimes, rel.Seconds())
		case trace.KindRouteChange:
			r.TotalRouteChanges++
			changeTimes = append(changeTimes, rel.Seconds())
			lastChange[[2]int{e.Node, e.Dest}] = rel
		}
	}
	var err error
	if r.Sends, err = stats.NewSeries(bucket.Seconds(), sendTimes, nil); err != nil {
		return nil, err
	}
	if r.RouteChanges, err = stats.NewSeries(bucket.Seconds(), changeTimes, nil); err != nil {
		return nil, err
	}
	finals := make([]float64, 0, len(lastChange))
	for _, at := range lastChange {
		finals = append(finals, at.Seconds())
	}
	r.StabilizationCDF = stats.NewCDF(finals)
	return r, nil
}

// StableAt returns the fraction of eventually-changing routes that had
// already reached their final state t after the window start.
func (r *Report) StableAt(t time.Duration) float64 {
	return r.StabilizationCDF.At(t.Seconds())
}

// StabilizationQuantile returns the time by which fraction q of the
// eventually-changing routes reached their final state.
func (r *Report) StabilizationQuantile(q float64) time.Duration {
	return time.Duration(r.StabilizationCDF.Quantile(q) * float64(time.Second))
}

// Hotspot is one node's share of the update load.
type Hotspot struct {
	Node  int
	Sends int
}

// TopSenders returns the k busiest nodes, descending, ties by node id.
func (r *Report) TopSenders(k int) []Hotspot {
	hs := make([]Hotspot, 0, len(r.PerNodeSends))
	for node, sends := range r.PerNodeSends {
		hs = append(hs, Hotspot{Node: node, Sends: sends})
	}
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Sends != hs[j].Sends {
			return hs[i].Sends > hs[j].Sends
		}
		return hs[i].Node < hs[j].Node
	})
	if k > len(hs) {
		k = len(hs)
	}
	return hs[:k]
}

// Render formats the report as a readable text block.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window start      %v\n", r.WindowStart)
	fmt.Fprintf(&b, "updates sent      %d (%d withdrawals)\n", r.TotalSends, r.TotalWithdrawals)
	fmt.Fprintf(&b, "route changes     %d\n", r.TotalRouteChanges)
	if r.StabilizationCDF.Len() > 0 {
		fmt.Fprintf(&b, "routes stable     50%% by %v, 90%% by %v, 100%% by %v\n",
			r.StabilizationQuantile(0.5).Round(time.Millisecond),
			r.StabilizationQuantile(0.9).Round(time.Millisecond),
			r.StabilizationQuantile(1.0).Round(time.Millisecond))
	}
	if top := r.TopSenders(5); len(top) > 0 {
		b.WriteString("busiest senders  ")
		for i, h := range top {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "node %d (%d)", h.Node, h.Sends)
		}
		b.WriteString("\n")
	}
	if len(r.Sends.Values) > 0 {
		fmt.Fprintf(&b, "update activity per %v bucket:\n", r.Bucket)
		b.WriteString(sparkline(r.Sends.Values))
		b.WriteString("\n")
	}
	return b.String()
}

// sparkline renders buckets as a crude bar chart, one row per bucket.
func sparkline(values []float64) string {
	peak := stats.Max(values)
	if peak <= 0 {
		return "(no activity)"
	}
	var b strings.Builder
	const width = 50
	for i, v := range values {
		bars := int(v / peak * width)
		fmt.Fprintf(&b, "  %4d | %s %.0f\n", i, strings.Repeat("#", bars), v)
	}
	return strings.TrimRight(b.String(), "\n")
}
