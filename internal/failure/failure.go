// Package failure selects which routers a large-scale failure destroys.
// The paper's default is a contiguous geographic failure: all routers in
// a region around the grid center fail together ("many failure scenarios
// ... are expected to be geographically concentrated"). Random scattered
// failures and edge-of-grid failures are provided for comparison.
package failure

import (
	"fmt"
	"math"
	"sort"

	"bgpsim/internal/des"
	"bgpsim/internal/topology"
)

// Kind names a failure model.
type Kind string

// Failure models.
const (
	// KindGeographic fails the k routers nearest to a point (default the
	// grid center), i.e. a growing contiguous disc. The paper's model.
	KindGeographic Kind = "geographic"
	// KindEdge fails the k routers nearest to a grid corner, for the
	// edge-effect comparison mentioned in Section 3.1.
	KindEdge Kind = "edge"
	// KindRandom fails k routers chosen uniformly at random.
	KindRandom Kind = "random"
)

// Kinds lists the supported failure models.
func Kinds() []Kind { return []Kind{KindGeographic, KindEdge, KindRandom} }

// Spec selects a failure. Exactly one of Fraction (of all routers) or
// Count must be positive.
type Spec struct {
	Kind     Kind            `json:"kind"`
	Fraction float64         `json:"fraction,omitempty"`
	Count    int             `json:"count,omitempty"`
	Center   *topology.Point `json:"center,omitempty"` // geographic only; default grid center
}

// Geographic returns the paper's default failure at the given fraction.
func Geographic(fraction float64) Spec {
	return Spec{Kind: KindGeographic, Fraction: fraction}
}

// Validate checks the spec.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindGeographic, KindEdge, KindRandom:
	default:
		return fmt.Errorf("failure: unknown kind %q", s.Kind)
	}
	if (s.Fraction <= 0) == (s.Count <= 0) {
		return fmt.Errorf("failure: exactly one of Fraction or Count must be set")
	}
	if s.Fraction < 0 || s.Fraction > 1 {
		return fmt.Errorf("failure: fraction %v outside (0,1]", s.Fraction)
	}
	return nil
}

// CountFor resolves the spec to a node count for a network of n routers.
// A positive fraction rounds to the nearest node with a minimum of one.
func (s Spec) CountFor(n int) int {
	if s.Count > 0 {
		if s.Count > n {
			return n
		}
		return s.Count
	}
	k := int(math.Round(s.Fraction * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// SelectLinks returns links (node-ID pairs) for a link-only failure:
// the spec's Count/Fraction is interpreted against the link count. For
// KindGeographic and KindEdge the links with midpoints nearest the
// anchor point are cut; KindRandom cuts uniformly random links.
func SelectLinks(nw *topology.Network, s Spec, rng *des.RNG) ([][2]int, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	links := nw.Links()
	k := s.CountFor(len(links))
	switch s.Kind {
	case KindRandom:
		perm := rng.Perm(len(links))
		out := make([][2]int, 0, k)
		for _, idx := range perm[:k] {
			out = append(out, [2]int{links[idx].A, links[idx].B})
		}
		sortLinks(out)
		return out, nil
	default:
		anchor := topology.GridCenter(nw)
		if s.Kind == KindEdge {
			anchor = topology.Point{X: 0, Y: 0}
		}
		if s.Center != nil {
			anchor = *s.Center
		}
		type linkDist struct {
			l [2]int
			d float64
		}
		ds := make([]linkDist, 0, len(links))
		for _, l := range links {
			pa, pb := nw.Node(l.A).Pos, nw.Node(l.B).Pos
			mid := topology.Point{X: (pa.X + pb.X) / 2, Y: (pa.Y + pb.Y) / 2}
			ds = append(ds, linkDist{l: [2]int{l.A, l.B}, d: mid.Dist(anchor)})
		}
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].d != ds[j].d {
				return ds[i].d < ds[j].d
			}
			if ds[i].l[0] != ds[j].l[0] {
				return ds[i].l[0] < ds[j].l[0]
			}
			return ds[i].l[1] < ds[j].l[1]
		})
		out := make([][2]int, 0, k)
		for _, ld := range ds[:k] {
			out = append(out, ld.l)
		}
		sortLinks(out)
		return out, nil
	}
}

func sortLinks(ls [][2]int) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i][0] != ls[j][0] {
			return ls[i][0] < ls[j][0]
		}
		return ls[i][1] < ls[j][1]
	})
}

// Select returns the sorted IDs of the routers the failure kills.
// rng is consumed only by KindRandom.
func Select(nw *topology.Network, s Spec, rng *des.RNG) ([]int, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	k := s.CountFor(nw.NumNodes())
	var out []int
	switch s.Kind {
	case KindGeographic:
		center := topology.GridCenter(nw)
		if s.Center != nil {
			center = *s.Center
		}
		out = topology.NearestNodes(nw, center, k, nil)
	case KindEdge:
		out = topology.NearestNodes(nw, topology.Point{X: 0, Y: 0}, k, nil)
	case KindRandom:
		perm := rng.Perm(nw.NumNodes())
		out = append(out, perm[:k]...)
	}
	sort.Ints(out)
	return out, nil
}
