package failure

import (
	"sort"
	"testing"

	"bgpsim/internal/des"
	"bgpsim/internal/topology"
)

func grid5x5(t *testing.T) *topology.Network {
	t.Helper()
	nw := topology.NewNetwork(25)
	for i := 0; i < 25; i++ {
		nw.SetPos(i, topology.Point{X: float64(i%5) * 250, Y: float64(i/5) * 250})
	}
	return nw
}

func TestValidate(t *testing.T) {
	good := []Spec{
		Geographic(0.05),
		{Kind: KindRandom, Count: 3},
		{Kind: KindEdge, Fraction: 0.1},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("good case %d rejected: %v", i, err)
		}
	}
	bad := []Spec{
		{Kind: "volcano", Fraction: 0.1},
		{Kind: KindGeographic},                          // neither set
		{Kind: KindGeographic, Fraction: 0.1, Count: 2}, // both set
		{Kind: KindGeographic, Fraction: 1.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad case %d accepted: %+v", i, s)
		}
	}
}

func TestCountFor(t *testing.T) {
	if got := Geographic(0.05).CountFor(120); got != 6 {
		t.Errorf("5%% of 120 = %d, want 6", got)
	}
	if got := Geographic(0.001).CountFor(120); got != 1 {
		t.Errorf("tiny fraction = %d, want 1 (minimum)", got)
	}
	if got := (Spec{Kind: KindRandom, Count: 500}).CountFor(120); got != 120 {
		t.Errorf("oversized count = %d, want clamped to 120", got)
	}
	if got := Geographic(1).CountFor(120); got != 120 {
		t.Errorf("full failure = %d", got)
	}
}

func TestGeographicSelectsCenterDisc(t *testing.T) {
	nw := grid5x5(t)
	rng := des.NewRNG(1)
	got, err := Select(nw, Spec{Kind: KindGeographic, Count: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Node 12 sits at (500,500), the exact grid center.
	if len(got) != 1 || got[0] != 12 {
		t.Errorf("center failure = %v, want [12]", got)
	}
	got, err = Select(nw, Spec{Kind: KindGeographic, Count: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{7, 11, 12, 13, 17} // center plus the 4-neighborhood
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("disc = %v, want %v", got, want)
		}
	}
}

func TestGeographicCustomCenter(t *testing.T) {
	nw := grid5x5(t)
	rng := des.NewRNG(1)
	c := topology.Point{X: 0, Y: 0}
	got, err := Select(nw, Spec{Kind: KindGeographic, Count: 1, Center: &c}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("corner-centered failure = %v, want [0]", got)
	}
}

func TestEdgeSelectsCorner(t *testing.T) {
	nw := grid5x5(t)
	rng := des.NewRNG(1)
	got, err := Select(nw, Spec{Kind: KindEdge, Count: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range got {
		p := nw.Node(id).Pos
		if p.X > 250 || p.Y > 250 {
			t.Errorf("edge failure picked central node %d at %v", id, p)
		}
	}
}

func TestRandomSelectsExactCountNoDuplicates(t *testing.T) {
	nw := grid5x5(t)
	rng := des.NewRNG(7)
	got, err := Select(nw, Spec{Kind: KindRandom, Count: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Error("result not sorted")
	}
	seen := make(map[int]bool)
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		if id < 0 || id >= 25 {
			t.Fatalf("id %d out of range", id)
		}
	}
}

func TestRandomIsSeedDeterministic(t *testing.T) {
	nw := grid5x5(t)
	a, _ := Select(nw, Spec{Kind: KindRandom, Count: 5}, des.NewRNG(3))
	b, _ := Select(nw, Spec{Kind: KindRandom, Count: 5}, des.NewRNG(3))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different selections")
		}
	}
}

func TestSelectRejectsInvalidSpec(t *testing.T) {
	nw := grid5x5(t)
	if _, err := Select(nw, Spec{Kind: "nope", Count: 1}, des.NewRNG(1)); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestGeographicFractionOnPaperScale(t *testing.T) {
	rng := des.NewRNG(5)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(120), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.01, 0.05, 0.10, 0.20} {
		got, err := Select(nw, Geographic(frac), rng)
		if err != nil {
			t.Fatal(err)
		}
		want := Geographic(frac).CountFor(120)
		if len(got) != want {
			t.Errorf("fraction %v selected %d nodes, want %d", frac, len(got), want)
		}
	}
}

func TestSelectLinksGeographic(t *testing.T) {
	nw := grid5x5(t)
	// Add a few links: center cross and a corner link.
	for _, l := range [][2]int{{12, 13}, {12, 7}, {0, 1}} {
		if err := nw.AddLink(l[0], l[1], false); err != nil {
			t.Fatal(err)
		}
	}
	got, err := SelectLinks(nw, Spec{Kind: KindGeographic, Count: 2}, des.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	for _, l := range got {
		if l[0] == 0 && l[1] == 1 {
			t.Errorf("corner link selected before central ones: %v", got)
		}
	}
}

func TestSelectLinksRandomCountAndDeterminism(t *testing.T) {
	nw := grid5x5(t)
	for i := 0; i < 24; i++ {
		if err := nw.AddLink(i, i+1, false); err != nil {
			t.Fatal(err)
		}
	}
	a, err := SelectLinks(nw, Spec{Kind: KindRandom, Count: 5}, des.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 5 {
		t.Fatalf("len = %d", len(a))
	}
	b, _ := SelectLinks(nw, Spec{Kind: KindRandom, Count: 5}, des.NewRNG(3))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different link selection")
		}
	}
}

func TestSelectLinksFraction(t *testing.T) {
	nw := grid5x5(t)
	for i := 0; i < 20; i++ {
		if err := nw.AddLink(i, i+1, false); err != nil {
			t.Fatal(err)
		}
	}
	got, err := SelectLinks(nw, Spec{Kind: KindGeographic, Fraction: 0.25}, des.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("25%% of 20 links = %d, want 5", len(got))
	}
}

func TestSelectLinksRejectsInvalidSpec(t *testing.T) {
	nw := grid5x5(t)
	if _, err := SelectLinks(nw, Spec{Kind: "nope", Count: 1}, des.NewRNG(1)); err == nil {
		t.Error("invalid spec accepted")
	}
}
