package core

import (
	"testing"
)

// TestFigureBytesUnchangedBySequencedShards pins the contract the
// sharded determinism CI job rests on: regenerating a figure with
// Shards >= 2 in the default sequenced mode must reproduce the
// unsharded figure byte-for-byte, and the explicit single-shard request
// (Shards = 1) must normalize away entirely, mirroring the
// PrefixesPerOrigin = 1 contract.
func TestFigureBytesUnchangedBySequencedShards(t *testing.T) {
	for _, id := range []string{"1", "3"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(id, func(t *testing.T) {
			render := func(shards int) string {
				opts := microOptions()
				opts.Shards = shards
				fig, err := e.Run(opts)
				if err != nil {
					t.Fatal(err)
				}
				return fig.Render()
			}
			want := render(0)
			for _, shards := range []int{1, 2, 4} {
				if got := render(shards); got != want {
					t.Errorf("fig%s: Shards=%d diverged from the single engine\nsingle:\n%s\nsharded:\n%s",
						id, shards, want, got)
				}
			}
		})
	}
}

// TestShardedFigureWorkerInvariant crosses the two parallelism axes: a
// sharded sweep fanned over several sweep workers must still render the
// single-worker bytes. This is also the test the CI -race run leans on
// to exercise concurrent sweep workers each driving their own sharded
// simulator groups.
func TestShardedFigureWorkerInvariant(t *testing.T) {
	e, err := Lookup("3")
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		opts := microOptions()
		opts.Shards = 4
		opts.Workers = workers
		fig, err := e.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return fig.Render()
	}
	want := render(1)
	for _, workers := range []int{2, 4} {
		if got := render(workers); got != want {
			t.Errorf("workers=%d: sharded figure diverged from serial\nserial:\n%s\nparallel:\n%s",
				workers, want, got)
		}
	}
}

// TestConcurrentShardedFigureReproducible pins the concurrent mode's
// determinism class at the figure level: two runs with identical
// options must render identical bytes even though they need not match
// the recorded single-engine figures.
func TestConcurrentShardedFigureReproducible(t *testing.T) {
	e, err := Lookup("3")
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		opts := microOptions()
		opts.Shards = 4
		opts.ShardConcurrent = true
		fig, err := e.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return fig.Render()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("two concurrent sharded runs diverged\nfirst:\n%s\nsecond:\n%s", a, b)
	}
}
