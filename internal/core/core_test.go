package core

import (
	"fmt"
	"strings"
	"testing"
)

// microOptions is the smallest configuration that still exercises every
// code path: 24 nodes, one trial, two points per axis.
func microOptions() Options {
	return Options{
		Nodes:              24,
		Trials:             1,
		Seed:               3,
		FailureSizes:       []float64{5, 15},
		MRAIs:              []float64{0.5, 2.0},
		RealisticMaxASSize: 3,
	}
}

func TestRegistryCoversAllPaperFigures(t *testing.T) {
	reg := Registry()
	byID := make(map[string]Experiment, len(reg))
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.What == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if _, dup := byID[e.ID]; dup {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		byID[e.ID] = e
	}
	for i := 1; i <= 13; i++ {
		if _, ok := byID[fmt.Sprintf("fig%d", i)]; !ok {
			t.Errorf("missing fig%d", i)
		}
	}
	if len(reg) < 13+5 {
		t.Errorf("registry has %d experiments; expected 13 figures plus ablations", len(reg))
	}
}

func TestLookup(t *testing.T) {
	for _, id := range []string{"fig7", "7", "ablation-batch-discard"} {
		if _, err := Lookup(id); err != nil {
			t.Errorf("Lookup(%q): %v", id, err)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestOptionsNormalize(t *testing.T) {
	var o Options
	n := o.normalize()
	def := DefaultOptions()
	if n.Nodes != def.Nodes || n.Trials != def.Trials || n.Seed != def.Seed {
		t.Errorf("normalize() = %+v", n)
	}
	if len(n.FailureSizes) == 0 || len(n.MRAIs) == 0 || n.RealisticMaxASSize == 0 {
		t.Error("normalize left axes empty")
	}
	custom := Options{Nodes: 60}
	if got := custom.normalize(); got.Nodes != 60 {
		t.Error("normalize overwrote explicit field")
	}
}

func TestFig1SmokeAndShape(t *testing.T) {
	fig, err := fig1().Run(microOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3 constant MRAIs", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %q points = %d", s.Name, len(s.Points))
		}
	}
	if fig.ID != "Fig 1" || !strings.Contains(fig.XLabel, "failure size") {
		t.Errorf("labels: id=%q x=%q", fig.ID, fig.XLabel)
	}
}

func TestFig2UsesMessageMetric(t *testing.T) {
	fig, err := fig2().Run(microOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig.YLabel, "messages") {
		t.Errorf("y label = %q", fig.YLabel)
	}
	// Message counts are large integers, delays are small seconds.
	if fig.Series[0].Points[0].Y < 50 {
		t.Errorf("message metric looks like a delay: %v", fig.Series[0].Points[0].Y)
	}
}

func TestFig3MRAISweepAxes(t *testing.T) {
	fig, err := fig3().Run(microOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	if !strings.Contains(fig.XLabel, "MRAI") {
		t.Errorf("x label = %q", fig.XLabel)
	}
	for _, s := range fig.Series {
		for i, p := range s.Points {
			if p.X != microOptions().MRAIs[i] {
				t.Errorf("series %q x[%d] = %v", s.Name, i, p.X)
			}
		}
	}
}

func TestAllExperimentsRunAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("micro sweep of all experiments skipped in -short")
	}
	o := microOptions()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			fig, err := e.Run(o)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(fig.Series) == 0 {
				t.Fatalf("%s: no series", e.ID)
			}
			for _, s := range fig.Series {
				if len(s.Points) == 0 {
					t.Errorf("%s/%s: no points", e.ID, s.Name)
				}
				for _, p := range s.Points {
					if p.Y < 0 {
						t.Errorf("%s/%s: negative y %v", e.ID, s.Name, p.Y)
					}
				}
			}
			out := fig.Render()
			if !strings.Contains(out, fig.ID) {
				t.Errorf("%s: render missing id", e.ID)
			}
		})
	}
}

func TestProgressCallbacksFire(t *testing.T) {
	o := microOptions()
	count := 0
	o.Progress = func(done, total int) {
		count++
		if done > total {
			t.Errorf("done %d > total %d", done, total)
		}
	}
	if _, err := fig1().Run(o); err != nil {
		t.Fatal(err)
	}
	if count != 3*2 {
		t.Errorf("progress fired %d times, want 6", count)
	}
}
