package core

import (
	"time"

	"bgpsim/internal/experiment"
	"bgpsim/internal/failure"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
)

// sweepBySize builds a failure-size sweep (x axis: % of routers failed,
// one series per scheme) on the given topology.
func sweepBySize(o Options, topo topology.Spec, schemes []experiment.Scheme, metric experiment.Metric) (experiment.Figure, error) {
	names := make([]string, len(schemes))
	for i, s := range schemes {
		names[i] = s.Name
	}
	fig, err := o.sweep(experiment.SweepConfig{
		SeriesNames:           names,
		Xs:                    o.FailureSizes,
		Trials:                o.Trials,
		Metric:                metric,
		SameWorldAcrossSeries: true,
		Workers:               o.Workers,
		Progress:              o.Progress,
		Cell: func(si int, x float64) experiment.Scenario {
			return experiment.Scenario{
				Topology: topo,
				Failure:  failure.Geographic(x / 100),
				Scheme:   schemes[si],
				Seed:     o.Seed,
			}
		},
	})
	if err != nil {
		return experiment.Figure{}, err
	}
	fig.XLabel = "failure size (% of routers)"
	return fig, nil
}

// mraiVariant is one series of an MRAI sweep: a topology and failure
// size, with an optional scheme wrapper around the swept constant MRAI.
type mraiVariant struct {
	name    string
	topo    topology.Spec
	frac    float64
	batched bool
}

// sweepByMRAI builds a V-curve sweep (x axis: MRAI seconds).
func sweepByMRAI(o Options, variants []mraiVariant) (experiment.Figure, error) {
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	fig, err := o.sweep(experiment.SweepConfig{
		SeriesNames:           names,
		Xs:                    o.MRAIs,
		Trials:                o.Trials,
		Metric:                experiment.MetricDelay,
		SameWorldAcrossSeries: false, // series differ in topology/failure anyway
		Workers:               o.Workers,
		Progress:              o.Progress,
		Cell: func(si int, x float64) experiment.Scenario {
			v := variants[si]
			scheme := experiment.ConstantMRAI(experiment.SecondsToDuration(x))
			if v.batched {
				scheme = experiment.Batching(experiment.SecondsToDuration(x))
			}
			return experiment.Scenario{
				Topology: v.topo,
				Failure:  failure.Geographic(v.frac),
				Scheme:   scheme,
				Seed:     o.Seed,
			}
		},
	})
	if err != nil {
		return experiment.Figure{}, err
	}
	fig.XLabel = "MRAI (s)"
	return fig, nil
}

func constantSchemes() []experiment.Scheme {
	out := make([]experiment.Scheme, len(PaperMRAIs))
	for i, d := range PaperMRAIs {
		out[i] = experiment.ConstantMRAI(d)
	}
	return out
}

func fig1() Experiment {
	return Experiment{
		ID:    "fig1",
		Title: "Convergence delay for different sized failures",
		What: "low MRAI is best for small failures but its delay rises " +
			"sharply with failure size; high MRAI starts worse but grows gently",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), constantSchemes(), experiment.MetricDelay)
			fig.ID, fig.Title = "Fig 1", "Convergence delay for different sized failures"
			return fig, err
		},
	}
}

func fig2() Experiment {
	return Experiment{
		ID:    "fig2",
		Title: "Number of generated messages for different MRAI values",
		What: "message count for MRAI=0.5s shoots up with failure size; " +
			"larger MRAIs grow gradually",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), constantSchemes(), experiment.MetricMessages)
			fig.ID, fig.Title = "Fig 2", "Number of generated messages for different MRAI values"
			return fig, err
		},
	}
}

func fig3() Experiment {
	return Experiment{
		ID:    "fig3",
		Title: "Variation in convergence delay with MRAI",
		What: "V-shaped curves whose minimum (optimal MRAI) moves right as " +
			"the failure grows (≈0.5s at 1%, ≈1.25s at 5%)",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			topo := o.skewedTopo(topology.KindSkewed7030)
			fig, err := sweepByMRAI(o, []mraiVariant{
				{name: "1% failure", topo: topo, frac: 0.01},
				{name: "5% failure", topo: topo, frac: 0.05},
				{name: "10% failure", topo: topo, frac: 0.10},
			})
			fig.ID, fig.Title = "Fig 3", "Variation in convergence delay with MRAI"
			return fig, err
		},
	}
}

func fig4() Experiment {
	return Experiment{
		ID:    "fig4",
		Title: "Convergence delay for different topologies",
		What: "at 5% failure the optimal MRAI grows with the degree of the " +
			"high-degree nodes: ≈1.0s (50-50), ≈1.25s (70-30), ≈2.25s (85-15)",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			fig, err := sweepByMRAI(o, []mraiVariant{
				{name: "50-50", topo: o.skewedTopo(topology.KindSkewed5050), frac: 0.05},
				{name: "70-30", topo: o.skewedTopo(topology.KindSkewed7030), frac: 0.05},
				{name: "85-15", topo: o.skewedTopo(topology.KindSkewed8515), frac: 0.05},
			})
			fig.ID, fig.Title = "Fig 4", "Convergence delay for different topologies"
			return fig, err
		},
	}
}

func fig5() Experiment {
	return Experiment{
		ID:    "fig5",
		Title: "Effect of average degree on convergence delay",
		What: "doubling the average degree (3.8 -> 7.6) raises both the " +
			"optimal MRAI (to ≈2s) and the delay",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			fig, err := sweepByMRAI(o, []mraiVariant{
				{name: "avg degree 3.8", topo: o.skewedTopo(topology.KindSkewed5050), frac: 0.05},
				{name: "avg degree 7.6", topo: o.skewedTopo(topology.KindSkewed5050Dense), frac: 0.05},
			})
			fig.ID, fig.Title = "Fig 5", "Effect of average degree on convergence delay"
			return fig, err
		},
	}
}

// degreeThreshold separates the low class (degree 1–3) from the high
// class in the skewed topologies; the repair step can bump a low node to
// 4, so the cut sits at 5.
const degreeThreshold = 5

func fig6() Experiment {
	low, high := 500*time.Millisecond, 2250*time.Millisecond
	return Experiment{
		ID:    "fig6",
		Title: "Effect of degree dependent MRAI",
		What: "(low 0.5, high 2.25) tracks MRAI=2.25s for large failures while " +
			"staying lower for small ones; the reversed assignment is as bad as 0.5s",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			schemes := []experiment.Scheme{
				named("low 0.5, high 2.25", experiment.DegreeMRAI(degreeThreshold, low, high)),
				named("low 2.25, high 0.5", experiment.DegreeMRAI(degreeThreshold, high, low)),
				experiment.ConstantMRAI(low),
				experiment.ConstantMRAI(high),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Fig 6", "Effect of degree dependent MRAI"
			return fig, err
		},
	}
}

func fig7() Experiment {
	return Experiment{
		ID:    "fig7",
		Title: "Effect of dynamic MRAI",
		What: "the dynamic scheme stays near the per-size minimum: at or below " +
			"MRAI=0.5s for small failures, between 1.25s and 2.25s for large ones",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			schemes := append([]experiment.Scheme{experiment.PaperDynamicMRAI()}, constantSchemes()...)
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Fig 7", "Effect of dynamic MRAI"
			return fig, err
		},
	}
}

func fig8() Experiment {
	return Experiment{
		ID:    "fig8",
		Title: "Effect of upTh on convergence delay",
		What: "low upTh behaves like a constant high MRAI (bad for small, good " +
			"for large failures); raising it shifts the balance, with a wide good range",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			var schemes []experiment.Scheme
			for _, up := range []time.Duration{50 * time.Millisecond, 200 * time.Millisecond,
				650 * time.Millisecond, 1250 * time.Millisecond} {
				schemes = append(schemes, named("upTh="+up.String(),
					experiment.DynamicMRAI(mrai.PaperLevels, up, 0)))
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Fig 8", "Effect of upTh on convergence delay"
			return fig, err
		},
	}
}

func fig9() Experiment {
	return Experiment{
		ID:    "fig9",
		Title: "Effect of downTh on convergence delay",
		What: "raising downTh makes more nodes drop their MRAI, increasing the " +
			"delay for larger failures; results are stable over a range",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			var schemes []experiment.Scheme
			for _, down := range []time.Duration{0, 50 * time.Millisecond,
				200 * time.Millisecond, 450 * time.Millisecond} {
				schemes = append(schemes, named("downTh="+down.String(),
					experiment.DynamicMRAI(mrai.PaperLevels, mrai.PaperUpTh, down)))
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Fig 9", "Effect of downTh on convergence delay"
			return fig, err
		},
	}
}

func fig10() Experiment {
	return Experiment{
		ID:    "fig10",
		Title: "Performance of batching scheme",
		What: "batching at MRAI=0.5s cuts the large-failure delay by ≈3x versus " +
			"plain 0.5s while keeping small-failure delays low; batch+dynamic is best",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			schemes := []experiment.Scheme{
				experiment.Batching(500 * time.Millisecond),
				experiment.PaperDynamicMRAI(),
				named("batch+dynamic", experiment.BatchingDynamic(mrai.PaperLevels, mrai.PaperUpTh, mrai.PaperDownTh)),
				experiment.ConstantMRAI(500 * time.Millisecond),
				experiment.ConstantMRAI(2250 * time.Millisecond),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Fig 10", "Performance of batching scheme"
			return fig, err
		},
	}
}

func fig11() Experiment {
	return Experiment{
		ID:    "fig11",
		Title: "Number of messages generated by the batching scheme",
		What: "batching at 0.5s generates far fewer messages than plain 0.5s, " +
			"in the same range as MRAI=2.25s",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			schemes := []experiment.Scheme{
				experiment.Batching(500 * time.Millisecond),
				experiment.ConstantMRAI(500 * time.Millisecond),
				experiment.ConstantMRAI(2250 * time.Millisecond),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricMessages)
			fig.ID, fig.Title = "Fig 11", "Number of messages generated by the batching scheme"
			return fig, err
		},
	}
}

func fig12() Experiment {
	return Experiment{
		ID:    "fig12",
		Title: "Effect of batching with different MRAIs",
		What: "batching helps substantially below the optimal MRAI and is a " +
			"no-op above it (no overloaded nodes left to relieve)",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			topo := o.skewedTopo(topology.KindSkewed7030)
			fig, err := sweepByMRAI(o, []mraiVariant{
				{name: "batching", topo: topo, frac: 0.05, batched: true},
				{name: "no batching", topo: topo, frac: 0.05},
			})
			fig.ID, fig.Title = "Fig 12", "Effect of batching with different MRAIs"
			return fig, err
		},
	}
}

func fig13() Experiment {
	return Experiment{
		ID:    "fig13",
		Title: "Convergence delay of realistic topologies",
		What: "on multi-router-per-AS Internet-like topologies the same story " +
			"holds with optima 0.5s (small) and 3.5s (large failures)",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			levels := []time.Duration{500 * time.Millisecond, 1500 * time.Millisecond, 3500 * time.Millisecond}
			schemes := []experiment.Scheme{
				experiment.Batching(500 * time.Millisecond),
				named("dynamic", experiment.DynamicMRAI(levels, mrai.PaperUpTh, mrai.PaperDownTh)),
				experiment.ConstantMRAI(500 * time.Millisecond),
				experiment.ConstantMRAI(3500 * time.Millisecond),
			}
			fig, err := sweepBySize(o, o.realisticTopo(), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Fig 13", "Convergence delay of realistic topologies"
			return fig, err
		},
	}
}

// named overrides a scheme's display name.
func named(name string, s experiment.Scheme) experiment.Scheme {
	s.Name = name
	return s
}
