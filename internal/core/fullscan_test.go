package core

import (
	"testing"

	"bgpsim/internal/bgp"
)

// TestFigureBytesUnchangedByFullScan pins the figure pipeline to the
// incremental-decision equivalence: rendering the same experiments with
// bgp.ForceFullScanDefault toggled must produce byte-identical output.
// This is the in-tree twin of the CI determinism job, which regenerates
// paper-scale fig3 in both modes and diffs against results/. Beyond
// fig3, the two ablations cover the configurations where "better route"
// means something different: Gao–Rexford policy ranking and damping
// (under which the incremental path disables itself entirely).
func TestFigureBytesUnchangedByFullScan(t *testing.T) {
	if testing.Short() {
		t.Skip("dual figure sweep skipped in -short")
	}
	for _, id := range []string{"3", "ablation-policy", "ablation-damping"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(id, func(t *testing.T) {
			render := func(fullScan bool) string {
				bgp.ForceFullScanDefault = fullScan
				defer func() { bgp.ForceFullScanDefault = false }()
				fig, err := e.Run(microOptions())
				if err != nil {
					t.Fatal(err)
				}
				return fig.Render()
			}
			inc, full := render(false), render(true)
			if inc != full {
				t.Errorf("%s: incremental render diverged from full scan\nfull:\n%s\nincremental:\n%s",
					id, full, inc)
			}
		})
	}
}
