// Package core packages the paper's contribution: the named schemes
// (constant / degree-dependent / dynamic MRAI, batched update processing)
// and a registry of experiment definitions that regenerate every figure
// in the paper's evaluation (Figs 1–13) plus ablation experiments for the
// design choices DESIGN.md calls out.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"bgpsim/internal/experiment"
	"bgpsim/internal/topology"
)

// Options scales an experiment. The zero value is not valid; start from
// DefaultOptions (paper scale) or QuickOptions (CI scale).
type Options struct {
	// Nodes is the AS count for the skewed topologies (paper: 120) and
	// the AS count for Fig 13's realistic topologies.
	Nodes int
	// Trials is the replication count per data point.
	Trials int
	// Seed is the base seed; every cell derives from it.
	Seed int64
	// FailureSizes is the failure-size axis in percent of routers.
	FailureSizes []float64
	// MRAIs is the MRAI axis in seconds for the V-curve figures.
	MRAIs []float64
	// RealisticMaxASSize caps routers per AS for Fig 13 (paper: 100;
	// smaller values keep IBGP meshes manageable).
	RealisticMaxASSize int
	// PrefixesPerOrigin is the number of destination prefixes each AS
	// originates (0 = the paper's single prefix). Values above 1 scale
	// every figure's routing-table dimension; the value 1 is explicit
	// single-prefix and must regenerate the recorded figures
	// byte-identically (the prefix-ablation CI job pins this).
	PrefixesPerOrigin int
	// Workers bounds the worker pool each sweep fans its
	// (series × x × trial) grid over: <= 0 selects GOMAXPROCS, 1 is
	// fully serial. Figures are byte-identical for every worker count.
	Workers int
	// Shards runs every simulation sharded across this many event loops
	// (bgp.Params.Shards). 0 and 1 are both the classic single-engine
	// path — the value 1 is an explicit request that must regenerate the
	// recorded figures byte-identically, exactly like PrefixesPerOrigin's
	// normalization — and sequenced sharding (the default for >= 2) is
	// byte-identical too, which the sharded determinism CI job pins.
	Shards int
	// ShardConcurrent selects the concurrent sharded mode. It changes
	// the determinism class (figures are reproducible per seed and shard
	// count but differ from the recorded single-engine figures), so it
	// never participates in golden comparisons.
	ShardConcurrent bool
	// WarmStart replaces each trial's event-driven initial-convergence
	// phase with the snapshot backend's fixpoint
	// (experiment.Scenario.WarmStart): trials begin at failure injection.
	// Window normalization keeps every figure byte-identical to the cold
	// run's, so it is safe for golden comparisons and exists purely to
	// cut wall clock.
	WarmStart bool
	// Progress, when set, receives per-cell completion callbacks. Calls
	// are serialized with strictly increasing done counts (see
	// experiment.SweepConfig.Progress).
	Progress func(done, total int)
	// Context, when non-nil, cancels in-flight sweeps: unstarted trials
	// are skipped, running simulations abort at the engine's next
	// cancellation probe, and the experiment returns the context error.
	// nil behaves as context.Background.
	Context context.Context
	// Sweeper, when non-nil, replaces the local sweep executor: every
	// grid an experiment builds is handed to it instead of
	// experiment.Sweep. This is the hook distributed execution
	// (internal/dist) plugs a coordinator into; figures must come back
	// byte-identical to the local executor's.
	Sweeper experiment.Sweeper
}

// DefaultOptions reproduces the paper's configuration.
func DefaultOptions() Options {
	return Options{
		Nodes:              120,
		Trials:             3,
		Seed:               1,
		FailureSizes:       append([]float64(nil), experiment.FailureSizesPct...),
		MRAIs:              append([]float64(nil), experiment.MRAISweepSeconds...),
		RealisticMaxASSize: 100,
	}
}

// QuickOptions is a reduced configuration for tests and benchmarks:
// half-size networks, single trial, coarser axes. The trends survive;
// only the variance suffers.
func QuickOptions() Options {
	return Options{
		Nodes:              60,
		Trials:             1,
		Seed:               1,
		FailureSizes:       []float64{2.5, 10, 20},
		MRAIs:              []float64{0.25, 0.75, 1.5, 3.0},
		RealisticMaxASSize: 6,
	}
}

// normalize fills zero fields from defaults.
func (o Options) normalize() Options {
	def := DefaultOptions()
	if o.Nodes == 0 {
		o.Nodes = def.Nodes
	}
	if o.Trials == 0 {
		o.Trials = def.Trials
	}
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	if len(o.FailureSizes) == 0 {
		o.FailureSizes = def.FailureSizes
	}
	if len(o.MRAIs) == 0 {
		o.MRAIs = def.MRAIs
	}
	if o.RealisticMaxASSize == 0 {
		o.RealisticMaxASSize = def.RealisticMaxASSize
	}
	return o
}

// ctx resolves the cancellation context (nil = background).
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// sweep executes one grid through the configured executor: the Sweeper
// override when set (distributed execution), the local context-aware
// parallel sweep otherwise. Every experiment in this package routes its
// grids through here, which is what lets a coordinator intercept the
// whole figure pipeline without the figure definitions knowing.
func (o Options) sweep(cfg experiment.SweepConfig) (experiment.Figure, error) {
	cfg.Shards = o.shards()
	cfg.ShardConcurrent = o.ShardConcurrent && cfg.Shards > 0
	cfg.WarmStart = o.WarmStart
	if o.Sweeper != nil {
		return o.Sweeper(cfg)
	}
	return experiment.SweepContext(o.ctx(), cfg)
}

// skewedTopo returns the default 70-30 topology spec at the option scale.
func (o Options) skewedTopo(kind topology.Kind) topology.Spec {
	return topology.Spec{Kind: kind, N: o.Nodes, PrefixesPerOrigin: o.prefixes()}
}

// realisticTopo returns the Fig 13 topology spec at the option scale.
func (o Options) realisticTopo() topology.Spec {
	return topology.Spec{
		Kind: topology.KindRealistic, N: o.Nodes,
		MaxASSize: o.RealisticMaxASSize, PrefixesPerOrigin: o.prefixes(),
	}
}

// prefixes resolves the prefix dimension, normalizing the explicit
// single-prefix request (1) to the zero default so the spec — and with
// it the topology-memo key and every recorded figure — is bit-for-bit
// the same as a run that never mentioned prefixes.
func (o Options) prefixes() int {
	if o.PrefixesPerOrigin <= 1 {
		return 0
	}
	return o.PrefixesPerOrigin
}

// shards resolves the shard dimension, normalizing the explicit
// single-shard request (1) to the zero default so a run that says
// "-shards 1" builds exactly the scenarios — and the figure bytes — of
// a run that never mentioned sharding.
func (o Options) shards() int {
	if o.Shards <= 1 {
		return 0
	}
	return o.Shards
}

// Experiment is a runnable reproduction of one paper figure (or one
// ablation study).
type Experiment struct {
	// ID is "fig1".."fig13" for paper figures, "ablation-*" for extras.
	ID string
	// Title describes what the paper plots.
	Title string
	// What summarizes the expected qualitative outcome.
	What string
	// Run executes the experiment at the given scale.
	Run func(Options) (experiment.Figure, error)
}

// Registry returns every experiment, paper figures first in numeric
// order, then ablations alphabetically.
func Registry() []Experiment {
	exps := []Experiment{
		fig1(), fig2(), fig3(), fig4(), fig5(), fig6(), fig7(),
		fig8(), fig9(), fig10(), fig11(), fig12(), fig13(),
	}
	abl := Ablations()
	sort.Slice(abl, func(i, j int) bool { return abl[i].ID < abl[j].ID })
	return append(exps, abl...)
}

// Lookup finds an experiment by ID ("fig7", "7", "ablation-batch-discard").
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id || e.ID == "fig"+id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q", id)
}

// PaperMRAIs are the three constant MRAI values the paper compares
// throughout (Figs 1, 2, 6, 7, 10, 11).
var PaperMRAIs = []time.Duration{
	500 * time.Millisecond,
	1250 * time.Millisecond,
	2250 * time.Millisecond,
}
