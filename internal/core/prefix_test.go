package core

import (
	"testing"
)

// TestFigureBytesUnchangedByExplicitSinglePrefix pins the contract the
// prefix-ablation CI job rests on: requesting PrefixesPerOrigin = 1
// explicitly must regenerate exactly the bytes of a run that never
// mentions prefixes — the options normalize the explicit single-prefix
// form to the default spec, so even the topology-memo keys coincide.
func TestFigureBytesUnchangedByExplicitSinglePrefix(t *testing.T) {
	for _, id := range []string{"1", "3"} {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(id, func(t *testing.T) {
			render := func(prefixes int) string {
				opts := microOptions()
				opts.PrefixesPerOrigin = prefixes
				fig, err := e.Run(opts)
				if err != nil {
					t.Fatal(err)
				}
				return fig.Render()
			}
			if def, one := render(0), render(1); def != one {
				t.Errorf("fig%s: explicit PrefixesPerOrigin=1 diverged from default\ndefault:\n%s\nexplicit:\n%s",
					id, def, one)
			}
		})
	}
}

// TestMultiPrefixFigureWorkerInvariant runs one figure with a real
// prefix dimension through the parallel sweep at several worker counts:
// the rendered bytes must be identical, extending the repo's
// determinism guarantee to multi-prefix sweeps (the simulator pool now
// re-dimensions simulators across prefix counts when specs share a
// world).
func TestMultiPrefixFigureWorkerInvariant(t *testing.T) {
	e, err := Lookup("3")
	if err != nil {
		t.Fatal(err)
	}
	render := func(workers int) string {
		opts := microOptions()
		opts.PrefixesPerOrigin = 3
		opts.Workers = workers
		fig, err := e.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return fig.Render()
	}
	want := render(1)
	for _, workers := range []int{2, 4} {
		if got := render(workers); got != want {
			t.Errorf("workers=%d: multi-prefix figure diverged from serial\nserial:\n%s\nparallel:\n%s",
				workers, want, got)
		}
	}
}
