package core

import (
	"time"

	"bgpsim/internal/bgp"
	"bgpsim/internal/experiment"
	"bgpsim/internal/failure"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
)

// Ablations returns the extra experiments probing the design choices
// DESIGN.md calls out. They are not paper figures but use the same
// machinery and scale knobs.
func Ablations() []Experiment {
	return []Experiment{
		ablationWithdrawalMRAI(),
		ablationBatchDiscard(),
		ablationDynamicSignal(),
		ablationPerDestMRAI(),
		ablationQueueDiscipline(),
		ablationDeshpandeSikdar(),
		ablationDetectionDelay(),
		ablationOracle(),
		ablationSuperfluous(),
		ablationDamping(),
		ablationPolicy(),
		ablationPrefixScaling(),
	}
}

func ablationPrefixScaling() Experiment {
	return Experiment{
		ID:    "ablation-prefix-scaling",
		Title: "Table size scaling (prefixes per AS)",
		What: "more prefixes per AS multiply the update-processing load, so " +
			"overload (and the benefit of batching) onsets at smaller failures — " +
			"the paper's argument for why ~200k Internet destinations keep the " +
			"schemes relevant as routers get faster",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			d := 500 * time.Millisecond
			mk := func(name string, k int, batch bool) experiment.Scheme {
				return named(name, experiment.Custom("", func(p *bgp.Params) {
					p.MRAI = mrai.Constant(d)
					p.PrefixesPerAS = k
					if batch {
						p.Queue = bgp.QueueBatched
					}
				}))
			}
			schemes := []experiment.Scheme{
				mk("1 prefix/AS", 1, false),
				mk("4 prefixes/AS", 4, false),
				mk("4 prefixes/AS + batch", 4, true),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Ablation T", "Prefix-table scaling (MRAI=0.5s)"
			return fig, err
		},
	}
}

func ablationPolicy() Experiment {
	return Experiment{
		ID:    "ablation-policy",
		Title: "Gao–Rexford policies vs the paper's policy-free routing",
		What: "valley-free export rules prune the set of alternate paths, " +
			"so policy routing explores less and converges faster after large " +
			"failures (hierarchical relationships: full reachability preserved)",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			d := 500 * time.Millisecond
			fig, err := o.sweep(experiment.SweepConfig{
				SeriesNames:           []string{"no policy", "Gao-Rexford"},
				Xs:                    o.FailureSizes,
				Trials:                o.Trials,
				Metric:                experiment.MetricDelay,
				SameWorldAcrossSeries: true,
				Workers:               o.Workers,
				Progress:              o.Progress,
				Cell: func(si int, x float64) experiment.Scenario {
					sc := experiment.Scenario{
						Topology: o.skewedTopo(topology.KindSkewed7030),
						Failure:  failure.Geographic(x / 100),
						Scheme:   experiment.ConstantMRAI(d),
						Seed:     o.Seed,
					}
					if si == 1 {
						sc.PolicyHierarchical = true
					}
					return sc
				},
			})
			if err != nil {
				return experiment.Figure{}, err
			}
			fig.ID, fig.Title = "Ablation G", "Routing policies (MRAI=0.5s)"
			fig.XLabel = "failure size (% of routers)"
			return fig, err
		},
	}
}

func ablationDamping() Experiment {
	return Experiment{
		ID:    "ablation-damping",
		Title: "RFC 2439 route-flap damping under large failures",
		What: "damping with a short half-life curbs path exploration; the " +
			"paper's schemes achieve the same without suppressing reachability",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			d := 500 * time.Millisecond
			schemes := []experiment.Scheme{
				named("no damping", experiment.ConstantMRAI(d)),
				named("damping", experiment.Custom("", func(p *bgp.Params) {
					p.MRAI = mrai.Constant(d)
					p.Damping = bgp.DefaultDamping()
				})),
				named("batch (no damping)", experiment.Batching(d)),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Ablation R", "Route-flap damping (MRAI=0.5s)"
			return fig, err
		},
	}
}

func ablationOracle() Experiment {
	return Experiment{
		ID:    "ablation-oracle-mrai",
		Title: "Oracle (failure-extent-aware) MRAI vs dynamic",
		What: "the paper's future-work ideal — set the MRAI from the known " +
			"failure extent — bounds how much headroom the dynamic scheme leaves",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			schemes := []experiment.Scheme{
				named("oracle", experiment.Custom("", func(p *bgp.Params) {
					p.MRAI = mrai.Oracle(500 * time.Millisecond)
					p.OracleMRAI = mrai.PaperOracleTable()
				})),
				named("dynamic", experiment.PaperDynamicMRAI()),
				experiment.ConstantMRAI(500 * time.Millisecond),
				experiment.ConstantMRAI(2250 * time.Millisecond),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Ablation O", "Oracle failure-extent-aware MRAI"
			return fig, err
		},
	}
}

func ablationSuperfluous() Experiment {
	return Experiment{
		ID:    "ablation-superfluous",
		Title: "Batching plus superfluous-update elimination",
		What: "dropping updates that repeat the Adj-RIB-In state (the paper's " +
			"proposed batching improvement) trims additional processing work",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			d := 500 * time.Millisecond
			schemes := []experiment.Scheme{
				named("batch", experiment.Batching(d)),
				named("batch+noop-skip", experiment.Custom("", func(p *bgp.Params) {
					p.MRAI = mrai.Constant(d)
					p.Queue = bgp.QueueBatched
					p.SkipNoopUpdates = true
				})),
				named("fifo", experiment.ConstantMRAI(d)),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Ablation N", "Superfluous-update elimination (MRAI=0.5s)"
			return fig, err
		},
	}
}

func ablationWithdrawalMRAI() Experiment {
	return Experiment{
		ID:    "ablation-withdrawal-mrai",
		Title: "Rate-limiting withdrawals vs RFC 1771 behaviour",
		What: "delaying withdrawals behind the MRAI slows the removal of dead " +
			"routes and increases convergence delay",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			d := 2250 * time.Millisecond
			schemes := []experiment.Scheme{
				named("withdrawals immediate", experiment.ConstantMRAI(d)),
				named("withdrawals rate-limited", experiment.Custom("", func(p *bgp.Params) {
					p.MRAI = mrai.Constant(d)
					p.RateLimitWithdrawals = true
				})),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Ablation W", "Withdrawal rate limiting (MRAI=2.25s)"
			return fig, err
		},
	}
}

func ablationBatchDiscard() Experiment {
	return Experiment{
		ID:    "ablation-batch-discard",
		Title: "Batching with and without staleness discard",
		What: "destination grouping alone helps; deleting superseded " +
			"same-neighbor updates removes additional dead processing work",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			d := 500 * time.Millisecond
			schemes := []experiment.Scheme{
				named("batch+discard", experiment.Batching(d)),
				named("batch only", experiment.Custom("", func(p *bgp.Params) {
					p.MRAI = mrai.Constant(d)
					p.Queue = bgp.QueueBatched
					p.BatchDiscardStale = false
				})),
				named("fifo", experiment.ConstantMRAI(d)),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Ablation B", "Batch staleness discard (MRAI=0.5s)"
			return fig, err
		},
	}
}

func ablationDynamicSignal() Experiment {
	return Experiment{
		ID:    "ablation-dynamic-signal",
		Title: "Dynamic MRAI overload signals",
		What: "unfinished work (the paper's choice) and CPU utilization both " +
			"work; the message-rate signal is hardest to threshold",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			schemes := []experiment.Scheme{
				named("work", experiment.PaperDynamicMRAI()),
				named("utilization", experiment.Custom("", func(p *bgp.Params) {
					p.MRAI = mrai.DynamicUtilization(mrai.PaperLevels, 0.85, 0.20)
				})),
				named("msg rate", experiment.Custom("", func(p *bgp.Params) {
					p.MRAI = mrai.DynamicMsgRate(mrai.PaperLevels, 40, 4)
				})),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Ablation S", "Dynamic MRAI overload signal"
			return fig, err
		},
	}
}

func ablationPerDestMRAI() Experiment {
	return Experiment{
		ID:    "ablation-per-dest-mrai",
		Title: "Per-peer vs per-destination MRAI",
		What: "the per-destination timer (impractical at Internet scale) lets " +
			"unrelated destinations bypass each other's timers",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			d := 2250 * time.Millisecond
			schemes := []experiment.Scheme{
				named("per-peer", experiment.ConstantMRAI(d)),
				named("per-destination", experiment.Custom("", func(p *bgp.Params) {
					p.MRAI = mrai.Constant(d)
					p.PerDestinationMRAI = true
				})),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Ablation P", "MRAI timer granularity (MRAI=2.25s)"
			return fig, err
		},
	}
}

func ablationQueueDiscipline() Experiment {
	return Experiment{
		ID:    "ablation-queue-discipline",
		Title: "Queue discipline: FIFO vs router-style batch vs destination batch",
		What: "per-peer TCP-buffer batching (production routers) helps a " +
			"little; the paper's per-destination batching helps much more for large failures",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			d := 500 * time.Millisecond
			schemes := []experiment.Scheme{
				named("fifo", experiment.ConstantMRAI(d)),
				named("router batch", experiment.Custom("", func(p *bgp.Params) {
					p.MRAI = mrai.Constant(d)
					p.Queue = bgp.QueueRouterBatch
				})),
				named("dest batch", experiment.Batching(d)),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Ablation Q", "Queue discipline (MRAI=0.5s)"
			return fig, err
		},
	}
}

func ablationDeshpandeSikdar() Experiment {
	return Experiment{
		ID:    "ablation-deshpande-sikdar",
		Title: "Deshpande–Sikdar MRAI tweaks (related work)",
		What: "timer cancellation and flap-count gating can cut delay for " +
			"small failures but inflate message counts, as their paper reports",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			d := 2250 * time.Millisecond
			schemes := []experiment.Scheme{
				named("plain", experiment.ConstantMRAI(d)),
				named("cancel-on-change", experiment.Custom("", func(p *bgp.Params) {
					p.MRAI = mrai.Constant(d)
					p.CancelOnChange = true
				})),
				named("flap-gate(3)", experiment.Custom("", func(p *bgp.Params) {
					p.MRAI = mrai.Constant(d)
					p.FlapGate = 3
				})),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricMessages)
			fig.ID, fig.Title = "Ablation D", "Deshpande–Sikdar schemes, message cost (MRAI=2.25s)"
			return fig, err
		},
	}
}

func ablationDetectionDelay() Experiment {
	return Experiment{
		ID:    "ablation-detection-delay",
		Title: "Failure detection latency",
		What: "a nonzero session-down detection delay shifts every curve up " +
			"by roughly the detection time without changing the ordering of schemes",
		Run: func(o Options) (experiment.Figure, error) {
			o = o.normalize()
			d := 500 * time.Millisecond
			mk := func(name string, detect time.Duration) experiment.Scheme {
				return named(name, experiment.Custom("", func(p *bgp.Params) {
					p.MRAI = mrai.Constant(d)
					p.DetectDelay = detect
				}))
			}
			schemes := []experiment.Scheme{
				mk("detect=0", 0),
				mk("detect=1s", time.Second),
				mk("detect=5s", 5*time.Second),
			}
			fig, err := sweepBySize(o, o.skewedTopo(topology.KindSkewed7030), schemes, experiment.MetricDelay)
			fig.ID, fig.Title = "Ablation F", "Failure detection delay (MRAI=0.5s)"
			return fig, err
		},
	}
}
