// Package metrics collects the observables the paper reports: convergence
// delay (time of the last BGP activity after a failure) and the number of
// update messages generated, plus per-router load statistics used by the
// dynamic-MRAI analysis.
package metrics

import "time"

// Collector accumulates counters for one simulation run. Counters are
// attributed to the measurement window that starts at WindowStart; calls
// before the window opens update totals but not the windowed counters.
// The BGP simulator opens the window at failure-injection time so Phase 1
// (initial route propagation) is excluded, matching the paper.
type Collector struct {
	windowOpen  bool
	windowStart time.Duration

	// Windowed counters (post-failure, the paper's metrics).
	Announcements int
	Withdrawals   int // withdrawal messages sent in the window
	Packets       int // flush operations carrying >= 1 route
	Processed     int // updates consumed from inboxes in the window
	Discarded     int // stale updates deleted unprocessed by batching
	lastActivity  time.Duration

	// Totals across the whole run (including initial convergence).
	TotalMessages  int
	TotalProcessed int // updates consumed from inboxes over the whole run

	// Load statistics. MaxQueueLen is windowed like the counters above —
	// OpenWindow resets it so the post-failure load statistic the
	// dynamic-MRAI analysis reads is not contaminated by Phase-1
	// (initial convergence) queue buildup. TotalMaxQueueLen keeps the
	// whole-run high-water mark.
	MaxQueueLen      int
	TotalMaxQueueLen int // whole-run inbox-length high-water mark
	perNodeSent      []int
	routeChanges     int
}

// NewCollector returns a collector for n routers.
func NewCollector(n int) *Collector {
	return &Collector{perNodeSent: make([]int, n)}
}

// Reset returns the collector to its post-NewCollector state (all
// counters zero, window closed), retaining the per-node array so
// simulator reuse across trials allocates nothing here.
func (c *Collector) Reset() {
	per := c.perNodeSent
	for i := range per {
		per[i] = 0
	}
	*c = Collector{perNodeSent: per}
}

// OpenWindow starts the measurement window at now (failure time).
// Windowed counters reset.
func (c *Collector) OpenWindow(now time.Duration) {
	c.windowOpen = true
	c.windowStart = now
	c.lastActivity = now
	c.Announcements, c.Withdrawals, c.Packets = 0, 0, 0
	c.Processed, c.Discarded = 0, 0
	c.routeChanges = 0
	c.MaxQueueLen = 0
	for i := range c.perNodeSent {
		c.perNodeSent[i] = 0
	}
}

// WindowStart returns the window's opening time.
func (c *Collector) WindowStart() time.Duration { return c.windowStart }

// NoteSend records one route-level message (announcement or withdrawal)
// sent by node at the given time.
func (c *Collector) NoteSend(now time.Duration, node int, withdrawal bool) {
	c.TotalMessages++
	if !c.windowOpen {
		return
	}
	if withdrawal {
		c.Withdrawals++
	} else {
		c.Announcements++
	}
	if node >= 0 && node < len(c.perNodeSent) {
		c.perNodeSent[node]++
	}
	c.touch(now)
}

// NotePacket records one flush operation that carried at least one route.
func (c *Collector) NotePacket(now time.Duration) {
	if c.windowOpen {
		c.Packets++
		c.touch(now)
	}
}

// NoteProcessed records completion of processing for n update messages.
func (c *Collector) NoteProcessed(now time.Duration, n int) {
	c.TotalProcessed += n
	if c.windowOpen {
		c.Processed += n
		c.touch(now)
	}
}

// NoteDiscarded records n stale messages deleted without processing.
func (c *Collector) NoteDiscarded(n int) {
	if c.windowOpen {
		c.Discarded += n
	}
}

// NoteRouteChange records a Loc-RIB change.
func (c *Collector) NoteRouteChange(now time.Duration) {
	if c.windowOpen {
		c.routeChanges++
		c.touch(now)
	}
}

// NoteQueueLen tracks the maximum observed input-queue length, both
// within the current measurement window and across the whole run.
func (c *Collector) NoteQueueLen(n int) {
	if n > c.TotalMaxQueueLen {
		c.TotalMaxQueueLen = n
	}
	if n > c.MaxQueueLen {
		c.MaxQueueLen = n
	}
}

func (c *Collector) touch(now time.Duration) {
	if now > c.lastActivity {
		c.lastActivity = now
	}
}

// MergeFrom rebuilds c as the combination of parts, the deterministic
// fold the sharded simulation uses to present per-shard collectors as
// one run-level view: counters sum, high-water marks and last-activity
// times take the maximum, per-node sends add elementwise, and the
// window state is taken from whichever parts have an open window (the
// simulator opens all shard windows at one failure instant, so their
// start times agree). Every contribution is commutative, so the merged
// result is independent of shard execution order. c itself must not be
// among parts.
func (c *Collector) MergeFrom(parts ...*Collector) {
	c.Reset()
	for _, p := range parts {
		if p.windowOpen {
			c.windowOpen = true
			c.windowStart = p.windowStart
		}
		if p.lastActivity > c.lastActivity {
			c.lastActivity = p.lastActivity
		}
		c.Announcements += p.Announcements
		c.Withdrawals += p.Withdrawals
		c.Packets += p.Packets
		c.Processed += p.Processed
		c.Discarded += p.Discarded
		c.routeChanges += p.routeChanges
		c.TotalMessages += p.TotalMessages
		c.TotalProcessed += p.TotalProcessed
		if p.MaxQueueLen > c.MaxQueueLen {
			c.MaxQueueLen = p.MaxQueueLen
		}
		if p.TotalMaxQueueLen > c.TotalMaxQueueLen {
			c.TotalMaxQueueLen = p.TotalMaxQueueLen
		}
		for i, n := range p.perNodeSent {
			if i < len(c.perNodeSent) {
				c.perNodeSent[i] += n
			}
		}
	}
}

// Messages returns the windowed total of route-level messages.
func (c *Collector) Messages() int { return c.Announcements + c.Withdrawals }

// RouteChanges returns the windowed Loc-RIB change count.
func (c *Collector) RouteChanges() int { return c.routeChanges }

// ConvergenceDelay returns the time from window start to the last observed
// BGP activity. Zero means the failure caused no BGP activity at all.
func (c *Collector) ConvergenceDelay() time.Duration {
	if !c.windowOpen {
		return 0
	}
	return c.lastActivity - c.windowStart
}

// LastActivity returns the absolute time of the last activity in window.
func (c *Collector) LastActivity() time.Duration { return c.lastActivity }

// PerNodeSent returns a copy of the windowed per-node send counts.
func (c *Collector) PerNodeSent() []int {
	out := make([]int, len(c.perNodeSent))
	copy(out, c.perNodeSent)
	return out
}
