package metrics

import (
	"testing"
	"time"
)

func TestCountersOutsideWindowOnlyHitTotals(t *testing.T) {
	c := NewCollector(3)
	c.NoteSend(time.Second, 0, false)
	c.NoteProcessed(time.Second, 2)
	if c.Messages() != 0 || c.Processed != 0 {
		t.Error("windowed counters moved before OpenWindow")
	}
	if c.TotalMessages != 1 || c.TotalProcessed != 2 {
		t.Errorf("totals = %d/%d, want 1/2", c.TotalMessages, c.TotalProcessed)
	}
}

func TestWindowedCounting(t *testing.T) {
	c := NewCollector(3)
	c.NoteSend(time.Second, 0, false) // pre-window
	c.OpenWindow(10 * time.Second)
	c.NoteSend(11*time.Second, 1, false)
	c.NoteSend(12*time.Second, 1, true)
	c.NotePacket(12 * time.Second)
	c.NoteProcessed(13*time.Second, 4)
	c.NoteDiscarded(2)
	if c.Announcements != 1 || c.Withdrawals != 1 {
		t.Errorf("announce/withdraw = %d/%d", c.Announcements, c.Withdrawals)
	}
	if c.Messages() != 2 {
		t.Errorf("Messages = %d", c.Messages())
	}
	if c.Packets != 1 || c.Processed != 4 || c.Discarded != 2 {
		t.Errorf("packets/processed/discarded = %d/%d/%d", c.Packets, c.Processed, c.Discarded)
	}
	if c.TotalMessages != 3 {
		t.Errorf("TotalMessages = %d", c.TotalMessages)
	}
}

func TestConvergenceDelayTracksLastActivity(t *testing.T) {
	c := NewCollector(2)
	c.OpenWindow(100 * time.Second)
	if c.ConvergenceDelay() != 0 {
		t.Errorf("delay with no activity = %v", c.ConvergenceDelay())
	}
	c.NoteSend(105*time.Second, 0, false)
	c.NoteProcessed(130*time.Second, 1)
	c.NoteSend(120*time.Second, 1, false) // out of order is fine
	if got := c.ConvergenceDelay(); got != 30*time.Second {
		t.Errorf("delay = %v, want 30s", got)
	}
	if c.LastActivity() != 130*time.Second {
		t.Errorf("LastActivity = %v", c.LastActivity())
	}
}

func TestOpenWindowResetsWindowedCounters(t *testing.T) {
	c := NewCollector(2)
	c.OpenWindow(0)
	c.NoteSend(time.Second, 0, false)
	c.NoteRouteChange(time.Second)
	c.OpenWindow(10 * time.Second)
	if c.Messages() != 0 || c.RouteChanges() != 0 {
		t.Error("windowed counters survived OpenWindow")
	}
	if c.TotalMessages != 1 {
		t.Errorf("TotalMessages = %d, want 1 (totals persist)", c.TotalMessages)
	}
	if c.ConvergenceDelay() != 0 {
		t.Errorf("delay after reopen = %v", c.ConvergenceDelay())
	}
}

func TestPerNodeSentIsolatedCopy(t *testing.T) {
	c := NewCollector(2)
	c.OpenWindow(0)
	c.NoteSend(time.Second, 0, false)
	c.NoteSend(time.Second, 0, true)
	c.NoteSend(time.Second, 1, false)
	got := c.PerNodeSent()
	if got[0] != 2 || got[1] != 1 {
		t.Errorf("PerNodeSent = %v", got)
	}
	got[0] = 99
	if c.PerNodeSent()[0] != 2 {
		t.Error("PerNodeSent returned internal slice")
	}
	// Out-of-range node must not panic.
	c.NoteSend(time.Second, 7, false)
}

func TestQueueLenHighWaterMark(t *testing.T) {
	c := NewCollector(1)
	c.NoteQueueLen(5)
	c.NoteQueueLen(3)
	c.NoteQueueLen(9)
	if c.MaxQueueLen != 9 {
		t.Errorf("MaxQueueLen = %d", c.MaxQueueLen)
	}
	if c.TotalMaxQueueLen != 9 {
		t.Errorf("TotalMaxQueueLen = %d", c.TotalMaxQueueLen)
	}
}

func TestOpenWindowResetsMaxQueueLen(t *testing.T) {
	// Regression: Phase-1 (initial convergence) queue buildup must not
	// contaminate the post-failure load statistic. Before the fix,
	// OpenWindow left MaxQueueLen at its pre-failure high-water mark.
	c := NewCollector(1)
	c.NoteQueueLen(250) // initial-convergence burst
	c.OpenWindow(10 * time.Second)
	if c.MaxQueueLen != 0 {
		t.Errorf("MaxQueueLen after OpenWindow = %d, want 0", c.MaxQueueLen)
	}
	c.NoteQueueLen(7)
	c.NoteQueueLen(4)
	if c.MaxQueueLen != 7 {
		t.Errorf("windowed MaxQueueLen = %d, want 7", c.MaxQueueLen)
	}
	if c.TotalMaxQueueLen != 250 {
		t.Errorf("TotalMaxQueueLen = %d, want 250 (whole-run max persists)", c.TotalMaxQueueLen)
	}
}
