package bgp

import (
	"fmt"
	"testing"

	"bgpsim/internal/des"
	"bgpsim/internal/topology"
)

// These tests pin the incremental decision process to the full scan it
// replaces: with Params.ForceFullScan flipped and nothing else changed,
// every observable of a run — convergence delay, every collector
// counter, and every router's final route to every destination — must be
// identical. The figure pipeline's byte-stability across this PR rests
// on exactly this equivalence (plus the figure-level check in
// internal/core and the CI determinism job's dual fig3 regen).

// TestIncrementalMatchesFullScanAllVariants runs every scheme variant
// the simulator pool supports (the reset_test.go seven: fifo, batched,
// batched-keep-stale, router-batched, damping, per-dest-mrai,
// dynamic-mrai) in both decision modes over several seeds and failure
// sizes, requiring digest equality.
func TestIncrementalMatchesFullScanAllVariants(t *testing.T) {
	rng := des.NewRNG(17)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, nfail := range []int{2, 8} {
		fail := topology.NearestNodes(nw, topology.GridCenter(nw), nfail, nil)
		for _, v := range resetVariants() {
			for seed := int64(1); seed <= 3; seed++ {
				p := equivalenceParams(seed, v.mutate)
				inc, err := New(nw, p)
				if err != nil {
					t.Fatalf("%s seed %d: New: %v", v.name, seed, err)
				}
				got := digestRun(t, inc, nw, fail)

				p.ForceFullScan = true
				full, err := New(nw, p)
				if err != nil {
					t.Fatalf("%s seed %d: New full-scan: %v", v.name, seed, err)
				}
				want := digestRun(t, full, nw, fail)
				if got.summary != want.summary {
					t.Errorf("%s seed %d fail %d: incremental diverged from full scan\nfull:\n%s\nincremental:\n%s",
						v.name, seed, nfail, want.summary, got.summary)
				}
			}
		}
	}
}

// TestIncrementalMatchesFullScanPolicy covers the Gao–Rexford decision
// ranking (relationship class before path length), which changes what
// "strictly better" means for the classify fast path.
func TestIncrementalMatchesFullScanPolicy(t *testing.T) {
	rng := des.NewRNG(23)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := topology.HierarchicalRelationships(nw)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 4, nil)
	for seed := int64(1); seed <= 3; seed++ {
		p := equivalenceParams(seed, func(pp *Params) { pp.Policy = rel })
		inc, err := New(nw, p)
		if err != nil {
			t.Fatal(err)
		}
		got := digestRun(t, inc, nw, fail)

		p.ForceFullScan = true
		full, err := New(nw, p)
		if err != nil {
			t.Fatal(err)
		}
		want := digestRun(t, full, nw, fail)
		if got.summary != want.summary {
			t.Errorf("policy seed %d: incremental diverged from full scan\nfull:\n%s\nincremental:\n%s",
				seed, want.summary, got.summary)
		}
	}
}

// TestIncrementalMatchesFullScanRecovery adds node recovery — revived
// routers restart with empty RIBs and a cleared best-slot cache — on top
// of the failure path.
func TestIncrementalMatchesFullScanRecovery(t *testing.T) {
	rng := des.NewRNG(29)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 3, nil)
	run := func(fullScan bool) string {
		p := equivalenceParams(7, nil)
		p.ForceFullScan = fullScan
		sim, err := New(nw, p)
		if err != nil {
			t.Fatal(err)
		}
		d := digestRun(t, sim, nw, fail)
		sim.ScheduleRecovery(sim.Now()+SettleMargin, fail)
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		s := d.summary
		for _, dest := range sim.Destinations() {
			for id := 0; id < nw.NumNodes(); id++ {
				if p, ok := sim.LocPath(id, dest); ok {
					s += fmt.Sprintf("n%d d%d %v\n", id, dest, p)
				}
			}
		}
		return s
	}
	if got, want := run(false), run(true); got != want {
		t.Errorf("recovery: incremental diverged from full scan\nfull:\n%s\nincremental:\n%s", want, got)
	}
}

// TestIncrementalFastPathAllocationFree pins that the classify →
// applyWorkingBest no-op path allocates nothing: a converged router
// receiving announcements that do not beat its incumbents must absorb
// the whole batch (Adj-RIB-In update, classification, decision) with
// zero allocations. This is the path a large failure's exploration
// traffic hits millions of times.
func TestIncrementalFastPathAllocationFree(t *testing.T) {
	nw := topology.NewNetwork(5)
	for spoke := 1; spoke <= 4; spoke++ {
		if err := nw.AddLink(0, spoke, false); err != nil {
			t.Fatal(err)
		}
	}
	p := DefaultParams()
	sim, err := New(nw, p)
	if err != nil {
		t.Fatal(err)
	}
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	r := sim.routers[0]
	if !r.incremental {
		t.Fatal("incremental path not active under default params")
	}
	// Two distinct worse-than-incumbent paths for spoke 1's prefix,
	// alternately announced by spokes 2 and 3, so every batch flaps the
	// Adj-RIB-In (no no-op dedup) yet never changes the decision.
	batches := [2][]Update{
		{{From: 2, Dest: 1, Path: Path{2, 900, 1}}, {From: 3, Dest: 1, Path: Path{3, 901, 1}}},
		{{From: 2, Dest: 1, Path: Path{2, 902, 1}}, {From: 3, Dest: 1, Path: Path{3, 903, 1}}},
	}
	// Pre-intern the hand-built paths, as the simulator's own send path
	// does: a zero Ref would make finishProcessing intern on arrival,
	// which is an (amortized) allocation this test must not count.
	for bi := range batches {
		for ui := range batches[bi] {
			batches[bi][ui].Ref = sim.tab.intern(batches[bi][ui].Path)
		}
	}
	r.busyStart = sim.eng.Now()
	r.busy = true
	r.finishProcessing(batches[0]) // warm scratch capacity
	i := 0
	avg := testing.AllocsPerRun(500, func() {
		i++
		r.busy = true
		r.finishProcessing(batches[i%2])
	})
	if avg != 0 {
		t.Errorf("incremental fast path allocates %.2f objects/op, want 0", avg)
	}
	if e, ok := r.locEntryAt(1); !ok || e.from != 1 {
		t.Fatalf("incumbent displaced: %+v ok=%v", e, ok)
	}
	if r.bestSlot[1] != int16(r.slotOf[1]) {
		t.Fatalf("bestSlot[1] = %d, want slot of node 1 (%d)", r.bestSlot[1], r.slotOf[1])
	}
}

// TestForceFullScanDefaultFlowsThroughDefaultParams pins the plumbing
// the CI determinism job and the -fullscan flags rely on.
func TestForceFullScanDefaultFlowsThroughDefaultParams(t *testing.T) {
	if DefaultParams().ForceFullScan {
		t.Fatal("ForceFullScan on by default")
	}
	ForceFullScanDefault = true
	defer func() { ForceFullScanDefault = false }()
	if !DefaultParams().ForceFullScan {
		t.Fatal("ForceFullScanDefault not picked up by DefaultParams")
	}
}
