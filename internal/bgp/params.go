package bgp

import (
	"fmt"
	"time"

	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

// QueueDiscipline selects how a router's input queue feeds its CPU.
type QueueDiscipline int

// Queue disciplines.
const (
	// QueueFIFO is default BGP: updates are processed strictly in arrival
	// order, one at a time.
	QueueFIFO QueueDiscipline = iota + 1
	// QueueBatched is the paper's scheme (Section 4.4): a logical queue
	// per destination; all pending updates for a destination are processed
	// together and stale same-neighbor updates are deleted unprocessed.
	QueueBatched
	// QueueRouterBatch models the "another form of batching" the paper
	// contrasts with (Section 4.4): one TCP buffer is drained per peer and
	// processed as a batch, deduplicating per destination only within that
	// per-peer batch.
	QueueRouterBatch
)

// String returns the discipline name.
func (q QueueDiscipline) String() string {
	switch q {
	case QueueFIFO:
		return "fifo"
	case QueueBatched:
		return "batched"
	case QueueRouterBatch:
		return "router-batch"
	default:
		return fmt.Sprintf("queue(%d)", int(q))
	}
}

// Params configures one BGP simulation. The zero value is not valid; use
// DefaultParams and override.
type Params struct {
	// MRAI builds the per-router MRAI policy. Required.
	MRAI mrai.Factory

	// Queue selects the input-queue discipline (default FIFO).
	Queue QueueDiscipline
	// BatchDiscardStale controls whether QueueBatched deletes superseded
	// same-neighbor updates without processing them (paper behaviour,
	// default true). Disabling isolates the grouping effect for ablation.
	BatchDiscardStale bool

	// ProcMin/ProcMax bound the uniformly distributed per-update
	// processing delay (paper: 1–30 ms).
	ProcMin, ProcMax time.Duration
	// ExtDelay is the one-way delay of inter-AS links (paper: 25 ms).
	ExtDelay time.Duration
	// IntDelay is the one-way delay of intra-AS (IBGP) sessions.
	IntDelay time.Duration

	// JitterTimers applies the RFC 1771 reduction of up to 25% to each
	// MRAI timer restart (paper: enabled).
	JitterTimers bool
	// RateLimitWithdrawals applies the MRAI to withdrawals as well
	// (RFC 1771 and SSFNet rate-limit only advertisements; default false).
	RateLimitWithdrawals bool
	// PerDestinationMRAI maintains one timer per (peer, destination)
	// instead of the per-peer timer deployed in the Internet
	// (Section 2 discussion; default false).
	PerDestinationMRAI bool

	// CancelOnChange implements the first Deshpande–Sikdar scheme: when a
	// pending destination's route changes to a different valid route while
	// the timer runs, the timer is canceled so the update goes out
	// immediately.
	CancelOnChange bool
	// FlapGate implements the second Deshpande–Sikdar scheme: the MRAI is
	// applied to a destination only after its route has changed at least
	// FlapGate times since the window opened. Zero disables the gate.
	FlapGate int

	// SkipNoopUpdates extends the batching scheme per the paper's future
	// work ("remove conflicting/superfluous updates"): an update whose
	// path matches what the Adj-RIB-In already stores for that peer is
	// dropped at zero processing cost.
	SkipNoopUpdates bool

	// OracleMRAI, when set, models the paper's ideal failure-extent-aware
	// scheme: at failure-injection time every surviving router whose
	// policy is mrai.Settable is switched to OracleMRAI(failedFraction).
	// Pair it with mrai.Oracle as the MRAI factory.
	OracleMRAI func(failedFraction float64) time.Duration

	// Policy enables Gao–Rexford routing policies: the decision process
	// prefers customer-learned over peer-learned over provider-learned
	// routes before path length, and exports peer/provider-learned routes
	// only to customers (valley-free routing). Nil (the default, and the
	// paper's configuration: "no policy based restrictions") disables
	// policies. Internal (IBGP) sessions are unaffected.
	Policy *topology.Relationships

	// Damping enables RFC 2439 route-flap damping at every router; nil
	// (the default, and the paper's configuration) disables it. Included
	// to study damping's well-known interference with post-failure
	// convergence.
	Damping *DampingConfig

	// PrefixesPerAS is the number of destination prefixes each AS
	// originates (default 1, the paper's setup). Larger values scale the
	// update-processing load the way the paper's discussion section
	// argues real-Internet table sizes (~200k prefixes) would.
	PrefixesPerAS int

	// DetectDelay is how long after a neighbor dies the session-down
	// processing runs at surviving peers (default 0: immediate, the
	// equivalent of link-layer notification).
	DetectDelay time.Duration
	// OriginationSpread staggers the initial prefix originations uniformly
	// over this interval to avoid a synchronized start.
	OriginationSpread time.Duration

	// ForceFullScan disables the incremental decision-process fast path:
	// every touched destination is re-ranked with a full peer-slot scan,
	// as if the best-slot cache did not exist. Output is identical either
	// way (differential tests pin it); the knob exists so tests and the
	// CI determinism job can regenerate figures in both modes against the
	// same goldens. Note the fast path already stands down by itself when
	// flap damping is enabled (suppression decays with time, so a cached
	// winner cannot be trusted without a rescan).
	ForceFullScan bool

	// Shards partitions the routers across this many event loops
	// synchronized by conservative lookahead barriers (see des.Group and
	// ARCHITECTURE.md "Sharded engine"). 0 or 1 (the default) runs the
	// classic single-engine path, byte-for-byte unchanged. K >= 2 runs
	// sharded: by default in sequenced mode, whose output is provably
	// byte-identical to the single engine; with ShardConcurrent in
	// goroutine-per-shard mode, which scales with physical cores but is
	// deterministic only per (Seed, Shards, partition). Shard counts
	// above the router count are clamped; topologies whose cut links
	// would give no positive lookahead fall back to the single engine.
	Shards int
	// ShardConcurrent selects the concurrent sharded mode (real
	// parallelism, its own determinism class) instead of the sequenced
	// mode. Requires Shards >= 2 to have any effect and is incompatible
	// with Tracer: trace event order is only meaningful under a single
	// serial schedule.
	ShardConcurrent bool

	// Storm fast-lane toggles (see ARCHITECTURE.md "Storm fast lane").
	// All four default to on in DefaultParams (off when
	// StormBaselineDefault is set — the -storm-baseline flag); each is
	// independently toggleable so the differential digest tests
	// (stormpath_test.go) can pin every piece against the baseline path
	// on its own. Output is byte-identical in every combination.

	// StormFusedDispatch enables fused same-time dispatch in the event
	// engine (des.Engine.SetFusion): delivery→process chains at the same
	// instant — zero processing delay or zero link delay configurations —
	// skip the queue data structure while consuming the same sequence
	// stream. Single-engine mode only; sharded runs ignore it.
	StormFusedDispatch bool
	// StormBlockedSkip skips MRAI-gate-blocked pending destinations in
	// the advertisement flush: a destination examined and found blocked
	// is not re-examined until its gate opens or its route changes,
	// turning the storm's repeated flush passes from O(pending) to
	// O(newly runnable).
	StormBlockedSkip bool
	// StormCoalescedMRAI replaces the per-peer deferred-flush events
	// with per-peer virtual timers and one real per-router event. Each
	// virtual timer records the exact (time, sequence) queue key its
	// per-peer event would occupy — the sequence number is reserved from
	// the engine (des.Engine.ReserveSeq) at the point the eager path
	// would allocate a fresh event — and the real event is kept at the
	// minimum key, firing one peer per pop. The executed schedule is
	// identical to the per-peer baseline's by construction (see
	// ARCHITECTURE.md "Storm fast lane").
	StormCoalescedMRAI bool
	// StormSecondBest maintains a second-best-slot cache next to the
	// incremental decision process's best-slot cache, resolving the
	// storm's dominant update kinds — incumbent withdrawal, worsening of
	// the incumbent — in O(1) instead of a full peer-slot rescan.
	// Inactive (like the incremental path itself) under damping or
	// ForceFullScan.
	StormSecondBest bool

	// WarmStart replaces the event-driven initial-convergence phase with
	// the snapshot backend (internal/snapshot): ConvergeAndFail installs
	// the analytically computed converged routing state — Loc-RIBs,
	// Adj-RIBs-In, advertisement bookkeeping, quiescent timers — directly
	// into the routers and proceeds straight to failure injection. Because
	// the measurement window normalizes away all phase-1 transients in
	// every mode (see Simulator.normalizeWindow), a warm-started trial
	// reproduces the cold-started trial's post-failure delay and message
	// figures exactly while skipping the bulk of the wall-clock cost.
	// Policy runs hand the same Relationships to both backends via Policy.
	WarmStart bool

	// Seed drives every random draw in the simulation (processing delays,
	// jitter, origination stagger).
	Seed int64

	// Tracer, when set, receives every protocol-level event (sends,
	// receives, decisions, timer restarts, failures). Nil disables
	// tracing at negligible cost.
	Tracer trace.Tracer
}

// ForceFullScanDefault seeds Params.ForceFullScan in DefaultParams. The
// whole figure pipeline builds its parameters through DefaultParams, so
// flipping this before a run (the bgpfig/bgpbench -fullscan flag)
// regenerates figures or benchmarks with the incremental decision path
// disabled — the hook the CI determinism job uses to byte-compare both
// modes against the committed goldens. Set it before starting any
// simulation; it is read once per run at parameter construction and is
// not synchronized.
var ForceFullScanDefault bool

// StormBaselineDefault seeds the four Storm* fast-lane toggles in
// DefaultParams to off, regenerating figures or benchmarks on the
// pre-fast-lane path — the -storm-baseline flag on bgpfig/bgpbench, and
// the escape hatch the CI determinism job byte-compares against the
// default mode. Same contract as ForceFullScanDefault: set before any
// simulation starts, read once per run at parameter construction.
var StormBaselineDefault bool

// DefaultParams returns the paper's simulation configuration with a 30 s
// constant MRAI (the Internet default the paper starts from).
func DefaultParams() Params {
	return Params{
		MRAI:              mrai.Constant(30 * time.Second),
		Queue:             QueueFIFO,
		BatchDiscardStale: true,
		ProcMin:           1 * time.Millisecond,
		ProcMax:           30 * time.Millisecond,
		ExtDelay:          25 * time.Millisecond,
		IntDelay:          1 * time.Millisecond,
		JitterTimers:       true,
		OriginationSpread:  100 * time.Millisecond,
		ForceFullScan:      ForceFullScanDefault,
		StormFusedDispatch: !StormBaselineDefault,
		StormBlockedSkip:   !StormBaselineDefault,
		StormCoalescedMRAI: !StormBaselineDefault,
		StormSecondBest:    !StormBaselineDefault,
		Seed:               1,
	}
}

// Validate checks the parameter set.
func (p Params) Validate() error {
	switch {
	case p.MRAI == nil:
		return fmt.Errorf("bgp: MRAI factory is required")
	case p.Queue < QueueFIFO || p.Queue > QueueRouterBatch:
		return fmt.Errorf("bgp: unknown queue discipline %d", int(p.Queue))
	case p.ProcMin < 0 || p.ProcMax < p.ProcMin:
		return fmt.Errorf("bgp: processing delay range [%v,%v] invalid", p.ProcMin, p.ProcMax)
	case p.ExtDelay < 0 || p.IntDelay < 0:
		return fmt.Errorf("bgp: negative link delay")
	case p.DetectDelay < 0:
		return fmt.Errorf("bgp: negative detect delay")
	case p.OriginationSpread < 0:
		return fmt.Errorf("bgp: negative origination spread")
	case p.FlapGate < 0:
		return fmt.Errorf("bgp: negative flap gate")
	case p.PrefixesPerAS < 0:
		return fmt.Errorf("bgp: negative prefixes per AS")
	case p.Shards < 0:
		return fmt.Errorf("bgp: negative shard count")
	case p.ShardConcurrent && p.Tracer != nil:
		return fmt.Errorf("bgp: tracing requires a serial event order; disable ShardConcurrent")
	}
	if p.Damping != nil {
		if err := p.Damping.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MeanProc returns the mean per-update processing delay, the multiplier
// that converts queue length into the paper's "unfinished work" signal.
func (p Params) MeanProc() time.Duration {
	return (p.ProcMin + p.ProcMax) / 2
}
