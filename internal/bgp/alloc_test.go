package bgp

import (
	"testing"
)

// These tests pin the allocation behaviour of the inbox hot path so a
// future change cannot silently reintroduce per-update garbage. The
// enqueue/flush cycle runs once per BGP message — hundreds of thousands
// of times per simulation — which is why the bounds are exact zeros.

// TestFIFOInboxPushPopAllocationFree pins that the default queue's
// push/pop cycle allocates nothing once the ring has grown: Pop hands out
// a scratch-backed one-update batch instead of a fresh slice.
func TestFIFOInboxPushPopAllocationFree(t *testing.T) {
	q := &fifoInbox{}
	u := ann(1, 7, 1, 2, 3)
	q.Push(u) // grow the ring
	q.Pop()
	avg := testing.AllocsPerRun(1000, func() {
		q.Push(u)
		batch := q.Pop()
		if len(batch) != 1 {
			t.Fatal("lost the update")
		}
		q.Recycle(batch)
	})
	if avg != 0 {
		t.Errorf("fifo push/pop allocates %.2f objects/op, want 0", avg)
	}
}

// TestBatchInboxSteadyStateAllocationLean pins the batched queue's
// steady-state cycle: with Recycle returning batch arrays to the free
// list, a push/pop/recycle round trip for an already-seen destination
// stays allocation-free on average (the order slice reallocates only
// amortized, which the integer-valued AllocsPerRun average absorbs).
func TestBatchInboxSteadyStateAllocationLean(t *testing.T) {
	q := &batchInbox{byDest: make([]int32, 4096), discardStale: true}
	// Warm: seed the per-destination lists and the free list.
	for dest := 0; dest < 4; dest++ {
		q.Push(ann(1, dest, 1))
		q.Push(ann(2, dest, 2))
		q.Recycle(q.Pop())
	}
	u1, u2 := ann(1, 0, 1), ann(2, 0, 2)
	avg := testing.AllocsPerRun(1000, func() {
		q.Push(u1)
		q.Push(u2)
		batch := q.Pop()
		if len(batch) != 2 {
			t.Fatal("lost updates")
		}
		q.Recycle(batch)
		q.TakeDiscarded()
	})
	if avg != 0 {
		t.Errorf("batched push/pop/recycle allocates %.2f objects/op, want 0", avg)
	}
}

// TestRouterBatchInboxSteadyStateAllocationLean pins the same property
// for the per-peer production-router queue, whose Pop additionally reuses
// its supersede-scan map.
func TestRouterBatchInboxSteadyStateAllocationLean(t *testing.T) {
	q := &routerBatchInbox{byPeer: make(map[NodeID][]Update)}
	for i := 0; i < 4; i++ {
		q.Push(ann(1, 10, 1))
		q.Push(ann(1, 11, 2))
		q.Recycle(q.Pop())
	}
	u1, u2 := ann(1, 10, 1), ann(1, 11, 2)
	avg := testing.AllocsPerRun(1000, func() {
		q.Push(u1)
		q.Push(u2)
		batch := q.Pop()
		if len(batch) != 2 {
			t.Fatal("lost updates")
		}
		q.Recycle(batch)
		q.TakeDiscarded()
	})
	if avg != 0 {
		t.Errorf("router-batch push/pop/recycle allocates %.2f objects/op, want 0", avg)
	}
}
