package bgp

// routeRef is a compact handle for an interned AS path: an index+1 into
// the Simulator's pathTab, with 0 meaning "no route". All per-destination
// route storage (Adj-RIB-In, Loc-RIB, advertised bookkeeping) holds
// routeRefs instead of Path slice headers, shrinking a stored route from
// a 24-byte slice header (plus its backing array) to 4 bytes that share
// one read-only path object — the compact representation that keeps
// multi-prefix tables (ndests = ASes × PrefixesPerOrigin) affordable.
type routeRef uint32

// pathTab interns the paths a simulation creates. Every path is
// registered once and referenced everywhere by its routeRef; the paths
// themselves live in the bump-pointer arena and are immutable until
// Simulator.Reset rewinds the table.
//
// The key property is derivation memoization: every announcement path
// the simulator builds is prependPath(as, parent) for a parent path it
// already holds, so prepend is memoized on (as, parent ref). Prefixes
// from one origin AS carry identical AS paths through the network and
// therefore share the exact same interned objects — path storage scales
// with distinct paths (topology-sized), not with destinations
// (topology × PrefixesPerOrigin).
//
// Like the arena it owns, the table is single-threaded under its
// Simulator.
type pathTab struct {
	arena pathArena
	paths []Path   // ref-1 indexed registered paths
	masks []uint64 // pathASMask of each registered path

	// children memoizes prepend: key (as<<32 | parent ref) -> child ref.
	children map[uint64]routeRef

	// emptyRef is the interned empty path — the Loc-RIB payload of every
	// locally originated route. Registered first by reset, so it is the
	// same ref every trial.
	emptyRef routeRef
}

// emptyPath is the shared non-nil zero-length path backing emptyRef.
var emptyPath = Path{}

// reset rewinds the table for a new trial: the arena is rewound, all
// registrations are forgotten (the backing slices and map are retained,
// so steady-state trials re-register without allocating), and the empty
// path is re-registered as the first ref. Only legal when no live
// routeRefs remain — i.e. from Simulator.Reset, after the engine is
// drained and before routers re-populate their RIBs.
func (t *pathTab) reset() {
	t.arena.rewind()
	t.paths = t.paths[:0]
	t.masks = t.masks[:0]
	if t.children == nil {
		t.children = make(map[uint64]routeRef)
	} else {
		clear(t.children)
	}
	t.emptyRef = t.register(emptyPath)
}

// register interns p (which must be non-nil and immutable) and returns
// its ref.
func (t *pathTab) register(p Path) routeRef {
	t.paths = append(t.paths, p)
	t.masks = append(t.masks, pathASMask(p))
	return routeRef(len(t.paths))
}

// path returns the interned path for ref; nil for the zero ref. The
// caller must not modify the returned slice.
func (t *pathTab) path(ref routeRef) Path {
	if ref == 0 {
		return nil
	}
	return t.paths[ref-1]
}

// mask returns the Bloom-style AS mask of ref's path (bit as&63 set for
// every hop). A clear bit proves an AS is not on the path, so loop and
// export checks can skip the element scan for almost every route.
func (t *pathTab) mask(ref routeRef) uint64 {
	if ref == 0 {
		return 0
	}
	return t.masks[ref-1]
}

// prepend returns the ref of prependPath(as, path(parent)), building and
// registering it on first use. The memoization makes re-deriving the
// same announcement — every prefix of an origin, every MRAI retry, every
// peer — a map hit instead of an allocation.
func (t *pathTab) prepend(as ASN, parent routeRef) routeRef {
	key := uint64(uint32(as))<<32 | uint64(parent)
	if ref, ok := t.children[key]; ok {
		return ref
	}
	ref := t.register(t.arena.prepend(as, t.path(parent)))
	t.children[key] = ref
	return ref
}

// intern registers a path that did not originate from this table's own
// derivations — hand-built updates in tests, external feeds. No
// deduplication is attempted: equality checks fall back to pathsEqual
// when refs differ, so duplicate registrations are merely unshared, never
// incorrect.
func (t *pathTab) intern(p Path) routeRef {
	if p == nil {
		return 0
	}
	return t.register(p)
}

// pathCompactor rebuilds a path table so it holds exactly the refs still
// reachable from RIB storage. The exploration storm of a large trial
// registers orders of magnitude more paths than survive to quiescence
// (every transient best path lives in the arena until Reset); at
// 500 ASes × 1000 prefixes the dead fraction is GB-scale. The compactor
// copies each live path once into a fresh arena and hands out the
// remapping; the old table — arena blocks, ref slices, memo map — is
// dropped wholesale when the owner installs dst.
//
// Refs are pure acceleration, never identity (comparisons fall back to
// pathsEqual when refs differ), so renumbering every live ref is
// behavior-neutral. The prepend memo starts empty and re-fills keyed by
// the new refs. Only legal at quiescence with no in-flight updates —
// exactly the Simulator.Reset precondition, enforced by the caller.
type pathCompactor struct {
	src   *pathTab
	dst   pathTab
	remap []routeRef // old ref -> new ref; 0 = not yet copied
}

func newPathCompactor(src *pathTab) *pathCompactor {
	c := &pathCompactor{src: src, remap: make([]routeRef, len(src.paths)+1)}
	c.dst.reset()
	c.remap[src.emptyRef] = c.dst.emptyRef
	return c
}

// ref returns the compacted ref for old, copying the path on first use.
func (c *pathCompactor) ref(old routeRef) routeRef {
	if old == 0 {
		return 0
	}
	if nr := c.remap[old]; nr != 0 {
		return nr
	}
	p := c.src.path(old)
	np := c.dst.arena.alloc(len(p))
	copy(np, p)
	nr := c.dst.register(np)
	c.remap[old] = nr
	return nr
}
