package bgp

import (
	"math"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/metrics"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

// router is one BGP speaker: RIBs, per-peer MRAI timers, a serial CPU fed
// by the configured input queue, and the advertisement bookkeeping that
// suppresses no-op updates.
//
// All per-destination state is held in dense arrays indexed by the
// Simulator-owned dest index (see Simulator.ndests): the Adj-RIB-In and
// Loc-RIB, the per-slot advertised refs, the pending bitsets, the
// per-destination MRAI gates, and the flap counters. Routes are stored as
// 4-byte interned routeRefs (see pathTab) and the per-destination slot
// caches as 2-byte slot indices, so the per-router footprint is a few
// bytes per destination plus 4 bytes per (advertising peer, destination)
// — the packed encoding that keeps ndests = ASes × PrefixesPerOrigin
// tables affordable. Dense storage keeps steady-state routing churn
// allocation-free and lets reset rewind a router in O(occupied entries)
// for simulator reuse.
type router struct {
	id    NodeID
	as    ASN
	alive bool
	sim   *Simulator

	// Execution-context indirection, rebound by Simulator.Reset. In the
	// single-engine mode all of these alias the Simulator's own fields;
	// in sharded mode eng is the router's shard engine and — in
	// concurrent mode — col/rng/tab are the shard-local collector,
	// random stream, and path table (per the sharding contract: shard
	// handlers touch only shard-local mutable state). grp is set only in
	// sequenced sharded mode, where the current simulated time lives on
	// the group driver rather than the (lagging) shard engine clock; see
	// now.
	shard int
	eng   *des.Engine
	grp   *des.Group
	col   *metrics.Collector
	rng   *des.RNG
	tab   *pathTab

	peers     []Peer
	peerAlive []bool
	slotOf    map[NodeID]int
	// slotDense is the hot-path twin of slotOf: node id -> peer slot + 1
	// (0 = not a peer), indexed directly. The map lookup per arriving
	// update was ~5% of the storm profile; the dense array is one load.
	// nil when the topology exceeds slotDenseMax nodes (the array is
	// quadratic in fleet memory: nodes × routers).
	slotDense []int16

	ndests     int // dest-index capacity all dense arrays are sized for
	adjIn      *adjRIBIn
	loc        locRIB
	originates bitset

	// Per-slot advertisement state.
	advertised []refSlot    // last announced ref per destination (0 = withdrawn/never)
	pending    []bitset     // destinations needing re-advertisement (drained in ascending order)
	nextSend   []des.Time   // per-peer MRAI gate: announcements allowed at/after this time
	destGate   [][]des.Time // per-destination gates (PerDestinationMRAI ablation); zero = open
	flushEv    []*des.Event // scheduled deferred flush per slot (per-slot mode)

	// Storm fast-lane send-path state (see ARCHITECTURE.md "Storm fast
	// lane"). blocked marks, per slot, pending destinations that tryFlush
	// examined and found MRAI-gate-blocked; they are skipped on later
	// passes until a gate can have opened (per-peer gate reached, or the
	// deferred flush fires) or the destination's desired advertisement
	// may have changed (markPendingAll clears the bit). Columns are
	// allocated lazily on a slot's first blocked destination. Under
	// StormCoalescedMRAI the per-slot flushEv events become virtual
	// timers: flushAt holds each slot's pending retry time (-1 = none)
	// and flushStamp the engine sequence number reserved when that retry
	// was recorded — together, the exact (at, seq) key the per-slot
	// event would occupy in the queue. One real event (coalEv) is kept
	// at the minimum virtual key (coalAt, coalSeq) and fires one slot
	// per pop, so the executed schedule is identical to the per-slot
	// baseline's, event for event.
	blocked    []bitset
	flushAt    []des.Time
	flushStamp []uint64
	coalEv     *des.Event
	coalAt     des.Time
	coalSeq    uint64
	coal       coalTask

	inbox        Inbox
	inboxQueue   QueueDiscipline // discipline inbox was built for (reset reuses on match)
	inboxDiscard bool            // BatchDiscardStale inbox was built for
	busy         bool

	policy mrai.Policy

	// Reusable scratch and pre-allocated event tasks. The simulation hot
	// loop (enqueue -> process -> decide -> flush) runs millions of times
	// per experiment; everything here exists so that steady-state
	// iterations allocate nothing.
	proc            procTask    // the single in-flight CPU-completion task
	flushTasks      []flushTask // per-slot deferred-flush tasks
	destsScratch    []ASN       // tryFlush's sorted pending-destination list
	affectedScratch []ASN       // peerDown's sorted affected-destination list
	touched         bitset
	changed         []ASN

	// Load accounting for mrai.Snapshot.
	busyAccum     time.Duration
	busyStart     des.Time
	lastSnapTime  des.Time
	lastSnapBusy  time.Duration
	msgsSinceSnap int

	// flapCount drives the Deshpande–Sikdar flap gate. Nil unless
	// Params.FlapGate > 0 — no other scheme reads it, and an always-on
	// per-dest counter is real memory at multi-prefix scale. int16 with
	// saturation: the gate compares against Params.FlapGate (single
	// digits in the paper), so saturating at 32767 can only matter for
	// absurd gate settings.
	flapCount []int16

	// damper holds RFC 2439 flap-damping state (nil when disabled).
	damper *damper

	// Incremental decision-process state. bestSlot caches, per
	// destination, the peer slot the current Loc-RIB entry was learned
	// from (bestNone = no route, bestSelf = locally originated); it is
	// maintained on every Loc-RIB mutation, which upholds the invariant
	// the fast path relies on: with damping disabled, the Loc-RIB always
	// equals decide(Adj-RIB-In), so bestSlot is exactly the slot a full
	// scan would pick. It doubles as the provenance of the packed Loc-RIB
	// entry (locEntryAt derives from/fromInternal through it). workSlot
	// is the within-batch working copy (lazily initialized from bestSlot
	// on a destination's first touch, tracked by the touched bitset),
	// advanced by classify as the batch applies; scanNeeded flags
	// destinations whose outcome cannot be resolved without the full
	// decide scan. incremental is false under damping (suppression decays
	// with wall-clock time, invalidating the cache) and under
	// Params.ForceFullScan. Slot indices are int16: a router with 32k+
	// peers is far beyond any modeled topology.
	incremental bool
	bestSlot    []int16
	workSlot    []int16
	scanNeeded  bitset

	// Second-best cache (StormSecondBest; active only alongside the
	// incremental path). secondSlot caches, per destination, the peer
	// slot the full decide scan would rank second — exactly the route the
	// storm's dominant update kinds (incumbent withdrawal, incumbent
	// worsening) promote, so those resolve in O(1) instead of a rescan.
	// Sentinels: secondNone (known: no runner-up exists), secondInvalid
	// (unknown: a scan must rebuild it before the fast paths may trust
	// it). workSecond is the within-batch working copy, initialized from
	// secondSlot alongside workSlot on a destination's first touch.
	// Validity invariant: a non-negative entry always names a live slot
	// whose stored Adj-RIB-In route ranks exactly second in the current
	// table — every transition that cannot cheaply uphold this writes
	// secondInvalid instead. Per-run mode flags (set by reset): useSecond
	// gates this cache, blockedSkip the flush skip set, coalesce the
	// coalesced MRAI flush.
	useSecond   bool
	blockedSkip bool
	coalesce    bool
	secondSlot  []int16
	workSecond  []int16
}

// now returns the current simulated time from the router's execution
// context: the group clock in sequenced sharded mode (the shard engine
// clocks lag the driver there), the engine clock otherwise — which in
// concurrent mode is the shard's in-epoch clock, synchronized to the
// barrier time whenever control events run. Every time read and every
// relative delay computation in the router goes through here, so the
// three modes share one code path.
func (r *router) now() des.Time {
	if r.grp != nil {
		return r.grp.Now()
	}
	return r.eng.Now()
}

// bestSlot sentinel values (real peer slots are >= 0).
const (
	bestNone int16 = -1 // no Loc-RIB entry for the destination
	bestSelf int16 = -2 // locally originated route: never displaced
)

// secondSlot sentinel values (real peer slots are >= 0).
const (
	secondNone    int16 = -1 // known: no second-ranked route exists
	secondInvalid int16 = -2 // unknown: only a full scan can rebuild it
)

// slotDenseMax bounds the topology size for which the dense slot index
// is built: the fleet-wide footprint is nodes × routers int16 entries,
// quadratic in the node count.
const slotDenseMax = 4096

// newRouter builds the topology-dependent skeleton of a router (peer
// slots, scratch tasks, empty RIB shells). All parameter- and
// destination-dependent state is installed by reset, which New and
// Simulator.Reset share so a reused simulator cannot drift from a fresh
// one.
func newRouter(id NodeID, as ASN, peers []Peer, sim *Simulator) *router {
	r := &router{
		id:         id,
		as:         as,
		sim:        sim,
		peers:      peers,
		peerAlive:  make([]bool, len(peers)),
		slotOf:     make(map[NodeID]int, len(peers)),
		nextSend:   make([]des.Time, len(peers)),
		flushEv:    make([]*des.Event, len(peers)),
		blocked:    make([]bitset, len(peers)),
		flushAt:    make([]des.Time, len(peers)),
		flushStamp: make([]uint64, len(peers)),
		advertised: make([]refSlot, len(peers)),
		pending:    make([]bitset, len(peers)),
		flushTasks: make([]flushTask, len(peers)),
	}
	r.proc.r = r
	r.coal.r = r
	for slot, peer := range peers {
		r.slotOf[peer.Node] = slot
		r.flushTasks[slot] = flushTask{r: r, slot: slot}
	}
	if n := sim.net.NumNodes(); n <= slotDenseMax {
		r.slotDense = make([]int16, n)
		for slot, peer := range peers {
			r.slotDense[peer.Node] = int16(slot) + 1
		}
	}
	r.adjIn = newAdjRIBIn(r.slotOf, &sim.tab, len(peers), 0)
	return r
}

// reset rewinds the router to its boot state for a run with parameters p
// over ndests dense destination indices: empty RIBs, all sessions up,
// open MRAI gates, an empty inbox (reused when the queue discipline is
// unchanged), fresh policy/damping state, and zeroed load accounting.
// Dense arrays are cleared sparsely (O(occupied entries)) and retained,
// so repeated trials on one topology allocate almost nothing.
func (r *router) reset(p Params, ndests int) {
	r.alive = true
	r.busy = false
	r.proc.batch = nil
	if r.ndests != ndests {
		r.ndests = ndests
		r.adjIn.resize(ndests)
		r.loc = newLocRIB(ndests)
		r.originates = newBitset(ndests)
		for slot := range r.advertised {
			r.advertised[slot].drop()
		}
		for slot := range r.pending {
			r.pending[slot] = newBitset(ndests)
		}
		r.touched = newBitset(ndests)
		r.bestSlot = make([]int16, ndests)
		for i := range r.bestSlot {
			r.bestSlot[i] = bestNone
		}
		r.workSlot = make([]int16, ndests)
		r.scanNeeded = newBitset(ndests)
		for slot := range r.blocked {
			r.blocked[slot] = nil // re-materializes lazily at the new size
		}
	} else {
		r.adjIn.reset()
		r.loc.reset()
		r.originates.clearAll()
		for slot := range r.advertised {
			r.advertised[slot].reset()
		}
		for slot := range r.pending {
			r.pending[slot].clearAll()
		}
		r.touched.clearAll()
		for i := range r.bestSlot {
			r.bestSlot[i] = bestNone
		}
		r.scanNeeded.clearAll()
	}
	// flapCount backs only the Deshpande–Sikdar flap gate; every other
	// scheme leaves the array nil so the gate costs nothing per
	// destination. At multi-prefix scale an always-on int16 per dest per
	// router is half a GB of dead weight.
	if p.FlapGate > 0 {
		if len(r.flapCount) != ndests {
			r.flapCount = make([]int16, ndests)
		} else {
			for i := range r.flapCount {
				r.flapCount[i] = 0
			}
		}
	} else {
		r.flapCount = nil
	}
	for slot := range r.peers {
		r.peerAlive[slot] = true
		r.nextSend[slot] = 0
		r.flushEv[slot] = nil
		r.flushAt[slot] = -1
		r.flushStamp[slot] = 0
		if bl := r.blocked[slot]; bl != nil {
			bl.clearAll()
		}
	}
	r.coalEv = nil // the engine was reset; the event is already gone
	r.coalAt, r.coalSeq = -1, 0
	if p.PerDestinationMRAI {
		if len(r.destGate) != len(r.peers) || (len(r.peers) > 0 && len(r.destGate[0]) != ndests) {
			r.destGate = make([][]des.Time, len(r.peers))
			for slot := range r.destGate {
				r.destGate[slot] = make([]des.Time, ndests)
			}
		} else {
			for slot := range r.destGate {
				gates := r.destGate[slot]
				for i := range gates {
					gates[i] = 0
				}
			}
		}
	} else {
		r.destGate = nil
	}
	if r.inbox == nil || r.inboxQueue != p.Queue || r.inboxDiscard != p.BatchDiscardStale ||
		(p.Queue == QueueBatched && len(r.inbox.(*batchInbox).byDest) != ndests) {
		r.inbox = newInbox(p, ndests)
	} else {
		r.inbox.Reset()
	}
	r.inboxQueue, r.inboxDiscard = p.Queue, p.BatchDiscardStale
	r.policy = p.MRAI(len(r.peers))
	if p.Damping != nil {
		r.damper = newDamper(p.Damping)
	} else {
		r.damper = nil
	}
	r.incremental = r.damper == nil && !p.ForceFullScan
	r.blockedSkip = p.StormBlockedSkip
	// Exact in every configuration: virtual timers carry reserved
	// engine sequence numbers, so equal-time collisions (jittered or
	// not) resolve exactly as the per-slot events would.
	r.coalesce = p.StormCoalescedMRAI
	r.useSecond = r.incremental && p.StormSecondBest
	if r.useSecond {
		if len(r.secondSlot) != ndests {
			r.secondSlot = make([]int16, ndests)
			r.workSecond = make([]int16, ndests)
		}
		for i := range r.secondSlot {
			r.secondSlot[i] = secondNone // empty table: no runner-up
		}
	} else {
		// Like flapCount: per-dest int16 arrays are real memory at
		// multi-prefix scale, so the cache exists only when active.
		r.secondSlot, r.workSecond = nil, nil
	}
	r.busyAccum, r.lastSnapBusy = 0, 0
	r.busyStart, r.lastSnapTime = 0, 0
	r.msgsSinceSnap = 0
	r.destsScratch = r.destsScratch[:0]
	r.affectedScratch = r.affectedScratch[:0]
	r.changed = r.changed[:0]
}

// locEntryAt materializes the Loc-RIB entry for dest from the packed
// storage: the interned path ref plus provenance derived from bestSlot.
func (r *router) locEntryAt(dest ASN) (locEntry, bool) {
	ref, ok := r.loc.getRef(dest)
	if !ok {
		return locEntry{}, false
	}
	e := locEntry{path: r.tab.path(ref), ref: ref, from: -1}
	if bs := r.bestSlot[dest]; bs >= 0 {
		p := &r.peers[bs]
		e.from, e.fromInternal = p.Node, p.Internal
	}
	return e, true
}

// originate installs a locally originated prefix and advertises it.
func (r *router) originate(dest ASN) {
	r.originates.set(dest)
	r.loc.set(dest, r.tab.emptyRef)
	r.bestSlot[dest] = bestSelf
	r.markPendingAll(dest)
	r.flushAll()
}

// procTask is the pre-allocated des.Runner for CPU-completion events.
// Each router has exactly one in-flight work unit at a time (guarded by
// r.busy), so one reusable task per router replaces a per-unit closure.
type procTask struct {
	r     *router
	batch []Update
}

// Run delivers the completed work unit to finishProcessing.
func (t *procTask) Run() {
	batch := t.batch
	t.batch = nil
	t.r.finishProcessing(batch)
}

// flushTask is the pre-allocated des.Runner for deferred-flush events.
// Each (router, slot) has at most one armed flush event (guarded by
// r.flushEv[slot]), so one reusable task per slot replaces a per-arming
// closure.
type flushTask struct {
	r    *router
	slot int
}

// Run clears the armed-event marker and retries the flush.
func (t *flushTask) Run() {
	r := t.r
	r.flushEv[t.slot] = nil
	if bl := r.blocked[t.slot]; bl != nil {
		bl.clearAll() // the armed gate time arrived: re-examine everything
	}
	r.tryFlush(t.slot)
}

// coalTask is the pre-allocated des.Runner for the coalesced deferred
// flush (StormCoalescedMRAI): one armed event per router instead of one
// per (router, slot). Each slot's pending retry is a virtual timer
// carrying the exact (at, seq) key its per-slot event would occupy —
// the sequence number is reserved from the engine at the point the
// per-slot path would have allocated a fresh event — and the real event
// is always positioned at the minimum virtual key, firing exactly one
// slot per pop. The executed (at, seq) schedule is therefore identical
// to the per-slot baseline's by construction: same keys, same
// interleaving with every other same-time event in the queue.
type coalTask struct {
	r *router
}

// minVirtualFlush returns the slot with the earliest virtual timer key,
// or -1 when no virtual timer is pending.
func (r *router) minVirtualFlush() (slot int, at des.Time, seq uint64) {
	slot = -1
	for s, a := range r.flushAt {
		if a < 0 {
			continue
		}
		if q := r.flushStamp[s]; slot < 0 || a < at || (a == at && q < seq) {
			slot, at, seq = s, a, q
		}
	}
	return slot, at, seq
}

// Run fires the one slot whose virtual timer key the popped event
// carries, then repositions at the new minimum.
func (t *coalTask) Run() {
	r := t.r
	firedAt, firedSeq := r.coalAt, r.coalSeq
	r.coalEv = nil
	if !r.alive {
		return
	}
	slot, at, seq := r.minVirtualFlush()
	if slot < 0 {
		return // every virtual timer was cleared since arming
	}
	if at != firedAt || seq != firedSeq {
		// Stale pop: the minimum slot this event was positioned for was
		// cleared after arming (peerDown, revive). The per-slot baseline
		// pops the canceled event as the same no-op. Re-arm at the
		// surviving minimum.
		r.armCoalescedAt(at, seq)
		return
	}
	// Live pop: run exactly this slot, exactly as its flushTask would.
	r.flushAt[slot] = -1
	if bl := r.blocked[slot]; bl != nil {
		bl.clearAll() // the armed gate time arrived: re-examine everything
	}
	r.tryFlush(slot)
	// Reposition at the new minimum (tryFlush may have re-armed for its
	// own slot; another slot's virtual timer may be earlier).
	if slot, at, seq = r.minVirtualFlush(); slot >= 0 {
		r.armCoalescedAt(at, seq)
	}
}

// armCoalescedAt positions the coalesced event at virtual key (at, seq)
// unless it is already armed at that key or an earlier one. The armed
// key only ever moves earlier, and never past the engine's position:
// every virtual key is in the causal future of the arming call, and the
// armed key is a lower bound on all live virtual keys.
func (r *router) armCoalescedAt(at des.Time, seq uint64) {
	if ev := r.coalEv; ev != nil && !ev.Canceled() {
		if r.coalAt < at || (r.coalAt == at && r.coalSeq <= seq) {
			return
		}
		r.eng.Cancel(ev)
	}
	r.coalEv = r.eng.ScheduleRunnerAtSeq(at, seq, &r.coal)
	r.coalAt, r.coalSeq = at, seq
}

// peerSlot resolves a node id to its peer slot through the dense index
// when available (the per-update map lookup was ~5% of the storm
// profile), the map otherwise.
func (r *router) peerSlot(n NodeID) (int, bool) {
	if d := r.slotDense; d != nil {
		if uint(n) < uint(len(d)) {
			s := d[n]
			return int(s) - 1, s != 0
		}
		return -1, false
	}
	slot, ok := r.slotOf[n]
	return slot, ok
}

// --- receive path -----------------------------------------------------

// enqueue accepts an arriving update and starts the CPU if idle.
func (r *router) enqueue(u Update) {
	if !r.alive {
		return
	}
	r.inbox.Push(u)
	r.msgsSinceSnap++
	r.col.NoteQueueLen(r.inbox.Len())
	r.sim.emit(trace.Event{
		At: r.now(), Kind: trace.KindReceive, Node: r.id,
		Peer: u.From, Dest: u.Dest, Withdrawal: u.IsWithdrawal(),
	})
	if !r.busy {
		r.startProcessing()
	}
}

// startProcessing pops the next work unit and schedules its completion
// after the drawn processing delay (one draw per update in the unit).
// With SkipNoopUpdates, superfluous updates (no change relative to the
// Adj-RIB-In) are dropped at zero cost and the next unit is tried.
func (r *router) startProcessing() {
	for {
		batch := r.inbox.Pop()
		if len(batch) == 0 {
			return
		}
		discarded := r.inbox.TakeDiscarded()
		if r.sim.params.SkipNoopUpdates {
			kept := batch[:0]
			for _, u := range batch {
				var stored routeRef
				if slot, ok := r.peerSlot(u.From); ok {
					stored = r.adjIn.getSlotRef(slot, u.Dest)
				}
				has := stored != 0
				noop := u.IsWithdrawal() && !has ||
					!u.IsWithdrawal() && has &&
						(stored == u.Ref || pathsEqual(r.tab.path(stored), u.Path))
				if noop {
					discarded++
					continue
				}
				kept = append(kept, u)
			}
			batch = kept
		}
		if discarded > 0 {
			r.col.NoteDiscarded(discarded)
		}
		if len(batch) == 0 {
			r.inbox.Recycle(batch)
			continue
		}
		var delay time.Duration
		for range batch {
			delay += r.rng.UniformDuration(r.sim.params.ProcMin, r.sim.params.ProcMax)
		}
		r.busy = true
		r.busyStart = r.now()
		r.proc.batch = batch
		r.eng.ScheduleRunnerAt(r.busyStart+delay, &r.proc)
		return
	}
}

// finishProcessing applies a processed work unit: Adj-RIB-In updates for
// every message, then one decision-process pass per touched destination
// (the batching scheme's "process all updates for a destination
// together"), then advertisement flushing. Touched destinations are
// collected in a bitset and drained in ascending order — the same sorted
// order the previous map+sort implementation produced.
func (r *router) finishProcessing(batch []Update) {
	if !r.alive {
		return
	}
	now := r.now()
	r.busyAccum += now - r.busyStart
	r.busy = false
	r.col.NoteProcessed(now, len(batch))
	r.sim.emit(trace.Event{
		At: now, Kind: trace.KindProcess, Node: r.id,
		Peer: -1, Dest: -1, Value: len(batch),
	})

	touched := r.touched
	incr := r.incremental
	for _, u := range batch {
		// Drop updates from peers that died while the message was queued.
		slot, ok := r.peerSlot(u.From)
		if !ok || !r.peerAlive[slot] {
			continue
		}
		ref := u.Ref
		looped := false
		if !u.IsWithdrawal() {
			if ref == 0 {
				// Foreign update (hand-built outside the simulator):
				// intern its path on arrival.
				ref = r.tab.intern(u.Path)
			}
			// Receiver-side loop detection: the clear mask bit proves the
			// local AS is absent, skipping the path scan for almost every
			// update.
			if r.tab.mask(ref)&(1<<(uint(r.as)&63)) != 0 {
				looped = pathContains(u.Path, r.as)
			}
		}
		if incr {
			// Classify the update against the working best before the
			// Adj-RIB-In mutation below overwrites the previous route.
			if !touched.has(u.Dest) {
				r.workSlot[u.Dest] = r.bestSlot[u.Dest]
				if r.useSecond {
					r.workSecond[u.Dest] = r.secondSlot[u.Dest]
				}
			}
			r.classify(slot, u, looped)
		}
		// Flap accounting per RFC 2439: withdrawals and re-advertisements
		// of an existing route are penalized; a peer's first announcement
		// of a destination is not.
		flapped := false
		if u.IsWithdrawal() || looped {
			// A looped path is treated as an implicit withdrawal of the
			// peer's previous route.
			flapped = r.adjIn.removeSlot(slot, u.Dest)
		} else {
			prev := r.adjIn.getSlotRef(slot, u.Dest)
			flapped = prev != 0 &&
				!(prev == ref || pathsEqual(r.tab.path(prev), u.Path))
			r.adjIn.setSlot(slot, u.Dest, ref)
		}
		if flapped && r.damper != nil {
			r.penalize(u.Dest, u.From)
		}
		touched.set(u.Dest)
	}

	changed := touched.appendIndices(r.changed[:0])
	r.changed = changed
	anyChanged := false
	for _, dest := range changed {
		touched.clear(dest)
		var routeChanged bool
		switch {
		case !incr:
			routeChanged = r.runDecision(dest)
		case r.scanNeeded.has(dest):
			r.scanNeeded.clear(dest)
			routeChanged = r.runDecision(dest)
		default:
			routeChanged = r.applyWorkingBest(dest)
		}
		if routeChanged {
			r.markPendingAll(dest)
			anyChanged = true
		}
	}
	r.inbox.Recycle(batch)
	if anyChanged {
		r.flushAll()
	}
	if !r.inbox.Empty() {
		r.startProcessing()
	}
}

// runDecision recomputes the best route for dest with the full peer-slot
// scan. It returns true when the Loc-RIB entry changed in any way that
// affects advertisements.
func (r *router) runDecision(dest ASN) bool {
	old, hadOld := r.locEntryAt(dest)
	if hadOld && old.isSelf() {
		return false // locally originated routes are never displaced
	}
	if r.useSecond {
		// One scan rebuilds both caches (decide2 ranks identically to
		// decide; useSecond implies damping is off).
		best, slot, second, ok := decide2(r.adjIn, dest, r.peers, r.peerAlive, r.sim.params.Policy, r.id)
		r.secondSlot[dest] = second
		return r.commitDecision(dest, old, hadOld, best, slot, ok)
	}
	best, slot, ok := decide(r.adjIn, dest, r.peers, r.peerAlive, r.damper, r.sim.params.Policy, r.id)
	return r.commitDecision(dest, old, hadOld, best, slot, ok)
}

// classify folds one arriving update into the batch's working-best
// bookkeeping, before the Adj-RIB-In mutation for the update is applied.
// looped is the precomputed receiver-side loop-detection verdict for the
// update's path. The per-destination batch outcomes:
//
//	(a) an update strictly better than the working best becomes the
//	    working best without a scan;
//	(b) an update to a non-best slot that does not beat the working best
//	    is a no-op for the decision process;
//	(c) only a withdrawal — or a strict worsening — of the working
//	    best's own slot forces the full decide scan (scanNeeded).
//
// The (a)/(b) split is sound because betterRoute is a strict total order
// across slots (ties break on peer AS then node ID): a replacement on a
// non-best slot that merely equals the working best still loses to it,
// and an equal-rank re-announcement on the best slot itself keeps
// winning. Only called in incremental mode, where damping is off — so
// no candidate is ever suppressed and the Loc-RIB invariant (bestSlot ==
// full-scan winner) holds between batches.
//
// With the second-best cache (useSecond), most (c) cases also resolve
// without a scan: an incumbent withdrawal promotes the cached runner-up
// (or empties the table when the runner-up is known absent), and an
// incumbent worsening compares the new route against the runner-up
// directly. The scan remains only when the runner-up is unknown
// (secondInvalid). See ARCHITECTURE.md "Storm fast lane" for the full
// classification table.
func (r *router) classify(slot int, u Update, looped bool) {
	dest := u.Dest
	if r.scanNeeded.has(dest) {
		return // already falling back to the full scan for this dest
	}
	ws := r.workSlot[dest]
	if ws == bestSelf {
		return // locally originated: the decision is always a no-op
	}
	if u.IsWithdrawal() || looped {
		if ws < 0 || int(ws) != slot {
			// (b) removing a never-best route cannot change the winner —
			// but the removed route may have been the cached runner-up.
			if r.useSecond && ws >= 0 && r.workSecond[dest] == int16(slot) {
				r.workSecond[dest] = secondInvalid
			}
			return
		}
		// (c) the working best's route went away. With the second-best
		// cache the storm's dominant case resolves in O(1): the cached
		// runner-up is exactly what the full scan would now pick (or the
		// table is known to empty). The new runner-up (the old third) is
		// unknown either way.
		if r.useSecond {
			switch sec := r.workSecond[dest]; {
			case sec >= 0:
				r.workSlot[dest] = sec
				r.workSecond[dest] = secondInvalid
				return
			case sec == secondNone:
				r.workSlot[dest] = bestNone
				return
			}
		}
		r.scanNeeded.set(dest)
		return
	}
	peer := r.peers[slot]
	cand := locEntry{path: u.Path, from: peer.Node, fromInternal: peer.Internal}
	class := routeClass(r.sim.params.Policy, r.id, peer)
	if ws < 0 {
		r.workSlot[dest] = int16(slot) // first candidate for an empty table
		if r.useSecond {
			r.workSecond[dest] = secondNone
		}
		return
	}
	wref := r.adjIn.getSlotRef(int(ws), dest)
	if wref == 0 {
		r.scanNeeded.set(dest) // defensive: cache out of sync, rescan
		return
	}
	wpath := r.tab.path(wref)
	if int(ws) == slot {
		// Re-announcement on the winning slot itself: same peer, so only
		// the path ranking can move. An equal-or-better replacement keeps
		// winning (and cannot reorder the routes below it); a strictly
		// worse one may let the runner-up overtake.
		prev := locEntry{path: wpath, from: peer.Node, fromInternal: peer.Internal}
		if !betterRoute(prev, peer, class, cand, peer, class) {
			return
		}
		if r.useSecond {
			switch sec := r.workSecond[dest]; {
			case sec == secondNone:
				return // no other route: the worsened incumbent still wins
			case sec >= 0:
				if sref := r.adjIn.getSlotRef(int(sec), dest); sref != 0 {
					sp := r.peers[sec]
					sentry := locEntry{path: r.tab.path(sref), from: sp.Node, fromInternal: sp.Internal}
					sclass := routeClass(r.sim.params.Policy, r.id, sp)
					if betterRoute(cand, peer, class, sentry, sp, sclass) {
						return // still ahead of the runner-up: keeps winning
					}
					// The runner-up overtakes; where the worsened incumbent
					// now ranks against the old third is unknown.
					r.workSlot[dest] = sec
					r.workSecond[dest] = secondInvalid
					return
				}
			}
		}
		r.scanNeeded.set(dest) // (c) the working best's route worsened
		return
	}
	wpeer := r.peers[ws]
	wentry := locEntry{path: wpath, from: wpeer.Node, fromInternal: wpeer.Internal}
	wclass := routeClass(r.sim.params.Policy, r.id, wpeer)
	if betterRoute(cand, peer, class, wentry, wpeer, wclass) {
		// (a) strictly better: new working best. The displaced best is
		// exactly the new runner-up — even when the candidate replaced
		// the old runner-up's own route, since the displaced best
		// outranked that runner-up, which outranked everything else.
		r.workSlot[dest] = int16(slot)
		if r.useSecond {
			r.workSecond[dest] = ws
		}
		return
	}
	// (b): does not beat the working best — a decision no-op, but the
	// candidate may enter, replace, or displace the runner-up.
	if !r.useSecond {
		return
	}
	switch sec := r.workSecond[dest]; {
	case sec == secondNone:
		// Only route besides the best: the candidate is the runner-up.
		r.workSecond[dest] = int16(slot)
	case sec == int16(slot):
		// Replacement of the runner-up's own route: an equal-or-better
		// replacement stays ahead of the old third; a strictly worse one
		// may not.
		sref := r.adjIn.getSlotRef(int(sec), dest)
		if sref == 0 {
			r.workSecond[dest] = secondInvalid // defensive: cache out of sync
			return
		}
		sp := r.peers[sec]
		sentry := locEntry{path: r.tab.path(sref), from: sp.Node, fromInternal: sp.Internal}
		sclass := routeClass(r.sim.params.Policy, r.id, sp)
		if betterRoute(sentry, sp, sclass, cand, peer, class) {
			r.workSecond[dest] = secondInvalid
		}
	case sec >= 0:
		sref := r.adjIn.getSlotRef(int(sec), dest)
		if sref == 0 {
			r.workSecond[dest] = secondInvalid // defensive: cache out of sync
			return
		}
		sp := r.peers[sec]
		sentry := locEntry{path: r.tab.path(sref), from: sp.Node, fromInternal: sp.Internal}
		sclass := routeClass(r.sim.params.Policy, r.id, sp)
		if betterRoute(cand, peer, class, sentry, sp, sclass) {
			r.workSecond[dest] = int16(slot) // overtakes the runner-up
		}
	}
	// Remaining case (sec == secondInvalid): stays unknown.
}

// applyWorkingBest resolves a touched destination's decision without
// scanning the peer slots: when no scan was flagged, classify has
// maintained workSlot as exactly the slot a full decide scan over the
// final Adj-RIB-In would pick, so the winner is read back directly. The
// Loc-RIB commit (and all its observable side effects) is shared with
// runDecision, so the two paths cannot drift.
func (r *router) applyWorkingBest(dest ASN) bool {
	old, hadOld := r.locEntryAt(dest)
	if hadOld && old.isSelf() {
		return false // locally originated routes are never displaced
	}
	ws := r.workSlot[dest]
	if ws < 0 {
		if hadOld && r.useSecond {
			// classify concluded the table emptied (incumbent withdrawn,
			// runner-up known absent): commit the removal scan-free.
			r.secondSlot[dest] = secondNone
			return r.commitDecision(dest, old, hadOld, locEntry{}, -1, false)
		}
		// Only removals of never-best routes touched dest: the table had
		// no winner before and has none now (a Loc-RIB entry would have
		// initialized ws to its slot).
		return false
	}
	ref := r.adjIn.getSlotRef(int(ws), dest)
	if ref == 0 {
		return r.runDecision(dest) // defensive: cache out of sync, rescan
	}
	if r.useSecond {
		// Committed even when the winner is unchanged: the batch may have
		// moved only the runner-up.
		r.secondSlot[dest] = r.workSecond[dest]
	}
	peer := r.peers[ws]
	best := locEntry{path: r.tab.path(ref), ref: ref, from: peer.Node, fromInternal: peer.Internal}
	return r.commitDecision(dest, old, hadOld, best, int(ws), true)
}

// commitDecision installs a decision-process outcome (winner best from
// slot, or no route when !ok) against the previous Loc-RIB entry and
// performs the observable bookkeeping: flap counting, the collector's
// route-change note, and the trace event. Both the full-scan and the
// incremental paths terminate here, which is what keeps their side
// effects provably identical.
func (r *router) commitDecision(dest ASN, old locEntry, hadOld bool, best locEntry, slot int, ok bool) bool {
	switch {
	case !ok && !hadOld:
		return false
	case !ok:
		r.loc.del(dest)
		r.bestSlot[dest] = bestNone
	case hadOld && best.sameAs(old):
		return false // bestSlot already points at slot (same winner)
	default:
		r.loc.set(dest, best.ref)
		r.bestSlot[dest] = int16(slot)
	}
	pathChanged := !hadOld || !ok || !pathsEqual(old.path, best.path)
	if pathChanged {
		if r.flapCount != nil && r.flapCount[dest] != math.MaxInt16 {
			r.flapCount[dest]++
		}
		r.col.NoteRouteChange(r.now())
		pathLen := -1
		if ok {
			pathLen = len(best.path)
		}
		r.sim.emit(trace.Event{
			At: r.now(), Kind: trace.KindRouteChange, Node: r.id,
			Peer: -1, Dest: dest, Value: pathLen,
		})
	}
	return true
}

// --- send path --------------------------------------------------------

// markPendingAll queues dest for re-advertisement to every live peer and
// applies the Deshpande–Sikdar timer cancellation when configured.
func (r *router) markPendingAll(dest ASN) {
	now := r.now()
	valid := r.loc.has.has(dest)
	for slot := range r.peers {
		if !r.peerAlive[slot] {
			continue
		}
		r.pending[slot].set(dest)
		if r.blockedSkip {
			// The desired advertisement may have changed — possibly into
			// a withdrawal, which bypasses the announcement gate — so the
			// destination must be re-examined even while its gate runs.
			if bl := r.blocked[slot]; bl != nil {
				bl.clear(dest)
			}
		}
		if r.sim.params.CancelOnChange && valid && r.nextSend[slot] > now {
			r.nextSend[slot] = now
		}
	}
}

// flushAll attempts an advertisement flush on every live slot.
func (r *router) flushAll() {
	for slot := range r.peers {
		r.tryFlush(slot)
	}
}

// tryFlush sends what the slot's timers currently allow: withdrawals
// immediately (unless RateLimitWithdrawals), announcements when the
// per-peer (or per-destination) MRAI gate is open. When announcements are
// sent the gate rearms with the policy's current MRAI, jittered per
// RFC 1771. Blocked announcements get a deferred flush event. The
// pending bitset is drained in ascending destination order — identical
// to the sorted snapshot the map-based implementation flushed.
func (r *router) tryFlush(slot int) {
	if !r.alive || !r.peerAlive[slot] {
		return
	}
	pend := r.pending[slot]
	if !pend.any() {
		return
	}
	now := r.now()
	peerAllowed := now >= r.nextSend[slot]

	// Storm blocked-skip: pending destinations already examined and found
	// gate-blocked are skipped until a gate can have opened. With the
	// per-peer gate (destGate == nil) the opening is detectable right
	// here (peerAllowed), so the skip set is cleared and the full pending
	// list re-examined; with per-destination gates the deferred-flush
	// fire clears it — the armed retry time is the minimum of the noted
	// gate times, so no skipped gate opens before the event. A changed
	// route clears its destination's bit via markPendingAll.
	var bl bitset
	if r.blockedSkip {
		bl = r.blocked[slot]
	}
	var dests []ASN
	if bl != nil && bl.any() {
		if r.destGate == nil && peerAllowed {
			bl.clearAll()
			dests = pend.appendIndices(r.destsScratch[:0])
		} else {
			dests = pend.appendIndicesAndNot(bl, r.destsScratch[:0])
			if len(dests) == 0 {
				// Everything pending is known blocked: the deferred flush
				// armed when the bits were set covers the retry.
				r.destsScratch = dests
				return
			}
		}
	} else {
		dests = pend.appendIndices(r.destsScratch[:0])
	}
	r.destsScratch = dests

	sentGated := false // a gated announcement went out -> rearm timer
	sentAny := false
	var minBlocked des.Time = -1
	noteBlocked := func(dest ASN, at des.Time) {
		if minBlocked < 0 || at < minBlocked {
			minBlocked = at
		}
		if r.blockedSkip {
			if bl == nil {
				bl = newBitset(r.ndests)
				r.blocked[slot] = bl
			}
			bl.set(dest)
		}
	}

	adv := &r.advertised[slot]
	for _, dest := range dests {
		desired, desiredRef := r.desiredAdvert(dest, slot)
		// The advertised table only ever records nonzero announcement
		// refs (withdrawals delete the entry), so presence collapses to a
		// zero check on this very hot load. Matching refs always carry
		// equal paths; differing refs fall back to the path comparison
		// (interning is an acceleration, not an identity oracle).
		lastRef := adv.get(dest)
		if desiredRef == lastRef ||
			(desiredRef != 0 && lastRef != 0 && pathsEqual(desired, r.tab.path(lastRef))) {
			pend.clear(dest)
			continue
		}
		if desired == nil {
			// Withdrawal.
			if r.sim.params.RateLimitWithdrawals && !r.destAllowed(slot, dest, peerAllowed) {
				noteBlocked(dest, r.gateTime(slot, dest))
				continue
			}
			r.send(slot, Update{From: r.id, Dest: dest, Path: nil})
			adv.del(dest)
			pend.clear(dest)
			sentAny = true
			if r.sim.params.RateLimitWithdrawals {
				sentGated = true
				if r.destGate != nil {
					r.destGate[slot][dest] = now + r.nextMRAI(now)
				}
			}
			continue
		}
		// Announcement.
		bypass := r.sim.params.FlapGate > 0 && int(r.flapCount[dest]) < r.sim.params.FlapGate
		if !bypass && !r.destAllowed(slot, dest, peerAllowed) {
			noteBlocked(dest, r.gateTime(slot, dest))
			continue
		}
		r.send(slot, Update{From: r.id, Dest: dest, Path: desired, Ref: desiredRef})
		adv.set(dest, desiredRef, r.ndests)
		pend.clear(dest)
		sentAny = true
		if !bypass {
			sentGated = true
			if r.destGate != nil {
				r.destGate[slot][dest] = now + r.nextMRAI(now)
			}
		}
	}

	if sentGated && r.destGate == nil {
		r.nextSend[slot] = now + r.nextMRAI(now)
	}
	if sentAny {
		r.col.NotePacket(now)
	}
	if pend.any() {
		if r.destGate == nil {
			minBlocked = r.nextSend[slot]
		}
		r.scheduleFlush(slot, minBlocked)
	}
}

// destAllowed reports whether the announcement gate for (slot, dest) is
// open. peerAllowed is the precomputed per-peer answer.
func (r *router) destAllowed(slot int, dest ASN, peerAllowed bool) bool {
	if r.destGate == nil {
		return peerAllowed
	}
	return r.now() >= r.destGate[slot][dest]
}

// gateTime returns when the announcement gate for (slot, dest) opens.
func (r *router) gateTime(slot int, dest ASN) des.Time {
	if r.destGate == nil {
		return r.nextSend[slot]
	}
	return r.destGate[slot][dest]
}

// nextMRAI consults the policy with a fresh load snapshot and applies
// RFC 1771 jitter. Per the paper, the policy (and any dynamic level
// change) takes effect only here, at timer restart.
func (r *router) nextMRAI(now des.Time) time.Duration {
	m := r.policy.MRAI(r.snapshot(now))
	r.sim.emit(trace.Event{
		At: now, Kind: trace.KindTimerRestart, Node: r.id,
		Peer: -1, Dest: -1, Value: int(m),
	})
	if r.sim.params.JitterTimers {
		return r.rng.Jitter(m)
	}
	return m
}

// scheduleFlush arms (or re-arms earlier) the deferred flush for slot.
// In coalesced mode (StormCoalescedMRAI) the slot's retry time is
// recorded in flushAt and the single per-router event is armed at the
// earliest retry over all slots; otherwise a per-slot event is armed.
func (r *router) scheduleFlush(slot int, at des.Time) {
	if at < 0 {
		return
	}
	now := r.now()
	if at < now {
		at = now
	}
	if r.coalesce {
		if cur := r.flushAt[slot]; cur < 0 || at < cur {
			// Mirror the per-slot re-arm rule below: the recorded retry
			// only ever moves earlier, and each move reserves the exact
			// sequence number the per-slot path's fresh event would have
			// drawn — the virtual timer key (at, seq) is byte-for-byte
			// the queue key that event would occupy.
			r.flushAt[slot] = at
			r.flushStamp[slot] = r.eng.ReserveSeq()
		}
		r.armCoalescedAt(r.flushAt[slot], r.flushStamp[slot])
		return
	}
	if ev := r.flushEv[slot]; ev != nil && !ev.Canceled() {
		if ev.At() <= at {
			return
		}
		r.eng.Cancel(ev)
	}
	r.flushEv[slot] = r.eng.ScheduleRunnerAt(at, &r.flushTasks[slot])
}

// send transmits one route-level update to the slot's peer.
func (r *router) send(slot int, u Update) {
	peer := r.peers[slot]
	now := r.now()
	r.col.NoteSend(now, r.id, u.IsWithdrawal())
	r.sim.emit(trace.Event{
		At: now, Kind: trace.KindSend, Node: r.id,
		Peer: peer.Node, Dest: u.Dest, Withdrawal: u.IsWithdrawal(),
	})
	r.sim.deliver(r, r.sim.routers[peer.Node], peer.Delay, u)
}

// desiredAdvert computes what the router should currently advertise to
// the slot's peer for dest: the announcement path and its interned ref,
// or (nil, 0) meaning "nothing" (which materializes as a withdrawal if
// something was previously advertised). The rules:
//
//   - no valid route -> nil;
//   - never back to the peer the best route came from (split horizon /
//     sender-side loop detection);
//   - IBGP-learned routes are not relayed to IBGP peers;
//   - to an internal peer the path is passed unchanged;
//   - to an external peer the local AS is prepended, and the route is
//     suppressed if the peer's AS already appears on the path.
//
// The prepended export is derived through the path table's memoized
// prepend — every peer, every flush retry, and every prefix of an origin
// shares the same interned slice — and its ref is cached per destination
// in the Loc-RIB so the steady-state flush pays one array load.
func (r *router) desiredAdvert(dest ASN, slot int) (Path, routeRef) {
	ref, ok := r.loc.getRef(dest)
	if !ok {
		return nil, 0
	}
	peer := r.peers[slot]
	if bs := r.bestSlot[dest]; bs >= 0 {
		fp := &r.peers[bs]
		if fp.Node == peer.Node {
			return nil, 0
		}
		if fp.Internal && peer.Internal {
			return nil, 0
		}
		if rel := r.sim.params.Policy; rel != nil && !peer.Internal {
			// Gao–Rexford export rule: self-originated and customer-learned
			// routes are exported to everyone; peer- and provider-learned
			// routes only to customers.
			fromCustomer := routeClass(rel, r.id, *fp) == 0
			toCustomer := rel.Of(r.id, peer.Node) == topology.RelCustomer || rel.Of(r.id, peer.Node) == topology.RelNone
			if !fromCustomer && !toCustomer {
				return nil, 0
			}
		}
	}
	tab := r.tab
	if peer.Internal {
		return tab.path(ref), ref
	}
	if peer.AS == r.as {
		// Defensive: external peers always have a different AS.
		return nil, 0
	}
	if tab.mask(ref)&(1<<(uint(peer.AS)&63)) != 0 && pathContains(tab.path(ref), peer.AS) {
		return nil, 0
	}
	exp := r.loc.exports[dest]
	if exp == 0 {
		exp = tab.prepend(r.as, ref)
		r.loc.exports[dest] = exp
	}
	return tab.path(exp), exp
}

// --- failure handling ---------------------------------------------------

// kill removes the router from the simulation: it stops processing,
// sending, and receiving. Pending events guard on alive.
func (r *router) kill() {
	r.alive = false
	for slot, ev := range r.flushEv {
		r.eng.Cancel(ev)
		r.flushEv[slot] = nil
		r.flushAt[slot] = -1
	}
	r.eng.Cancel(r.coalEv)
	r.coalEv = nil
}

// revive restores a killed router to its boot state: empty RIBs, fresh
// queue and timers, all sessions down until peerUp re-establishes them.
func (r *router) revive() {
	r.alive = true
	r.busy = false
	r.adjIn.reset()
	r.loc.reset()
	r.originates.clearAll()
	r.inbox = newInbox(r.sim.params, r.ndests)
	r.inboxQueue, r.inboxDiscard = r.sim.params.Queue, r.sim.params.BatchDiscardStale
	r.policy = r.sim.params.MRAI(len(r.peers))
	for i := range r.flapCount {
		r.flapCount[i] = 0
	}
	for i := range r.bestSlot {
		r.bestSlot[i] = bestNone
	}
	for i := range r.secondSlot {
		r.secondSlot[i] = secondNone // table emptied: no runner-up
	}
	if r.sim.params.Damping != nil {
		r.damper = newDamper(r.sim.params.Damping)
	}
	r.busyAccum, r.lastSnapBusy = 0, 0
	r.busyStart, r.lastSnapTime = r.now(), r.now()
	r.msgsSinceSnap = 0
	r.eng.Cancel(r.coalEv)
	r.coalEv = nil
	for slot := range r.peers {
		r.peerAlive[slot] = false
		r.advertised[slot].reset()
		r.pending[slot].clearAll()
		r.nextSend[slot] = 0
		r.eng.Cancel(r.flushEv[slot])
		r.flushEv[slot] = nil
		r.flushAt[slot] = -1
		if bl := r.blocked[slot]; bl != nil {
			bl.clearAll()
		}
		if r.destGate != nil {
			gates := r.destGate[slot]
			for i := range gates {
				gates[i] = 0
			}
		}
	}
}

// peerUp (re-)establishes the session on slot and queues the full table
// for advertisement to the peer — BGP's initial route exchange.
func (r *router) peerUp(slot int) {
	if !r.alive || r.peerAlive[slot] {
		return
	}
	r.peerAlive[slot] = true
	r.advertised[slot].reset()
	r.nextSend[slot] = 0
	pend := r.pending[slot]
	for wi := range pend {
		pend[wi] |= r.loc.has[wi]
	}
	r.tryFlush(slot)
}

// peerDown handles loss of the session on slot: every route learned from
// that peer is invalidated, decisions rerun, and resulting updates and
// withdrawals propagate to the surviving peers.
func (r *router) peerDown(slot int) {
	if !r.alive || !r.peerAlive[slot] {
		return
	}
	peer := r.peers[slot]
	r.peerAlive[slot] = false
	r.sim.emit(trace.Event{
		At: r.now(), Kind: trace.KindSessionDown, Node: r.id,
		Peer: peer.Node, Dest: -1,
	})
	r.pending[slot].clearAll()
	r.advertised[slot].reset()
	r.eng.Cancel(r.flushEv[slot])
	r.flushEv[slot] = nil
	r.flushAt[slot] = -1
	if bl := r.blocked[slot]; bl != nil {
		bl.clearAll()
	}

	affected := r.adjIn.destsViaSlot(slot, r.affectedScratch[:0])
	r.affectedScratch = affected
	anyChanged := false
	for _, dest := range affected {
		r.adjIn.removeSlot(slot, dest)
		if r.incremental {
			if r.useSecond && r.secondSlot[dest] == int16(slot) {
				r.secondSlot[dest] = secondInvalid
			}
			if r.bestSlot[dest] != int16(slot) {
				// Losing a route that was not the winner cannot change the
				// decision: the full scan would re-pick the cached winner
				// and return unchanged (the dead slot is already skipped
				// via peerAlive). Skipping it here is what makes session
				// loss O(routes via the dead peer that were actually best)
				// instead of O(affected destinations × degree).
				continue
			}
			if r.useSecond {
				// Incumbent lost with a usable runner-up cache: commit the
				// promotion (or the known-empty outcome) without a scan.
				// The affected list covers every destination routed via
				// this slot, so a cached runner-up on a *different* slot
				// is still alive and stored.
				if sec := r.secondSlot[dest]; sec >= 0 {
					if ref := r.adjIn.getSlotRef(int(sec), dest); ref != 0 && r.peerAlive[sec] {
						old, hadOld := r.locEntryAt(dest)
						p := &r.peers[sec]
						best := locEntry{path: r.tab.path(ref), ref: ref, from: p.Node, fromInternal: p.Internal}
						r.secondSlot[dest] = secondInvalid // old third unknown
						if r.commitDecision(dest, old, hadOld, best, int(sec), true) {
							r.markPendingAll(dest)
							anyChanged = true
						}
						continue
					}
				} else if sec == secondNone {
					old, hadOld := r.locEntryAt(dest)
					if r.commitDecision(dest, old, hadOld, locEntry{}, -1, false) {
						r.markPendingAll(dest)
						anyChanged = true
					}
					continue
				}
			}
		}
		if r.runDecision(dest) {
			r.markPendingAll(dest)
			anyChanged = true
		}
	}
	if anyChanged {
		r.flushAll()
	}
}

// normalizeWindow canonicalizes the router's residual phase-1 transients
// at the moment the measurement window opens (see
// Simulator.normalizeWindow): MRAI gates expire, the flap-gate counters
// restart (their documented "since the window opened" semantics), the
// MRAI policy and damper return to their boot state, and the load
// accounting re-anchors at the window time. The RIBs, advertisement
// bookkeeping, and sessions are untouched — those carry the converged
// routing state the post-failure dynamics run from.
func (r *router) normalizeWindow(at des.Time) {
	if !r.alive {
		return
	}
	for slot := range r.peers {
		r.nextSend[slot] = 0
		// All gates just opened: everything skipped as blocked is
		// sendable at the very next flush pass, exactly as the baseline
		// path would re-examine it.
		if bl := r.blocked[slot]; bl != nil {
			bl.clearAll()
		}
	}
	if r.destGate != nil {
		for slot := range r.destGate {
			gates := r.destGate[slot]
			for i := range gates {
				gates[i] = 0
			}
		}
	}
	for i := range r.flapCount {
		r.flapCount[i] = 0
	}
	r.policy = r.sim.params.MRAI(len(r.peers))
	if r.sim.params.Damping != nil {
		r.damper = newDamper(r.sim.params.Damping)
	}
	r.busyAccum, r.lastSnapBusy = 0, 0
	r.busyStart, r.lastSnapTime = at, at
	r.msgsSinceSnap = 0
}

// snapshot builds the mrai.Snapshot for a timer restart and rolls the
// per-window accounting forward.
func (r *router) snapshot(now des.Time) mrai.Snapshot {
	busy := r.busyAccum
	if r.busy {
		busy += now - r.busyStart
	}
	elapsed := now - r.lastSnapTime
	var util, rate float64
	if elapsed > 0 {
		util = float64(busy-r.lastSnapBusy) / float64(elapsed)
		rate = float64(r.msgsSinceSnap) / elapsed.Seconds()
	}
	r.lastSnapTime = now
	r.lastSnapBusy = busy
	r.msgsSinceSnap = 0
	qlen := r.inbox.Len()
	return mrai.Snapshot{
		Now:            now,
		Degree:         len(r.peers),
		QueueLen:       qlen,
		UnfinishedWork: time.Duration(qlen) * r.sim.params.MeanProc(),
		Utilization:    util,
		MsgRate:        rate,
	}
}
