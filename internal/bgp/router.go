package bgp

import (
	"math"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/metrics"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

// router is one BGP speaker: RIBs, per-peer MRAI timers, a serial CPU fed
// by the configured input queue, and the advertisement bookkeeping that
// suppresses no-op updates.
//
// All per-destination state is held in dense arrays indexed by the
// Simulator-owned dest index (see Simulator.ndests): the Adj-RIB-In and
// Loc-RIB, the per-slot advertised refs, the pending bitsets, the
// per-destination MRAI gates, and the flap counters. Routes are stored as
// 4-byte interned routeRefs (see pathTab) and the per-destination slot
// caches as 2-byte slot indices, so the per-router footprint is a few
// bytes per destination plus 4 bytes per (advertising peer, destination)
// — the packed encoding that keeps ndests = ASes × PrefixesPerOrigin
// tables affordable. Dense storage keeps steady-state routing churn
// allocation-free and lets reset rewind a router in O(occupied entries)
// for simulator reuse.
type router struct {
	id    NodeID
	as    ASN
	alive bool
	sim   *Simulator

	// Execution-context indirection, rebound by Simulator.Reset. In the
	// single-engine mode all of these alias the Simulator's own fields;
	// in sharded mode eng is the router's shard engine and — in
	// concurrent mode — col/rng/tab are the shard-local collector,
	// random stream, and path table (per the sharding contract: shard
	// handlers touch only shard-local mutable state). grp is set only in
	// sequenced sharded mode, where the current simulated time lives on
	// the group driver rather than the (lagging) shard engine clock; see
	// now.
	shard int
	eng   *des.Engine
	grp   *des.Group
	col   *metrics.Collector
	rng   *des.RNG
	tab   *pathTab

	peers     []Peer
	peerAlive []bool
	slotOf    map[NodeID]int

	ndests     int // dest-index capacity all dense arrays are sized for
	adjIn      *adjRIBIn
	loc        locRIB
	originates bitset

	// Per-slot advertisement state.
	advertised []refSlot    // last announced ref per destination (0 = withdrawn/never)
	pending    []bitset     // destinations needing re-advertisement (drained in ascending order)
	nextSend   []des.Time   // per-peer MRAI gate: announcements allowed at/after this time
	destGate   [][]des.Time // per-destination gates (PerDestinationMRAI ablation); zero = open
	flushEv    []*des.Event // scheduled deferred flush per slot

	inbox        Inbox
	inboxQueue   QueueDiscipline // discipline inbox was built for (reset reuses on match)
	inboxDiscard bool            // BatchDiscardStale inbox was built for
	busy         bool

	policy mrai.Policy

	// Reusable scratch and pre-allocated event tasks. The simulation hot
	// loop (enqueue -> process -> decide -> flush) runs millions of times
	// per experiment; everything here exists so that steady-state
	// iterations allocate nothing.
	proc            procTask    // the single in-flight CPU-completion task
	flushTasks      []flushTask // per-slot deferred-flush tasks
	destsScratch    []ASN       // tryFlush's sorted pending-destination list
	affectedScratch []ASN       // peerDown's sorted affected-destination list
	touched         bitset
	changed         []ASN

	// Load accounting for mrai.Snapshot.
	busyAccum     time.Duration
	busyStart     des.Time
	lastSnapTime  des.Time
	lastSnapBusy  time.Duration
	msgsSinceSnap int

	// flapCount drives the Deshpande–Sikdar flap gate. Nil unless
	// Params.FlapGate > 0 — no other scheme reads it, and an always-on
	// per-dest counter is real memory at multi-prefix scale. int16 with
	// saturation: the gate compares against Params.FlapGate (single
	// digits in the paper), so saturating at 32767 can only matter for
	// absurd gate settings.
	flapCount []int16

	// damper holds RFC 2439 flap-damping state (nil when disabled).
	damper *damper

	// Incremental decision-process state. bestSlot caches, per
	// destination, the peer slot the current Loc-RIB entry was learned
	// from (bestNone = no route, bestSelf = locally originated); it is
	// maintained on every Loc-RIB mutation, which upholds the invariant
	// the fast path relies on: with damping disabled, the Loc-RIB always
	// equals decide(Adj-RIB-In), so bestSlot is exactly the slot a full
	// scan would pick. It doubles as the provenance of the packed Loc-RIB
	// entry (locEntryAt derives from/fromInternal through it). workSlot
	// is the within-batch working copy (lazily initialized from bestSlot
	// on a destination's first touch, tracked by the touched bitset),
	// advanced by classify as the batch applies; scanNeeded flags
	// destinations whose outcome cannot be resolved without the full
	// decide scan. incremental is false under damping (suppression decays
	// with wall-clock time, invalidating the cache) and under
	// Params.ForceFullScan. Slot indices are int16: a router with 32k+
	// peers is far beyond any modeled topology.
	incremental bool
	bestSlot    []int16
	workSlot    []int16
	scanNeeded  bitset
}

// now returns the current simulated time from the router's execution
// context: the group clock in sequenced sharded mode (the shard engine
// clocks lag the driver there), the engine clock otherwise — which in
// concurrent mode is the shard's in-epoch clock, synchronized to the
// barrier time whenever control events run. Every time read and every
// relative delay computation in the router goes through here, so the
// three modes share one code path.
func (r *router) now() des.Time {
	if r.grp != nil {
		return r.grp.Now()
	}
	return r.eng.Now()
}

// bestSlot sentinel values (real peer slots are >= 0).
const (
	bestNone int16 = -1 // no Loc-RIB entry for the destination
	bestSelf int16 = -2 // locally originated route: never displaced
)

// newRouter builds the topology-dependent skeleton of a router (peer
// slots, scratch tasks, empty RIB shells). All parameter- and
// destination-dependent state is installed by reset, which New and
// Simulator.Reset share so a reused simulator cannot drift from a fresh
// one.
func newRouter(id NodeID, as ASN, peers []Peer, sim *Simulator) *router {
	r := &router{
		id:         id,
		as:         as,
		sim:        sim,
		peers:      peers,
		peerAlive:  make([]bool, len(peers)),
		slotOf:     make(map[NodeID]int, len(peers)),
		nextSend:   make([]des.Time, len(peers)),
		flushEv:    make([]*des.Event, len(peers)),
		advertised: make([]refSlot, len(peers)),
		pending:    make([]bitset, len(peers)),
		flushTasks: make([]flushTask, len(peers)),
	}
	r.proc.r = r
	for slot, peer := range peers {
		r.slotOf[peer.Node] = slot
		r.flushTasks[slot] = flushTask{r: r, slot: slot}
	}
	r.adjIn = newAdjRIBIn(r.slotOf, &sim.tab, len(peers), 0)
	return r
}

// reset rewinds the router to its boot state for a run with parameters p
// over ndests dense destination indices: empty RIBs, all sessions up,
// open MRAI gates, an empty inbox (reused when the queue discipline is
// unchanged), fresh policy/damping state, and zeroed load accounting.
// Dense arrays are cleared sparsely (O(occupied entries)) and retained,
// so repeated trials on one topology allocate almost nothing.
func (r *router) reset(p Params, ndests int) {
	r.alive = true
	r.busy = false
	r.proc.batch = nil
	if r.ndests != ndests {
		r.ndests = ndests
		r.adjIn.resize(ndests)
		r.loc = newLocRIB(ndests)
		r.originates = newBitset(ndests)
		for slot := range r.advertised {
			r.advertised[slot].drop()
		}
		for slot := range r.pending {
			r.pending[slot] = newBitset(ndests)
		}
		r.touched = newBitset(ndests)
		r.bestSlot = make([]int16, ndests)
		for i := range r.bestSlot {
			r.bestSlot[i] = bestNone
		}
		r.workSlot = make([]int16, ndests)
		r.scanNeeded = newBitset(ndests)
	} else {
		r.adjIn.reset()
		r.loc.reset()
		r.originates.clearAll()
		for slot := range r.advertised {
			r.advertised[slot].reset()
		}
		for slot := range r.pending {
			r.pending[slot].clearAll()
		}
		r.touched.clearAll()
		for i := range r.bestSlot {
			r.bestSlot[i] = bestNone
		}
		r.scanNeeded.clearAll()
	}
	// flapCount backs only the Deshpande–Sikdar flap gate; every other
	// scheme leaves the array nil so the gate costs nothing per
	// destination. At multi-prefix scale an always-on int16 per dest per
	// router is half a GB of dead weight.
	if p.FlapGate > 0 {
		if len(r.flapCount) != ndests {
			r.flapCount = make([]int16, ndests)
		} else {
			for i := range r.flapCount {
				r.flapCount[i] = 0
			}
		}
	} else {
		r.flapCount = nil
	}
	for slot := range r.peers {
		r.peerAlive[slot] = true
		r.nextSend[slot] = 0
		r.flushEv[slot] = nil
	}
	if p.PerDestinationMRAI {
		if len(r.destGate) != len(r.peers) || (len(r.peers) > 0 && len(r.destGate[0]) != ndests) {
			r.destGate = make([][]des.Time, len(r.peers))
			for slot := range r.destGate {
				r.destGate[slot] = make([]des.Time, ndests)
			}
		} else {
			for slot := range r.destGate {
				gates := r.destGate[slot]
				for i := range gates {
					gates[i] = 0
				}
			}
		}
	} else {
		r.destGate = nil
	}
	if r.inbox == nil || r.inboxQueue != p.Queue || r.inboxDiscard != p.BatchDiscardStale ||
		(p.Queue == QueueBatched && len(r.inbox.(*batchInbox).byDest) != ndests) {
		r.inbox = newInbox(p, ndests)
	} else {
		r.inbox.Reset()
	}
	r.inboxQueue, r.inboxDiscard = p.Queue, p.BatchDiscardStale
	r.policy = p.MRAI(len(r.peers))
	if p.Damping != nil {
		r.damper = newDamper(p.Damping)
	} else {
		r.damper = nil
	}
	r.incremental = r.damper == nil && !p.ForceFullScan
	r.busyAccum, r.lastSnapBusy = 0, 0
	r.busyStart, r.lastSnapTime = 0, 0
	r.msgsSinceSnap = 0
	r.destsScratch = r.destsScratch[:0]
	r.affectedScratch = r.affectedScratch[:0]
	r.changed = r.changed[:0]
}

// locEntryAt materializes the Loc-RIB entry for dest from the packed
// storage: the interned path ref plus provenance derived from bestSlot.
func (r *router) locEntryAt(dest ASN) (locEntry, bool) {
	ref, ok := r.loc.getRef(dest)
	if !ok {
		return locEntry{}, false
	}
	e := locEntry{path: r.tab.path(ref), ref: ref, from: -1}
	if bs := r.bestSlot[dest]; bs >= 0 {
		p := &r.peers[bs]
		e.from, e.fromInternal = p.Node, p.Internal
	}
	return e, true
}

// originate installs a locally originated prefix and advertises it.
func (r *router) originate(dest ASN) {
	r.originates.set(dest)
	r.loc.set(dest, r.tab.emptyRef)
	r.bestSlot[dest] = bestSelf
	r.markPendingAll(dest)
	r.flushAll()
}

// procTask is the pre-allocated des.Runner for CPU-completion events.
// Each router has exactly one in-flight work unit at a time (guarded by
// r.busy), so one reusable task per router replaces a per-unit closure.
type procTask struct {
	r     *router
	batch []Update
}

// Run delivers the completed work unit to finishProcessing.
func (t *procTask) Run() {
	batch := t.batch
	t.batch = nil
	t.r.finishProcessing(batch)
}

// flushTask is the pre-allocated des.Runner for deferred-flush events.
// Each (router, slot) has at most one armed flush event (guarded by
// r.flushEv[slot]), so one reusable task per slot replaces a per-arming
// closure.
type flushTask struct {
	r    *router
	slot int
}

// Run clears the armed-event marker and retries the flush.
func (t *flushTask) Run() {
	t.r.flushEv[t.slot] = nil
	t.r.tryFlush(t.slot)
}

// --- receive path -----------------------------------------------------

// enqueue accepts an arriving update and starts the CPU if idle.
func (r *router) enqueue(u Update) {
	if !r.alive {
		return
	}
	r.inbox.Push(u)
	r.msgsSinceSnap++
	r.col.NoteQueueLen(r.inbox.Len())
	r.sim.emit(trace.Event{
		At: r.now(), Kind: trace.KindReceive, Node: r.id,
		Peer: u.From, Dest: u.Dest, Withdrawal: u.IsWithdrawal(),
	})
	if !r.busy {
		r.startProcessing()
	}
}

// startProcessing pops the next work unit and schedules its completion
// after the drawn processing delay (one draw per update in the unit).
// With SkipNoopUpdates, superfluous updates (no change relative to the
// Adj-RIB-In) are dropped at zero cost and the next unit is tried.
func (r *router) startProcessing() {
	for {
		batch := r.inbox.Pop()
		if len(batch) == 0 {
			return
		}
		discarded := r.inbox.TakeDiscarded()
		if r.sim.params.SkipNoopUpdates {
			kept := batch[:0]
			for _, u := range batch {
				var stored routeRef
				if slot, ok := r.slotOf[u.From]; ok {
					stored = r.adjIn.getSlotRef(slot, u.Dest)
				}
				has := stored != 0
				noop := u.IsWithdrawal() && !has ||
					!u.IsWithdrawal() && has &&
						(stored == u.Ref || pathsEqual(r.tab.path(stored), u.Path))
				if noop {
					discarded++
					continue
				}
				kept = append(kept, u)
			}
			batch = kept
		}
		if discarded > 0 {
			r.col.NoteDiscarded(discarded)
		}
		if len(batch) == 0 {
			r.inbox.Recycle(batch)
			continue
		}
		var delay time.Duration
		for range batch {
			delay += r.rng.UniformDuration(r.sim.params.ProcMin, r.sim.params.ProcMax)
		}
		r.busy = true
		r.busyStart = r.now()
		r.proc.batch = batch
		r.eng.ScheduleRunnerAt(r.busyStart+delay, &r.proc)
		return
	}
}

// finishProcessing applies a processed work unit: Adj-RIB-In updates for
// every message, then one decision-process pass per touched destination
// (the batching scheme's "process all updates for a destination
// together"), then advertisement flushing. Touched destinations are
// collected in a bitset and drained in ascending order — the same sorted
// order the previous map+sort implementation produced.
func (r *router) finishProcessing(batch []Update) {
	if !r.alive {
		return
	}
	now := r.now()
	r.busyAccum += now - r.busyStart
	r.busy = false
	r.col.NoteProcessed(now, len(batch))
	r.sim.emit(trace.Event{
		At: now, Kind: trace.KindProcess, Node: r.id,
		Peer: -1, Dest: -1, Value: len(batch),
	})

	touched := r.touched
	incr := r.incremental
	for _, u := range batch {
		// Drop updates from peers that died while the message was queued.
		slot, ok := r.slotOf[u.From]
		if !ok || !r.peerAlive[slot] {
			continue
		}
		ref := u.Ref
		looped := false
		if !u.IsWithdrawal() {
			if ref == 0 {
				// Foreign update (hand-built outside the simulator):
				// intern its path on arrival.
				ref = r.tab.intern(u.Path)
			}
			// Receiver-side loop detection: the clear mask bit proves the
			// local AS is absent, skipping the path scan for almost every
			// update.
			if r.tab.mask(ref)&(1<<(uint(r.as)&63)) != 0 {
				looped = pathContains(u.Path, r.as)
			}
		}
		if incr {
			// Classify the update against the working best before the
			// Adj-RIB-In mutation below overwrites the previous route.
			if !touched.has(u.Dest) {
				r.workSlot[u.Dest] = r.bestSlot[u.Dest]
			}
			r.classify(slot, u, looped)
		}
		// Flap accounting per RFC 2439: withdrawals and re-advertisements
		// of an existing route are penalized; a peer's first announcement
		// of a destination is not.
		flapped := false
		if u.IsWithdrawal() || looped {
			// A looped path is treated as an implicit withdrawal of the
			// peer's previous route.
			flapped = r.adjIn.removeSlot(slot, u.Dest)
		} else {
			prev := r.adjIn.getSlotRef(slot, u.Dest)
			flapped = prev != 0 &&
				!(prev == ref || pathsEqual(r.tab.path(prev), u.Path))
			r.adjIn.setSlot(slot, u.Dest, ref)
		}
		if flapped && r.damper != nil {
			r.penalize(u.Dest, u.From)
		}
		touched.set(u.Dest)
	}

	changed := touched.appendIndices(r.changed[:0])
	r.changed = changed
	anyChanged := false
	for _, dest := range changed {
		touched.clear(dest)
		var routeChanged bool
		switch {
		case !incr:
			routeChanged = r.runDecision(dest)
		case r.scanNeeded.has(dest):
			r.scanNeeded.clear(dest)
			routeChanged = r.runDecision(dest)
		default:
			routeChanged = r.applyWorkingBest(dest)
		}
		if routeChanged {
			r.markPendingAll(dest)
			anyChanged = true
		}
	}
	r.inbox.Recycle(batch)
	if anyChanged {
		r.flushAll()
	}
	if !r.inbox.Empty() {
		r.startProcessing()
	}
}

// runDecision recomputes the best route for dest with the full peer-slot
// scan. It returns true when the Loc-RIB entry changed in any way that
// affects advertisements.
func (r *router) runDecision(dest ASN) bool {
	old, hadOld := r.locEntryAt(dest)
	if hadOld && old.isSelf() {
		return false // locally originated routes are never displaced
	}
	best, slot, ok := decide(r.adjIn, dest, r.peers, r.peerAlive, r.damper, r.sim.params.Policy, r.id)
	return r.commitDecision(dest, old, hadOld, best, slot, ok)
}

// classify folds one arriving update into the batch's working-best
// bookkeeping, before the Adj-RIB-In mutation for the update is applied.
// looped is the precomputed receiver-side loop-detection verdict for the
// update's path. The per-destination batch outcomes:
//
//	(a) an update strictly better than the working best becomes the
//	    working best without a scan;
//	(b) an update to a non-best slot that does not beat the working best
//	    is a no-op for the decision process;
//	(c) only a withdrawal — or a strict worsening — of the working
//	    best's own slot forces the full decide scan (scanNeeded).
//
// The (a)/(b) split is sound because betterRoute is a strict total order
// across slots (ties break on peer AS then node ID): a replacement on a
// non-best slot that merely equals the working best still loses to it,
// and an equal-rank re-announcement on the best slot itself keeps
// winning. Only called in incremental mode, where damping is off — so
// no candidate is ever suppressed and the Loc-RIB invariant (bestSlot ==
// full-scan winner) holds between batches.
func (r *router) classify(slot int, u Update, looped bool) {
	dest := u.Dest
	if r.scanNeeded.has(dest) {
		return // already falling back to the full scan for this dest
	}
	ws := r.workSlot[dest]
	if ws == bestSelf {
		return // locally originated: the decision is always a no-op
	}
	if u.IsWithdrawal() || looped {
		if ws >= 0 && int(ws) == slot {
			r.scanNeeded.set(dest) // (c) the working best's route went away
		}
		return // (b) removing a never-best route cannot change the winner
	}
	peer := r.peers[slot]
	cand := locEntry{path: u.Path, from: peer.Node, fromInternal: peer.Internal}
	class := routeClass(r.sim.params.Policy, r.id, peer)
	if ws < 0 {
		r.workSlot[dest] = int16(slot) // first candidate for an empty table
		return
	}
	wref := r.adjIn.getSlotRef(int(ws), dest)
	if wref == 0 {
		r.scanNeeded.set(dest) // defensive: cache out of sync, rescan
		return
	}
	wpath := r.tab.path(wref)
	if int(ws) == slot {
		// Re-announcement on the winning slot itself: same peer, so only
		// the path ranking can move. A strictly worse replacement forces
		// the scan; otherwise the slot keeps winning.
		prev := locEntry{path: wpath, from: peer.Node, fromInternal: peer.Internal}
		if betterRoute(prev, peer, class, cand, peer, class) {
			r.scanNeeded.set(dest) // (c) the working best's route worsened
		}
		return
	}
	wpeer := r.peers[ws]
	wentry := locEntry{path: wpath, from: wpeer.Node, fromInternal: wpeer.Internal}
	wclass := routeClass(r.sim.params.Policy, r.id, wpeer)
	if betterRoute(cand, peer, class, wentry, wpeer, wclass) {
		r.workSlot[dest] = int16(slot) // (a) strictly better: new working best
	}
	// else (b): does not beat the working best — no-op.
}

// applyWorkingBest resolves a touched destination's decision without
// scanning the peer slots: when no scan was flagged, classify has
// maintained workSlot as exactly the slot a full decide scan over the
// final Adj-RIB-In would pick, so the winner is read back directly. The
// Loc-RIB commit (and all its observable side effects) is shared with
// runDecision, so the two paths cannot drift.
func (r *router) applyWorkingBest(dest ASN) bool {
	old, hadOld := r.locEntryAt(dest)
	if hadOld && old.isSelf() {
		return false // locally originated routes are never displaced
	}
	ws := r.workSlot[dest]
	if ws < 0 {
		// Only removals of never-best routes touched dest: the table had
		// no winner before and has none now (a Loc-RIB entry would have
		// initialized ws to its slot).
		return false
	}
	ref := r.adjIn.getSlotRef(int(ws), dest)
	if ref == 0 {
		return r.runDecision(dest) // defensive: cache out of sync, rescan
	}
	peer := r.peers[ws]
	best := locEntry{path: r.tab.path(ref), ref: ref, from: peer.Node, fromInternal: peer.Internal}
	return r.commitDecision(dest, old, hadOld, best, int(ws), true)
}

// commitDecision installs a decision-process outcome (winner best from
// slot, or no route when !ok) against the previous Loc-RIB entry and
// performs the observable bookkeeping: flap counting, the collector's
// route-change note, and the trace event. Both the full-scan and the
// incremental paths terminate here, which is what keeps their side
// effects provably identical.
func (r *router) commitDecision(dest ASN, old locEntry, hadOld bool, best locEntry, slot int, ok bool) bool {
	switch {
	case !ok && !hadOld:
		return false
	case !ok:
		r.loc.del(dest)
		r.bestSlot[dest] = bestNone
	case hadOld && best.sameAs(old):
		return false // bestSlot already points at slot (same winner)
	default:
		r.loc.set(dest, best.ref)
		r.bestSlot[dest] = int16(slot)
	}
	pathChanged := !hadOld || !ok || !pathsEqual(old.path, best.path)
	if pathChanged {
		if r.flapCount != nil && r.flapCount[dest] != math.MaxInt16 {
			r.flapCount[dest]++
		}
		r.col.NoteRouteChange(r.now())
		pathLen := -1
		if ok {
			pathLen = len(best.path)
		}
		r.sim.emit(trace.Event{
			At: r.now(), Kind: trace.KindRouteChange, Node: r.id,
			Peer: -1, Dest: dest, Value: pathLen,
		})
	}
	return true
}

// --- send path --------------------------------------------------------

// markPendingAll queues dest for re-advertisement to every live peer and
// applies the Deshpande–Sikdar timer cancellation when configured.
func (r *router) markPendingAll(dest ASN) {
	now := r.now()
	valid := r.loc.has.has(dest)
	for slot := range r.peers {
		if !r.peerAlive[slot] {
			continue
		}
		r.pending[slot].set(dest)
		if r.sim.params.CancelOnChange && valid && r.nextSend[slot] > now {
			r.nextSend[slot] = now
		}
	}
}

// flushAll attempts an advertisement flush on every live slot.
func (r *router) flushAll() {
	for slot := range r.peers {
		r.tryFlush(slot)
	}
}

// tryFlush sends what the slot's timers currently allow: withdrawals
// immediately (unless RateLimitWithdrawals), announcements when the
// per-peer (or per-destination) MRAI gate is open. When announcements are
// sent the gate rearms with the policy's current MRAI, jittered per
// RFC 1771. Blocked announcements get a deferred flush event. The
// pending bitset is drained in ascending destination order — identical
// to the sorted snapshot the map-based implementation flushed.
func (r *router) tryFlush(slot int) {
	if !r.alive || !r.peerAlive[slot] {
		return
	}
	pend := r.pending[slot]
	if !pend.any() {
		return
	}
	now := r.now()
	dests := pend.appendIndices(r.destsScratch[:0])
	r.destsScratch = dests

	peerAllowed := now >= r.nextSend[slot]
	sentGated := false // a gated announcement went out -> rearm timer
	sentAny := false
	var minBlocked des.Time = -1
	noteBlocked := func(at des.Time) {
		if minBlocked < 0 || at < minBlocked {
			minBlocked = at
		}
	}

	adv := &r.advertised[slot]
	for _, dest := range dests {
		desired, desiredRef := r.desiredAdvert(dest, slot)
		// The advertised table only ever records nonzero announcement
		// refs (withdrawals delete the entry), so presence collapses to a
		// zero check on this very hot load. Matching refs always carry
		// equal paths; differing refs fall back to the path comparison
		// (interning is an acceleration, not an identity oracle).
		lastRef := adv.get(dest)
		if desiredRef == lastRef ||
			(desiredRef != 0 && lastRef != 0 && pathsEqual(desired, r.tab.path(lastRef))) {
			pend.clear(dest)
			continue
		}
		if desired == nil {
			// Withdrawal.
			if r.sim.params.RateLimitWithdrawals && !r.destAllowed(slot, dest, peerAllowed) {
				noteBlocked(r.gateTime(slot, dest))
				continue
			}
			r.send(slot, Update{From: r.id, Dest: dest, Path: nil})
			adv.del(dest)
			pend.clear(dest)
			sentAny = true
			if r.sim.params.RateLimitWithdrawals {
				sentGated = true
				if r.destGate != nil {
					r.destGate[slot][dest] = now + r.nextMRAI(now)
				}
			}
			continue
		}
		// Announcement.
		bypass := r.sim.params.FlapGate > 0 && int(r.flapCount[dest]) < r.sim.params.FlapGate
		if !bypass && !r.destAllowed(slot, dest, peerAllowed) {
			noteBlocked(r.gateTime(slot, dest))
			continue
		}
		r.send(slot, Update{From: r.id, Dest: dest, Path: desired, Ref: desiredRef})
		adv.set(dest, desiredRef, r.ndests)
		pend.clear(dest)
		sentAny = true
		if !bypass {
			sentGated = true
			if r.destGate != nil {
				r.destGate[slot][dest] = now + r.nextMRAI(now)
			}
		}
	}

	if sentGated && r.destGate == nil {
		r.nextSend[slot] = now + r.nextMRAI(now)
	}
	if sentAny {
		r.col.NotePacket(now)
	}
	if pend.any() {
		if r.destGate == nil {
			minBlocked = r.nextSend[slot]
		}
		r.scheduleFlush(slot, minBlocked)
	}
}

// destAllowed reports whether the announcement gate for (slot, dest) is
// open. peerAllowed is the precomputed per-peer answer.
func (r *router) destAllowed(slot int, dest ASN, peerAllowed bool) bool {
	if r.destGate == nil {
		return peerAllowed
	}
	return r.now() >= r.destGate[slot][dest]
}

// gateTime returns when the announcement gate for (slot, dest) opens.
func (r *router) gateTime(slot int, dest ASN) des.Time {
	if r.destGate == nil {
		return r.nextSend[slot]
	}
	return r.destGate[slot][dest]
}

// nextMRAI consults the policy with a fresh load snapshot and applies
// RFC 1771 jitter. Per the paper, the policy (and any dynamic level
// change) takes effect only here, at timer restart.
func (r *router) nextMRAI(now des.Time) time.Duration {
	m := r.policy.MRAI(r.snapshot(now))
	r.sim.emit(trace.Event{
		At: now, Kind: trace.KindTimerRestart, Node: r.id,
		Peer: -1, Dest: -1, Value: int(m),
	})
	if r.sim.params.JitterTimers {
		return r.rng.Jitter(m)
	}
	return m
}

// scheduleFlush arms (or re-arms earlier) the deferred flush for slot.
func (r *router) scheduleFlush(slot int, at des.Time) {
	if at < 0 {
		return
	}
	now := r.now()
	if at < now {
		at = now
	}
	if ev := r.flushEv[slot]; ev != nil && !ev.Canceled() {
		if ev.At() <= at {
			return
		}
		r.eng.Cancel(ev)
	}
	r.flushEv[slot] = r.eng.ScheduleRunnerAt(at, &r.flushTasks[slot])
}

// send transmits one route-level update to the slot's peer.
func (r *router) send(slot int, u Update) {
	peer := r.peers[slot]
	now := r.now()
	r.col.NoteSend(now, r.id, u.IsWithdrawal())
	r.sim.emit(trace.Event{
		At: now, Kind: trace.KindSend, Node: r.id,
		Peer: peer.Node, Dest: u.Dest, Withdrawal: u.IsWithdrawal(),
	})
	r.sim.deliver(r, r.sim.routers[peer.Node], peer.Delay, u)
}

// desiredAdvert computes what the router should currently advertise to
// the slot's peer for dest: the announcement path and its interned ref,
// or (nil, 0) meaning "nothing" (which materializes as a withdrawal if
// something was previously advertised). The rules:
//
//   - no valid route -> nil;
//   - never back to the peer the best route came from (split horizon /
//     sender-side loop detection);
//   - IBGP-learned routes are not relayed to IBGP peers;
//   - to an internal peer the path is passed unchanged;
//   - to an external peer the local AS is prepended, and the route is
//     suppressed if the peer's AS already appears on the path.
//
// The prepended export is derived through the path table's memoized
// prepend — every peer, every flush retry, and every prefix of an origin
// shares the same interned slice — and its ref is cached per destination
// in the Loc-RIB so the steady-state flush pays one array load.
func (r *router) desiredAdvert(dest ASN, slot int) (Path, routeRef) {
	ref, ok := r.loc.getRef(dest)
	if !ok {
		return nil, 0
	}
	peer := r.peers[slot]
	if bs := r.bestSlot[dest]; bs >= 0 {
		fp := &r.peers[bs]
		if fp.Node == peer.Node {
			return nil, 0
		}
		if fp.Internal && peer.Internal {
			return nil, 0
		}
		if rel := r.sim.params.Policy; rel != nil && !peer.Internal {
			// Gao–Rexford export rule: self-originated and customer-learned
			// routes are exported to everyone; peer- and provider-learned
			// routes only to customers.
			fromCustomer := routeClass(rel, r.id, *fp) == 0
			toCustomer := rel.Of(r.id, peer.Node) == topology.RelCustomer || rel.Of(r.id, peer.Node) == topology.RelNone
			if !fromCustomer && !toCustomer {
				return nil, 0
			}
		}
	}
	tab := r.tab
	if peer.Internal {
		return tab.path(ref), ref
	}
	if peer.AS == r.as {
		// Defensive: external peers always have a different AS.
		return nil, 0
	}
	if tab.mask(ref)&(1<<(uint(peer.AS)&63)) != 0 && pathContains(tab.path(ref), peer.AS) {
		return nil, 0
	}
	exp := r.loc.exports[dest]
	if exp == 0 {
		exp = tab.prepend(r.as, ref)
		r.loc.exports[dest] = exp
	}
	return tab.path(exp), exp
}

// --- failure handling ---------------------------------------------------

// kill removes the router from the simulation: it stops processing,
// sending, and receiving. Pending events guard on alive.
func (r *router) kill() {
	r.alive = false
	for slot, ev := range r.flushEv {
		r.eng.Cancel(ev)
		r.flushEv[slot] = nil
	}
}

// revive restores a killed router to its boot state: empty RIBs, fresh
// queue and timers, all sessions down until peerUp re-establishes them.
func (r *router) revive() {
	r.alive = true
	r.busy = false
	r.adjIn.reset()
	r.loc.reset()
	r.originates.clearAll()
	r.inbox = newInbox(r.sim.params, r.ndests)
	r.inboxQueue, r.inboxDiscard = r.sim.params.Queue, r.sim.params.BatchDiscardStale
	r.policy = r.sim.params.MRAI(len(r.peers))
	for i := range r.flapCount {
		r.flapCount[i] = 0
	}
	for i := range r.bestSlot {
		r.bestSlot[i] = bestNone
	}
	if r.sim.params.Damping != nil {
		r.damper = newDamper(r.sim.params.Damping)
	}
	r.busyAccum, r.lastSnapBusy = 0, 0
	r.busyStart, r.lastSnapTime = r.now(), r.now()
	r.msgsSinceSnap = 0
	for slot := range r.peers {
		r.peerAlive[slot] = false
		r.advertised[slot].reset()
		r.pending[slot].clearAll()
		r.nextSend[slot] = 0
		r.eng.Cancel(r.flushEv[slot])
		r.flushEv[slot] = nil
		if r.destGate != nil {
			gates := r.destGate[slot]
			for i := range gates {
				gates[i] = 0
			}
		}
	}
}

// peerUp (re-)establishes the session on slot and queues the full table
// for advertisement to the peer — BGP's initial route exchange.
func (r *router) peerUp(slot int) {
	if !r.alive || r.peerAlive[slot] {
		return
	}
	r.peerAlive[slot] = true
	r.advertised[slot].reset()
	r.nextSend[slot] = 0
	pend := r.pending[slot]
	for wi := range pend {
		pend[wi] |= r.loc.has[wi]
	}
	r.tryFlush(slot)
}

// peerDown handles loss of the session on slot: every route learned from
// that peer is invalidated, decisions rerun, and resulting updates and
// withdrawals propagate to the surviving peers.
func (r *router) peerDown(slot int) {
	if !r.alive || !r.peerAlive[slot] {
		return
	}
	peer := r.peers[slot]
	r.peerAlive[slot] = false
	r.sim.emit(trace.Event{
		At: r.now(), Kind: trace.KindSessionDown, Node: r.id,
		Peer: peer.Node, Dest: -1,
	})
	r.pending[slot].clearAll()
	r.advertised[slot].reset()
	r.eng.Cancel(r.flushEv[slot])
	r.flushEv[slot] = nil

	affected := r.adjIn.destsViaSlot(slot, r.affectedScratch[:0])
	r.affectedScratch = affected
	anyChanged := false
	for _, dest := range affected {
		r.adjIn.removeSlot(slot, dest)
		if r.incremental && r.bestSlot[dest] != int16(slot) {
			// Losing a route that was not the winner cannot change the
			// decision: the full scan would re-pick the cached winner and
			// return unchanged (the dead slot is already skipped via
			// peerAlive). Skipping it here is what makes session loss
			// O(routes via the dead peer that were actually best) instead
			// of O(affected destinations × degree).
			continue
		}
		if r.runDecision(dest) {
			r.markPendingAll(dest)
			anyChanged = true
		}
	}
	if anyChanged {
		r.flushAll()
	}
}

// normalizeWindow canonicalizes the router's residual phase-1 transients
// at the moment the measurement window opens (see
// Simulator.normalizeWindow): MRAI gates expire, the flap-gate counters
// restart (their documented "since the window opened" semantics), the
// MRAI policy and damper return to their boot state, and the load
// accounting re-anchors at the window time. The RIBs, advertisement
// bookkeeping, and sessions are untouched — those carry the converged
// routing state the post-failure dynamics run from.
func (r *router) normalizeWindow(at des.Time) {
	if !r.alive {
		return
	}
	for slot := range r.peers {
		r.nextSend[slot] = 0
	}
	if r.destGate != nil {
		for slot := range r.destGate {
			gates := r.destGate[slot]
			for i := range gates {
				gates[i] = 0
			}
		}
	}
	for i := range r.flapCount {
		r.flapCount[i] = 0
	}
	r.policy = r.sim.params.MRAI(len(r.peers))
	if r.sim.params.Damping != nil {
		r.damper = newDamper(r.sim.params.Damping)
	}
	r.busyAccum, r.lastSnapBusy = 0, 0
	r.busyStart, r.lastSnapTime = at, at
	r.msgsSinceSnap = 0
}

// snapshot builds the mrai.Snapshot for a timer restart and rolls the
// per-window accounting forward.
func (r *router) snapshot(now des.Time) mrai.Snapshot {
	busy := r.busyAccum
	if r.busy {
		busy += now - r.busyStart
	}
	elapsed := now - r.lastSnapTime
	var util, rate float64
	if elapsed > 0 {
		util = float64(busy-r.lastSnapBusy) / float64(elapsed)
		rate = float64(r.msgsSinceSnap) / elapsed.Seconds()
	}
	r.lastSnapTime = now
	r.lastSnapBusy = busy
	r.msgsSinceSnap = 0
	qlen := r.inbox.Len()
	return mrai.Snapshot{
		Now:            now,
		Degree:         len(r.peers),
		QueueLen:       qlen,
		UnfinishedWork: time.Duration(qlen) * r.sim.params.MeanProc(),
		Utilization:    util,
		MsgRate:        rate,
	}
}
