package bgp

import (
	"fmt"
	"testing"

	"bgpsim/internal/des"
	"bgpsim/internal/snapshot"
	"bgpsim/internal/topology"
)

// The differential oracle: the snapshot backend and the event simulator
// must agree, route for route and advertisement for advertisement, on
// the converged (phase-1 quiescent) state — across every scheme variant
// the figures exercise, multi-prefix tables, both sharded modes, and
// both policy configurations. Timing schemes change when routes move,
// never where they settle, so one fixpoint serves them all.

func oracleTopology(t *testing.T) (*topology.Network, *topology.Relationships) {
	t.Helper()
	rng := des.NewRNG(11)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := topology.InferRelationships(nw, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	return nw, pol
}

// compareConverged runs phase 1 to quiescence and checks the simulator's
// full converged state against the snapshot fixpoint.
func compareConverged(t *testing.T, nw *topology.Network, p Params, res *snapshot.Result) {
	t.Helper()
	sim, err := New(nw, p)
	if err != nil {
		t.Fatal(err)
	}
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	nprefix := max(1, p.PrefixesPerAS)
	for _, dest := range sim.Destinations() {
		as := dest / nprefix
		for id := 0; id < nw.NumNodes(); id++ {
			simPath, simOK := sim.LocPath(id, dest)
			snapPath, snapOK := res.Path(as, id)
			if simOK != snapOK {
				t.Fatalf("n%d d%d: DES has route=%v, snapshot has route=%v", id, dest, simOK, snapOK)
			}
			if !simOK {
				continue
			}
			if len(simPath) != len(snapPath) {
				t.Fatalf("n%d d%d: DES path %v != snapshot path %v", id, dest, simPath, snapPath)
			}
			for i := range simPath {
				if simPath[i] != snapPath[i] {
					t.Fatalf("n%d d%d: DES path %v != snapshot path %v", id, dest, simPath, snapPath)
				}
			}
		}
	}
	// Adjacency-level agreement: an Adj-RIB-In entry exactly where the
	// snapshot says the peer advertises.
	for _, r := range sim.routers {
		for slot, peer := range r.peers {
			for _, dest := range sim.Destinations() {
				as := dest / nprefix
				have := r.adjIn.getSlotRef(slot, dest) != 0
				want := res.Advertises(as, peer.Node, r.id)
				if have != want {
					t.Fatalf("n%d d%d from peer n%d: DES adj-rib-in=%v, snapshot Advertises=%v",
						r.id, dest, peer.Node, have, want)
				}
			}
		}
	}
}

func TestSnapshotOracle(t *testing.T) {
	nw, polInfer := oracleTopology(t)
	for _, pc := range []struct {
		name string
		pol  *topology.Relationships
	}{{"flat", nil}, {"policy", polInfer}} {
		res, err := snapshot.Compute(nw, snapshot.Config{Policy: pc.pol})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range resetVariants() {
			for _, nprefix := range []int{1, 3} {
				for _, shards := range []int{1, 4} {
					name := fmt.Sprintf("%s/%s/k%d/shards%d", pc.name, v.name, nprefix, shards)
					t.Run(name, func(t *testing.T) {
						p := equivalenceParams(7, v.mutate)
						p.Policy = pc.pol
						p.PrefixesPerAS = nprefix
						p.Shards = shards
						compareConverged(t, nw, p, res)
					})
				}
			}
		}
	}
}

// warmDigest is digestRun without the absolute clock: a warm-started run
// reaches quiescence at a different absolute time than a cold-started
// one (phase 1 never runs), but every window-scoped figure — delay,
// message counts, route changes — and every final route must agree.
func warmDigest(t *testing.T, sim *Simulator, nw *topology.Network, fail []int) string {
	t.Helper()
	delay, err := sim.ConvergeAndFail(fail)
	if err != nil {
		t.Fatal(err)
	}
	col := sim.Collector()
	s := fmt.Sprintf("delay=%v msgs=%d ann=%d wd=%d proc=%d disc=%d rc=%d\n",
		delay, col.Messages(), col.Announcements, col.Withdrawals,
		col.Processed, col.Discarded, col.RouteChanges())
	for _, dest := range sim.Destinations() {
		for id := 0; id < nw.NumNodes(); id++ {
			if p, ok := sim.LocPath(id, dest); ok {
				s += fmt.Sprintf("n%d d%d %v\n", id, dest, p)
			}
		}
	}
	return s
}

// TestWarmStartMatchesCold pins the warm-start contract: for every
// scheme variant, the post-failure figures and final routing state of a
// warm-started trial are byte-identical to the cold-started trial with
// the same parameters.
func TestWarmStartMatchesCold(t *testing.T) {
	nw, polInfer := oracleTopology(t)
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 4, nil)

	run := func(t *testing.T, p Params) {
		t.Helper()
		cold, err := New(nw, p)
		if err != nil {
			t.Fatal(err)
		}
		want := warmDigest(t, cold, nw, fail)
		p.WarmStart = true
		warm, err := New(nw, p)
		if err != nil {
			t.Fatal(err)
		}
		got := warmDigest(t, warm, nw, fail)
		if got != want {
			t.Errorf("warm start diverged from cold start\ncold:\n%s\nwarm:\n%s", want, got)
		}
	}

	for _, v := range resetVariants() {
		t.Run(v.name, func(t *testing.T) {
			run(t, equivalenceParams(3, v.mutate))
		})
	}
	t.Run("policy", func(t *testing.T) {
		p := equivalenceParams(3, nil)
		p.Policy = polInfer
		run(t, p)
	})
	t.Run("multiprefix", func(t *testing.T) {
		p := equivalenceParams(3, nil)
		p.PrefixesPerAS = 3
		run(t, p)
	})
	t.Run("sharded-sequenced", func(t *testing.T) {
		p := equivalenceParams(3, nil)
		p.Shards = 4
		run(t, p)
	})
	t.Run("sharded-concurrent", func(t *testing.T) {
		p := equivalenceParams(3, nil)
		p.Shards = 4
		p.ShardConcurrent = true
		run(t, p)
	})
}
