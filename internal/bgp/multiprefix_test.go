package bgp

import (
	"testing"

	"bgpsim/internal/des"
	"bgpsim/internal/topology"
)

// These tests pin the prefix dimension introduced with the compact route
// encoding. Two directions matter:
//
//   - backward: PrefixesPerAS = 1 (the explicit form of the default) must
//     be indistinguishable from a parameter set that never mentions
//     prefixes, for every scheme variant — the bgp-layer half of the
//     figure byte-identity guarantee;
//   - forward: with PrefixesPerAS > 1 the incremental decision process,
//     the simulator pool's Reset reuse, and the full-scan baseline must
//     still agree on every observable.

// TestSinglePrefixExplicitMatchesDefaultAllVariants runs every scheme
// variant with PrefixesPerAS left zero and set to 1, requiring digest
// equality. A divergence here would mean the per-prefix dest reindexing
// is not a pure generalization of the single-prefix layout.
func TestSinglePrefixExplicitMatchesDefaultAllVariants(t *testing.T) {
	rng := des.NewRNG(31)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 4, nil)
	for _, v := range resetVariants() {
		for seed := int64(1); seed <= 2; seed++ {
			p := equivalenceParams(seed, v.mutate)
			def, err := New(nw, p)
			if err != nil {
				t.Fatalf("%s seed %d: New: %v", v.name, seed, err)
			}
			want := digestRun(t, def, nw, fail)

			p.PrefixesPerAS = 1
			one, err := New(nw, p)
			if err != nil {
				t.Fatalf("%s seed %d: New(PrefixesPerAS=1): %v", v.name, seed, err)
			}
			got := digestRun(t, one, nw, fail)
			if got.summary != want.summary {
				t.Errorf("%s seed %d: explicit PrefixesPerAS=1 diverged from default\ndefault:\n%s\nexplicit:\n%s",
					v.name, seed, want.summary, got.summary)
			}
		}
	}
}

// TestMultiPrefixMatchesFullScanAllVariants is the multi-prefix twin of
// TestIncrementalMatchesFullScanAllVariants: with three prefixes per
// origin, the incremental decision process must reproduce the full-scan
// baseline exactly for every scheme variant.
func TestMultiPrefixMatchesFullScanAllVariants(t *testing.T) {
	rng := des.NewRNG(37)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 3, nil)
	for _, v := range resetVariants() {
		for seed := int64(1); seed <= 2; seed++ {
			p := equivalenceParams(seed, v.mutate)
			p.PrefixesPerAS = 3
			inc, err := New(nw, p)
			if err != nil {
				t.Fatalf("%s seed %d: New: %v", v.name, seed, err)
			}
			got := digestRun(t, inc, nw, fail)

			p.ForceFullScan = true
			full, err := New(nw, p)
			if err != nil {
				t.Fatalf("%s seed %d: New full-scan: %v", v.name, seed, err)
			}
			want := digestRun(t, full, nw, fail)
			if got.summary != want.summary {
				t.Errorf("%s seed %d: multi-prefix incremental diverged from full scan\nfull:\n%s\nincremental:\n%s",
					v.name, seed, want.summary, got.summary)
			}
		}
	}
}

// TestMultiPrefixResetMatchesFresh pins the pooled execution path at
// k > 1: one simulator Reset across prefix dimensions (1 → 3 → 1 → 3)
// must match freshly constructed simulators run for run. The dimension
// changes force the dest-axis re-dimensioning path (adjRIBIn.resize,
// advertised column drops) that single-prefix reuse never exercises.
func TestMultiPrefixResetMatchesFresh(t *testing.T) {
	rng := des.NewRNG(41)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 3, nil)

	reused, err := New(nw, equivalenceParams(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	for run, k := range []int{1, 3, 1, 3} {
		seed := int64(run + 1)
		p := equivalenceParams(seed, nil)
		p.PrefixesPerAS = k
		fresh, err := New(nw, p)
		if err != nil {
			t.Fatal(err)
		}
		want := digestRun(t, fresh, nw, fail)
		if err := reused.Reset(p); err != nil {
			t.Fatalf("run %d (k=%d): Reset: %v", run, k, err)
		}
		got := digestRun(t, reused, nw, fail)
		if got.summary != want.summary {
			t.Errorf("run %d (k=%d): pooled simulator diverged from fresh\nfresh:\n%s\npooled:\n%s",
				run, k, want.summary, got.summary)
		}
	}
}

// TestMultiPrefixPathSharing pins the cross-prefix sharing the compact
// encoding exists for: the prepend memoization hands every prefix of an
// origin the same interned refs, so the path table's size tracks the
// set of distinct paths explored, not the destination count. The sets
// are not exactly equal across k — per-message randomness lets
// different prefixes explore slightly different transient paths — but
// multiplying the destination axis by 8 must not come close to
// multiplying the interned-path count: without sharing the table would
// hold one entry per stored route, k times as many.
func TestMultiPrefixPathSharing(t *testing.T) {
	rng := des.NewRNG(43)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(k int) int {
		p := equivalenceParams(5, nil)
		p.PrefixesPerAS = k
		sim, err := New(nw, p)
		if err != nil {
			t.Fatal(err)
		}
		sim.Start()
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return len(sim.tab.paths)
	}
	one, eight := run(1), run(8)
	if eight >= 2*one {
		t.Errorf("interned path count scaled with the prefix dimension: k=1 interned %d, k=8 interned %d (want < 2x: prefixes of one origin share paths)",
			one, eight)
	}
	if eight < one {
		t.Errorf("k=8 interned fewer paths (%d) than k=1 (%d); prefix runs are supersets of the single-prefix exploration", eight, one)
	}
}
