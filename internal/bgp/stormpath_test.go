package bgp

import (
	"testing"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
)

// These tests pin the storm fast lane (StormFusedDispatch,
// StormBlockedSkip, StormCoalescedMRAI, StormSecondBest) to the baseline
// path: every piece — alone and all together — must reproduce the
// baseline run byte-for-byte (digestRun captures delay, every collector
// counter, and every router's final route) across the scheme variants,
// seeds, and failure sizes the figures exercise. The fast lane is pure
// acceleration; any digest difference is a bug.

// stormOff turns every fast-lane toggle off — the differential baseline.
func stormOff(p *Params) {
	p.StormFusedDispatch = false
	p.StormBlockedSkip = false
	p.StormCoalescedMRAI = false
	p.StormSecondBest = false
}

// stormPieces enumerates the fast-lane pieces, each independently
// toggleable on top of the all-off baseline, plus the all-on default.
func stormPieces() []struct {
	name   string
	mutate func(*Params)
} {
	return []struct {
		name   string
		mutate func(*Params)
	}{
		{"fused-dispatch", func(p *Params) { p.StormFusedDispatch = true }},
		{"blocked-skip", func(p *Params) { p.StormBlockedSkip = true }},
		{"coalesced-mrai", func(p *Params) { p.StormCoalescedMRAI = true }},
		{"second-best", func(p *Params) { p.StormSecondBest = true }},
		{"all", func(p *Params) {
			p.StormFusedDispatch = true
			p.StormBlockedSkip = true
			p.StormCoalescedMRAI = true
			p.StormSecondBest = true
		}},
	}
}

// TestStormFastLaneOutputNeutral byte-diffs every fast-lane piece against
// the baseline path across the scheme variants × seeds × failure sizes.
func TestStormFastLaneOutputNeutral(t *testing.T) {
	rng := des.NewRNG(17)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	fails := [][]int{
		topology.NearestNodes(nw, topology.GridCenter(nw), 2, nil),
		topology.NearestNodes(nw, topology.GridCenter(nw), 8, nil),
	}

	sim, err := New(nw, equivalenceParams(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range resetVariants() {
		for seed := int64(1); seed <= 2; seed++ {
			fail := fails[seed%2]
			base := equivalenceParams(seed, v.mutate)
			stormOff(&base)
			if err := sim.Reset(base); err != nil {
				t.Fatalf("%s seed %d: Reset: %v", v.name, seed, err)
			}
			want := digestRun(t, sim, nw, fail)
			for _, piece := range stormPieces() {
				p := equivalenceParams(seed, v.mutate)
				stormOff(&p)
				piece.mutate(&p)
				if err := sim.Reset(p); err != nil {
					t.Fatalf("%s/%s seed %d: Reset: %v", v.name, piece.name, seed, err)
				}
				got := digestRun(t, sim, nw, fail)
				if got.summary != want.summary {
					t.Errorf("%s seed %d: %s diverged from baseline\nbaseline:\n%s\n%s:\n%s",
						v.name, seed, piece.name, want.summary, piece.name, got.summary)
				}
			}
		}
	}
}

// TestStormFastLaneZeroDelay drives the configuration fused dispatch
// actually accelerates — zero processing delay and zero internal link
// delay, where delivery and processing-completion land at the same
// instant — and requires the fused run to match the baseline.
func TestStormFastLaneZeroDelay(t *testing.T) {
	rng := des.NewRNG(23)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 3, nil)
	mk := func(on bool) Params {
		p := equivalenceParams(7, nil)
		p.ProcMin, p.ProcMax = 0, 0
		p.IntDelay = 0
		stormOff(&p)
		p.StormFusedDispatch = on
		return p
	}
	plain, err := New(nw, mk(false))
	if err != nil {
		t.Fatal(err)
	}
	want := digestRun(t, plain, nw, fail)
	fused, err := New(nw, mk(true))
	if err != nil {
		t.Fatal(err)
	}
	got := digestRun(t, fused, nw, fail)
	if got.summary != want.summary {
		t.Errorf("fused zero-delay run diverged\nbaseline:\n%s\nfused:\n%s", want.summary, got.summary)
	}
}

// TestStormFastLaneNoJitter pins coalescing in the non-jittered
// configuration: without jitter, distinct peers' retry timers collide at
// the same instant constantly (a shared deterministic MRAI), so this is
// the densest equal-time stress on the reserved-sequence virtual-timer
// argument — output must still match the no-jitter baseline exactly.
func TestStormFastLaneNoJitter(t *testing.T) {
	rng := des.NewRNG(29)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 3, nil)
	mk := func(coal bool) Params {
		p := equivalenceParams(3, nil)
		p.JitterTimers = false
		stormOff(&p)
		p.StormCoalescedMRAI = coal
		return p
	}
	sim, err := New(nw, mk(false))
	if err != nil {
		t.Fatal(err)
	}
	want := digestRun(t, sim, nw, fail)
	if err := sim.Reset(mk(true)); err != nil {
		t.Fatal(err)
	}
	if !sim.routers[0].coalesce {
		t.Fatal("coalescing inactive without JitterTimers")
	}
	got := digestRun(t, sim, nw, fail)
	if got.summary != want.summary {
		t.Errorf("no-jitter coalesced-toggle run diverged\nbaseline:\n%s\ngot:\n%s", want.summary, got.summary)
	}
}

// TestStormFastLaneDenseStorm pins the fast lane at the fig3 shape the
// smaller digests miss: paper-scale node count, the sweep's lowest MRAI
// (0.25 s), and a 10% geographic failure. At this density, retry timers
// clamped to the current instant collide with queued same-time events
// constantly, which is exactly the interleaving the reserved-sequence
// virtual timers must reproduce (the original heuristic coalescing
// diverged here while passing every smaller digest).
func TestStormFastLaneDenseStorm(t *testing.T) {
	rng := des.NewRNG(41)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(120), rng)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 12, nil)
	mk := func(seed int64) Params {
		p := equivalenceParams(seed, nil)
		p.MRAI = mrai.Constant(250 * time.Millisecond)
		return p
	}
	sim, err := New(nw, mk(1))
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 2; seed++ {
		base := mk(seed)
		stormOff(&base)
		if err := sim.Reset(base); err != nil {
			t.Fatalf("seed %d: Reset: %v", seed, err)
		}
		want := digestRun(t, sim, nw, fail)
		for _, piece := range stormPieces() {
			p := mk(seed)
			stormOff(&p)
			piece.mutate(&p)
			if err := sim.Reset(p); err != nil {
				t.Fatalf("%s seed %d: Reset: %v", piece.name, seed, err)
			}
			got := digestRun(t, sim, nw, fail)
			if got.summary != want.summary {
				t.Errorf("seed %d: %s diverged from baseline in the dense storm\nbaseline:\n%s\n%s:\n%s",
					seed, piece.name, want.summary, piece.name, got.summary)
			}
		}
	}
}

// TestStormFastLaneAcrossModes crosses the full fast lane with the other
// execution axes: sequenced shards, multi-prefix tables, and the snapshot
// warm start — each must still match its own baseline byte-for-byte.
func TestStormFastLaneAcrossModes(t *testing.T) {
	rng := des.NewRNG(31)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 4, nil)
	modes := []struct {
		name   string
		mutate func(*Params)
	}{
		{"sharded-sequenced", func(p *Params) { p.Shards = 4 }},
		{"multi-prefix", func(p *Params) { p.PrefixesPerAS = 3 }},
		{"warm-start", func(p *Params) {
			p.Queue = QueueBatched
			p.WarmStart = true
		}},
		{"warm-start-multi-prefix-sharded", func(p *Params) {
			p.Queue = QueueBatched
			p.WarmStart = true
			p.PrefixesPerAS = 2
			p.Shards = 3
		}},
	}
	sim, err := New(nw, equivalenceParams(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range modes {
		base := equivalenceParams(2, m.mutate)
		stormOff(&base)
		if err := sim.Reset(base); err != nil {
			t.Fatalf("%s: Reset: %v", m.name, err)
		}
		want := digestRun(t, sim, nw, fail)
		fast := equivalenceParams(2, m.mutate) // DefaultParams: all pieces on
		if err := sim.Reset(fast); err != nil {
			t.Fatalf("%s: Reset: %v", m.name, err)
		}
		got := digestRun(t, sim, nw, fail)
		if got.summary != want.summary {
			t.Errorf("%s: fast lane diverged from baseline\nbaseline:\n%s\nfast:\n%s",
				m.name, want.summary, got.summary)
		}
	}
}

// TestDecide2AgreesWithDecide checks the two-result scan against the
// single-result scan on real post-failure routing tables: the winner must
// be identical, and the runner-up must be exactly what decide picks with
// the winner's slot disabled. It also audits the committed secondSlot
// cache at quiescence: every valid entry must equal the scan's runner-up.
func TestDecide2AgreesWithDecide(t *testing.T) {
	rng := des.NewRNG(37)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 3, nil)
	sim, err := New(nw, equivalenceParams(5, func(p *Params) { p.Queue = QueueBatched }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	alive := []bool(nil)
	for _, r := range sim.routers {
		if !r.alive {
			continue
		}
		for dest := 0; dest < r.ndests; dest++ {
			best1, slot1, ok1 := decide(r.adjIn, dest, r.peers, r.peerAlive, nil, sim.params.Policy, r.id)
			best2, slot2, second, ok2 := decide2(r.adjIn, dest, r.peers, r.peerAlive, sim.params.Policy, r.id)
			if ok1 != ok2 || slot1 != slot2 || (ok1 && !best1.sameAs(best2)) {
				t.Fatalf("n%d d%d: decide2 winner differs: (%v,%d,%v) vs (%v,%d,%v)",
					r.id, dest, best1, slot1, ok1, best2, slot2, ok2)
			}
			// The runner-up is what the scan picks with the winner dead.
			alive = append(alive[:0], r.peerAlive...)
			wantSecond := secondNone
			if ok1 {
				alive[slot1] = false
				if _, s2, ok := decide(r.adjIn, dest, r.peers, alive, nil, sim.params.Policy, r.id); ok {
					wantSecond = int16(s2)
				}
			}
			if second != wantSecond {
				t.Fatalf("n%d d%d: decide2 runner-up %d, want %d", r.id, dest, second, wantSecond)
			}
			if cached := r.secondSlot[dest]; cached >= 0 && r.bestSlot[dest] >= 0 && cached != wantSecond {
				t.Fatalf("n%d d%d: cached secondSlot %d, scan says %d", r.id, dest, cached, wantSecond)
			}
		}
	}
}

// TestStormBaselineDefault pins the escape-hatch plumbing: flipping the
// package default regenerates DefaultParams with every piece off — the
// -storm-baseline flag's contract.
func TestStormBaselineDefault(t *testing.T) {
	StormBaselineDefault = true
	defer func() { StormBaselineDefault = false }()
	p := DefaultParams()
	if p.StormFusedDispatch || p.StormBlockedSkip || p.StormCoalescedMRAI || p.StormSecondBest {
		t.Fatalf("StormBaselineDefault did not disable the fast lane: %+v", p)
	}
}

// TestStormFastLaneAllocFree pins that the fast-lane bookkeeping does not
// reintroduce steady-state allocation: repeat trials on a reused
// simulator must allocate no more with the fast lane on than the
// baseline path does (both pay the same fixed per-Reset costs — policy
// objects and the like — which this differential bound cancels out).
func TestStormFastLaneAllocFree(t *testing.T) {
	rng := des.NewRNG(41)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 3, nil)
	trialAllocs := func(p Params) float64 {
		sim, err := New(nw, p)
		if err != nil {
			t.Fatal(err)
		}
		// Warm-up trials materialize every lazy structure (blocked
		// columns, scratch buffers, event and delivery pools).
		for i := 0; i < 2; i++ {
			if _, err := sim.ConvergeAndFail(fail); err != nil {
				t.Fatal(err)
			}
			if err := sim.Reset(p); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(3, func() {
			if err := sim.Reset(p); err != nil {
				t.Fatal(err)
			}
			if _, err := sim.ConvergeAndFail(fail); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := equivalenceParams(1, func(pp *Params) { pp.Queue = QueueBatched })
	stormOff(&base)
	fast := equivalenceParams(1, func(pp *Params) { pp.Queue = QueueBatched })
	got, want := trialAllocs(fast), trialAllocs(base)
	// The storm loop must not allocate per event — tens of thousands of
	// storm events per trial would blow the slack immediately if it did.
	if got > want+10 {
		t.Fatalf("fast-lane trial allocates %v times per run, baseline %v", got, want)
	}
}
