package bgp

// Inbox is a router's input queue of BGP updates. Pop returns the next
// unit of work: a slice of updates the CPU processes together (length 1
// under FIFO). Discarded counts updates deleted without processing (the
// batching scheme's staleness elimination).
//
// Batch ownership: the slice returned by Pop is valid until the next Pop
// or Recycle call on the same inbox. The router hands it back through
// Recycle once the work unit is fully processed, letting the inbox reuse
// the backing array for future batches.
type Inbox interface {
	// Push appends one arriving update.
	Push(u Update)
	// Pop removes and returns the next unit of work, or nil when empty.
	Pop() []Update
	// Len returns the number of queued updates.
	Len() int
	// Empty reports whether no updates are queued.
	Empty() bool
	// TakeDiscarded returns and resets the count of updates deleted
	// unprocessed since the last call.
	TakeDiscarded() int
	// Recycle returns a batch obtained from Pop so its backing array can
	// back a future batch. Passing a foreign slice is a caller bug.
	Recycle(batch []Update)
	// Reset empties the inbox for simulator reuse, retaining internal
	// capacity (ring buffers, recycled batch arrays) where possible.
	Reset()
}

// newInbox builds the inbox for the configured queue discipline.
// ndests dimensions the dense per-destination tables of the batching
// discipline (ignored by the others).
func newInbox(p Params, ndests int) Inbox {
	switch p.Queue {
	case QueueBatched:
		return &batchInbox{
			byDest:       make([]int32, ndests),
			discardStale: p.BatchDiscardStale,
		}
	case QueueRouterBatch:
		return &routerBatchInbox{byPeer: make(map[NodeID][]Update)}
	default:
		return &fifoInbox{}
	}
}

// fifoInbox is default BGP: strict arrival order, one update at a time.
// It is a growable ring buffer to keep Push/Pop O(1) without repeated
// reallocation in the overload regime the experiments create.
type fifoInbox struct {
	buf        []Update
	head, size int
	out        [1]Update // scratch backing the single-update batch Pop returns
}

var _ Inbox = (*fifoInbox)(nil)

// Push appends one update to the ring.
func (q *fifoInbox) Push(u Update) {
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)%len(q.buf)] = u
	q.size++
}

func (q *fifoInbox) grow() {
	next := make([]Update, max(8, 2*len(q.buf)))
	for i := 0; i < q.size; i++ {
		next[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = next
	q.head = 0
}

// Pop returns the oldest update as a one-element batch. The batch aliases
// an internal scratch slot, per the Inbox ownership contract.
func (q *fifoInbox) Pop() []Update {
	if q.size == 0 {
		return nil
	}
	q.out[0] = q.buf[q.head]
	q.buf[q.head] = Update{}
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return q.out[:1]
}

// Len returns the number of queued updates.
func (q *fifoInbox) Len() int { return q.size }

// Empty reports whether the ring is empty.
func (q *fifoInbox) Empty() bool { return q.size == 0 }

// TakeDiscarded always returns zero: FIFO never discards.
func (q *fifoInbox) TakeDiscarded() int { return 0 }

// Recycle is a no-op: FIFO batches live in a fixed scratch slot.
func (q *fifoInbox) Recycle(batch []Update) {}

// Reset empties the ring, retaining its backing array.
func (q *fifoInbox) Reset() {
	clear(q.buf)
	q.head, q.size = 0, 0
}

// batchInbox is the paper's destination-batched queue: one logical queue
// per destination, served in order of each destination's earliest pending
// update. With discardStale set, a new update from a neighbor deletes any
// still-queued older update from the same neighbor for the same
// destination ("the older updates are now invalid").
type batchInbox struct {
	order     []ASN // destinations with pending updates, FIFO by first arrival
	orderHead int   // consumed prefix of order; reset when it drains
	// byDest is dense by destination index (destinations are small dense
	// integers, like every other per-dest table), but holds 4-byte slot
	// handles rather than slice headers: entry d is 1+i when lists[i] is
	// the pending batch for destination d, 0 when none is pending. The
	// dense array replaced a map whose hashing and bucket churn dominated
	// the inbox at 500-AS scale; the handle indirection exists because at
	// multi-prefix scale the table has hundreds of thousands of entries
	// per router, and a 24-byte slice header per destination would be the
	// largest structural cost in the whole simulator. Slice headers are
	// paid only for destinations with traffic in flight.
	byDest       []int32
	lists        [][]Update // slot-indexed pending batches; nil = slot free
	freeSlots    []int32    // unused lists slots (1-based, like byDest)
	free         [][]Update // recycled batch backing arrays
	size         int
	discarded    int
	discardStale bool
}

var _ Inbox = (*batchInbox)(nil)

// Push files the update under its destination, applying staleness
// elimination when enabled.
func (q *batchInbox) Push(u Update) {
	slot := q.byDest[u.Dest]
	var list []Update
	if slot == 0 {
		q.order = append(q.order, u.Dest)
		if n := len(q.free); n > 0 {
			list = q.free[n-1]
			q.free[n-1] = nil
			q.free = q.free[:n-1]
		}
		if n := len(q.freeSlots); n > 0 {
			slot = q.freeSlots[n-1]
			q.freeSlots = q.freeSlots[:n-1]
			q.lists[slot-1] = list
		} else {
			q.lists = append(q.lists, list)
			slot = int32(len(q.lists))
		}
		q.byDest[u.Dest] = slot
	} else {
		list = q.lists[slot-1]
	}
	if q.discardStale {
		for i := range list {
			if list[i].From == u.From {
				// Replace in place: the new update supersedes the old one
				// and inherits its batch position.
				list[i] = u
				q.discarded++
				return
			}
		}
	}
	q.lists[slot-1] = append(list, u)
	q.size++
}

// Pop returns all queued updates for the destination whose first update
// arrived earliest. The consumed prefix of the order slice is tracked by
// index (not by re-slicing) so the backing array is reused once drained
// instead of reallocated on every refill.
func (q *batchInbox) Pop() []Update {
	for q.orderHead < len(q.order) {
		dest := q.order[q.orderHead]
		q.orderHead++
		if q.orderHead == len(q.order) {
			q.order = q.order[:0]
			q.orderHead = 0
		}
		slot := q.byDest[dest]
		if slot == 0 {
			continue
		}
		list := q.lists[slot-1]
		q.lists[slot-1] = nil
		q.freeSlots = append(q.freeSlots, slot)
		q.byDest[dest] = 0
		if len(list) == 0 {
			continue
		}
		q.size -= len(list)
		return list
	}
	return nil
}

// Len returns the number of queued updates across all destinations.
func (q *batchInbox) Len() int { return q.size }

// Empty reports whether no updates are queued.
func (q *batchInbox) Empty() bool { return q.size == 0 }

// TakeDiscarded returns and resets the stale-discard counter.
func (q *batchInbox) TakeDiscarded() int {
	d := q.discarded
	q.discarded = 0
	return d
}

// Recycle stores the batch's backing array for reuse by a future Push.
func (q *batchInbox) Recycle(batch []Update) {
	if cap(batch) > 0 {
		q.free = append(q.free, batch[:0])
	}
}

// Reset empties the inbox, moving queued per-destination lists to the
// free list so their backing arrays are reused by the next run. Every
// pending destination appears in order (appended on its first push), so
// scanning order — not all of byDest — keeps this O(recent traffic);
// duplicates are harmless because the first visit nils the slot.
func (q *batchInbox) Reset() {
	for _, dest := range q.order {
		slot := q.byDest[dest]
		if slot == 0 {
			continue
		}
		if list := q.lists[slot-1]; cap(list) > 0 {
			q.free = append(q.free, list[:0])
		}
		q.lists[slot-1] = nil
		q.byDest[dest] = 0
	}
	q.order = q.order[:0]
	q.orderHead = 0
	q.lists = q.lists[:0]
	q.freeSlots = q.freeSlots[:0]
	q.size = 0
	q.discarded = 0
}

// routerBatchInbox models production-router behaviour circa the paper:
// the reader drains one TCP buffer per peer and the batch is processed
// sequentially, with an update superseding an older same-destination
// update only if both sit in the same per-peer batch.
type routerBatchInbox struct {
	peerOrder []NodeID // peers with pending updates, FIFO by first arrival
	orderHead int      // consumed prefix of peerOrder; reset when it drains
	byPeer    map[NodeID][]Update
	free      [][]Update  // recycled batch backing arrays
	lastFor   map[ASN]int // Pop scratch: last batch index per destination
	size      int
	discarded int
}

var _ Inbox = (*routerBatchInbox)(nil)

// Push files the update under its sending peer.
func (q *routerBatchInbox) Push(u Update) {
	list, pending := q.byPeer[u.From]
	if !pending {
		q.peerOrder = append(q.peerOrder, u.From)
		if n := len(q.free); list == nil && n > 0 {
			list = q.free[n-1]
			q.free[n-1] = nil
			q.free = q.free[:n-1]
		}
	}
	q.byPeer[u.From] = append(list, u)
	q.size++
}

// Pop drains the batch of the peer whose first update arrived earliest,
// dropping superseded same-destination updates within the batch.
func (q *routerBatchInbox) Pop() []Update {
	for q.orderHead < len(q.peerOrder) {
		peer := q.peerOrder[q.orderHead]
		q.orderHead++
		if q.orderHead == len(q.peerOrder) {
			q.peerOrder = q.peerOrder[:0]
			q.orderHead = 0
		}
		list, ok := q.byPeer[peer]
		if !ok || len(list) == 0 {
			continue
		}
		delete(q.byPeer, peer)
		q.size -= len(list)
		// Within the batch only the newest update per destination counts;
		// a BGP speaker applies them in order so older ones are dead work
		// that the batch reader skips.
		kept := list[:0]
		if q.lastFor == nil {
			q.lastFor = make(map[ASN]int, len(list))
		}
		lastFor := q.lastFor
		clear(lastFor)
		for i, u := range list {
			lastFor[u.Dest] = i
		}
		for i, u := range list {
			if lastFor[u.Dest] == i {
				kept = append(kept, u)
			} else {
				q.discarded++
			}
		}
		return kept
	}
	return nil
}

// Len returns the number of queued updates across all peers.
func (q *routerBatchInbox) Len() int { return q.size }

// Empty reports whether no updates are queued.
func (q *routerBatchInbox) Empty() bool { return q.size == 0 }

// TakeDiscarded returns and resets the superseded-update counter.
func (q *routerBatchInbox) TakeDiscarded() int {
	d := q.discarded
	q.discarded = 0
	return d
}

// Recycle stores the batch's backing array for reuse by a future Push.
func (q *routerBatchInbox) Recycle(batch []Update) {
	if cap(batch) > 0 {
		q.free = append(q.free, batch[:0])
	}
}

// Reset empties the inbox, moving queued per-peer lists to the free list
// so their backing arrays are reused by the next run.
func (q *routerBatchInbox) Reset() {
	for peer, list := range q.byPeer {
		if cap(list) > 0 {
			q.free = append(q.free, list[:0])
		}
		delete(q.byPeer, peer)
	}
	q.peerOrder = q.peerOrder[:0]
	q.orderHead = 0
	q.size = 0
	q.discarded = 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
