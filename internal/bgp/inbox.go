package bgp

// Inbox is a router's input queue of BGP updates. Pop returns the next
// unit of work: a slice of updates the CPU processes together (length 1
// under FIFO). Discarded counts updates deleted without processing (the
// batching scheme's staleness elimination).
type Inbox interface {
	Push(u Update)
	Pop() []Update
	Len() int
	Empty() bool
	// TakeDiscarded returns and resets the count of updates deleted
	// unprocessed since the last call.
	TakeDiscarded() int
}

// newInbox builds the inbox for the configured queue discipline.
func newInbox(p Params) Inbox {
	switch p.Queue {
	case QueueBatched:
		return &batchInbox{
			byDest:       make(map[ASN][]Update),
			discardStale: p.BatchDiscardStale,
		}
	case QueueRouterBatch:
		return &routerBatchInbox{byPeer: make(map[NodeID][]Update)}
	default:
		return &fifoInbox{}
	}
}

// fifoInbox is default BGP: strict arrival order, one update at a time.
// It is a growable ring buffer to keep Push/Pop O(1) without repeated
// reallocation in the overload regime the experiments create.
type fifoInbox struct {
	buf        []Update
	head, size int
}

var _ Inbox = (*fifoInbox)(nil)

func (q *fifoInbox) Push(u Update) {
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)%len(q.buf)] = u
	q.size++
}

func (q *fifoInbox) grow() {
	next := make([]Update, max(8, 2*len(q.buf)))
	for i := 0; i < q.size; i++ {
		next[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = next
	q.head = 0
}

func (q *fifoInbox) Pop() []Update {
	if q.size == 0 {
		return nil
	}
	u := q.buf[q.head]
	q.buf[q.head] = Update{}
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return []Update{u}
}

func (q *fifoInbox) Len() int           { return q.size }
func (q *fifoInbox) Empty() bool        { return q.size == 0 }
func (q *fifoInbox) TakeDiscarded() int { return 0 }

// batchInbox is the paper's destination-batched queue: one logical queue
// per destination, served in order of each destination's earliest pending
// update. With discardStale set, a new update from a neighbor deletes any
// still-queued older update from the same neighbor for the same
// destination ("the older updates are now invalid").
type batchInbox struct {
	order        []ASN // destinations with pending updates, FIFO by first arrival
	byDest       map[ASN][]Update
	size         int
	discarded    int
	discardStale bool
}

var _ Inbox = (*batchInbox)(nil)

func (q *batchInbox) Push(u Update) {
	list, pending := q.byDest[u.Dest]
	if !pending {
		q.order = append(q.order, u.Dest)
	}
	if q.discardStale {
		for i := range list {
			if list[i].From == u.From {
				// Replace in place: the new update supersedes the old one
				// and inherits its batch position.
				list[i] = u
				q.byDest[u.Dest] = list
				q.discarded++
				return
			}
		}
	}
	q.byDest[u.Dest] = append(list, u)
	q.size++
}

func (q *batchInbox) Pop() []Update {
	for len(q.order) > 0 {
		dest := q.order[0]
		q.order = q.order[1:]
		list, ok := q.byDest[dest]
		if !ok || len(list) == 0 {
			continue
		}
		delete(q.byDest, dest)
		q.size -= len(list)
		return list
	}
	return nil
}

func (q *batchInbox) Len() int    { return q.size }
func (q *batchInbox) Empty() bool { return q.size == 0 }

func (q *batchInbox) TakeDiscarded() int {
	d := q.discarded
	q.discarded = 0
	return d
}

// routerBatchInbox models production-router behaviour circa the paper:
// the reader drains one TCP buffer per peer and the batch is processed
// sequentially, with an update superseding an older same-destination
// update only if both sit in the same per-peer batch.
type routerBatchInbox struct {
	peerOrder []NodeID // peers with pending updates, FIFO by first arrival
	byPeer    map[NodeID][]Update
	size      int
	discarded int
}

var _ Inbox = (*routerBatchInbox)(nil)

func (q *routerBatchInbox) Push(u Update) {
	list, pending := q.byPeer[u.From]
	if !pending {
		q.peerOrder = append(q.peerOrder, u.From)
	}
	q.byPeer[u.From] = append(list, u)
	q.size++
}

func (q *routerBatchInbox) Pop() []Update {
	for len(q.peerOrder) > 0 {
		peer := q.peerOrder[0]
		q.peerOrder = q.peerOrder[1:]
		list, ok := q.byPeer[peer]
		if !ok || len(list) == 0 {
			continue
		}
		delete(q.byPeer, peer)
		q.size -= len(list)
		// Within the batch only the newest update per destination counts;
		// a BGP speaker applies them in order so older ones are dead work
		// that the batch reader skips.
		kept := list[:0]
		lastFor := make(map[ASN]int, len(list))
		for i, u := range list {
			lastFor[u.Dest] = i
		}
		for i, u := range list {
			if lastFor[u.Dest] == i {
				kept = append(kept, u)
			} else {
				q.discarded++
			}
		}
		return kept
	}
	return nil
}

func (q *routerBatchInbox) Len() int    { return q.size }
func (q *routerBatchInbox) Empty() bool { return q.size == 0 }

func (q *routerBatchInbox) TakeDiscarded() int {
	d := q.discarded
	q.discarded = 0
	return d
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
