package bgp

import (
	"fmt"
	"testing"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
)

// These tests pin the Reset contract: a Simulator rewound with Reset
// must be indistinguishable — measurement for measurement, route for
// route — from one freshly constructed with New on the same network.
// The sweep layer's simulator pool depends on this equivalence holding
// for every scheme the figures exercise, so the variants below cover
// each queue discipline, damping, per-destination MRAI, and the dynamic
// MRAI ladder.

// runDigest is everything observable about one ConvergeAndFail run.
type runDigest struct {
	delay   time.Duration
	summary string
}

// digestRun executes one failure experiment and captures the full
// observable outcome: convergence delay, every collector counter, and
// every router's final route to every destination.
func digestRun(t *testing.T, sim *Simulator, nw *topology.Network, fail []int) runDigest {
	t.Helper()
	delay, err := sim.ConvergeAndFail(fail)
	if err != nil {
		t.Fatal(err)
	}
	col := sim.Collector()
	s := fmt.Sprintf("delay=%v msgs=%d ann=%d wd=%d proc=%d disc=%d rc=%d now=%v\n",
		delay, col.Messages(), col.Announcements, col.Withdrawals,
		col.Processed, col.Discarded, col.RouteChanges(), sim.Now())
	for _, dest := range sim.Destinations() {
		for id := 0; id < nw.NumNodes(); id++ {
			if p, ok := sim.LocPath(id, dest); ok {
				s += fmt.Sprintf("n%d d%d %v\n", id, dest, p)
			}
		}
	}
	return runDigest{delay: delay, summary: s}
}

// resetVariants enumerates the parameter shapes whose Reset transitions
// the pool must survive, including discipline changes that force the
// inbox implementation to be swapped.
func resetVariants() []struct {
	name   string
	mutate func(*Params)
} {
	return []struct {
		name   string
		mutate func(*Params)
	}{
		{"fifo", nil},
		{"batched", func(p *Params) { p.Queue = QueueBatched }},
		{"batched-keep-stale", func(p *Params) {
			p.Queue = QueueBatched
			p.BatchDiscardStale = false
		}},
		{"router-batched", func(p *Params) { p.Queue = QueueRouterBatch }},
		{"damping", func(p *Params) { p.Damping = DefaultDamping() }},
		{"per-dest-mrai", func(p *Params) { p.PerDestinationMRAI = true }},
		{"dynamic-mrai", func(p *Params) { p.MRAI = mrai.PaperDynamic() }},
	}
}

func equivalenceParams(seed int64, mutate func(*Params)) Params {
	p := DefaultParams()
	p.MRAI = mrai.Constant(500 * time.Millisecond)
	p.Seed = seed
	if mutate != nil {
		mutate(&p)
	}
	return p
}

// TestResetMatchesFreshNew reruns every scheme variant twice — once on a
// freshly constructed simulator, once on one shared simulator that is
// Reset between runs (crossing variant boundaries, so leftover state
// from a different discipline would be caught) — and requires identical
// outcomes.
func TestResetMatchesFreshNew(t *testing.T) {
	rng := des.NewRNG(11)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 4, nil)

	reused, err := New(nw, equivalenceParams(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range resetVariants() {
		for seed := int64(1); seed <= 3; seed++ {
			p := equivalenceParams(seed, v.mutate)
			fresh, err := New(nw, p)
			if err != nil {
				t.Fatalf("%s seed %d: New: %v", v.name, seed, err)
			}
			want := digestRun(t, fresh, nw, fail)
			if err := reused.Reset(p); err != nil {
				t.Fatalf("%s seed %d: Reset: %v", v.name, seed, err)
			}
			got := digestRun(t, reused, nw, fail)
			if got.summary != want.summary {
				t.Errorf("%s seed %d: Reset run diverged from fresh New\nfresh:\n%s\nreset:\n%s",
					v.name, seed, want.summary, got.summary)
			}
		}
	}
}

// TestResetAfterRecovery pins that Reset rewinds a simulator whose
// previous run included node failures AND recoveries — the dirtiest
// state a pooled simulator can carry (revived routers, damping history,
// re-armed timers).
func TestResetAfterRecovery(t *testing.T) {
	rng := des.NewRNG(13)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 3, nil)

	p := equivalenceParams(5, func(pp *Params) { pp.Damping = DefaultDamping() })
	reused, err := New(nw, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reused.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	reused.ScheduleRecovery(reused.Now()+SettleMargin, fail)
	if err := reused.Run(); err != nil {
		t.Fatal(err)
	}

	p2 := equivalenceParams(9, nil)
	fresh, err := New(nw, p2)
	if err != nil {
		t.Fatal(err)
	}
	want := digestRun(t, fresh, nw, fail)
	if err := reused.Reset(p2); err != nil {
		t.Fatal(err)
	}
	got := digestRun(t, reused, nw, fail)
	if got.summary != want.summary {
		t.Errorf("Reset after recovery diverged from fresh New\nfresh:\n%s\nreset:\n%s",
			want.summary, got.summary)
	}
}
