package bgp

import (
	"testing"

	"bgpsim/internal/des"
	"bgpsim/internal/topology"
)

// policyNetwork builds the canonical Gao–Rexford example:
//
//	    2 (top provider)
//	   / \
//	  1   3        1-3 also peer with each other
//	 /     \
//	0       4
//
// 0 is 1's customer, 1 and 3 are 2's customers, 4 is 3's customer.
func policyNetwork(t *testing.T) (*topology.Network, *topology.Relationships) {
	t.Helper()
	nw := topology.NewNetwork(5)
	for _, l := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {1, 3}} {
		if err := nw.AddLink(l[0], l[1], false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		nw.SetPos(i, topology.Point{X: float64(i) * 100, Y: 500})
	}
	rs := topology.NewRelationships()
	rs.Set(1, 0, topology.RelCustomer)
	rs.Set(2, 1, topology.RelCustomer)
	rs.Set(2, 3, topology.RelCustomer)
	rs.Set(3, 4, topology.RelCustomer)
	rs.Set(1, 3, topology.RelPeer)
	return nw, rs
}

func policySim(t *testing.T, seed int64) (*Simulator, *topology.Relationships) {
	t.Helper()
	nw, rs := policyNetwork(t)
	p := fastParams(seed)
	p.Policy = rs
	sim := mustSim(t, nw, p)
	return sim, rs
}

func TestPolicyPrefersCustomerRoutes(t *testing.T) {
	sim, _ := policySim(t, 81)
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Node 1 can reach AS 4 via peer 3 (path len 2) or via provider 2
	// (path len 3). Customer > peer > provider: the peer route wins over
	// the provider one.
	p, ok := sim.LocPath(1, 4)
	if !ok {
		t.Fatal("node 1 has no route to AS 4")
	}
	if len(p) != 2 || p[0] != 3 {
		t.Errorf("node 1 -> AS 4 path %v, want via peer 3", p)
	}
	// Node 2 reaches AS 0 via its customer 1.
	if p, ok := sim.LocPath(2, 0); !ok || p[0] != 1 {
		t.Errorf("node 2 -> AS 0 path %v ok=%v, want via customer 1", p, ok)
	}
}

func TestPolicyExportRuleBlocksValleyPaths(t *testing.T) {
	sim, _ := policySim(t, 83)
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 learns AS 2's own prefix from its provider 2 and must NOT relay
	// it to peer 3 or leak provider routes upward; 3 still reaches AS 2
	// directly, but node 1's Adj-RIB-In for dest 2 must have no entry
	// from peer 3 (3 would have to leak a provider route to a peer).
	r1 := sim.routers[1]
	if _, ok := r1.adjIn.get(2, 3); ok {
		t.Error("peer 3 leaked a provider-learned route to node 1")
	}
	// Likewise node 0 (customer) DOES get everything from its provider 1.
	if _, ok := sim.LocPath(0, 4); !ok {
		t.Error("customer 0 did not receive the full table")
	}
}

func TestPolicyPathsAreValleyFree(t *testing.T) {
	sim, rs := policySim(t, 85)
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	assertValleyFree(t, sim, rs)
}

func TestPolicyValleyFreeAfterFailure(t *testing.T) {
	sim, rs := policySim(t, 87)
	if _, err := sim.ConvergeAndFail([]int{2}); err != nil {
		t.Fatal(err)
	}
	assertValleyFree(t, sim, rs)
	// With the top provider dead, 0 reaches 4 via the 1-3 peering.
	p, ok := sim.LocPath(0, 4)
	if !ok {
		t.Fatal("node 0 lost AS 4 after top-provider failure")
	}
	if len(p) != 3 || p[0] != 1 || p[1] != 3 {
		t.Errorf("node 0 -> AS 4 = %v, want [1 3 4]", p)
	}
}

func TestPolicyOnRandomTopologyConvergesValleyFree(t *testing.T) {
	rng := des.NewRNG(91)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := topology.InferRelationships(nw, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams(91)
	p.Policy = rs
	sim := mustSim(t, nw, p)
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 4, nil)
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	assertValleyFree(t, sim, rs)
}

// assertValleyFree checks every Loc-RIB path against the Gao–Rexford
// export rules. Note: policies can legitimately make some destinations
// unreachable (no valley-free path exists), so unlike the shortest-path
// invariant this only validates the routes that do exist.
func assertValleyFree(t *testing.T, sim *Simulator, rs *topology.Relationships) {
	t.Helper()
	nw := sim.Network()
	nodeOfAS := func(as int) (int, bool) {
		nodes := nw.NodesInAS(as)
		if len(nodes) != 1 {
			return 0, false
		}
		return nodes[0], true
	}
	routes := 0
	for node := 0; node < nw.NumNodes(); node++ {
		if !sim.Alive(node) {
			continue
		}
		for _, dest := range sim.Destinations() {
			p, ok := sim.LocPath(node, dest)
			if !ok || len(p) == 0 {
				continue
			}
			routes++
			if !topology.ValleyFree(rs, node, p, nodeOfAS) {
				t.Errorf("node %d -> AS %d: path %v violates valley-freeness", node, dest, p)
			}
		}
	}
	if routes == 0 {
		t.Error("no routes to validate")
	}
}

func TestHierarchicalPolicyKeepsFullReachability(t *testing.T) {
	rng := des.NewRNG(95)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(60), rng)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := topology.HierarchicalRelationships(nw)
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams(95)
	p.Policy = rs
	sim := mustSim(t, nw, p)
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Every node must reach every prefix: the BFS hierarchy guarantees a
	// valley-free up-then-down path for all pairs.
	for n := 0; n < nw.NumNodes(); n++ {
		for _, d := range sim.Destinations() {
			if _, ok := sim.LocPath(n, d); !ok {
				t.Fatalf("node %d cannot reach prefix %d under hierarchical policy", n, d)
			}
		}
	}
	assertValleyFree(t, sim, rs)
}
