package bgp

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/mrai"
	"bgpsim/internal/profiling"
	"bgpsim/internal/topology"
)

// phaseTestSim builds a small converged-and-failed world for the phase
// accounting tests.
func phaseTestSim(t *testing.T) (*Simulator, []int) {
	t.Helper()
	rng := des.NewRNG(5)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.MRAI = mrai.Constant(500 * time.Millisecond)
	p.Seed = 5
	sim, err := New(nw, p)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 3, nil)
	return sim, fail
}

// TestTakePhaseNs: ConvergeAndFail must credit wall clock to both the
// setup and storm counters, and TakePhaseNs drains them.
func TestTakePhaseNs(t *testing.T) {
	sim, fail := phaseTestSim(t)
	TakePhaseNs() // drop residue from other tests in the package
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	setup, storm := TakePhaseNs()
	if setup <= 0 || storm <= 0 {
		t.Fatalf("phase counters not credited: setup=%d storm=%d", setup, storm)
	}
	if s2, st2 := TakePhaseNs(); s2 != 0 || st2 != 0 {
		t.Fatalf("TakePhaseNs did not drain: setup=%d storm=%d", s2, st2)
	}
}

// TestStormProfileCoversWindow: with a storm profile armed, one
// ConvergeAndFail must produce a CPU profile scoped to its measurement
// window — opened by the failure's window open, closed at quiescence.
func TestStormProfileCoversWindow(t *testing.T) {
	sim, fail := phaseTestSim(t)
	cpu := filepath.Join(t.TempDir(), "storm-cpu.out")
	profiling.SetStormProfile(cpu, "")
	defer profiling.SetStormProfile("", "")
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(cpu)
	if err != nil {
		t.Fatalf("storm CPU profile not written: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("storm CPU profile is empty")
	}
}
