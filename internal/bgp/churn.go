package bgp

import (
	"fmt"
	"time"

	"bgpsim/internal/des"
)

// This file holds the control-plane hooks the churn subsystem
// (internal/churn) drives the simulator through: generic control-event
// scheduling, explicit measurement-window management, link recovery, and
// the initial-convergence entry point shared with ConvergeAndFail. All
// of them reuse the exact machinery of the batch-failure flow —
// ScheduleFailure/ScheduleRecovery, openWindow/normalizeWindow — so a
// churn program composes with sharding, prefixes, and warm start by
// construction.

// ScheduleControl schedules fn as a global control event at absolute
// time at, on the same engine failures and recoveries run on: the
// control engine in sharded mode (every shard paused at the event's
// timestamp) and the main engine otherwise. Control events at equal
// timestamps execute in the order they were scheduled, which is what
// lets a churn program order "capture previous window" before "open the
// next" at the same instant.
func (s *Simulator) ScheduleControl(at des.Time, fn func()) {
	s.ctrlEng().ScheduleAt(at, fn)
}

// OpenMeasurementWindow opens the metrics measurement window at time at
// and normalizes away any pre-window residue (see normalizeWindow) —
// the same sequence ScheduleFailure performs implicitly. It must be
// called from inside a control event executing at time at (use
// ScheduleControl); churn programs call it before perturbations that do
// not open a window themselves, such as recoveries.
func (s *Simulator) OpenMeasurementWindow(at des.Time) {
	s.openWindow(at)
	s.normalizeWindow(at)
}

// WindowStats is a point-in-time snapshot of the windowed metrics
// counters — one churn measurement window's worth of observables.
type WindowStats struct {
	// Start is the absolute simulated time the window opened.
	Start time.Duration
	// LastActivity is the absolute time of the last BGP activity seen in
	// the window; equal to Start when the window saw no activity.
	LastActivity time.Duration
	// Delay is LastActivity - Start, the paper's convergence delay.
	Delay time.Duration

	// Announcements counts UPDATE announcements sent in the window.
	Announcements int
	// Withdrawals counts withdrawals sent in the window.
	Withdrawals int
	// Packets counts update packets sent in the window.
	Packets int
	// Processed counts updates taken off input queues in the window.
	Processed int
	// Discarded counts updates dropped unprocessed in the window.
	Discarded int
	// RouteChanges counts best-route changes in the window.
	RouteChanges int
	// MaxQueueLen is the peak input-queue length seen in the window.
	MaxQueueLen int
}

// CaptureWindow snapshots the currently open measurement window's
// counters. Call it from a control event scheduled just before the next
// perturbation (which reopens the window), or after Run returns to
// capture the final window. In concurrent sharded mode the per-shard
// collectors are folded deterministically first (see Collector).
func (s *Simulator) CaptureWindow() WindowStats {
	col := s.Collector()
	return WindowStats{
		Start:         col.WindowStart(),
		LastActivity:  col.LastActivity(),
		Delay:         col.ConvergenceDelay(),
		Announcements: col.Announcements,
		Withdrawals:   col.Withdrawals,
		Packets:       col.Packets,
		Processed:     col.Processed,
		Discarded:     col.Discarded,
		RouteChanges:  col.RouteChanges(),
		MaxQueueLen:   col.MaxQueueLen,
	}
}

// ScheduleLinkRecovery re-establishes the sessions on the given links at
// time at — the inverse of ScheduleLinkFailure. Each link is a pair of
// node IDs; links with a dead endpoint, unknown links, and sessions
// already up are ignored (session state is idempotent, so a recovery
// racing a node failure in a churn program degrades to a no-op rather
// than an error). Both ends re-advertise their full Loc-RIB over the
// restored session, the standard session-establishment behaviour. No
// measurement window is opened; churn programs pair this with
// OpenMeasurementWindow when the recovery starts a window of its own.
func (s *Simulator) ScheduleLinkRecovery(at des.Time, links [][2]int) {
	restored := append([][2]int(nil), links...)
	s.ctrlEng().ScheduleAt(at, func() {
		for _, l := range restored {
			a, b := l[0], l[1]
			if a < 0 || b < 0 || a >= len(s.routers) || b >= len(s.routers) {
				continue
			}
			ra, rb := s.routers[a], s.routers[b]
			if !ra.alive || !rb.alive {
				continue
			}
			slotAB, okA := ra.slotOf[b]
			slotBA, okB := rb.slotOf[a]
			if !okA || !okB {
				continue
			}
			ra.peerUp(slotAB)
			rb.peerUp(slotBA)
		}
	})
}

// ConvergeInitial brings the simulator to its initial converged state:
// with Params.WarmStart the snapshot backend's fixpoint is installed
// directly (no phase-1 simulation); otherwise initial route propagation
// is simulated to quiescence and the path table compacted. After it
// returns, Now() is the quiescent time and the simulator is ready for
// failure injection — ConvergeAndFail and churn programs both start
// here.
func (s *Simulator) ConvergeInitial() error {
	if s.params.WarmStart {
		if err := s.warmStart(); err != nil {
			return fmt.Errorf("warm start: %w", err)
		}
		return nil
	}
	s.Start()
	if err := s.Run(); err != nil {
		return fmt.Errorf("initial convergence: %w", err)
	}
	// Quiescence is the one moment the live path set is exactly the
	// RIB contents; shed the exploration storm's dead paths before
	// the perturbation phase piles its own on top.
	s.maybeCompactPaths()
	return nil
}
