package bgp

import (
	"testing"
)

func TestPathHelpers(t *testing.T) {
	if !pathContains(Path{1, 2, 3}, 2) || pathContains(Path{1, 2, 3}, 4) {
		t.Error("pathContains wrong")
	}
	if !pathsEqual(Path{1, 2}, Path{1, 2}) {
		t.Error("equal paths not equal")
	}
	if pathsEqual(Path{1}, Path{1, 2}) || pathsEqual(Path{1}, Path{2}) {
		t.Error("different paths equal")
	}
	if pathsEqual(nil, Path{}) {
		t.Error("nil must differ from empty (withdrawal vs intra-AS route)")
	}
	if !pathsEqual(nil, nil) || !pathsEqual(Path{}, Path{}) {
		t.Error("identity cases failed")
	}
	p := Path{1, 2}
	c := clonePath(p)
	c[0] = 9
	if p[0] != 1 {
		t.Error("clonePath aliases")
	}
	if clonePath(nil) != nil {
		t.Error("clonePath(nil) != nil")
	}
	pre := prependPath(5, p)
	if len(pre) != 3 || pre[0] != 5 || pre[1] != 1 {
		t.Errorf("prependPath = %v", pre)
	}
	if p[0] != 1 {
		t.Error("prependPath mutated input")
	}
}

func TestUpdateIsWithdrawal(t *testing.T) {
	if !(Update{From: 1, Dest: 2}).IsWithdrawal() {
		t.Error("nil path not a withdrawal")
	}
	if (Update{From: 1, Dest: 2, Path: Path{}}).IsWithdrawal() {
		t.Error("empty path treated as withdrawal")
	}
}

// testTab returns a fresh path table for tests that build RIBs outside
// a Simulator.
func testTab() *pathTab {
	tab := &pathTab{}
	tab.reset()
	return tab
}

// ribOver builds an Adj-RIB-In whose slots follow the given peer order,
// sized for dense destination indices in [0, ndests).
func ribOver(peers []Peer, ndests int) *adjRIBIn {
	slotOf := make(map[NodeID]int, len(peers))
	for slot, p := range peers {
		slotOf[p.Node] = slot
	}
	return newAdjRIBIn(slotOf, testTab(), len(peers), ndests)
}

func TestAdjRIBInSetGetRemove(t *testing.T) {
	rib := ribOver([]Peer{{Node: 2, AS: 20}}, 8)
	if _, ok := rib.get(1, 2); ok {
		t.Error("empty RIB returned a route")
	}
	rib.set(1, 2, Path{7})
	if p, ok := rib.get(1, 2); !ok || p[0] != 7 {
		t.Error("get after set failed")
	}
	rib.set(1, 2, Path{8, 9})
	if p, _ := rib.get(1, 2); len(p) != 2 {
		t.Error("set did not replace")
	}
	if !rib.remove(1, 2) {
		t.Error("remove returned false")
	}
	if rib.remove(1, 2) {
		t.Error("double remove returned true")
	}
	if rib.slots[0].any() {
		t.Error("presence not cleared after remove")
	}
	if rib.slots[0].refs[1] != 0 {
		t.Error("stale ref retained after remove")
	}
}

func TestAdjRIBInDestsViaSlot(t *testing.T) {
	rib := ribOver([]Peer{{Node: 5}, {Node: 6}}, 40)
	rib.set(30, 5, Path{1})
	rib.set(10, 5, Path{1})
	rib.set(20, 6, Path{2})
	// Callers pass a reused scratch buffer (router.affectedScratch);
	// destsViaSlot must honor its contents and append after them.
	scratch := make([]ASN, 0, 8)
	got := rib.destsViaSlot(rib.slotOf[5], scratch[:0])
	if len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Errorf("destsViaSlot = %v, want [10 30] sorted", got)
	}
	if &got[0] != &scratch[:1][0] {
		t.Error("destsViaSlot did not reuse the scratch buffer")
	}
	if got := rib.destsViaSlot(rib.slotOf[6], got[:0]); len(got) != 1 || got[0] != 20 {
		t.Errorf("destsViaSlot(6) = %v, want [20]", got)
	}
}

func TestAdjRIBInReset(t *testing.T) {
	rib := ribOver([]Peer{{Node: 1}, {Node: 2}}, 16)
	rib.set(3, 1, Path{10, 3})
	rib.set(7, 2, Path{20, 7})
	rib.reset()
	if _, ok := rib.get(3, 1); ok {
		t.Error("route survived reset")
	}
	if _, ok := rib.get(7, 2); ok {
		t.Error("route survived reset")
	}
	for slot := range rib.slots {
		for dest, ref := range rib.slots[slot].refs {
			if ref != 0 {
				t.Errorf("slot %d dest %d retained ref %d after reset", slot, dest, ref)
			}
		}
	}
	// The table must stay usable after reset.
	rib.set(3, 1, Path{10, 3})
	if p, ok := rib.get(3, 1); !ok || len(p) != 2 {
		t.Error("set/get after reset failed")
	}
}

func testPeers() []Peer {
	return []Peer{
		{Node: 1, AS: 10, Internal: false},
		{Node: 2, AS: 20, Internal: false},
		{Node: 3, AS: 5, Internal: true},
	}
}

func TestDecideShortestPathWins(t *testing.T) {
	rib := ribOver(testPeers(), 100)
	rib.set(99, 1, Path{10, 40, 99})
	rib.set(99, 2, Path{20, 99})
	e, slot, ok := decide(rib, 99, testPeers(), nil, nil, nil, 0)
	if !ok {
		t.Fatal("no route")
	}
	if e.from != 2 || slot != 1 {
		t.Errorf("winner from %d slot %d, want peer 2 at slot 1 (shorter path)", e.from, slot)
	}
}

func TestDecideEBGPBeatsIBGPAtEqualLength(t *testing.T) {
	rib := ribOver(testPeers(), 100)
	rib.set(99, 3, Path{20, 99}) // internal peer
	rib.set(99, 2, Path{20, 99}) // external peer, same length
	e, _, ok := decide(rib, 99, testPeers(), nil, nil, nil, 0)
	if !ok || e.from != 2 {
		t.Errorf("winner from %d, want external peer 2", e.from)
	}
	if e.fromInternal {
		t.Error("winner marked internal")
	}
}

func TestDecideTieBreaksLowestPeerAS(t *testing.T) {
	rib := ribOver(testPeers(), 100)
	rib.set(99, 1, Path{10, 99})
	rib.set(99, 2, Path{20, 99})
	e, slot, ok := decide(rib, 99, testPeers(), nil, nil, nil, 0)
	if !ok || e.from != 1 || slot != 0 {
		t.Errorf("winner from %d slot %d, want peer 1 at slot 0 (AS 10 < AS 20)", e.from, slot)
	}
}

func TestDecideSkipsDeadPeers(t *testing.T) {
	rib := ribOver(testPeers(), 100)
	rib.set(99, 1, Path{10, 99})
	rib.set(99, 2, Path{20, 30, 99})
	alive := []bool{false, true, true}
	e, slot, ok := decide(rib, 99, testPeers(), alive, nil, nil, 0)
	if !ok || e.from != 2 || slot != 1 {
		t.Errorf("winner from %d slot %d, want 2 at slot 1 (peer 1 dead)", e.from, slot)
	}
}

func TestDecideNoRoutes(t *testing.T) {
	rib := ribOver(testPeers(), 100)
	if _, slot, ok := decide(rib, 99, testPeers(), nil, nil, nil, 0); ok || slot != -1 {
		t.Error("decision on empty RIB returned a route")
	}
	rib.set(99, 1, Path{10, 99})
	alive := []bool{false, false, false}
	if _, slot, ok := decide(rib, 99, testPeers(), alive, nil, nil, 0); ok || slot != -1 {
		t.Error("decision with all peers dead returned a route")
	}
}

func TestLocEntrySameAs(t *testing.T) {
	a := locEntry{path: Path{1, 2}, from: 5}
	b := locEntry{path: Path{1, 2}, from: 5}
	if !a.sameAs(b) {
		t.Error("identical entries differ")
	}
	b.from = 6
	if a.sameAs(b) {
		t.Error("different from considered same")
	}
	c := locEntry{path: Path{1, 3}, from: 5}
	if a.sameAs(c) {
		t.Error("different path considered same")
	}
}

func TestSelfRoute(t *testing.T) {
	e := selfRoute(testTab())
	if !e.isSelf() {
		t.Error("selfRoute not self")
	}
	if e.path == nil || len(e.path) != 0 {
		t.Error("self route path must be empty, not nil")
	}
}
