// End-to-end simulator benchmarks, delegated to the shared
// internal/bench registry so `go test -bench` and cmd/bgpbench measure
// exactly the same bodies. This lives in the external test package
// because internal/bench imports internal/bgp.
package bgp_test

import (
	"testing"

	"bgpsim/internal/bench"
)

// run looks up and executes one registry entry.
func run(b *testing.B, name string) {
	b.Helper()
	e, ok := bench.Lookup(name)
	if !ok {
		b.Fatalf("benchmark %q not in internal/bench registry", name)
	}
	e.Fn(b)
}

func BenchmarkConvergeAndFailFIFO(b *testing.B)    { run(b, "ConvergeAndFailFIFO") }
func BenchmarkConvergeAndFailBatched(b *testing.B) { run(b, "ConvergeAndFailBatched") }
func BenchmarkConvergeAndFailDynamic(b *testing.B) { run(b, "ConvergeAndFailDynamic") }
func BenchmarkConvergeAndFailDamped(b *testing.B)  { run(b, "ConvergeAndFailDamped") }
