package bgp

// pathArena carves immutable path slices out of large reusable blocks.
// Export paths (the prepended announcement every Loc-RIB change
// produces) are by far the simulator's largest allocation site — one
// small slice per route change, about a million per 500-AS trial. All of
// them share one lifetime: references spread through Adj-RIB-Ins and
// in-flight updates, and every one dies at Simulator.Reset, when RIBs
// are cleared and the engine is drained. The arena exploits that:
// allocation is a bump pointer into the current block, and Reset rewinds
// to the first block, so a pooled simulator's steady-state trials
// allocate no path memory at all.
//
// Slices are carved with a full-capacity cap, so an append on a carved
// path can never bleed into its neighbor. The arena is single-threaded,
// like the Simulator that owns it.
type pathArena struct {
	blocks [][]ASN
	bi     int // index of the block currently carved from
	off    int // carve offset into blocks[bi]
}

// arenaBlockLen is the block size in path elements. Paths are short
// (mean ≈ network diameter), so one block serves thousands of exports.
const arenaBlockLen = 8192

// alloc returns a zeroed slice of n elements carved from the arena.
func (a *pathArena) alloc(n int) []ASN {
	if n > arenaBlockLen {
		// Oversized request: fall back to the heap rather than dedicating
		// block bookkeeping to a case that cannot occur for real AS paths.
		return make([]ASN, n)
	}
	if a.bi < len(a.blocks) && a.off+n > arenaBlockLen {
		a.bi++
		a.off = 0
	}
	if a.bi == len(a.blocks) {
		a.blocks = append(a.blocks, make([]ASN, arenaBlockLen))
	}
	s := a.blocks[a.bi][a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// prepend builds prependPath(as, p) in arena storage.
func (a *pathArena) prepend(as ASN, p Path) Path {
	s := a.alloc(len(p) + 1)
	s[0] = as
	copy(s[1:], p)
	return s
}

// rewind forgets every carved slice while keeping the blocks. Only legal
// when no live references remain — i.e. from Simulator.Reset, after RIBs
// are cleared and pending events discarded. Blocks are not zeroed: a
// stale read through a leaked reference would see old path data, which
// the reset invariant rules out.
func (a *pathArena) rewind() { a.bi, a.off = 0, 0 }
