package bgp

import (
	"strings"
	"testing"

	"bgpsim/internal/des"
	"bgpsim/internal/topology"
)

// These tests pin the sharded-execution contract from ARCHITECTURE.md
// ("Sharded engine"): sequenced sharding is byte-identical to the
// single-engine path for every scheme variant and every shard count,
// and concurrent sharding is deterministic per (seed, shard count).

func shardTestNet(t *testing.T) (*topology.Network, []int) {
	t.Helper()
	rng := des.NewRNG(11)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	return nw, topology.NearestNodes(nw, topology.GridCenter(nw), 4, nil)
}

// TestShardedSequencedMatchesSingle runs every scheme variant through
// the single engine and through sequenced sharding at several shard
// counts, requiring identical digests (convergence delay, every
// counter, every final route). One reused simulator Resets across all
// sharded configurations — including shard-count changes and the
// K=1 single-engine fallback — so mode transitions are covered too.
func TestShardedSequencedMatchesSingle(t *testing.T) {
	nw, fail := shardTestNet(t)
	reused, err := New(nw, equivalenceParams(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range resetVariants() {
		p := equivalenceParams(2, v.mutate)
		single, err := New(nw, p)
		if err != nil {
			t.Fatalf("%s: New: %v", v.name, err)
		}
		want := digestRun(t, single, nw, fail)
		for _, k := range []int{1, 2, 4} {
			ps := p
			ps.Shards = k
			if err := reused.Reset(ps); err != nil {
				t.Fatalf("%s k=%d: Reset: %v", v.name, k, err)
			}
			if k >= 2 && reused.sh == nil {
				t.Fatalf("%s k=%d: sharding silently disabled", v.name, k)
			}
			if k < 2 && reused.sh != nil {
				t.Fatalf("%s k=%d: expected single-engine path", v.name, k)
			}
			got := digestRun(t, reused, nw, fail)
			if got.summary != want.summary {
				t.Errorf("%s k=%d: sharded run diverged from single engine\nsingle:\n%s\nsharded:\n%s",
					v.name, k, want.summary, got.summary)
			}
		}
	}
}

// TestShardedConcurrentDeterministic pins the concurrent mode's
// determinism class: two runs with the same (seed, shard count) must
// produce byte-identical digests for every scheme variant, even though
// the schedule differs from the serial one.
func TestShardedConcurrentDeterministic(t *testing.T) {
	nw, fail := shardTestNet(t)
	for _, v := range resetVariants() {
		p := equivalenceParams(3, v.mutate)
		p.Shards = 4
		p.ShardConcurrent = true
		a, err := New(nw, p)
		if err != nil {
			t.Fatalf("%s: New: %v", v.name, err)
		}
		if a.sh == nil || a.sh.g.Sequenced() {
			t.Fatalf("%s: expected concurrent sharded mode", v.name)
		}
		da := digestRun(t, a, nw, fail)
		b, err := New(nw, p)
		if err != nil {
			t.Fatalf("%s: New: %v", v.name, err)
		}
		db := digestRun(t, b, nw, fail)
		if da.summary != db.summary {
			t.Errorf("%s: two concurrent runs with one seed diverged\nfirst:\n%s\nsecond:\n%s",
				v.name, da.summary, db.summary)
		}
	}
}

// TestShardedConcurrentRoutesMatchSerial checks that the concurrent
// mode converges to the same final routing tables as the serial engine
// for the policy-free default scheme: without damping the stable state
// is a fixed point of the (deterministic) decision process over final
// advertisements, independent of message timing. Counters and delays
// legitimately differ; only the route lines are compared.
func TestShardedConcurrentRoutesMatchSerial(t *testing.T) {
	nw, fail := shardTestNet(t)
	p := equivalenceParams(4, nil)
	serial, err := New(nw, p)
	if err != nil {
		t.Fatal(err)
	}
	want := routeLines(digestRun(t, serial, nw, fail).summary)
	pc := p
	pc.Shards = 4
	pc.ShardConcurrent = true
	conc, err := New(nw, pc)
	if err != nil {
		t.Fatal(err)
	}
	got := routeLines(digestRun(t, conc, nw, fail).summary)
	if got != want {
		t.Errorf("concurrent final routes diverged from serial\nserial:\n%s\nconcurrent:\n%s", want, got)
	}
}

// routeLines strips the counter header from a digest summary, leaving
// only the per-router final-route lines.
func routeLines(summary string) string {
	_, rest, _ := strings.Cut(summary, "\n")
	return rest
}

// TestShardedFallbacks pins the silent-fallback edges: shard counts are
// clamped to the router count, and a topology with no positive
// lookahead (zero link delays) runs on the single engine.
func TestShardedFallbacks(t *testing.T) {
	nw, fail := shardTestNet(t)

	p := equivalenceParams(5, nil)
	p.Shards = 1000 // far more shards than routers: clamp, still sharded
	sim, err := New(nw, p)
	if err != nil {
		t.Fatal(err)
	}
	if sim.sh == nil {
		t.Fatal("clamped shard count should still shard")
	}
	if got := sim.sh.g.NumShards(); got != nw.NumNodes() {
		t.Fatalf("shard count %d, want clamp to %d routers", got, nw.NumNodes())
	}
	single, err := New(nw, equivalenceParams(5, nil))
	if err != nil {
		t.Fatal(err)
	}
	want := digestRun(t, single, nw, fail)
	if got := digestRun(t, sim, nw, fail); got.summary != want.summary {
		t.Errorf("clamped sharded run diverged from single engine")
	}

	pz := equivalenceParams(5, nil)
	pz.Shards = 4
	pz.ExtDelay, pz.IntDelay = 0, 0 // no positive lookahead anywhere
	zero, err := New(nw, pz)
	if err != nil {
		t.Fatal(err)
	}
	if zero.sh != nil {
		t.Fatal("zero link delays must fall back to the single engine")
	}
}
