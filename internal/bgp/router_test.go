package bgp

import (
	"testing"
	"time"

	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
)

// strictParams removes all randomness in timing so tests can assert
// exact instants: constant MRAI, no jitter, no origination stagger,
// fixed 10ms processing.
func strictParams(mraiVal time.Duration) Params {
	p := DefaultParams()
	p.MRAI = mrai.Constant(mraiVal)
	p.JitterTimers = false
	p.OriginationSpread = 0
	p.ProcMin, p.ProcMax = 10*time.Millisecond, 10*time.Millisecond
	return p
}

// lineSim builds a 3-node line 0-1-2 and returns the simulator.
func lineSim(t *testing.T, p Params) *Simulator {
	t.Helper()
	nw := topology.NewNetwork(3)
	_ = nw.AddLink(0, 1, false)
	_ = nw.AddLink(1, 2, false)
	sim, err := New(nw, p)
	if err != nil {
		t.Fatal(err)
	}
	sim.widenDestsForTest(128)
	return sim
}

// setLocForTest installs path as dest's Loc-RIB winner learned from peer
// node from (-1 for a locally originated route), maintaining the
// bestSlot provenance the packed Loc-RIB derives entries from.
func (r *router) setLocForTest(dest ASN, path Path, from NodeID) {
	if from == -1 {
		r.loc.set(dest, r.sim.tab.emptyRef)
		r.bestSlot[dest] = bestSelf
		return
	}
	r.loc.set(dest, r.sim.tab.intern(path))
	r.bestSlot[dest] = int16(r.slotOf[from])
}

// advertisedPath returns what the router last announced to the slot's
// peer for dest.
func (r *router) advertisedPath(slot int, dest ASN) (Path, bool) {
	ref := r.advertised[slot].get(dest)
	return r.sim.tab.path(ref), ref != 0
}

func TestDesiredAdvertRules(t *testing.T) {
	// Router 1 (AS 1) peers: slot 0 -> node 0 (AS 0), slot 1 -> node 2 (AS 2).
	sim := lineSim(t, strictParams(time.Second))
	r := sim.routers[1]

	// No route at all.
	if got, _ := r.desiredAdvert(7, 0); got != nil {
		t.Errorf("no-route advert = %v", got)
	}

	// Route learned from node 0: advertise to node 2 with own AS
	// prepended; never back to node 0 (split horizon).
	r.setLocForTest(7, Path{0, 7}, 0)
	if got, _ := r.desiredAdvert(7, 0); got != nil {
		t.Errorf("split horizon violated: %v", got)
	}
	got, gotRef := r.desiredAdvert(7, 1)
	if !pathsEqual(got, Path{1, 0, 7}) {
		t.Errorf("external advert = %v, want [1 0 7]", got)
	}
	if gotRef == 0 || !pathsEqual(r.sim.tab.path(gotRef), got) {
		t.Errorf("advert ref %d does not intern the advertised path", gotRef)
	}

	// Peer's AS already on the path: suppress.
	r.setLocForTest(8, Path{0, 2, 8}, 0)
	if got, _ := r.desiredAdvert(8, 1); got != nil {
		t.Errorf("loop advert to peer on path: %v", got)
	}

	// Own prefix: prepend own AS only.
	r.setLocForTest(1, nil, -1)
	if got, _ := r.desiredAdvert(1, 1); !pathsEqual(got, Path{1}) {
		t.Errorf("own prefix advert = %v, want [1]", got)
	}
}

func TestDesiredAdvertIBGPRules(t *testing.T) {
	// AS 0 has routers 0,1 (IBGP); router 1 also peers externally with 2.
	nw := topology.NewNetwork(3)
	nw.SetAS(1, 0)
	nw.SetAS(2, 2)
	_ = nw.AddLink(0, 1, true)
	_ = nw.AddLink(1, 2, false)
	sim, err := New(nw, strictParams(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	sim.widenDestsForTest(128)
	r1 := sim.routers[1] // slots: 0 -> node 0 (internal), 1 -> node 2 (external)

	// EBGP-learned route goes to the IBGP peer unchanged.
	r1.setLocForTest(9, Path{2, 9}, 2)
	if got, _ := r1.desiredAdvert(9, 0); !pathsEqual(got, Path{2, 9}) {
		t.Errorf("IBGP advert = %v, want unchanged [2 9]", got)
	}
	// ...but not back to the external peer it came from.
	if got, _ := r1.desiredAdvert(9, 1); got != nil {
		t.Errorf("advert back to source: %v", got)
	}

	// IBGP-learned route must not be relayed to IBGP peers.
	r1.setLocForTest(5, Path{7, 5}, 0) // slot 0 is the internal peer
	if got, _ := r1.desiredAdvert(5, 0); got != nil {
		t.Errorf("IBGP relay to source: %v", got)
	}
	// It IS advertised externally, with own AS prepended.
	if got, _ := r1.desiredAdvert(5, 1); !pathsEqual(got, Path{0, 7, 5}) {
		t.Errorf("external advert of IBGP route = %v, want [0 7 5]", got)
	}
}

func TestMRAIGatesSecondAnnouncement(t *testing.T) {
	const m = 10 * time.Second
	sim := lineSim(t, strictParams(m))
	r1 := sim.routers[1]

	// Originate at t=0: first announcement is immediate, timer arms.
	r1.originate(1)
	slotTo2 := r1.slotOf[2]
	if r1.nextSend[slotTo2] != m {
		t.Fatalf("nextSend = %v, want %v (no jitter)", r1.nextSend[slotTo2], m)
	}
	if got, _ := r1.advertisedPath(slotTo2, 1); !pathsEqual(got, Path{1}) {
		t.Fatalf("first announcement not sent: %v", got)
	}

	// A new route appears while the timer runs: it must wait until t=m.
	r1.adjIn.set(7, 0, Path{0, 7})
	if !r1.runDecision(7) {
		t.Fatal("decision did not change")
	}
	r1.markPendingAll(7)
	r1.flushAll()
	if _, sent := r1.advertisedPath(slotTo2, 7); sent {
		t.Fatal("announcement escaped the MRAI gate")
	}
	// Coalesced mode records the retry as a virtual timer; the per-slot
	// baseline arms a real event. Either way the retry must sit at t=m.
	if r1.coalesce {
		if at := r1.flushAt[slotTo2]; at != m {
			t.Fatalf("virtual flush timer at %v, want %v", at, m)
		}
	} else {
		if r1.flushEv[slotTo2] == nil {
			t.Fatal("no deferred flush scheduled")
		}
		if at := r1.flushEv[slotTo2].At(); at != m {
			t.Fatalf("flush scheduled at %v, want %v", at, m)
		}
	}

	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got, _ := r1.advertisedPath(slotTo2, 7); !pathsEqual(got, Path{1, 0, 7}) {
		t.Fatalf("deferred announcement = %v, want [1 0 7]", got)
	}
	// The deferred send rearmed the timer from t=m.
	if r1.nextSend[slotTo2] != 2*m {
		t.Errorf("timer after deferred send = %v, want %v", r1.nextSend[slotTo2], 2*m)
	}
}

func TestWithdrawalBypassesMRAI(t *testing.T) {
	const m = 10 * time.Second
	sim := lineSim(t, strictParams(m))
	r1 := sim.routers[1]
	slotTo2 := r1.slotOf[2]

	r1.originate(1) // timer now armed until t=m
	r1.adjIn.set(7, 0, Path{0, 7})
	r1.runDecision(7)
	r1.markPendingAll(7)
	// Route dies again before the timer expires: net effect nothing was
	// ever advertised, so nothing (not even a withdrawal) should go out.
	r1.adjIn.remove(7, 0)
	r1.runDecision(7)
	r1.flushAll()
	if _, ok := r1.advertisedPath(slotTo2, 7); ok {
		t.Fatal("phantom advertisement")
	}

	// Now advertise something for real, then kill it while the timer runs:
	// the withdrawal must leave immediately, not at timer expiry.
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Advance past the origination-armed timers so the announcement for
	// dest 8 goes out immediately.
	if err := sim.RunUntil(2 * m); err != nil {
		t.Fatal(err)
	}
	now := sim.Now()
	r1.adjIn.set(8, 0, Path{0, 8})
	r1.runDecision(8)
	r1.markPendingAll(8)
	r1.flushAll() // sends at `now`, rearms timer to now+m
	if got, _ := r1.advertisedPath(slotTo2, 8); !pathsEqual(got, Path{1, 0, 8}) {
		t.Fatal("announcement for dest 8 missing")
	}
	before := sim.col.TotalMessages
	r1.adjIn.remove(8, 0)
	r1.runDecision(8)
	r1.markPendingAll(8)
	r1.flushAll()
	if _, ok := r1.advertisedPath(slotTo2, 8); ok {
		t.Fatal("withdrawal blocked by MRAI")
	}
	if sim.col.TotalMessages == before {
		t.Fatal("no withdrawal message sent")
	}
	if r1.nextSend[slotTo2] <= now {
		t.Error("timer was not armed by the announcement")
	}
}

func TestDuplicateAnnouncementsSuppressed(t *testing.T) {
	sim := lineSim(t, strictParams(100*time.Millisecond))
	r1 := sim.routers[1]
	slotTo2 := r1.slotOf[2]
	r1.originate(1)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	sent := sim.col.TotalMessages
	// Re-marking the same destination with an unchanged route must not
	// produce a message.
	r1.markPendingAll(1)
	r1.flushAll()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sim.col.TotalMessages != sent {
		t.Errorf("duplicate advert sent: %d -> %d", sent, sim.col.TotalMessages)
	}
	_ = slotTo2
}

func TestProcessingSerializesUpdates(t *testing.T) {
	// Two updates arriving together at a router with 10ms processing must
	// finish at 10ms and 20ms after arrival, not both at 10ms.
	sim := lineSim(t, strictParams(time.Second))
	r1 := sim.routers[1]
	r1.enqueue(Update{From: 0, Dest: 50, Path: Path{0, 50}})
	r1.enqueue(Update{From: 0, Dest: 51, Path: Path{0, 51}})
	if !r1.busy {
		t.Fatal("router idle with queued work")
	}
	// At 15ms only the first update is done; router 1 is still busy with
	// the second (downstream routers have not even received anything yet).
	if err := sim.RunUntil(15 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sim.col.TotalProcessed != 1 {
		t.Fatalf("processed = %d at 15ms, want 1 (serial CPU)", sim.col.TotalProcessed)
	}
	if !r1.busy {
		t.Fatal("router idle mid-service")
	}
	if err := sim.RunUntil(25 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sim.col.TotalProcessed != 2 {
		t.Fatalf("processed = %d at 25ms, want 2", sim.col.TotalProcessed)
	}
	if r1.busy {
		t.Fatal("router busy after draining")
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadRouterIgnoresTraffic(t *testing.T) {
	sim := lineSim(t, strictParams(time.Second))
	r1 := sim.routers[1]
	r1.kill()
	r1.enqueue(Update{From: 0, Dest: 50, Path: Path{0, 50}})
	if r1.busy || r1.inbox.Len() != 0 {
		t.Error("dead router accepted work")
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPeerDownInvalidatesRoutesAndCleansState(t *testing.T) {
	sim := lineSim(t, strictParams(100*time.Millisecond))
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	r1 := sim.routers[1]
	slotTo0 := r1.slotOf[0]
	if _, ok := r1.loc.getRef(0); !ok {
		t.Fatal("no route to AS 0 before failure")
	}
	sim.routers[0].kill()
	r1.peerDown(slotTo0)
	if _, ok := r1.loc.getRef(0); ok {
		t.Error("route via dead peer survived")
	}
	if r1.peerAlive[slotTo0] {
		t.Error("peer still alive")
	}
	if r1.advertised[slotTo0].any() || r1.pending[slotTo0].any() {
		t.Error("per-slot state not cleared")
	}
	// Double peerDown is a no-op.
	r1.peerDown(slotTo0)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Node 2 must have learned the withdrawal of AS 0.
	if _, ok := sim.routers[2].loc.getRef(0); ok {
		t.Error("withdrawal did not propagate to node 2")
	}
}

func TestReceiverSideLoopDetection(t *testing.T) {
	sim := lineSim(t, strictParams(100*time.Millisecond))
	r1 := sim.routers[1]
	// A path containing the local AS must be treated as a withdrawal of
	// the peer's previous route.
	r1.adjIn.set(9, 0, Path{0, 9})
	r1.runDecision(9)
	r1.enqueue(Update{From: 0, Dest: 9, Path: Path{0, 1, 9}})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := r1.adjIn.get(9, 0); ok {
		t.Error("looped path stored in Adj-RIB-In")
	}
	if _, ok := r1.loc.getRef(9); ok {
		t.Error("looped path selected")
	}
}

func TestSnapshotAccounting(t *testing.T) {
	sim := lineSim(t, strictParams(time.Second))
	r1 := sim.routers[1]
	r1.enqueue(Update{From: 0, Dest: 50, Path: Path{0, 50}})
	r1.enqueue(Update{From: 0, Dest: 51, Path: Path{0, 51}})
	r1.enqueue(Update{From: 0, Dest: 52, Path: Path{0, 52}})
	// One is in service, two queued.
	snap := r1.snapshot(sim.Now())
	if snap.QueueLen != 2 {
		t.Errorf("QueueLen = %d, want 2", snap.QueueLen)
	}
	wantWork := 2 * sim.params.MeanProc()
	if snap.UnfinishedWork != wantWork {
		t.Errorf("UnfinishedWork = %v, want %v", snap.UnfinishedWork, wantWork)
	}
	if snap.Degree != 2 {
		t.Errorf("Degree = %d", snap.Degree)
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r1.snapshot(sim.Now()).QueueLen; got != 0 {
		t.Errorf("QueueLen after drain = %d", got)
	}
}

func TestSnapshotUtilizationAndRate(t *testing.T) {
	// White-box: craft the accounting directly, since the MRAI policy's
	// own snapshots roll the measurement window during a live run.
	sim := lineSim(t, strictParams(time.Second))
	r1 := sim.routers[1]
	r1.busyAccum = 50 * time.Millisecond
	r1.lastSnapTime = 0
	r1.lastSnapBusy = 0
	r1.msgsSinceSnap = 20
	snap := r1.snapshot(100 * time.Millisecond)
	if snap.Utilization != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", snap.Utilization)
	}
	if snap.MsgRate != 200 {
		t.Errorf("MsgRate = %v, want 200/s", snap.MsgRate)
	}
	// The window rolled: an immediate second snapshot sees ~zero.
	snap2 := r1.snapshot(200 * time.Millisecond)
	if snap2.Utilization != 0 || snap2.MsgRate != 0 {
		t.Errorf("window did not roll: util=%v rate=%v", snap2.Utilization, snap2.MsgRate)
	}
	// Zero-elapsed snapshot must not divide by zero.
	snap3 := r1.snapshot(200 * time.Millisecond)
	if snap3.Utilization != 0 {
		t.Errorf("zero-elapsed utilization = %v", snap3.Utilization)
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.MRAI = nil },
		func(p *Params) { p.Queue = QueueDiscipline(99) },
		func(p *Params) { p.ProcMin = -1 },
		func(p *Params) { p.ProcMax = p.ProcMin - 1 },
		func(p *Params) { p.ExtDelay = -1 },
		func(p *Params) { p.IntDelay = -1 },
		func(p *Params) { p.DetectDelay = -1 },
		func(p *Params) { p.OriginationSpread = -1 },
		func(p *Params) { p.FlapGate = -1 },
	}
	for i, mutate := range mutations {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestQueueDisciplineString(t *testing.T) {
	if QueueFIFO.String() != "fifo" || QueueBatched.String() != "batched" ||
		QueueRouterBatch.String() != "router-batch" {
		t.Error("discipline names wrong")
	}
	if QueueDiscipline(9).String() == "" {
		t.Error("unknown discipline empty")
	}
}

func TestMeanProc(t *testing.T) {
	p := DefaultParams()
	if got := p.MeanProc(); got != 15500*time.Microsecond {
		t.Errorf("MeanProc = %v, want 15.5ms", got)
	}
}
