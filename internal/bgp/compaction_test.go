package bgp

import (
	"testing"

	"bgpsim/internal/topology"
)

// forceCompaction lowers the sweep thresholds so any quiescent table
// compacts, restoring the defaults on cleanup.
func forceCompaction(t *testing.T) {
	t.Helper()
	minPaths, deadFrac := CompactMinPaths, CompactDeadFraction
	CompactMinPaths, CompactDeadFraction = 1, 0
	t.Cleanup(func() { CompactMinPaths, CompactDeadFraction = minPaths, deadFrac })
}

// TestCompactionBehaviorNeutral pins that the quiescence path-table
// compaction sweep changes nothing observable: a run that compacts (and
// renumbers every live ref) produces byte-identical figures and final
// routes to one that never compacts, in both shared-table modes, and the
// sweep itself shrinks the table.
func TestCompactionBehaviorNeutral(t *testing.T) {
	nw, _ := oracleTopology(t)
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 4, nil)

	for _, shards := range []int{1, 4} {
		p := equivalenceParams(5, nil)
		p.Shards = shards

		plain, err := New(nw, p)
		if err != nil {
			t.Fatal(err)
		}
		want := digestRun(t, plain, nw, fail)
		if got := plain.PathTableStats(); got.Compactions != 0 {
			t.Fatalf("shards=%d: compaction triggered below thresholds: %+v", shards, got)
		}

		forceCompaction(t)
		compacted, err := New(nw, p)
		if err != nil {
			t.Fatal(err)
		}
		got := digestRun(t, compacted, nw, fail)
		if got.summary != want.summary {
			t.Errorf("shards=%d: compacted run diverged\nplain:\n%s\ncompacted:\n%s",
				shards, want.summary, got.summary)
		}
		st := compacted.PathTableStats()
		if st.Compactions != 1 {
			t.Fatalf("shards=%d: expected exactly one sweep, got %+v", shards, st)
		}
		CompactMinPaths, CompactDeadFraction = 1<<16, 0.5
	}
}

// TestCompactionShrinksTable checks the sweep's actual effect: right
// after a compacted phase 1, the table holds only live paths, far fewer
// than the exploration storm registered.
func TestCompactionShrinksTable(t *testing.T) {
	nw, _ := oracleTopology(t)

	p := equivalenceParams(5, nil)
	sim, err := New(nw, p)
	if err != nil {
		t.Fatal(err)
	}
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	before := sim.PathTableStats()
	if before.Live >= before.Registered {
		t.Fatalf("no dead paths to reclaim: %+v", before)
	}

	forceCompaction(t)
	sim.maybeCompactPaths()
	after := sim.PathTableStats()
	if after.Compactions != 1 {
		t.Fatalf("sweep did not run: %+v", after)
	}
	if after.Registered != before.Live || after.Live != before.Live {
		t.Fatalf("compacted table should hold exactly the live set: before %+v, after %+v",
			before, after)
	}
	// The converged state must survive the renumbering intact.
	for _, dest := range sim.Destinations() {
		for id := 0; id < nw.NumNodes(); id++ {
			if _, ok := sim.LocPath(id, dest); !ok && sim.Alive(id) {
				t.Fatalf("n%d lost its route to d%d across compaction", id, dest)
			}
		}
	}
}

// TestWarmStartMatchesCompactedCold closes the triangle: a cold run that
// compacts at quiescence still matches the warm-started run bit for bit.
func TestWarmStartMatchesCompactedCold(t *testing.T) {
	nw, _ := oracleTopology(t)
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 4, nil)

	p := equivalenceParams(3, nil)
	forceCompaction(t)
	cold, err := New(nw, p)
	if err != nil {
		t.Fatal(err)
	}
	want := warmDigest(t, cold, nw, fail)
	if st := cold.PathTableStats(); st.Compactions != 1 {
		t.Fatalf("cold run did not compact: %+v", st)
	}

	p.WarmStart = true
	warm, err := New(nw, p)
	if err != nil {
		t.Fatal(err)
	}
	got := warmDigest(t, warm, nw, fail)
	if got != want {
		t.Errorf("warm start diverged from compacted cold start\ncold:\n%s\nwarm:\n%s", want, got)
	}
}
