// Package bgp implements the BGP-4 path-vector model the paper simulates
// with SSFNet: per-destination route advertisement and withdrawal,
// Adj-RIB-In / Loc-RIB with a shortest-AS-path decision process, per-peer
// MRAI timers with RFC 1771 jitter, a serial CPU with configurable
// per-update processing delay, EBGP plus full-mesh IBGP for multi-router
// ASes, and the paper's batched update-processing scheme.
package bgp

import "time"

// ASN identifies an autonomous system; one prefix (destination) is
// originated per AS and identified by the originating ASN.
type ASN = int

// NodeID identifies a router.
type NodeID = int

// Path is an AS-level path to a destination, nearest AS first. The empty
// path denotes an intra-AS (locally originated or IBGP-learned) route;
// a nil path inside an Update denotes a withdrawal.
type Path = []ASN

// Update is one route-level BGP message: an announcement (Path != nil)
// or a withdrawal (Path == nil) for one destination.
type Update struct {
	From NodeID // sending router
	Dest ASN    // destination AS the route is for
	Path Path   // announced AS path; nil means withdrawal

	// Ref is the sending simulator's interned handle for Path (zero for
	// withdrawals). Updates built outside the simulator may leave it
	// zero; the receive path interns the foreign path on arrival. Ref is
	// a pure acceleration — every comparison that consults it falls back
	// to pathsEqual — so a zero Ref can change performance, never
	// behavior.
	Ref routeRef
}

// IsWithdrawal reports whether the update withdraws the route.
func (u Update) IsWithdrawal() bool { return u.Path == nil }

// pathContains reports whether as appears on p.
func pathContains(p Path, as ASN) bool {
	for _, a := range p {
		if a == as {
			return true
		}
	}
	return false
}

// pathsEqual reports whether two paths are identical (nil != empty).
func pathsEqual(a, b Path) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if len(a) != len(b) {
		return false
	}
	if len(a) > 0 && &a[0] == &b[0] {
		// Same backing array: paths are immutable once created, so the
		// shared export-cache slice a router re-advertises compares equal
		// without an element walk.
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// clonePath copies a path; announcements own their path slices.
func clonePath(p Path) Path {
	if p == nil {
		return nil
	}
	out := make(Path, len(p))
	copy(out, p)
	return out
}

// prependPath returns a new path with as in front of p.
func prependPath(as ASN, p Path) Path {
	out := make(Path, 0, len(p)+1)
	out = append(out, as)
	out = append(out, p...)
	return out
}

// Peer describes one BGP session endpoint from a router's point of view.
type Peer struct {
	Node     NodeID        // the peer router
	AS       ASN           // the peer's AS number
	Internal bool          // true for IBGP (same-AS) sessions
	Delay    time.Duration // one-way propagation delay of the session link
}
