package bgp

import (
	"testing"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/topology"
)

func TestDampingConfigValidate(t *testing.T) {
	if err := DefaultDamping().Validate(); err != nil {
		t.Fatalf("default damping invalid: %v", err)
	}
	bad := []DampingConfig{
		{Penalty: 0, SuppressThreshold: 2000, ReuseThreshold: 750, HalfLife: time.Second},
		{Penalty: 1000, SuppressThreshold: 500, ReuseThreshold: 750, HalfLife: time.Second},
		{Penalty: 1000, SuppressThreshold: 2000, ReuseThreshold: 0, HalfLife: time.Second},
		{Penalty: 1000, SuppressThreshold: 2000, ReuseThreshold: 750, HalfLife: 0},
		{Penalty: 1000, SuppressThreshold: 2000, ReuseThreshold: 750, HalfLife: time.Second, Ceiling: -1},
	}
	for i, c := range bad {
		c := c
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDampEntryDecayHalves(t *testing.T) {
	cfg := DefaultDamping()
	e := &dampEntry{penalty: 2000, lastDecay: 0}
	e.decay(des.Time(cfg.HalfLife), cfg)
	if e.penalty < 999 || e.penalty > 1001 {
		t.Errorf("penalty after one half-life = %v, want ≈1000", e.penalty)
	}
	e.decay(des.Time(cfg.HalfLife), cfg) // same instant: no further decay
	if e.penalty < 999 || e.penalty > 1001 {
		t.Errorf("penalty decayed at same instant: %v", e.penalty)
	}
	// Tiny residue snaps to zero.
	e2 := &dampEntry{penalty: 10, lastDecay: 0}
	e2.decay(des.Time(10*cfg.HalfLife), cfg)
	if e2.penalty != 0 {
		t.Errorf("residue = %v, want 0", e2.penalty)
	}
}

func TestPenalizeSuppressesAfterRepeatedFlaps(t *testing.T) {
	nw := buildLine(t, 3)
	p := strictParams(time.Second)
	p.Damping = DefaultDamping()
	sim := mustSim(t, nw, p)
	r1 := sim.routers[1]
	if r1.damper == nil {
		t.Fatal("damper not installed")
	}
	// First flap: penalty 1000, below threshold.
	if r1.penalize(9, 0) {
		t.Error("suppressed after one flap")
	}
	if r1.damper.isSuppressed(9, 0) {
		t.Error("isSuppressed after one flap")
	}
	// Second flap at the same instant: 2000 is not > 2000; third crosses.
	if r1.penalize(9, 0) {
		t.Error("suppressed after two flaps (2000 is not > threshold)")
	}
	if !r1.penalize(9, 0) {
		t.Error("not suppressed after three flaps")
	}
	if !r1.damper.isSuppressed(9, 0) {
		t.Error("isSuppressed false after suppression")
	}
	// A suppressed route is invisible to the decision process.
	r1.adjIn.set(9, 0, Path{0, 9})
	if _, _, ok := decide(r1.adjIn, 9, r1.peers, r1.peerAlive, r1.damper, nil, r1.id); ok {
		t.Error("suppressed route selected")
	}
	// The reuse event eventually lifts suppression and reinstates it.
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if r1.damper.isSuppressed(9, 0) {
		t.Error("suppression never lifted")
	}
	if e, ok := r1.locEntryAt(9); !ok || e.from != 0 {
		t.Errorf("route not reinstated after reuse: %+v ok=%v", e, ok)
	}
}

func TestPenaltyCeilingBoundsSuppression(t *testing.T) {
	nw := buildLine(t, 3)
	p := strictParams(time.Second)
	p.Damping = DefaultDamping()
	sim := mustSim(t, nw, p)
	r1 := sim.routers[1]
	for i := 0; i < 100; i++ {
		r1.penalize(9, 0)
	}
	e := r1.damper.entry(9, 0)
	if e.penalty > p.Damping.ceiling() {
		t.Errorf("penalty %v exceeds ceiling %v", e.penalty, p.Damping.ceiling())
	}
	// Even after heavy flapping, suppression lifts in bounded time:
	// ceiling 8000 -> 750 is log2(8000/750) ≈ 3.4 half-lives.
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if r1.damper.isSuppressed(9, 0) {
		t.Error("suppression did not end")
	}
	if sim.Now() > des.Time(5*p.Damping.HalfLife) {
		t.Errorf("reuse took %v, want < 5 half-lives", sim.Now())
	}
}

func TestDampingDelaysRecoveryReconvergence(t *testing.T) {
	// The classic result (Mao et al.) concerns flap-and-return: a failure
	// withdraws routes (one flap) and the subsequent recovery re-announces
	// them (another flap), pushing penalties over the suppression
	// threshold exactly when the routes become valid again. With a
	// deployment-style long half-life, the network reaches its final
	// state only when the reuse timers fire — far later than without
	// damping. (Under *permanent* failures, short-window damping can even
	// shorten convergence by curbing exploration; see
	// TestDampedRunStillReachesSteadyState.)
	rng := des.NewRNG(61)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 6, nil)

	run := func(damping *DampingConfig) time.Duration {
		p := fastParams(61)
		p.Damping = damping
		sim := mustSim(t, nw.Clone(), p)
		if _, err := sim.ConvergeAndFail(fail); err != nil {
			t.Fatal(err)
		}
		recoverAt := sim.Now() + SettleMargin
		sim.ScheduleRecovery(recoverAt, fail)
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		assertShortestPaths(t, sim) // final state must be correct either way
		return sim.Now() - recoverAt
	}
	plain := run(nil)
	damped := run(&DampingConfig{
		Penalty:           1000,
		SuppressThreshold: 1500, // two flaps (withdraw + re-announce) suppress
		ReuseThreshold:    750,
		HalfLife:          60 * time.Second, // deployment-like window
	})
	if damped <= plain {
		t.Errorf("damping did not delay recovery re-convergence: %v vs plain %v", damped, plain)
	}
	// Suppressed routes come back only after a reuse window.
	if damped < 30*time.Second {
		t.Errorf("damped recovery %v implausibly short for a 60s half-life", damped)
	}
	t.Logf("recovery reconvergence: plain=%v damped=%v", plain, damped)
}

func TestDampedRunStillReachesSteadyState(t *testing.T) {
	// With damping, transiently suppressed routes must be reinstated, so
	// the final state still satisfies the shortest-path invariant.
	rng := des.NewRNG(67)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams(67)
	p.Damping = DefaultDamping()
	sim := mustSim(t, nw, p)
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 3, nil)
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	assertShortestPaths(t, sim)
}

func TestReviveResetsDamping(t *testing.T) {
	nw := buildLine(t, 3)
	p := strictParams(time.Second)
	p.Damping = DefaultDamping()
	sim := mustSim(t, nw, p)
	r1 := sim.routers[1]
	r1.penalize(9, 0)
	r1.penalize(9, 0)
	r1.penalize(9, 0)
	r1.kill()
	r1.revive()
	if r1.damper.isSuppressed(9, 0) {
		t.Error("damping state survived reboot")
	}
}
