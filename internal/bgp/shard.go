package bgp

import (
	"sort"
	"strconv"

	"bgpsim/internal/des"
	"bgpsim/internal/metrics"
	"bgpsim/internal/topology"
)

// shardRuntime is the Simulator's sharded execution state: the engine
// group, the node→shard assignment from the topology partitioner, the
// per-epoch cross-shard message buffers, and — in concurrent mode — the
// shard-local collectors, random streams, and path tables the sharding
// contract requires (DESIGN.md "Sharding and lookahead contract").
//
// Cross-shard deliveries never go straight onto the destination engine.
// The sender appends an xmsg to its own shard's buffer (race-free: one
// writer per buffer) and the group's drain hook moves the buffers into
// destination queues at each lookahead barrier:
//
//   - Sequenced mode reserves the message's global sequence number from
//     the shared counter at send time — the very draw the single-engine
//     run would have made — and the barrier insertion (PostForeign)
//     files it under that key, so the merged schedule is the serial
//     schedule. No sorting is needed; the (at, seq) key is the order.
//
//   - Concurrent mode stamps a per-source-shard counter instead, and
//     drain sorts all buffered messages by (arrival, send time, source
//     shard, counter) — a total order that does not depend on goroutine
//     timing — before scheduling them, so destination-side sequence
//     numbers are assigned deterministically.
type shardRuntime struct {
	g      *des.Group
	assign []int // node id -> shard
	cut    int   // cut links under assign (diagnostics)

	// Concurrent-mode shard-local state; nil slices in sequenced mode,
	// where every router aliases the Simulator's own col/rng/tab.
	cols []*metrics.Collector
	rngs []*des.RNG
	tabs []*pathTab

	out    [][]xmsg // cross-shard buffers, indexed by source shard
	outSeq []uint64 // concurrent mode: per-source-shard send counters
	pools  []deliveryPool
	all    []xmsg // drain scratch for the concurrent-mode sort
}

// xmsg is one buffered cross-shard update delivery.
type xmsg struct {
	from, to *router
	at       des.Time // arrival time (send + link delay)
	sendAt   des.Time // send time, part of the concurrent sort key
	src      int      // source shard, part of the concurrent sort key
	seq      uint64   // reserved global seq (sequenced) / source counter
	u        Update
}

// newShardRuntime builds the sharded execution state for k shards over
// the given node→shard assignment (computed once per (network, k) and
// reused across Reset).
func newShardRuntime(s *Simulator, k int, look des.Time, sequenced bool, assign []int) *shardRuntime {
	sh := &shardRuntime{
		g:      des.NewGroup(k, look, sequenced),
		assign: assign,
		out:    make([][]xmsg, k),
		outSeq: make([]uint64, k),
		pools:  make([]deliveryPool, k),
	}
	sh.cut = topology.CutEdges(s.net, sh.assign)
	if !sequenced {
		sh.cols = make([]*metrics.Collector, k)
		sh.tabs = make([]*pathTab, k)
		sh.rngs = make([]*des.RNG, k)
		for i := 0; i < k; i++ {
			sh.cols[i] = metrics.NewCollector(s.net.NumNodes())
			sh.tabs[i] = &pathTab{}
		}
	}
	return sh
}

// reset rewinds the runtime for a new trial: engines, buffers, and (in
// concurrent mode) the shard-local collectors and path tables. The
// shard random streams are re-split from the trial's master RNG, which
// must be freshly seeded.
func (sh *shardRuntime) reset(master *des.RNG) {
	sh.g.Reset()
	sh.g.SetDrain(sh.drain)
	for i := range sh.out {
		sh.out[i] = sh.out[i][:0]
		sh.outSeq[i] = 0
	}
	for i := range sh.cols {
		sh.cols[i].Reset()
		sh.tabs[i].reset()
		sh.rngs[i] = master.Split("shard" + strconv.Itoa(i))
	}
}

// reseed rewinds the concurrent-mode shard random streams in place from
// a freshly reseeded master, re-deriving exactly the seeds reset
// installed. In-place matters: every router caches a pointer to its
// shard's stream (bindContext), so the streams must be rewound, not
// replaced. No-op in sequenced mode, where rngs is nil and every router
// shares the master stream.
func (sh *shardRuntime) reseed(master *des.RNG) {
	for i := range sh.rngs {
		sh.rngs[i].Reseed(master.SplitSeed("shard" + strconv.Itoa(i)))
	}
}

// lookahead returns the conservative lookahead for the partition: the
// minimum link delay over cut links — the soonest any cross-shard
// message can arrive after being sent. A partition with no cut links
// gets the external link delay as a plain epoch granularity. Returns 0
// (meaning "sharding unavailable") when some cut link has a
// non-positive delay.
func shardLookahead(net *topology.Network, assign []int, p Params) des.Time {
	look := des.Time(0)
	for _, l := range net.Links() {
		if assign[l.A] == assign[l.B] {
			continue
		}
		d := p.ExtDelay
		if l.Internal {
			d = p.IntDelay
		}
		if d <= 0 {
			return 0
		}
		if look == 0 || d < look {
			look = d
		}
	}
	if look == 0 {
		look = p.ExtDelay
	}
	return look
}

// post buffers one cross-shard delivery. Called from the sending
// router's execution context: the sequenced driver, a concurrent shard
// goroutine (writing only its own shard's buffer), or a control handler
// at a barrier.
func (sh *shardRuntime) post(from, to *router, at des.Time, u Update) {
	m := xmsg{from: from, to: to, at: at, sendAt: from.now(), src: from.shard, u: u}
	if sh.g.Sequenced() {
		m.seq = sh.g.ReserveSeq()
	} else {
		sh.outSeq[from.shard]++
		m.seq = sh.outSeq[from.shard]
		// The ref points into the sender's shard-local path table; the
		// receiver re-interns the (immutable, shared-memory) path into
		// its own. Refs are pure acceleration, so this costs a lookup,
		// never correctness.
		m.u.Ref = 0
	}
	sh.out[from.shard] = append(sh.out[from.shard], m)
}

// drain is the group's barrier hook: it files every buffered message
// into its destination shard's queue. All engines are paused here, so
// touching any shard's engine and delivery pool is race-free.
func (sh *shardRuntime) drain() {
	if sh.g.Sequenced() {
		for si := range sh.out {
			for _, m := range sh.out[si] {
				d := sh.pools[m.to.shard].take()
				d.from, d.to, d.u = m.from, m.to, m.u
				sh.g.PostForeign(m.to.shard, m.at, m.seq, d)
			}
			sh.out[si] = sh.out[si][:0]
		}
		return
	}
	all := sh.all[:0]
	for si := range sh.out {
		all = append(all, sh.out[si]...)
		sh.out[si] = sh.out[si][:0]
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.sendAt != b.sendAt {
			return a.sendAt < b.sendAt
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for i := range all {
		m := &all[i]
		d := sh.pools[m.to.shard].take()
		d.from, d.to, d.u = m.from, m.to, m.u
		sh.g.Shard(m.to.shard).ScheduleRunnerAt(m.at, d)
	}
	sh.all = all
}
