package bgp

import (
	"sync/atomic"
	"time"

	"bgpsim/internal/profiling"
)

// Phase accounting splits the wall-clock cost of the standard experiment
// flow (ConvergeAndFail) into its two phases:
//
//   - setup: initial convergence — ConvergeInitial, whether simulated
//     event-by-event or installed from the snapshot backend;
//   - storm: the post-failure exploration storm — the run from failure
//     scheduling to quiescence. The SettleMargin gap before the failure
//     fires is event-free and costs the event-driven engine nothing, so
//     its inclusion does not distort the phase.
//
// Counters are process-wide and atomic so benchmark loops can drain
// them with TakePhaseNs around the timed region and report setup-ns/op
// and storm-ns/op alongside the aggregate ns/op. The split is pure
// observation: it never changes scheduling, ordering, or output.
var (
	phaseSetupNs atomic.Int64
	phaseStormNs atomic.Int64
)

// TakePhaseNs returns the wall-clock nanoseconds accumulated in each
// phase since the previous call, resetting both counters to zero.
func TakePhaseNs() (setupNs, stormNs int64) {
	return phaseSetupNs.Swap(0), phaseStormNs.Swap(0)
}

// addSetupNs / addStormNs record the wall-clock span of a completed
// phase. since is the time.Now() taken when the phase began.
func addSetupNs(since time.Time) { phaseSetupNs.Add(time.Since(since).Nanoseconds()) }
func addStormNs(since time.Time) { phaseStormNs.Add(time.Since(since).Nanoseconds()) }

// stormProfileOpen/stormProfileClose bracket the measurement window for
// the storm-scoped profiler (profiling.SetStormProfile). Profile errors
// never fail a run; CLI tools surface them at Config.Stop instead.
func stormProfileOpen()  { _ = profiling.StormWindowOpen() }
func stormProfileClose() { _ = profiling.StormWindowClose() }
