package bgp

import (
	"fmt"
	"sort"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/metrics"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

// Simulator wires a topology, the BGP routers, and the event engine into
// one runnable simulation. Typical use:
//
//	sim, _ := New(net, params)
//	sim.Start()                      // originate one prefix per AS
//	sim.Run()                        // phase 1: initial convergence
//	failAt := sim.Now() + settle
//	sim.ScheduleFailure(failAt, nodes)
//	sim.Run()                        // phase 2: re-convergence
//	delay := sim.Collector().ConvergenceDelay()
//
// A Simulator is reusable: Reset rewinds it to time zero with a fresh
// parameter set, retaining the dense per-router state arrays, so
// repeated trials on one topology skip nearly all of the per-trial
// setup allocation that bgp.New pays.
//
// The Simulator owns the dense destination-index table: destination
// prefix ids are dest = AS·PrefixesPerAS + i with dense AS numbering
// (every in-tree generator numbers ASes 0..k-1), so a prefix id is used
// directly as the index into every per-router dense array. ndests is
// the table size, (maxAS+1)·PrefixesPerAS.
type Simulator struct {
	net     *topology.Network
	params  Params
	eng     *des.Engine
	rng     *des.RNG
	routers []*router
	col     *metrics.Collector
	origins []NodeID // dense: destination prefix -> originating router, -1 none
	nprefix int      // prefixes per AS
	ndests  int      // dense dest-index table size
	tracer  trace.Tracer

	// pool is the free list of in-flight message events for the
	// single-engine path. A delivery is taken here (or allocated) by
	// deliver, scheduled on the engine, and returned by its own Run, so
	// steady-state message transmission allocates nothing. The list only
	// ever grows to the peak number of simultaneously in-flight updates.
	// Sharded runs use one pool per destination shard (shardRuntime.pools)
	// instead, so concurrent shard goroutines never share a free list.
	pool deliveryPool

	// sh holds the sharded execution state when Params.Shards >= 2 and the
	// topology admits a positive lookahead; nil selects the classic
	// single-engine path.
	sh *shardRuntime

	// tab interns every path the simulation creates (backed by a bump
	// arena); all RIB storage holds 4-byte routeRefs into it. Rewound by
	// Reset once every reference (RIBs, in-flight updates) is gone.
	// Concurrent sharded runs give each shard its own pathTab instead
	// (shardRuntime.tabs).
	tab pathTab

	// pathCompactions counts quiescence compaction sweeps this trial
	// (see maybeCompactPaths).
	pathCompactions int
}

// delivery is the pooled des.Runner carrying one in-flight update from
// router to router across a link.
type delivery struct {
	pool     *deliveryPool
	next     *delivery // free-list link
	from, to *router
	u        Update
}

// deliveryPool is a free list of delivery events. Each pool is owned by
// exactly one execution context (the single engine, or one shard), so
// take/put need no synchronization.
type deliveryPool struct{ free *delivery }

// take returns a recycled delivery, or a fresh one bound to the pool.
func (p *deliveryPool) take() *delivery {
	d := p.free
	if d != nil {
		p.free = d.next
		d.next = nil
		return d
	}
	return &delivery{pool: p}
}

// deliver schedules u to arrive at to after the link delay, reusing a
// pooled delivery event when one is free. In sharded mode same-shard
// messages go straight onto the destination's (== sender's) engine while
// cross-shard messages are buffered for the next lookahead barrier.
func (s *Simulator) deliver(from, to *router, delay time.Duration, u Update) {
	at := from.now() + delay
	if s.sh != nil {
		if from.shard != to.shard {
			s.sh.post(from, to, at, u)
			return
		}
		d := s.sh.pools[to.shard].take()
		d.from, d.to, d.u = from, to, u
		to.eng.ScheduleRunnerAt(at, d)
		return
	}
	d := s.pool.take()
	d.from, d.to, d.u = from, to, u
	s.eng.ScheduleRunnerAt(at, d)
}

// Run completes the delivery and returns the object to the pool.
func (d *delivery) Run() {
	from, to, u := d.from, d.to, d.u
	d.from, d.to, d.u = nil, nil, Update{}
	d.next = d.pool.free
	d.pool.free = d
	// The link is down if either endpoint died while in flight.
	if !from.alive || !to.alive {
		return
	}
	to.enqueue(u)
}

// emit delivers an event to the configured tracer, if any. Callers guard
// expensive event construction with `if s.tracer != nil` themselves when
// it matters; the event structs here are stack values, so the overhead
// of an unconditional call is one branch.
func (s *Simulator) emit(e trace.Event) {
	if s.tracer != nil {
		s.tracer.Trace(e)
	}
}

// New builds a simulator over net. The network must be non-empty; every
// AS originates PrefixesPerAS prefixes (default one) at its
// lowest-numbered router. New builds the topology-dependent skeleton and
// then delegates all run-state initialization to Reset, so a fresh
// simulator and a reused one are states of the same code path.
func New(net *topology.Network, params Params) (*Simulator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if net.NumNodes() == 0 {
		return nil, fmt.Errorf("bgp: empty network")
	}
	s := &Simulator{
		net: net,
		eng: des.NewEngine(),
		col: metrics.NewCollector(net.NumNodes()),
	}
	s.routers = make([]*router, net.NumNodes())
	for id := 0; id < net.NumNodes(); id++ {
		nbs := net.Neighbors(id)
		peers := make([]Peer, 0, len(nbs))
		for _, nb := range nbs {
			peers = append(peers, Peer{
				Node:     nb.ID,
				AS:       net.ASOf(nb.ID),
				Internal: nb.Internal,
			})
		}
		// Stable peer order: by node id. Slot order drives tie-breaking
		// iteration and message emission order.
		sort.Slice(peers, func(i, j int) bool { return peers[i].Node < peers[j].Node })
		s.routers[id] = newRouter(id, net.ASOf(id), peers, s)
	}
	if err := s.Reset(params); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset rewinds the simulator to time zero for a new run with the given
// parameters (including a new Seed): RIBs, advertisement bookkeeping,
// MRAI gates, inboxes, the metrics collector, the RNG, and the DES clock
// all return to their post-New state. The topology is retained — a reset
// simulator behaves byte-identically to bgp.New(s.Network(), params).
// Reset must not be called while a run is in progress (events pending in
// the engine are discarded).
//
// Retained across Reset: the dense per-router state arrays (cleared, not
// reallocated), inbox buffers when the queue discipline is unchanged,
// the engine's event free list, and the delivery pool — which is what
// makes repeated-trial sweeps cheap.
func (s *Simulator) Reset(params Params) error {
	if err := params.Validate(); err != nil {
		return err
	}
	s.params = params
	s.nprefix = max(1, params.PrefixesPerAS)
	s.tracer = params.Tracer
	s.rng = des.NewRNG(params.Seed)
	s.eng.Reset()
	s.col.Reset()
	// Safe exactly here: the engine drain above discarded in-flight
	// updates and the router resets below clear every RIB reference.
	s.tab.reset()
	s.pathCompactions = 0
	s.setupShards(params)
	// Fused same-time dispatch is a single-engine optimization: sharded
	// runs are driven through des.Group, whose barrier accounting the
	// fusion slot bypasses (see des.Engine.SetFusion).
	s.eng.SetFusion(params.StormFusedDispatch && s.sh == nil)

	maxAS := 0
	for id := 0; id < s.net.NumNodes(); id++ {
		if as := s.net.ASOf(id); as > maxAS {
			maxAS = as
		}
	}
	s.ndests = (maxAS + 1) * s.nprefix
	if len(s.origins) != s.ndests {
		s.origins = make([]NodeID, s.ndests)
	}
	for i := range s.origins {
		s.origins[i] = -1
	}
	for id := 0; id < s.net.NumNodes(); id++ {
		as := s.net.ASOf(id)
		for i := 0; i < s.nprefix; i++ {
			dest := as*s.nprefix + i
			if cur := s.origins[dest]; cur < 0 || id < cur {
				s.origins[dest] = id
			}
		}
	}

	for _, r := range s.routers {
		for slot := range r.peers {
			delay := params.ExtDelay
			if r.peers[slot].Internal {
				delay = params.IntDelay
			}
			r.peers[slot].Delay = delay
		}
		s.bindContext(r)
		r.reset(params, s.ndests)
	}
	return nil
}

// setupShards decides the execution mode for this Reset and prepares
// s.sh: nil for the classic single-engine path (Shards <= 1, more shards
// than routers wanted than exist, or no positive lookahead), otherwise a
// ready shardRuntime. The runtime (group, partition, buffers) is reused
// across Resets whenever the mode triple (k, sequenced, lookahead) is
// unchanged, mirroring how the single engine retains its free lists.
func (s *Simulator) setupShards(params Params) {
	k := params.Shards
	if k > s.net.NumNodes() {
		k = s.net.NumNodes()
	}
	if k < 2 {
		s.sh = nil
		return
	}
	sequenced := !params.ShardConcurrent
	assign := []int(nil)
	if s.sh != nil && s.sh.g.NumShards() == k {
		assign = s.sh.assign // partition depends only on (net, k)
	} else {
		assign = topology.Partition(s.net, k)
	}
	look := shardLookahead(s.net, assign, params)
	if look <= 0 {
		s.sh = nil
		return
	}
	if s.sh == nil || s.sh.g.NumShards() != k ||
		s.sh.g.Sequenced() != sequenced || s.sh.g.Lookahead() != look {
		s.sh = newShardRuntime(s, k, look, sequenced, assign)
	}
	s.sh.reset(s.rng)
}

// bindContext points one router at its execution context for this run:
// which engine its events live on, which group clock (if any) it reads,
// and which collector, random stream, and path table it writes. The
// single-engine path and sequenced sharding share the Simulator-level
// col/rng/tab; concurrent sharding substitutes the shard-local replicas
// the sharding contract requires.
func (s *Simulator) bindContext(r *router) {
	if s.sh == nil {
		r.shard, r.eng, r.grp = 0, s.eng, nil
		r.col, r.rng, r.tab = s.col, s.rng, &s.tab
	} else {
		r.shard = s.sh.assign[r.id]
		r.eng = s.sh.g.Shard(r.shard)
		if s.sh.g.Sequenced() {
			r.grp = s.sh.g
			r.col, r.rng, r.tab = s.col, s.rng, &s.tab
		} else {
			r.grp = nil
			r.col = s.sh.cols[r.shard]
			r.rng = s.sh.rngs[r.shard]
			r.tab = s.sh.tabs[r.shard]
		}
	}
	r.adjIn.tab = r.tab
}

// ASOfDest returns the AS that originates destination prefix dest.
func (s *Simulator) ASOfDest(dest int) ASN { return dest / s.nprefix }

// Start schedules the origination of every prefix, staggered uniformly
// over OriginationSpread. Destinations are scheduled in ascending order
// (the dense origin table's natural order).
func (s *Simulator) Start() {
	for dest, id := range s.origins {
		if id < 0 {
			continue
		}
		var at des.Time
		if s.params.OriginationSpread > 0 {
			at = s.rng.UniformDuration(0, s.params.OriginationSpread)
		}
		id, dest := id, dest
		// In sharded mode the origination runs on the originating
		// router's own shard engine; the stagger draw above always comes
		// from the master RNG, so the single-engine and sequenced runs
		// consume it identically.
		s.routers[id].eng.ScheduleAt(at, func() { s.routers[id].originate(dest) })
	}
}

// Run drains the event queue (to quiescence) and returns any engine error.
func (s *Simulator) Run() error {
	if s.sh != nil {
		return s.sh.g.Run()
	}
	return s.eng.Run()
}

// SetCancel installs (or with nil removes) a cancellation probe on the
// underlying event engine — or, in sharded mode, on every shard engine
// and the group driver, so cancellation lands mid-epoch on whichever
// shard is running rather than waiting for the next barrier. Run
// variants poll it periodically and abort with des.ErrCanceled when it
// reports true. Install it after Reset (which clears the probe) and
// before Run; the probe never alters results of runs that complete,
// only whether a run completes.
func (s *Simulator) SetCancel(cancel func() bool) {
	if s.sh != nil {
		s.sh.g.SetCancel(cancel)
		return
	}
	s.eng.SetCancel(cancel)
}

// RunUntil runs events up to the deadline.
func (s *Simulator) RunUntil(deadline des.Time) error {
	if s.sh != nil {
		return s.sh.g.RunUntil(deadline)
	}
	return s.eng.RunUntil(deadline)
}

// Now returns the current simulated time.
func (s *Simulator) Now() des.Time {
	if s.sh != nil {
		return s.sh.g.Now()
	}
	return s.eng.Now()
}

// Collector exposes the metrics collector. Concurrent sharded runs
// maintain one collector per shard; this view folds them into the
// run-level collector first (a deterministic merge — see
// metrics.MergeFrom), so callers read the same API in every mode.
func (s *Simulator) Collector() *metrics.Collector {
	if s.sh != nil && len(s.sh.cols) > 0 {
		s.col.MergeFrom(s.sh.cols...)
	}
	return s.col
}

// openWindow opens the measurement window on every collector the run
// writes to (one in single-engine and sequenced modes, one per shard in
// concurrent mode).
func (s *Simulator) openWindow(at des.Time) {
	stormProfileOpen() // storm-scoped CPU profile starts with the window
	s.col.OpenWindow(at)
	if s.sh != nil {
		for _, c := range s.sh.cols {
			c.OpenWindow(at)
		}
	}
}

// normalizeWindow canonicalizes every piece of run state that could
// carry phase-1 residue into the measurement window: the random streams
// are reseeded from Params.Seed (per-shard streams re-derived in place
// in concurrent mode), and every live router expires its MRAI gates,
// restarts its flap counters, and rebuilds its policy, damper, and load
// accounting (router.normalizeWindow). It runs at window open in every
// mode — cold and warm start alike — which makes the post-failure
// dynamics a pure function of (topology, converged routing state,
// failure set, parameters, seed). That contract is what lets a
// warm-started trial reproduce a cold-started one byte-for-byte: the two
// arrive at the window with identical routing state and, after
// normalization, identical everything else.
func (s *Simulator) normalizeWindow(at des.Time) {
	s.rng.Reseed(s.params.Seed)
	if s.sh != nil {
		s.sh.reseed(s.rng)
	}
	for _, r := range s.routers {
		r.normalizeWindow(at)
	}
}

// ctrlEng returns the engine global control events (failures,
// recoveries) run on: the control engine in sharded mode — whose events
// execute with every shard paused at the event's timestamp — and the
// main engine otherwise.
func (s *Simulator) ctrlEng() *des.Engine {
	if s.sh != nil {
		return s.sh.g.Control()
	}
	return s.eng
}

// ScheduleFailure kills the given nodes at time at and opens the metrics
// measurement window there, normalizing away any phase-1 residue first
// (see normalizeWindow). Surviving neighbors run session-down processing
// after DetectDelay.
func (s *Simulator) ScheduleFailure(at des.Time, nodes []int) {
	failed := append([]int(nil), nodes...)
	sort.Ints(failed)
	s.ctrlEng().ScheduleAt(at, func() {
		s.openWindow(at)
		s.normalizeWindow(at)
		for _, id := range failed {
			if id >= 0 && id < len(s.routers) {
				s.routers[id].kill()
				s.emit(trace.Event{At: at, Kind: trace.KindNodeFailure, Node: id, Peer: -1, Dest: -1})
			}
		}
		if s.params.OracleMRAI != nil {
			s.applyOracle(len(failed))
		}
		// Session-down processing at surviving peers.
		for _, id := range failed {
			if id < 0 || id >= len(s.routers) {
				continue
			}
			for _, peer := range s.routers[id].peers {
				nb := s.routers[peer.Node]
				if !nb.alive {
					continue
				}
				slot, ok := nb.slotOf[id]
				if !ok {
					continue
				}
				if s.params.DetectDelay > 0 {
					// Absolute time on the surviving peer's own engine:
					// in sharded mode the detection must run inside nb's
					// shard, not in control context.
					nb.eng.ScheduleAt(at+s.params.DetectDelay, func() { nb.peerDown(slot) })
				} else {
					nb.peerDown(slot)
				}
			}
		}
	})
}

// ScheduleLinkFailure tears down the sessions on the given links at time
// at without killing any router — the link-only failure mode the paper
// sets aside as unlikely for large-scale disasters but which matters for
// fiber cuts. Each link is a pair of node IDs; unknown or already-down
// sessions are ignored. The metrics window opens at the failure time.
func (s *Simulator) ScheduleLinkFailure(at des.Time, links [][2]int) {
	cut := append([][2]int(nil), links...)
	s.ctrlEng().ScheduleAt(at, func() {
		s.openWindow(at)
		s.normalizeWindow(at)
		for _, l := range cut {
			a, b := l[0], l[1]
			if a < 0 || b < 0 || a >= len(s.routers) || b >= len(s.routers) {
				continue
			}
			ra, rb := s.routers[a], s.routers[b]
			slotAB, okA := ra.slotOf[b]
			slotBA, okB := rb.slotOf[a]
			if !okA || !okB {
				continue
			}
			down := func(r *router, slot int) {
				if s.params.DetectDelay > 0 {
					r.eng.ScheduleAt(at+s.params.DetectDelay, func() { r.peerDown(slot) })
				} else {
					r.peerDown(slot)
				}
			}
			down(ra, slotAB)
			down(rb, slotBA)
		}
	})
}

// ScheduleRecovery revives the given (previously failed) routers at time
// at. Revived routers come back with empty RIBs — as after a reboot —
// re-originate their prefixes where applicable, and re-establish sessions
// with every live neighbor; both sides then exchange full tables, the
// standard BGP session-establishment behaviour.
func (s *Simulator) ScheduleRecovery(at des.Time, nodes []int) {
	revived := append([]int(nil), nodes...)
	sort.Ints(revived)
	s.ctrlEng().ScheduleAt(at, func() {
		// Phase 1: bring the routers back with clean state.
		for _, id := range revived {
			if id < 0 || id >= len(s.routers) {
				continue
			}
			r := s.routers[id]
			if r.alive {
				continue
			}
			r.revive()
			s.emit(trace.Event{At: at, Kind: trace.KindNodeRecovery, Node: id, Peer: -1, Dest: -1})
		}
		// Phase 2: re-originate prefixes whose origin router came back.
		for _, id := range revived {
			if id < 0 || id >= len(s.routers) || !s.routers[id].alive {
				continue
			}
			as := s.net.ASOf(id)
			for i := 0; i < s.nprefix; i++ {
				dest := as*s.nprefix + i
				if dest < len(s.origins) && s.origins[dest] == id {
					s.routers[id].originate(dest)
				}
			}
		}
		// Phase 3: re-establish sessions where both endpoints are alive.
		for _, id := range revived {
			if id < 0 || id >= len(s.routers) || !s.routers[id].alive {
				continue
			}
			r := s.routers[id]
			for slot, peer := range r.peers {
				nb := s.routers[peer.Node]
				if !nb.alive {
					continue
				}
				r.peerUp(slot)
				if nbSlot, ok := nb.slotOf[id]; ok {
					nb.peerUp(nbSlot)
				}
			}
		}
	})
}

// applyOracle switches every surviving Settable policy to the MRAI the
// oracle table prescribes for this failure extent. Like the dynamic
// scheme, the change takes effect at each router's next timer restart.
func (s *Simulator) applyOracle(failedCount int) {
	d := s.params.OracleMRAI(float64(failedCount) / float64(len(s.routers)))
	for _, r := range s.routers {
		if !r.alive {
			continue
		}
		if settable, ok := r.policy.(mrai.Settable); ok {
			settable.Set(d)
		}
	}
}

// Alive reports whether node id survived.
func (s *Simulator) Alive(id NodeID) bool {
	return id >= 0 && id < len(s.routers) && s.routers[id].alive
}

// LocPath returns node id's current best path to dest and whether one
// exists. The caller must not modify the returned slice.
func (s *Simulator) LocPath(id NodeID, dest ASN) (Path, bool) {
	if id < 0 || id >= len(s.routers) {
		return nil, false
	}
	if dest < 0 || dest >= s.routers[id].ndests {
		return nil, false
	}
	ref, ok := s.routers[id].loc.getRef(dest)
	if !ok {
		return nil, false
	}
	return s.routers[id].tab.path(ref), true
}

// Destinations returns the sorted list of originated prefixes. With
// PrefixesPerAS == 1 (the default) prefix ids equal AS numbers; otherwise
// AS a originates prefixes a*k .. a*k+k-1.
func (s *Simulator) Destinations() []int {
	out := make([]int, 0, len(s.origins))
	for dest, id := range s.origins {
		if id >= 0 {
			out = append(out, dest)
		}
	}
	return out
}

// OriginOf returns the router originating destination prefix dest.
func (s *Simulator) OriginOf(dest int) (NodeID, bool) {
	if dest < 0 || dest >= len(s.origins) || s.origins[dest] < 0 {
		return 0, false
	}
	return s.origins[dest], true
}

// Network returns the topology the simulator runs on.
func (s *Simulator) Network() *topology.Network { return s.net }

// PolicyLevelHistogram returns, for dynamic-MRAI runs, how many live
// routers sit at each ladder level (diagnostic).
func (s *Simulator) PolicyLevelHistogram() map[int]int {
	h := make(map[int]int)
	for _, r := range s.routers {
		if !r.alive {
			continue
		}
		type leveler interface{ Level() int }
		if lv, ok := r.policy.(leveler); ok {
			h[lv.Level()]++
		}
	}
	return h
}

// Compaction trigger thresholds (variables so tests can force the sweep
// on small topologies). The sweep runs at quiescence when the table has
// at least CompactMinPaths registrations and the dead fraction — paths
// no RIB cell references anymore — is at least CompactDeadFraction.
var (
	CompactMinPaths     = 1 << 16
	CompactDeadFraction = 0.5
)

// PathStats describes the interned-path table footprint.
type PathStats struct {
	// Registered counts paths currently registered (since the last Reset
	// or compaction). Summed over shard tables in concurrent mode.
	Registered int
	// Live counts distinct refs reachable from RIB storage. Computed
	// only in the shared-table modes (single-engine, sequenced); -1 in
	// concurrent sharded mode, where refs index per-shard tables.
	Live int
	// Compactions counts the sweeps performed since the last Reset.
	Compactions int
}

// sharedTab reports whether every router aliases the Simulator's own
// path table (single-engine and sequenced sharded modes) — the modes the
// compaction sweep supports.
func (s *Simulator) sharedTab() bool {
	return s.sh == nil || s.sh.g.Sequenced()
}

// forEachRefCell invokes fn on every occupied routeRef cell in RIB
// storage — Loc-RIB refs and export caches, Adj-RIB-In columns, and the
// advertised bookkeeping — so callers can count or rewrite refs in
// place. In-flight updates are not visited; callers run at quiescence.
func (s *Simulator) forEachRefCell(fn func(*routeRef)) {
	for _, r := range s.routers {
		for i := range r.loc.refs {
			if r.loc.refs[i] != 0 {
				fn(&r.loc.refs[i])
			}
		}
		for i := range r.loc.exports {
			if r.loc.exports[i] != 0 {
				fn(&r.loc.exports[i])
			}
		}
		for si := range r.adjIn.slots {
			refs := r.adjIn.slots[si].refs
			for i := range refs {
				if refs[i] != 0 {
					fn(&refs[i])
				}
			}
		}
		for si := range r.advertised {
			refs := r.advertised[si].refs
			for i := range refs {
				if refs[i] != 0 {
					fn(&refs[i])
				}
			}
		}
	}
}

// PathTableStats reports the path-table footprint (see PathStats).
func (s *Simulator) PathTableStats() PathStats {
	ps := PathStats{Compactions: s.pathCompactions}
	if !s.sharedTab() {
		ps.Live = -1
		for _, tab := range s.sh.tabs {
			ps.Registered += len(tab.paths)
		}
		return ps
	}
	ps.Registered = len(s.tab.paths)
	seen := make([]bool, len(s.tab.paths)+1)
	s.forEachRefCell(func(p *routeRef) {
		if !seen[*p] {
			seen[*p] = true
			ps.Live++
		}
	})
	return ps
}

// maybeCompactPaths runs the dead-path compaction sweep when the trigger
// thresholds are met: at quiescence (no in-flight updates, the caller's
// obligation) the live refs are exactly those in RIB storage, so the
// table is rebuilt around them and the dead majority — every transient
// path the exploration storm interned — is released in one move. The
// sweep is behavior-neutral: refs are acceleration, not identity.
func (s *Simulator) maybeCompactPaths() {
	if !s.sharedTab() {
		return
	}
	total := len(s.tab.paths)
	if total < CompactMinPaths {
		return
	}
	seen := make([]bool, total+1)
	live := 0
	s.forEachRefCell(func(p *routeRef) {
		if !seen[*p] {
			seen[*p] = true
			live++
		}
	})
	if float64(total-live) < CompactDeadFraction*float64(total) {
		return
	}
	c := newPathCompactor(&s.tab)
	s.forEachRefCell(func(p *routeRef) { *p = c.ref(*p) })
	// Struct assignment through the shared address: every router's tab
	// pointer (&s.tab) observes the compacted table.
	s.tab = c.dst
	s.pathCompactions++
}

// SettleMargin is the idle gap inserted between initial convergence and
// failure injection so Phase 1 stragglers never overlap the window.
const SettleMargin = 5 * time.Second

// ConvergeAndFail is the standard experiment flow: run initial
// convergence, inject the failure SettleMargin later, re-converge, and
// return the post-failure convergence delay. With Params.WarmStart the
// initial convergence is not simulated at all: the snapshot backend's
// fixpoint is installed as the converged state (warmStart) and the
// failure fires SettleMargin into the run. Window normalization at
// failure time (normalizeWindow) makes the two starts indistinguishable
// from the measurement window onward.
func (s *Simulator) ConvergeAndFail(nodes []int) (time.Duration, error) {
	begin := time.Now()
	if err := s.ConvergeInitial(); err != nil {
		return 0, err
	}
	addSetupNs(begin)
	failAt := s.Now() + SettleMargin
	s.ScheduleFailure(failAt, nodes)
	begin = time.Now()
	err := s.Run()
	addStormNs(begin)
	stormProfileClose() // quiescence closes the storm-scoped profile
	if err != nil {
		return 0, fmt.Errorf("re-convergence: %w", err)
	}
	return s.Collector().ConvergenceDelay(), nil
}
