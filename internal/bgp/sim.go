package bgp

import (
	"fmt"
	"sort"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/metrics"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

// Simulator wires a topology, the BGP routers, and the event engine into
// one runnable simulation. Typical use:
//
//	sim, _ := New(net, params)
//	sim.Start()                      // originate one prefix per AS
//	sim.Run()                        // phase 1: initial convergence
//	failAt := sim.Now() + settle
//	sim.ScheduleFailure(failAt, nodes)
//	sim.Run()                        // phase 2: re-convergence
//	delay := sim.Collector().ConvergenceDelay()
//
// A Simulator is reusable: Reset rewinds it to time zero with a fresh
// parameter set, retaining the dense per-router state arrays, so
// repeated trials on one topology skip nearly all of the per-trial
// setup allocation that bgp.New pays.
//
// The Simulator owns the dense destination-index table: destination
// prefix ids are dest = AS·PrefixesPerAS + i with dense AS numbering
// (every in-tree generator numbers ASes 0..k-1), so a prefix id is used
// directly as the index into every per-router dense array. ndests is
// the table size, (maxAS+1)·PrefixesPerAS.
type Simulator struct {
	net     *topology.Network
	params  Params
	eng     *des.Engine
	rng     *des.RNG
	routers []*router
	col     *metrics.Collector
	origins []NodeID // dense: destination prefix -> originating router, -1 none
	nprefix int      // prefixes per AS
	ndests  int      // dense dest-index table size
	tracer  trace.Tracer

	// freeDeliveries is the free list of in-flight message events. A
	// delivery is taken here (or allocated) by deliver, scheduled on the
	// engine, and returned by its own Run, so steady-state message
	// transmission allocates nothing. The list only ever grows to the peak
	// number of simultaneously in-flight updates.
	freeDeliveries *delivery

	// tab interns every path the simulation creates (backed by a bump
	// arena); all RIB storage holds 4-byte routeRefs into it. Rewound by
	// Reset once every reference (RIBs, in-flight updates) is gone.
	tab pathTab
}

// delivery is the pooled des.Runner carrying one in-flight update from
// router to router across a link.
type delivery struct {
	sim      *Simulator
	next     *delivery // free-list link
	from, to *router
	u        Update
}

// deliver schedules u to arrive at to after the link delay, reusing a
// pooled delivery event when one is free.
func (s *Simulator) deliver(from, to *router, delay time.Duration, u Update) {
	d := s.freeDeliveries
	if d != nil {
		s.freeDeliveries = d.next
		d.next = nil
	} else {
		d = &delivery{sim: s}
	}
	d.from, d.to, d.u = from, to, u
	s.eng.ScheduleRunner(delay, d)
}

// Run completes the delivery and returns the object to the pool.
func (d *delivery) Run() {
	from, to, u := d.from, d.to, d.u
	d.from, d.to, d.u = nil, nil, Update{}
	d.next = d.sim.freeDeliveries
	d.sim.freeDeliveries = d
	// The link is down if either endpoint died while in flight.
	if !from.alive || !to.alive {
		return
	}
	to.enqueue(u)
}

// emit delivers an event to the configured tracer, if any. Callers guard
// expensive event construction with `if s.tracer != nil` themselves when
// it matters; the event structs here are stack values, so the overhead
// of an unconditional call is one branch.
func (s *Simulator) emit(e trace.Event) {
	if s.tracer != nil {
		s.tracer.Trace(e)
	}
}

// New builds a simulator over net. The network must be non-empty; every
// AS originates PrefixesPerAS prefixes (default one) at its
// lowest-numbered router. New builds the topology-dependent skeleton and
// then delegates all run-state initialization to Reset, so a fresh
// simulator and a reused one are states of the same code path.
func New(net *topology.Network, params Params) (*Simulator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if net.NumNodes() == 0 {
		return nil, fmt.Errorf("bgp: empty network")
	}
	s := &Simulator{
		net: net,
		eng: des.NewEngine(),
		col: metrics.NewCollector(net.NumNodes()),
	}
	s.routers = make([]*router, net.NumNodes())
	for id := 0; id < net.NumNodes(); id++ {
		nbs := net.Neighbors(id)
		peers := make([]Peer, 0, len(nbs))
		for _, nb := range nbs {
			peers = append(peers, Peer{
				Node:     nb.ID,
				AS:       net.ASOf(nb.ID),
				Internal: nb.Internal,
			})
		}
		// Stable peer order: by node id. Slot order drives tie-breaking
		// iteration and message emission order.
		sort.Slice(peers, func(i, j int) bool { return peers[i].Node < peers[j].Node })
		s.routers[id] = newRouter(id, net.ASOf(id), peers, s)
	}
	if err := s.Reset(params); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset rewinds the simulator to time zero for a new run with the given
// parameters (including a new Seed): RIBs, advertisement bookkeeping,
// MRAI gates, inboxes, the metrics collector, the RNG, and the DES clock
// all return to their post-New state. The topology is retained — a reset
// simulator behaves byte-identically to bgp.New(s.Network(), params).
// Reset must not be called while a run is in progress (events pending in
// the engine are discarded).
//
// Retained across Reset: the dense per-router state arrays (cleared, not
// reallocated), inbox buffers when the queue discipline is unchanged,
// the engine's event free list, and the delivery pool — which is what
// makes repeated-trial sweeps cheap.
func (s *Simulator) Reset(params Params) error {
	if err := params.Validate(); err != nil {
		return err
	}
	s.params = params
	s.nprefix = max(1, params.PrefixesPerAS)
	s.tracer = params.Tracer
	s.rng = des.NewRNG(params.Seed)
	s.eng.Reset()
	s.col.Reset()
	// Safe exactly here: the engine drain above discarded in-flight
	// updates and the router resets below clear every RIB reference.
	s.tab.reset()

	maxAS := 0
	for id := 0; id < s.net.NumNodes(); id++ {
		if as := s.net.ASOf(id); as > maxAS {
			maxAS = as
		}
	}
	s.ndests = (maxAS + 1) * s.nprefix
	if len(s.origins) != s.ndests {
		s.origins = make([]NodeID, s.ndests)
	}
	for i := range s.origins {
		s.origins[i] = -1
	}
	for id := 0; id < s.net.NumNodes(); id++ {
		as := s.net.ASOf(id)
		for i := 0; i < s.nprefix; i++ {
			dest := as*s.nprefix + i
			if cur := s.origins[dest]; cur < 0 || id < cur {
				s.origins[dest] = id
			}
		}
	}

	for _, r := range s.routers {
		for slot := range r.peers {
			delay := params.ExtDelay
			if r.peers[slot].Internal {
				delay = params.IntDelay
			}
			r.peers[slot].Delay = delay
		}
		r.reset(params, s.ndests)
	}
	return nil
}

// ASOfDest returns the AS that originates destination prefix dest.
func (s *Simulator) ASOfDest(dest int) ASN { return dest / s.nprefix }

// Start schedules the origination of every prefix, staggered uniformly
// over OriginationSpread. Destinations are scheduled in ascending order
// (the dense origin table's natural order).
func (s *Simulator) Start() {
	for dest, id := range s.origins {
		if id < 0 {
			continue
		}
		var at des.Time
		if s.params.OriginationSpread > 0 {
			at = s.rng.UniformDuration(0, s.params.OriginationSpread)
		}
		id, dest := id, dest
		s.eng.ScheduleAt(at, func() { s.routers[id].originate(dest) })
	}
}

// Run drains the event queue (to quiescence) and returns any engine error.
func (s *Simulator) Run() error { return s.eng.Run() }

// SetCancel installs (or with nil removes) a cancellation probe on the
// underlying event engine: Run variants poll it periodically and abort
// with des.ErrCanceled when it reports true. Install it after Reset
// (which clears the probe) and before Run; the probe never alters
// results of runs that complete, only whether a run completes.
func (s *Simulator) SetCancel(cancel func() bool) { s.eng.SetCancel(cancel) }

// RunUntil runs events up to the deadline.
func (s *Simulator) RunUntil(deadline des.Time) error { return s.eng.RunUntil(deadline) }

// Now returns the current simulated time.
func (s *Simulator) Now() des.Time { return s.eng.Now() }

// Collector exposes the metrics collector.
func (s *Simulator) Collector() *metrics.Collector { return s.col }

// ScheduleFailure kills the given nodes at time at and opens the metrics
// measurement window there. Surviving neighbors run session-down
// processing after DetectDelay.
func (s *Simulator) ScheduleFailure(at des.Time, nodes []int) {
	failed := append([]int(nil), nodes...)
	sort.Ints(failed)
	s.eng.ScheduleAt(at, func() {
		s.col.OpenWindow(at)
		for _, id := range failed {
			if id >= 0 && id < len(s.routers) {
				s.routers[id].kill()
				s.emit(trace.Event{At: at, Kind: trace.KindNodeFailure, Node: id, Peer: -1, Dest: -1})
			}
		}
		if s.params.OracleMRAI != nil {
			s.applyOracle(len(failed))
		}
		// Session-down processing at surviving peers.
		for _, id := range failed {
			if id < 0 || id >= len(s.routers) {
				continue
			}
			for _, peer := range s.routers[id].peers {
				nb := s.routers[peer.Node]
				if !nb.alive {
					continue
				}
				slot, ok := nb.slotOf[id]
				if !ok {
					continue
				}
				if s.params.DetectDelay > 0 {
					s.eng.Schedule(s.params.DetectDelay, func() { nb.peerDown(slot) })
				} else {
					nb.peerDown(slot)
				}
			}
		}
	})
}

// ScheduleLinkFailure tears down the sessions on the given links at time
// at without killing any router — the link-only failure mode the paper
// sets aside as unlikely for large-scale disasters but which matters for
// fiber cuts. Each link is a pair of node IDs; unknown or already-down
// sessions are ignored. The metrics window opens at the failure time.
func (s *Simulator) ScheduleLinkFailure(at des.Time, links [][2]int) {
	cut := append([][2]int(nil), links...)
	s.eng.ScheduleAt(at, func() {
		s.col.OpenWindow(at)
		for _, l := range cut {
			a, b := l[0], l[1]
			if a < 0 || b < 0 || a >= len(s.routers) || b >= len(s.routers) {
				continue
			}
			ra, rb := s.routers[a], s.routers[b]
			slotAB, okA := ra.slotOf[b]
			slotBA, okB := rb.slotOf[a]
			if !okA || !okB {
				continue
			}
			down := func(r *router, slot int) {
				if s.params.DetectDelay > 0 {
					s.eng.Schedule(s.params.DetectDelay, func() { r.peerDown(slot) })
				} else {
					r.peerDown(slot)
				}
			}
			down(ra, slotAB)
			down(rb, slotBA)
		}
	})
}

// ScheduleRecovery revives the given (previously failed) routers at time
// at. Revived routers come back with empty RIBs — as after a reboot —
// re-originate their prefixes where applicable, and re-establish sessions
// with every live neighbor; both sides then exchange full tables, the
// standard BGP session-establishment behaviour.
func (s *Simulator) ScheduleRecovery(at des.Time, nodes []int) {
	revived := append([]int(nil), nodes...)
	sort.Ints(revived)
	s.eng.ScheduleAt(at, func() {
		// Phase 1: bring the routers back with clean state.
		for _, id := range revived {
			if id < 0 || id >= len(s.routers) {
				continue
			}
			r := s.routers[id]
			if r.alive {
				continue
			}
			r.revive()
			s.emit(trace.Event{At: at, Kind: trace.KindNodeRecovery, Node: id, Peer: -1, Dest: -1})
		}
		// Phase 2: re-originate prefixes whose origin router came back.
		for _, id := range revived {
			if id < 0 || id >= len(s.routers) || !s.routers[id].alive {
				continue
			}
			as := s.net.ASOf(id)
			for i := 0; i < s.nprefix; i++ {
				dest := as*s.nprefix + i
				if dest < len(s.origins) && s.origins[dest] == id {
					s.routers[id].originate(dest)
				}
			}
		}
		// Phase 3: re-establish sessions where both endpoints are alive.
		for _, id := range revived {
			if id < 0 || id >= len(s.routers) || !s.routers[id].alive {
				continue
			}
			r := s.routers[id]
			for slot, peer := range r.peers {
				nb := s.routers[peer.Node]
				if !nb.alive {
					continue
				}
				r.peerUp(slot)
				if nbSlot, ok := nb.slotOf[id]; ok {
					nb.peerUp(nbSlot)
				}
			}
		}
	})
}

// applyOracle switches every surviving Settable policy to the MRAI the
// oracle table prescribes for this failure extent. Like the dynamic
// scheme, the change takes effect at each router's next timer restart.
func (s *Simulator) applyOracle(failedCount int) {
	d := s.params.OracleMRAI(float64(failedCount) / float64(len(s.routers)))
	for _, r := range s.routers {
		if !r.alive {
			continue
		}
		if settable, ok := r.policy.(mrai.Settable); ok {
			settable.Set(d)
		}
	}
}

// Alive reports whether node id survived.
func (s *Simulator) Alive(id NodeID) bool {
	return id >= 0 && id < len(s.routers) && s.routers[id].alive
}

// LocPath returns node id's current best path to dest and whether one
// exists. The caller must not modify the returned slice.
func (s *Simulator) LocPath(id NodeID, dest ASN) (Path, bool) {
	if id < 0 || id >= len(s.routers) {
		return nil, false
	}
	if dest < 0 || dest >= s.routers[id].ndests {
		return nil, false
	}
	ref, ok := s.routers[id].loc.getRef(dest)
	if !ok {
		return nil, false
	}
	return s.tab.path(ref), true
}

// Destinations returns the sorted list of originated prefixes. With
// PrefixesPerAS == 1 (the default) prefix ids equal AS numbers; otherwise
// AS a originates prefixes a*k .. a*k+k-1.
func (s *Simulator) Destinations() []int {
	out := make([]int, 0, len(s.origins))
	for dest, id := range s.origins {
		if id >= 0 {
			out = append(out, dest)
		}
	}
	return out
}

// OriginOf returns the router originating destination prefix dest.
func (s *Simulator) OriginOf(dest int) (NodeID, bool) {
	if dest < 0 || dest >= len(s.origins) || s.origins[dest] < 0 {
		return 0, false
	}
	return s.origins[dest], true
}

// Network returns the topology the simulator runs on.
func (s *Simulator) Network() *topology.Network { return s.net }

// PolicyLevelHistogram returns, for dynamic-MRAI runs, how many live
// routers sit at each ladder level (diagnostic).
func (s *Simulator) PolicyLevelHistogram() map[int]int {
	h := make(map[int]int)
	for _, r := range s.routers {
		if !r.alive {
			continue
		}
		type leveler interface{ Level() int }
		if lv, ok := r.policy.(leveler); ok {
			h[lv.Level()]++
		}
	}
	return h
}

// SettleMargin is the idle gap inserted between initial convergence and
// failure injection so Phase 1 stragglers never overlap the window.
const SettleMargin = 5 * time.Second

// ConvergeAndFail is the standard experiment flow: run initial
// convergence, inject the failure SettleMargin later, re-converge, and
// return the post-failure convergence delay.
func (s *Simulator) ConvergeAndFail(nodes []int) (time.Duration, error) {
	s.Start()
	if err := s.Run(); err != nil {
		return 0, fmt.Errorf("initial convergence: %w", err)
	}
	failAt := s.eng.Now() + SettleMargin
	s.ScheduleFailure(failAt, nodes)
	if err := s.Run(); err != nil {
		return 0, fmt.Errorf("re-convergence: %w", err)
	}
	return s.col.ConvergenceDelay(), nil
}
