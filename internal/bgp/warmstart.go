package bgp

import (
	"fmt"
	"sync"

	"bgpsim/internal/snapshot"
	"bgpsim/internal/topology"
)

// This file installs a snapshot-backend fixpoint (internal/snapshot) as
// the simulator's initial converged state — the Params.WarmStart path.
// The install reproduces exactly the quiescent state the event-driven
// phase 1 leaves behind, modulo routeRef numbering (refs are interned in
// install order rather than propagation order, which every hot-path
// comparison tolerates by falling back to path equality):
//
//   - Loc-RIB: the snapshot's converged best route per (router, dest),
//     with bestSlot pointing at the slot it was learned from (bestSelf
//     at the origin, which also sets the originates bit);
//   - Adj-RIB-In: a route from peer q exactly when q's quiescent export
//     rules advertise the destination to us (snapshot.Advertises — the
//     sender-side suppression subsumes the receiver-side loop drop);
//   - advertised: mirror of the peer's Adj-RIB-In entry in our own ref
//     space, so the first post-failure flush sees the same "already
//     announced" state a cold run would;
//   - timers, pending bitsets, inboxes: empty/open, the quiescent state.
//
// Path refs are derived per router through a memoized from-chain walk in
// the router's own path table (per-shard tables in concurrent mode), so
// all prefixes of one origin AS share the same interned path objects —
// the same sharing the event-driven run produces.

// snapKey identifies a cached snapshot: the topology and policy are
// compared by pointer, which the experiment layer's topology and
// relationship caches make stable across trials and sweep cells.
type snapKey struct {
	net *topology.Network
	pol *topology.Relationships
}

var snapCache = struct {
	sync.Mutex
	m map[snapKey]*snapshot.Result
}{m: make(map[snapKey]*snapshot.Result)}

// snapCacheCap bounds the process-wide snapshot cache. Sweeps touch a
// handful of (topology, policy) pairs; when the bound is hit the whole
// map is dropped — a full recompute costs milliseconds, an unbounded
// cache of 500-AS results costs real memory.
const snapCacheCap = 16

// snapshotFor returns the (possibly cached) converged snapshot for the
// pair. Callers must not mutate the network or policy while the cached
// result is live — the experiment layer's caches already require this.
func snapshotFor(net *topology.Network, pol *topology.Relationships) (*snapshot.Result, error) {
	key := snapKey{net, pol}
	snapCache.Lock()
	res := snapCache.m[key]
	snapCache.Unlock()
	if res != nil {
		return res, nil
	}
	res, err := snapshot.Compute(net, snapshot.Config{Policy: pol})
	if err != nil {
		return nil, err
	}
	snapCache.Lock()
	if len(snapCache.m) >= snapCacheCap {
		snapCache.m = make(map[snapKey]*snapshot.Result, snapCacheCap)
	}
	snapCache.m[key] = res
	snapCache.Unlock()
	return res, nil
}

// invalidRef marks an uncomputed memo entry in the warm-start ref
// derivation (0 is a valid "no route" value).
const invalidRef = ^routeRef(0)

// warmStart installs the converged snapshot into every router. The
// simulator must be freshly Reset (empty RIBs, time zero); afterwards the
// engine is still at time zero with no events pending, so the caller
// proceeds directly to failure scheduling.
func (s *Simulator) warmStart() error {
	res, err := snapshotFor(s.net, s.params.Policy)
	if err != nil {
		return err
	}
	// Distinct path tables: one in single-engine and sequenced modes, one
	// per shard in concurrent mode. Each gets its own from-chain ref memo.
	var tabs []*pathTab
	tabIdx := make(map[*pathTab]int)
	for _, r := range s.routers {
		if _, ok := tabIdx[r.tab]; !ok {
			tabIdx[r.tab] = len(tabs)
			tabs = append(tabs, r.tab)
		}
	}
	// The install fills Adj-RIBs-In without maintaining the second-best
	// cache, so reset's "empty table: no runner-up" state would be a lie
	// from here on. Unknown is always safe — the first incumbent loss per
	// destination scans once and rebuilds the entry (output-neutral: the
	// scan commits the same outcome the promotion would).
	for _, r := range s.routers {
		for i := range r.secondSlot {
			r.secondSlot[i] = secondInvalid
		}
	}
	n := s.net.NumNodes()
	memo := make([][]routeRef, len(tabs))
	for i := range memo {
		memo[i] = make([]routeRef, n)
	}

	for _, as := range res.ASes() {
		for _, m := range memo {
			for i := range m {
				m[i] = invalidRef
			}
		}
		// refFor interns node's converged loc path for this AS into table
		// ti by walking the from-chain: the origin holds the empty path,
		// internal hops share the upstream path, external hops prepend the
		// upstream node's AS — precisely how the event-driven run derives
		// and interns the same paths.
		var refFor func(ti, node int) routeRef
		refFor = func(ti, node int) routeRef {
			if got := memo[ti][node]; got != invalidRef {
				return got
			}
			var ref routeRef
			switch f := res.From(as, node); {
			case f == snapshot.FromNone:
				ref = 0
			case f == snapshot.FromSelf:
				ref = tabs[ti].emptyRef
			default:
				parent := refFor(ti, int(f))
				if parent == 0 {
					ref = 0 // broken chain: treat as no route (cannot happen at a fixpoint)
				} else if res.FromInternal(as, node) {
					ref = parent
				} else {
					ref = tabs[ti].prepend(s.net.ASOf(int(f)), parent)
				}
			}
			memo[ti][node] = ref
			return ref
		}

		origin, ok := res.OriginOf(as)
		if !ok {
			continue
		}
		destLo := as * s.nprefix
		for _, r := range s.routers {
			ti := tabIdx[r.tab]
			// Loc-RIB payload and provenance for this router.
			var locRef routeRef
			bs := bestNone
			if r.id == origin {
				locRef = r.tab.emptyRef
				bs = bestSelf
			} else if f := res.From(as, r.id); f >= 0 {
				locRef = refFor(ti, r.id)
				slot, ok := r.slotOf[NodeID(f)]
				if !ok {
					return fmt.Errorf("bgp: warm start: node %d has no slot for snapshot from-node %d", r.id, f)
				}
				bs = int16(slot)
			}
			for pi := 0; pi < s.nprefix; pi++ {
				dest := destLo + pi
				if r.id == origin {
					r.originates.set(dest)
				}
				if locRef != 0 {
					r.loc.set(dest, locRef)
					r.bestSlot[dest] = bs
				}
			}
			for slot := range r.peers {
				p := &r.peers[slot]
				// Inbound: peer q's quiescent advertisement to us.
				if res.Advertises(as, p.Node, r.id) {
					inRef := refFor(ti, p.Node)
					if inRef != 0 && !p.Internal {
						inRef = r.tab.prepend(p.AS, inRef)
					}
					if inRef != 0 {
						for pi := 0; pi < s.nprefix; pi++ {
							r.adjIn.setSlot(slot, destLo+pi, inRef)
						}
					}
				}
				// Outbound: our quiescent advertisement to peer q.
				if locRef != 0 && res.Advertises(as, r.id, p.Node) {
					advRef := locRef
					if !p.Internal {
						advRef = r.tab.prepend(r.as, locRef)
					}
					for pi := 0; pi < s.nprefix; pi++ {
						r.advertised[slot].set(destLo+pi, advRef, r.ndests)
					}
				}
			}
		}
	}
	return nil
}
