package bgp

import (
	"testing"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/topology"
	"bgpsim/internal/trace"
)

func TestRecoveryRestoresFullConnectivity(t *testing.T) {
	rng := des.NewRNG(51)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := mustSim(t, nw, fastParams(51))
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 6, nil)
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	// Bring everything back and re-converge: the network must return to
	// exactly the full-topology shortest-path state.
	sim.ScheduleRecovery(sim.Now()+SettleMargin, fail)
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range fail {
		if !sim.Alive(id) {
			t.Fatalf("node %d not revived", id)
		}
	}
	assertShortestPaths(t, sim)
}

func TestPartialRecovery(t *testing.T) {
	rng := des.NewRNG(53)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := mustSim(t, nw, fastParams(53))
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 6, nil)
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	// Revive only half; the invariant must hold on the mixed topology.
	sim.ScheduleRecovery(sim.Now()+SettleMargin, fail[:3])
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range fail[:3] {
		if !sim.Alive(id) {
			t.Fatalf("node %d not revived", id)
		}
	}
	for _, id := range fail[3:] {
		if sim.Alive(id) {
			t.Fatalf("node %d revived unexpectedly", id)
		}
	}
	assertShortestPaths(t, sim)
}

func TestRecoveryOnLineReannouncesPrefix(t *testing.T) {
	nw := buildLine(t, 4)
	sim := mustSim(t, nw, fastParams(55))
	if _, err := sim.ConvergeAndFail([]int{1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := sim.LocPath(0, 3); ok {
		t.Fatal("cut not effective")
	}
	sim.ScheduleRecovery(sim.Now()+SettleMargin, []int{1})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// AS 1's prefix is back everywhere and the cut healed.
	if p, ok := sim.LocPath(0, 3); !ok || len(p) != 3 {
		t.Errorf("node 0 -> AS 3 after recovery: %v ok=%v", p, ok)
	}
	if p, ok := sim.LocPath(3, 1); !ok || len(p) != 2 {
		t.Errorf("node 3 -> AS 1 after recovery: %v ok=%v", p, ok)
	}
	assertShortestPaths(t, sim)
}

func TestRecoveryOfAliveNodeIsNoOp(t *testing.T) {
	nw := buildLine(t, 3)
	sim := mustSim(t, nw, fastParams(57))
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	before, _ := sim.LocPath(0, 2)
	sim.ScheduleRecovery(sim.Now()+time.Second, []int{1})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	after, ok := sim.LocPath(0, 2)
	if !ok || !pathsEqual(before, after) {
		t.Errorf("recovering an alive node changed routes: %v -> %v", before, after)
	}
}

func TestRecoveryEmitsTraceEvents(t *testing.T) {
	rec := &trace.Recorder{}
	nw := buildLine(t, 4)
	p := fastParams(59)
	p.Tracer = rec
	sim := mustSim(t, nw, p)
	if _, err := sim.ConvergeAndFail([]int{1}); err != nil {
		t.Fatal(err)
	}
	sim.ScheduleRecovery(sim.Now()+SettleMargin, []int{1})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	counts := rec.CountByKind()
	if counts[trace.KindNodeFailure] != 1 {
		t.Errorf("failure events = %d", counts[trace.KindNodeFailure])
	}
	if counts[trace.KindNodeRecovery] != 1 {
		t.Errorf("recovery events = %d", counts[trace.KindNodeRecovery])
	}
	if counts[trace.KindSessionDown] != 2 {
		t.Errorf("session-down events = %d, want 2 (both neighbors)", counts[trace.KindSessionDown])
	}
	if counts[trace.KindSend] == 0 || counts[trace.KindReceive] == 0 ||
		counts[trace.KindProcess] == 0 || counts[trace.KindRouteChange] == 0 ||
		counts[trace.KindTimerRestart] == 0 {
		t.Errorf("missing event kinds: %v", counts)
	}
	// Sends and receives must balance: no links drop messages in this
	// failure-free-after-recovery run except those in flight at failure.
	if counts[trace.KindReceive] > counts[trace.KindSend] {
		t.Errorf("more receives (%d) than sends (%d)", counts[trace.KindReceive], counts[trace.KindSend])
	}
}
