package bgp

import (
	"testing"
	"testing/quick"
)

func ann(from NodeID, dest ASN, path ...ASN) Update {
	if path == nil {
		path = Path{}
	}
	return Update{From: from, Dest: dest, Path: path}
}

func wd(from NodeID, dest ASN) Update {
	return Update{From: from, Dest: dest}
}

func TestFIFOOrdering(t *testing.T) {
	q := &fifoInbox{}
	for i := 0; i < 100; i++ {
		q.Push(ann(i, i, 1))
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		batch := q.Pop()
		if len(batch) != 1 {
			t.Fatalf("FIFO pop returned %d updates", len(batch))
		}
		if batch[0].From != i {
			t.Fatalf("pop %d returned update from %d", i, batch[0].From)
		}
	}
	if !q.Empty() {
		t.Error("not empty after draining")
	}
	if q.Pop() != nil {
		t.Error("Pop on empty returned a batch")
	}
}

func TestFIFORingBufferWrap(t *testing.T) {
	q := &fifoInbox{}
	// Interleave to force wraparound.
	for round := 0; round < 50; round++ {
		q.Push(ann(round, 1, 1))
		q.Push(ann(round+1000, 1, 1))
		got := q.Pop()
		if got[0].From != expectedWrapFrom(round) {
			t.Fatalf("round %d: got from %d", round, got[0].From)
		}
	}
}

// expectedWrapFrom mirrors the interleaving in TestFIFORingBufferWrap:
// pushes go (0,1000),(1,1001),... and one pop per round, so pops see
// 0,1000,1,1001,2,...
func expectedWrapFrom(round int) int {
	if round%2 == 0 {
		return round / 2
	}
	return 1000 + round/2
}

func TestFIFONeverDiscards(t *testing.T) {
	q := &fifoInbox{}
	q.Push(ann(1, 7, 1))
	q.Push(ann(1, 7, 2)) // same neighbor, same dest: FIFO keeps both
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if q.TakeDiscarded() != 0 {
		t.Error("FIFO reported discards")
	}
}

func TestBatchGroupsByDestination(t *testing.T) {
	q := &batchInbox{byDest: make([]int32, 4096), discardStale: true}
	// The paper's example: X,Y,X,Y from distinct neighbors.
	q.Push(ann(1, 100, 1)) // X
	q.Push(ann(2, 200, 2)) // Y
	q.Push(ann(3, 100, 3)) // X
	q.Push(ann(4, 200, 4)) // Y
	first := q.Pop()
	if len(first) != 2 || first[0].Dest != 100 || first[1].Dest != 100 {
		t.Fatalf("first batch = %+v, want both X updates", first)
	}
	second := q.Pop()
	if len(second) != 2 || second[0].Dest != 200 {
		t.Fatalf("second batch = %+v, want both Y updates", second)
	}
	if !q.Empty() {
		t.Error("queue not drained")
	}
}

func TestBatchDiscardsStaleSameNeighbor(t *testing.T) {
	q := &batchInbox{byDest: make([]int32, 4096), discardStale: true}
	q.Push(ann(1, 100, 9, 8))
	q.Push(ann(2, 100, 5))
	q.Push(ann(1, 100, 7)) // supersedes the first update from neighbor 1
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after staleness discard", q.Len())
	}
	if q.TakeDiscarded() != 1 {
		t.Error("discard not counted")
	}
	if q.TakeDiscarded() != 0 {
		t.Error("TakeDiscarded did not reset")
	}
	batch := q.Pop()
	if len(batch) != 2 {
		t.Fatalf("batch size = %d", len(batch))
	}
	// Neighbor 1's surviving update must be the newest one, in the
	// original (first-arrival) position.
	if batch[0].From != 1 || len(batch[0].Path) != 1 || batch[0].Path[0] != 7 {
		t.Errorf("neighbor 1 slot = %+v, want the newer path [7]", batch[0])
	}
	if batch[1].From != 2 {
		t.Errorf("neighbor 2 update lost: %+v", batch[1])
	}
}

func TestBatchWithdrawalSupersedesAnnouncement(t *testing.T) {
	q := &batchInbox{byDest: make([]int32, 4096), discardStale: true}
	q.Push(ann(1, 100, 3))
	q.Push(wd(1, 100))
	batch := q.Pop()
	if len(batch) != 1 || !batch[0].IsWithdrawal() {
		t.Fatalf("batch = %+v, want single withdrawal", batch)
	}
}

func TestBatchNoDiscardKeepsEverything(t *testing.T) {
	q := &batchInbox{byDest: make([]int32, 4096), discardStale: false}
	q.Push(ann(1, 100, 1))
	q.Push(ann(1, 100, 2))
	if q.Len() != 2 {
		t.Fatalf("Len = %d; ablation queue must keep stale updates", q.Len())
	}
	batch := q.Pop()
	if len(batch) != 2 {
		t.Fatalf("batch = %d updates, want 2", len(batch))
	}
	if q.TakeDiscarded() != 0 {
		t.Error("discards counted with discardStale off")
	}
}

func TestBatchDestinationOrderIsFirstArrival(t *testing.T) {
	q := &batchInbox{byDest: make([]int32, 4096), discardStale: true}
	q.Push(ann(1, 300, 1))
	q.Push(ann(1, 100, 1))
	q.Push(ann(2, 300, 2))
	if got := q.Pop(); got[0].Dest != 300 {
		t.Fatalf("first batch dest = %d, want 300 (first arrival)", got[0].Dest)
	}
	if got := q.Pop(); got[0].Dest != 100 {
		t.Fatalf("second batch dest = %d, want 100", got[0].Dest)
	}
}

func TestRouterBatchDrainsOnePeer(t *testing.T) {
	q := &routerBatchInbox{byPeer: make(map[NodeID][]Update)}
	q.Push(ann(1, 100, 1))
	q.Push(ann(2, 200, 2))
	q.Push(ann(1, 300, 3))
	batch := q.Pop()
	if len(batch) != 2 || batch[0].From != 1 || batch[1].From != 1 {
		t.Fatalf("batch = %+v, want both peer-1 updates", batch)
	}
	batch = q.Pop()
	if len(batch) != 1 || batch[0].From != 2 {
		t.Fatalf("batch = %+v, want peer-2 update", batch)
	}
}

func TestRouterBatchDedupsWithinBatchOnly(t *testing.T) {
	q := &routerBatchInbox{byPeer: make(map[NodeID][]Update)}
	q.Push(ann(1, 100, 1))
	q.Push(ann(1, 100, 2)) // same dest, same batch: older is dead work
	q.Push(ann(1, 200, 3))
	batch := q.Pop()
	if len(batch) != 2 {
		t.Fatalf("batch = %+v, want deduped to 2", batch)
	}
	if batch[0].Dest != 100 || batch[0].Path[0] != 2 {
		t.Errorf("kept update = %+v, want the newer path", batch[0])
	}
	if q.TakeDiscarded() != 1 {
		t.Error("discard not counted")
	}
	// Across batches there is no dedup: push again after drain.
	q.Push(ann(1, 100, 4))
	if got := q.Pop(); len(got) != 1 {
		t.Fatalf("second batch = %+v", got)
	}
}

func TestNewInboxSelectsDiscipline(t *testing.T) {
	p := DefaultParams()
	if _, ok := newInbox(p, 64).(*fifoInbox); !ok {
		t.Error("default discipline not FIFO")
	}
	p.Queue = QueueBatched
	if _, ok := newInbox(p, 64).(*batchInbox); !ok {
		t.Error("batched discipline wrong type")
	}
	p.Queue = QueueRouterBatch
	if _, ok := newInbox(p, 64).(*routerBatchInbox); !ok {
		t.Error("router-batch discipline wrong type")
	}
}

// Property: for any push sequence, every inbox conserves updates —
// popped + discarded == pushed — and Len always matches.
func TestPropertyInboxConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		for _, mk := range []func() Inbox{
			func() Inbox { return &fifoInbox{} },
			func() Inbox { return &batchInbox{byDest: make([]int32, 4096), discardStale: true} },
			func() Inbox { return &routerBatchInbox{byPeer: make(map[NodeID][]Update)} },
		} {
			q := mk()
			pushed, popped, discarded := 0, 0, 0
			for _, op := range ops {
				if op%3 == 0 && !q.Empty() {
					popped += len(q.Pop())
					discarded += q.TakeDiscarded()
					continue
				}
				u := ann(int(op%5), ASN(op%7), 1)
				if op%11 == 0 {
					u = wd(int(op%5), ASN(op%7))
				}
				q.Push(u)
				pushed++
			}
			for !q.Empty() {
				popped += len(q.Pop())
				discarded += q.TakeDiscarded()
			}
			if pushed != popped+discarded {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
