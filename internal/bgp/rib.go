package bgp

import (
	"sort"

	"bgpsim/internal/topology"
)

// locEntry is a Loc-RIB entry: the decision-process winner for one
// destination. Paths are immutable once created; entries share path
// slices with Adj-RIB-In and in-flight updates.
type locEntry struct {
	path         Path
	from         NodeID // advertising peer; -1 for a locally originated route
	fromInternal bool

	// export caches prependPath(localAS, path), the announcement every
	// external peer receives for this entry. It is computed lazily on the
	// first external advertisement and shared by all peers (paths are
	// immutable), so re-advertising one Loc-RIB entry to N peers costs one
	// allocation instead of N — the single largest allocation site in the
	// unpooled simulator. nil means "not computed yet" (a computed export
	// always has length >= 1: the local AS).
	export Path
}

// selfRoute is the Loc-RIB entry for a locally originated prefix.
func selfRoute() locEntry {
	return locEntry{path: Path{}, from: -1}
}

// isSelf reports whether the entry is locally originated.
func (e locEntry) isSelf() bool { return e.from == -1 }

// sameAs reports whether two entries would produce identical
// advertisements and bookkeeping. The export cache is deliberately
// ignored: it is derived from path and may be populated on one side only.
func (e locEntry) sameAs(o locEntry) bool {
	return e.from == o.from && e.fromInternal == o.fromInternal && pathsEqual(e.path, o.path)
}

// adjRIBIn stores, per destination, the latest valid path heard from each
// peer. Paths containing the local AS are rejected at insertion (receiver-
// side loop detection), so stored paths are always loop-free here.
type adjRIBIn struct {
	byDest map[ASN]map[NodeID]Path
}

func newAdjRIBIn() *adjRIBIn {
	return &adjRIBIn{byDest: make(map[ASN]map[NodeID]Path)}
}

// set records path as the latest route for dest from peer node.
func (rib *adjRIBIn) set(dest ASN, from NodeID, path Path) {
	m, ok := rib.byDest[dest]
	if !ok {
		m = make(map[NodeID]Path)
		rib.byDest[dest] = m
	}
	m[from] = path
}

// remove deletes the route for dest from peer node, reporting whether one
// existed.
func (rib *adjRIBIn) remove(dest ASN, from NodeID) bool {
	m, ok := rib.byDest[dest]
	if !ok {
		return false
	}
	if _, had := m[from]; !had {
		return false
	}
	delete(m, from)
	if len(m) == 0 {
		delete(rib.byDest, dest)
	}
	return true
}

// get returns the stored path for (dest, from).
func (rib *adjRIBIn) get(dest ASN, from NodeID) (Path, bool) {
	m, ok := rib.byDest[dest]
	if !ok {
		return nil, false
	}
	p, ok := m[from]
	return p, ok
}

// destsVia returns the sorted destinations with a route from peer node.
func (rib *adjRIBIn) destsVia(from NodeID) []ASN {
	var out []ASN
	for dest, m := range rib.byDest {
		if _, ok := m[from]; ok {
			out = append(out, dest)
		}
	}
	sort.Ints(out)
	return out
}

// decide runs the decision process for dest over the candidate routes in
// the Adj-RIB-In: shortest AS path wins; ties break EBGP-over-IBGP, then
// lowest peer AS, then lowest peer node ID. Peers are scanned in slot
// order so the result is deterministic. The second return is false when
// no route exists.
//
// The paper's simulations select routes on path length alone with no
// policy; the deterministic tie-break stands in for SSFNet's router-ID
// tie-break.
// When rel is non-nil (Gao–Rexford policy mode), routes are ranked by
// relationship class first — customer-learned over peer-learned over
// provider-learned, the standard local-pref assignment — before path
// length. self is the deciding router's node id.
func decide(rib *adjRIBIn, dest ASN, peers []Peer, peerAlive []bool, damp *damper,
	rel *topology.Relationships, self NodeID) (locEntry, bool) {
	m, ok := rib.byDest[dest]
	if !ok || len(m) == 0 {
		return locEntry{}, false
	}
	best := locEntry{}
	bestPeer := Peer{}
	bestClass := 0
	found := false
	for slot, peer := range peers {
		if peerAlive != nil && !peerAlive[slot] {
			continue
		}
		path, ok := m[peer.Node]
		if !ok {
			continue
		}
		if damp != nil && damp.isSuppressed(dest, peer.Node) {
			continue
		}
		cand := locEntry{path: path, from: peer.Node, fromInternal: peer.Internal}
		class := routeClass(rel, self, peer)
		if !found || betterRoute(cand, peer, class, best, bestPeer, bestClass) {
			best, bestPeer, bestClass, found = cand, peer, class, true
		}
	}
	return best, found
}

// routeClass ranks a route by the relationship it was learned over:
// 0 customer (or internal / no policy), 1 peer, 2 provider. Lower wins.
func routeClass(rel *topology.Relationships, self NodeID, peer Peer) int {
	if rel == nil || peer.Internal {
		return 0
	}
	switch rel.Of(self, peer.Node) {
	case topology.RelPeer:
		return 1
	case topology.RelProvider:
		return 2
	default: // customer or unknown
		return 0
	}
}

// betterRoute reports whether candidate a (via peer pa, class ca) beats
// b (via pb, class cb).
func betterRoute(a locEntry, pa Peer, ca int, b locEntry, pb Peer, cb int) bool {
	if ca != cb {
		return ca < cb // local-pref: customer > peer > provider
	}
	if len(a.path) != len(b.path) {
		return len(a.path) < len(b.path)
	}
	if a.fromInternal != b.fromInternal {
		return !a.fromInternal // EBGP preferred over IBGP
	}
	if pa.AS != pb.AS {
		return pa.AS < pb.AS
	}
	return pa.Node < pb.Node
}
