package bgp

import (
	"bgpsim/internal/topology"
)

// locEntry is a Loc-RIB entry: the decision-process winner for one
// destination. Paths are immutable once created; entries share path
// slices with Adj-RIB-In and in-flight updates.
type locEntry struct {
	path         Path
	from         NodeID // advertising peer; -1 for a locally originated route
	fromInternal bool

	// export caches prependPath(localAS, path), the announcement every
	// external peer receives for this entry. It is computed lazily on the
	// first external advertisement and shared by all peers (paths are
	// immutable), so re-advertising one Loc-RIB entry to N peers costs one
	// allocation instead of N — the single largest allocation site in the
	// unpooled simulator. nil means "not computed yet" (a computed export
	// always has length >= 1: the local AS).
	export Path

	// asMask is a Bloom-style filter over the ASes on path (bit as&63 set
	// for every hop), computed lazily under maskOK. A clear bit proves the
	// AS is not on the path, so the per-peer export loop can skip the
	// pathContains scan for almost every peer. Derived from path like
	// export, and likewise ignored by sameAs.
	asMask uint64
	maskOK bool
}

// pathASMask folds the ASes on p into a 64-bit Bloom mask.
func pathASMask(p Path) uint64 {
	var m uint64
	for _, as := range p {
		m |= 1 << (uint(as) & 63)
	}
	return m
}

// selfRoute is the Loc-RIB entry for a locally originated prefix.
func selfRoute() locEntry {
	return locEntry{path: Path{}, from: -1}
}

// isSelf reports whether the entry is locally originated.
func (e locEntry) isSelf() bool { return e.from == -1 }

// sameAs reports whether two entries would produce identical
// advertisements and bookkeeping. The export cache is deliberately
// ignored: it is derived from path and may be populated on one side only.
func (e locEntry) sameAs(o locEntry) bool {
	return e.from == o.from && e.fromInternal == o.fromInternal && pathsEqual(e.path, o.path)
}

// locRIB is the Loc-RIB: one dense slot per destination index plus a
// presence bitset. Presence must be tracked explicitly — a nil path is a
// valid entry payload only for absent slots, while an empty non-nil path
// is a real locally-originated route.
type locRIB struct {
	entries []locEntry
	has     bitset
}

func newLocRIB(ndests int) locRIB {
	return locRIB{entries: make([]locEntry, ndests), has: newBitset(ndests)}
}

// get returns the entry for dest.
func (l *locRIB) get(dest ASN) (locEntry, bool) {
	if !l.has.has(dest) {
		return locEntry{}, false
	}
	return l.entries[dest], true
}

// ptr returns a pointer to the live entry for dest, or nil when absent.
// The pointer is valid until the next reset/resize; callers use it to
// update the export cache in place.
func (l *locRIB) ptr(dest ASN) *locEntry {
	if !l.has.has(dest) {
		return nil
	}
	return &l.entries[dest]
}

// set installs e as the entry for dest.
func (l *locRIB) set(dest ASN, e locEntry) {
	l.entries[dest] = e
	l.has.set(dest)
}

// del removes the entry for dest. The slot is zeroed so stale path
// slices do not outlive the route.
func (l *locRIB) del(dest ASN) {
	l.entries[dest] = locEntry{}
	l.has.clear(dest)
}

// reset empties the RIB in O(occupied entries).
func (l *locRIB) reset() {
	for wi, w := range l.has {
		base := wi << 6
		for w != 0 {
			i := base + trailingZeros(w)
			l.entries[i] = locEntry{}
			w &= w - 1
		}
		l.has[wi] = 0
	}
}

// ribSlot is a dense destination-indexed path table: the latest path per
// dest plus a presence bitset (a nil stored path cannot stand in for
// "absent" — withdrawn state must be distinguishable from a nil payload).
// It backs both the per-peer Adj-RIB-In columns and the per-slot
// advertised-route bookkeeping in router.
type ribSlot struct {
	paths []Path
	has   bitset
}

func newRIBSlot(ndests int) ribSlot {
	return ribSlot{paths: make([]Path, ndests), has: newBitset(ndests)}
}

// get returns the stored path for dest.
func (s *ribSlot) get(dest ASN) (Path, bool) {
	if !s.has.has(dest) {
		return nil, false
	}
	return s.paths[dest], true
}

// set records path for dest.
func (s *ribSlot) set(dest ASN, path Path) {
	s.paths[dest] = path
	s.has.set(dest)
}

// del removes the entry for dest, reporting whether one existed. The
// path slot is nilled so stale slices do not outlive the route.
func (s *ribSlot) del(dest ASN) bool {
	if !s.has.has(dest) {
		return false
	}
	s.paths[dest] = nil
	s.has.clear(dest)
	return true
}

// reset empties the table in O(occupied entries), retaining capacity.
func (s *ribSlot) reset() {
	for wi, w := range s.has {
		base := wi << 6
		for w != 0 {
			s.paths[base+trailingZeros(w)] = nil
			w &= w - 1
		}
		s.has[wi] = 0
	}
}

// adjRIBIn stores, per peer slot, the latest valid path heard from that
// peer for each destination. Paths containing the local AS are rejected
// at insertion (receiver-side loop detection), so stored paths are always
// loop-free here. Storage is a flat slot × dest array: destinations are
// dense small integers (dest = AS·prefixesPerAS + i with dense AS
// numbering), so the dest index is used directly.
type adjRIBIn struct {
	slotOf map[NodeID]int // shared with the owning router
	slots  []ribSlot
}

// newAdjRIBIn returns an Adj-RIB-In for nslots peers and ndests dense
// destination indices, resolving node IDs through slotOf.
func newAdjRIBIn(slotOf map[NodeID]int, nslots, ndests int) *adjRIBIn {
	rib := &adjRIBIn{slotOf: slotOf, slots: make([]ribSlot, nslots)}
	for i := range rib.slots {
		rib.slots[i] = newRIBSlot(ndests)
	}
	return rib
}

// resize re-dimensions the dest axis, emptying the table.
func (rib *adjRIBIn) resize(ndests int) {
	for i := range rib.slots {
		if len(rib.slots[i].paths) != ndests {
			rib.slots[i] = newRIBSlot(ndests)
		} else {
			rib.slots[i].reset()
		}
	}
}

// reset empties the table in O(occupied entries), retaining capacity.
func (rib *adjRIBIn) reset() {
	for i := range rib.slots {
		rib.slots[i].reset()
	}
}

// setSlot records path as the latest route for dest from the peer slot.
func (rib *adjRIBIn) setSlot(slot int, dest ASN, path Path) {
	rib.slots[slot].set(dest, path)
}

// removeSlot deletes the route for dest from the peer slot, reporting
// whether one existed.
func (rib *adjRIBIn) removeSlot(slot int, dest ASN) bool {
	return rib.slots[slot].del(dest)
}

// getSlot returns the stored path for (slot, dest).
func (rib *adjRIBIn) getSlot(slot int, dest ASN) (Path, bool) {
	return rib.slots[slot].get(dest)
}

// set records path as the latest route for dest from peer node.
func (rib *adjRIBIn) set(dest ASN, from NodeID, path Path) {
	if slot, ok := rib.slotOf[from]; ok {
		rib.setSlot(slot, dest, path)
	}
}

// remove deletes the route for dest from peer node, reporting whether one
// existed.
func (rib *adjRIBIn) remove(dest ASN, from NodeID) bool {
	slot, ok := rib.slotOf[from]
	if !ok {
		return false
	}
	return rib.removeSlot(slot, dest)
}

// get returns the stored path for (dest, from).
func (rib *adjRIBIn) get(dest ASN, from NodeID) (Path, bool) {
	slot, ok := rib.slotOf[from]
	if !ok {
		return nil, false
	}
	return rib.getSlot(slot, dest)
}

// destsViaSlot appends the destinations with a route from the peer slot
// to buf in ascending (sorted) order and returns the extended slice.
func (rib *adjRIBIn) destsViaSlot(slot int, buf []ASN) []ASN {
	return rib.slots[slot].has.appendIndices(buf)
}

// decide runs the decision process for dest over the candidate routes in
// the Adj-RIB-In: shortest AS path wins; ties break EBGP-over-IBGP, then
// lowest peer AS, then lowest peer node ID. Peers are scanned in slot
// order so the result is deterministic. The slot return identifies the
// winning peer slot (-1 when no route exists, mirrored by the false
// final return); router.bestSlot caches it so the incremental decision
// path can skip this scan entirely.
//
// The paper's simulations select routes on path length alone with no
// policy; the deterministic tie-break stands in for SSFNet's router-ID
// tie-break.
// When rel is non-nil (Gao–Rexford policy mode), routes are ranked by
// relationship class first — customer-learned over peer-learned over
// provider-learned, the standard local-pref assignment — before path
// length. self is the deciding router's node id.
func decide(rib *adjRIBIn, dest ASN, peers []Peer, peerAlive []bool, damp *damper,
	rel *topology.Relationships, self NodeID) (locEntry, int, bool) {
	best := locEntry{}
	bestPeer := Peer{}
	bestClass := 0
	bestSlot := -1
	found := false
	for slot, peer := range peers {
		if peerAlive != nil && !peerAlive[slot] {
			continue
		}
		path, ok := rib.getSlot(slot, dest)
		if !ok {
			continue
		}
		if damp != nil && damp.isSuppressed(dest, peer.Node) {
			continue
		}
		cand := locEntry{path: path, from: peer.Node, fromInternal: peer.Internal}
		class := routeClass(rel, self, peer)
		if !found || betterRoute(cand, peer, class, best, bestPeer, bestClass) {
			best, bestPeer, bestClass, bestSlot, found = cand, peer, class, slot, true
		}
	}
	return best, bestSlot, found
}

// routeClass ranks a route by the relationship it was learned over:
// 0 customer (or internal / no policy), 1 peer, 2 provider. Lower wins.
func routeClass(rel *topology.Relationships, self NodeID, peer Peer) int {
	if rel == nil || peer.Internal {
		return 0
	}
	switch rel.Of(self, peer.Node) {
	case topology.RelPeer:
		return 1
	case topology.RelProvider:
		return 2
	default: // customer or unknown
		return 0
	}
}

// betterRoute reports whether candidate a (via peer pa, class ca) beats
// b (via pb, class cb).
func betterRoute(a locEntry, pa Peer, ca int, b locEntry, pb Peer, cb int) bool {
	if ca != cb {
		return ca < cb // local-pref: customer > peer > provider
	}
	if len(a.path) != len(b.path) {
		return len(a.path) < len(b.path)
	}
	if a.fromInternal != b.fromInternal {
		return !a.fromInternal // EBGP preferred over IBGP
	}
	if pa.AS != pb.AS {
		return pa.AS < pb.AS
	}
	return pa.Node < pb.Node
}
