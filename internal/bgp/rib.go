package bgp

import (
	"bgpsim/internal/topology"
)

// locEntry is a materialized Loc-RIB entry: the decision-process winner
// for one destination, carried through the decide/commit flow as a stack
// value. Storage is the packed locRIB below; entries are materialized on
// demand (router.locEntryAt) and share interned path slices with the
// Adj-RIB-In and in-flight updates.
type locEntry struct {
	path         Path
	ref          routeRef // interned handle for path (never 0 for a real entry)
	from         NodeID   // advertising peer; -1 for a locally originated route
	fromInternal bool
}

// pathASMask folds the ASes on p into a 64-bit Bloom mask.
func pathASMask(p Path) uint64 {
	var m uint64
	for _, as := range p {
		m |= 1 << (uint(as) & 63)
	}
	return m
}

// selfRoute is the Loc-RIB entry for a locally originated prefix.
func selfRoute(tab *pathTab) locEntry {
	return locEntry{path: tab.path(tab.emptyRef), ref: tab.emptyRef, from: -1}
}

// isSelf reports whether the entry is locally originated.
func (e locEntry) isSelf() bool { return e.from == -1 }

// sameAs reports whether two entries would produce identical
// advertisements and bookkeeping.
func (e locEntry) sameAs(o locEntry) bool {
	return e.from == o.from && e.fromInternal == o.fromInternal &&
		((e.ref != 0 && e.ref == o.ref) || pathsEqual(e.path, o.path))
}

// locRIB is the Loc-RIB in packed per-route encoding: parallel dense
// arrays of 4-byte interned path refs and 4-byte cached export refs,
// plus a presence bitset — 8 bytes and change per destination where the
// previous struct-of-slices entry took 72. The winner's peer slot is not
// stored here: router.bestSlot already records it (bestSelf for local
// routes) and is maintained on every Loc-RIB mutation, so the entry's
// provenance is derived from it on materialization.
//
// Presence must be tracked explicitly — ref 0 is a valid payload only
// for absent slots, while the interned empty path (a real locally
// originated route) has a nonzero ref.
type locRIB struct {
	refs    []routeRef // interned best path per dest; 0 in absent slots
	exports []routeRef // cached prepend(localAS, refs[dest]); 0 = not yet computed
	has     bitset
}

func newLocRIB(ndests int) locRIB {
	return locRIB{
		refs:    make([]routeRef, ndests),
		exports: make([]routeRef, ndests),
		has:     newBitset(ndests),
	}
}

// getRef returns the interned best-path ref for dest.
func (l *locRIB) getRef(dest ASN) (routeRef, bool) {
	ref := l.refs[dest]
	return ref, ref != 0
}

// set installs ref as the entry for dest, invalidating the export cache.
func (l *locRIB) set(dest ASN, ref routeRef) {
	l.refs[dest] = ref
	l.exports[dest] = 0
	l.has.set(dest)
}

// del removes the entry for dest.
func (l *locRIB) del(dest ASN) {
	l.refs[dest] = 0
	l.exports[dest] = 0
	l.has.clear(dest)
}

// reset empties the RIB in O(occupied entries).
func (l *locRIB) reset() {
	for wi, w := range l.has {
		base := wi << 6
		for w != 0 {
			i := base + trailingZeros(w)
			l.refs[i] = 0
			l.exports[i] = 0
			w &= w - 1
		}
		l.has[wi] = 0
	}
}

// refSlot is one peer's dense destination-indexed route column in the
// sparse-within-dense hybrid: the 4-byte interned ref per destination
// (0 = absent; real routes always have nonzero refs, so no separate
// presence bit is needed), allocated lazily on the first route stored —
// peers that never advertise (and advertisement columns never sent to)
// cost nothing. It backs both the per-peer Adj-RIB-In columns and the
// per-slot advertised-route bookkeeping in router.
type refSlot struct {
	refs []routeRef
}

// get returns the stored ref for dest (0 when absent).
func (s *refSlot) get(dest ASN) routeRef {
	if s.refs == nil {
		return 0
	}
	return s.refs[dest]
}

// set records ref (which must be nonzero) for dest, materializing the
// column on first use.
func (s *refSlot) set(dest ASN, ref routeRef, ndests int) {
	if s.refs == nil {
		s.refs = make([]routeRef, ndests)
	}
	s.refs[dest] = ref
}

// del removes the entry for dest, reporting whether one existed.
func (s *refSlot) del(dest ASN) bool {
	if s.refs == nil || s.refs[dest] == 0 {
		return false
	}
	s.refs[dest] = 0
	return true
}

// reset empties the column, retaining its storage.
func (s *refSlot) reset() {
	clear(s.refs)
}

// any reports whether the column holds any route.
func (s *refSlot) any() bool {
	for _, ref := range s.refs {
		if ref != 0 {
			return true
		}
	}
	return false
}

// drop releases the column (used when the dest axis is re-dimensioned);
// it re-materializes lazily at the new size.
func (s *refSlot) drop() {
	s.refs = nil
}

// adjRIBIn stores, per peer slot, the latest valid route heard from that
// peer for each destination. Paths containing the local AS are rejected
// at insertion (receiver-side loop detection), so stored routes are
// always loop-free here. Storage is a lazily materialized slot × dest
// ref array: destinations are dense small integers (dest =
// AS·PrefixesPerOrigin + i with dense AS numbering), so the dest index
// is used directly, and a slot's column exists only once the peer has
// advertised something.
type adjRIBIn struct {
	slotOf map[NodeID]int // shared with the owning router
	tab    *pathTab       // shared with the owning Simulator
	ndests int
	slots  []refSlot
}

// newAdjRIBIn returns an Adj-RIB-In for nslots peers and ndests dense
// destination indices, resolving node IDs through slotOf and paths
// through tab.
func newAdjRIBIn(slotOf map[NodeID]int, tab *pathTab, nslots, ndests int) *adjRIBIn {
	return &adjRIBIn{slotOf: slotOf, tab: tab, ndests: ndests, slots: make([]refSlot, nslots)}
}

// resize re-dimensions the dest axis, emptying the table.
func (rib *adjRIBIn) resize(ndests int) {
	rib.ndests = ndests
	for i := range rib.slots {
		rib.slots[i].drop()
	}
}

// reset empties the table, retaining materialized columns.
func (rib *adjRIBIn) reset() {
	for i := range rib.slots {
		rib.slots[i].reset()
	}
}

// setSlot records ref as the latest route for dest from the peer slot.
func (rib *adjRIBIn) setSlot(slot int, dest ASN, ref routeRef) {
	rib.slots[slot].set(dest, ref, rib.ndests)
}

// removeSlot deletes the route for dest from the peer slot, reporting
// whether one existed.
func (rib *adjRIBIn) removeSlot(slot int, dest ASN) bool {
	return rib.slots[slot].del(dest)
}

// getSlotRef returns the stored ref for (slot, dest); 0 when absent.
func (rib *adjRIBIn) getSlotRef(slot int, dest ASN) routeRef {
	return rib.slots[slot].get(dest)
}

// set records path as the latest route for dest from peer node,
// interning it. Convenience for tests; the simulator's receive path
// stores pre-interned refs via setSlot.
func (rib *adjRIBIn) set(dest ASN, from NodeID, path Path) {
	if slot, ok := rib.slotOf[from]; ok {
		rib.setSlot(slot, dest, rib.tab.intern(path))
	}
}

// remove deletes the route for dest from peer node, reporting whether one
// existed.
func (rib *adjRIBIn) remove(dest ASN, from NodeID) bool {
	slot, ok := rib.slotOf[from]
	if !ok {
		return false
	}
	return rib.removeSlot(slot, dest)
}

// get returns the stored path for (dest, from).
func (rib *adjRIBIn) get(dest ASN, from NodeID) (Path, bool) {
	slot, ok := rib.slotOf[from]
	if !ok {
		return nil, false
	}
	ref := rib.getSlotRef(slot, dest)
	return rib.tab.path(ref), ref != 0
}

// destsViaSlot appends the destinations with a route from the peer slot
// to buf in ascending (sorted) order and returns the extended slice.
func (rib *adjRIBIn) destsViaSlot(slot int, buf []ASN) []ASN {
	for dest, ref := range rib.slots[slot].refs {
		if ref != 0 {
			buf = append(buf, dest)
		}
	}
	return buf
}

// decide runs the decision process for dest over the candidate routes in
// the Adj-RIB-In: shortest AS path wins; ties break EBGP-over-IBGP, then
// lowest peer AS, then lowest peer node ID. Peers are scanned in slot
// order so the result is deterministic. The slot return identifies the
// winning peer slot (-1 when no route exists, mirrored by the false
// final return); router.bestSlot caches it so the incremental decision
// path can skip this scan entirely.
//
// The paper's simulations select routes on path length alone with no
// policy; the deterministic tie-break stands in for SSFNet's router-ID
// tie-break.
// When rel is non-nil (Gao–Rexford policy mode), routes are ranked by
// relationship class first — customer-learned over peer-learned over
// provider-learned, the standard local-pref assignment — before path
// length. self is the deciding router's node id.
func decide(rib *adjRIBIn, dest ASN, peers []Peer, peerAlive []bool, damp *damper,
	rel *topology.Relationships, self NodeID) (locEntry, int, bool) {
	best := locEntry{}
	bestPeer := Peer{}
	bestClass := 0
	bestSlot := -1
	found := false
	for slot, peer := range peers {
		if peerAlive != nil && !peerAlive[slot] {
			continue
		}
		ref := rib.getSlotRef(slot, dest)
		if ref == 0 {
			continue
		}
		if damp != nil && damp.isSuppressed(dest, peer.Node) {
			continue
		}
		cand := locEntry{path: rib.tab.path(ref), ref: ref, from: peer.Node, fromInternal: peer.Internal}
		class := routeClass(rel, self, peer)
		if !found || betterRoute(cand, peer, class, best, bestPeer, bestClass) {
			best, bestPeer, bestClass, bestSlot, found = cand, peer, class, slot, true
		}
	}
	return best, bestSlot, found
}

// decide2 is decide specialized for the second-best cache (StormSecondBest):
// one pass over the slots computes both the winner and the runner-up — the
// slot the same scan would pick if the winner's route vanished. Ranking and
// eligibility are identical to decide except damping, which must be off
// (the cache, like the incremental path, stands down under damping). The
// second return uses the secondSlot sentinel encoding: a real slot, or
// secondNone when fewer than two eligible routes exist.
func decide2(rib *adjRIBIn, dest ASN, peers []Peer, peerAlive []bool,
	rel *topology.Relationships, self NodeID) (locEntry, int, int16, bool) {
	best := locEntry{}
	bestPeer := Peer{}
	bestClass := 0
	bestSlot := -1
	var secEntry locEntry
	secPeer := Peer{}
	secClass := 0
	sec := -1
	found := false
	for slot, peer := range peers {
		if peerAlive != nil && !peerAlive[slot] {
			continue
		}
		ref := rib.getSlotRef(slot, dest)
		if ref == 0 {
			continue
		}
		cand := locEntry{path: rib.tab.path(ref), ref: ref, from: peer.Node, fromInternal: peer.Internal}
		class := routeClass(rel, self, peer)
		if !found || betterRoute(cand, peer, class, best, bestPeer, bestClass) {
			if found {
				secEntry, secPeer, secClass, sec = best, bestPeer, bestClass, bestSlot
			}
			best, bestPeer, bestClass, bestSlot, found = cand, peer, class, slot, true
		} else if sec < 0 || betterRoute(cand, peer, class, secEntry, secPeer, secClass) {
			secEntry, secPeer, secClass, sec = cand, peer, class, slot
		}
	}
	second := secondNone
	if sec >= 0 {
		second = int16(sec)
	}
	return best, bestSlot, second, found
}

// routeClass ranks a route by the relationship it was learned over:
// 0 customer (or internal / no policy), 1 peer, 2 provider. Lower wins.
func routeClass(rel *topology.Relationships, self NodeID, peer Peer) int {
	if rel == nil || peer.Internal {
		return 0
	}
	switch rel.Of(self, peer.Node) {
	case topology.RelPeer:
		return 1
	case topology.RelProvider:
		return 2
	default: // customer or unknown
		return 0
	}
}

// betterRoute reports whether candidate a (via peer pa, class ca) beats
// b (via pb, class cb).
func betterRoute(a locEntry, pa Peer, ca int, b locEntry, pb Peer, cb int) bool {
	if ca != cb {
		return ca < cb // local-pref: customer > peer > provider
	}
	if len(a.path) != len(b.path) {
		return len(a.path) < len(b.path)
	}
	if a.fromInternal != b.fromInternal {
		return !a.fromInternal // EBGP preferred over IBGP
	}
	if pa.AS != pb.AS {
		return pa.AS < pb.AS
	}
	return pa.Node < pb.Node
}
