package bgp

import (
	"fmt"
	"math"
	"time"

	"bgpsim/internal/des"
)

// DampingConfig enables RFC 2439 route-flap damping. Each (destination,
// peer) route accumulates a penalty on every change; while the decayed
// penalty exceeds SuppressThreshold the route is unusable (and
// unadvertisable); once it decays below ReuseThreshold it returns.
//
// Damping exists to shield routers from persistent flapping, but it is
// well known (and reproducible here) to slow re-convergence after large
// failures: path exploration looks like flapping, so valid backup routes
// get suppressed exactly when they are needed.
type DampingConfig struct {
	// Penalty is added per route change (RFC suggests 1000).
	Penalty float64
	// SuppressThreshold starts suppression (RFC suggests 2000).
	SuppressThreshold float64
	// ReuseThreshold ends suppression (RFC suggests 750).
	ReuseThreshold float64
	// HalfLife is the exponential decay half-life. Internet deployments
	// use minutes; simulations at this paper's timescale use seconds.
	HalfLife time.Duration
	// Ceiling caps the penalty so suppression always ends (RFC 2439's
	// maximum-suppress behaviour). Zero means 4x SuppressThreshold.
	Ceiling float64
}

// DefaultDamping returns RFC 2439-flavored parameters scaled to the
// simulation timescale (half-life in seconds rather than minutes).
func DefaultDamping() *DampingConfig {
	return &DampingConfig{
		Penalty:           1000,
		SuppressThreshold: 2000,
		ReuseThreshold:    750,
		HalfLife:          10 * time.Second,
	}
}

// Validate checks the configuration.
func (c *DampingConfig) Validate() error {
	switch {
	case c.Penalty <= 0:
		return fmt.Errorf("bgp: damping penalty %v", c.Penalty)
	case c.ReuseThreshold <= 0 || c.SuppressThreshold <= c.ReuseThreshold:
		return fmt.Errorf("bgp: damping thresholds suppress=%v reuse=%v",
			c.SuppressThreshold, c.ReuseThreshold)
	case c.HalfLife <= 0:
		return fmt.Errorf("bgp: damping half-life %v", c.HalfLife)
	case c.Ceiling < 0:
		return fmt.Errorf("bgp: damping ceiling %v", c.Ceiling)
	}
	return nil
}

func (c *DampingConfig) ceiling() float64 {
	if c.Ceiling > 0 {
		return c.Ceiling
	}
	return 4 * c.SuppressThreshold
}

// dampEntry tracks one (destination, peer) flap history.
type dampEntry struct {
	penalty    float64
	lastDecay  des.Time
	suppressed bool
	reuseEv    *des.Event
}

// damper holds a router's damping state.
type damper struct {
	cfg     *DampingConfig
	entries map[ASN]map[NodeID]*dampEntry
}

func newDamper(cfg *DampingConfig) *damper {
	return &damper{cfg: cfg, entries: make(map[ASN]map[NodeID]*dampEntry)}
}

// entry returns (allocating) the state for (dest, from).
func (d *damper) entry(dest ASN, from NodeID) *dampEntry {
	m, ok := d.entries[dest]
	if !ok {
		m = make(map[NodeID]*dampEntry)
		d.entries[dest] = m
	}
	e, ok := m[from]
	if !ok {
		e = &dampEntry{}
		m[from] = e
	}
	return e
}

// decay brings the entry's penalty current.
func (e *dampEntry) decay(now des.Time, cfg *DampingConfig) {
	if e.lastDecay >= now || e.penalty == 0 {
		e.lastDecay = now
		return
	}
	dt := float64(now-e.lastDecay) / float64(cfg.HalfLife)
	e.penalty *= math.Pow(0.5, dt)
	if e.penalty < 1 {
		e.penalty = 0
	}
	e.lastDecay = now
}

// suppressed reports whether the route (dest, from) is currently damped.
func (d *damper) isSuppressed(dest ASN, from NodeID) bool {
	m, ok := d.entries[dest]
	if !ok {
		return false
	}
	e, ok := m[from]
	return ok && e.suppressed
}

// minReuseDelay floors reuse-event re-arming. Without it, floating-point
// rounding can leave the penalty marginally above the reuse threshold
// with a computed delay of zero, re-arming the event at the same
// simulated instant forever.
const minReuseDelay = 10 * time.Millisecond

// reuseDelay returns how long until the penalty decays to the reuse
// threshold (at least minReuseDelay).
func (d *damper) reuseDelay(e *dampEntry) time.Duration {
	if e.penalty <= d.cfg.ReuseThreshold {
		return minReuseDelay
	}
	halfLives := math.Log2(e.penalty / d.cfg.ReuseThreshold)
	delay := time.Duration(halfLives * float64(d.cfg.HalfLife))
	if delay < minReuseDelay {
		delay = minReuseDelay
	}
	return delay
}

// penalize records a flap for (dest, from) at the router r and returns
// whether the route just became suppressed. It arms (or re-arms) the
// reuse event that will lift suppression.
func (r *router) penalize(dest ASN, from NodeID) bool {
	d := r.damper
	now := r.now()
	e := d.entry(dest, from)
	e.decay(now, d.cfg)
	e.penalty += d.cfg.Penalty
	if ceiling := d.cfg.ceiling(); e.penalty > ceiling {
		e.penalty = ceiling
	}
	if e.penalty <= d.cfg.SuppressThreshold {
		return false
	}
	justSuppressed := !e.suppressed
	e.suppressed = true
	// (Re-)arm the reuse check for the new, larger penalty.
	r.eng.Cancel(e.reuseEv)
	delay := d.reuseDelay(e)
	e.reuseEv = r.eng.ScheduleAt(now+delay, func() { r.reuseCheck(dest, from) })
	return justSuppressed
}

// reuseCheck lifts suppression once the penalty has decayed enough,
// re-running the decision process so the route becomes eligible again.
func (r *router) reuseCheck(dest ASN, from NodeID) {
	if !r.alive || r.damper == nil {
		return
	}
	e := r.damper.entry(dest, from)
	e.reuseEv = nil
	if !e.suppressed {
		return
	}
	now := r.now()
	e.decay(now, r.damper.cfg)
	// The epsilon absorbs floating-point residue from the decay; without
	// it a penalty equal to the threshold up to rounding would re-arm
	// indefinitely.
	if e.penalty > r.damper.cfg.ReuseThreshold*(1+1e-9) {
		// Not yet (extra penalties arrived); re-arm.
		e.reuseEv = r.eng.ScheduleAt(now+r.damper.reuseDelay(e), func() { r.reuseCheck(dest, from) })
		return
	}
	e.suppressed = false
	if r.runDecision(dest) {
		r.markPendingAll(dest)
		r.flushAll()
	}
}
