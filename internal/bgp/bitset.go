package bgp

import "math/bits"

// bitset is a fixed-capacity set of small non-negative integers (dense
// destination indices). It backs the per-slot pending sets and the
// presence bits of the dense RIB arrays: all simulation loops that drain
// a bitset iterate it in ascending order, which is exactly the sorted
// order the map-based implementation produced with an explicit sort, so
// switching storage cannot change event order.
type bitset []uint64

// newBitset returns a set able to hold values in [0, n).
func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

// set adds i to the set.
func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// clear removes i from the set.
func (b bitset) clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// has reports whether i is in the set.
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// any reports whether the set is non-empty.
func (b bitset) any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// count returns the number of elements in the set.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// clearAll empties the set.
func (b bitset) clearAll() {
	for i := range b {
		b[i] = 0
	}
}

// trailingZeros is a local alias for bits.TrailingZeros64, used by the
// dense-RIB sparse-clear loops.
func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }

// appendIndices appends the elements of the set to out in ascending
// order and returns the extended slice.
func (b bitset) appendIndices(out []int) []int {
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// appendIndicesAndNot appends the elements of b that are not in not to
// out in ascending order and returns the extended slice. not must have
// the same capacity as b. Backs the storm blocked-skip flush: the pending
// set minus the known-gate-blocked set.
func (b bitset) appendIndicesAndNot(not bitset, out []int) []int {
	for wi, w := range b {
		w &^= not[wi]
		base := wi << 6
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}
