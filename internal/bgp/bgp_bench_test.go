package bgp

import (
	"testing"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
)

// benchNetwork builds one fixed 60-node topology for the simulator
// micro-benchmarks.
func benchNetwork(b *testing.B) *topology.Network {
	b.Helper()
	rng := des.NewRNG(1)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(60), rng)
	if err != nil {
		b.Fatal(err)
	}
	return nw
}

func benchFullRun(b *testing.B, mutate func(*Params)) {
	nw := benchNetwork(b)
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 6, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := DefaultParams()
		p.MRAI = mrai.Constant(500 * time.Millisecond)
		p.Seed = int64(i + 1)
		if mutate != nil {
			mutate(&p)
		}
		sim, err := New(nw, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.ConvergeAndFail(fail); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvergeAndFailFIFO(b *testing.B) {
	benchFullRun(b, nil)
}

func BenchmarkConvergeAndFailBatched(b *testing.B) {
	benchFullRun(b, func(p *Params) { p.Queue = QueueBatched })
}

func BenchmarkConvergeAndFailDynamic(b *testing.B) {
	benchFullRun(b, func(p *Params) { p.MRAI = mrai.PaperDynamic() })
}

func BenchmarkConvergeAndFailDamped(b *testing.B) {
	benchFullRun(b, func(p *Params) { p.Damping = DefaultDamping() })
}

func BenchmarkDecisionProcess(b *testing.B) {
	rib := newAdjRIBIn()
	peers := make([]Peer, 8)
	alive := make([]bool, 8)
	for i := range peers {
		peers[i] = Peer{Node: i, AS: 10 + i}
		alive[i] = true
		rib.set(99, i, Path{10 + i, 50, 99})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := decide(rib, 99, peers, alive, nil, nil, 0); !ok {
			b.Fatal("no route")
		}
	}
}

func BenchmarkInboxFIFO(b *testing.B) {
	q := &fifoInbox{}
	u := ann(1, 100, 1, 2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(u)
		q.Pop()
	}
}

func BenchmarkInboxBatched(b *testing.B) {
	q := &batchInbox{byDest: make(map[ASN][]Update), discardStale: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Three updates for one destination, two from the same neighbor:
		// exercises the staleness-discard path.
		q.Push(ann(1, i%50, 1))
		q.Push(ann(2, i%50, 2))
		q.Push(ann(1, i%50, 3))
		q.Pop()
		q.TakeDiscarded()
	}
}

func BenchmarkPathHelpers(b *testing.B) {
	p := Path{4, 9, 23, 17, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pathContains(p, 99) {
			b.Fatal("unexpected")
		}
		_ = prependPath(1, p)
	}
}
