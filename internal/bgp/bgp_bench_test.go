package bgp

import (
	"testing"
)

// The end-to-end BenchmarkConvergeAndFail* benchmarks moved to
// bench_suite_test.go (package bgp_test), which delegates to the shared
// internal/bench registry also used by cmd/bgpbench. This file keeps the
// micro-benchmarks that need unexported access.

func BenchmarkDecisionProcess(b *testing.B) {
	peers := make([]Peer, 8)
	alive := make([]bool, 8)
	for i := range peers {
		peers[i] = Peer{Node: i, AS: 10 + i}
		alive[i] = true
	}
	rib := ribOver(peers, 100)
	for i := range peers {
		rib.set(99, i, Path{10 + i, 50, 99})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := decide(rib, 99, peers, alive, nil, nil, 0); !ok {
			b.Fatal("no route")
		}
	}
}

func BenchmarkInboxFIFO(b *testing.B) {
	q := &fifoInbox{}
	u := ann(1, 100, 1, 2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(u)
		q.Pop()
	}
}

func BenchmarkInboxBatched(b *testing.B) {
	q := &batchInbox{byDest: make(map[ASN][]Update), discardStale: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Three updates for one destination, two from the same neighbor:
		// exercises the staleness-discard path.
		q.Push(ann(1, i%50, 1))
		q.Push(ann(2, i%50, 2))
		q.Push(ann(1, i%50, 3))
		q.Pop()
		q.TakeDiscarded()
	}
}

func BenchmarkPathHelpers(b *testing.B) {
	p := Path{4, 9, 23, 17, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pathContains(p, 99) {
			b.Fatal("unexpected")
		}
		_ = prependPath(1, p)
	}
}
