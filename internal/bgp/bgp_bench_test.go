package bgp

import (
	"testing"

	"bgpsim/internal/topology"
)

// The end-to-end BenchmarkConvergeAndFail* benchmarks moved to
// bench_suite_test.go (package bgp_test), which delegates to the shared
// internal/bench registry also used by cmd/bgpbench. This file keeps the
// micro-benchmarks that need unexported access.

// decideBench measures the full decision-process scan at a given peer
// degree — the cost the incremental path avoids. Degrees 64/128 model
// the highest-degree nodes of the 500-AS Internet-like topologies.
func decideBench(b *testing.B, degree int) {
	peers := make([]Peer, degree)
	alive := make([]bool, degree)
	for i := range peers {
		peers[i] = Peer{Node: i, AS: 10 + i}
		alive[i] = true
	}
	rib := ribOver(peers, 100)
	for i := range peers {
		rib.set(99, i, Path{10 + i, 50, 99})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := decide(rib, 99, peers, alive, nil, nil, 0); !ok {
			b.Fatal("no route")
		}
	}
}

func BenchmarkDecisionProcess(b *testing.B)     { decideBench(b, 8) }
func BenchmarkDecideDegree16(b *testing.B)      { decideBench(b, 16) }
func BenchmarkDecideDegree64(b *testing.B)      { decideBench(b, 64) }
func BenchmarkDecideDegree128(b *testing.B)     { decideBench(b, 128) }
func BenchmarkRunDecisionDegree16(b *testing.B) { runDecisionBench(b, 16, false) }
func BenchmarkRunDecisionDegree64(b *testing.B) { runDecisionBench(b, 64, false) }
func BenchmarkRunDecisionDegree128(b *testing.B) {
	runDecisionBench(b, 128, false)
}

func BenchmarkRunDecisionDegree128FullScan(b *testing.B) {
	runDecisionBench(b, 128, true)
}

// runDecisionBench measures the per-batch decision work through the real
// router entry point (finishProcessing): a hub router with the given
// degree receives a batch touching degree/2 distinct destinations, one
// announcement each, none of which beats the incumbent (the origin
// spoke's direct route). The incremental path classifies each as a no-op
// in O(1); the full scan pays an O(degree) decide per touched
// destination, O(degree²) per batch — the shape a large failure's
// exploration traffic takes at high-degree nodes.
func runDecisionBench(b *testing.B, degree int, fullScan bool) {
	nw := starNetwork(b, degree)
	p := DefaultParams()
	p.ForceFullScan = fullScan
	sim, err := New(nw, p)
	if err != nil {
		b.Fatal(err)
	}
	sim.Start()
	if err := sim.Run(); err != nil {
		b.Fatal(err)
	}
	const hub = 0
	r := sim.routers[hub]
	// Batch: for each destination d (originated by spoke node d), a
	// different spoke announces a longer (worse) path.
	batch := make([]Update, degree/2)
	for i := range batch {
		dest := ASN(i + 1)
		spoke := i + 2 // never the origin spoke for this dest
		batch[i] = Update{From: spoke, Dest: dest, Path: Path{ASN(spoke), 900, dest}}
	}
	r.busyStart = sim.eng.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.busy = true
		r.finishProcessing(batch)
	}
}

// starNetwork builds a hub-and-spoke AS graph: node 0 is the hub peered
// with every spoke, giving it the requested degree.
func starNetwork(b *testing.B, degree int) *topology.Network {
	b.Helper()
	nw := topology.NewNetwork(degree + 1)
	for spoke := 1; spoke <= degree; spoke++ {
		if err := nw.AddLink(0, spoke, false); err != nil {
			b.Fatal(err)
		}
	}
	return nw
}

func BenchmarkInboxFIFO(b *testing.B) {
	q := &fifoInbox{}
	u := ann(1, 100, 1, 2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Push(u)
		q.Pop()
	}
}

func BenchmarkInboxBatched(b *testing.B) {
	q := &batchInbox{byDest: make([]int32, 4096), discardStale: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Three updates for one destination, two from the same neighbor:
		// exercises the staleness-discard path.
		q.Push(ann(1, i%50, 1))
		q.Push(ann(2, i%50, 2))
		q.Push(ann(1, i%50, 3))
		q.Pop()
		q.TakeDiscarded()
	}
}

func BenchmarkPathHelpers(b *testing.B) {
	p := Path{4, 9, 23, 17, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pathContains(p, 99) {
			b.Fatal("unexpected")
		}
		_ = prependPath(1, p)
	}
}
