package bgp

import (
	"testing"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/mrai"
	"bgpsim/internal/topology"
)

// buildLine returns the AS-level path topology 0-1-2-...-(n-1).
func buildLine(t *testing.T, n int) *topology.Network {
	t.Helper()
	nw := topology.NewNetwork(n)
	for i := 1; i < n; i++ {
		if err := nw.AddLink(i-1, i, false); err != nil {
			t.Fatal(err)
		}
	}
	placeOnLine(nw)
	return nw
}

// buildRing returns the AS-level cycle topology on n nodes.
func buildRing(t *testing.T, n int) *topology.Network {
	t.Helper()
	nw := buildLine(t, n)
	if err := nw.AddLink(n-1, 0, false); err != nil {
		t.Fatal(err)
	}
	return nw
}

func placeOnLine(nw *topology.Network) {
	for i := 0; i < nw.NumNodes(); i++ {
		nw.SetPos(i, topology.Point{X: float64(i) * 10, Y: 500})
	}
}

func fastParams(seed int64) Params {
	p := DefaultParams()
	p.MRAI = mrai.Constant(500 * time.Millisecond)
	p.Seed = seed
	return p
}

func mustSim(t *testing.T, nw *topology.Network, p Params) *Simulator {
	t.Helper()
	sim, err := New(nw, p)
	if err != nil {
		t.Fatal(err)
	}
	// White-box tests inject destination ids no AS in the small test
	// topologies originates; widen the dense dest table to accept them
	// (the map-based RIB accepted any id implicitly).
	sim.widenDestsForTest(128)
	return sim
}

// widenDestsForTest grows every router's dense destination table to at
// least n entries so white-box tests can poke out-of-band destination
// ids. It rewinds router state, so it must run before any simulation
// activity.
func (s *Simulator) widenDestsForTest(n int) {
	if n <= s.ndests {
		return
	}
	s.ndests = n
	grown := make([]NodeID, n)
	for i := range grown {
		grown[i] = -1
	}
	copy(grown, s.origins)
	s.origins = grown
	for _, r := range s.routers {
		r.reset(s.params, n)
	}
}

func TestNewValidatesParams(t *testing.T) {
	nw := buildLine(t, 3)
	bad := DefaultParams()
	bad.MRAI = nil
	if _, err := New(nw, bad); err == nil {
		t.Error("nil MRAI factory accepted")
	}
	if _, err := New(topology.NewNetwork(0), DefaultParams()); err == nil {
		t.Error("empty network accepted")
	}
}

func TestInitialConvergenceLine(t *testing.T) {
	nw := buildLine(t, 4)
	sim := mustSim(t, nw, fastParams(1))
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Node 0's route to AS 3 must be the full path 1-2-3.
	p, ok := sim.LocPath(0, 3)
	if !ok {
		t.Fatal("node 0 has no route to AS 3")
	}
	if len(p) != 3 || p[0] != 1 || p[1] != 2 || p[2] != 3 {
		t.Errorf("path = %v, want [1 2 3]", p)
	}
	// Own prefix: empty path.
	if p, ok := sim.LocPath(2, 2); !ok || len(p) != 0 {
		t.Errorf("own prefix path = %v ok=%v, want empty", p, ok)
	}
	assertShortestPaths(t, sim)
}

func TestInitialConvergenceRingUsesShortestSide(t *testing.T) {
	nw := buildRing(t, 6)
	sim := mustSim(t, nw, fastParams(2))
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Node 0 to AS 1: direct. Node 0 to AS 5: direct the other way.
	if p, _ := sim.LocPath(0, 1); len(p) != 1 {
		t.Errorf("0->1 path %v, want length 1", p)
	}
	if p, _ := sim.LocPath(0, 5); len(p) != 1 {
		t.Errorf("0->5 path %v, want length 1", p)
	}
	if p, _ := sim.LocPath(0, 3); len(p) != 3 {
		t.Errorf("0->3 path %v, want length 3", p)
	}
	assertShortestPaths(t, sim)
}

func TestFailureWithdrawsDeadPrefixEverywhere(t *testing.T) {
	nw := buildLine(t, 4)
	sim := mustSim(t, nw, fastParams(3))
	delay, err := sim.ConvergeAndFail([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if delay <= 0 {
		t.Error("failure with reconvergence reported zero delay")
	}
	// AS 1's prefix must be gone everywhere; 0 is cut off from 2,3.
	for _, node := range []int{0, 2, 3} {
		if _, ok := sim.LocPath(node, 1); ok {
			t.Errorf("node %d still has a route to dead AS 1", node)
		}
	}
	if _, ok := sim.LocPath(0, 3); ok {
		t.Error("node 0 kept a route across the cut")
	}
	if _, ok := sim.LocPath(3, 0); ok {
		t.Error("node 3 kept a route across the cut")
	}
	if p, ok := sim.LocPath(2, 3); !ok || len(p) != 1 {
		t.Errorf("surviving side lost its own connectivity: %v ok=%v", p, ok)
	}
	assertShortestPaths(t, sim)
}

func TestFailureReroutesAroundRing(t *testing.T) {
	nw := buildRing(t, 6)
	sim := mustSim(t, nw, fastParams(4))
	if _, err := sim.ConvergeAndFail([]int{3}); err != nil {
		t.Fatal(err)
	}
	// Node 2's route to AS 4 must now go the long way: 1,0,5,4.
	p, ok := sim.LocPath(2, 4)
	if !ok {
		t.Fatal("node 2 lost AS 4 entirely")
	}
	if len(p) != 4 {
		t.Errorf("rerouted path %v, want length 4", p)
	}
	assertShortestPaths(t, sim)
}

func TestConvergenceDelayMeasuredFromFailure(t *testing.T) {
	nw := buildRing(t, 6)
	sim := mustSim(t, nw, fastParams(5))
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	phase1End := sim.Now()
	failAt := phase1End + SettleMargin
	sim.ScheduleFailure(failAt, []int{3})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	col := sim.Collector()
	if col.WindowStart() != failAt {
		t.Errorf("window start = %v, want %v", col.WindowStart(), failAt)
	}
	if col.ConvergenceDelay() <= 0 {
		t.Error("no post-failure delay measured")
	}
	if col.Messages() == 0 {
		t.Error("no post-failure messages counted")
	}
	if col.TotalMessages <= col.Messages() {
		t.Error("phase-1 messages leaked into the window count")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (time.Duration, int) {
		rng := des.NewRNG(99)
		nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
		if err != nil {
			t.Fatal(err)
		}
		sim := mustSim(t, nw, fastParams(7))
		fail := topology.NearestNodes(nw, topology.GridCenter(nw), 4, nil)
		delay, err := sim.ConvergeAndFail(fail)
		if err != nil {
			t.Fatal(err)
		}
		return delay, sim.Collector().Messages()
	}
	d1, m1 := run()
	d2, m2 := run()
	if d1 != d2 || m1 != m2 {
		t.Errorf("nondeterministic: (%v,%d) vs (%v,%d)", d1, m1, d2, m2)
	}
}

func TestShortestPathInvariantRandomTopology(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := des.NewRNG(seed)
		nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
		if err != nil {
			t.Fatal(err)
		}
		sim := mustSim(t, nw, fastParams(seed))
		fail := topology.NearestNodes(nw, topology.GridCenter(nw), 4, nil)
		if _, err := sim.ConvergeAndFail(fail); err != nil {
			t.Fatal(err)
		}
		assertShortestPaths(t, sim)
	}
}

func TestShortestPathInvariantBatched(t *testing.T) {
	rng := des.NewRNG(11)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams(11)
	p.Queue = QueueBatched
	sim := mustSim(t, nw, p)
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 6, nil)
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	assertShortestPaths(t, sim)
	if sim.Collector().Discarded == 0 {
		t.Log("note: batching discarded nothing (small run, not an error)")
	}
}

func TestShortestPathInvariantIBGP(t *testing.T) {
	rng := des.NewRNG(13)
	spec := topology.DefaultRealistic(20)
	spec.MaxASSize = 5
	nw, err := topology.Realistic(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := mustSim(t, nw, fastParams(13))
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), nw.NumNodes()/10, nil)
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	assertShortestPaths(t, sim)
}

func TestDetectDelayDefersSessionDown(t *testing.T) {
	nw := buildLine(t, 3)
	p := fastParams(17)
	p.DetectDelay = 2 * time.Second
	sim := mustSim(t, nw, p)
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	failAt := sim.Now() + SettleMargin
	sim.ScheduleFailure(failAt, []int{1})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// All reaction happens >= DetectDelay after the failure.
	if got := sim.Collector().ConvergenceDelay(); got < p.DetectDelay {
		t.Errorf("delay %v < detect delay %v", got, p.DetectDelay)
	}
	assertShortestPaths(t, sim)
}

func TestPerDestinationMRAIConverges(t *testing.T) {
	rng := des.NewRNG(19)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams(19)
	p.PerDestinationMRAI = true
	sim := mustSim(t, nw, p)
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 3, nil)
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	assertShortestPaths(t, sim)
}

func TestDeshpandeSikdarVariantsConverge(t *testing.T) {
	rng := des.NewRNG(23)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []string{"cancel", "flapgate"} {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			p := fastParams(23)
			if variant == "cancel" {
				p.CancelOnChange = true
			} else {
				p.FlapGate = 3
			}
			sim := mustSim(t, nw.Clone(), p)
			fail := topology.NearestNodes(nw, topology.GridCenter(nw), 3, nil)
			if _, err := sim.ConvergeAndFail(fail); err != nil {
				t.Fatal(err)
			}
			assertShortestPaths(t, sim)
		})
	}
}

func TestRateLimitedWithdrawalsConverge(t *testing.T) {
	rng := des.NewRNG(29)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(30), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams(29)
	p.RateLimitWithdrawals = true
	sim := mustSim(t, nw, p)
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 3, nil)
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	assertShortestPaths(t, sim)
}

func TestDynamicMRAIRunsAndExposesLevels(t *testing.T) {
	rng := des.NewRNG(31)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams(31)
	p.MRAI = mrai.PaperDynamic()
	sim := mustSim(t, nw, p)
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 6, nil)
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	hist := sim.PolicyLevelHistogram()
	total := 0
	for _, n := range hist {
		total += n
	}
	if total != 40-6 {
		t.Errorf("level histogram covers %d routers, want %d", total, 40-6)
	}
	assertShortestPaths(t, sim)
}

func TestOriginsOnePerAS(t *testing.T) {
	rng := des.NewRNG(37)
	spec := topology.DefaultRealistic(10)
	spec.MaxASSize = 4
	nw, err := topology.Realistic(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := mustSim(t, nw, fastParams(37))
	dests := sim.Destinations()
	if len(dests) != 10 {
		t.Fatalf("%d destinations, want 10", len(dests))
	}
	for _, d := range dests {
		id, ok := sim.OriginOf(d)
		if !ok {
			t.Fatalf("no origin for AS %d", d)
		}
		if nw.ASOf(id) != d {
			t.Errorf("origin %d of AS %d is in AS %d", id, d, nw.ASOf(id))
		}
	}
}

// assertShortestPaths verifies the core end-to-end invariant: after
// convergence every surviving router's Loc-RIB path length equals the
// AS-level shortest-path distance on the surviving graph, destinations
// whose origin died are absent, and no Loc-RIB path contains the local AS.
func assertShortestPaths(t *testing.T, sim *Simulator) {
	t.Helper()
	nw := sim.Network()
	alive := make([]bool, nw.NumNodes())
	for i := range alive {
		alive[i] = sim.Alive(i)
	}
	hopsFrom := make(map[int]map[int]int) // srcAS -> dest AS -> hops
	for node := 0; node < nw.NumNodes(); node++ {
		if !alive[node] {
			continue
		}
		srcAS := nw.ASOf(node)
		hops, ok := hopsFrom[srcAS]
		if !ok {
			hops = nw.ASGraphHops(srcAS, alive)
			hopsFrom[srcAS] = hops
		}
		for _, dest := range sim.Destinations() {
			origin, _ := sim.OriginOf(dest)
			originAlive := sim.Alive(origin)
			want, reachable := hops[sim.ASOfDest(dest)]
			p, has := sim.LocPath(node, dest)
			switch {
			case !originAlive || !reachable:
				if has {
					t.Errorf("node %d: route %v to unreachable/dead dest AS %d", node, p, dest)
				}
			case !has:
				t.Errorf("node %d: missing route to reachable dest AS %d (want %d hops)", node, dest, want)
			case len(p) != want:
				t.Errorf("node %d -> AS %d: path %v (len %d), want %d hops", node, dest, p, len(p), want)
			default:
				if pathContains(p, nw.ASOf(node)) && len(p) > 0 {
					t.Errorf("node %d: own AS on path %v", node, p)
				}
			}
		}
	}
}

func TestOracleMRAISwitchesAtFailure(t *testing.T) {
	rng := des.NewRNG(41)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams(41)
	p.MRAI = mrai.Oracle(500 * time.Millisecond)
	p.OracleMRAI = func(frac float64) time.Duration {
		if frac < 0.15 {
			t.Errorf("oracle saw fraction %v, want 0.15 (6/40)", frac)
		}
		return 2250 * time.Millisecond
	}
	sim := mustSim(t, nw, p)
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 6, nil)
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	// After the failure every surviving policy must report the oracle value.
	for _, r := range sim.routers {
		if !r.alive {
			continue
		}
		if got := r.policy.MRAI(mrai.Snapshot{}); got != 2250*time.Millisecond {
			t.Fatalf("router %d policy = %v after oracle switch", r.id, got)
		}
	}
	assertShortestPaths(t, sim)
}

func TestSkipNoopUpdatesDiscardsAndConverges(t *testing.T) {
	rng := des.NewRNG(43)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(40), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams(43)
	p.Queue = QueueBatched
	p.SkipNoopUpdates = true
	sim := mustSim(t, nw, p)
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 6, nil)
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	assertShortestPaths(t, sim)
}

func TestSkipNoopUpdatesDropsExactDuplicate(t *testing.T) {
	nw := buildLine(t, 3)
	p := fastParams(47)
	p.SkipNoopUpdates = true
	sim := mustSim(t, nw, p)
	r1 := sim.routers[1]
	// Seed a route, then deliver the identical announcement again: the
	// duplicate must be dropped without processing.
	r1.adjIn.set(9, 0, Path{0, 9})
	r1.enqueue(Update{From: 0, Dest: 9, Path: Path{0, 9}})
	if r1.busy {
		t.Fatal("noop update entered service")
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sim.col.TotalProcessed != 0 {
		t.Errorf("processed = %d, want 0", sim.col.TotalProcessed)
	}
	// A withdrawal for a route we never had is also a noop.
	r1.enqueue(Update{From: 0, Dest: 77, Path: nil})
	if r1.busy {
		t.Error("noop withdrawal entered service")
	}
}

func TestLinkFailurePartitionsWithoutKillingRouters(t *testing.T) {
	nw := buildLine(t, 4)
	sim := mustSim(t, nw, fastParams(71))
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	cutAt := sim.Now() + SettleMargin
	sim.ScheduleLinkFailure(cutAt, [][2]int{{1, 2}})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Everyone is alive but the line is split 0-1 | 2-3.
	for i := 0; i < 4; i++ {
		if !sim.Alive(i) {
			t.Fatalf("router %d died from a link failure", i)
		}
	}
	if _, ok := sim.LocPath(0, 3); ok {
		t.Error("route across the cut survived")
	}
	if _, ok := sim.LocPath(3, 0); ok {
		t.Error("reverse route across the cut survived")
	}
	if p, ok := sim.LocPath(0, 1); !ok || len(p) != 1 {
		t.Errorf("intra-partition route lost: %v ok=%v", p, ok)
	}
	if p, ok := sim.LocPath(3, 2); !ok || len(p) != 1 {
		t.Errorf("intra-partition route lost: %v ok=%v", p, ok)
	}
	if sim.Collector().ConvergenceDelay() <= 0 {
		t.Error("link failure produced no measured activity")
	}
}

func TestLinkFailureReroutesOnRing(t *testing.T) {
	nw := buildRing(t, 6)
	sim := mustSim(t, nw, fastParams(73))
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	sim.ScheduleLinkFailure(sim.Now()+SettleMargin, [][2]int{{0, 1}})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 0 still reaches 1, the long way round (5 hops).
	p, ok := sim.LocPath(0, 1)
	if !ok {
		t.Fatal("route to AS 1 lost entirely")
	}
	if len(p) != 5 {
		t.Errorf("path %v, want the 5-hop detour", p)
	}
}

func TestLinkFailureIgnoresBogusPairs(t *testing.T) {
	nw := buildLine(t, 3)
	sim := mustSim(t, nw, fastParams(79))
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	sim.ScheduleLinkFailure(sim.Now()+time.Second, [][2]int{{0, 2}, {-1, 5}, {9, 9}})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Nothing adjacent was cut; routes intact.
	if _, ok := sim.LocPath(0, 2); !ok {
		t.Error("unrelated route lost")
	}
}

func TestMultiplePrefixesPerAS(t *testing.T) {
	nw := buildLine(t, 3)
	p := fastParams(97)
	p.PrefixesPerAS = 3
	sim := mustSim(t, nw, p)
	if got := len(sim.Destinations()); got != 9 {
		t.Fatalf("destinations = %d, want 9", got)
	}
	sim.Start()
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Every prefix of AS 2 is reachable from node 0 with the same path.
	for i := 0; i < 3; i++ {
		dest := 2*3 + i
		if sim.ASOfDest(dest) != 2 {
			t.Fatalf("ASOfDest(%d) = %d", dest, sim.ASOfDest(dest))
		}
		path, ok := sim.LocPath(0, dest)
		if !ok || len(path) != 2 {
			t.Errorf("node 0 -> prefix %d: %v ok=%v", dest, path, ok)
		}
	}
	assertShortestPaths(t, sim)
}

func TestMultiplePrefixesSurviveFailure(t *testing.T) {
	rng := des.NewRNG(101)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(24), rng)
	if err != nil {
		t.Fatal(err)
	}
	p := fastParams(101)
	p.PrefixesPerAS = 2
	sim := mustSim(t, nw, p)
	fail := topology.NearestNodes(nw, topology.GridCenter(nw), 2, nil)
	if _, err := sim.ConvergeAndFail(fail); err != nil {
		t.Fatal(err)
	}
	assertShortestPaths(t, sim)
}

func TestMorePrefixesMeanMoreLoad(t *testing.T) {
	rng := des.NewRNG(103)
	nw, err := topology.SkewedNetwork(topology.Skewed7030(24), rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(k int) int {
		p := fastParams(103)
		p.PrefixesPerAS = k
		sim := mustSim(t, nw.Clone(), p)
		fail := topology.NearestNodes(nw, topology.GridCenter(nw), 2, nil)
		if _, err := sim.ConvergeAndFail(fail); err != nil {
			t.Fatal(err)
		}
		return sim.Collector().Messages()
	}
	m1, m4 := run(1), run(4)
	if m4 < 3*m1 {
		t.Errorf("4x prefixes produced %d msgs vs %d for 1x; expected ≈4x", m4, m1)
	}
}
