package churn

import (
	"context"
	"strings"
	"testing"
	"time"

	"bgpsim/internal/topology"
)

// testScenario is the small churn scenario the runner tests share: a
// 30-node grid under a short Poisson link-flap program with a fast MRAI.
func testScenario() Scenario {
	return Scenario{
		Topology: topology.Spec{Kind: topology.KindSkewed7030, N: 30},
		Scheme:   "mrai=0.5",
		Program: Spec{Kind: PoissonLinkFlap, Rate: 0.1, Duration: 60 * time.Second,
			HoldMin: 4 * time.Second, HoldMax: 12 * time.Second},
		Seed: 42,
	}
}

func TestRunTrialWindows(t *testing.T) {
	sc := testScenario()
	var streamed int
	tr, err := NewRunner().RunTrial(context.Background(), sc, 0, func(trial int, w WindowResult, per []int) {
		if trial != 0 {
			t.Errorf("observer trial = %d", trial)
		}
		if w.Index != streamed {
			t.Errorf("window %d streamed out of order (want %d)", w.Index, streamed)
		}
		if len(per) != 30 {
			t.Errorf("perNodeSent has %d entries, want 30", len(per))
		}
		streamed++
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Windows) == 0 {
		t.Fatal("no windows measured")
	}
	if streamed != len(tr.Windows) {
		t.Errorf("streamed %d windows, assembled %d", streamed, len(tr.Windows))
	}
	for i, w := range tr.Windows {
		if w.Index != i {
			t.Errorf("window %d has index %d", i, w.Index)
		}
		if w.Event != "link-down" && w.Event != "link-up" {
			t.Errorf("window %d: unexpected event %q", i, w.Event)
		}
		if w.At < 0 {
			t.Errorf("window %d opens before program start: %v", i, w.At)
		}
		if i > 0 && w.At <= tr.Windows[i-1].At {
			t.Errorf("window %d not after window %d", i, i-1)
		}
	}
	// A link flap must provoke some BGP activity somewhere in the stream.
	activity := 0
	for _, w := range tr.Windows {
		activity += w.Announcements + w.Withdrawals
	}
	if activity == 0 {
		t.Error("program produced no BGP messages at all")
	}
}

func TestRunTrialRecoveryRestores(t *testing.T) {
	// A single full flap cycle must end quiescent with activity in both
	// the down and the up window.
	sc := testScenario()
	sc.Program = Spec{Kind: FlapCycle, Cycles: 2, Period: 30 * time.Second,
		HoldMin: 10 * time.Second, HoldMax: 10 * time.Second}
	tr, err := NewRunner().RunTrial(context.Background(), sc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Windows) != 4 {
		t.Fatalf("want 4 windows (2 cycles), got %d", len(tr.Windows))
	}
	for i, w := range tr.Windows {
		want := "link-down"
		if i%2 == 1 {
			want = "link-up"
		}
		if w.Event != want {
			t.Errorf("window %d: event %q, want %q", i, w.Event, want)
		}
	}
}

func TestRunAssemblyDeterministicAcrossWorkers(t *testing.T) {
	sc := testScenario()
	base, err := Run(context.Background(), sc, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), sc, 3, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Render() != par.Render() {
		t.Errorf("rendered stream differs between 1 and 4 trial workers:\n%s\nvs\n%s", base.Render(), par.Render())
	}
	if base.Digest() != par.Digest() {
		t.Errorf("digest differs between worker counts")
	}
}

func TestRunColdWarmIdentical(t *testing.T) {
	sc := testScenario()
	cold, err := Run(context.Background(), sc, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc.WarmStart = true
	warm, err := Run(context.Background(), sc, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Render() != warm.Render() {
		t.Errorf("cold and warm start render different streams:\n%s\nvs\n%s", cold.Render(), warm.Render())
	}
}

func TestRenderShape(t *testing.T) {
	sc := testScenario()
	rr, err := Run(context.Background(), sc, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := rr.Render()
	if !strings.HasPrefix(s, "churn poisson-link-flap") {
		t.Errorf("render header: %q", strings.SplitN(s, "\n", 2)[0])
	}
	if got := strings.Count(s, "trial "); got != 2 {
		t.Errorf("render names %d trials, want 2", got)
	}
	if rr.Digest() == 0 {
		t.Error("zero digest")
	}
}

func TestRunRejectsBadScheme(t *testing.T) {
	sc := testScenario()
	sc.Scheme = "bogus"
	if _, err := Run(context.Background(), sc, 1, 1, nil); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, testScenario(), 1, 1, nil); err == nil {
		t.Fatal("canceled context did not abort the run")
	}
}
