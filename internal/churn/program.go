// Package churn drives the simulator through streaming scenario
// programs — sequences of timed perturbations instead of the paper's one
// batch failure. A program (Spec) expands into a deterministic event
// stream per (seed, spec): Poisson link-flap or node-failure arrival,
// rolling regional outages sweeping the grid, and flap-then-recover
// cycles on a single link. The runner injects the stream through the
// control engine's existing absolute-time failure/recovery path, so
// churn composes with sharding, multi-prefix tables, and warm start
// exactly as batch failures do, and every perturbation opens its own
// measurement window (the PR 8 normalizeWindow canonicalization),
// yielding a per-event stream of delay/message metrics.
package churn

import (
	"fmt"
	"sort"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/topology"
)

// Kind names a churn program family.
type Kind string

// The program families. Poisson kinds draw arrival times from an
// exponential inter-arrival distribution over [0, Duration); structural
// kinds (rolling outage, flap cycle) place their perturbations on a
// fixed schedule and draw only hold times.
const (
	// PoissonLinkFlap: arrivals flap a uniformly chosen link — session
	// down on both ends, restored after a uniform hold.
	PoissonLinkFlap Kind = "poisson-link-flap"
	// PoissonNodeFail: arrivals kill a uniformly chosen router, revived
	// after a uniform hold (reboot with empty RIBs).
	PoissonNodeFail Kind = "poisson-node-fail"
	// RollingOutage: Regions regional failures sweep the grid west to
	// east, Period apart; each takes down the Fraction of routers
	// nearest the region anchor and revives them after a uniform hold.
	RollingOutage Kind = "rolling-outage"
	// FlapCycle: one uniformly chosen link is torn down and restored
	// Cycles times, Period apart — the classic rx-link flap loop.
	FlapCycle Kind = "flap-cycle"
)

// Spec is a churn program: a compact, wire-able description that, with a
// topology and an RNG stream, expands into a deterministic event stream
// (see Expand). Only the fields of the chosen Kind are consulted.
type Spec struct {
	Kind Kind `json:"kind"`
	// Duration is the arrival horizon for the Poisson kinds: arrivals
	// occur in [0, Duration) of program time.
	Duration time.Duration `json:"duration,omitempty"`
	// Rate is the mean Poisson arrival rate in events per simulated
	// second.
	Rate float64 `json:"rate,omitempty"`
	// HoldMin/HoldMax bound the uniform hold (down) time of every
	// perturbation. HoldMin == HoldMax pins it.
	HoldMin time.Duration `json:"hold_min,omitempty"`
	HoldMax time.Duration `json:"hold_max,omitempty"`
	// Cycles is the flap-cycle repetition count.
	Cycles int `json:"cycles,omitempty"`
	// Period spaces flap cycles and rolling outages.
	Period time.Duration `json:"period,omitempty"`
	// Regions is the rolling-outage region count.
	Regions int `json:"regions,omitempty"`
	// Fraction is the fraction of all routers failing per region.
	Fraction float64 `json:"fraction,omitempty"`
}

// maxArrivals caps Poisson expansion so a mis-specified Rate×Duration
// cannot produce an unbounded event stream.
const maxArrivals = 10000

// Validate checks the spec describes a well-formed program.
func (s Spec) Validate() error {
	holds := func() error {
		if s.HoldMin <= 0 || s.HoldMax < s.HoldMin {
			return fmt.Errorf("churn: need 0 < hold_min <= hold_max, got [%v, %v]", s.HoldMin, s.HoldMax)
		}
		return nil
	}
	switch s.Kind {
	case PoissonLinkFlap, PoissonNodeFail:
		if s.Rate <= 0 || s.Duration <= 0 {
			return fmt.Errorf("churn: %s needs rate > 0 and duration > 0", s.Kind)
		}
		if mean := s.Rate * s.Duration.Seconds(); mean > maxArrivals {
			return fmt.Errorf("churn: rate %g over %v expects %.0f arrivals (cap %d)", s.Rate, s.Duration, mean, maxArrivals)
		}
		return holds()
	case RollingOutage:
		if s.Regions <= 0 || s.Period <= 0 {
			return fmt.Errorf("churn: %s needs regions > 0 and period > 0", s.Kind)
		}
		if s.Fraction <= 0 || s.Fraction > 1 {
			return fmt.Errorf("churn: %s needs fraction in (0, 1], got %g", s.Kind, s.Fraction)
		}
		return holds()
	case FlapCycle:
		if s.Cycles <= 0 || s.Period <= 0 {
			return fmt.Errorf("churn: %s needs cycles > 0 and period > 0", s.Kind)
		}
		if err := holds(); err != nil {
			return err
		}
		if s.HoldMax > s.Period {
			return fmt.Errorf("churn: %s hold_max %v exceeds period %v (cycles would overlap)", s.Kind, s.HoldMax, s.Period)
		}
		return nil
	default:
		return fmt.Errorf("churn: unknown program kind %q", s.Kind)
	}
}

// EventKind labels one perturbation in an expanded stream.
type EventKind uint8

// The perturbation kinds an event stream is built from. Down kinds open
// their measurement window through the simulator's failure path; up
// kinds open it explicitly before the recovery.
const (
	EventLinkDown EventKind = iota
	EventLinkUp
	EventNodeDown
	EventNodeUp
)

// String returns the stable label used in rendered metric streams.
func (k EventKind) String() string {
	switch k {
	case EventLinkDown:
		return "link-down"
	case EventLinkUp:
		return "link-up"
	case EventNodeDown:
		return "node-down"
	case EventNodeUp:
		return "node-up"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one timed perturbation of an expanded program: at offset At
// from the program start, apply Kind to Nodes or Links (whichever the
// kind uses).
type Event struct {
	At    time.Duration
	Kind  EventKind
	Nodes []int
	Links [][2]int
}

// Expand materializes spec into its event stream on net, consuming draws
// from rng in a fixed order so the stream is a pure function of (net,
// spec, rng state). Events are sorted by time; simultaneous events keep
// their generation order. Perturbations and their recoveries are
// independent entries — overlapping holds on one target degrade to
// no-ops at apply time (session and liveness transitions are
// idempotent), never to errors.
func Expand(net *topology.Network, spec Spec, rng *des.RNG) ([]Event, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var events []Event
	switch spec.Kind {
	case PoissonLinkFlap, PoissonNodeFail:
		links := net.Links()
		if spec.Kind == PoissonLinkFlap && len(links) == 0 {
			return nil, fmt.Errorf("churn: %s on a topology with no links", spec.Kind)
		}
		t := time.Duration(0)
		for n := 0; n < maxArrivals; n++ {
			// Draw order per arrival is fixed: inter-arrival gap, then
			// target, then hold.
			t += time.Duration(rng.ExpFloat64() / spec.Rate * float64(time.Second))
			if t >= spec.Duration {
				break
			}
			hold := func() time.Duration { return rng.UniformDuration(spec.HoldMin, spec.HoldMax) }
			if spec.Kind == PoissonLinkFlap {
				l := links[rng.Intn(len(links))]
				pair := [2]int{l.A, l.B}
				h := hold()
				events = append(events,
					Event{At: t, Kind: EventLinkDown, Links: [][2]int{pair}},
					Event{At: t + h, Kind: EventLinkUp, Links: [][2]int{pair}})
			} else {
				node := rng.Intn(net.NumNodes())
				h := hold()
				events = append(events,
					Event{At: t, Kind: EventNodeDown, Nodes: []int{node}},
					Event{At: t + h, Kind: EventNodeUp, Nodes: []int{node}})
			}
		}
	case RollingOutage:
		k := int(spec.Fraction*float64(net.NumNodes()) + 0.5)
		if k < 1 {
			k = 1
		}
		grid := net.Grid()
		for i := 0; i < spec.Regions; i++ {
			// Region anchors sweep the grid west to east along the
			// horizontal midline; targets are deterministic, only the
			// hold time is drawn.
			anchor := topology.Point{X: grid * (float64(i) + 0.5) / float64(spec.Regions), Y: grid / 2}
			nodes := topology.NearestNodes(net, anchor, k, nil)
			t := time.Duration(i) * spec.Period
			h := rng.UniformDuration(spec.HoldMin, spec.HoldMax)
			events = append(events,
				Event{At: t, Kind: EventNodeDown, Nodes: nodes},
				Event{At: t + h, Kind: EventNodeUp, Nodes: nodes})
		}
	case FlapCycle:
		links := net.Links()
		if len(links) == 0 {
			return nil, fmt.Errorf("churn: %s on a topology with no links", spec.Kind)
		}
		l := links[rng.Intn(len(links))]
		pair := [2]int{l.A, l.B}
		for c := 0; c < spec.Cycles; c++ {
			t := time.Duration(c) * spec.Period
			h := rng.UniformDuration(spec.HoldMin, spec.HoldMax)
			events = append(events,
				Event{At: t, Kind: EventLinkDown, Links: [][2]int{pair}},
				Event{At: t + h, Kind: EventLinkUp, Links: [][2]int{pair}})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}
