package churn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"bgpsim/internal/bgp"
	"bgpsim/internal/des"
	"bgpsim/internal/experiment"
	"bgpsim/internal/topology"
)

// Scenario is one fully specified churn run: a topology, a scheme named
// in the wire syntax (experiment.ParseScheme; empty keeps the default
// parameters), and the program to stream over it. Every field is
// JSON-encodable, which is what lets the distributed coordinator carry
// churn submissions across the wire and reconstruct byte-identical
// trials on any worker.
type Scenario struct {
	Topology topology.Spec `json:"topology"`
	Scheme   string        `json:"scheme,omitempty"`
	Program  Spec          `json:"program"`
	Seed     int64         `json:"seed"`
	// Shards >= 2 runs each trial sharded (sequenced mode is
	// byte-identical to single-engine; ShardConcurrent is its own
	// determinism class, exactly as for batch scenarios).
	Shards          int  `json:"shards,omitempty"`
	ShardConcurrent bool `json:"shard_concurrent,omitempty"`
	// WarmStart installs the snapshot fixpoint instead of simulating
	// initial convergence; the rendered metric stream is identical
	// (windows are normalized and rendered relative to program start).
	WarmStart bool `json:"warm_start,omitempty"`
}

// WindowResult is one measurement window of a churn trial: the
// convergence observables attributed to one perturbation, from its
// injection to the next perturbation (or quiescence for the last).
// Convergence still in flight when the next perturbation arrives is
// censored at the window boundary — its residual activity counts into
// the next window, the honest semantics under continuous churn.
type WindowResult struct {
	// Index is the position of the window's perturbation in the event
	// stream.
	Index int `json:"index"`
	// Event is the perturbation kind label (EventKind.String).
	Event string `json:"event"`
	// At is the window open time as an offset from program start.
	At time.Duration `json:"at"`
	// Delay is the convergence delay observed in the window.
	Delay         time.Duration `json:"delay"`
	Announcements int           `json:"announcements"`
	Withdrawals   int           `json:"withdrawals"`
	Processed     int           `json:"processed"`
	Discarded     int           `json:"discarded"`
	RouteChanges  int           `json:"route_changes"`
}

// TrialResult is one trial's full window stream in event order.
type TrialResult struct {
	Trial int `json:"trial"`
	// Start is the absolute simulated time of program start (initial
	// convergence plus the settle margin); window offsets are relative
	// to it.
	Start   time.Duration  `json:"start"`
	Windows []WindowResult `json:"windows"`
}

// RunResult is a complete churn run: all trials in trial order.
type RunResult struct {
	Scenario Scenario      `json:"scenario"`
	Trials   []TrialResult `json:"trials"`
}

// WindowObserver receives windows as they close, before the trial (let
// alone the run) completes — the streaming face of a churn run. trial
// identifies the emitting trial; perNodeSent is the window's per-router
// send count (live per-router convergence state for the query API). With
// multiple trial workers, observers run serialized but trial-interleaved;
// the deterministic artifact is the assembled RunResult, not the
// observation order.
type WindowObserver func(trial int, w WindowResult, perNodeSent []int)

// Runner executes churn trials, retaining a simulator pool across calls
// so repeated trials on a memoized topology skip construction — the same
// warm-fleet behaviour as experiment.CellRunner. Safe for concurrent
// use.
type Runner struct {
	pool *experiment.SimPool
}

// NewRunner returns a runner with an empty simulator pool.
func NewRunner() *Runner {
	return &Runner{pool: experiment.NewSimPool()}
}

// RunTrial executes one trial of sc. The trial seed is sc.Seed + trial
// (the sweep machinery's trial stride), and the RNG stream derivation
// mirrors runScenario with the failure stream replaced by the churn
// stream: topology, churn, sim — in that order off the root. obs, when
// non-nil, is invoked inline as each window closes.
func (r *Runner) RunTrial(ctx context.Context, sc Scenario, trial int, obs WindowObserver) (TrialResult, error) {
	seed := sc.Seed + int64(trial)
	root := des.NewRNG(seed)
	root.Split("topology") // advance the root exactly as runScenario does
	progRNG := root.Split("churn")

	params := bgp.DefaultParams()
	params.Seed = root.Split("sim").Int63()
	if sc.Topology.PrefixesPerOrigin > 0 {
		params.PrefixesPerAS = sc.Topology.PrefixesPerOrigin
	}
	if sc.Scheme != "" {
		sch, err := experiment.ParseScheme(sc.Scheme)
		if err != nil {
			return TrialResult{}, err
		}
		sch.Apply(&params)
	}
	if sc.Shards > 0 {
		params.Shards = sc.Shards
		params.ShardConcurrent = sc.ShardConcurrent
	}
	if sc.WarmStart {
		params.WarmStart = true
	}

	net, err := experiment.BuildTopologyCached(sc.Topology, seed)
	if err != nil {
		return TrialResult{}, fmt.Errorf("build topology: %w", err)
	}
	events, err := Expand(net, sc.Program, progRNG)
	if err != nil {
		return TrialResult{}, err
	}

	sim := r.pool.Take(net)
	if sim != nil {
		err = sim.Reset(params)
	} else {
		sim, err = bgp.New(net, params)
	}
	if err != nil {
		return TrialResult{}, fmt.Errorf("build simulator: %w", err)
	}
	if done := ctx.Done(); done != nil {
		sim.SetCancel(func() bool { return ctx.Err() != nil })
	}
	if err := sim.ConvergeInitial(); err != nil {
		return TrialResult{}, trialErr(ctx, err)
	}
	base := sim.Now() + bgp.SettleMargin
	tr := TrialResult{Trial: trial, Start: base, Windows: make([]WindowResult, 0, len(events))}

	record := func(i int) {
		ws := sim.CaptureWindow()
		w := WindowResult{
			Index:         i,
			Event:         events[i].Kind.String(),
			At:            ws.Start - base,
			Delay:         ws.Delay,
			Announcements: ws.Announcements,
			Withdrawals:   ws.Withdrawals,
			Processed:     ws.Processed,
			Discarded:     ws.Discarded,
			RouteChanges:  ws.RouteChanges,
		}
		tr.Windows = append(tr.Windows, w)
		if obs != nil {
			obs(trial, w, sim.Collector().PerNodeSent())
		}
	}

	// Schedule the whole stream up front at absolute times. Scheduling
	// order at equal timestamps is execution order, so each instant runs
	// capture(previous window) -> open window -> perturb. Failure kinds
	// open (and normalize) their window inside Schedule*Failure; recovery
	// kinds get an explicit OpenMeasurementWindow first.
	for i, ev := range events {
		at := base + ev.At
		if i > 0 {
			prev := i - 1
			sim.ScheduleControl(at, func() { record(prev) })
		}
		switch ev.Kind {
		case EventNodeDown:
			sim.ScheduleFailure(at, ev.Nodes)
		case EventLinkDown:
			sim.ScheduleLinkFailure(at, ev.Links)
		case EventNodeUp:
			sim.ScheduleControl(at, func() { sim.OpenMeasurementWindow(at) })
			sim.ScheduleRecovery(at, ev.Nodes)
		case EventLinkUp:
			sim.ScheduleControl(at, func() { sim.OpenMeasurementWindow(at) })
			sim.ScheduleLinkRecovery(at, ev.Links)
		}
	}
	if err := sim.Run(); err != nil {
		// Aborted simulators stay unpooled (their state is mid-run).
		return TrialResult{}, trialErr(ctx, err)
	}
	if len(events) > 0 {
		record(len(events) - 1)
	}
	sim.SetCancel(nil)
	r.pool.Put(net, sim)
	return tr, nil
}

// trialErr surfaces cancellation as the context's own error.
func trialErr(ctx context.Context, err error) error {
	if errors.Is(err, des.ErrCanceled) && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// Run executes trials replicated trials of sc over a bounded pool of
// workers goroutines (<= 1 is serial) and assembles them in trial order.
// The assembled result is identical for every worker count; only the
// observer's interleaving varies. Observer calls are serialized.
func Run(ctx context.Context, sc Scenario, trials, workers int, obs WindowObserver) (RunResult, error) {
	if trials < 1 {
		return RunResult{}, fmt.Errorf("churn: trials=%d", trials)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > trials {
		workers = trials
	}
	runner := NewRunner()
	if obs != nil {
		var mu sync.Mutex
		inner := obs
		obs = func(trial int, w WindowResult, per []int) {
			mu.Lock()
			defer mu.Unlock()
			inner(trial, w, per)
		}
	}
	results := make([]TrialResult, trials)
	errs := make([]error, trials)
	if workers == 1 {
		for i := 0; i < trials; i++ {
			results[i], errs[i] = runner.RunTrial(ctx, sc, i, obs)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], errs[i] = runner.RunTrial(ctx, sc, i, obs)
				}
			}()
		}
		for i := 0; i < trials; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return RunResult{}, fmt.Errorf("trial %d: %w", i, err)
		}
	}
	return RunResult{Scenario: sc, Trials: results}, nil
}
