package churn

import (
	"reflect"
	"testing"
	"time"

	"bgpsim/internal/des"
	"bgpsim/internal/topology"
)

// Expansion is pure RNG arithmetic on simulated time — no wall clock, no
// time.Sleep — so these tests drive the Poisson arrival generator with
// seeded streams ("fake clock") and assert on the stream structure
// directly.

func testNet(t *testing.T, n int) *topology.Network {
	t.Helper()
	net, err := topology.Spec{Kind: topology.KindSkewed7030, N: n}.Build(des.NewRNG(7))
	if err != nil {
		t.Fatalf("build topology: %v", err)
	}
	return net
}

func TestExpandDeterministic(t *testing.T) {
	net := testNet(t, 30)
	specs := []Spec{
		{Kind: PoissonLinkFlap, Rate: 0.5, Duration: 60 * time.Second, HoldMin: 2 * time.Second, HoldMax: 8 * time.Second},
		{Kind: PoissonNodeFail, Rate: 0.2, Duration: 90 * time.Second, HoldMin: 5 * time.Second, HoldMax: 5 * time.Second},
		{Kind: RollingOutage, Regions: 4, Period: 20 * time.Second, Fraction: 0.1, HoldMin: 5 * time.Second, HoldMax: 10 * time.Second},
		{Kind: FlapCycle, Cycles: 5, Period: 10 * time.Second, HoldMin: 1 * time.Second, HoldMax: 4 * time.Second},
	}
	for _, spec := range specs {
		a, err := Expand(net, spec, des.NewRNG(42))
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		b, err := Expand(net, spec, des.NewRNG(42))
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: expansion not deterministic per (seed, spec)", spec.Kind)
		}
		c, err := Expand(net, spec, des.NewRNG(43))
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		if reflect.DeepEqual(a, c) && len(a) > 0 && spec.Kind != RollingOutage {
			t.Errorf("%s: different seeds produced identical streams", spec.Kind)
		}
	}
}

func TestExpandPoissonStructure(t *testing.T) {
	net := testNet(t, 30)
	spec := Spec{Kind: PoissonLinkFlap, Rate: 0.5, Duration: 120 * time.Second,
		HoldMin: 2 * time.Second, HoldMax: 8 * time.Second}
	events, err := Expand(net, spec, des.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || len(events)%2 != 0 {
		t.Fatalf("want a non-empty even event count (down/up pairs), got %d", len(events))
	}
	downs := 0
	for i, ev := range events {
		if i > 0 && ev.At < events[i-1].At {
			t.Fatalf("events not sorted: %v after %v", ev.At, events[i-1].At)
		}
		switch ev.Kind {
		case EventLinkDown:
			downs++
			if ev.At >= spec.Duration {
				t.Errorf("arrival at %v outside horizon %v", ev.At, spec.Duration)
			}
		case EventLinkUp:
		default:
			t.Errorf("unexpected kind %v in link-flap stream", ev.Kind)
		}
		if len(ev.Links) != 1 {
			t.Errorf("event %d: want exactly one link, got %d", i, len(ev.Links))
		}
	}
	if downs != len(events)/2 {
		t.Errorf("want %d downs, got %d", len(events)/2, downs)
	}
}

// TestExpandPoissonRate pins the arrival generator's statistics: over a
// long horizon the arrival count concentrates around Rate×Duration.
func TestExpandPoissonRate(t *testing.T) {
	net := testNet(t, 20)
	spec := Spec{Kind: PoissonNodeFail, Rate: 2, Duration: 500 * time.Second,
		HoldMin: time.Second, HoldMax: time.Second}
	events, err := Expand(net, spec, des.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	arrivals := len(events) / 2
	mean := spec.Rate * spec.Duration.Seconds() // 1000
	if f := float64(arrivals); f < 0.8*mean || f > 1.2*mean {
		t.Errorf("arrivals = %d, want within 20%% of %g", arrivals, mean)
	}
}

func TestExpandHoldBounds(t *testing.T) {
	net := testNet(t, 20)
	spec := Spec{Kind: PoissonNodeFail, Rate: 1, Duration: 100 * time.Second,
		HoldMin: 3 * time.Second, HoldMax: 9 * time.Second}
	events, err := Expand(net, spec, des.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	// Pair each down with its up (same node, generated adjacently before
	// the sort): collect per-node down times and match.
	type open struct{ at time.Duration }
	pendingByNode := map[int][]open{}
	for _, ev := range events {
		switch ev.Kind {
		case EventNodeDown:
			pendingByNode[ev.Nodes[0]] = append(pendingByNode[ev.Nodes[0]], open{ev.At})
		case EventNodeUp:
			q := pendingByNode[ev.Nodes[0]]
			if len(q) == 0 {
				t.Fatalf("up for node %d with no preceding down", ev.Nodes[0])
			}
			hold := ev.At - q[0].at
			pendingByNode[ev.Nodes[0]] = q[1:]
			if hold < spec.HoldMin || hold > spec.HoldMax {
				t.Errorf("hold %v outside [%v, %v]", hold, spec.HoldMin, spec.HoldMax)
			}
		}
	}
}

func TestExpandRollingOutage(t *testing.T) {
	net := testNet(t, 40)
	spec := Spec{Kind: RollingOutage, Regions: 3, Period: 30 * time.Second,
		Fraction: 0.1, HoldMin: 5 * time.Second, HoldMax: 5 * time.Second}
	events, err := Expand(net, spec, des.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2*spec.Regions {
		t.Fatalf("want %d events, got %d", 2*spec.Regions, len(events))
	}
	wantK := 4 // round(0.1 * 40)
	for i := 0; i < spec.Regions; i++ {
		down, up := events[2*i], events[2*i+1]
		if down.Kind != EventNodeDown || up.Kind != EventNodeUp {
			t.Fatalf("region %d: want down/up pair, got %v/%v", i, down.Kind, up.Kind)
		}
		if down.At != time.Duration(i)*spec.Period {
			t.Errorf("region %d: down at %v, want %v", i, down.At, time.Duration(i)*spec.Period)
		}
		if up.At != down.At+5*time.Second {
			t.Errorf("region %d: up at %v, want %v", i, up.At, down.At+5*time.Second)
		}
		if len(down.Nodes) != wantK {
			t.Errorf("region %d: %d nodes, want %d", i, len(down.Nodes), wantK)
		}
		if !reflect.DeepEqual(down.Nodes, up.Nodes) {
			t.Errorf("region %d: recovery set differs from failure set", i)
		}
	}
}

func TestExpandFlapCycle(t *testing.T) {
	net := testNet(t, 30)
	spec := Spec{Kind: FlapCycle, Cycles: 4, Period: 20 * time.Second,
		HoldMin: 2 * time.Second, HoldMax: 10 * time.Second}
	events, err := Expand(net, spec, des.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2*spec.Cycles {
		t.Fatalf("want %d events, got %d", 2*spec.Cycles, len(events))
	}
	link := events[0].Links[0]
	for c := 0; c < spec.Cycles; c++ {
		down, up := events[2*c], events[2*c+1]
		if down.Kind != EventLinkDown || up.Kind != EventLinkUp {
			t.Fatalf("cycle %d: want down/up, got %v/%v", c, down.Kind, up.Kind)
		}
		if down.At != time.Duration(c)*spec.Period {
			t.Errorf("cycle %d: down at %v", c, down.At)
		}
		if down.Links[0] != link || up.Links[0] != link {
			t.Errorf("cycle %d: link changed mid-program", c)
		}
		if h := up.At - down.At; h < spec.HoldMin || h > spec.HoldMax {
			t.Errorf("cycle %d: hold %v outside bounds", c, h)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{},
		{Kind: "nope"},
		{Kind: PoissonLinkFlap, Rate: 0, Duration: time.Minute, HoldMin: time.Second, HoldMax: time.Second},
		{Kind: PoissonLinkFlap, Rate: 1, Duration: 0, HoldMin: time.Second, HoldMax: time.Second},
		{Kind: PoissonLinkFlap, Rate: 1, Duration: time.Minute, HoldMin: 2 * time.Second, HoldMax: time.Second},
		{Kind: PoissonNodeFail, Rate: 1e6, Duration: time.Hour, HoldMin: time.Second, HoldMax: time.Second}, // over arrival cap
		{Kind: RollingOutage, Regions: 0, Period: time.Second, Fraction: 0.1, HoldMin: time.Second, HoldMax: time.Second},
		{Kind: RollingOutage, Regions: 2, Period: time.Second, Fraction: 1.5, HoldMin: time.Second, HoldMax: time.Second},
		{Kind: FlapCycle, Cycles: 0, Period: time.Second, HoldMin: time.Second, HoldMax: time.Second},
		{Kind: FlapCycle, Cycles: 2, Period: time.Second, HoldMin: time.Second, HoldMax: 2 * time.Second}, // hold > period
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", s)
		}
	}
}
