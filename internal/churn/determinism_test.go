package churn

import (
	"context"
	"testing"
	"time"

	"bgpsim/internal/topology"
)

// TestChurnDeterminismMatrix is the run-twice digest pin the PR 9
// acceptance criteria name: for a fixed (seed, program), the rendered
// metric stream must be byte-identical across trial worker counts
// {1, 4} and shard counts {1, 4} (sequenced mode — the byte-identical
// determinism class; -shard-concurrent remains its own class, exactly
// as for batch figures). Every cell of the matrix is also run twice to
// pin run-to-run determinism.
func TestChurnDeterminismMatrix(t *testing.T) {
	programs := []Spec{
		{Kind: PoissonLinkFlap, Rate: 0.1, Duration: 50 * time.Second,
			HoldMin: 4 * time.Second, HoldMax: 12 * time.Second},
		{Kind: RollingOutage, Regions: 2, Period: 40 * time.Second, Fraction: 0.1,
			HoldMin: 10 * time.Second, HoldMax: 15 * time.Second},
	}
	for _, prog := range programs {
		prog := prog
		t.Run(string(prog.Kind), func(t *testing.T) {
			var golden string
			for _, shards := range []int{1, 4} {
				for _, workers := range []int{1, 4} {
					sc := Scenario{
						Topology: topology.Spec{Kind: topology.KindSkewed7030, N: 30},
						Scheme:   "mrai=0.5",
						Program:  prog,
						Seed:     7,
						Shards:   shards,
					}
					rr, err := Run(context.Background(), sc, 2, workers, nil)
					if err != nil {
						t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
					}
					got := rr.Render()
					again, err := Run(context.Background(), sc, 2, workers, nil)
					if err != nil {
						t.Fatalf("shards=%d workers=%d rerun: %v", shards, workers, err)
					}
					if again.Render() != got {
						t.Fatalf("shards=%d workers=%d: run-twice stream differs", shards, workers)
					}
					// The render embeds shards (an honest header field);
					// compare the window lines only across shard counts.
					if golden == "" {
						golden = stripHeader(got)
					} else if stripHeader(got) != golden {
						t.Errorf("shards=%d workers=%d: stream differs from shards=1 workers=1:\n%s\nvs\n%s",
							shards, workers, stripHeader(got), golden)
					}
				}
			}
		})
	}
}

// stripHeader drops the run header line, which names the shard count.
func stripHeader(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[i+1:]
		}
	}
	return s
}
