package churn

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Render returns the canonical text form of the run's full metric
// stream: one line per window, trials in order, windows in event order.
// Window times are offsets from program start, so the rendering is
// independent of how initial convergence was reached (cold and warm
// starts render identically) and is the byte string the determinism
// tests and the CI churn job compare across worker counts, shard
// counts, and coordinator restarts.
func (rr RunResult) Render() string {
	var b strings.Builder
	sc := rr.Scenario
	fmt.Fprintf(&b, "churn %s topo=%s n=%d scheme=%s seed=%d trials=%d shards=%d\n",
		sc.Program.Kind, sc.Topology.Kind, sc.Topology.N, schemeLabel(sc.Scheme), sc.Seed, len(rr.Trials), sc.Shards)
	for _, tr := range rr.Trials {
		fmt.Fprintf(&b, "trial %d: windows=%d\n", tr.Trial, len(tr.Windows))
		for _, w := range tr.Windows {
			fmt.Fprintf(&b, "  win %3d %-9s t=+%-9.3fs delay=%.3fs ann=%d wd=%d proc=%d disc=%d chg=%d\n",
				w.Index, w.Event, w.At.Seconds(), w.Delay.Seconds(),
				w.Announcements, w.Withdrawals, w.Processed, w.Discarded, w.RouteChanges)
		}
	}
	return b.String()
}

// schemeLabel names the scheme in the rendered header; the empty scheme
// (default parameters) renders as "default".
func schemeLabel(s string) string {
	if s == "" {
		return "default"
	}
	return s
}

// Digest returns a 64-bit FNV-1a hash of the rendered stream — the
// compact determinism pin the run-twice tests compare across worker and
// shard counts.
func (rr RunResult) Digest() uint64 {
	h := fnv.New64a()
	h.Write([]byte(rr.Render()))
	return h.Sum64()
}
