package dist

import (
	"testing"
	"time"
)

func TestBackoffGrowthAndCapWithoutJitter(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second, // stays capped
	}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestBackoffHugeAttemptStaysCapped(t *testing.T) {
	b := Backoff{Jitter: -1}
	if got := b.Delay(10_000); got != defaultBackoffMax {
		t.Errorf("Delay(10000) = %v, want %v", got, defaultBackoffMax)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	// Sweep the whole variate range: every delay must land inside
	// [base·(1-j), base·(1+j)], hitting both endpoints.
	const jitter = 0.2
	base := 100 * time.Millisecond
	lo := time.Duration(float64(base) * (1 - jitter))
	hi := time.Duration(float64(base) * (1 + jitter))
	sawLo, sawHi := false, false
	for i := 0; i <= 1000; i++ {
		v := float64(i) / 1000 // math/rand is [0,1); 1.0 bounds the sup
		b := Backoff{Base: base, Max: time.Second, Factor: 2, Jitter: jitter, Rand: func() float64 { return v }}
		got := b.Delay(0)
		if got < lo || got > hi {
			t.Fatalf("Delay(0) with rand=%v = %v, outside [%v, %v]", v, got, lo, hi)
		}
		sawLo = sawLo || got == lo
		sawHi = sawHi || got == hi
	}
	if !sawLo || !sawHi {
		t.Errorf("jitter range not fully exercised: sawLo=%v sawHi=%v", sawLo, sawHi)
	}
}

func TestBackoffZeroValueUsesDefaults(t *testing.T) {
	b := Backoff{Rand: func() float64 { return 0.5 }} // midpoint: jitter scale 1.0
	if got := b.Delay(0); got != defaultBackoffBase {
		t.Errorf("zero-value Delay(0) = %v, want %v", got, defaultBackoffBase)
	}
	if got := b.Delay(1); got != 2*defaultBackoffBase {
		t.Errorf("zero-value Delay(1) = %v, want %v", got, 2*defaultBackoffBase)
	}
}

func TestBackoffJitterClampedToOne(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Second, Jitter: 5, Rand: func() float64 { return 0 }}
	if got := b.Delay(0); got != 0 {
		t.Errorf("Delay with clamped jitter at rand=0 = %v, want 0", got)
	}
}
