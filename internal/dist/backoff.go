package dist

import (
	"math/rand"
	"time"
)

// Backoff computes exponential retry delays with multiplicative jitter:
// attempt k (0-based) sleeps Base·Factor^k, capped at Max, then scaled
// by a uniform factor in [1-Jitter, 1+Jitter] so a fleet of workers
// retrying a briefly-down coordinator does not stampede in lockstep.
// The zero value is usable and selects the defaults below.
type Backoff struct {
	// Base is the pre-jitter delay of attempt 0 (default 100ms).
	Base time.Duration
	// Max caps the pre-jitter delay (default 5s).
	Max time.Duration
	// Factor is the per-attempt growth (default 2; values < 1 are
	// treated as the default).
	Factor float64
	// Jitter is the ± fraction applied after capping (default 0.2;
	// negative disables jitter, values > 1 are clamped to 1).
	Jitter float64
	// Rand supplies uniform [0,1) variates; nil uses the global
	// math/rand source. Tests inject a deterministic function.
	Rand func() float64
}

// Backoff defaults.
const (
	defaultBackoffBase   = 100 * time.Millisecond
	defaultBackoffMax    = 5 * time.Second
	defaultBackoffFactor = 2.0
	defaultBackoffJitter = 0.2
)

// Delay returns the sleep before retrying attempt (0-based). It is pure
// given Rand: no clocks, no sleeping — callers sleep, tests don't.
func (b Backoff) Delay(attempt int) time.Duration {
	base, max, factor, jitter := b.Base, b.Max, b.Factor, b.Jitter
	if base <= 0 {
		base = defaultBackoffBase
	}
	if max <= 0 {
		max = defaultBackoffMax
	}
	if factor < 1 {
		factor = defaultBackoffFactor
	}
	if b.Jitter == 0 {
		jitter = defaultBackoffJitter
	}
	if jitter < 0 {
		jitter = 0
	}
	if jitter > 1 {
		jitter = 1
	}
	d := float64(base)
	for i := 0; i < attempt && d < float64(max); i++ {
		d *= factor
	}
	if d > float64(max) {
		d = float64(max)
	}
	rnd := b.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	scale := 1 - jitter + 2*jitter*rnd()
	return time.Duration(d * scale)
}
