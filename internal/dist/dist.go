// Package dist distributes simulation work across machines: a
// coordinator decomposes runs into trial-granularity jobs (one job per
// trial of one (series, x) cell, or one churn trial) and serves them
// over an HTTP/JSON protocol; workers pull jobs, run them through the
// ordinary experiment/churn machinery, and push back results. A service
// layer (service.go) promotes the coordinator to a long-running server
// accepting figure and churn submissions from many concurrent clients.
//
// # Why remote execution can be byte-identical
//
// Scenarios carry closures (schemes mutate bgp.Params arbitrarily), so
// sweep jobs never ship scenarios. A job is an address into the shared
// experiment registry instead: (experiment ID, scale options, sweep
// index, series index, x index, trial). Both sides run the same registry
// code over the same options, and the seed of every trial derives from
// grid indices alone (experiment.CellScenario + the trial stride), so
// the worker materializes bit-for-bit the scenario the coordinator's
// local sweep would have run. The coordinator merges returned trial
// results in fixed (series, x, trial) order through the same assembly
// code Sweep uses — the emitted figure is byte-identical to a local run
// by construction. Churn jobs carry a fully wire-encodable scenario
// (topology spec, scheme named in ParseScheme syntax, program spec), so
// the same argument applies: trial seeds derive from (scenario seed,
// trial index) and the metric stream assembles in trial order.
//
// # Robustness
//
// Jobs are leased, not handed out: a lease expires if the worker dies
// mid-job and the job is reassigned (lease.go). Result submission is
// idempotent — duplicate completions for a job are verified identical
// against the recorded results, never double-counted; a mismatch is a
// determinism violation and fails the run loudly. Workers retry
// transient HTTP errors with exponential backoff and jitter
// (backoff.go). The coordinator checkpoints completed trials to a file
// after every completion, so an interrupted run resumes without redoing
// finished work (checkpoint.go) — including churn programs interrupted
// mid-stream.
package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"bgpsim/internal/churn"
	"bgpsim/internal/core"
	"bgpsim/internal/experiment"
)

// ProtocolVersion names the wire protocol. It is embedded in every run
// descriptor and checked by workers; bump it whenever job addressing,
// seed derivation, or result encoding changes meaning. v2 moved job
// granularity from cells (all trials batched) to single trials and
// added churn runs.
const ProtocolVersion = "bgpsim/dist/v2"

// Lease response statuses.
const (
	// StatusJob means the response carries a leased job.
	StatusJob = "job"
	// StatusWait means no job is available right now; poll again.
	StatusWait = "wait"
	// StatusShutdown means the coordinator is exiting; the worker
	// should too.
	StatusShutdown = "shutdown"
	// StatusOK acknowledges a completion.
	StatusOK = "ok"
	// StatusDuplicate acknowledges a completion for an already-complete
	// job whose results matched the recorded ones.
	StatusDuplicate = "duplicate"
)

// Options is the wire form of core.Options: the scalar scale knobs and
// nothing else. Worker-local execution knobs (Workers) and process-local
// callbacks (Progress, Sweeper, Context) deliberately do not cross the
// wire — they cannot change results, only wall-clock time.
type Options struct {
	// Nodes is the AS count (see core.Options.Nodes).
	Nodes int `json:"nodes"`
	// Trials is the replication count per data point.
	Trials int `json:"trials"`
	// Seed is the base seed every cell derives from.
	Seed int64 `json:"seed"`
	// FailureSizes is the failure-size axis in percent of routers.
	FailureSizes []float64 `json:"failure_sizes"`
	// MRAIs is the MRAI axis in seconds.
	MRAIs []float64 `json:"mrais"`
	// RealisticMaxASSize caps routers per AS for Fig 13 topologies.
	RealisticMaxASSize int `json:"realistic_max_as_size"`
	// PrefixesPerOrigin is the prefix dimension (0 = single prefix).
	// omitempty keeps the wire form of single-prefix runs identical to
	// coordinators that predate the field.
	PrefixesPerOrigin int `json:"prefixes_per_origin,omitempty"`
	// Shards is the sharded-execution dimension (0 = single engine).
	// It crosses the wire — unlike Workers — because ShardConcurrent
	// changes result bytes, and even sequenced sharding must run
	// identically on every worker for the determinism cross-checks to
	// mean anything. omitempty keeps unsharded wire forms identical to
	// coordinators that predate the fields.
	Shards          int  `json:"shards,omitempty"`
	ShardConcurrent bool `json:"shard_concurrent,omitempty"`
	// WarmStart selects snapshot-seeded trials (0 events before the
	// failure window). It crosses the wire so every worker runs the cell
	// the same way — results are byte-identical either way, but the
	// duplicate-completion cross-check compares wall-clock-independent
	// bytes only when both sides agree on the execution mode. omitempty
	// keeps cold-start wire forms identical to coordinators that predate
	// the field.
	WarmStart bool `json:"warm_start,omitempty"`
}

// WireOptions extracts the wire form of o. The coordinator sends the
// pre-normalization options exactly as the figure pipeline received
// them; both sides then normalize identically inside Experiment.Run.
func WireOptions(o core.Options) Options {
	return Options{
		Nodes:              o.Nodes,
		Trials:             o.Trials,
		Seed:               o.Seed,
		FailureSizes:       o.FailureSizes,
		MRAIs:              o.MRAIs,
		RealisticMaxASSize: o.RealisticMaxASSize,
		PrefixesPerOrigin:  o.PrefixesPerOrigin,
		Shards:             o.Shards,
		ShardConcurrent:    o.ShardConcurrent,
		WarmStart:          o.WarmStart,
	}
}

// Core converts back to core.Options (local-only fields zero).
func (o Options) Core() core.Options {
	return core.Options{
		Nodes:              o.Nodes,
		Trials:             o.Trials,
		Seed:               o.Seed,
		FailureSizes:       o.FailureSizes,
		MRAIs:              o.MRAIs,
		RealisticMaxASSize: o.RealisticMaxASSize,
		PrefixesPerOrigin:  o.PrefixesPerOrigin,
		Shards:             o.Shards,
		ShardConcurrent:    o.ShardConcurrent,
		WarmStart:          o.WarmStart,
	}
}

// Grid is the shape of a sweep grid: the worker recomputes the grid from
// the descriptor and refuses jobs whose shape disagrees (version skew
// between coordinator and worker binaries would otherwise silently remap
// cells).
type Grid struct {
	// Series is the number of series (curves).
	Series int `json:"series"`
	// Xs is the number of sweep points per series.
	Xs int `json:"xs"`
	// Trials is the replication count per cell.
	Trials int `json:"trials"`
}

// SweepDesc addresses one sweep grid inside the experiment registry; it
// is everything a worker needs to reconstruct the grid's cells.
type SweepDesc struct {
	// Protocol is ProtocolVersion.
	Protocol string `json:"protocol"`
	// Experiment is the registry ID ("fig3", "ablation-policy", ...).
	Experiment string `json:"experiment"`
	// SweepIndex selects the n-th Sweep call Experiment.Run makes
	// (0-based; every current experiment makes exactly one).
	SweepIndex int `json:"sweep_index"`
	// Options is the scale the experiment runs at.
	Options Options `json:"options"`
	// Grid is the resulting grid shape, for worker-side validation.
	Grid Grid `json:"grid"`
}

// Key fingerprints the descriptor for checkpoint addressing: two sweeps
// share a key iff a completed cell of one is a valid completed cell of
// the other.
func (d SweepDesc) Key() string {
	b, err := json.Marshal(d)
	if err != nil {
		// Marshal of this plain struct cannot fail.
		panic(fmt.Sprintf("dist: marshal SweepDesc: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Job is one leased unit of work: a single trial. For sweep runs it is
// trial Trial of cell (Series, X); for churn runs Series and X are zero
// and Trial is the churn trial index.
type Job struct {
	// ID is the trial-granularity job index: (si*Grid.Xs + xi)*Grid.Trials
	// + trial for sweeps, the trial index for churn runs.
	ID int `json:"id"`
	// Series is the series index si.
	Series int `json:"series"`
	// X is the x index xi (an index into the axis, not the value).
	X int `json:"x"`
	// Trial is the trial index within the cell (or churn run).
	Trial int `json:"trial"`
}

// ChurnDesc addresses one distributed churn run: unlike sweep jobs,
// churn scenarios are fully wire-encodable (topology spec, scheme named
// in the ParseScheme syntax, program spec), so the descriptor carries
// the scenario itself rather than a registry address.
type ChurnDesc struct {
	// Protocol is ProtocolVersion.
	Protocol string `json:"protocol"`
	// Scenario is the churn scenario every trial derives from.
	Scenario churn.Scenario `json:"scenario"`
	// Trials is the replication count; job IDs are trial indices.
	Trials int `json:"trials"`
}

// Key fingerprints the descriptor for checkpoint addressing, exactly as
// SweepDesc.Key does for sweeps.
func (d ChurnDesc) Key() string {
	b, err := json.Marshal(d)
	if err != nil {
		// Marshal of this plain struct cannot fail.
		panic(fmt.Sprintf("dist: marshal ChurnDesc: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// LeaseRequest asks the coordinator for a job.
type LeaseRequest struct {
	// Worker identifies the requester (diagnostics and lease records).
	Worker string `json:"worker"`
}

// LeaseResponse answers a lease request.
type LeaseResponse struct {
	// Status is StatusJob, StatusWait, or StatusShutdown.
	Status string `json:"status"`
	// SweepID identifies the active run; completions must echo it.
	SweepID int64 `json:"sweep_id,omitempty"`
	// Desc describes the sweep the job belongs to (set with StatusJob
	// for sweep jobs).
	Desc *SweepDesc `json:"desc,omitempty"`
	// Churn describes the churn run the job belongs to (set with
	// StatusJob for churn jobs; exactly one of Desc/Churn is set).
	Churn *ChurnDesc `json:"churn,omitempty"`
	// Job is the leased trial (set with StatusJob).
	Job Job `json:"job,omitempty"`
	// Lease is the lease token; completions must echo it.
	Lease int64 `json:"lease,omitempty"`
}

// CompleteRequest submits a finished job's results (or its failure).
type CompleteRequest struct {
	// Worker identifies the submitter.
	Worker string `json:"worker"`
	// SweepID and JobID identify the job; Lease is its lease token.
	SweepID int64 `json:"sweep_id"`
	JobID   int   `json:"job_id"`
	Lease   int64 `json:"lease"`
	// Results holds the sweep trial's result (exactly one entry — job
	// granularity is a single trial since protocol v2). Result fields
	// are integers (durations in nanoseconds), so the JSON round trip is
	// exact and coordinator-side aggregation is bit-equal to local.
	Results []experiment.Result `json:"results,omitempty"`
	// TrialResult holds a churn trial's full window stream (set instead
	// of Results for churn jobs).
	TrialResult *churn.TrialResult `json:"trial_result,omitempty"`
	// Error reports a deterministic job failure (bad experiment,
	// simulation error): the coordinator fails the whole run, matching
	// local Sweep's first-error semantics.
	Error string `json:"error,omitempty"`
}

// WindowReport streams one closed churn measurement window to the
// coordinator while its trial is still running — the incremental metric
// feed behind the /v1/query live view. Reports are advisory: the
// authoritative stream is the completion's TrialResult, so a lost or
// re-sent report can skew the live view but never the final result.
type WindowReport struct {
	// Worker identifies the reporter.
	Worker string `json:"worker"`
	// SweepID and JobID identify the running churn job.
	SweepID int64 `json:"sweep_id"`
	JobID   int   `json:"job_id"`
	// Trial is the churn trial index.
	Trial int `json:"trial"`
	// Window is the closed window's metrics.
	Window churn.WindowResult `json:"window"`
	// PerNodeSent is the window's per-router send count — the live
	// per-router convergence state.
	PerNodeSent []int `json:"per_node_sent,omitempty"`
}

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	// Status is StatusOK or StatusDuplicate.
	Status string `json:"status"`
}

// StatusResponse reports coordinator state (monitoring and tests).
type StatusResponse struct {
	// Protocol is ProtocolVersion.
	Protocol string `json:"protocol"`
	// Active reports whether a run is in progress.
	Active bool `json:"active"`
	// SweepID identifies the active run (0 when idle).
	SweepID int64 `json:"sweep_id,omitempty"`
	// Total and Done count the active run's trial jobs.
	Total int `json:"total,omitempty"`
	Done  int `json:"done,omitempty"`
	// Churn reports whether the active run is a churn program (false:
	// a sweep).
	Churn bool `json:"churn,omitempty"`
	// Dispatched counts leases handed out since the coordinator
	// started, reassignments included.
	Dispatched int64 `json:"dispatched"`
	// Resumed counts trials preloaded from the checkpoint for the
	// active run — work the coordinator did not redo.
	Resumed int `json:"resumed,omitempty"`
}
