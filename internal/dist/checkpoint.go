package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"bgpsim/internal/experiment"
)

// checkpointSchema identifies the checkpoint file format.
const checkpointSchema = "bgpsim/dist/checkpoint/v1"

// checkpointFile is the on-disk resume state: completed cells per sweep,
// keyed by the sweep descriptor fingerprint (SweepDesc.Key), so one file
// can carry a whole `-fig all` run across restarts and a checkpoint
// recorded for one grid can never be replayed into a different one.
type checkpointFile struct {
	// Schema is checkpointSchema.
	Schema string `json:"schema"`
	// Sweeps maps SweepDesc.Key() to that sweep's completed cells.
	Sweeps map[string]*sweepCheckpoint `json:"sweeps"`
}

// sweepCheckpoint is one sweep's completed cells.
type sweepCheckpoint struct {
	// Desc is the full descriptor, kept for human debugging (the map
	// key is its hash).
	Desc SweepDesc `json:"desc"`
	// Done lists completed cells in completion order.
	Done []doneJob `json:"done"`
}

// doneJob is one completed cell's recorded results.
type doneJob struct {
	// ID is the cell index (Job.ID).
	ID int `json:"id"`
	// Results holds the cell's per-trial results in trial order.
	Results []experiment.Result `json:"results"`
}

// loadCheckpoint reads path; a missing file is an empty checkpoint, a
// present-but-unreadable or wrong-schema file is an error (silently
// ignoring one would redo — and double-write — a half-finished sweep).
func loadCheckpoint(path string) (*checkpointFile, error) {
	empty := &checkpointFile{Schema: checkpointSchema, Sweeps: map[string]*sweepCheckpoint{}}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return empty, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dist: read checkpoint: %w", err)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("dist: parse checkpoint %s: %w", path, err)
	}
	if ck.Schema != checkpointSchema {
		return nil, fmt.Errorf("dist: checkpoint %s has schema %q, want %q", path, ck.Schema, checkpointSchema)
	}
	if ck.Sweeps == nil {
		ck.Sweeps = map[string]*sweepCheckpoint{}
	}
	return &ck, nil
}

// save writes the checkpoint atomically (temp file + rename in the
// destination directory), so an interrupt mid-write leaves the previous
// checkpoint intact.
func (ck *checkpointFile) save(path string) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("dist: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("dist: write checkpoint: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: write checkpoint: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: write checkpoint: %w", err)
	}
	return nil
}

// record appends a completed cell under the sweep key.
func (ck *checkpointFile) record(key string, desc SweepDesc, jobID int, results []experiment.Result) {
	sc := ck.Sweeps[key]
	if sc == nil {
		sc = &sweepCheckpoint{Desc: desc}
		ck.Sweeps[key] = sc
	}
	sc.Done = append(sc.Done, doneJob{ID: jobID, Results: results})
}
