package dist

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"bgpsim/internal/churn"
	"bgpsim/internal/experiment"
)

// Checkpoint schema identifiers. v1 recorded sweep results at cell
// granularity (one entry per (series, x) with all trials inline); v2
// records at trial granularity and adds churn runs. loadCheckpoint
// migrates v1 files in place so an operator upgrading mid-sweep keeps
// the completed work.
const (
	checkpointSchema   = "bgpsim/dist/checkpoint/v2"
	checkpointSchemaV1 = "bgpsim/dist/checkpoint/v1"
)

// checkpointFile is the on-disk resume state: completed trial jobs per
// run, keyed by the descriptor fingerprint (SweepDesc.Key or
// ChurnDesc.Key), so one file can carry a whole `-fig all` run across
// restarts and a checkpoint recorded for one grid can never be replayed
// into a different one.
type checkpointFile struct {
	// Schema is checkpointSchema.
	Schema string `json:"schema"`
	// Sweeps maps SweepDesc.Key() to that sweep's completed trial jobs.
	Sweeps map[string]*sweepCheckpoint `json:"sweeps"`
	// Churn maps ChurnDesc.Key() to that churn run's completed trials.
	Churn map[string]*churnCheckpoint `json:"churn,omitempty"`
}

// sweepCheckpoint is one sweep's completed trial jobs.
type sweepCheckpoint struct {
	// Desc is the full descriptor, kept for human debugging (the map
	// key is its hash).
	Desc SweepDesc `json:"desc"`
	// Done lists completed trial jobs in completion order.
	Done []doneJob `json:"done"`
}

// churnCheckpoint is one churn run's completed trials.
type churnCheckpoint struct {
	Desc ChurnDesc `json:"desc"`
	Done []doneJob `json:"done"`
}

// doneJob is one completed trial job's recorded payload: Results (one
// entry) for sweep trial jobs, Trial for churn trials.
type doneJob struct {
	// ID is the trial job index (Job.ID).
	ID int `json:"id"`
	// Results holds the sweep trial's result as a one-entry slice.
	Results []experiment.Result `json:"results,omitempty"`
	// Trial holds a churn trial's window stream.
	Trial *churn.TrialResult `json:"trial,omitempty"`
}

// loadCheckpoint reads path; a missing file is an empty checkpoint, a
// present-but-unreadable or wrong-schema file is an error (silently
// ignoring one would redo — and double-write — a half-finished sweep).
// v1 files are migrated to v2 in memory; the migrated form is written
// back the next time the checkpoint saves.
func loadCheckpoint(path string) (*checkpointFile, error) {
	empty := &checkpointFile{Schema: checkpointSchema, Sweeps: map[string]*sweepCheckpoint{}}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return empty, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dist: read checkpoint: %w", err)
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("dist: parse checkpoint %s: %w", path, err)
	}
	switch ck.Schema {
	case checkpointSchema:
	case checkpointSchemaV1:
		migrateV1(&ck)
	default:
		return nil, fmt.Errorf("dist: checkpoint %s has schema %q, want %q", path, ck.Schema, checkpointSchema)
	}
	if ck.Sweeps == nil {
		ck.Sweeps = map[string]*sweepCheckpoint{}
	}
	return &ck, nil
}

// migrateV1 rewrites a v1 checkpoint (cell-granularity sweep entries,
// no churn section) into v2 trial granularity: each completed cell with
// Trials results expands into Trials per-trial entries with
// ID = cellID·Trials + t. Descriptors are re-stamped with the current
// protocol version and re-keyed (the fingerprint covers the protocol
// string). Entries that don't fit their grid are dropped rather than
// trusted — the owning sweep just redoes that cell.
func migrateV1(ck *checkpointFile) {
	migrated := map[string]*sweepCheckpoint{}
	for _, sc := range ck.Sweeps {
		trials := sc.Desc.Grid.Trials
		if trials <= 0 {
			continue
		}
		desc := sc.Desc
		desc.Protocol = ProtocolVersion
		out := &sweepCheckpoint{Desc: desc}
		for _, d := range sc.Done {
			if len(d.Results) != trials {
				continue
			}
			for t := 0; t < trials; t++ {
				out.Done = append(out.Done, doneJob{
					ID:      d.ID*trials + t,
					Results: []experiment.Result{d.Results[t]},
				})
			}
		}
		migrated[desc.Key()] = out
	}
	ck.Schema = checkpointSchema
	ck.Sweeps = migrated
}

// save writes the checkpoint atomically (temp file + rename in the
// destination directory), so an interrupt mid-write leaves the previous
// checkpoint intact.
func (ck *checkpointFile) save(path string) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("dist: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("dist: write checkpoint: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: write checkpoint: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: write checkpoint: %w", err)
	}
	return nil
}

// record appends a completed sweep trial job under the sweep key.
func (ck *checkpointFile) record(key string, desc SweepDesc, jobID int, results []experiment.Result) {
	sc := ck.Sweeps[key]
	if sc == nil {
		sc = &sweepCheckpoint{Desc: desc}
		ck.Sweeps[key] = sc
	}
	sc.Done = append(sc.Done, doneJob{ID: jobID, Results: results})
}

// recordChurn appends a completed churn trial under the run key.
func (ck *checkpointFile) recordChurn(key string, desc ChurnDesc, jobID int, trial *churn.TrialResult) {
	if ck.Churn == nil {
		ck.Churn = map[string]*churnCheckpoint{}
	}
	cc := ck.Churn[key]
	if cc == nil {
		cc = &churnCheckpoint{Desc: desc}
		ck.Churn[key] = cc
	}
	cc.Done = append(cc.Done, doneJob{ID: jobID, Trial: trial})
}
