package dist

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"bgpsim/internal/experiment"
)

// v1Checkpoint builds the on-disk v1 form: cell-granularity doneJobs
// (all trials inline) under the old schema and protocol strings.
func v1Checkpoint(t *testing.T, path string, grid Grid, cells map[int][]experiment.Result) SweepDesc {
	t.Helper()
	desc := SweepDesc{
		Protocol:   "bgpsim/dist/v1",
		Experiment: "test",
		Grid:       grid,
	}
	sc := &sweepCheckpoint{Desc: desc}
	for id, rs := range cells {
		sc.Done = append(sc.Done, doneJob{ID: id, Results: rs})
	}
	ck := checkpointFile{
		Schema: checkpointSchemaV1,
		Sweeps: map[string]*sweepCheckpoint{desc.Key(): sc},
	}
	data, err := json.Marshal(ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return desc
}

func TestCheckpointMigratesV1ToTrialGranularity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	grid := Grid{Series: 2, Xs: 3, Trials: 2}
	v1Checkpoint(t, path, grid, map[int][]experiment.Result{
		0: fakeResults(0, 2),
		4: fakeResults(4, 2),
		5: fakeResults(5, 1), // malformed: wrong trial count, must be dropped
	})

	ck, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Schema != checkpointSchema {
		t.Errorf("migrated schema = %q, want %q", ck.Schema, checkpointSchema)
	}
	// The migrated sweep is re-keyed under the v2 protocol string.
	v2desc := SweepDesc{Protocol: ProtocolVersion, Experiment: "test", Grid: grid}
	sc := ck.Sweeps[v2desc.Key()]
	if sc == nil {
		t.Fatalf("migrated sweep not found under v2 key; keys: %v", keysOf(ck.Sweeps))
	}
	if sc.Desc.Protocol != ProtocolVersion {
		t.Errorf("migrated desc protocol = %q", sc.Desc.Protocol)
	}
	// 2 valid cells × 2 trials = 4 per-trial entries; the malformed cell
	// contributes none.
	if len(sc.Done) != 4 {
		t.Fatalf("migrated %d entries, want 4: %+v", len(sc.Done), sc.Done)
	}
	byID := map[int]doneJob{}
	for _, d := range sc.Done {
		byID[d.ID] = d
	}
	for _, cell := range []int{0, 4} {
		want := fakeResults(cell, 2)
		for trial := 0; trial < 2; trial++ {
			d, ok := byID[cell*2+trial]
			if !ok {
				t.Fatalf("cell %d trial %d missing after migration", cell, trial)
			}
			if len(d.Results) != 1 || d.Results[0] != want[trial] {
				t.Errorf("cell %d trial %d = %+v, want [%+v]", cell, trial, d.Results, want[trial])
			}
		}
	}

	// The migrated checkpoint round-trips as v2.
	if err := ck.save(path); err != nil {
		t.Fatal(err)
	}
	again, err := loadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Sweeps[v2desc.Key()].Done) != 4 {
		t.Error("v2 round trip lost entries")
	}
}

func TestCheckpointRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	if err := os.WriteFile(path, []byte(`{"schema":"bgpsim/dist/checkpoint/v99"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path); err == nil {
		t.Fatal("unknown checkpoint schema accepted")
	}
}

func keysOf[V any](m map[string]V) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
