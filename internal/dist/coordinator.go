package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"bgpsim/internal/core"
	"bgpsim/internal/experiment"
)

// CoordinatorConfig tunes a Coordinator. The zero value works: 30s
// leases, no checkpoint, wall clock, silent log.
type CoordinatorConfig struct {
	// LeaseTTL is how long a worker holds a job before it may be
	// reassigned; it should comfortably exceed the slowest cell
	// (default 30s — paper-scale cells run in seconds).
	LeaseTTL time.Duration
	// CheckpointPath, when set, persists completed cells after every
	// completion so an interrupted sweep resumes without redoing them.
	CheckpointPath string
	// Clock overrides time.Now (fake clocks in tests).
	Clock func() time.Time
	// Log receives operational messages (lease reassignment, checkpoint
	// errors). nil discards.
	Log *log.Logger
}

// Coordinator owns the server half of the protocol: it turns sweeps
// into job tables, leases jobs to workers over HTTP, verifies and
// records completions, and merges results into figures. One sweep is
// active at a time (experiments run their sweeps sequentially); workers
// polling between sweeps are told to wait. All state is guarded by one
// mutex — request handlers do table lookups and JSON, never simulation
// work, so the lock is never held long.
type Coordinator struct {
	leaseTTL time.Duration
	ckptPath string
	now      func() time.Time
	log      *log.Logger

	mu         sync.Mutex
	cur        *sweepRun
	seq        int64
	shutdown   bool
	ckpt       *checkpointFile
	dispatched int64
}

// sweepRun is the coordinator's state for one active sweep.
type sweepRun struct {
	id       int64
	desc     SweepDesc
	key      string
	cfg      experiment.SweepConfig
	table    *leaseTable
	total    int
	resumed  int
	err      error
	finished chan struct{} // closed once (all jobs done) or err is set
}

// NewCoordinator builds a coordinator, loading the checkpoint file if
// one is configured and present.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	c := &Coordinator{
		leaseTTL: cfg.LeaseTTL,
		ckptPath: cfg.CheckpointPath,
		now:      cfg.Clock,
		log:      cfg.Log,
	}
	if c.leaseTTL <= 0 {
		c.leaseTTL = 30 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.log == nil {
		c.log = log.New(io.Discard, "", 0)
	}
	ckpt := &checkpointFile{Schema: checkpointSchema, Sweeps: map[string]*sweepCheckpoint{}}
	if c.ckptPath != "" {
		var err error
		if ckpt, err = loadCheckpoint(c.ckptPath); err != nil {
			return nil, err
		}
	}
	c.ckpt = ckpt
	return c, nil
}

// RunSweep executes cfg through remote workers: it publishes the grid as
// jobs, blocks until every cell's results are in (or ctx is canceled, or
// a worker reports a failure), and merges them into the figure in fixed
// (series, x, trial) order — byte-identical to a local Sweep of the same
// cfg. expID, sweepIndex, and wire address the grid for workers; cfg is
// the coordinator's own copy (its Cell closure is never invoked — cells
// are materialized worker-side).
func (c *Coordinator) RunSweep(ctx context.Context, expID string, sweepIndex int, wire Options, cfg experiment.SweepConfig) (experiment.Figure, error) {
	cfg, err := experiment.NormalizeSweep(cfg)
	if err != nil {
		return experiment.Figure{}, err
	}
	desc := SweepDesc{
		Protocol:   ProtocolVersion,
		Experiment: expID,
		SweepIndex: sweepIndex,
		Options:    wire,
		Grid:       Grid{Series: len(cfg.SeriesNames), Xs: len(cfg.Xs), Trials: cfg.Trials},
	}
	run := &sweepRun{
		desc:     desc,
		key:      desc.Key(),
		cfg:      cfg,
		total:    desc.Grid.Series * desc.Grid.Xs,
		finished: make(chan struct{}),
	}
	run.table = newLeaseTable(run.total, c.leaseTTL, c.now)

	c.mu.Lock()
	if c.shutdown {
		c.mu.Unlock()
		return experiment.Figure{}, fmt.Errorf("dist: coordinator is shut down")
	}
	if c.cur != nil {
		c.mu.Unlock()
		return experiment.Figure{}, fmt.Errorf("dist: a sweep is already active")
	}
	c.seq++
	run.id = c.seq
	// Resume: preload cells this sweep already completed in a previous
	// coordinator life. Entries that don't fit the grid (corrupt or
	// hand-edited checkpoint) are dropped rather than trusted.
	if sc := c.ckpt.Sweeps[run.key]; sc != nil {
		for _, d := range sc.Done {
			if d.ID < 0 || d.ID >= run.total || len(d.Results) != cfg.Trials {
				c.log.Printf("dist: checkpoint entry for job %d ignored (grid %+v)", d.ID, desc.Grid)
				continue
			}
			run.table.markDone(d.ID, d.Results)
		}
		run.resumed = run.table.done
		if run.resumed > 0 {
			c.log.Printf("dist: sweep %d (%s): resumed %d/%d cells from checkpoint", run.id, expID, run.resumed, run.total)
			if cfg.Progress != nil {
				cfg.Progress(run.resumed, run.total)
			}
		}
	}
	c.cur = run
	if run.table.remaining() == 0 {
		close(run.finished)
	}
	c.mu.Unlock()

	select {
	case <-ctx.Done():
		c.mu.Lock()
		c.cur = nil
		c.mu.Unlock()
		return experiment.Figure{}, ctx.Err()
	case <-run.finished:
	}

	c.mu.Lock()
	c.cur = nil
	err = run.err
	perCell := make([][]experiment.Result, run.total)
	for i := range run.table.jobs {
		perCell[i] = run.table.jobs[i].results
	}
	c.mu.Unlock()
	if err != nil {
		return experiment.Figure{}, err
	}
	return experiment.AssembleFigure(cfg, perCell)
}

// SweeperFor adapts the coordinator into the experiment.Sweeper hook for
// one experiment run: install the result as Options.Sweeper and every
// grid the experiment builds is executed remotely. The returned function
// counts the experiment's Sweep calls to derive each grid's SweepIndex,
// so it must be used for exactly one Experiment.Run invocation.
func (c *Coordinator) SweeperFor(ctx context.Context, expID string, opts core.Options) experiment.Sweeper {
	wire := WireOptions(opts)
	index := 0
	return func(cfg experiment.SweepConfig) (experiment.Figure, error) {
		i := index
		index++
		return c.RunSweep(ctx, expID, i, wire, cfg)
	}
}

// Shutdown tells polling workers to exit: subsequent lease requests
// answer StatusShutdown and new sweeps are refused. It does not stop an
// active sweep; call it after the figure pipeline finishes.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	c.shutdown = true
	c.mu.Unlock()
}

// Stats snapshots coordinator state (the same data /v1/status serves).
func (c *Coordinator) Stats() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := StatusResponse{Protocol: ProtocolVersion, Dispatched: c.dispatched}
	if c.cur != nil {
		st.Active = true
		st.SweepID = c.cur.id
		st.Total = c.cur.total
		st.Done = c.cur.table.done
		st.Resumed = c.cur.resumed
	}
	return st
}

// Handler returns the protocol's HTTP handler: POST /v1/lease, POST
// /v1/complete, GET /v1/status.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	return mux
}

// handleLease answers a worker's request for work.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	resp := LeaseResponse{Status: StatusWait}
	switch {
	case c.shutdown:
		resp.Status = StatusShutdown
	case c.cur == nil || c.cur.err != nil:
		// Idle, or a failing sweep draining: nothing to hand out.
	default:
		if jobID, lease, ok := c.cur.table.acquire(req.Worker); ok {
			c.dispatched++
			entry := &c.cur.table.jobs[jobID]
			if entry.attempts > 1 {
				c.log.Printf("dist: sweep %d: job %d reassigned to %s (attempt %d)", c.cur.id, jobID, req.Worker, entry.attempts)
			}
			desc := c.cur.desc
			resp = LeaseResponse{
				Status:  StatusJob,
				SweepID: c.cur.id,
				Desc:    &desc,
				Job:     Job{ID: jobID, Series: jobID / desc.Grid.Xs, X: jobID % desc.Grid.Xs},
				Lease:   lease,
			}
		}
	}
	c.mu.Unlock()
	reply(w, resp)
}

// handleComplete records a worker's finished (or failed) job.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	run := c.cur
	if run == nil || req.SweepID != run.id {
		// A straggler finishing a job of a sweep that already ended:
		// its results merged from another worker (or the sweep was
		// abandoned). Acknowledge and drop.
		c.mu.Unlock()
		reply(w, CompleteResponse{Status: StatusDuplicate})
		return
	}
	if req.Error != "" {
		c.failLocked(run, fmt.Errorf("dist: worker %s: job %d: %s", req.Worker, req.JobID, req.Error))
		c.mu.Unlock()
		reply(w, CompleteResponse{Status: StatusOK})
		return
	}
	if len(req.Results) != run.cfg.Trials {
		c.mu.Unlock()
		http.Error(w, fmt.Sprintf("dist: job %d: %d trial results, want %d", req.JobID, len(req.Results), run.cfg.Trials), http.StatusConflict)
		return
	}
	outcome, err := run.table.complete(req.JobID, req.Lease, req.Results)
	if err != nil {
		// Divergent duplicate results poison the merge: fail the sweep
		// loudly rather than emit a figure of unknowable provenance.
		c.failLocked(run, err)
		c.mu.Unlock()
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	status := StatusDuplicate
	if outcome == completedNew {
		status = StatusOK
		if run.cfg.Progress != nil {
			// The Progress contract (serialized, strictly monotonic)
			// holds whatever order worker reports arrive in: calls are
			// made under c.mu, and table.done increments exactly once
			// per newly completed cell.
			run.cfg.Progress(run.table.done, run.total)
		}
		if c.ckptPath != "" {
			c.ckpt.record(run.key, run.desc, req.JobID, req.Results)
			if err := c.ckpt.save(c.ckptPath); err != nil {
				c.log.Printf("dist: %v (continuing without checkpoint)", err)
			}
		}
		if run.table.remaining() == 0 {
			close(run.finished)
		}
	}
	c.mu.Unlock()
	reply(w, CompleteResponse{Status: status})
}

// failLocked marks the run failed and wakes RunSweep. Caller holds c.mu.
func (c *Coordinator) failLocked(run *sweepRun, err error) {
	if run.err == nil {
		run.err = err
		close(run.finished)
	}
}

// handleStatus serves the coordinator snapshot.
func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	reply(w, c.Stats())
}

// decode parses a JSON request body, replying 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "dist: bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// reply writes a JSON response.
func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The response is already committed; nothing useful to do.
		_ = err
	}
}
