package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"bgpsim/internal/churn"
	"bgpsim/internal/core"
	"bgpsim/internal/experiment"
)

// CoordinatorConfig tunes a Coordinator. The zero value works: 30s
// leases, no checkpoint, wall clock, silent log.
type CoordinatorConfig struct {
	// LeaseTTL is how long a worker holds a job before it may be
	// reassigned; it should comfortably exceed the slowest trial
	// (default 30s — paper-scale trials run in seconds).
	LeaseTTL time.Duration
	// CheckpointPath, when set, persists completed trial jobs after
	// every completion so an interrupted run resumes without redoing
	// them.
	CheckpointPath string
	// Clock overrides time.Now (fake clocks in tests).
	Clock func() time.Time
	// Log receives operational messages (lease reassignment, checkpoint
	// errors). nil discards.
	Log *log.Logger
}

// Coordinator owns the server half of the protocol: it turns sweeps and
// churn programs into trial-job tables, leases jobs to workers over
// HTTP, verifies and records completions, and merges results into
// figures or churn streams. One run is active at a time (the service
// layer serializes submissions); workers polling between runs are told
// to wait. All state is guarded by one mutex — request handlers do
// table lookups and JSON, never simulation work, so the lock is never
// held long.
type Coordinator struct {
	leaseTTL time.Duration
	ckptPath string
	now      func() time.Time
	log      *log.Logger

	// OnWindow, when set before any run starts, receives advisory
	// per-window reports streamed by churn workers via POST /v1/window.
	// It is invoked under the coordinator mutex, so it must be cheap
	// (the service layer copies into its own buffers). Reports are
	// best-effort: a worker crash between a window closing and the
	// trial completing re-streams that trial's windows on reassignment.
	OnWindow func(WindowReport)

	mu         sync.Mutex
	cur        *activeRun
	seq        int64
	shutdown   bool
	ckpt       *checkpointFile
	dispatched int64
}

// activeRun is the coordinator's state for one active run — either a
// sweep (desc/cfg set) or a churn program (cdesc set). Jobs are trials
// in both cases: a sweep's job ID is cell·Trials + trial, a churn run's
// job ID is the trial index.
type activeRun struct {
	id       int64
	key      string
	desc     SweepDesc              // sweep runs
	cfg      experiment.SweepConfig // sweep runs
	cdesc    *ChurnDesc             // churn runs
	table    *leaseTable
	total    int
	resumed  int
	err      error
	finished chan struct{} // closed once (all jobs done) or err is set
}

// NewCoordinator builds a coordinator, loading the checkpoint file if
// one is configured and present.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	c := &Coordinator{
		leaseTTL: cfg.LeaseTTL,
		ckptPath: cfg.CheckpointPath,
		now:      cfg.Clock,
		log:      cfg.Log,
	}
	if c.leaseTTL <= 0 {
		c.leaseTTL = 30 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.log == nil {
		c.log = log.New(io.Discard, "", 0)
	}
	ckpt := &checkpointFile{Schema: checkpointSchema, Sweeps: map[string]*sweepCheckpoint{}}
	if c.ckptPath != "" {
		var err error
		if ckpt, err = loadCheckpoint(c.ckptPath); err != nil {
			return nil, err
		}
	}
	c.ckpt = ckpt
	return c, nil
}

// install registers run as the active run, preloading checkpointed
// trial jobs via restore (which maps a doneJob to a payload, or returns
// false to drop the entry). Caller must not hold c.mu.
func (c *Coordinator) install(run *activeRun, done []doneJob, restore func(doneJob) (jobPayload, bool)) error {
	run.table = newLeaseTable(run.total, c.leaseTTL, c.now)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shutdown {
		return fmt.Errorf("dist: coordinator is shut down")
	}
	if c.cur != nil {
		return fmt.Errorf("dist: a run is already active")
	}
	c.seq++
	run.id = c.seq
	// Resume: preload trial jobs this run already completed in a
	// previous coordinator life. Entries that don't fit (corrupt or
	// hand-edited checkpoint) are dropped rather than trusted.
	for _, d := range done {
		payload, ok := jobPayload{}, false
		if d.ID >= 0 && d.ID < run.total {
			payload, ok = restore(d)
		}
		if !ok {
			c.log.Printf("dist: checkpoint entry for job %d ignored", d.ID)
			continue
		}
		run.table.markDone(d.ID, payload)
	}
	run.resumed = run.table.done
	if run.resumed > 0 {
		c.log.Printf("dist: run %d: resumed %d/%d trial jobs from checkpoint", run.id, run.resumed, run.total)
	}
	c.cur = run
	if run.table.remaining() == 0 {
		close(run.finished)
	}
	return nil
}

// waitAndDetach blocks until the run finishes or ctx cancels, then
// clears the active-run slot and returns the run's error.
func (c *Coordinator) waitAndDetach(ctx context.Context, run *activeRun) error {
	select {
	case <-ctx.Done():
		c.mu.Lock()
		c.cur = nil
		c.mu.Unlock()
		return ctx.Err()
	case <-run.finished:
	}
	c.mu.Lock()
	c.cur = nil
	err := run.err
	c.mu.Unlock()
	return err
}

// RunSweep executes cfg through remote workers: it publishes the grid
// as trial jobs, blocks until every trial's result is in (or ctx is
// canceled, or a worker reports a failure), and merges them into the
// figure in fixed (series, x, trial) order — byte-identical to a local
// Sweep of the same cfg. expID, sweepIndex, and wire address the grid
// for workers; cfg is the coordinator's own copy (its Cell closure is
// never invoked — trials are materialized worker-side).
func (c *Coordinator) RunSweep(ctx context.Context, expID string, sweepIndex int, wire Options, cfg experiment.SweepConfig) (experiment.Figure, error) {
	cfg, err := experiment.NormalizeSweep(cfg)
	if err != nil {
		return experiment.Figure{}, err
	}
	desc := SweepDesc{
		Protocol:   ProtocolVersion,
		Experiment: expID,
		SweepIndex: sweepIndex,
		Options:    wire,
		Grid:       Grid{Series: len(cfg.SeriesNames), Xs: len(cfg.Xs), Trials: cfg.Trials},
	}
	run := &activeRun{
		desc:     desc,
		key:      desc.Key(),
		cfg:      cfg,
		total:    desc.Grid.Series * desc.Grid.Xs * desc.Grid.Trials,
		finished: make(chan struct{}),
	}
	var done []doneJob
	if sc := c.ckpt.Sweeps[run.key]; sc != nil {
		done = sc.Done
	}
	if err := c.install(run, done, func(d doneJob) (jobPayload, bool) {
		if len(d.Results) != 1 || d.Trial != nil {
			return jobPayload{}, false
		}
		return jobPayload{results: d.Results}, true
	}); err != nil {
		return experiment.Figure{}, err
	}
	if run.resumed > 0 && cfg.Progress != nil {
		cfg.Progress(run.resumed, run.total)
	}
	if err := c.waitAndDetach(ctx, run); err != nil {
		return experiment.Figure{}, err
	}
	// Reassemble per-cell trial slices from the per-trial jobs: job IDs
	// are cell·Trials + trial, so walking jobs in ID order fills each
	// cell's trials in trial order.
	trials := cfg.Trials
	perCell := make([][]experiment.Result, desc.Grid.Series*desc.Grid.Xs)
	for i := range run.table.jobs {
		perCell[i/trials] = append(perCell[i/trials], run.table.jobs[i].payload.results...)
	}
	return experiment.AssembleFigure(cfg, perCell)
}

// RunChurn executes a churn program through remote workers: each trial
// is one job, completed trials carry the full window stream, and the
// assembled RunResult is byte-identical (Render) to a local churn.Run
// of the same scenario. Like sweeps, churn runs checkpoint-resume: a
// coordinator restart mid-program redoes only the unfinished trials.
func (c *Coordinator) RunChurn(ctx context.Context, desc ChurnDesc) (churn.RunResult, error) {
	if desc.Trials <= 0 {
		return churn.RunResult{}, fmt.Errorf("dist: churn run needs at least one trial")
	}
	if err := desc.Scenario.Program.Validate(); err != nil {
		return churn.RunResult{}, err
	}
	desc.Protocol = ProtocolVersion
	run := &activeRun{
		key:      desc.Key(),
		cdesc:    &desc,
		total:    desc.Trials,
		finished: make(chan struct{}),
	}
	var done []doneJob
	if cc := c.ckpt.Churn[run.key]; cc != nil {
		done = cc.Done
	}
	if err := c.install(run, done, func(d doneJob) (jobPayload, bool) {
		if d.Trial == nil || len(d.Results) != 0 || d.Trial.Trial != d.ID {
			return jobPayload{}, false
		}
		return jobPayload{trial: d.Trial}, true
	}); err != nil {
		return churn.RunResult{}, err
	}
	if err := c.waitAndDetach(ctx, run); err != nil {
		return churn.RunResult{}, err
	}
	rr := churn.RunResult{Scenario: desc.Scenario, Trials: make([]churn.TrialResult, run.total)}
	for i := range run.table.jobs {
		rr.Trials[i] = *run.table.jobs[i].payload.trial
	}
	return rr, nil
}

// SweeperFor adapts the coordinator into the experiment.Sweeper hook for
// one experiment run: install the result as Options.Sweeper and every
// grid the experiment builds is executed remotely. The returned function
// counts the experiment's Sweep calls to derive each grid's SweepIndex,
// so it must be used for exactly one Experiment.Run invocation.
func (c *Coordinator) SweeperFor(ctx context.Context, expID string, opts core.Options) experiment.Sweeper {
	wire := WireOptions(opts)
	index := 0
	return func(cfg experiment.SweepConfig) (experiment.Figure, error) {
		i := index
		index++
		return c.RunSweep(ctx, expID, i, wire, cfg)
	}
}

// Shutdown tells polling workers to exit: subsequent lease requests
// answer StatusShutdown and new runs are refused. It does not stop an
// active run; call it after the figure pipeline finishes.
func (c *Coordinator) Shutdown() {
	c.mu.Lock()
	c.shutdown = true
	c.mu.Unlock()
}

// Stats snapshots coordinator state (the same data /v1/status serves).
func (c *Coordinator) Stats() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := StatusResponse{Protocol: ProtocolVersion, Dispatched: c.dispatched}
	if c.cur != nil {
		st.Active = true
		st.SweepID = c.cur.id
		st.Total = c.cur.total
		st.Done = c.cur.table.done
		st.Resumed = c.cur.resumed
		st.Churn = c.cur.cdesc != nil
	}
	return st
}

// Handler returns the protocol's HTTP handler: POST /v1/lease, POST
// /v1/complete, POST /v1/window, GET /v1/status.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/window", c.handleWindow)
	mux.HandleFunc("GET /v1/status", c.handleStatus)
	return mux
}

// handleLease answers a worker's request for work.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	resp := LeaseResponse{Status: StatusWait}
	switch {
	case c.shutdown:
		resp.Status = StatusShutdown
	case c.cur == nil || c.cur.err != nil:
		// Idle, or a failing run draining: nothing to hand out.
	default:
		if jobID, lease, ok := c.cur.table.acquire(req.Worker); ok {
			c.dispatched++
			entry := &c.cur.table.jobs[jobID]
			if entry.attempts > 1 {
				c.log.Printf("dist: run %d: job %d reassigned to %s (attempt %d)", c.cur.id, jobID, req.Worker, entry.attempts)
			}
			resp = LeaseResponse{Status: StatusJob, SweepID: c.cur.id, Lease: lease}
			if c.cur.cdesc != nil {
				cd := *c.cur.cdesc
				resp.Churn = &cd
				resp.Job = Job{ID: jobID, Trial: jobID}
			} else {
				desc := c.cur.desc
				resp.Desc = &desc
				cell := jobID / desc.Grid.Trials
				resp.Job = Job{
					ID:     jobID,
					Series: cell / desc.Grid.Xs,
					X:      cell % desc.Grid.Xs,
					Trial:  jobID % desc.Grid.Trials,
				}
			}
		}
	}
	c.mu.Unlock()
	reply(w, resp)
}

// handleComplete records a worker's finished (or failed) job.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	run := c.cur
	if run == nil || req.SweepID != run.id {
		// A straggler finishing a job of a run that already ended: its
		// results merged from another worker (or the run was
		// abandoned). Acknowledge and drop.
		c.mu.Unlock()
		reply(w, CompleteResponse{Status: StatusDuplicate})
		return
	}
	if req.Error != "" {
		c.failLocked(run, fmt.Errorf("dist: worker %s: job %d: %s", req.Worker, req.JobID, req.Error))
		c.mu.Unlock()
		reply(w, CompleteResponse{Status: StatusOK})
		return
	}
	var payload jobPayload
	if run.cdesc != nil {
		if req.TrialResult == nil || len(req.Results) != 0 {
			c.mu.Unlock()
			http.Error(w, fmt.Sprintf("dist: churn job %d: completion must carry exactly a trial result", req.JobID), http.StatusConflict)
			return
		}
		payload = jobPayload{trial: req.TrialResult}
	} else {
		if len(req.Results) != 1 || req.TrialResult != nil {
			c.mu.Unlock()
			http.Error(w, fmt.Sprintf("dist: job %d: %d trial results, want exactly 1", req.JobID, len(req.Results)), http.StatusConflict)
			return
		}
		payload = jobPayload{results: req.Results}
	}
	outcome, err := run.table.complete(req.JobID, req.Lease, payload)
	if err != nil {
		// Divergent duplicate results poison the merge: fail the run
		// loudly rather than emit a figure of unknowable provenance.
		c.failLocked(run, err)
		c.mu.Unlock()
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	status := StatusDuplicate
	if outcome == completedNew {
		status = StatusOK
		if run.cdesc == nil && run.cfg.Progress != nil {
			// The Progress contract (serialized, strictly monotonic)
			// holds whatever order worker reports arrive in: calls are
			// made under c.mu, and table.done increments exactly once
			// per newly completed trial job.
			run.cfg.Progress(run.table.done, run.total)
		}
		if c.ckptPath != "" {
			if run.cdesc != nil {
				c.ckpt.recordChurn(run.key, *run.cdesc, req.JobID, req.TrialResult)
			} else {
				c.ckpt.record(run.key, run.desc, req.JobID, req.Results)
			}
			if err := c.ckpt.save(c.ckptPath); err != nil {
				c.log.Printf("dist: %v (continuing without checkpoint)", err)
			}
		}
		if run.table.remaining() == 0 {
			close(run.finished)
		}
	}
	c.mu.Unlock()
	reply(w, CompleteResponse{Status: status})
}

// handleWindow receives an advisory streamed window report from a churn
// worker and forwards it to the OnWindow hook. Reports for a run that
// is no longer active are acknowledged and dropped.
func (c *Coordinator) handleWindow(w http.ResponseWriter, r *http.Request) {
	var rep WindowReport
	if !decode(w, r, &rep) {
		return
	}
	c.mu.Lock()
	if c.cur != nil && c.cur.id == rep.SweepID && c.OnWindow != nil {
		c.OnWindow(rep)
	}
	c.mu.Unlock()
	reply(w, CompleteResponse{Status: StatusOK})
}

// failLocked marks the run failed and wakes the waiter. Caller holds c.mu.
func (c *Coordinator) failLocked(run *activeRun, err error) {
	if run.err == nil {
		run.err = err
		close(run.finished)
	}
}

// handleStatus serves the coordinator snapshot.
func (c *Coordinator) handleStatus(w http.ResponseWriter, _ *http.Request) {
	reply(w, c.Stats())
}

// decode parses a JSON request body, replying 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "dist: bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// reply writes a JSON response.
func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The response is already committed; nothing useful to do.
		_ = err
	}
}
