package dist

import (
	"strings"
	"testing"
	"time"

	"bgpsim/internal/experiment"
)

// fakeClock is a manually advanced clock; lease tests never sleep.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// fakeResults builds a distinguishable per-trial result slice.
func fakeResults(tag, trials int) []experiment.Result {
	rs := make([]experiment.Result, trials)
	for i := range rs {
		rs[i] = experiment.Result{Delay: time.Duration(tag)*time.Second + time.Duration(i), Messages: tag}
	}
	return rs
}

// fakePayload wraps fakeResults as a sweep-job payload.
func fakePayload(tag, trials int) jobPayload {
	return jobPayload{results: fakeResults(tag, trials)}
}

func TestLeaseAcquireOrderAndExhaustion(t *testing.T) {
	clk := newFakeClock()
	tab := newLeaseTable(3, 10*time.Second, clk.now)
	for want := 0; want < 3; want++ {
		id, lease, ok := tab.acquire("w")
		if !ok || id != want || lease != int64(want+1) {
			t.Fatalf("acquire %d = (%d, %d, %v), want (%d, %d, true)", want, id, lease, ok, want, want+1)
		}
	}
	if _, _, ok := tab.acquire("w"); ok {
		t.Error("acquire succeeded with every job validly leased")
	}
}

func TestLeaseExpiryReassignsToNewWorker(t *testing.T) {
	clk := newFakeClock()
	tab := newLeaseTable(1, 10*time.Second, clk.now)
	id, lease1, ok := tab.acquire("alice")
	if !ok || id != 0 {
		t.Fatalf("initial acquire = (%d, %v)", id, ok)
	}
	if _, _, ok := tab.acquire("bob"); ok {
		t.Fatal("job reassigned before its lease expired")
	}
	clk.advance(10*time.Second + time.Nanosecond)
	id, lease2, ok := tab.acquire("bob")
	if !ok || id != 0 {
		t.Fatalf("expired job not reassigned: (%d, %v)", id, ok)
	}
	if lease2 == lease1 {
		t.Error("reassignment reused the old lease token")
	}
	if got := tab.jobs[0].worker; got != "bob" {
		t.Errorf("job held by %q after reassignment, want bob", got)
	}
	if tab.jobs[0].attempts != 2 {
		t.Errorf("attempts = %d, want 2", tab.jobs[0].attempts)
	}
}

func TestSupersededLeaseCompletionAcceptedOnce(t *testing.T) {
	clk := newFakeClock()
	tab := newLeaseTable(1, time.Second, clk.now)
	_, lease1, _ := tab.acquire("alice")
	clk.advance(2 * time.Second)
	_, lease2, _ := tab.acquire("bob")

	// Alice finally reports under her superseded lease: deterministic
	// results, first to finish wins.
	got, err := tab.complete(0, lease1, fakePayload(7, 2))
	if err != nil || got != completedNew {
		t.Fatalf("superseded-lease completion = (%v, %v), want (completedNew, nil)", got, err)
	}
	// Bob's identical submission is the idempotent duplicate.
	got, err = tab.complete(0, lease2, fakePayload(7, 2))
	if err != nil || got != completedDuplicate {
		t.Fatalf("duplicate completion = (%v, %v), want (completedDuplicate, nil)", got, err)
	}
	if tab.done != 1 || tab.remaining() != 0 {
		t.Errorf("done = %d remaining = %d after duplicate, want 1 and 0", tab.done, tab.remaining())
	}
}

func TestDivergentDuplicateIsError(t *testing.T) {
	clk := newFakeClock()
	tab := newLeaseTable(1, time.Second, clk.now)
	_, lease, _ := tab.acquire("alice")
	if _, err := tab.complete(0, lease, fakePayload(1, 2)); err != nil {
		t.Fatal(err)
	}
	_, err := tab.complete(0, lease, fakePayload(2, 2))
	if err == nil || !strings.Contains(err.Error(), "different results") {
		t.Fatalf("divergent duplicate accepted: %v", err)
	}
}

func TestCompleteWithoutLeaseIsError(t *testing.T) {
	clk := newFakeClock()
	tab := newLeaseTable(2, time.Second, clk.now)
	if _, err := tab.complete(0, 1, fakePayload(1, 1)); err == nil {
		t.Error("completion of a never-leased job accepted")
	}
	if _, err := tab.complete(5, 1, fakePayload(1, 1)); err == nil {
		t.Error("completion of an out-of-range job accepted")
	}
}

func TestMarkDoneSkipsLeasing(t *testing.T) {
	clk := newFakeClock()
	tab := newLeaseTable(2, time.Second, clk.now)
	tab.markDone(1, fakePayload(3, 1))
	tab.markDone(1, fakePayload(3, 1)) // idempotent
	if tab.remaining() != 1 {
		t.Fatalf("remaining = %d, want 1", tab.remaining())
	}
	// The only leasable job is the not-yet-done one.
	id, _, ok := tab.acquire("w")
	if !ok || id != 0 {
		t.Fatalf("acquire = (%d, %v), want (0, true)", id, ok)
	}
	if _, _, ok := tab.acquire("w"); ok {
		t.Error("checkpoint-restored job handed out as work")
	}
}
