package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bgpsim/internal/experiment"
)

// testSweepCfg is a 2-series × 3-x grid with 2 trials per cell (12
// trial jobs). The coordinator never materializes cells, so Cell stays
// nil.
func testSweepCfg(progress func(done, total int)) experiment.SweepConfig {
	return experiment.SweepConfig{
		SeriesNames: []string{"a", "b"},
		Xs:          []float64{1, 2, 3},
		Trials:      2,
		Progress:    progress,
	}
}

// postJSON drives a handler directly (no sockets) and decodes a 200 body.
func postJSON(t *testing.T, h http.Handler, path string, req, resp any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code == http.StatusOK && resp != nil {
		if err := json.Unmarshal(w.Body.Bytes(), resp); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return w.Code
}

// trialResults is the one-entry completion payload for trial job jobID
// in the testSweepCfg grid (2 trials per cell), consistent with a local
// assembly of fakeResults(cell, 2) per cell.
func trialResults(jobID int) []experiment.Result {
	return []experiment.Result{fakeResults(jobID/2, 2)[jobID%2]}
}

// leaseJob polls until the active sweep hands out a job (RunSweep runs in
// a goroutine, so the first polls may race its registration).
func leaseJob(t *testing.T, h http.Handler, worker string) LeaseResponse {
	t.Helper()
	for i := 0; i < 5000; i++ {
		var resp LeaseResponse
		if code := postJSON(t, h, "/v1/lease", LeaseRequest{Worker: worker}, &resp); code != http.StatusOK {
			t.Fatalf("lease: HTTP %d", code)
		}
		if resp.Status == StatusJob {
			return resp
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal("no job leased")
	return LeaseResponse{}
}

// completeJob submits results for a leased job and returns the ack status.
func completeJob(t *testing.T, h http.Handler, l LeaseResponse, results []experiment.Result) string {
	t.Helper()
	var ack CompleteResponse
	code := postJSON(t, h, "/v1/complete", CompleteRequest{
		Worker: "w", SweepID: l.SweepID, JobID: l.Job.ID, Lease: l.Lease, Results: results,
	}, &ack)
	if code != http.StatusOK {
		t.Fatalf("complete job %d: HTTP %d", l.Job.ID, code)
	}
	return ack.Status
}

// progressRecorder captures Progress calls for later inspection.
type progressRecorder struct {
	mu    sync.Mutex
	calls [][2]int
}

func (p *progressRecorder) record(done, total int) {
	p.mu.Lock()
	p.calls = append(p.calls, [2]int{done, total})
	p.mu.Unlock()
}

func (p *progressRecorder) snapshot() [][2]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([][2]int(nil), p.calls...)
}

type sweepOut struct {
	fig experiment.Figure
	err error
}

func TestOutOfOrderCompletionsYieldMonotonicProgress(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var prog progressRecorder
	out := make(chan sweepOut, 1)
	go func() {
		fig, err := coord.RunSweep(context.Background(), "test", 0, Options{}, testSweepCfg(prog.record))
		out <- sweepOut{fig, err}
	}()
	h := coord.Handler()
	leases := make([]LeaseResponse, 12)
	for i := range leases {
		leases[i] = leaseJob(t, h, "w")
		if leases[i].Job.ID != i {
			t.Fatalf("lease %d handed out job %d", i, leases[i].Job.ID)
		}
		// Trial-granularity addressing: job i is trial i%2 of cell i/2.
		want := Job{ID: i, Series: (i / 2) / 3, X: (i / 2) % 3, Trial: i % 2}
		if leases[i].Job != want {
			t.Fatalf("lease %d job = %+v, want %+v", i, leases[i].Job, want)
		}
	}
	// Workers report completions in exactly reverse dispatch order.
	for i := 11; i >= 0; i-- {
		if st := completeJob(t, h, leases[i], trialResults(leases[i].Job.ID)); st != StatusOK {
			t.Fatalf("complete job %d ack = %q", leases[i].Job.ID, st)
		}
	}
	r := <-out
	if r.err != nil {
		t.Fatal(r.err)
	}
	if len(r.fig.Series) != 2 || len(r.fig.Series[0].Points) != 3 {
		t.Fatalf("figure shape %dx%d, want 2x3", len(r.fig.Series), len(r.fig.Series[0].Points))
	}
	calls := prog.snapshot()
	if len(calls) != 12 {
		t.Fatalf("Progress called %d times, want 12: %v", len(calls), calls)
	}
	for i, c := range calls {
		if c != [2]int{i + 1, 12} {
			t.Errorf("Progress call %d = %v, want (%d, 12)", i, c, i+1)
		}
	}
}

func TestDuplicateCompletionAcknowledgedNotDoubleCounted(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var prog progressRecorder
	out := make(chan sweepOut, 1)
	go func() {
		fig, err := coord.RunSweep(context.Background(), "test", 0, Options{}, testSweepCfg(prog.record))
		out <- sweepOut{fig, err}
	}()
	h := coord.Handler()
	l := leaseJob(t, h, "w")
	if st := completeJob(t, h, l, trialResults(l.Job.ID)); st != StatusOK {
		t.Fatalf("first completion ack = %q", st)
	}
	if st := completeJob(t, h, l, trialResults(l.Job.ID)); st != StatusDuplicate {
		t.Fatalf("identical duplicate ack = %q, want %q", st, StatusDuplicate)
	}
	if st := coord.Stats(); st.Done != 1 {
		t.Errorf("Stats().Done = %d after duplicate, want 1", st.Done)
	}
	if calls := prog.snapshot(); len(calls) != 1 {
		t.Errorf("Progress called %d times after duplicate, want 1", len(calls))
	}

	// A divergent duplicate is a determinism violation: 409, sweep fails.
	code := postJSON(t, h, "/v1/complete", CompleteRequest{
		Worker: "w", SweepID: l.SweepID, JobID: l.Job.ID, Lease: l.Lease, Results: fakeResults(99, 1),
	}, nil)
	if code != http.StatusConflict {
		t.Fatalf("divergent duplicate: HTTP %d, want 409", code)
	}
	if r := <-out; r.err == nil {
		t.Fatal("sweep succeeded despite divergent results")
	}

	// Stragglers of the dead sweep are acknowledged and dropped.
	var ack CompleteResponse
	code = postJSON(t, h, "/v1/complete", CompleteRequest{
		Worker: "w", SweepID: l.SweepID, JobID: 3, Lease: 42, Results: trialResults(3),
	}, &ack)
	if code != http.StatusOK || ack.Status != StatusDuplicate {
		t.Errorf("stale-sweep completion = (%d, %q), want (200, duplicate)", code, ack.Status)
	}
}

func TestWorkerReportedJobErrorFailsSweep(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out := make(chan sweepOut, 1)
	go func() {
		fig, err := coord.RunSweep(context.Background(), "test", 0, Options{}, testSweepCfg(nil))
		out <- sweepOut{fig, err}
	}()
	h := coord.Handler()
	l := leaseJob(t, h, "w")
	code := postJSON(t, h, "/v1/complete", CompleteRequest{
		Worker: "w", SweepID: l.SweepID, JobID: l.Job.ID, Lease: l.Lease, Error: "boom",
	}, nil)
	if code != http.StatusOK {
		t.Fatalf("error report: HTTP %d", code)
	}
	if r := <-out; r.err == nil {
		t.Fatal("sweep succeeded despite worker-reported job failure")
	}
}

func TestCheckpointResumeSkipsCompletedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.json")
	cfg := testSweepCfg(nil)

	// First coordinator life: complete half the grid, then die.
	coordA, err := NewCoordinator(CoordinatorConfig{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	outA := make(chan sweepOut, 1)
	go func() {
		fig, err := coordA.RunSweep(ctxA, "test", 0, Options{}, cfg)
		outA <- sweepOut{fig, err}
	}()
	hA := coordA.Handler()
	completed := map[int]bool{}
	for i := 0; i < 6; i++ {
		l := leaseJob(t, hA, "w")
		completed[l.Job.ID] = true
		if st := completeJob(t, hA, l, trialResults(l.Job.ID)); st != StatusOK {
			t.Fatalf("complete job %d ack = %q", l.Job.ID, st)
		}
	}
	cancelA()
	if r := <-outA; r.err == nil {
		t.Fatal("interrupted sweep reported success")
	}

	// Second life: same sweep, same checkpoint. Exactly the unfinished
	// cells are handed out; the first Progress call reports the restored
	// count.
	var prog progressRecorder
	cfgB := testSweepCfg(prog.record)
	coordB, err := NewCoordinator(CoordinatorConfig{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	outB := make(chan sweepOut, 1)
	go func() {
		fig, err := coordB.RunSweep(context.Background(), "test", 0, Options{}, cfgB)
		outB <- sweepOut{fig, err}
	}()
	hB := coordB.Handler()
	var leases []LeaseResponse
	for i := 0; i < 6; i++ {
		l := leaseJob(t, hB, "w")
		if completed[l.Job.ID] {
			t.Fatalf("checkpointed job %d re-dispatched", l.Job.ID)
		}
		leases = append(leases, l)
	}
	// Job-count accounting: 6 restored, 6 dispatched, nothing more to lease.
	st := coordB.Stats()
	if !st.Active || st.Total != 12 || st.Done != 6 || st.Resumed != 6 || st.Dispatched != 6 {
		t.Fatalf("resumed Stats = %+v, want Active total=12 done=6 resumed=6 dispatched=6", st)
	}
	var idle LeaseResponse
	if postJSON(t, hB, "/v1/lease", LeaseRequest{Worker: "w"}, &idle); idle.Status != StatusWait {
		t.Fatalf("extra lease after full dispatch = %q, want wait", idle.Status)
	}
	for _, l := range leases {
		if st := completeJob(t, hB, l, trialResults(l.Job.ID)); st != StatusOK {
			t.Fatalf("complete job %d ack = %q", l.Job.ID, st)
		}
	}
	r := <-outB
	if r.err != nil {
		t.Fatal(r.err)
	}
	calls := prog.snapshot()
	if len(calls) != 7 || calls[0] != [2]int{6, 12} {
		t.Fatalf("resumed Progress calls = %v, want (6,12) then 7..12", calls)
	}

	// The merged figure is identical to assembling every cell locally.
	perCell := make([][]experiment.Result, 6)
	for i := range perCell {
		perCell[i] = fakeResults(i, 2)
	}
	want, err := experiment.AssembleFigure(cfg, perCell)
	if err != nil {
		t.Fatal(err)
	}
	if got, w := r.fig.Render(), want.Render(); got != w {
		t.Errorf("resumed figure differs from local assembly:\n--- got ---\n%s--- want ---\n%s", got, w)
	}

	// Third life: the checkpoint now covers the whole grid, so the sweep
	// finishes with zero leases handed out.
	coordC, err := NewCoordinator(CoordinatorConfig{CheckpointPath: path})
	if err != nil {
		t.Fatal(err)
	}
	fig, err := coordC.RunSweep(context.Background(), "test", 0, Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, w := fig.Render(), want.Render(); got != w {
		t.Errorf("fully-restored figure differs from local assembly")
	}
	if st := coordC.Stats(); st.Dispatched != 0 {
		t.Errorf("fully-restored sweep dispatched %d jobs, want 0", st.Dispatched)
	}
}

func TestShutdownRefusesWorkAndSweeps(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	coord.Shutdown()
	var resp LeaseResponse
	postJSON(t, coord.Handler(), "/v1/lease", LeaseRequest{Worker: "w"}, &resp)
	if resp.Status != StatusShutdown {
		t.Errorf("lease after Shutdown = %q, want %q", resp.Status, StatusShutdown)
	}
	if _, err := coord.RunSweep(context.Background(), "test", 0, Options{}, testSweepCfg(nil)); err == nil {
		t.Error("RunSweep accepted after Shutdown")
	}
}
