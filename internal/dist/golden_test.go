package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bgpsim/internal/core"
)

// Golden equivalence: a figure computed by a coordinator and remote
// workers over real localhost HTTP must be byte-identical to the serial
// local run — including when a worker dies mid-sweep and its job is
// reassigned.

// goldenOptions is the short preset the golden tests run at: the quick
// fig3 grid (3 failure sizes × 4 MRAIs × 1 trial = 12 cells) shrunk to
// 24 nodes.
func goldenOptions() core.Options {
	o := core.QuickOptions()
	o.Nodes = 24
	return o
}

// serialFig3 renders the reference figure with the ordinary local sweep.
func serialFig3(t *testing.T) string {
	t.Helper()
	exp, err := core.Lookup("fig3")
	if err != nil {
		t.Fatal(err)
	}
	fig, err := exp.Run(goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	return fig.Render()
}

// distributedFig3 renders fig3 through coord, which must already be
// serving workers.
func distributedFig3(t *testing.T, ctx context.Context, coord *Coordinator) string {
	t.Helper()
	exp, err := core.Lookup("fig3")
	if err != nil {
		t.Fatal(err)
	}
	opts := goldenOptions()
	opts.Sweeper = coord.SweeperFor(ctx, exp.ID, opts)
	fig, err := exp.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return fig.Render()
}

// startWorker runs a live worker against base and reports its exit error.
func startWorker(ctx context.Context, base, id string) chan error {
	errc := make(chan error, 1)
	w := &Worker{Base: base, ID: id, SimWorkers: 2, PollInterval: time.Millisecond}
	go func() { errc <- w.Work(ctx) }()
	return errc
}

func TestDistributedFig3ByteIdenticalToSerial(t *testing.T) {
	want := serialFig3(t)

	coord, err := NewCoordinator(CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx := context.Background()
	w1 := startWorker(ctx, srv.URL, "w1")
	w2 := startWorker(ctx, srv.URL, "w2")

	got := distributedFig3(t, ctx, coord)
	coord.Shutdown()
	for i, errc := range []chan error{w1, w2} {
		if err := <-errc; err != nil {
			t.Errorf("worker %d exit: %v", i+1, err)
		}
	}
	if got != want {
		t.Errorf("distributed figure differs from serial:\n--- distributed ---\n%s--- serial ---\n%s", got, want)
	}
	if st := coord.Stats(); st.Dispatched != 12 {
		t.Errorf("Dispatched = %d, want 12 (3 series × 4 MRAIs)", st.Dispatched)
	}
}

func TestDistributedFig3SurvivesWorkerDeath(t *testing.T) {
	want := serialFig3(t)

	// Short leases so the dead worker's job is reassigned quickly.
	coord, err := NewCoordinator(CoordinatorConfig{LeaseTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx := context.Background()

	type figOut struct {
		rendered string
		err      error
	}
	out := make(chan figOut, 1)
	go func() {
		exp, err := core.Lookup("fig3")
		if err != nil {
			out <- figOut{"", err}
			return
		}
		opts := goldenOptions()
		opts.Sweeper = coord.SweeperFor(ctx, exp.ID, opts)
		fig, err := exp.Run(opts)
		if err != nil {
			out <- figOut{"", err}
			return
		}
		out <- figOut{fig.Render(), nil}
	}()

	// A doomed worker leases the first job and is killed before reporting:
	// it simply never completes, and its lease must expire and be
	// reassigned to the surviving worker.
	doomed, ok := tryLease(coord.Handler(), "doomed")
	if !ok {
		t.Fatal("doomed worker never got a job")
	}
	survivor := startWorker(ctx, srv.URL, "survivor")

	r := <-out
	if r.err != nil {
		t.Fatal(r.err)
	}
	coord.Shutdown()
	if err := <-survivor; err != nil {
		t.Errorf("survivor exit: %v", err)
	}
	if r.rendered != want {
		t.Errorf("figure after worker death differs from serial:\n--- distributed ---\n%s--- serial ---\n%s", r.rendered, want)
	}
	// 12 cells, one of them leased twice (doomed, then reassigned).
	if st := coord.Stats(); st.Dispatched != 13 {
		t.Errorf("Dispatched = %d, want 13 (12 jobs + 1 reassignment of job %d)", st.Dispatched, doomed.Job.ID)
	}
}

// tryLease polls h until the active sweep hands out a job; unlike
// leaseJob it never calls into testing.T, so it is goroutine-safe and
// can report failure to the caller.
func tryLease(h http.Handler, worker string) (LeaseResponse, bool) {
	body, err := json.Marshal(LeaseRequest{Worker: worker})
	if err != nil {
		panic(fmt.Sprintf("marshal LeaseRequest: %v", err))
	}
	for i := 0; i < 20000; i++ {
		r := httptest.NewRequest(http.MethodPost, "/v1/lease", bytes.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		var resp LeaseResponse
		if json.Unmarshal(w.Body.Bytes(), &resp) == nil && resp.Status == StatusJob {
			return resp, true
		}
		time.Sleep(100 * time.Microsecond)
	}
	return LeaseResponse{}, false
}
